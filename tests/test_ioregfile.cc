/**
 * @file
 * Per-thread input/output register files (paper Section 3.2.2): the
 * initial thread's inputs are the exact architectural registers, every
 * spawn snapshot leaves each input either value-predicted or watching a
 * physical register for writeback delivery, watched inputs eventually
 * receive that writeback, and the head-switch final check keeps the
 * Figure-11 accounting internally consistent — even under a
 * spawn-input corruption storm, which recovery must repair to a golden
 * retirement stream.
 */

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "dmt/engine.hh"
#include "exp/experiments.hh"
#include "exp/runner.hh"
#include "sim/functional.hh"
#include "workloads/workloads.hh"

namespace dmt
{

/** White-box access for tests (friend of DmtEngine). */
class EngineInspector
{
  public:
    static const ThreadContext &
    thread(const DmtEngine &e, ThreadId tid)
    {
        return e.ctx(tid);
    }

    static std::vector<ThreadId>
    liveThreads(const DmtEngine &e)
    {
        return e.tree.order();
    }
};

namespace
{

TEST(IoRegFileStruct, DefaultsAndReset)
{
    IoRegFile io;
    for (const IoInput &in : io.in) {
        EXPECT_FALSE(in.valid);
        EXPECT_EQ(in.watch, kNoPhysReg);
        EXPECT_FALSE(in.used);
        EXPECT_FALSE(in.valid_at_spawn);
        EXPECT_FALSE(in.finalized);
    }
    for (const IoOutput &out : io.out) {
        EXPECT_FALSE(out.redefined);
        EXPECT_EQ(out.phys, kNoPhysReg);
    }

    io.in[3].valid = true;
    io.in[3].used = true;
    io.in[3].first_use_id = 42;
    io.out[5].redefined = true;
    io.out[5].phys = 7;
    io.reset();
    EXPECT_FALSE(io.in[3].valid);
    EXPECT_FALSE(io.in[3].used);
    EXPECT_EQ(io.in[3].first_use_id, 0u);
    EXPECT_FALSE(io.out[5].redefined);
    EXPECT_EQ(io.out[5].phys, kNoPhysReg);
}

TEST(IoRegFile, InitialThreadInputsAreArchitectural)
{
    const Program prog = buildWorkload("go");
    DmtEngine engine(SimConfig::dmt(4, 2), prog);

    ArchState init;
    init.reset(prog);

    const ThreadContext &t0 = EngineInspector::thread(engine, 0);
    for (int r = 0; r < kNumLogRegs; ++r) {
        const IoInput &in = t0.io.in[static_cast<size_t>(r)];
        EXPECT_TRUE(in.valid) << "r" << r;
        EXPECT_TRUE(in.valid_at_spawn) << "r" << r;
        EXPECT_TRUE(in.finalized)
            << "r" << r << ": architectural values need no final check";
        EXPECT_EQ(in.value, init.regs[static_cast<size_t>(r)])
            << "r" << r;
        EXPECT_EQ(in.watch, kNoPhysReg) << "r" << r;
    }
}

/**
 * Step a spawning run cycle by cycle and check the snapshot invariants
 * on every live thread each cycle:
 *
 *  - r0 is always a valid zero (hardwired, exempt from prediction);
 *  - an input that was valid at spawn can never become invalid
 *    (deliveries only ever add values);
 *  - an input watching a physical register was not value-predicted.
 *
 * Also demand that the run exercises the writeback path: at least one
 * watched input must be observed, and at least one observed watch must
 * later hold a delivered value in the same thread incarnation.
 */
TEST(IoRegFile, SpawnSnapshotAndWritebackDelivery)
{
    SimConfig cfg = SimConfig::dmt(4, 2);
    cfg.max_retired = 20000;
    const Program prog = buildWorkload("gcc");
    DmtEngine engine(cfg, prog);

    // (tid, gen, reg) -> was observed watching.
    std::map<std::tuple<ThreadId, u32, int>, bool> watched;
    u64 watch_sightings = 0;
    u64 delivered = 0;

    while (!engine.done()) {
        engine.step();
        for (const ThreadId tid : EngineInspector::liveThreads(engine)) {
            const ThreadContext &t =
                EngineInspector::thread(engine, tid);
            if (!t.active || !t.was_spawned)
                continue;
            const IoInput &r0 = t.io.in[0];
            ASSERT_TRUE(r0.valid) << "tid " << tid;
            ASSERT_EQ(r0.value, 0u) << "tid " << tid;
            for (int r = 0; r < kNumLogRegs; ++r) {
                const IoInput &in = t.io.in[static_cast<size_t>(r)];
                if (in.valid_at_spawn) {
                    ASSERT_TRUE(in.valid)
                        << "tid " << tid << " r" << r
                        << ": a spawn-predicted value vanished";
                }
                if (in.watch != kNoPhysReg) {
                    ASSERT_FALSE(in.valid_at_spawn)
                        << "tid " << tid << " r" << r
                        << ": watching despite a spawn value";
                }
                const auto key = std::make_tuple(tid, t.gen, r);
                if (!in.valid && in.watch != kNoPhysReg) {
                    if (!watched[key])
                        ++watch_sightings;
                    watched[key] = true;
                } else if (in.valid && watched[key]) {
                    watched[key] = false;
                    ++delivered;
                }
            }
        }
    }

    EXPECT_GT(watch_sightings, 0u)
        << "gcc on the 4-thread machine must spawn threads whose "
           "inputs are still in flight";
    EXPECT_GT(delivered, 0u)
        << "some watched input must receive its writeback";
}

TEST(IoRegFile, Figure11AccountingIsCoherent)
{
    const RunResult r = runWorkload(exp::fig11Dmt(), "gcc", 20000);
    const DmtStats &s = r.stats;
    EXPECT_GT(s.inputs_used.value(), 0u);
    EXPECT_LE(s.inputs_hit.value(), s.inputs_used.value());
    // Every hit is classified exactly once (head-switch final check).
    EXPECT_EQ(s.inputs_hit.value(),
              s.inputs_valid_at_spawn.value()
                  + s.inputs_same_later.value()
                  + s.inputs_df_correct.value());
}

TEST(IoRegFile, SpawnInputStormIsRepairedByFinalCheck)
{
    // Corrupt value-predicted inputs at spawn: the head-switch
    // comparison against the architectural registers must catch every
    // consumed wrong value and file recovery walks, so the run still
    // completes with a golden retirement stream (runWorkload panics on
    // any mismatch).
    SimConfig cfg = SimConfig::dmt(4, 2);
    cfg.fault.enabled = true;
    cfg.fault.seed = 3;
    cfg.fault.rate[static_cast<int>(FaultSite::SpawnInput)] = 0.05;

    const RunResult r = runWorkload(cfg, "gcc", 20000);
    EXPECT_GT(r.stats.recoveries.value(), 0u)
        << "a 5% spawn-input corruption rate must trigger recovery";
    EXPECT_GT(r.retired, 0u);
}

} // namespace
} // namespace dmt
