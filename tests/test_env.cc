/**
 * @file
 * Checked environment-knob parsing: the strict numeric parsers behind
 * every DMT_* knob must reject trailing garbage and overflow instead
 * of silently truncating (the old strtoull/atoi behaviour), and the
 * env readers must fatal() on malformed values rather than quietly
 * measuring the wrong configuration.
 */

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>

#include "common/env.hh"
#include "exp/runner.hh"
#include "exp/sampled.hh"
#include "serve/faultnet.hh"
#include "serve/server.hh"
#include "sim/translated_core.hh"
#include "workloads/generator.hh"
#include "workloads/workloads.hh"

namespace dmt
{
namespace
{

TEST(ParseU64, AcceptsPlainDecimal)
{
    u64 v = 0;
    EXPECT_TRUE(parseU64("0", &v));
    EXPECT_EQ(v, 0u);
    EXPECT_TRUE(parseU64("60000", &v));
    EXPECT_EQ(v, 60000u);
    EXPECT_TRUE(parseU64("18446744073709551615", &v));
    EXPECT_EQ(v, ~u64{0});
    EXPECT_TRUE(parseU64("  42  ", &v)) << "surrounding whitespace ok";
    EXPECT_EQ(v, 42u);
}

TEST(ParseU64, RejectsTrailingGarbage)
{
    u64 v = 0;
    EXPECT_FALSE(parseU64("60k", &v));
    EXPECT_FALSE(parseU64("60 000", &v));
    EXPECT_FALSE(parseU64("1e6", &v));
    EXPECT_FALSE(parseU64("0x10", &v));
    EXPECT_FALSE(parseU64("12.5", &v));
    EXPECT_FALSE(parseU64("", &v));
    EXPECT_FALSE(parseU64("   ", &v));
    EXPECT_FALSE(parseU64("abc", &v));
}

TEST(ParseU64, RejectsSignAndOverflow)
{
    u64 v = 0;
    EXPECT_FALSE(parseU64("-1", &v));
    EXPECT_FALSE(parseU64("+1", &v));
    // One past 2^64 - 1.
    EXPECT_FALSE(parseU64("18446744073709551616", &v));
    EXPECT_FALSE(parseU64("99999999999999999999999", &v));
}

TEST(ParseF64, AcceptsAndRejects)
{
    double v = 0.0;
    EXPECT_TRUE(parseF64("0.01", &v));
    EXPECT_DOUBLE_EQ(v, 0.01);
    EXPECT_TRUE(parseF64("1e-3", &v));
    EXPECT_DOUBLE_EQ(v, 1e-3);
    EXPECT_TRUE(parseF64(" 2.5 ", &v));
    EXPECT_FALSE(parseF64("0.01x", &v));
    EXPECT_FALSE(parseF64("", &v));
    EXPECT_FALSE(parseF64("nan", &v)) << "must stay finite";
    EXPECT_FALSE(parseF64("inf", &v));
    EXPECT_FALSE(parseF64("1e999", &v)) << "overflows to inf";
}

TEST(ParseEnv, UnsetAndEmptyYieldDefault)
{
    unsetenv("DMT_TEST_KNOB");
    EXPECT_EQ(parseEnvU64("DMT_TEST_KNOB", 123), 123u);
    setenv("DMT_TEST_KNOB", "", 1);
    EXPECT_EQ(parseEnvU64("DMT_TEST_KNOB", 123), 123u);
    EXPECT_DOUBLE_EQ(parseEnvF64("DMT_TEST_KNOB", 0.5, 0.0, 1.0), 0.5);
    unsetenv("DMT_TEST_KNOB");
}

TEST(ParseEnv, ReadsValidValues)
{
    setenv("DMT_TEST_KNOB", "777", 1);
    EXPECT_EQ(parseEnvU64("DMT_TEST_KNOB", 1), 777u);
    setenv("DMT_TEST_KNOB", "0.25", 1);
    EXPECT_DOUBLE_EQ(parseEnvF64("DMT_TEST_KNOB", 0.0, 0.0, 1.0), 0.25);
    unsetenv("DMT_TEST_KNOB");
}

using ParseEnvDeath = ::testing::Test;

TEST(ParseEnvDeath, GarbageIsFatal)
{
    setenv("DMT_TEST_KNOB", "60k", 1);
    EXPECT_DEATH(parseEnvU64("DMT_TEST_KNOB", 1),
                 "not a valid unsigned integer");
    unsetenv("DMT_TEST_KNOB");
}

TEST(ParseEnvDeath, OverflowIsFatal)
{
    setenv("DMT_TEST_KNOB", "18446744073709551616", 1);
    EXPECT_DEATH(parseEnvU64("DMT_TEST_KNOB", 1),
                 "not a valid unsigned integer");
    unsetenv("DMT_TEST_KNOB");
}

TEST(ParseEnvDeath, RangeIsEnforced)
{
    setenv("DMT_TEST_KNOB", "2000", 1);
    EXPECT_DEATH(parseEnvU64("DMT_TEST_KNOB", 1, 1, 1024),
                 "out of range");
    setenv("DMT_TEST_KNOB", "1.5", 1);
    EXPECT_DEATH(parseEnvF64("DMT_TEST_KNOB", 0.0, 0.0, 1.0),
                 "out of range");
    unsetenv("DMT_TEST_KNOB");
}

TEST(BenchRunLength, ChecksItsKnob)
{
    setenv("DMT_BENCH_INSTR", "2000", 1);
    EXPECT_EQ(benchRunLength(), 2000u);
    setenv("DMT_BENCH_INSTR", "0", 1);
    EXPECT_EQ(benchRunLength(), 60000u) << "0 selects the default";
    unsetenv("DMT_BENCH_INSTR");
    EXPECT_EQ(benchRunLength(), 60000u);
}

TEST(BenchRunLengthDeath, TrailingGarbageIsFatal)
{
    setenv("DMT_BENCH_INSTR", "60000x", 1);
    EXPECT_DEATH(benchRunLength(), "DMT_BENCH_INSTR");
    unsetenv("DMT_BENCH_INSTR");
}

TEST(FfMode, ParsesStrictly)
{
    FfMode m = FfMode::Interp;
    EXPECT_TRUE(parseFfMode("interp", &m));
    EXPECT_EQ(m, FfMode::Interp);
    EXPECT_TRUE(parseFfMode("translated", &m));
    EXPECT_EQ(m, FfMode::Translated);
    EXPECT_TRUE(parseFfMode("  translated  ", &m))
        << "surrounding whitespace ok";
    EXPECT_FALSE(parseFfMode("jit", &m));
    EXPECT_FALSE(parseFfMode("Translated", &m)) << "case-sensitive";
    EXPECT_FALSE(parseFfMode("", &m));
    EXPECT_STREQ(ffModeName(FfMode::Interp), "interp");
    EXPECT_STREQ(ffModeName(FfMode::Translated), "translated");
}

TEST(FfMode, EnvSelectsEngine)
{
    unsetenv("DMT_FF_MODE");
    EXPECT_EQ(ffModeFromEnv(), FfMode::Translated)
        << "unset defaults to the translated engine";
    setenv("DMT_FF_MODE", "", 1);
    EXPECT_EQ(ffModeFromEnv(), FfMode::Translated);
    setenv("DMT_FF_MODE", "interp", 1);
    EXPECT_EQ(ffModeFromEnv(), FfMode::Interp);
    setenv("DMT_FF_MODE", "translated", 1);
    EXPECT_EQ(ffModeFromEnv(), FfMode::Translated);
    unsetenv("DMT_FF_MODE");
}

TEST(FfModeDeath, UnknownModeIsFatal)
{
    setenv("DMT_FF_MODE", "fast", 1);
    EXPECT_DEATH(ffModeFromEnv(), "DMT_FF_MODE");
    unsetenv("DMT_FF_MODE");
}

TEST(FfCache, ChecksItsKnob)
{
    unsetenv("DMT_FF_CACHE");
    EXPECT_EQ(ffCacheBlocksFromEnv(),
              TranslatedCore::kDefaultCacheBlocks);
    setenv("DMT_FF_CACHE", "16", 1);
    EXPECT_EQ(ffCacheBlocksFromEnv(), 16u);
    unsetenv("DMT_FF_CACHE");
}

TEST(FfCacheDeath, GarbageAndRangeAreFatal)
{
    setenv("DMT_FF_CACHE", "8k", 1);
    EXPECT_DEATH(ffCacheBlocksFromEnv(), "DMT_FF_CACHE");
    setenv("DMT_FF_CACHE", "0", 1);
    EXPECT_DEATH(ffCacheBlocksFromEnv(), "out of range");
    setenv("DMT_FF_CACHE", "2097152", 1);
    EXPECT_DEATH(ffCacheBlocksFromEnv(), "out of range");
    unsetenv("DMT_FF_CACHE");
}

namespace
{

void
clearServeEnv()
{
    unsetenv("DMT_SERVE_PORT");
    unsetenv("DMT_SERVE_JOBS");
    unsetenv("DMT_SERVE_CACHE");
    unsetenv("DMT_SERVE_DRAIN_S");
    unsetenv("DMT_SERVE_CACHE_DIR");
    unsetenv("DMT_SERVE_QUEUE");
    unsetenv("DMT_SERVE_DEADLINE_S");
}

void
clearFaultNetEnv()
{
    unsetenv("DMT_FAULTNET");
    unsetenv("DMT_FAULTNET_RATE");
    unsetenv("DMT_FAULTNET_SEED");
    unsetenv("DMT_FAULTNET_STALL_MS");
}

} // namespace

// ---------------------------------------------------------------------
// DMT_SAMPLE spec parsing: the strict non-fatal SampleParams::parse()
// layer the daemon relies on, the canonical rendering that feeds the
// serve cache key, and the DMT_PHASE_* defaults that only fromEnv()
// may consult.
// ---------------------------------------------------------------------

TEST(SampleSpec, PhaseParsesAndCanonicalizes)
{
    SampleParams p;
    std::string err;
    ASSERT_TRUE(SampleParams::parse("phase:20000:500:1500", &p, &err))
        << err;
    EXPECT_TRUE(p.phaseMode());
    EXPECT_TRUE(p.enabled());
    EXPECT_EQ(p.phase.interval, 20000u);
    EXPECT_EQ(p.warm, 500u);
    EXPECT_EQ(p.measure, 1500u);
    EXPECT_EQ(p.phase.max_k, 8u) << "documented default";
    EXPECT_EQ(p.phase.dims, 16u);
    EXPECT_EQ(p.phase.seed, 42u);
    // Canonical form is always fully explicit: two specs that behave
    // identically must render identical cache keys.
    EXPECT_EQ(p.canonicalSpec(), "phase:20000:500:1500:8:16:42");

    SampleParams q;
    ASSERT_TRUE(SampleParams::parse("phase:1:2:3:4:5:6", &q, &err))
        << err;
    EXPECT_EQ(q.phase.max_k, 4u);
    EXPECT_EQ(q.phase.dims, 5u);
    EXPECT_EQ(q.phase.seed, 6u);
    EXPECT_EQ(q.canonicalSpec(), "phase:1:2:3:4:5:6");

    // Canonical specs round-trip through parse unchanged.
    SampleParams r;
    ASSERT_TRUE(SampleParams::parse(p.canonicalSpec(), &r, &err)) << err;
    EXPECT_EQ(r.canonicalSpec(), p.canonicalSpec());

    // Uniform specs keep their own canonical shape, and disabled
    // renders as "off".
    SampleParams u;
    ASSERT_TRUE(SampleParams::parse("1000:200:300", &u, &err)) << err;
    EXPECT_FALSE(u.phaseMode());
    EXPECT_EQ(u.canonicalSpec(), "1000:200:300:0");
    EXPECT_EQ(SampleParams{}.canonicalSpec(), "off");
    SampleParams off;
    ASSERT_TRUE(SampleParams::parse("", &off, &err)) << err;
    EXPECT_FALSE(off.enabled());
}

TEST(SampleSpec, PhaseRejectionsAreStructuredErrors)
{
    const struct
    {
        const char *spec;
        const char *needle; ///< must appear in the error message
    } cases[] = {
        {"phase:1:2", "phase:interval:warm:measure"},
        {"phase:1:2:3:4:5:6:7", "phase:interval:warm:measure"},
        {"phase:1x:2:3", "bad sample spec field"},
        {"phase:1:2:3x", "bad sample spec field"},
        {"phase:0:2:3", "interval length must be > 0"},
        {"phase:100:5:0", "measure window must be > 0"},
        {"phase:100:5:10:0", "maxk must be 1..64"},
        {"phase:100:5:10:65", "maxk must be 1..64"},
        {"phase:100:5:10:8:0", "dims must be 1..256"},
        {"phase:100:5:10:8:257", "dims must be 1..256"},
    };
    for (const auto &c : cases) {
        SampleParams p;
        std::string err;
        EXPECT_FALSE(SampleParams::parse(c.spec, &p, &err)) << c.spec;
        EXPECT_NE(err.find(c.needle), std::string::npos)
            << c.spec << " -> \"" << err << "\"";
    }

    // A null err sink must be tolerated (callers that only branch).
    SampleParams p;
    EXPECT_FALSE(SampleParams::parse("phase:0:1:2", &p, nullptr));
}

TEST(SampleEnv, PhaseKnobsFillOnlyOmittedFields)
{
    setenv("DMT_PHASE_K", "5", 1);
    setenv("DMT_PHASE_DIMS", "32", 1);
    setenv("DMT_PHASE_SEED", "7", 1);

    setenv("DMT_SAMPLE", "phase:20000:500:1500", 1);
    SampleParams p = SampleParams::fromEnv();
    EXPECT_EQ(p.phase.max_k, 5u);
    EXPECT_EQ(p.phase.dims, 32u);
    EXPECT_EQ(p.phase.seed, 7u);

    // An explicit spec field always beats its env default.
    setenv("DMT_SAMPLE", "phase:20000:500:1500:9", 1);
    p = SampleParams::fromEnv();
    EXPECT_EQ(p.phase.max_k, 9u);
    EXPECT_EQ(p.phase.dims, 32u);
    EXPECT_EQ(p.phase.seed, 7u);

    setenv("DMT_SAMPLE", "phase:20000:500:1500:9:8:1", 1);
    p = SampleParams::fromEnv();
    EXPECT_EQ(p.phase.max_k, 9u);
    EXPECT_EQ(p.phase.dims, 8u);
    EXPECT_EQ(p.phase.seed, 1u);

    // The env knobs never touch uniform specs or direct parse() calls.
    setenv("DMT_SAMPLE", "1000:200:300", 1);
    p = SampleParams::fromEnv();
    EXPECT_FALSE(p.phaseMode());
    std::string err;
    ASSERT_TRUE(
        SampleParams::parse("phase:20000:500:1500", &p, &err)) << err;
    EXPECT_EQ(p.phase.max_k, 8u)
        << "parse() must stay hermetic for daemon job specs";

    unsetenv("DMT_SAMPLE");
    unsetenv("DMT_PHASE_K");
    unsetenv("DMT_PHASE_DIMS");
    unsetenv("DMT_PHASE_SEED");
}

TEST(SampleEnvDeath, PhaseGarbageAndRangeAreFatal)
{
    setenv("DMT_SAMPLE", "phase:abc:1:2", 1);
    EXPECT_DEATH(SampleParams::fromEnv(), "DMT_SAMPLE");
    setenv("DMT_SAMPLE", "phase:0:1:2", 1);
    EXPECT_DEATH(SampleParams::fromEnv(), "interval length");
    setenv("DMT_SAMPLE", "phase:100:5:10:99", 1);
    EXPECT_DEATH(SampleParams::fromEnv(), "maxk");

    setenv("DMT_SAMPLE", "phase:20000:500:1500", 1);
    setenv("DMT_PHASE_K", "5x", 1);
    EXPECT_DEATH(SampleParams::fromEnv(), "DMT_PHASE_K");
    setenv("DMT_PHASE_K", "0", 1);
    EXPECT_DEATH(SampleParams::fromEnv(), "out of range");
    unsetenv("DMT_PHASE_K");
    setenv("DMT_PHASE_DIMS", "257", 1);
    EXPECT_DEATH(SampleParams::fromEnv(), "out of range");
    unsetenv("DMT_PHASE_DIMS");
    setenv("DMT_PHASE_SEED", "4two", 1);
    EXPECT_DEATH(SampleParams::fromEnv(), "DMT_PHASE_SEED");
    unsetenv("DMT_PHASE_SEED");
    unsetenv("DMT_SAMPLE");
}

TEST(ServeEnv, DefaultsWhenUnset)
{
    clearServeEnv();
    const ServeOptions o = ServeOptions::fromEnv();
    EXPECT_EQ(o.port, 1998);
    EXPECT_EQ(o.pool, 0) << "0 = sweep pool width";
    EXPECT_EQ(o.cache_entries, 4096u);
    EXPECT_DOUBLE_EQ(o.drain_s, 30.0);
    EXPECT_TRUE(o.cache_dir.empty()) << "durable tier off by default";
    EXPECT_EQ(o.queue_max, 1024u);
    EXPECT_DOUBLE_EQ(o.deadline_s, 0.0) << "no deadline by default";
}

TEST(ServeEnv, ReadsValidValues)
{
    setenv("DMT_SERVE_PORT", "0", 1);
    setenv("DMT_SERVE_JOBS", "4", 1);
    setenv("DMT_SERVE_CACHE", "0", 1);
    setenv("DMT_SERVE_DRAIN_S", "1.5", 1);
    setenv("DMT_SERVE_QUEUE", "8", 1);
    setenv("DMT_SERVE_DEADLINE_S", "2.5", 1);
    const ServeOptions o = ServeOptions::fromEnv();
    EXPECT_EQ(o.port, 0) << "0 = ephemeral port";
    EXPECT_EQ(o.pool, 4);
    EXPECT_EQ(o.cache_entries, 0u) << "0 = storage off, dedup on";
    EXPECT_DOUBLE_EQ(o.drain_s, 1.5);
    EXPECT_EQ(o.queue_max, 8u);
    EXPECT_DOUBLE_EQ(o.deadline_s, 2.5);
    clearServeEnv();
}

TEST(ServeEnv, CacheDirIsCreatedAndAccepted)
{
    clearServeEnv();
    const char *dir = "serve_env_cache_dir";
    ::rmdir(dir);
    setenv("DMT_SERVE_CACHE_DIR", dir, 1);
    const ServeOptions o = ServeOptions::fromEnv();
    EXPECT_EQ(o.cache_dir, dir);
    struct stat st{};
    EXPECT_EQ(::stat(dir, &st), 0) << "fromEnv must create the dir";
    EXPECT_TRUE(S_ISDIR(st.st_mode));
    clearServeEnv();
    ::rmdir(dir);
}

TEST(ServeEnvDeath, GarbageIsFatal)
{
    clearServeEnv();
    setenv("DMT_SERVE_PORT", "http", 1);
    EXPECT_DEATH(ServeOptions::fromEnv(), "DMT_SERVE_PORT");
    setenv("DMT_SERVE_PORT", "1998x", 1);
    EXPECT_DEATH(ServeOptions::fromEnv(), "DMT_SERVE_PORT");
    unsetenv("DMT_SERVE_PORT");
    setenv("DMT_SERVE_DRAIN_S", "soon", 1);
    EXPECT_DEATH(ServeOptions::fromEnv(), "DMT_SERVE_DRAIN_S");
    unsetenv("DMT_SERVE_DRAIN_S");
    setenv("DMT_SERVE_QUEUE", "many", 1);
    EXPECT_DEATH(ServeOptions::fromEnv(), "DMT_SERVE_QUEUE");
    unsetenv("DMT_SERVE_QUEUE");
    setenv("DMT_SERVE_DEADLINE_S", "5s", 1);
    EXPECT_DEATH(ServeOptions::fromEnv(), "DMT_SERVE_DEADLINE_S");
    clearServeEnv();
}

TEST(ServeEnvDeath, RangeIsEnforced)
{
    clearServeEnv();
    setenv("DMT_SERVE_PORT", "70000", 1);
    EXPECT_DEATH(ServeOptions::fromEnv(), "out of range");
    unsetenv("DMT_SERVE_PORT");
    setenv("DMT_SERVE_JOBS", "5000", 1);
    EXPECT_DEATH(ServeOptions::fromEnv(), "out of range");
    unsetenv("DMT_SERVE_JOBS");
    setenv("DMT_SERVE_DRAIN_S", "-1", 1);
    EXPECT_DEATH(ServeOptions::fromEnv(), "out of range");
    unsetenv("DMT_SERVE_DRAIN_S");
    setenv("DMT_SERVE_DEADLINE_S", "-0.5", 1);
    EXPECT_DEATH(ServeOptions::fromEnv(), "out of range");
    clearServeEnv();
}

TEST(ServeEnvDeath, CacheDirThatIsAFileIsFatal)
{
    clearServeEnv();
    const char *path = "serve_env_cache_file";
    std::FILE *f = std::fopen(path, "w");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
    setenv("DMT_SERVE_CACHE_DIR", path, 1);
    EXPECT_DEATH(ServeOptions::fromEnv(), "not a directory");
    clearServeEnv();
    std::remove(path);
}

TEST(FaultNetEnv, DefaultsWhenUnset)
{
    clearFaultNetEnv();
    const FaultNetOptions o = FaultNetOptions::fromEnv(1998);
    EXPECT_EQ(o.upstream_port, 1998);
    EXPECT_EQ(o.listen_port, 0) << "proxy always picks an ephemeral "
                                   "port";
    EXPECT_DOUBLE_EQ(o.rate, 0.05);
    EXPECT_EQ(o.seed, 1998u);
    EXPECT_EQ(o.stall_ms, 100u);
}

TEST(FaultNetEnv, ReadsValidValues)
{
    clearFaultNetEnv();
    setenv("DMT_FAULTNET_RATE", "0.25", 1);
    setenv("DMT_FAULTNET_SEED", "42", 1);
    setenv("DMT_FAULTNET_STALL_MS", "7", 1);
    const FaultNetOptions o = FaultNetOptions::fromEnv(1998);
    EXPECT_DOUBLE_EQ(o.rate, 0.25);
    EXPECT_EQ(o.seed, 42u);
    EXPECT_EQ(o.stall_ms, 7u);
    // The enable flag itself is strictly boolean.
    setenv("DMT_FAULTNET", "1", 1);
    EXPECT_EQ(parseEnvU64("DMT_FAULTNET", 0, 0, 1), 1u);
    clearFaultNetEnv();
}

// ---------------------------------------------------------------------
// gen:<family>:<seed> workload-spec parsing: parseGenSpec() is the
// strict non-fatal layer the daemon relies on; buildWorkload() and
// canonicalWorkloadName() wrap it with fatal() for the local CLI.
// ---------------------------------------------------------------------

TEST(GenSpec, CanonicalSpecRoundTripsThroughParse)
{
    for (const GenFamilyInfo &fam : genFamilies()) {
        GenParams p;
        p.family = fam.name;
        p.seed = 97;
        p.depth = 6;
        p.trips = 33;
        p.entropy = 12;
        p.alias = 88;
        p.units = 40;

        GenParams q;
        std::string err;
        ASSERT_TRUE(parseGenSpec(p.canonicalSpec(), &q, &err))
            << fam.name << ": " << err;
        EXPECT_EQ(q.family, p.family);
        EXPECT_EQ(q.seed, p.seed);
        EXPECT_EQ(q.depth, p.depth);
        EXPECT_EQ(q.trips, p.trips);
        EXPECT_EQ(q.entropy, p.entropy);
        EXPECT_EQ(q.alias, p.alias);
        EXPECT_EQ(q.units, p.units);
        EXPECT_EQ(q.canonicalSpec(), p.canonicalSpec());
    }

    // The minimal spelling parses to the documented knob defaults and
    // canonicalizes to the fully explicit form.
    GenParams q;
    std::string err;
    ASSERT_TRUE(parseGenSpec("gen:loopnest:5", &q, &err)) << err;
    EXPECT_EQ(q.canonicalSpec(),
              "gen:loopnest:5:alias=25:depth=4:entropy=50:trips=8:"
              "units=16");
}

TEST(GenSpec, IsGenSpecOnlyMatchesThePrefix)
{
    EXPECT_TRUE(isGenSpec("gen:loopnest:1"));
    EXPECT_TRUE(isGenSpec("  gen:branchy:7:trips=3  "));
    EXPECT_FALSE(isGenSpec("go"));
    EXPECT_FALSE(isGenSpec("general"));
    EXPECT_FALSE(isGenSpec(""));
}

TEST(GenSpec, EveryRejectionClassYieldsAStructuredError)
{
    const struct
    {
        const char *spec;
        const char *needle; ///< must appear in the error message
    } cases[] = {
        {"gen", "must be gen:<family>:<seed>"},
        {"gen:loopnest", "must be gen:<family>:<seed>"},
        {"gen:nosuchfamily:1", "unknown workload family"},
        {"gen:nosuchfamily:1", "loopnest"}, // lists the families
        {"gen::1", "unknown workload family"},
        {"gen:loopnest:xyz", "bad seed"},
        {"gen:loopnest:3junk", "bad seed"},
        {"gen:loopnest:1:trips", "need knob=value"},
        {"gen:loopnest:1:=5", "need knob=value"},
        {"gen:loopnest:1:speed=5", "unknown knob"},
        {"gen:loopnest:1:trips=4:trips=5", "duplicate knob"},
        {"gen:loopnest:1:trips=4x", "bad value"},
        {"gen:loopnest:1:trips=0", "out of range"},
        {"gen:loopnest:1:trips=999999999", "out of range"},
        {"gen:loopnest:1:", "need knob=value"}, // trailing colon
    };
    for (const auto &c : cases) {
        GenParams p;
        std::string err;
        EXPECT_FALSE(parseGenSpec(c.spec, &p, &err)) << c.spec;
        EXPECT_NE(err.find(c.needle), std::string::npos)
            << c.spec << " -> \"" << err << "\"";
    }

    // A null err sink must be tolerated (callers that only branch).
    GenParams p;
    EXPECT_FALSE(parseGenSpec("gen:loopnest:xyz", &p, nullptr));
}

TEST(GenSpecDeath, MalformedSpecsAreFatalInTheLocalCli)
{
    EXPECT_DEATH(buildWorkload("gen:nosuchfamily:1"),
                 "unknown workload family");
    EXPECT_DEATH(buildGenWorkload(std::string("gen:loopnest:1:trips=0")),
                 "out of range");
    EXPECT_DEATH(canonicalWorkloadName("gen:loopnest:xyz"), "bad seed");
}

TEST(FaultNetEnvDeath, GarbageAndRangeAreFatal)
{
    clearFaultNetEnv();
    setenv("DMT_FAULTNET_RATE", "lots", 1);
    EXPECT_DEATH(FaultNetOptions::fromEnv(1998), "DMT_FAULTNET_RATE");
    setenv("DMT_FAULTNET_RATE", "1.5", 1);
    EXPECT_DEATH(FaultNetOptions::fromEnv(1998), "out of range");
    unsetenv("DMT_FAULTNET_RATE");
    setenv("DMT_FAULTNET_SEED", "0x29", 1);
    EXPECT_DEATH(FaultNetOptions::fromEnv(1998), "DMT_FAULTNET_SEED");
    unsetenv("DMT_FAULTNET_SEED");
    setenv("DMT_FAULTNET_STALL_MS", "90000", 1);
    EXPECT_DEATH(FaultNetOptions::fromEnv(1998), "out of range");
    unsetenv("DMT_FAULTNET_STALL_MS");
    setenv("DMT_FAULTNET", "yes", 1);
    EXPECT_DEATH(parseEnvU64("DMT_FAULTNET", 0, 0, 1), "DMT_FAULTNET");
    setenv("DMT_FAULTNET", "2", 1);
    EXPECT_DEATH(parseEnvU64("DMT_FAULTNET", 0, 0, 1), "out of range");
    clearFaultNetEnv();
}

} // namespace
} // namespace dmt
