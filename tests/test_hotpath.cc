/**
 * @file
 * Hot-loop performance regressions (see DESIGN.md section 11).
 *
 * 1. Steady-state allocation freedom: after warmup, DmtEngine::step()
 *    must not touch the heap.  A counting global operator new asserts
 *    zero allocations across a 10k-cycle window of a warmed-up dmt6
 *    run.  Any change that reintroduces per-cycle allocation (a
 *    temporary vector in a stage, a node-based container on a hot
 *    path) fails this test deterministically.
 *
 * 2. Issue-order semantics: the ReadyQueue must pop oldest-first (by
 *    the dispatch-time sequence number) and an FU-stalled instruction
 *    re-pushed with its original seq must keep its age priority —
 *    these two properties are what make the indexed ready structure
 *    bit-identical to the old sort-every-cycle implementation.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#if defined(__GLIBC__)
#include <execinfo.h>
#endif

#include "dmt/engine.hh"
#include "dmt/ready_queue.hh"
#include "workloads/workloads.hh"

// ---------------------------------------------------------------------
// Counting global allocator hooks.  Counting is off by default so the
// test harness itself (gtest, workload construction) is not measured;
// the steady-state window toggles it on around engine.step() calls.
// ---------------------------------------------------------------------

namespace
{

std::atomic<bool> g_count_allocs{false};
std::atomic<unsigned long long> g_alloc_count{0};

void *
countedAlloc(std::size_t n)
{
    if (g_count_allocs.load(std::memory_order_relaxed)) {
        const auto prior =
            g_alloc_count.fetch_add(1, std::memory_order_relaxed);
#if defined(__GLIBC__)
        // Diagnose the first offender: raw return addresses to stderr
        // (feed them to addr2line -e test_hotpath to locate the call).
        if (prior < 6) {
            void *frames[32];
            const int depth = backtrace(frames, 32);
            backtrace_symbols_fd(frames, depth, 2);
        }
#endif
    }
    if (n == 0)
        n = 1;
    void *p = std::malloc(n);
    if (!p)
        throw std::bad_alloc();
    return p;
}

} // namespace

void *
operator new(std::size_t n)
{
    return countedAlloc(n);
}

void *
operator new[](std::size_t n)
{
    return countedAlloc(n);
}

void *
operator new(std::size_t n, std::align_val_t align)
{
    if (g_count_allocs.load(std::memory_order_relaxed))
        g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    void *p = std::aligned_alloc(static_cast<std::size_t>(align),
                                 (n + static_cast<std::size_t>(align) - 1)
                                     & ~(static_cast<std::size_t>(align) - 1));
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t n, std::align_val_t align)
{
    return ::operator new(n, align);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace dmt
{
namespace
{

/** Environment knobs that would enable allocating subsystems (fault
 *  injection, telemetry, invariant audits) must not leak in. */
const struct EnvSanitizer
{
    EnvSanitizer()
    {
        for (const char *v :
             {"DMT_FAULT", "DMT_FAULT_RATE", "DMT_FAULT_SEED",
              "DMT_TRACE", "DMT_TRACE_FILE", "DMT_TRACE_COUNTERS_FILE",
              "DMT_TRACE_SAMPLE", "DMT_TRACE_RING", "DMT_WATCHDOG",
              "DMT_AUDIT", "DMT_BENCH_INSTR", "DMT_DEBUG"})
            unsetenv(v);
    }
} env_sanitizer;

// ---------------------------------------------------------------------
// Steady-state allocation freedom
// ---------------------------------------------------------------------

TEST(HotPath, ZeroAllocationsInWarmSteadyState)
{
    SimConfig cfg = SimConfig::dmt(6, 2);
    cfg.max_retired = 100000000; // never cap inside the window

    const Program prog = buildWorkload("go");
    DmtEngine engine(cfg, prog);

    // Warm up: let every pool, ring, scratch vector and index table
    // reach its high-water capacity.  40k cycles retires well over
    // 60k instructions on this machine (see tests/golden/go.json).
    constexpr int kWarmupCycles = 40000;
    for (int i = 0; i < kWarmupCycles && !engine.done(); ++i)
        engine.step();
    ASSERT_FALSE(engine.done())
        << "workload finished during warmup; window would be idle";

    constexpr int kWindowCycles = 10000;
    g_alloc_count.store(0, std::memory_order_relaxed);
    g_count_allocs.store(true, std::memory_order_relaxed);
    for (int i = 0; i < kWindowCycles && !engine.done(); ++i)
        engine.step();
    g_count_allocs.store(false, std::memory_order_relaxed);

    ASSERT_FALSE(engine.done());
    EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), 0ull)
        << "steady-state step() touched the heap; a hot-path container "
           "or temporary has regressed (see DESIGN.md section 11)";
    EXPECT_TRUE(engine.goldenOk()) << engine.goldenError();
}

// ---------------------------------------------------------------------
// Issue-order semantics of the ready structure
// ---------------------------------------------------------------------

TEST(HotPath, ReadyQueuePopsOldestFirst)
{
    ReadyQueue q;
    // Adversarial insertion order: descending, ascending, interleaved.
    const u64 seqs[] = {90, 10, 50, 30, 70, 20, 80, 40, 100, 60};
    for (u64 s : seqs)
        q.push(s, DynRef{static_cast<i32>(s), 0});

    u64 prev = 0;
    size_t n = 0;
    while (!q.empty()) {
        const ReadyQueue::Item &it = q.top();
        EXPECT_GT(it.seq, prev) << "pop order not oldest-first";
        EXPECT_EQ(it.ref.slot, static_cast<i32>(it.seq))
            << "payload does not travel with its seq";
        prev = it.seq;
        q.pop();
        ++n;
    }
    EXPECT_EQ(n, std::size(seqs));
}

TEST(HotPath, FuStallRetryKeepsAgePriority)
{
    // Mirror doIssue's retry protocol: drain the heap for this cycle,
    // collect FU-stalled items, re-push them with their ORIGINAL seq.
    // Next cycle they must come out ahead of anything younger, exactly
    // as the old build-sort-retry vector behaved.
    ReadyQueue q;
    for (u64 s : {5ull, 3ull, 8ull, 1ull})
        q.push(s, DynRef{static_cast<i32>(s), 0});

    // Cycle 1: one FU port — seq 1 issues, everything else stalls.
    std::vector<ReadyQueue::Item> retry;
    bool issued_one = false;
    while (!q.empty()) {
        ReadyQueue::Item it = q.top();
        q.pop();
        if (!issued_one) {
            EXPECT_EQ(it.seq, 1u) << "oldest must issue first";
            issued_one = true;
        } else {
            retry.push_back(it);
        }
    }
    for (const ReadyQueue::Item &it : retry)
        q.push(it.seq, it.ref);

    // A younger instruction becomes ready before the next issue cycle.
    q.push(2, DynRef{2, 0});

    // Cycle 2: stalled-and-retried seq 2? No — seq 2 is the *newly*
    // ready instruction; the retried 3 and 5 are older than 8 but the
    // new 2 is older still.  Global age order must hold regardless of
    // how an item entered the queue.
    const u64 expect[] = {2, 3, 5, 8};
    for (u64 e : expect) {
        ASSERT_FALSE(q.empty());
        EXPECT_EQ(q.top().seq, e);
        q.pop();
    }
    EXPECT_TRUE(q.empty());
}

} // namespace
} // namespace dmt
