/**
 * @file
 * Branch prediction tests: gshare learning and history mixing, BTB
 * tagging, RAS behaviour including the paper's spawn-time copy, and
 * the predictor facade's per-instruction behaviour.
 */

#include <gtest/gtest.h>

#include "branch/predictor.hh"
#include "isa/regs.hh"

namespace dmt
{
namespace
{

TEST(Gshare, LearnsBias)
{
    Gshare g(10, 6);
    const Addr pc = 0x400100;
    for (int i = 0; i < 4; ++i)
        g.update(pc, 0, true);
    EXPECT_TRUE(g.predict(pc, 0));
    for (int i = 0; i < 8; ++i)
        g.update(pc, 0, false);
    EXPECT_FALSE(g.predict(pc, 0));
}

TEST(Gshare, HistoryDisambiguates)
{
    Gshare g(12, 8);
    const Addr pc = 0x400200;
    // Alternating pattern becomes predictable with history.
    for (int i = 0; i < 64; ++i) {
        const u32 h = (i & 1) ? 0x55 : 0xAA;
        g.update(pc, h, (i & 1) != 0);
    }
    EXPECT_TRUE(g.predict(pc, 0x55));
    EXPECT_FALSE(g.predict(pc, 0xAA));
}

TEST(Gshare, PushHistoryMasks)
{
    Gshare g(12, 4);
    u32 h = 0;
    for (int i = 0; i < 10; ++i)
        h = g.pushHistory(h, true);
    EXPECT_EQ(h, 0xFu) << "history limited to 4 bits";
    h = g.pushHistory(h, false);
    EXPECT_EQ(h, 0xEu);
}

TEST(Btb, TagsPreventAliasing)
{
    Btb b(4); // 16 entries
    b.update(0x400000, 0x400100);
    Addr t = 0;
    EXPECT_TRUE(b.lookup(0x400000, &t));
    EXPECT_EQ(t, 0x400100u);
    // Same index, different tag (16 entries * 4 bytes = 64-byte wrap).
    EXPECT_FALSE(b.lookup(0x400000 + 64, &t));
    b.update(0x400000 + 64, 0x400200);
    EXPECT_TRUE(b.lookup(0x400000 + 64, &t));
    EXPECT_EQ(t, 0x400200u);
    EXPECT_FALSE(b.lookup(0x400000, &t)) << "displaced";
}

TEST(Ras, PushPopOrder)
{
    Ras r;
    r.push(0x100);
    r.push(0x200);
    EXPECT_EQ(r.size(), 2);
    EXPECT_EQ(r.peek(), 0x200u);
    EXPECT_EQ(r.pop(), 0x200u);
    EXPECT_EQ(r.pop(), 0x100u);
    EXPECT_TRUE(r.empty());
    EXPECT_EQ(r.pop(), 0u) << "empty pops return 0";
}

TEST(Ras, WrapsAtDepth)
{
    Ras r;
    for (int i = 0; i < Ras::kDepth + 5; ++i)
        r.push(0x1000 + static_cast<Addr>(i) * 4);
    EXPECT_EQ(r.size(), Ras::kDepth);
    EXPECT_EQ(r.pop(), 0x1000u + (Ras::kDepth + 4) * 4);
}

TEST(Ras, CopySemantics)
{
    Ras a;
    a.push(0x10);
    Ras b = a; // the paper copies the RAS at spawn
    b.push(0x20);
    EXPECT_EQ(a.size(), 1);
    EXPECT_EQ(b.size(), 2);
    EXPECT_EQ(a.peek(), 0x10u);
}

TEST(PredictorFacade, DirectBranchUsesGshare)
{
    BranchPredictorUnit bpu(PredictorParams{});
    ThreadBranchState ts;
    Instruction br{Opcode::BNE, 0, 8, 9, 64};
    const Addr pc = 0x400040;

    // Train taken.
    for (int i = 0; i < 4; ++i)
        bpu.updateCond(pc, 0, true);
    ThreadBranchState fresh;
    const BranchPrediction p = bpu.predict(br, pc, fresh);
    EXPECT_TRUE(p.taken);
    EXPECT_EQ(p.target, br.branchTarget(pc));
    EXPECT_EQ(fresh.history & 1, 1u) << "speculative history updated";
}

TEST(PredictorFacade, CallPushesReturnPops)
{
    BranchPredictorUnit bpu(PredictorParams{});
    ThreadBranchState ts;
    Instruction call{Opcode::JAL, reg::ra, 0, 0,
                     static_cast<i32>(0x400100)};
    const BranchPrediction pc_pred = bpu.predict(call, 0x400010, ts);
    EXPECT_TRUE(pc_pred.taken);
    EXPECT_EQ(pc_pred.target, 0x400100u);
    EXPECT_EQ(ts.ras.peek(), 0x400014u);

    Instruction ret{Opcode::JR, 0, reg::ra, 0, 0};
    const BranchPrediction rp = bpu.predict(ret, 0x400200, ts);
    EXPECT_TRUE(rp.used_ras);
    EXPECT_EQ(rp.target, 0x400014u);
    EXPECT_TRUE(ts.ras.empty());
}

TEST(PredictorFacade, IndirectUsesBtb)
{
    BranchPredictorUnit bpu(PredictorParams{});
    ThreadBranchState ts;
    Instruction jalr{Opcode::JALR, reg::ra, 8, 0, 0};
    const Addr pc = 0x400300;

    const BranchPrediction miss = bpu.predict(jalr, pc, ts);
    EXPECT_TRUE(miss.target_unknown);

    bpu.updateIndirect(pc, 0x400500);
    ThreadBranchState ts2;
    const BranchPrediction hit = bpu.predict(jalr, pc, ts2);
    EXPECT_FALSE(hit.target_unknown);
    EXPECT_EQ(hit.target, 0x400500u);
}

TEST(PredictorFacade, SpawnStateClearsHistoryCopiesRas)
{
    ThreadBranchState parent;
    parent.history = 0xAB;
    parent.ras.push(0x1234);

    ThreadBranchState child;
    child.clearForSpawn(parent);
    EXPECT_EQ(child.history, 0u) << "paper: history cleared at spawn";
    EXPECT_EQ(child.ras.peek(), 0x1234u) << "paper: RAS copied at spawn";
}

TEST(PredictorFacade, NonControlIsFallThrough)
{
    BranchPredictorUnit bpu(PredictorParams{});
    ThreadBranchState ts;
    Instruction add{Opcode::ADD, 1, 2, 3, 0};
    const BranchPrediction p = bpu.predict(add, 0x400000, ts);
    EXPECT_FALSE(p.taken);
    EXPECT_EQ(p.target, 0x400004u);
}

} // namespace
} // namespace dmt
