/**
 * @file
 * Directed data-speculation scenarios: programs constructed so that a
 * specific DMT mechanism *must* fire — cross-thread memory violations,
 * value-mispredicted thread inputs, recovery-time branch divergence —
 * plus white-box resource-conservation checks through the
 * EngineInspector friend hook.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "casm/builder.hh"
#include "dmt/engine.hh"
#include "sim/functional.hh"
#include "workloads/workloads.hh"

namespace dmt
{

/** White-box access for tests (friend of DmtEngine). */
class EngineInspector
{
  public:
    /** Tear everything down and verify no resource leaked. */
    static void
    verifyConservation(DmtEngine &e)
    {
        while (e.tree.size() > 0)
            e.squashThread(e.ctx(e.tree.last()));
        EXPECT_EQ(e.pool.live(), 0) << "DynInst leak";
        EXPECT_EQ(e.window_used, 0) << "window accounting leak";
        // Drain the store queue: retired stores awaiting DCache ports.
        while (!e.drain_q.empty())
            e.doStoreDrain();
        EXPECT_EQ(e.prf.numFree(), e.prf.count())
            << "physical register leak";
    }

    static int windowUsed(DmtEngine &e) { return e.window_used; }
};

namespace
{

using namespace reg;

std::vector<u32>
golden(const Program &prog)
{
    ArchState st;
    MainMemory mem;
    st.reset(prog);
    mem.loadProgram(prog);
    runFunctional(st, mem, prog);
    return st.output;
}

/**
 * A program whose after-call thread *must* load a value the procedure
 * stores just before returning: the spawned thread's speculative load
 * beats the store, guaranteeing an ordering violation + recovery.
 */
Program
violationProgram(int iters)
{
    AsmBuilder b;
    const auto cell = b.newLabel("cell");
    b.bindData(cell);
    b.dataWords({0});
    const auto bump = b.newLabel("bump");
    const auto loop = b.newLabel();

    b.li(s0, 0);                 // i
    b.li(s1, static_cast<u32>(iters));
    b.li(s2, 0);                 // checksum
    b.la(s3, cell);
    b.bind(loop);
    b.jal(bump);                 // spawn point: continuation loads cell
    b.lw(t0, 0, s3);             // races bump's store
    b.add(s2, s2, t0);
    b.addi(s0, s0, 1);
    b.blt(s0, s1, loop);
    b.out(s2);
    b.halt();

    // bump: cell += 3, with a few cycles of address dallying so the
    // spawned thread's load reliably issues first.
    b.bind(bump);
    b.lw(t1, 0, s3);
    b.mul(t2, t1, t1);
    b.div_(t2, t2, t1);          // slow dependency chain (divide)
    b.addi(t1, t1, 3);
    b.sw(t1, 0, s3);
    b.ret();
    return b.finish();
}

TEST(Recovery, MemoryViolationsAreDetectedAndRepaired)
{
    const Program p = violationProgram(60);
    SimConfig cfg = SimConfig::dmt(4, 2);
    cfg.memdep_sync = false; // force the violation path, no throttle
    DmtEngine e(cfg, p);
    e.run();
    ASSERT_TRUE(e.programCompleted());
    ASSERT_TRUE(e.goldenOk()) << e.goldenError();
    EXPECT_EQ(e.outputStream(), golden(p));
    EXPECT_GT(e.stats().lsq_violations.value(), 0u)
        << "the scenario must actually trigger violations";
    EXPECT_GT(e.stats().recoveries.value(), 0u);
    EXPECT_GT(e.stats().recovery_dispatches.value(), 0u);
}

TEST(Recovery, MemdepThrottleReducesViolations)
{
    const Program p = violationProgram(120);
    SimConfig off = SimConfig::dmt(4, 2);
    off.memdep_sync = false;
    SimConfig on = SimConfig::dmt(4, 2);
    on.memdep_sync = true;

    DmtEngine e_off(off, p);
    e_off.run();
    DmtEngine e_on(on, p);
    e_on.run();
    ASSERT_TRUE(e_off.goldenOk() && e_on.goldenOk());
    EXPECT_LT(e_on.stats().lsq_violations.value(),
              e_off.stats().lsq_violations.value())
        << "the trained throttle must remove repeat offenders";
}

/**
 * A program whose after-call thread consumes $v0 immediately — the
 * classic value-mispredicted input.  With dataflow prediction the
 * last-modifier history must learn it.
 */
Program
returnValueProgram(int iters)
{
    AsmBuilder b;
    const auto f = b.newLabel("f");
    const auto loop = b.newLabel();
    b.li(s0, 0);
    b.li(s1, static_cast<u32>(iters));
    b.li(s2, 0);
    b.bind(loop);
    b.move(a0, s0);
    b.jal(f);
    b.xor_(s2, s2, v0);   // immediate use of the return value
    b.addi(s0, s0, 1);
    b.blt(s0, s1, loop);
    b.out(s2);
    b.halt();
    b.bind(f);
    // Body long enough that the caller's frontend has not already
    // fetched past the continuation when the call dispatches.
    b.mul(t0, a0, a0);
    b.sll(t1, t0, 3);
    b.xor_(t1, t1, a0);
    b.srl(t2, t1, 5);
    b.add(t0, t0, t2);
    b.andi(t3, t0, 0xFF);
    b.add(t0, t0, t3);
    b.sll(t4, t0, 1);
    b.sub(t0, t4, t0);
    b.xor_(t0, t0, t1);
    b.srl(t5, t0, 7);
    b.add(t0, t0, t5);
    b.addi(v0, t0, 13);
    b.ret();
    return b.finish();
}

TEST(Recovery, MispredictedInputsAreCorrected)
{
    const Program p = returnValueProgram(80);
    SimConfig cfg = SimConfig::dmt(4, 2);
    DmtEngine e(cfg, p);
    e.run();
    ASSERT_TRUE(e.goldenOk()) << e.goldenError();
    EXPECT_EQ(e.outputStream(), golden(p));
    EXPECT_GT(e.stats().inputs_used.value(), 0u);
    EXPECT_LT(e.stats().inputs_hit.value(),
              e.stats().inputs_used.value())
        << "the scenario must contain real input mispredictions";
}

TEST(Recovery, DataflowPredictorLearnsLastModifier)
{
    const Program p = returnValueProgram(150);
    SimConfig cfg = SimConfig::dmt(2, 2);
    DmtEngine e(cfg, p);
    e.run();
    ASSERT_TRUE(e.goldenOk()) << e.goldenError();
    EXPECT_GT(e.stats().df_matches.value(), 0u)
        << "repeated v0 mispredictions must arm last-modifier watches";
    EXPECT_GT(e.stats().df_deliveries.value(), 0u);
}

/**
 * The spawned thread's first branch depends on the call's return
 * value: a wrong input flips the branch, exercising divergence
 * handling in both configurations.
 */
Program
divergenceProgram(int iters)
{
    AsmBuilder b;
    const auto f = b.newLabel("f");
    const auto loop = b.newLabel();
    const auto odd = b.newLabel();
    const auto cont = b.newLabel();
    b.li(s0, 0);
    b.li(s1, static_cast<u32>(iters));
    b.li(s2, 0);
    b.bind(loop);
    b.move(a0, s0);
    b.jal(f);
    b.andi(t0, v0, 1);
    b.bnez(t0, odd);        // direction depends on the call result
    b.addi(s2, s2, 5);
    b.b(cont);
    b.bind(odd);
    b.sll(s2, s2, 1);
    b.xor_(s2, s2, v0);
    b.bind(cont);
    b.addi(s0, s0, 1);
    b.blt(s0, s1, loop);
    b.out(s2);
    b.halt();
    b.bind(f);
    // Result parity is data dependent (xorshift-ish); padded so the
    // after-call thread really spawns.
    b.sll(t0, a0, 3);
    b.xor_(t0, t0, a0);
    b.srl(t1, t0, 2);
    b.mul(t2, t0, t1);
    b.add(t0, t0, t2);
    b.andi(t3, t0, 0x3F);
    b.sll(t4, t3, 2);
    b.add(t0, t0, t4);
    b.srl(t5, t0, 9);
    b.xor_(t0, t0, t5);
    b.xor_(v0, t0, t1);
    b.ret();
    return b.finish();
}

TEST(Recovery, DivergenceEarlyRepair)
{
    const Program p = divergenceProgram(100);
    SimConfig cfg = SimConfig::dmt(4, 2);
    cfg.early_divergence_repair = true;
    DmtEngine e(cfg, p);
    e.run();
    ASSERT_TRUE(e.goldenOk()) << e.goldenError();
    EXPECT_EQ(e.outputStream(), golden(p));
}

TEST(Recovery, DivergenceRetirementFlush)
{
    const Program p = divergenceProgram(100);
    SimConfig cfg = SimConfig::dmt(4, 2);
    cfg.early_divergence_repair = false; // the paper's Section 3.3
    DmtEngine e(cfg, p);
    e.run();
    ASSERT_TRUE(e.goldenOk()) << e.goldenError();
    EXPECT_EQ(e.outputStream(), golden(p));
}

// ---- conservation under stress -----------------------------------------

class Conservation : public ::testing::TestWithParam<const char *>
{
};

TEST_P(Conservation, NoLeaksAfterPartialRun)
{
    // Stop mid-flight (maximum in-flight state) and tear down.
    SimConfig cfg = SimConfig::dmt(6, 2);
    cfg.tb_size = 64; // stress buffer-full paths
    cfg.max_retired = 7000;
    DmtEngine e(cfg, buildWorkload(GetParam()));
    e.run();
    ASSERT_TRUE(e.goldenOk()) << e.goldenError();
    EngineInspector::verifyConservation(e);
}

INSTANTIATE_TEST_SUITE_P(Suite, Conservation,
                         ::testing::Values("go", "m88ksim", "gcc",
                                           "compress", "li", "ijpeg",
                                           "perl", "vortex"));

TEST(Conservation, WindowNeverExceedsConfiguredSize)
{
    SimConfig cfg = SimConfig::dmt(4, 2);
    cfg.window_size = 32;
    cfg.max_retired = 5000;
    DmtEngine e(cfg, buildWorkload("li"));
    int peak = 0;
    while (!e.done()) {
        e.step();
        peak = std::max(peak, EngineInspector::windowUsed(e));
    }
    ASSERT_TRUE(e.goldenOk()) << e.goldenError();
    EXPECT_LE(peak, 32);
}

TEST(Recovery, TinyLsqStillCorrect)
{
    SimConfig cfg = SimConfig::dmt(4, 2);
    cfg.lq_size = 4;
    cfg.sq_size = 4;
    const Program p = mkAliasStress(150);
    DmtEngine e(cfg, p);
    e.run();
    ASSERT_TRUE(e.programCompleted());
    ASSERT_TRUE(e.goldenOk()) << e.goldenError();
    EXPECT_EQ(e.outputStream(), golden(p));
}

TEST(Recovery, PaperLsqSizingRule)
{
    // lq = sq = tb/4 by default (paper Section 3.5).
    SimConfig cfg = SimConfig::dmt(4, 2);
    cfg.tb_size = 400;
    EXPECT_EQ(cfg.lqSize(), 100);
    EXPECT_EQ(cfg.sqSize(), 100);
}

} // namespace
} // namespace dmt
