/**
 * @file
 * Ordering-tree tests mirroring the paper's Figure 2 example plus the
 * splice-on-removal and subtree operations the engine relies on.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hh"
#include "dmt/order_tree.hh"

namespace dmt
{
namespace
{

TEST(OrderTree, SingleThread)
{
    OrderTree t(8);
    t.resetWith(0);
    EXPECT_EQ(t.head(), 0);
    EXPECT_EQ(t.last(), 0);
    EXPECT_EQ(t.successor(0), kNoThread);
    EXPECT_EQ(t.predecessor(0), kNoThread);
    EXPECT_EQ(t.size(), 1);
}

TEST(OrderTree, PaperFigure2Sequence)
{
    // T1 spawns T2 at a call, then T3 at a backward branch: most
    // recent children retire first, so the order is T1, T3, T2.
    OrderTree t(8);
    t.resetWith(1);
    t.addChild(1, 2);
    t.addChild(1, 3);
    const auto &order = t.order();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 3);
    EXPECT_EQ(order[2], 2);
    EXPECT_EQ(t.successor(1), 3);
    EXPECT_EQ(t.successor(3), 2);
    EXPECT_EQ(t.last(), 2);
    EXPECT_TRUE(t.before(3, 2));
    EXPECT_FALSE(t.before(2, 3));
}

TEST(OrderTree, RemovalSplicesChildren)
{
    OrderTree t(8);
    t.resetWith(0);
    t.addChild(0, 1);
    t.addChild(1, 2); // order: 0, 1, 2
    t.remove(1);      // 2 takes 1's position
    const auto &order = t.order();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 0);
    EXPECT_EQ(order[1], 2);
    EXPECT_EQ(t.successor(0), 2);
}

TEST(OrderTree, HeadRetirementPromotesChild)
{
    OrderTree t(8);
    t.resetWith(0);
    t.addChild(0, 1);
    t.addChild(0, 2); // order: 0, 2, 1
    t.remove(0);
    EXPECT_EQ(t.head(), 2);
    EXPECT_EQ(t.successor(2), 1);
    EXPECT_EQ(t.size(), 2);
}

TEST(OrderTree, DeepSpawnChains)
{
    OrderTree t(8);
    t.resetWith(0);
    // Recursion: each new child spawned by the previous one.
    t.addChild(0, 1);
    t.addChild(1, 2);
    t.addChild(2, 3);
    const auto &order = t.order();
    EXPECT_EQ(order, (std::vector<ThreadId>{0, 1, 2, 3}));
    // Then thread 0 spawns another (more recent -> right after 0).
    t.addChild(0, 4);
    EXPECT_EQ(t.order(), (std::vector<ThreadId>{0, 4, 1, 2, 3}));
    EXPECT_EQ(t.last(), 3);
}

TEST(OrderTree, SubtreeCollectsDescendants)
{
    OrderTree t(8);
    t.resetWith(0);
    t.addChild(0, 1);
    t.addChild(1, 2);
    t.addChild(1, 3);
    auto sub = t.subtree(1);
    std::sort(sub.begin(), sub.end());
    EXPECT_EQ(sub, (std::vector<ThreadId>{1, 2, 3}));
    EXPECT_EQ(t.subtree(2), (std::vector<ThreadId>{2}));
}

TEST(OrderTree, LastIsAlwaysLeaf)
{
    OrderTree t(8);
    t.resetWith(0);
    t.addChild(0, 1);
    t.addChild(1, 2);
    t.addChild(0, 3);
    // order: 0, 3, 1, 2 — the last element must have no children
    // (pre-emption squashes exactly one thread).
    const ThreadId last = t.last();
    EXPECT_EQ(t.subtree(last).size(), 1u);
}

TEST(OrderTree, ContainsTracksMembership)
{
    OrderTree t(4);
    t.resetWith(0);
    EXPECT_TRUE(t.contains(0));
    EXPECT_FALSE(t.contains(1));
    t.addChild(0, 1);
    EXPECT_TRUE(t.contains(1));
    t.remove(1);
    EXPECT_FALSE(t.contains(1));
}

TEST(OrderTree, ReuseAfterRemoval)
{
    OrderTree t(4);
    t.resetWith(0);
    t.addChild(0, 1);
    t.remove(1);
    t.addChild(0, 1); // context id reused
    EXPECT_EQ(t.order(), (std::vector<ThreadId>{0, 1}));
}

TEST(OrderTreeProperty, RandomOpsKeepInvariants)
{
    // Random spawn/remove sequences must always keep: (a) a consistent
    // order list, (b) before() agreeing with list positions, (c) the
    // last element childless (safe to pre-empt), (d) size bookkeeping.
    for (u64 seed = 1; seed <= 20; ++seed) {
        Rng rng(seed * 1337);
        OrderTree t(8);
        t.resetWith(0);
        std::vector<ThreadId> active{0};

        for (int step = 0; step < 200; ++step) {
            const bool can_add = active.size() < 8;
            const bool do_add =
                can_add && (active.size() <= 1 || rng.chance(0.6));
            if (do_add) {
                ThreadId child = -1;
                for (ThreadId i = 0; i < 8; ++i) {
                    if (!t.contains(i)) {
                        child = i;
                        break;
                    }
                }
                const ThreadId parent = active[static_cast<size_t>(
                    rng.below(active.size()))];
                t.addChild(parent, child);
                active.push_back(child);
            } else {
                // Remove either the tail (pre-emption) or a random
                // leaf-most victim via subtree squash order.
                const ThreadId victim = t.last();
                ASSERT_EQ(t.subtree(victim).size(), 1u);
                t.remove(victim);
                active.erase(std::find(active.begin(), active.end(),
                                       victim));
                if (active.empty()) {
                    t.resetWith(0);
                    active.push_back(0);
                }
            }

            const auto &order = t.order();
            ASSERT_EQ(order.size(), active.size());
            for (size_t i = 0; i < order.size(); ++i) {
                ASSERT_TRUE(t.contains(order[i]));
                for (size_t j = i + 1; j < order.size(); ++j) {
                    ASSERT_TRUE(t.before(order[i], order[j]));
                    ASSERT_FALSE(t.before(order[j], order[i]));
                }
                if (i > 0) {
                    ASSERT_EQ(t.predecessor(order[i]), order[i - 1]);
                }
                if (i + 1 < order.size()) {
                    ASSERT_EQ(t.successor(order[i]), order[i + 1]);
                }
            }
            if (!order.empty()) {
                ASSERT_EQ(t.subtree(t.last()).size(), 1u);
            }
        }
    }
}

} // namespace
} // namespace dmt
