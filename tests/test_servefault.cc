/**
 * @file
 * The service under network fire: a seeded FaultNetProxy (refusals,
 * garbled bytes, torn chunks, mid-reply disconnects, stalls) between a
 * retrying client and a live daemon.  The contract under test is the
 * robustness headline — every reply that survives the storm is
 * byte-identical to a direct run, and the daemon itself never dies —
 * plus the proxy's own sanity (transparent at rate 0, total at rate 1).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "exp/runner.hh"
#include "exp/sampled.hh"
#include "serve/client.hh"
#include "serve/faultnet.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "uarch/config.hh"

namespace dmt
{
namespace
{

constexpr u64 kBudget = 2000;

JobSpec
cellJob(const std::string &workload)
{
    JobSpec job;
    job.workload = workload;
    job.cfg = SimConfig::dmt(2, 2);
    job.cfg.max_retired = kBudget;
    job.max_retired = kBudget;
    return job;
}

class FaultNetFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ServeOptions opts;
        opts.port = 0;
        opts.pool = 2;
        opts.cache_entries = 64;
        opts.drain_s = 10.0;
        server = std::make_unique<Server>(opts);
        std::string err;
        ASSERT_TRUE(server->start(&err)) << err;
    }

    std::unique_ptr<FaultNetProxy>
    makeProxy(double rate, u64 seed, u64 stall_ms = 2)
    {
        FaultNetOptions fo;
        fo.upstream_port = server->port();
        fo.rate = rate;
        fo.seed = seed;
        fo.stall_ms = stall_ms;
        auto proxy = std::make_unique<FaultNetProxy>(fo);
        std::string err;
        EXPECT_TRUE(proxy->start(&err)) << err;
        return proxy;
    }

    std::unique_ptr<Server> server;
};

TEST_F(FaultNetFixture, RateZeroIsTransparent)
{
    auto proxy = makeProxy(0.0, 1);
    ServeClient c;
    std::string err;
    ASSERT_TRUE(c.connect(proxy->port(), &err, 2.0)) << err;

    const JobSpec job = cellJob("go");
    JsonValue reply;
    std::string raw;
    ASSERT_TRUE(c.request(runRequestLine(1, job), &reply, &err)) << err;
    ASSERT_TRUE(reply.find("ok")->asBool()) << c.lastLine();
    ASSERT_TRUE(extractRawResult(c.lastLine(), &raw));
    const RunResult direct =
        runWorkloadJob(job.cfg, job.workload, job.max_retired, job.sample);
    EXPECT_EQ(raw, direct.jsonString())
        << "a fault-free proxy must be invisible";
    const auto ctr = proxy->counters();
    EXPECT_EQ(ctr.faults(), 0u);
    EXPECT_GE(ctr.chunks, 2u);
    proxy->stop();
}

TEST_F(FaultNetFixture, RateOneRefusesEverythingAndRetryGivesUp)
{
    auto proxy = makeProxy(1.0, 2);
    ServeClient c;
    RetryPolicy pol;
    pol.attempts = 4;
    pol.base_s = 0.005;
    pol.max_s = 0.02;
    pol.op_timeout_s = 0.5;
    JsonValue reply;
    std::string err;
    EXPECT_FALSE(c.requestWithRetry(proxy->port(),
                                    simpleRequestLine("ping", 1), 1,
                                    pol, &reply, &err))
        << "a dead network must surface as a bounded failure";
    EXPECT_EQ(proxy->counters().refused, proxy->counters().connections);
    proxy->stop();

    // The daemon behind the dead proxy never noticed a thing.
    ServeClient direct;
    ASSERT_TRUE(direct.connect(server->port(), &err, 2.0)) << err;
    ASSERT_TRUE(direct.request(simpleRequestLine("ping", 2), &reply,
                               &err))
        << err;
    EXPECT_TRUE(reply.find("ok")->asBool());
}

TEST_F(FaultNetFixture, StormSurvivorsAreByteIdenticalAndDaemonLives)
{
    // Ground truth, computed directly (and warming the daemon's cache
    // through a clean connection so the storm mostly replays cells —
    // the contract must hold for cached and fresh replies alike).
    const std::vector<std::string> cells = {"go", "compress", "li"};
    std::vector<std::string> direct(cells.size());
    for (size_t i = 0; i < cells.size(); ++i) {
        const JobSpec job = cellJob(cells[i]);
        direct[i] = runWorkloadJob(job.cfg, job.workload,
                                   job.max_retired, job.sample)
                        .jsonString();
    }

    auto proxy = makeProxy(0.08, 0x5709, 2);
    ServeClient c;
    RetryPolicy pol;
    pol.attempts = 40;
    pol.base_s = 0.002;
    pol.max_s = 0.02;
    pol.op_timeout_s = 2.0;
    pol.seed = 0xfeed;

    // Keep firing the grid through the proxy until the storm has
    // produced at least 10k fault-decision events (every accepted
    // connection and every forwarded chunk draws one), with a hard
    // iteration cap as a runaway guard.
    constexpr u64 kEvents = 10000;
    constexpr int kMaxIters = 40000;
    u64 answered = 0;
    std::string err;
    int it = 0;
    for (; it < kMaxIters; ++it) {
        const auto ctr = proxy->counters();
        if (ctr.connections + ctr.chunks >= kEvents)
            break;
        const size_t cell = static_cast<size_t>(it) % cells.size();
        const i64 id = it + 1;
        JsonValue reply;
        ASSERT_TRUE(c.requestWithRetry(
            proxy->port(), runRequestLine(id, cellJob(cells[cell])),
            id, pol, &reply, &err))
            << "iteration " << it << ": " << err;
        ASSERT_TRUE(reply.find("ok")->asBool()) << c.lastLine();
        std::string raw;
        ASSERT_TRUE(extractRawResult(c.lastLine(), &raw));
        ASSERT_EQ(raw, direct[cell])
            << "iteration " << it
            << ": a survivor reply must be byte-identical to a direct "
               "run";
        ++answered;
    }
    const auto ctr = proxy->counters();
    EXPECT_GE(ctr.connections + ctr.chunks, kEvents)
        << "the storm must actually reach 10k events (iterations: "
        << it << ")";
    EXPECT_GT(ctr.faults(), 0u) << "a storm with no faults proves "
                                   "nothing";
    EXPECT_GT(answered, 0u);
    proxy->stop();

    // The daemon never exited: a clean direct connection still gets
    // correct, byte-identical answers and coherent stats.
    ServeClient direct_c;
    ASSERT_TRUE(direct_c.connect(server->port(), &err, 2.0)) << err;
    JsonValue reply;
    ASSERT_TRUE(direct_c.request(runRequestLine(1, cellJob("go")),
                                 &reply, &err))
        << err;
    ASSERT_TRUE(reply.find("ok")->asBool());
    std::string raw;
    ASSERT_TRUE(extractRawResult(direct_c.lastLine(), &raw));
    EXPECT_EQ(raw, direct[0]);
    ASSERT_TRUE(direct_c.request(simpleRequestLine("stats", 2), &reply,
                                 &err))
        << err;
    EXPECT_TRUE(reply.find("ok")->asBool());
    EXPECT_EQ(reply.find("stats")->find("jobs_simulated")->asNumber(),
              static_cast<double>(cells.size()))
        << "retries replay the cache; they must never re-simulate";
}

} // namespace
} // namespace dmt
