/**
 * @file
 * Differential exactness tests for the superblock-translated
 * fast-forward engine (sim/translated_core.hh).  The contract under
 * test: DMT_FF_MODE=translated produces architectural state
 * bit-identical to the batched interpreter — registers, PC, halt flag,
 * OUT stream (exact vector, count and hash), sparse memory pages and
 * executed-instruction count — for every conformance scenario, for
 * arbitrary mid-block budget stops, across checkpoint capture, across
 * tiny-cache eviction churn, and through the whole sampled-run
 * pipeline (byte-identical canonical RunResult JSON).
 *
 * Scenario count mirrors tests/test_conformance.cc: all generator
 * families x DMT_CONF_SEEDS seeds (default 15; CI smoke uses 2).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/env.hh"
#include "common/rng.hh"
#include "exp/sampled.hh"
#include "sim/checkpoint.hh"
#include "sim/functional_core.hh"
#include "sim/translated_core.hh"
#include "workloads/generator.hh"
#include "workloads/workloads.hh"

namespace dmt
{
namespace
{

/** Knobs that would perturb the differential runs below must not leak
 *  in from the caller's environment. */
const struct EnvSanitizer
{
    EnvSanitizer()
    {
        for (const char *v :
             {"DMT_FAULT", "DMT_FAULT_RATE", "DMT_FAULT_SEED",
              "DMT_TRACE", "DMT_TRACE_FILE", "DMT_TRACE_COUNTERS_FILE",
              "DMT_TRACE_SAMPLE", "DMT_TRACE_RING", "DMT_WATCHDOG",
              "DMT_AUDIT", "DMT_BENCH_INSTR", "DMT_SAMPLE",
              "DMT_CKPT_DIR", "DMT_FF_MODE", "DMT_FF_CACHE"})
            unsetenv(v);
    }
} env_sanitizer;

/** Seeds per family (same knob as the conformance sweep). */
int
seedsPerFamily()
{
    static const int n = [] {
        const u64 v = parseEnvU64("DMT_CONF_SEEDS", 0);
        return v > 0 ? static_cast<int>(v) : 15;
    }();
    return n;
}

/** Scenario knobs, identical derivation to test_conformance.cc so the
 *  two sweeps cover the same program population. */
GenParams
scenarioParams(int family_idx, u64 seed)
{
    const GenFamilyInfo &fam =
        genFamilies()[static_cast<size_t>(family_idx)];
    Rng r(seed * 0x9e3779b97f4a7c15ull
          + static_cast<u64>(family_idx) * 0x100000001b3ull);
    GenParams p;
    p.family = fam.name;
    p.seed = seed;
    p.depth = 2 + static_cast<int>(r.below(4));    // 2..5
    p.trips = 4 + static_cast<int>(r.below(24));   // 4..27
    p.entropy = static_cast<int>(r.below(101));
    p.alias = static_cast<int>(r.below(101));
    p.units = 8 + static_cast<int>(r.below(41));   // 8..48
    return p;
}

/** Safety cap: every scenario program retires far less than this. */
constexpr u64 kRunCap = u64{1} << 24;

/** Every observable architectural fact the two engines must agree on. */
void
expectSameState(const FunctionalCore &interp,
                const FunctionalCore &xlat, const std::string &ctx)
{
    EXPECT_EQ(interp.instrCount(), xlat.instrCount()) << ctx;
    EXPECT_EQ(interp.state().pc, xlat.state().pc) << ctx;
    EXPECT_EQ(interp.halted(), xlat.halted()) << ctx;
    EXPECT_EQ(interp.state().regs, xlat.state().regs) << ctx;
    EXPECT_EQ(interp.state().output, xlat.state().output) << ctx;
    EXPECT_EQ(interp.state().out_count, xlat.state().out_count) << ctx;
    EXPECT_EQ(interp.state().out_hash, xlat.state().out_hash) << ctx;
    EXPECT_TRUE(interp.memory() == xlat.memory()) << ctx;
}

/** Run @p core to completion (HALT) under the safety cap. */
void
runToHalt(FunctionalCore &core, const std::string &ctx)
{
    u64 total = 0;
    while (!core.halted() && total < kRunCap)
        total += core.run(kRunCap - total);
    ASSERT_TRUE(core.halted()) << ctx << ": no HALT under the cap";
}

// ---- the scenario sweep ------------------------------------------------

class TranslatedConformance : public ::testing::TestWithParam<int>
{
};

TEST_P(TranslatedConformance, BitIdenticalToInterpreter)
{
    const int family_idx = GetParam() / seedsPerFamily();
    const u64 seed =
        static_cast<u64>(GetParam() % seedsPerFamily()) + 1;
    const GenParams p = scenarioParams(family_idx, seed);
    const std::string spec = p.canonicalSpec();
    const Program prog = buildWorkload(spec);

    // Exact OUT vectors (not just the digest): stream_output off.
    FunctionalCore interp(prog, /*stream_output=*/false);
    interp.setMode(FfMode::Interp);
    FunctionalCore xlat(prog, /*stream_output=*/false);
    xlat.setMode(FfMode::Translated);

    // Phase 1: chunked lock-step over a prefix, cycling through chunk
    // sizes (including single-instruction steps) so budget stops land
    // mid-block, mid-loop and on every kind of control transfer.
    static constexpr u64 kChunks[] = {1, 1, 2, 3, 5, 7, 13, 64};
    size_t ci = 0;
    while (!interp.halted() && interp.instrCount() < 1500) {
        const u64 chunk = kChunks[ci++ % (sizeof(kChunks)
                                          / sizeof(kChunks[0]))];
        const u64 di = interp.run(chunk);
        const u64 dx = xlat.run(chunk);
        ASSERT_EQ(di, dx) << spec << " @" << interp.instrCount();
        ASSERT_EQ(interp.state().pc, xlat.state().pc)
            << spec << " @" << interp.instrCount();
        if (di == 0)
            break;
    }
    expectSameState(interp, xlat, spec + " (chunked prefix)");

    // Phase 2: run both to completion and compare the full final state.
    runToHalt(interp, spec);
    runToHalt(xlat, spec);
    expectSameState(interp, xlat, spec + " (completion)");

    // A halted core must stay halted and consume nothing.
    EXPECT_EQ(xlat.run(10), 0u) << spec;

    const TranslationStats xs = xlat.translationStats();
    EXPECT_GT(xs.blocks_translated, 0u) << spec;
    EXPECT_EQ(xs.instrs_executed, xlat.instrCount()) << spec;
}

INSTANTIATE_TEST_SUITE_P(
    Families, TranslatedConformance,
    ::testing::Range(0, static_cast<int>(genFamilies().size())
                            * seedsPerFamily()),
    [](const ::testing::TestParamInfo<int> &param_info) {
        const int fam = param_info.param / seedsPerFamily();
        const int seed = param_info.param % seedsPerFamily() + 1;
        return std::string(genFamilies()[static_cast<size_t>(fam)].name)
            + "_s" + std::to_string(seed);
    });

// ---- suite kernels -----------------------------------------------------

TEST(Translated, SuiteKernelsBitIdentical)
{
    for (const char *name : {"go", "m88ksim", "compress", "li",
                             "ijpeg", "perl", "vortex", "gcc"}) {
        const Program prog = buildWorkload(name);
        FunctionalCore interp(prog, /*stream_output=*/false);
        interp.setMode(FfMode::Interp);
        FunctionalCore xlat(prog, /*stream_output=*/false);
        xlat.setMode(FfMode::Translated);
        runToHalt(interp, name);
        runToHalt(xlat, name);
        expectSameState(interp, xlat, name);
    }
}

// ---- translation-cache behaviour --------------------------------------

TEST(Translated, TinyCacheEvictsAndRetranslatesExactly)
{
    // A 2-block cache on a call-tree workload forces constant eviction
    // and retranslation churn; results must not change.
    const Program prog = buildWorkload("gen:calltree:7");
    FunctionalCore interp(prog, /*stream_output=*/false);
    interp.setMode(FfMode::Interp);
    FunctionalCore xlat(prog, /*stream_output=*/false);
    xlat.setMode(FfMode::Translated);
    xlat.setCacheBound(2);

    runToHalt(interp, "calltree interp");
    runToHalt(xlat, "calltree tiny cache");
    expectSameState(interp, xlat, "tiny-cache eviction churn");

    const TranslationStats xs = xlat.translationStats();
    EXPECT_GT(xs.evictions, 0u);
    EXPECT_GT(xs.retranslations, 0u);
    EXPECT_GT(xs.blocks_translated, xs.retranslations);
}

TEST(Translated, CacheBoundOneStillExact)
{
    // The degenerate bound: every block transfer is a miss.
    const Program prog = buildWorkload("gen:branchy:3:trips=40");
    FunctionalCore interp(prog, /*stream_output=*/false);
    interp.setMode(FfMode::Interp);
    FunctionalCore xlat(prog, /*stream_output=*/false);
    xlat.setMode(FfMode::Translated);
    xlat.setCacheBound(1);
    runToHalt(interp, "branchy interp");
    runToHalt(xlat, "branchy bound-1");
    expectSameState(interp, xlat, "cache bound 1");
}

TEST(Translated, IndirectStressReturnsAndPtrchase)
{
    // Deep call trees return through JR — the inline next-block
    // predictor's hard case (one site, many return targets).
    {
        const Program prog = buildWorkload("gen:calltree:13:depth=5");
        FunctionalCore interp(prog, /*stream_output=*/false);
        interp.setMode(FfMode::Interp);
        FunctionalCore xlat(prog, /*stream_output=*/false);
        xlat.setMode(FfMode::Translated);
        runToHalt(interp, "calltree interp");
        runToHalt(xlat, "calltree translated");
        expectSameState(interp, xlat, "calltree indirect stress");
        const TranslationStats xs = xlat.translationStats();
        EXPECT_GT(xs.indirect_hits + xs.indirect_misses, 0u);
    }
    // Pointer-chase stresses the data side: loads walking sparse pages.
    {
        const Program prog =
            buildWorkload("gen:ptrchase:11:trips=500:units=64");
        FunctionalCore interp(prog, /*stream_output=*/false);
        interp.setMode(FfMode::Interp);
        FunctionalCore xlat(prog, /*stream_output=*/false);
        xlat.setMode(FfMode::Translated);
        runToHalt(interp, "ptrchase interp");
        runToHalt(xlat, "ptrchase translated");
        expectSameState(interp, xlat, "ptrchase data stress");
    }
}

TEST(Translated, HotLoopChainsBlocks)
{
    const Program prog = buildWorkload("gen:loopnest:5:trips=200");
    FunctionalCore xlat(prog, /*stream_output=*/false);
    xlat.setMode(FfMode::Translated);
    runToHalt(xlat, "loopnest translated");
    const TranslationStats xs = xlat.translationStats();
    // Steady-state loops must run chained: far more hits than misses
    // (every miss is a one-time chain installation).
    EXPECT_GT(xs.chain_hits, 10 * xs.chain_misses);
    EXPECT_GT(xs.blocks_executed, xs.blocks_translated);
}

TEST(Translated, InvalidateAllRetranslatesExactly)
{
    const Program prog = buildWorkload("gen:loopnest:3:trips=50");

    // Reference: uninterrupted interpreter run.
    FunctionalCore interp(prog, /*stream_output=*/false);
    interp.setMode(FfMode::Interp);
    runToHalt(interp, "loopnest interp");

    // Drive TranslatedCore directly and invalidate mid-run.
    ArchState state;
    state.reset(prog);
    state.stream_output = false;
    MainMemory mem;
    mem.loadProgram(prog);
    TranslatedCore core(prog);
    u64 executed = 0;
    executed += core.run(state, mem, 1000);
    core.invalidateAll();
    EXPECT_EQ(core.cachedBlocks(), 0u);
    while (!state.halted && executed < kRunCap)
        executed += core.run(state, mem, kRunCap - executed);
    ASSERT_TRUE(state.halted);

    EXPECT_EQ(executed, interp.instrCount());
    EXPECT_EQ(state.pc, interp.state().pc);
    EXPECT_EQ(state.regs, interp.state().regs);
    EXPECT_EQ(state.output, interp.state().output);
    EXPECT_TRUE(mem == interp.memory());
}

// ---- checkpoint pipeline -----------------------------------------------

TEST(Translated, CheckpointBytesIdenticalAcrossEngines)
{
    // Capture a checkpoint at the same position under both engines and
    // demand the serialized files match byte for byte.
    const Program prog = buildWorkload("compress");
    const u64 pos = 100000;

    auto capture_at = [&](FfMode mode) {
        FunctionalCore core(prog);
        core.setMode(mode);
        while (core.instrCount() < pos && !core.halted())
            core.run(pos - core.instrCount());
        EXPECT_EQ(core.instrCount(), pos);
        return Checkpoint::capture(core);
    };
    const Checkpoint a = capture_at(FfMode::Interp);
    const Checkpoint b = capture_at(FfMode::Translated);
    EXPECT_EQ(a.instr_count, b.instr_count);
    EXPECT_EQ(a.prog_hash, b.prog_hash);

    auto file_bytes = [](const std::string &path) {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream os;
        os << in.rdbuf();
        return os.str();
    };
    const std::string pa = "xckpt_interp.ckpt";
    const std::string pb = "xckpt_translated.ckpt";
    ASSERT_TRUE(a.save(pa));
    ASSERT_TRUE(b.save(pb));
    EXPECT_EQ(file_bytes(pa), file_bytes(pb));
    std::remove(pa.c_str());
    std::remove(pb.c_str());
}

TEST(Translated, CheckpointRestoreMidBlockResumesExactly)
{
    // Restore into a fresh core at an arbitrary (mid-block) position
    // and continue translated; the end state must match a straight
    // interpreter run.
    const Program prog = buildWorkload("gen:branchy:9:trips=60");
    FunctionalCore interp(prog, /*stream_output=*/false);
    interp.setMode(FfMode::Interp);
    runToHalt(interp, "branchy interp");

    FunctionalCore ff(prog, /*stream_output=*/false);
    ff.setMode(FfMode::Translated);
    ff.run(777); // deliberately not a block boundary
    FunctionalCore resumed(prog, /*stream_output=*/false);
    resumed.setMode(FfMode::Translated);
    resumed.restore(ff.state(), ff.memory(), ff.instrCount());
    runToHalt(resumed, "branchy resumed");
    expectSameState(interp, resumed, "mid-block checkpoint resume");
}

// ---- sampled pipeline --------------------------------------------------

TEST(Translated, SampledRunsByteIdenticalAcrossEngines)
{
    SampleParams p;
    p.skip = 40000;
    p.warm = 400;
    p.measure = 1200;
    p.max_intervals = 3;
    const SimConfig cfg = SimConfig::dmt(6, 2);

    setenv("DMT_FF_MODE", "interp", 1);
    clearCheckpointCache(); // cursor re-reads DMT_FF_MODE on rebuild
    const RunResult ri = runWorkloadSampled(cfg, "go", p);

    setenv("DMT_FF_MODE", "translated", 1);
    clearCheckpointCache();
    const RunResult rx = runWorkloadSampled(cfg, "go", p);

    unsetenv("DMT_FF_MODE");
    clearCheckpointCache();

    // Canonical JSON (timing excluded) must match byte for byte —
    // same windows, same CPI, same stat blocks.
    EXPECT_EQ(ri.jsonString(), rx.jsonString());
    EXPECT_EQ(ri.sampling.intervals, 3u);
    // The telemetry (timing-only fields) records which engine ran.
    EXPECT_EQ(ri.sampling.ff_mode, "interp");
    EXPECT_EQ(rx.sampling.ff_mode, "translated");
    EXPECT_EQ(ri.sampling.ff_blocks_translated, 0u);
    EXPECT_GT(rx.sampling.ff_blocks_translated, 0u);
    EXPECT_GT(rx.sampling.ff_chain_hits, 0u);
}

} // namespace
} // namespace dmt
