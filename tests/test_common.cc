/**
 * @file
 * Unit tests for the common infrastructure: bit utilities, the
 * deterministic RNG, statistics primitives and string helpers.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/bitutils.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/strutil.hh"

namespace dmt
{
namespace
{

TEST(BitUtils, BitsExtract)
{
    EXPECT_EQ(bits(0xDEADBEEF, 31, 28), 0xDu);
    EXPECT_EQ(bits(0xDEADBEEF, 3, 0), 0xFu);
    EXPECT_EQ(bits(0xDEADBEEF, 31, 0), 0xDEADBEEFu);
    EXPECT_EQ(bits(0xFF00, 15, 8), 0xFFu);
}

TEST(BitUtils, InsertBits)
{
    EXPECT_EQ(insertBits(0xF, 3, 0), 0xFu);
    EXPECT_EQ(insertBits(0xF, 7, 4), 0xF0u);
    EXPECT_EQ(insertBits(0x1FF, 7, 4), 0xF0u) << "field must be masked";
}

TEST(BitUtils, SignExtend)
{
    EXPECT_EQ(signExtend(0xFF, 8), -1);
    EXPECT_EQ(signExtend(0x7F, 8), 127);
    EXPECT_EQ(signExtend(0x8000, 16), -32768);
    EXPECT_EQ(signExtend(0xFFFF, 16), -1);
    EXPECT_EQ(signExtend(0x1, 1), -1);
}

TEST(BitUtils, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(4096));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(48));
    EXPECT_EQ(floorLog2(1), 0);
    EXPECT_EQ(floorLog2(4096), 12);
}

TEST(Rng, Deterministic)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    EXPECT_NE(a.next64(), b.next64());
}

TEST(Rng, RangeBounds)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const i64 v = r.range(-5, 12);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 12);
    }
}

TEST(Rng, BelowBounds)
{
    Rng r(9);
    std::set<u64> seen;
    for (int i = 0; i < 1000; ++i) {
        const u64 v = r.below(17);
        EXPECT_LT(v, 17u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 17u) << "all residues should appear";
}

TEST(Rng, ChanceExtremes)
{
    Rng r(11);
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Stats, CounterBasics)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, AverageTracksMinMaxMean)
{
    Average a;
    a.sample(2.0);
    a.sample(4.0);
    a.sample(9.0);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Stats, HistogramBuckets)
{
    Histogram h(0.0, 10.0, 5);
    h.sample(0.5);
    h.sample(9.9);
    h.sample(5.0);
    h.sample(-3.0);  // clamps low
    h.sample(100.0); // clamps high
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(4), 2u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_DOUBLE_EQ(h.bucketLow(0), 0.0);
    EXPECT_DOUBLE_EQ(h.bucketHigh(4), 10.0);
}

TEST(Stats, GroupDumpContainsEntries)
{
    Counter c;
    c += 3;
    StatGroup g("unit");
    g.addCounter("events", &c, "some events");
    const std::string out = g.dump();
    EXPECT_NE(out.find("unit.events"), std::string::npos);
    EXPECT_NE(out.find("3"), std::string::npos);
}

TEST(StrUtil, Trim)
{
    EXPECT_EQ(trim("  hi  "), "hi");
    EXPECT_EQ(trim("hi"), "hi");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
}

TEST(StrUtil, SplitFields)
{
    const auto f = splitFields("a, b,,c", ", ");
    ASSERT_EQ(f.size(), 3u);
    EXPECT_EQ(f[0], "a");
    EXPECT_EQ(f[1], "b");
    EXPECT_EQ(f[2], "c");
}

TEST(StrUtil, SplitLines)
{
    const auto l = splitLines("one\ntwo\r\nthree");
    ASSERT_EQ(l.size(), 3u);
    EXPECT_EQ(l[1], "two");
    EXPECT_EQ(l[2], "three");
}

TEST(StrUtil, ParseIntForms)
{
    i64 v = 0;
    EXPECT_TRUE(parseInt("42", &v));
    EXPECT_EQ(v, 42);
    EXPECT_TRUE(parseInt("-17", &v));
    EXPECT_EQ(v, -17);
    EXPECT_TRUE(parseInt("0x10", &v));
    EXPECT_EQ(v, 16);
    EXPECT_TRUE(parseInt("0b101", &v));
    EXPECT_EQ(v, 5);
    EXPECT_FALSE(parseInt("", &v));
    EXPECT_FALSE(parseInt("12x", &v));
    EXPECT_FALSE(parseInt("0x", &v));
}

TEST(StrUtil, IEquals)
{
    EXPECT_TRUE(iequals("AbC", "abc"));
    EXPECT_FALSE(iequals("abc", "abd"));
    EXPECT_FALSE(iequals("ab", "abc"));
}

TEST(StrUtil, StrPrintf)
{
    EXPECT_EQ(strprintf("%d-%s", 7, "x"), "7-x");
    EXPECT_EQ(strprintf("%04x", 0xab), "00ab");
}

} // namespace
} // namespace dmt
