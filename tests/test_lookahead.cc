/**
 * @file
 * Lookahead episode bookkeeping (Figures 8 and 9): an episode — the
 * interval an earlier-in-program-order stream spent blocked behind an
 * eventually-mispredicted branch or an ICache miss — only counts once
 * its owner finally retires, covers exactly [start, end), excludes the
 * owner itself, and is dropped when the owner is squashed.  These are
 * the rules that make the figure-8/9 percentages mean what the paper
 * says they mean.
 */

#include <gtest/gtest.h>

#include "dmt/lookahead.hh"
#include "exp/experiments.hh"
#include "exp/runner.hh"

namespace dmt
{
namespace
{

TEST(EpisodeTracker, NotCountableUntilOwnerRetires)
{
    EpisodeTracker t;
    const u64 h = t.open(10, 20);
    EXPECT_FALSE(t.covered(15, 0))
        << "pending episodes must not count: the owner might be on a "
           "wrong path";
    t.ownerRetired(h);
    EXPECT_TRUE(t.covered(15, 0));
}

TEST(EpisodeTracker, IntervalIsHalfOpen)
{
    EpisodeTracker t;
    const u64 h = t.open(10, 20);
    t.ownerRetired(h);
    EXPECT_FALSE(t.covered(9, 0));
    EXPECT_TRUE(t.covered(10, 0)) << "start is inclusive";
    EXPECT_TRUE(t.covered(19, 0));
    EXPECT_FALSE(t.covered(20, 0)) << "end is exclusive";
}

TEST(EpisodeTracker, DroppedOwnerNeverCounts)
{
    EpisodeTracker t;
    const u64 h = t.open(10, 20);
    t.drop(h);
    // Even a stale ownerRetired() after the squash must not resurrect
    // the episode.
    t.ownerRetired(h);
    EXPECT_FALSE(t.covered(15, 0));
}

TEST(EpisodeTracker, OwnerExcludesItself)
{
    EpisodeTracker t;
    const u64 h = t.open(10, 20);
    t.ownerRetired(h);
    EXPECT_FALSE(t.covered(15, h))
        << "the owner retiring inside its own episode is not lookahead";
    EXPECT_TRUE(t.covered(15, h + 1));
}

TEST(EpisodeTracker, OverlappingEpisodesAreIndependent)
{
    EpisodeTracker t;
    const u64 a = t.open(10, 20);
    const u64 b = t.open(15, 30);
    t.ownerRetired(b);
    EXPECT_FALSE(t.covered(12, 0)) << "only a (pending) covers 12";
    EXPECT_TRUE(t.covered(25, 0)) << "b covers 25";
    t.ownerRetired(a);
    EXPECT_TRUE(t.covered(12, 0));
    // Excluding b still leaves a covering the overlap.
    EXPECT_TRUE(t.covered(16, b));
    EXPECT_FALSE(t.covered(25, b));
}

TEST(EpisodeTracker, PruneDiscardsOnlyDeadEpisodes)
{
    EpisodeTracker t;
    const u64 a = t.open(10, 20);   // dies at horizon 21
    const u64 b = t.open(15, 40);
    t.ownerRetired(a);
    t.ownerRetired(b);
    EXPECT_EQ(t.size(), 2u);
    t.prune(20);
    EXPECT_EQ(t.size(), 2u) << "end == horizon - 1 not yet prunable";
    t.prune(21);
    EXPECT_EQ(t.size(), 1u);
    EXPECT_FALSE(t.covered(12, 0)) << "a is gone; b starts at 15";
    EXPECT_TRUE(t.covered(35, 0)) << "b survives";
}

TEST(EpisodeTracker, PruneIsFifoBounded)
{
    // prune() only pops from the front: a long-lived early episode
    // blocks later short ones from being reclaimed, but they must
    // still not count once dead... they do count while alive though.
    EpisodeTracker t;
    const u64 a = t.open(0, 100);
    const u64 b = t.open(5, 10);
    t.ownerRetired(a);
    t.ownerRetired(b);
    t.prune(50);
    EXPECT_EQ(t.size(), 2u) << "front episode still alive";
    EXPECT_TRUE(t.covered(7, 0)) << "b is dead time-wise but harmless";
    t.prune(101);
    EXPECT_EQ(t.size(), 0u);
}

TEST(EpisodeTracker, HandlesAreMonotonicAndStable)
{
    EpisodeTracker t;
    const u64 h1 = t.open(0, 1);
    const u64 h2 = t.open(0, 1);
    EXPECT_LT(h1, h2);
    // Operations on unknown handles are ignored, not fatal.
    t.ownerRetired(9999);
    t.drop(9999);
    EXPECT_FALSE(t.covered(0, 0));
}

// ---- engine-level: the counters the figures are computed from --------

TEST(Lookahead, BaselineHasExactlyZeroLookahead)
{
    // "identically zero on a single-threaded machine, which is the
    // paper's point."
    const RunResult r = runWorkload(SimConfig::baseline(), "go", 8000);
    EXPECT_EQ(r.stats.la_fetch_beyond_mispredict.value(), 0u);
    EXPECT_EQ(r.stats.la_exec_beyond_mispredict.value(), 0u);
    EXPECT_EQ(r.stats.la_fetch_beyond_imiss.value(), 0u);
    EXPECT_EQ(r.stats.la_exec_beyond_imiss.value(), 0u);
}

TEST(Lookahead, DmtLooksPastMispredictedBranches)
{
    // The branchy go kernel on the 6-thread machine must exhibit
    // fetch-beyond-mispredict, and executed lookahead can never exceed
    // fetched lookahead (execution follows fetch).
    const RunResult r = runWorkload(exp::fig89Dmt(), "go", 20000);
    EXPECT_GT(r.stats.la_fetch_beyond_mispredict.value(), 0u);
    EXPECT_GE(r.stats.la_fetch_beyond_mispredict.value(),
              r.stats.la_exec_beyond_mispredict.value());
    EXPECT_LE(r.stats.la_fetch_beyond_mispredict.value(),
              r.stats.retired.value());
}

} // namespace
} // namespace dmt
