/**
 * @file
 * ISA-level tests: opcode traits, instruction classification, and an
 * exhaustive encode/decode round-trip sweep over every opcode.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "isa/disasm.hh"
#include "isa/encoding.hh"
#include "isa/regs.hh"

namespace dmt
{
namespace
{

TEST(OpInfo, Classification)
{
    EXPECT_TRUE(opInfo(Opcode::LW).isLoad);
    EXPECT_TRUE(opInfo(Opcode::SB).isStore);
    EXPECT_TRUE(opInfo(Opcode::BEQ).isCondBranch);
    EXPECT_TRUE(opInfo(Opcode::JAL).isCall);
    EXPECT_TRUE(opInfo(Opcode::JALR).isIndirect);
    EXPECT_FALSE(opInfo(Opcode::J).isIndirect);
    EXPECT_EQ(opInfo(Opcode::ADD).numSrcs, 2);
    EXPECT_EQ(opInfo(Opcode::ADDI).numSrcs, 1);
    EXPECT_EQ(opInfo(Opcode::LUI).numSrcs, 0);
    EXPECT_FALSE(opInfo(Opcode::SW).hasDest);
    EXPECT_TRUE(opInfo(Opcode::JAL).hasDest);
}

TEST(Instruction, SourcesAndDest)
{
    Instruction add{Opcode::ADD, 3, 1, 2, 0};
    EXPECT_EQ(add.numSrcs(), 2);
    EXPECT_EQ(add.src(0), 1);
    EXPECT_EQ(add.src(1), 2);
    EXPECT_EQ(add.dest(), 3);
    EXPECT_EQ(add.effectiveDest(), 3);

    Instruction to_zero{Opcode::ADD, 0, 1, 2, 0};
    EXPECT_EQ(to_zero.dest(), 0);
    EXPECT_EQ(to_zero.effectiveDest(), -1)
        << "writes to r0 are architecturally discarded";

    Instruction sw{Opcode::SW, 0, 29, 8, 16};
    EXPECT_EQ(sw.dest(), -1);
    EXPECT_EQ(sw.numSrcs(), 2);
}

TEST(Instruction, BranchTargets)
{
    Instruction beq{Opcode::BEQ, 0, 1, 2, -16};
    EXPECT_TRUE(beq.isBackwardBranch(0x1000));
    EXPECT_EQ(beq.branchTarget(0x1000), 0x1000u + 4 - 16);

    Instruction fwd{Opcode::BNE, 0, 1, 2, 32};
    EXPECT_FALSE(fwd.isBackwardBranch(0x1000));
    EXPECT_EQ(fwd.branchTarget(0x1000), 0x1024u);

    Instruction j{Opcode::J, 0, 0, 0,
                  static_cast<i32>(0x00400100)};
    EXPECT_EQ(j.jumpTarget(), 0x00400100u);
}

TEST(Instruction, ReturnDetection)
{
    Instruction ret{Opcode::JR, 0, reg::ra, 0, 0};
    EXPECT_TRUE(ret.isReturn());
    Instruction jr_other{Opcode::JR, 0, reg::t0, 0, 0};
    EXPECT_FALSE(jr_other.isReturn());
}

TEST(Instruction, MemBytes)
{
    EXPECT_EQ(Instruction{Opcode::LW}.memBytes(), 4);
    EXPECT_EQ(Instruction{Opcode::LH}.memBytes(), 2);
    EXPECT_EQ(Instruction{Opcode::SB}.memBytes(), 1);
    EXPECT_EQ(Instruction{Opcode::ADD}.memBytes(), 0);
    EXPECT_TRUE(Instruction{Opcode::LB}.memSigned());
    EXPECT_FALSE(Instruction{Opcode::LBU}.memSigned());
}

TEST(Regs, NamesRoundTrip)
{
    for (int i = 0; i < kNumLogRegs; ++i) {
        LogReg r = 99;
        ASSERT_TRUE(parseReg(regName(static_cast<LogReg>(i)), &r));
        EXPECT_EQ(r, i);
    }
}

TEST(Regs, NumericForms)
{
    LogReg r;
    EXPECT_TRUE(parseReg("$29", &r));
    EXPECT_EQ(r, reg::sp);
    EXPECT_TRUE(parseReg("r31", &r));
    EXPECT_EQ(r, reg::ra);
    EXPECT_TRUE(parseReg("5", &r));
    EXPECT_EQ(r, 5);
    EXPECT_FALSE(parseReg("$32", &r));
    EXPECT_FALSE(parseReg("bogus", &r));
    EXPECT_FALSE(parseReg("", &r));
}

/** Build a representative valid instruction for an opcode. */
Instruction
sampleInst(Opcode op, Rng &rng)
{
    Instruction inst;
    inst.op = op;
    const OpInfo &info = opInfo(op);
    inst.rs = static_cast<LogReg>(rng.below(32));
    inst.rt = static_cast<LogReg>(rng.below(32));
    if (info.hasDest)
        inst.rd = static_cast<LogReg>(rng.below(32));

    switch (op) {
      case Opcode::SLL:
      case Opcode::SRL:
      case Opcode::SRA:
        inst.rt = 0;
        inst.imm = static_cast<i32>(rng.below(32));
        break;
      case Opcode::ANDI:
      case Opcode::ORI:
      case Opcode::XORI:
      case Opcode::LUI:
        inst.imm = static_cast<i32>(rng.below(0x10000));
        if (op == Opcode::LUI)
            inst.rs = 0;
        break;
      case Opcode::BEQ:
      case Opcode::BNE:
      case Opcode::BLT:
      case Opcode::BGE:
      case Opcode::BLTU:
      case Opcode::BGEU:
        inst.imm = static_cast<i32>(rng.range(-8192, 8191)) * 4;
        break;
      case Opcode::J:
      case Opcode::JAL:
        inst.imm = static_cast<i32>(rng.below(1 << 24)) * 4;
        inst.rs = inst.rt = 0;
        if (op == Opcode::JAL)
            inst.rd = reg::ra;
        break;
      case Opcode::JR:
      case Opcode::JALR:
        inst.rt = 0;
        break;
      case Opcode::NOP:
      case Opcode::HALT:
        inst.rs = inst.rt = 0;
        break;
      case Opcode::OUT:
        inst.rt = 0;
        break;
      default:
        if (info.hasImm)
            inst.imm = static_cast<i32>(rng.range(-32768, 32767));
        break;
    }
    return inst;
}

class EncodingRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(EncodingRoundTrip, EncodeDecodeIdentity)
{
    const Opcode op = static_cast<Opcode>(GetParam());
    Rng rng(static_cast<u64>(GetParam()) * 977 + 3);
    for (int i = 0; i < 200; ++i) {
        const Instruction inst = sampleInst(op, rng);
        u32 word = 0;
        std::string err;
        ASSERT_TRUE(encodeInst(inst, &word, &err))
            << mnemonic(op) << ": " << err;
        const Instruction back = decodeInst(word);
        EXPECT_EQ(back.op, inst.op);
        if (inst.info().hasDest) {
            EXPECT_EQ(back.rd, inst.rd) << mnemonic(op);
        }
        if (inst.numSrcs() >= 1) {
            EXPECT_EQ(back.src(0), inst.src(0)) << mnemonic(op);
        }
        if (inst.numSrcs() >= 2) {
            EXPECT_EQ(back.src(1), inst.src(1)) << mnemonic(op);
        }
        EXPECT_EQ(back.imm, inst.imm) << mnemonic(op);
    }
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, EncodingRoundTrip,
                         ::testing::Range(0, kNumOpcodes));

TEST(Encoding, RejectsOutOfRange)
{
    u32 word;
    std::string err;
    Instruction bad{Opcode::ADDI, 1, 2, 0, 40000};
    EXPECT_FALSE(encodeInst(bad, &word, &err));
    Instruction badsh{Opcode::SLL, 1, 2, 0, 33};
    EXPECT_FALSE(encodeInst(badsh, &word, &err));
    Instruction badbr{Opcode::BEQ, 0, 1, 2, 6}; // not word aligned
    EXPECT_FALSE(encodeInst(badbr, &word, &err));
}

TEST(Encoding, GarbageDecodesToHalt)
{
    const Instruction inst = decodeInst(0xFFFFFFFFu);
    EXPECT_EQ(inst.op, Opcode::HALT);
}

TEST(Disasm, RendersCommonForms)
{
    EXPECT_EQ(disassemble({Opcode::ADD, 3, 1, 2, 0}), "add $v1, $at, $v0");
    EXPECT_EQ(disassemble({Opcode::ADDI, 8, 9, 0, -4}),
              "addi $t0, $t1, -4");
    EXPECT_EQ(disassemble({Opcode::LW, 8, 29, 0, 16}), "lw $t0, 16($sp)");
    EXPECT_EQ(disassemble({Opcode::SW, 0, 29, 8, 16}), "sw $t0, 16($sp)");
    EXPECT_EQ(disassemble({Opcode::JR, 0, 31, 0, 0}), "jr $ra");
    EXPECT_EQ(disassemble(makeHalt()), "halt");
    const std::string br =
        disassemble({Opcode::BEQ, 0, 1, 2, 8}, 0x400000);
    EXPECT_NE(br.find("beq"), std::string::npos);
    EXPECT_NE(br.find("0x40000c"), std::string::npos);
}

} // namespace
} // namespace dmt
