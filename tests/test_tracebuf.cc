/**
 * @file
 * Trace buffer tests: append-time renaming (source refs to last
 * writers / thread inputs), live-out tracking, truncation with writer
 * snapshots, and in-order retirement popping.
 */

#include <gtest/gtest.h>

#include "dmt/trace_buffer.hh"

namespace dmt
{
namespace
{

TBEntry
mk(Opcode op, LogReg rd, LogReg rs, LogReg rt, Addr pc = 0x400000)
{
    TBEntry e;
    e.inst = Instruction{op, rd, rs, rt, 0};
    e.pc = pc;
    return e;
}

TEST(TraceBuffer, AppendAssignsIds)
{
    TraceBuffer tb;
    tb.reset(8);
    EXPECT_TRUE(tb.empty());
    const u64 a = tb.append(mk(Opcode::ADDI, 8, 0, 0));
    const u64 b = tb.append(mk(Opcode::ADDI, 9, 0, 0));
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    EXPECT_EQ(tb.size(), 2);
    EXPECT_TRUE(tb.contains(a));
    EXPECT_FALSE(tb.contains(2));
}

TEST(TraceBuffer, SourceRenaming)
{
    TraceBuffer tb;
    tb.reset(8);
    // t0 <- thread input t1
    const u64 i0 = tb.append(mk(Opcode::ADD, 8, 9, 0));
    const TBEntry &e0 = tb.at(i0);
    EXPECT_EQ(e0.src[0].kind, SrcRef::ThreadInput);
    EXPECT_EQ(e0.src[0].reg, 9);
    EXPECT_EQ(e0.src[1].kind, SrcRef::None) << "r0 source is constant";

    // t2 <- t0 (local) + t1 (thread input)
    const u64 i1 = tb.append(mk(Opcode::ADD, 10, 8, 9));
    const TBEntry &e1 = tb.at(i1);
    EXPECT_EQ(e1.src[0].kind, SrcRef::TbEntry);
    EXPECT_EQ(e1.src[0].tb_id, i0);
    EXPECT_EQ(e1.src[1].kind, SrcRef::ThreadInput);
}

TEST(TraceBuffer, SelfReferenceUsesPreviousWriter)
{
    TraceBuffer tb;
    tb.reset(8);
    const u64 i0 = tb.append(mk(Opcode::ADDI, 8, 8, 0));
    const TBEntry &e0 = tb.at(i0);
    EXPECT_EQ(e0.src[0].kind, SrcRef::ThreadInput)
        << "first definition reads the thread input";
    const u64 i1 = tb.append(mk(Opcode::ADDI, 8, 8, 0));
    EXPECT_EQ(tb.at(i1).src[0].kind, SrcRef::TbEntry);
    EXPECT_EQ(tb.at(i1).src[0].tb_id, i0);
}

TEST(TraceBuffer, LiveOutTracking)
{
    TraceBuffer tb;
    tb.reset(8);
    const u64 i0 = tb.append(mk(Opcode::ADDI, 8, 0, 0));
    EXPECT_TRUE(tb.isLiveOut(i0));
    const u64 i1 = tb.append(mk(Opcode::ADDI, 8, 0, 0));
    EXPECT_FALSE(tb.isLiveOut(i0));
    EXPECT_TRUE(tb.isLiveOut(i1));
}

TEST(TraceBuffer, TruncateRestoresWithSnapshot)
{
    TraceBuffer tb;
    tb.reset(8);
    tb.append(mk(Opcode::ADDI, 8, 0, 0));
    const auto snap = tb.writerSnapshot();
    const u64 branch = tb.append(mk(Opcode::BEQ, 0, 8, 9));
    tb.append(mk(Opcode::ADDI, 9, 0, 0)); // wrong path
    tb.append(mk(Opcode::ADDI, 8, 0, 0)); // wrong path redefinition

    tb.truncateFrom(branch + 1);
    tb.restoreWriters(snap);
    EXPECT_EQ(tb.size(), 2);
    u64 w = 0;
    EXPECT_TRUE(tb.lastWriter(8, &w));
    EXPECT_EQ(w, 0u) << "wrong-path redefinition rolled back";
    EXPECT_FALSE(tb.lastWriter(9, &w));

    // New appends continue with fresh ids.
    const u64 nxt = tb.append(mk(Opcode::ADDI, 10, 8, 0));
    EXPECT_EQ(nxt, branch + 1);
    EXPECT_EQ(tb.at(nxt).src[0].tb_id, 0u);
}

TEST(TraceBuffer, PopFrontRetirement)
{
    TraceBuffer tb;
    tb.reset(4);
    const u64 i0 = tb.append(mk(Opcode::ADDI, 8, 0, 0));
    tb.append(mk(Opcode::ADD, 9, 8, 0));
    tb.popFront();
    EXPECT_FALSE(tb.contains(i0));
    EXPECT_EQ(tb.firstId(), 1u);
    // The retired writer is still named by the table; consumers use
    // the architectural value path.
    u64 w = 0;
    EXPECT_TRUE(tb.lastWriter(8, &w));
    EXPECT_EQ(w, i0);
    const u64 i2 = tb.append(mk(Opcode::ADD, 10, 8, 0));
    EXPECT_EQ(tb.at(i2).src[0].kind, SrcRef::TbEntry);
    EXPECT_EQ(tb.at(i2).src[0].tb_id, i0) << "retired producer id kept";
}

TEST(TraceBuffer, CapacityAndFull)
{
    TraceBuffer tb;
    tb.reset(3);
    tb.append(mk(Opcode::NOP, 0, 0, 0));
    tb.append(mk(Opcode::NOP, 0, 0, 0));
    EXPECT_FALSE(tb.full());
    tb.append(mk(Opcode::NOP, 0, 0, 0));
    EXPECT_TRUE(tb.full());
    tb.popFront();
    EXPECT_FALSE(tb.full()) << "retirement frees space";
    EXPECT_EQ(tb.totalAppended(), 3u);
}

TEST(TraceBuffer, StoreHasNoDest)
{
    TraceBuffer tb;
    tb.reset(4);
    const u64 i0 = tb.append(mk(Opcode::SW, 0, 29, 8));
    EXPECT_FALSE(tb.at(i0).has_dest);
    EXPECT_EQ(tb.at(i0).src[0].kind, SrcRef::ThreadInput);
    EXPECT_EQ(tb.at(i0).src[0].reg, 29);
    EXPECT_EQ(tb.at(i0).src[1].reg, 8);
    u64 w;
    EXPECT_FALSE(tb.lastWriter(0, &w));
}

} // namespace
} // namespace dmt
