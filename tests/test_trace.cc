/**
 * @file
 * Telemetry subsystem tests: the JSON writer/parser pair, sink
 * behaviour (ring bounds, counters tallies), the dead-disabled emit
 * path, per-thread event ordering, and Chrome trace-event export
 * (parseable document, per-context tracks, balanced duration slices,
 * JSON round-trip through the writer).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <map>

#include "common/json.hh"
#include "dmt/engine.hh"
#include "trace/chrome_sink.hh"
#include "trace/counters_sink.hh"
#include "trace/ring_sink.hh"
#include "trace/tracer.hh"
#include "workloads/workloads.hh"

namespace dmt
{
namespace
{

SimConfig
dmtCfg()
{
    SimConfig cfg = SimConfig::dmt(4, 2);
    cfg.max_cycles = 2'000'000;
    return cfg;
}

// ---- JSON writer/parser ------------------------------------------------

TEST(JsonWriter, WritesNestedStructures)
{
    JsonWriter w;
    w.beginObject();
    w.key("s").value("he\"llo\n");
    w.key("i").value(-3);
    w.key("u").value(u64{18446744073709551615ull});
    w.key("d").value(1.5);
    w.key("b").value(true);
    w.key("n").nullValue();
    w.key("a").beginArray().value(1).value(2).endArray();
    w.key("o").beginObject().endObject();
    w.endObject();
    EXPECT_TRUE(w.complete());
    EXPECT_EQ(w.str(),
              "{\"s\":\"he\\\"llo\\n\",\"i\":-3,"
              "\"u\":18446744073709551615,\"d\":1.5,\"b\":true,"
              "\"n\":null,\"a\":[1,2],\"o\":{}}");
}

TEST(JsonValue, ParsesWhatTheWriterProduces)
{
    JsonWriter w;
    w.beginObject();
    w.key("name").value("dmt");
    w.key("vals").beginArray().value(1).value(2.25).endArray();
    w.endObject();

    JsonValue v;
    std::string err;
    ASSERT_TRUE(JsonValue::parse(w.str(), &v, &err)) << err;
    ASSERT_EQ(v.type(), JsonValue::Type::Object);
    const JsonValue *name = v.find("name");
    ASSERT_NE(name, nullptr);
    EXPECT_EQ(name->asString(), "dmt");
    const JsonValue *vals = v.find("vals");
    ASSERT_NE(vals, nullptr);
    ASSERT_EQ(vals->elements().size(), 2u);
    EXPECT_DOUBLE_EQ(vals->elements()[1].asNumber(), 2.25);
}

TEST(JsonValue, RejectsMalformedInput)
{
    JsonValue v;
    EXPECT_FALSE(JsonValue::parse("{\"a\":}", &v));
    EXPECT_FALSE(JsonValue::parse("[1,2", &v));
    EXPECT_FALSE(JsonValue::parse("", &v));
    EXPECT_FALSE(JsonValue::parse("{} trailing", &v));
}

TEST(JsonValue, RoundTripsThroughDump)
{
    const char *doc =
        "{\"a\":[1,2.5,\"x\",null,true],\"b\":{\"c\":-7}}";
    JsonValue v;
    ASSERT_TRUE(JsonValue::parse(doc, &v));
    const std::string once = v.dump();
    JsonValue v2;
    ASSERT_TRUE(JsonValue::parse(once, &v2));
    EXPECT_EQ(once, v2.dump());
}

// ---- StatGroup JSON ----------------------------------------------------

TEST(StatGroupJson, SerializesCountersAveragesHistograms)
{
    Counter c;
    ++c;
    ++c;
    Average a;
    a.sample(1.0);
    a.sample(3.0);
    Histogram h(0.0, 10.0, 5);
    h.sample(1.0);
    h.sample(9.0);

    StatGroup g("t");
    g.addCounter("c", &c, "a counter");
    g.addAverage("a", &a, "an average");
    g.addHistogram("h", &h, "a histogram");

    // The text dump must include the histogram too.
    EXPECT_NE(g.dump().find("t.h"), std::string::npos);

    JsonWriter w;
    g.jsonOn(w);
    JsonValue v;
    std::string err;
    ASSERT_TRUE(JsonValue::parse(w.str(), &v, &err)) << err;
    EXPECT_DOUBLE_EQ(v.find("counters")->find("c")->asNumber(), 2.0);
    EXPECT_DOUBLE_EQ(
        v.find("averages")->find("a")->find("mean")->asNumber(), 2.0);
    const JsonValue *hist = v.find("histograms")->find("h");
    ASSERT_NE(hist, nullptr);
    EXPECT_DOUBLE_EQ(hist->find("total")->asNumber(), 2.0);
    EXPECT_EQ(hist->find("buckets")->elements().size(), 5u);
}

// ---- ring sink ---------------------------------------------------------

TEST(RingSink, BoundsMemoryAndKeepsNewest)
{
    RingSink ring(4);
    for (u64 i = 0; i < 10; ++i) {
        TraceEvent e;
        e.cycle = i;
        ring.event(e);
    }
    EXPECT_EQ(ring.captured(), 10u);
    ASSERT_EQ(ring.size(), 4u);
    for (size_t i = 0; i < 4; ++i)
        EXPECT_EQ(ring.at(i).cycle, 6u + i);
}

// ---- disabled path -----------------------------------------------------

TEST(TraceDisabled, NoEventsReachSinksWhenDisabled)
{
    const Program prog = mkFibRecursive(8);
    DmtEngine engine(dmtCfg(), prog);

    auto sink = std::make_unique<RingSink>(1024);
    RingSink *ring = sink.get();
    engine.tracer().addSink(std::move(sink));
    engine.tracer().setEnabled(false);
    ASSERT_FALSE(engine.tracer().enabled());

    engine.run();
    ASSERT_TRUE(engine.programCompleted());
    EXPECT_EQ(ring->captured(), 0u);
}

TEST(TraceDisabled, DefaultConfigTracesNothing)
{
    const Program prog = mkFibRecursive(6);
    DmtEngine engine(dmtCfg(), prog);
    EXPECT_FALSE(engine.tracer().enabled());
    EXPECT_EQ(engine.tracer().ring(), nullptr);
    engine.run();
    ASSERT_TRUE(engine.programCompleted());
}

// ---- event stream sanity ----------------------------------------------

TEST(TraceEvents, PerThreadCyclesAreMonotone)
{
    SimConfig cfg = dmtCfg();
    cfg.trace.enabled = true;
    cfg.trace.ring = true;
    cfg.trace.ring_capacity = 1 << 20;

    const Program prog = mkFibRecursive(10);
    DmtEngine engine(cfg, prog);
    ASSERT_TRUE(engine.tracer().enabled());
    engine.run();
    ASSERT_TRUE(engine.programCompleted());

    RingSink *ring = engine.tracer().ring();
    ASSERT_NE(ring, nullptr);
    ASSERT_GT(ring->size(), 0u);
    ASSERT_EQ(ring->captured(), ring->size())
        << "ring overflowed; grow ring_capacity for this test";

    std::map<ThreadId, Cycle> last;
    u64 spawns = 0, retires = 0, inst_retires = 0;
    Cycle last_any = 0;
    for (size_t i = 0; i < ring->size(); ++i) {
        const TraceEvent &e = ring->at(i);
        EXPECT_GE(e.cycle, last_any) << "event stream not time-ordered";
        last_any = e.cycle;
        auto it = last.find(e.tid);
        if (it != last.end()) {
            EXPECT_GE(e.cycle, it->second);
        }
        last[e.tid] = e.cycle;
        switch (e.kind) {
          case TraceEventKind::ThreadSpawn:
            ++spawns;
            break;
          case TraceEventKind::ThreadRetire:
            ++retires;
            break;
          case TraceEventKind::InstRetire:
            ++inst_retires;
            break;
          default:
            break;
        }
    }
    // The initial thread spawns and fully retires; a recursive fib
    // spawns speculative threads on top.
    EXPECT_GE(spawns, 1u);
    EXPECT_GE(retires, 1u);
    EXPECT_EQ(inst_retires, engine.stats().retired.value());
    EXPECT_EQ(spawns,
              engine.stats().threads_spawned.value() + 1); // +1: t0
}

// ---- counters sink -----------------------------------------------------

TEST(CountersSink, TalliesEventsAndWritesParseableJson)
{
    const std::string path =
        ::testing::TempDir() + "dmt_test_counters.json";

    SimConfig cfg = dmtCfg();
    cfg.trace.enabled = true;
    cfg.trace.counters = true;
    cfg.trace.counters_file = path;
    cfg.trace.sample_period = 64;

    const Program prog = mkFibRecursive(10);
    DmtEngine engine(cfg, prog);
    engine.run();
    ASSERT_TRUE(engine.programCompleted());

    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);

    JsonValue v;
    std::string err;
    ASSERT_TRUE(JsonValue::parse(text, &v, &err)) << err;
    EXPECT_DOUBLE_EQ(v.find("sample_period")->asNumber(), 64.0);
    const JsonValue *counts = v.find("event_counts");
    ASSERT_NE(counts, nullptr);
    const JsonValue *retired = counts->find("inst-retire");
    ASSERT_NE(retired, nullptr);
    EXPECT_DOUBLE_EQ(
        retired->asNumber(),
        static_cast<double>(engine.stats().retired.value()));
    EXPECT_GT(v.find("samples")->elements().size(), 0u);
    std::remove(path.c_str());
}

// ---- Chrome trace ------------------------------------------------------

TEST(ChromeTrace, ProducesValidPerContextTracks)
{
    const std::string path =
        ::testing::TempDir() + "dmt_test_trace.json";

    SimConfig cfg = dmtCfg();
    cfg.trace.enabled = true;
    cfg.trace.chrome = true;
    cfg.trace.chrome_file = path;
    cfg.trace.sample_period = 128;

    const Program prog = mkFibRecursive(10);
    DmtEngine engine(cfg, prog);
    engine.run();
    ASSERT_TRUE(engine.programCompleted());
    ASSERT_GT(engine.stats().threads_spawned.value(), 0u);

    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);

    JsonValue doc;
    std::string err;
    ASSERT_TRUE(JsonValue::parse(text, &doc, &err)) << err;
    const JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->type(), JsonValue::Type::Array);
    ASSERT_GT(events->elements().size(), 0u);

    // Track state per tid: every B must close with an E, in order.
    std::map<i64, int> open_depth;
    std::map<i64, bool> named;
    bool saw_spawn_slice = false, saw_retire = false;
    bool saw_counter = false;
    Cycle last_ts = 0;
    for (const JsonValue &e : events->elements()) {
        ASSERT_EQ(e.type(), JsonValue::Type::Object);
        const JsonValue *ph = e.find("ph");
        ASSERT_NE(ph, nullptr);
        const std::string phase = ph->asString();
        if (phase == "M") {
            const JsonValue *tid = e.find("tid");
            if (tid && e.find("name")->asString() == "thread_name")
                named[static_cast<i64>(tid->asNumber())] = true;
            continue;
        }
        ASSERT_NE(e.find("ts"), nullptr);
        ASSERT_NE(e.find("pid"), nullptr);
        ASSERT_NE(e.find("tid"), nullptr);
        const Cycle ts = static_cast<Cycle>(e.find("ts")->asNumber());
        EXPECT_GE(ts, last_ts);
        last_ts = ts;
        const i64 tid = static_cast<i64>(e.find("tid")->asNumber());
        EXPECT_TRUE(named[tid]) << "track " << tid << " has no name";
        if (phase == "B") {
            ++open_depth[tid];
            if (e.find("name")->asString().rfind("thread", 0) == 0)
                saw_spawn_slice = true;
        } else if (phase == "E") {
            EXPECT_GT(open_depth[tid], 0) << "E without B on " << tid;
            --open_depth[tid];
        } else if (phase == "i") {
            const std::string name = e.find("name")->asString();
            if (name == "thread-retire" || name == "thread-squash")
                saw_retire = true;
        } else if (phase == "C") {
            saw_counter = true;
        }
    }
    for (const auto &[tid, depth] : open_depth)
        EXPECT_EQ(depth, 0) << "unbalanced slices on track " << tid;
    EXPECT_TRUE(saw_spawn_slice);
    EXPECT_TRUE(saw_retire);
    EXPECT_TRUE(saw_counter);

    // Round-trip: the parsed document re-serializes to stable JSON.
    const std::string once = doc.dump();
    JsonValue doc2;
    ASSERT_TRUE(JsonValue::parse(once, &doc2, &err)) << err;
    EXPECT_EQ(once, doc2.dump());
    std::remove(path.c_str());
}

TEST(ChromeTrace, RecoveryAndSquashEventsAppearUnderLoad)
{
    // A workload with cross-thread value flow: spawned threads consume
    // stale inputs, forcing recovery walks and squashes.
    SimConfig cfg = dmtCfg();
    cfg.trace.enabled = true;
    cfg.trace.ring = true;
    cfg.trace.ring_capacity = 1 << 20;

    const Program prog = buildWorkload("go");
    cfg.max_retired = 20000;
    DmtEngine engine(cfg, prog);
    engine.run();

    RingSink *ring = engine.tracer().ring();
    ASSERT_NE(ring, nullptr);
    u64 recov_start = 0, recov_end = 0, squashes = 0;
    for (size_t i = 0; i < ring->size(); ++i) {
        switch (ring->at(i).kind) {
          case TraceEventKind::RecoveryStart:
            ++recov_start;
            break;
          case TraceEventKind::RecoveryEnd:
            ++recov_end;
            break;
          case TraceEventKind::ThreadSquash:
            ++squashes;
            break;
          default:
            break;
        }
    }
    if (engine.stats().recoveries.value() > 0) {
        EXPECT_GT(recov_start, 0u);
    }
    EXPECT_LE(recov_end, recov_start);
    EXPECT_EQ(squashes, engine.stats().threads_squashed.value());
}

// ---- env parsing -------------------------------------------------------

TEST(TraceEnv, ParsesSinkListAndOverrides)
{
    setenv("DMT_TRACE", "chrome,counters,insts", 1);
    setenv("DMT_TRACE_FILE", "x.json", 1);
    setenv("DMT_TRACE_SAMPLE", "32", 1);
    TraceOptions o = traceOptionsFromEnv(TraceOptions{});
    EXPECT_TRUE(o.enabled);
    EXPECT_TRUE(o.chrome);
    EXPECT_TRUE(o.counters);
    EXPECT_TRUE(o.insts);
    EXPECT_FALSE(o.ring);
    EXPECT_EQ(o.chrome_file, "x.json");
    EXPECT_EQ(o.sample_period, 32);

    setenv("DMT_TRACE", "off", 1);
    o = traceOptionsFromEnv(TraceOptions{});
    EXPECT_FALSE(o.enabled);

    unsetenv("DMT_TRACE");
    unsetenv("DMT_TRACE_FILE");
    unsetenv("DMT_TRACE_SAMPLE");
    o = traceOptionsFromEnv(TraceOptions{});
    EXPECT_FALSE(o.enabled);
}

} // namespace
} // namespace dmt
