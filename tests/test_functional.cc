/**
 * @file
 * Functional-semantics tests: exhaustive ALU behaviour, branch
 * conditions, memory access sizes/sign extension, control flow, and
 * the golden checker's mismatch detection.
 */

#include <gtest/gtest.h>

#include "casm/builder.hh"
#include "common/log.hh"
#include "sim/checker.hh"
#include "sim/functional.hh"
#include "workloads/workloads.hh"

namespace dmt
{
namespace
{

using namespace reg;

u32
alu(Opcode op, u32 a, u32 b, i32 imm = 0)
{
    Instruction inst;
    inst.op = op;
    inst.imm = imm;
    return aluCompute(inst, a, b);
}

TEST(Alu, Arithmetic)
{
    EXPECT_EQ(alu(Opcode::ADD, 2, 3), 5u);
    EXPECT_EQ(alu(Opcode::ADD, 0xFFFFFFFF, 1), 0u) << "wraps";
    EXPECT_EQ(alu(Opcode::SUB, 2, 3), 0xFFFFFFFFu);
    EXPECT_EQ(alu(Opcode::MUL, 0x10000, 0x10000), 0u) << "low 32 bits";
    EXPECT_EQ(alu(Opcode::MULH, 0x80000000, 2),
              0xFFFFFFFFu) << "signed high";
}

TEST(Alu, Logic)
{
    EXPECT_EQ(alu(Opcode::AND, 0xF0F0, 0xFF00), 0xF000u);
    EXPECT_EQ(alu(Opcode::OR, 0xF0F0, 0x0F0F), 0xFFFFu);
    EXPECT_EQ(alu(Opcode::XOR, 0xFFFF, 0x00FF), 0xFF00u);
    EXPECT_EQ(alu(Opcode::NOR, 0, 0), 0xFFFFFFFFu);
}

TEST(Alu, Shifts)
{
    EXPECT_EQ(alu(Opcode::SLL, 1, 0, 31), 0x80000000u);
    EXPECT_EQ(alu(Opcode::SRL, 0x80000000, 0, 31), 1u);
    EXPECT_EQ(alu(Opcode::SRA, 0x80000000, 0, 31), 0xFFFFFFFFu);
    EXPECT_EQ(alu(Opcode::SLLV, 1, 35), 8u) << "shift amount mod 32";
    EXPECT_EQ(alu(Opcode::SRAV, 0xFFFF0000, 8), 0xFFFFFF00u);
}

TEST(Alu, Comparisons)
{
    EXPECT_EQ(alu(Opcode::SLT, 0xFFFFFFFF, 0), 1u) << "-1 < 0 signed";
    EXPECT_EQ(alu(Opcode::SLTU, 0xFFFFFFFF, 0), 0u);
    EXPECT_EQ(alu(Opcode::SLTI, 5, 0, 6), 1u);
    EXPECT_EQ(alu(Opcode::SLTIU, 5, 0, 4), 0u);
}

TEST(Alu, DivisionEdgeCases)
{
    EXPECT_EQ(alu(Opcode::DIV, 7, 2), 3u);
    EXPECT_EQ(alu(Opcode::DIV, static_cast<u32>(-7), 2),
              static_cast<u32>(-3));
    EXPECT_EQ(alu(Opcode::DIV, 5, 0), 0xFFFFFFFFu) << "div by zero";
    EXPECT_EQ(alu(Opcode::DIV, 0x80000000, 0xFFFFFFFF), 0x80000000u)
        << "INT_MIN / -1 overflow";
    EXPECT_EQ(alu(Opcode::REM, 7, 2), 1u);
    EXPECT_EQ(alu(Opcode::REM, 5, 0), 5u);
    EXPECT_EQ(alu(Opcode::REM, 0x80000000, 0xFFFFFFFF), 0u);
    EXPECT_EQ(alu(Opcode::DIVU, 0xFFFFFFFE, 2), 0x7FFFFFFFu);
    EXPECT_EQ(alu(Opcode::REMU, 10, 3), 1u);
}

TEST(Alu, Immediates)
{
    EXPECT_EQ(alu(Opcode::ADDI, 10, 0, -3), 7u);
    EXPECT_EQ(alu(Opcode::ANDI, 0xFFFF, 0, 0x00F0), 0xF0u);
    EXPECT_EQ(alu(Opcode::LUI, 0, 0, 0x1234), 0x12340000u);
}

TEST(Branches, Conditions)
{
    auto taken = [](Opcode op, u32 a, u32 b) {
        Instruction i;
        i.op = op;
        return branchTaken(i, a, b);
    };
    EXPECT_TRUE(taken(Opcode::BEQ, 4, 4));
    EXPECT_FALSE(taken(Opcode::BEQ, 4, 5));
    EXPECT_TRUE(taken(Opcode::BNE, 4, 5));
    EXPECT_TRUE(taken(Opcode::BLT, static_cast<u32>(-1), 0));
    EXPECT_FALSE(taken(Opcode::BLTU, static_cast<u32>(-1), 0));
    EXPECT_TRUE(taken(Opcode::BGE, 3, 3));
    EXPECT_TRUE(taken(Opcode::BGEU, static_cast<u32>(-1), 5));
}

TEST(Memory, EffectiveAddressAlignment)
{
    Instruction lw{Opcode::LW, 1, 2, 0, 3};
    EXPECT_EQ(memEffectiveAddr(lw, 0x1000), 0x1000u)
        << "word access aligns down";
    Instruction lb{Opcode::LB, 1, 2, 0, 3};
    EXPECT_EQ(memEffectiveAddr(lb, 0x1000), 0x1003u);
    Instruction lh{Opcode::LH, 1, 2, 0, 3};
    EXPECT_EQ(memEffectiveAddr(lh, 0x1000), 0x1002u);
}

TEST(Functional, LoadStoreSignExtension)
{
    AsmBuilder b;
    const auto buf = b.newLabel();
    b.bindData(buf);
    b.dataWords({0});
    b.la(t0, buf);
    b.li(t1, 0xFFFFFF85); // -123 as a byte: 0x85
    b.sb(t1, 0, t0);
    b.lb(t2, 0, t0);
    b.out(t2);
    b.lbu(t3, 0, t0);
    b.out(t3);
    b.li(t4, 0xFFFF8001);
    b.sh(t4, 2, t0);
    b.lh(t5, 2, t0);
    b.out(t5);
    b.lhu(t6, 2, t0);
    b.out(t6);
    b.lw(t7, 0, t0);
    b.out(t7);
    b.halt();

    const Program p = b.finish();
    ArchState st;
    MainMemory mem;
    st.reset(p);
    mem.loadProgram(p);
    runFunctional(st, mem, p);
    ASSERT_EQ(st.output.size(), 5u);
    EXPECT_EQ(st.output[0], 0xFFFFFF85u);
    EXPECT_EQ(st.output[1], 0x85u);
    EXPECT_EQ(st.output[2], 0xFFFF8001u);
    EXPECT_EQ(st.output[3], 0x8001u);
    EXPECT_EQ(st.output[4], 0x80010085u) << "little-endian layout";
}

TEST(Functional, LinkRegisterSemantics)
{
    AsmBuilder b;
    const auto fn = b.newLabel();
    b.jal(fn);      // at kTextBase: links kTextBase + 4
    b.out(v0);
    b.halt();
    b.bind(fn);
    b.move(v0, ra);
    b.ret();
    const Program p = b.finish();
    ArchState st;
    MainMemory mem;
    st.reset(p);
    mem.loadProgram(p);
    runFunctional(st, mem, p);
    ASSERT_EQ(st.output.size(), 1u);
    EXPECT_EQ(st.output[0], Program::kTextBase + 4);
}

TEST(Functional, R0IsHardwiredZero)
{
    AsmBuilder b;
    b.addi(zero, zero, 55);
    b.out(zero);
    b.halt();
    const Program p = b.finish();
    ArchState st;
    MainMemory mem;
    st.reset(p);
    runFunctional(st, mem, p);
    EXPECT_EQ(st.output[0], 0u);
}

TEST(Functional, FibMatchesClosedForm)
{
    const Program p = mkFibRecursive(15);
    ArchState st;
    MainMemory mem;
    st.reset(p);
    mem.loadProgram(p);
    runFunctional(st, mem, p);
    ASSERT_EQ(st.output.size(), 1u);
    EXPECT_EQ(st.output[0], 610u);
}

TEST(Functional, SumLoopClosedForm)
{
    const Program p = mkSumLoop(100);
    ArchState st;
    MainMemory mem;
    st.reset(p);
    mem.loadProgram(p);
    runFunctional(st, mem, p);
    EXPECT_EQ(st.output[0], 4950u);
}

TEST(Functional, StepCountBound)
{
    // Overrunning the step budget throws (PR 2 containment policy): a
    // sweep cell with a runaway prefix fails as a cell, not a process.
    const Program p = mkSumLoop(10);
    ArchState st;
    MainMemory mem;
    st.reset(p);
    mem.loadProgram(p);
    EXPECT_THROW(runFunctional(st, mem, p, 5), SimError);
}

TEST(Checker, AcceptsCorrectStream)
{
    const Program p = mkSumLoop(5);
    ArchState st;
    MainMemory mem;
    st.reset(p);
    mem.loadProgram(p);
    GoldenChecker chk(p);
    while (!st.halted) {
        const StepResult s = functionalStep(st, mem, p);
        RetireRecord rec;
        rec.pc = s.pc;
        rec.dest = s.dest;
        rec.dest_val = s.dest_val;
        rec.is_store = s.is_store;
        rec.mem_addr = s.mem_addr;
        rec.store_val = s.store_val;
        rec.emitted_out = s.emitted_out;
        rec.out_val = s.out_val;
        ASSERT_TRUE(chk.onRetire(rec)) << chk.error();
    }
    EXPECT_TRUE(chk.ok());
    EXPECT_TRUE(chk.goldenHalted());
}

TEST(Checker, DetectsWrongValue)
{
    const Program p = mkSumLoop(5);
    GoldenChecker chk(p);
    RetireRecord rec;
    rec.pc = p.entry;
    rec.dest = 8; // $t0 = li 0
    rec.dest_val = 42; // wrong
    EXPECT_FALSE(chk.onRetire(rec));
    EXPECT_FALSE(chk.ok());
    EXPECT_NE(chk.error().find("result value"), std::string::npos);
}

TEST(Checker, DetectsWrongPc)
{
    const Program p = mkSumLoop(5);
    GoldenChecker chk(p);
    RetireRecord rec;
    rec.pc = p.entry + 8;
    EXPECT_FALSE(chk.onRetire(rec));
    EXPECT_NE(chk.error().find("control flow"), std::string::npos);
}

TEST(MainMemoryTest, SparsePagesAndCopy)
{
    MainMemory m;
    EXPECT_EQ(m.read32(0x12345678), 0u) << "unallocated reads as zero";
    EXPECT_EQ(m.numPages(), 0u);
    m.write32(0x12345678, 0xCAFEBABE);
    EXPECT_EQ(m.read32(0x12345678), 0xCAFEBABEu);
    EXPECT_EQ(m.numPages(), 1u);

    MainMemory copy = m;
    copy.write32(0x12345678, 1);
    EXPECT_EQ(m.read32(0x12345678), 0xCAFEBABEu)
        << "copies are independent";
}

} // namespace
} // namespace dmt
