/**
 * @file
 * Baseline-superscalar engine tests: golden-checked execution of every
 * microkernel, sane IPC behaviour, reaction to machine parameters
 * (window, width, caches, predictor), and run-control limits.
 */

#include <gtest/gtest.h>

#include "casm/builder.hh"
#include "dmt/engine.hh"
#include "sim/functional.hh"
#include "workloads/workloads.hh"

namespace dmt
{
namespace
{

struct RunStats
{
    u64 cycles;
    u64 retired;
    double ipc;
    std::vector<u32> output;
    bool completed;
};

RunStats
runEngine(const Program &prog, const SimConfig &cfg)
{
    DmtEngine e(cfg, prog);
    e.run();
    EXPECT_TRUE(e.goldenOk()) << e.goldenError();
    RunStats r;
    r.cycles = e.stats().cycles.value();
    r.retired = e.stats().retired.value();
    r.ipc = e.stats().ipc();
    r.output = e.outputStream();
    r.completed = e.programCompleted();
    return r;
}

std::vector<u32>
golden(const Program &prog)
{
    ArchState st;
    MainMemory mem;
    st.reset(prog);
    mem.loadProgram(prog);
    runFunctional(st, mem, prog);
    return st.output;
}

TEST(Baseline, AllMicrokernelsMatchGolden)
{
    const std::vector<Program> programs = {
        mkFibRecursive(13), mkSumLoop(400),    mkMatmul(8),
        mkSort(48),         mkLinkedList(64),  mkCallChain(256),
        mkBranchy(512),     mkAliasStress(128), mkDeepRecursion(64),
        mkLoopBreak(24, 17),
    };
    for (const Program &p : programs) {
        const RunStats r = runEngine(p, SimConfig::baseline());
        EXPECT_TRUE(r.completed);
        EXPECT_EQ(r.output, golden(p));
    }
}

TEST(Baseline, IpcWithinSuperscalarBounds)
{
    const RunStats r = runEngine(mkSumLoop(3000), SimConfig::baseline());
    EXPECT_GT(r.ipc, 0.5);
    EXPECT_LE(r.ipc, 4.0) << "cannot beat machine width";
}

TEST(Baseline, WiderWindowNeverSlower)
{
    SimConfig small = SimConfig::baseline();
    small.window_size = 16;
    SimConfig big = SimConfig::baseline();
    big.window_size = 256;
    const Program p = mkMatmul(10);
    const RunStats rs = runEngine(p, small);
    const RunStats rb = runEngine(p, big);
    EXPECT_LE(rb.cycles, rs.cycles + rs.cycles / 20);
}

TEST(Baseline, BranchyCodePaysForMispredicts)
{
    // A crippled predictor must mispredict at least as often on code
    // with learnable loop patterns.  (Cycle counts on purely random
    // branches can go either way, so compare rates on patterned code.)
    SimConfig good = SimConfig::baseline();
    SimConfig bad = SimConfig::baseline();
    bad.bpred.gshare_table_bits = 2;
    bad.bpred.gshare_history_bits = 0;

    // Strictly alternating branch: trivial with history, hopeless for
    // a history-less 2-bit counter.
    AsmBuilder b;
    using namespace reg;
    const auto loop = b.newLabel();
    const auto skip = b.newLabel();
    b.li(s0, 0);
    b.li(s1, 4000);
    b.bind(loop);
    b.andi(t0, s0, 1);
    b.beqz(t0, skip);
    b.addi(s2, s2, 1);
    b.bind(skip);
    b.addi(s0, s0, 1);
    b.blt(s0, s1, loop);
    b.out(s2);
    b.halt();
    const Program p = b.finish();

    auto rate = [&](const SimConfig &cfg) {
        DmtEngine e(cfg, p);
        e.run();
        EXPECT_TRUE(e.goldenOk()) << e.goldenError();
        return e.stats().condMispredictRate();
    };
    const double rg = rate(good);
    const double rb = rate(bad);
    EXPECT_LT(rg, 0.05) << "gshare should learn the alternation";
    EXPECT_LT(rg, rb);
}

TEST(Baseline, PerfectCachesNeverSlower)
{
    SimConfig real = SimConfig::baseline();
    SimConfig perfect = SimConfig::baseline();
    perfect.mem.perfect_icache = true;
    perfect.mem.perfect_dcache = true;
    const Program p = mkMatmul(12);
    EXPECT_LE(runEngine(p, perfect).cycles, runEngine(p, real).cycles);
}

TEST(Baseline, RealisticFusNeverFaster)
{
    SimConfig ideal = SimConfig::baseline();
    SimConfig real = SimConfig::baseline();
    real.unlimited_fus = false;
    const Program p = mkMatmul(10);
    EXPECT_LE(runEngine(p, ideal).cycles, runEngine(p, real).cycles);
}

TEST(Baseline, MaxRetiredStopsRun)
{
    SimConfig cfg = SimConfig::baseline();
    cfg.max_retired = 500;
    const Program p = mkSumLoop(100000);
    DmtEngine e(cfg, p);
    e.run();
    EXPECT_TRUE(e.done());
    EXPECT_FALSE(e.programCompleted());
    EXPECT_GE(e.stats().retired.value(), 500u);
    EXPECT_LT(e.stats().retired.value(), 600u);
    EXPECT_TRUE(e.goldenOk()) << e.goldenError();
}

TEST(Baseline, MaxCyclesStopsRun)
{
    SimConfig cfg = SimConfig::baseline();
    cfg.max_cycles = 200;
    const Program p = mkSumLoop(100000);
    DmtEngine e(cfg, p);
    e.run();
    EXPECT_TRUE(e.done());
    EXPECT_EQ(e.now(), 200u);
}

TEST(Baseline, RetiredRegistersAreArchitectural)
{
    // sum 0..9 = 45 lives in $t1 (reg 9) at halt.
    const Program p = mkSumLoop(10);
    DmtEngine e(SimConfig::baseline(), p);
    e.run();
    EXPECT_EQ(e.retiredReg(9), 45u);
    EXPECT_EQ(e.retiredReg(0), 0u);
}

TEST(Baseline, StatsAreConsistent)
{
    const Program p = mkCallChain(200);
    DmtEngine e(SimConfig::baseline(), p);
    e.run();
    const DmtStats &s = e.stats();
    EXPECT_GE(s.dispatched.value(), s.retired.value());
    EXPECT_GE(s.issued.value(), s.retired.value());
    EXPECT_GE(s.early_retired.value(), s.retired.value());
    EXPECT_GT(s.cond_branches.value(), 0u);
    EXPECT_EQ(s.threads_spawned.value(), 0u) << "spawning disabled";
    EXPECT_EQ(s.la_fetch_beyond_mispredict.value(), 0u)
        << "single-thread machines cannot look beyond a mispredict";
}

TEST(Baseline, CheckerCanBeDisabled)
{
    SimConfig cfg = SimConfig::baseline();
    cfg.check_golden = false;
    const Program p = mkSumLoop(50);
    DmtEngine e(cfg, p);
    e.run();
    EXPECT_TRUE(e.programCompleted());
    EXPECT_TRUE(e.goldenOk()) << "vacuously ok without a checker";
}

TEST(Baseline, SuiteWorkloadPrefixesMatchGolden)
{
    // Run a capped prefix of every suite workload on the baseline.
    for (const WorkloadInfo &w : workloadSuite()) {
        SimConfig cfg = SimConfig::baseline();
        cfg.max_retired = 15000;
        const Program p = w.build();
        DmtEngine e(cfg, p);
        e.run();
        EXPECT_TRUE(e.goldenOk()) << w.name << ": " << e.goldenError();
    }
}

} // namespace
} // namespace dmt
