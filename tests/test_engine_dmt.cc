/**
 * @file
 * DMT engine tests: golden-checked execution across thread counts,
 * fetch ports and feature ablations; thread-level statistics sanity;
 * resource conservation; and the paper-mode configuration switches
 * (retirement-time divergence handling, value/dataflow prediction off,
 * trace buffer and recovery parameters).
 */

#include <gtest/gtest.h>

#include "dmt/engine.hh"
#include "sim/functional.hh"
#include "workloads/workloads.hh"

namespace dmt
{
namespace
{

std::vector<u32>
golden(const Program &prog)
{
    ArchState st;
    MainMemory mem;
    st.reset(prog);
    mem.loadProgram(prog);
    runFunctional(st, mem, prog);
    return st.output;
}

void
expectCorrect(const Program &prog, const SimConfig &cfg)
{
    DmtEngine e(cfg, prog);
    e.run();
    ASSERT_TRUE(e.programCompleted());
    ASSERT_TRUE(e.goldenOk()) << e.goldenError();
    EXPECT_EQ(e.outputStream(), golden(prog));
}

// ---- correctness across the configuration space -----------------------

struct DmtCfgCase
{
    const char *name;
    int threads;
    int ports;
    int tb_size;
    int tb_latency;
    int tb_read_block;
    bool realistic_fus;
};

class DmtConfigSweep : public ::testing::TestWithParam<DmtCfgCase>
{
};

TEST_P(DmtConfigSweep, MicrokernelsMatchGolden)
{
    const DmtCfgCase &c = GetParam();
    SimConfig cfg = SimConfig::dmt(c.threads, c.ports);
    cfg.tb_size = c.tb_size;
    cfg.tb_latency = c.tb_latency;
    cfg.tb_read_block = c.tb_read_block;
    cfg.unlimited_fus = !c.realistic_fus;

    expectCorrect(mkFibRecursive(13), cfg);
    expectCorrect(mkCallChain(300), cfg);
    expectCorrect(mkAliasStress(150), cfg);
    expectCorrect(mkLoopBreak(20, 15), cfg);
    expectCorrect(mkDeepRecursion(60), cfg);
}

INSTANTIATE_TEST_SUITE_P(
    Machines, DmtConfigSweep,
    ::testing::Values(
        DmtCfgCase{"t2_p1", 2, 1, 500, 4, 4, false},
        DmtCfgCase{"t4_p2", 4, 2, 500, 4, 4, false},
        DmtCfgCase{"t6_p2", 6, 2, 500, 4, 4, false},
        DmtCfgCase{"t8_p4", 8, 4, 500, 4, 4, false},
        DmtCfgCase{"tiny_tb", 4, 2, 32, 4, 4, false},
        DmtCfgCase{"slow_recovery", 4, 2, 200, 16, 2, false},
        DmtCfgCase{"ideal_recovery", 4, 2, 500, 0, 0, false},
        DmtCfgCase{"real_fus", 6, 2, 500, 4, 4, true}),
    [](const ::testing::TestParamInfo<DmtCfgCase> &param_info) {
        return param_info.param.name;
    });

// ---- feature ablations stay correct ------------------------------------

TEST(DmtAblation, NoValuePrediction)
{
    SimConfig cfg = SimConfig::dmt(4, 2);
    cfg.value_prediction = false;
    expectCorrect(mkFibRecursive(12), cfg);
    expectCorrect(mkCallChain(200), cfg);
}

TEST(DmtAblation, NoDataflowPrediction)
{
    SimConfig cfg = SimConfig::dmt(4, 2);
    cfg.dataflow_prediction = false;
    expectCorrect(mkFibRecursive(12), cfg);
    expectCorrect(mkAliasStress(100), cfg);
}

TEST(DmtAblation, DataflowSync)
{
    SimConfig cfg = SimConfig::dmt(4, 2);
    cfg.dataflow_sync = true;
    expectCorrect(mkFibRecursive(12), cfg);
    expectCorrect(mkCallChain(200), cfg);
}

TEST(DmtAblation, PaperModeLateDivergence)
{
    SimConfig cfg = SimConfig::dmt(4, 2);
    cfg.early_divergence_repair = false; // the paper's Section 3.3 path
    expectCorrect(mkFibRecursive(12), cfg);
    expectCorrect(mkBranchy(400), cfg);
    expectCorrect(mkAliasStress(150), cfg);
}

TEST(DmtAblation, RecoveryStallPolicies)
{
    for (int f = 0; f <= 2; ++f) {
        for (int d = 0; d <= 2; ++d) {
            SimConfig cfg = SimConfig::dmt(4, 2);
            cfg.recovery_fetch_stall = f;
            cfg.recovery_dispatch_stall = d;
            expectCorrect(mkCallChain(150), cfg);
        }
    }
}

TEST(DmtAblation, LoopThreadsOnly)
{
    SimConfig cfg = SimConfig::dmt(4, 2);
    cfg.spawn_on_call = false;
    expectCorrect(mkSumLoop(500), cfg);
    expectCorrect(mkLoopBreak(30, 10), cfg);
}

TEST(DmtAblation, CallThreadsOnly)
{
    SimConfig cfg = SimConfig::dmt(4, 2);
    cfg.spawn_on_loop = false;
    expectCorrect(mkFibRecursive(12), cfg);
}

// ---- suite workloads, golden-checked prefixes --------------------------

class DmtSuite : public ::testing::TestWithParam<int>
{
};

TEST_P(DmtSuite, GoldenCheckedPrefix)
{
    const WorkloadInfo &w =
        workloadSuite()[static_cast<size_t>(GetParam())];
    for (int threads : {2, 4, 8}) {
        SimConfig cfg = SimConfig::dmt(threads, 2);
        cfg.max_retired = 12000;
        DmtEngine e(cfg, w.build());
        e.run();
        EXPECT_TRUE(e.goldenOk())
            << w.name << " T=" << threads << ": " << e.goldenError();
    }
}

INSTANTIATE_TEST_SUITE_P(
    All, DmtSuite,
    ::testing::Range(0, static_cast<int>(workloadSuite().size())),
    [](const ::testing::TestParamInfo<int> &param_info) {
        return workloadSuite()[static_cast<size_t>(param_info.param)]
            .name;
    });

// ---- thread machinery observability --------------------------------------

TEST(DmtThreads, SpawnsAndJoinsOnRecursion)
{
    SimConfig cfg = SimConfig::dmt(4, 2);
    const Program p = mkFibRecursive(16);
    DmtEngine e(cfg, p);
    e.run();
    ASSERT_TRUE(e.goldenOk()) << e.goldenError();
    EXPECT_GT(e.stats().threads_spawned.value(), 0u);
    EXPECT_GT(e.stats().threads_joined.value(), 0u);
    EXPECT_GT(e.stats().inputs_used.value(), 0u);
}

TEST(DmtThreads, RetirementOrderIsSequential)
{
    // The retire hook must observe exactly the golden dynamic stream.
    const Program p = mkFibRecursive(12);
    SimConfig cfg = SimConfig::dmt(6, 2);
    DmtEngine e(cfg, p);

    ArchState st;
    MainMemory mem;
    st.reset(p);
    mem.loadProgram(p);
    u64 mismatches = 0;
    e.retire_hook = [&](const TBEntry &entry, ThreadId) {
        const StepResult s = functionalStep(st, mem, p);
        if (s.pc != entry.pc)
            ++mismatches;
    };
    e.run();
    ASSERT_TRUE(e.goldenOk()) << e.goldenError();
    EXPECT_EQ(mismatches, 0u);
}

TEST(DmtThreads, SingleThreadDmtEqualsBaseline)
{
    // max_threads == 1 with spawning on is still structurally the
    // baseline (spawning requires a second context).
    SimConfig cfg = SimConfig::dmt(1, 1);
    const Program p = mkMatmul(8);
    DmtEngine dmt1(cfg, p);
    dmt1.run();
    DmtEngine base(SimConfig::baseline(), p);
    base.run();
    EXPECT_TRUE(dmt1.goldenOk());
    EXPECT_EQ(dmt1.stats().threads_spawned.value(), 0u);
    EXPECT_EQ(dmt1.stats().cycles.value(),
              base.stats().cycles.value());
}

TEST(DmtThreads, ActiveThreadsBounded)
{
    SimConfig cfg = SimConfig::dmt(4, 2);
    const Program p = mkFibRecursive(14);
    DmtEngine e(cfg, p);
    e.run();
    EXPECT_LE(e.stats().active_threads.max(), 4.0);
    EXPECT_GE(e.stats().active_threads.mean(), 1.0);
}

TEST(DmtThreads, LookaheadCountersMoveOnDmt)
{
    SimConfig cfg = SimConfig::dmt(6, 2);
    cfg.max_retired = 20000;
    DmtEngine e(cfg, buildWorkload("go"));
    e.run();
    ASSERT_TRUE(e.goldenOk()) << e.goldenError();
    EXPECT_GT(e.stats().la_fetch_beyond_mispredict.value(), 0u)
        << "DMT must fetch beyond unresolved mispredicted branches";
}

TEST(DmtThreads, InputClassificationAddsUp)
{
    SimConfig cfg = SimConfig::dmt(4, 2);
    cfg.max_retired = 20000;
    DmtEngine e(cfg, buildWorkload("li"));
    e.run();
    const DmtStats &s = e.stats();
    EXPECT_LE(s.inputs_hit.value(), s.inputs_used.value());
    EXPECT_EQ(s.inputs_valid_at_spawn.value()
                  + s.inputs_same_later.value()
                  + s.inputs_df_correct.value(),
              s.inputs_hit.value())
        << "hit categories must partition the hits";
}

} // namespace
} // namespace dmt
