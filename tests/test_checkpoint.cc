/**
 * @file
 * Checkpointed fast-forward and interval sampling: the functional core
 * must be instruction-for-instruction equivalent to functionalStep(),
 * checkpoints must round-trip sparse memory exactly (including pages
 * that exist only because a speculative wild store touched them),
 * binary save/load must reject stale files, and a detailed engine
 * resumed from the same checkpoint twice must produce bit-identical
 * results.  A checked-in sampled-run signature (tests/golden/
 * sampled_go.json, regenerated with DMT_UPDATE_GOLDEN=1) pins the
 * whole sampled pipeline.
 */

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/log.hh"
#include "dmt/engine.hh"
#include "exp/sampled.hh"
#include "sim/checkpoint.hh"
#include "sim/functional.hh"
#include "sim/functional_core.hh"
#include "workloads/workloads.hh"

namespace dmt
{
namespace
{

/** Knobs that would perturb the deterministic runs below must not
 *  leak in from the caller's environment. */
const struct EnvSanitizer
{
    EnvSanitizer()
    {
        for (const char *v :
             {"DMT_FAULT", "DMT_FAULT_RATE", "DMT_FAULT_SEED",
              "DMT_TRACE", "DMT_TRACE_FILE", "DMT_TRACE_COUNTERS_FILE",
              "DMT_TRACE_SAMPLE", "DMT_TRACE_RING", "DMT_WATCHDOG",
              "DMT_AUDIT", "DMT_BENCH_INSTR", "DMT_SAMPLE",
              "DMT_CKPT_DIR"})
            unsetenv(v);
    }
} env_sanitizer;

std::string
tempDir(const char *name)
{
    std::string d = std::string("ckpt_test_") + name;
    ::mkdir(d.c_str(), 0755);
    return d;
}

TEST(MainMemoryCkpt, SparsePageExactEquality)
{
    MainMemory a;
    a.write32(0x1000, 0xdeadbeef);
    a.write8(0x7fff0001, 0x42);     // wild speculative store, high page
    a.write16(0xfffe0000, 0xbeef);  // near the top of the address space

    MainMemory b = a;
    EXPECT_TRUE(a == b);
    EXPECT_EQ(a.numPages(), b.numPages());

    b.write8(0x1000, 0xff);
    EXPECT_FALSE(a == b);

    // An allocated all-zero page is NOT the same as an absent page:
    // the sparse structure itself must round-trip.
    MainMemory c = a;
    c.write8(0x30000000, 0); // allocates a page, leaves it all zero
    EXPECT_FALSE(a == c);
    EXPECT_EQ(c.numPages(), a.numPages() + 1);
}

TEST(MainMemoryCkpt, PageVisitRoundTrip)
{
    MainMemory a;
    a.write32(0x2000, 1);
    a.write32(0x50000, 2);
    a.write32(0x7fff0000, 3);

    // Rebuild through the checkpoint-serialization primitives.
    MainMemory b;
    u32 last_index = 0;
    bool first = true;
    a.forEachPage([&](u32 index, const u8 *bytes) {
        if (!first) {
            EXPECT_GT(index, last_index) << "pages must visit in order";
        }
        first = false;
        last_index = index;
        b.setPageRaw(index, bytes);
    });
    EXPECT_TRUE(a == b);
}

TEST(FunctionalCoreCkpt, MatchesFunctionalStepExactly)
{
    const Program prog = buildWorkload("go");
    constexpr u64 kSteps = 20000;

    // Reference: the per-step interpreter the golden checker uses.
    ArchState st;
    MainMemory mem;
    st.reset(prog);
    mem.loadProgram(prog);
    for (u64 i = 0; i < kSteps && !st.halted; ++i)
        functionalStep(st, mem, prog);

    // Batched core, exact-output mode so the vectors compare too.
    FunctionalCore core(prog, /*stream_output=*/false);
    core.run(kSteps);

    EXPECT_EQ(core.instrCount(), kSteps);
    EXPECT_EQ(core.state().pc, st.pc);
    EXPECT_EQ(core.state().halted, st.halted);
    EXPECT_EQ(core.state().regs, st.regs);
    EXPECT_EQ(core.state().output, st.output);
    EXPECT_EQ(core.state().out_count, st.out_count);
    EXPECT_EQ(core.state().out_hash, st.out_hash);
    EXPECT_TRUE(core.memory() == mem);
}

TEST(FunctionalCoreCkpt, FullProgramMatchesReference)
{
    const Program prog = buildWorkload("compress");

    ArchState st;
    MainMemory mem;
    st.reset(prog);
    mem.loadProgram(prog);
    const u64 ref_steps = runFunctional(st, mem, prog);

    FunctionalCore core(prog, /*stream_output=*/false);
    core.run(~u64{0});

    EXPECT_TRUE(core.halted());
    EXPECT_EQ(core.instrCount(), ref_steps);
    EXPECT_EQ(core.state().out_hash, st.out_hash);
    EXPECT_EQ(core.state().output, st.output);
    EXPECT_TRUE(core.memory() == mem);
}

TEST(CheckpointCkpt, BinarySaveLoadRoundTrip)
{
    const Program prog = buildWorkload("go");
    FunctionalCore core(prog);
    core.run(50000);
    ASSERT_FALSE(core.halted());

    const Checkpoint ck = Checkpoint::capture(core);
    EXPECT_EQ(ck.instr_count, 50000u);
    EXPECT_EQ(ck.prog_hash, Checkpoint::programHash(prog));

    const std::string dir = tempDir("roundtrip");
    const std::string path = dir + "/go-50000.ckpt";
    ASSERT_TRUE(ck.save(path));

    Checkpoint back;
    std::string err;
    ASSERT_TRUE(Checkpoint::load(path, ck.prog_hash, &back, &err)) << err;
    EXPECT_EQ(back.instr_count, ck.instr_count);
    EXPECT_EQ(back.state.pc, ck.state.pc);
    EXPECT_EQ(back.state.regs, ck.state.regs);
    EXPECT_EQ(back.state.out_count, ck.state.out_count);
    EXPECT_EQ(back.state.out_hash, ck.state.out_hash);
    EXPECT_EQ(back.state.halted, ck.state.halted);
    EXPECT_TRUE(back.mem == ck.mem);

    // A checkpoint for a different program image must refuse to load.
    Checkpoint wrong;
    EXPECT_FALSE(Checkpoint::load(path, ck.prog_hash + 1, &wrong, &err));
    EXPECT_NE(err.find("stale"), std::string::npos) << err;

    // A torn/truncated file must refuse to load, not crash.
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        const std::string full = buf.str();
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(full.data(),
                  static_cast<long>(full.size() / 2));
    }
    EXPECT_FALSE(Checkpoint::load(path, ck.prog_hash, &wrong, &err));

    std::remove(path.c_str());
    ::rmdir(dir.c_str());
}

TEST(CheckpointCkpt, RestoredCoreContinuesIdentically)
{
    const Program prog = buildWorkload("go");

    FunctionalCore straight(prog, /*stream_output=*/false);
    straight.run(80000);

    FunctionalCore hopped(prog, /*stream_output=*/false);
    hopped.run(30000);
    const Checkpoint ck = Checkpoint::capture(hopped);
    FunctionalCore resumed(prog, /*stream_output=*/false);
    resumed.restore(ck.state, ck.mem, ck.instr_count);
    resumed.run(50000);

    EXPECT_EQ(resumed.instrCount(), straight.instrCount());
    EXPECT_EQ(resumed.state().pc, straight.state().pc);
    EXPECT_EQ(resumed.state().regs, straight.state().regs);
    EXPECT_EQ(resumed.state().out_hash, straight.state().out_hash);
    EXPECT_TRUE(resumed.memory() == straight.memory());
}

TEST(EngineResume, GoldenCheckedWindowFromCheckpoint)
{
    const Program prog = buildWorkload("go");
    FunctionalCore core(prog);
    core.run(100000);
    ASSERT_FALSE(core.halted());
    const Checkpoint ck = Checkpoint::capture(core);

    SimConfig cfg = SimConfig::dmt(6, 2);
    cfg.max_retired = 3000;
    cfg.warmup_retired = 500;
    ASSERT_TRUE(cfg.check_golden);

    DmtEngine engine(cfg, prog, &ck);
    EXPECT_FALSE(engine.measurementActive());
    engine.run();

    // Every retired instruction inside the window was verified against
    // a golden model forked from the same checkpoint.
    EXPECT_TRUE(engine.goldenOk()) << engine.goldenError();
    EXPECT_EQ(engine.retiredTotal(), 3000u);
    EXPECT_TRUE(engine.measurementActive());
    // The stat block detached at the warmup boundary.  The boundary is
    // evaluated between cycles, so up to retire_width-1 instructions of
    // the crossing cycle land on the warmup side.
    EXPECT_LE(engine.stats().retired.value(), 2500u);
    EXPECT_GE(engine.stats().retired.value(),
              2500u - static_cast<u64>(cfg.retire_width) + 1);
    EXPECT_LT(engine.stats().cycles.value(), engine.now());
}

TEST(EngineResume, SameCheckpointTwiceIsBitIdentical)
{
    const Program prog = buildWorkload("m88ksim");
    FunctionalCore core(prog);
    core.run(60000);
    ASSERT_FALSE(core.halted());
    const Checkpoint ck = Checkpoint::capture(core);

    SimConfig cfg = SimConfig::dmt(6, 2);
    cfg.max_retired = 4000;
    cfg.warmup_retired = 1000;

    auto signature = [&]() {
        DmtEngine engine(cfg, prog, &ck);
        engine.run();
        EXPECT_TRUE(engine.goldenOk()) << engine.goldenError();
        std::ostringstream os;
        os << engine.stats().cycles.value() << ":"
           << engine.stats().retired.value() << ":"
           << engine.stats().threads_spawned.value() << ":"
           << engine.stats().squashed_insts.value() << ":"
           << engine.stats().recoveries.value() << ":" << engine.now();
        return os.str();
    };
    EXPECT_EQ(signature(), signature());
}

TEST(Sampled, DeterministicAcrossCacheStates)
{
    // Same sampled run with a cold cache, a warm cache, and an on-disk
    // checkpoint directory: all three must be bit-identical.
    SampleParams p;
    p.skip = 50000;
    p.warm = 500;
    p.measure = 1500;
    p.max_intervals = 4;
    const SimConfig cfg = SimConfig::dmt(6, 2);

    clearCheckpointCache();
    const RunResult cold = runWorkloadSampled(cfg, "go", p);
    const RunResult warm = runWorkloadSampled(cfg, "go", p);
    EXPECT_EQ(cold.jsonString(), warm.jsonString());
    EXPECT_EQ(cold.sampling.intervals, 4u);
    EXPECT_GT(cold.sampling.covered, 200000u);
    EXPECT_GT(cold.sampling.functional_instr, cold.retired);

    const std::string dir = tempDir("persist");
    setenv("DMT_CKPT_DIR", dir.c_str(), 1);
    clearCheckpointCache();
    const RunResult disk1 = runWorkloadSampled(cfg, "go", p);
    clearCheckpointCache(); // second run must reload from disk files
    const RunResult disk2 = runWorkloadSampled(cfg, "go", p);
    unsetenv("DMT_CKPT_DIR");
    clearCheckpointCache();

    EXPECT_EQ(cold.jsonString(), disk1.jsonString());
    EXPECT_EQ(cold.jsonString(), disk2.jsonString());

    // The checkpoint files really were written.
    struct stat st{};
    const std::string first = dir + "/go-50000.ckpt";
    EXPECT_EQ(::stat(first.c_str(), &st), 0) << first;

    for (u64 i = 1; i <= 4; ++i) {
        const u64 pos = i * 50000 + (i - 1) * 2000;
        std::remove((dir + "/go-" + std::to_string(pos) + ".ckpt")
                        .c_str());
    }
    ::rmdir(dir.c_str());
}

TEST(Sampled, CoversWholeProgramAndStopsAtHalt)
{
    SampleParams p;
    p.skip = 40000;
    p.warm = 500;
    p.measure = 1500;
    const SimConfig cfg = SimConfig::dmt(6, 2);

    clearCheckpointCache();
    const RunResult r = runWorkloadSampled(cfg, "compress", p);
    EXPECT_TRUE(r.completed);
    // compress runs ~282k instructions; coverage must reach HALT.
    EXPECT_GT(r.sampling.covered, 250000u);
    EXPECT_GT(r.sampling.intervals, 3u);
    EXPECT_DOUBLE_EQ(
        r.ipc,
        static_cast<double>(r.retired) / static_cast<double>(r.cycles));
    EXPECT_GT(r.sampling.cpi_mean, 0.0);
    EXPECT_GE(r.sampling.cpi_ci95, 0.0);
    clearCheckpointCache();
}

std::string
sampledGoldenPath()
{
    return std::string(DMT_GOLDEN_DIR) + "/sampled_go.json";
}

bool
updateRequested()
{
    const char *v = std::getenv("DMT_UPDATE_GOLDEN");
    return v && *v && std::string(v) != "0";
}

TEST(Sampled, GoldenSignature)
{
    // Pin the whole sampled pipeline — functional fast-forward,
    // checkpoint capture, engine resume, warmup detach, stat merge —
    // to a checked-in canonical JSON document.  Regenerate with
    // DMT_UPDATE_GOLDEN=1 after intentional behaviour changes.
    SampleParams p;
    p.skip = 50000;
    p.warm = 500;
    p.measure = 1500;
    p.max_intervals = 5;

    clearCheckpointCache();
    const RunResult r =
        runWorkloadSampled(SimConfig::dmt(6, 2), "go", p);
    clearCheckpointCache();
    const std::string got = r.jsonString() + "\n";

    if (updateRequested()) {
        std::ofstream out(sampledGoldenPath());
        ASSERT_TRUE(out.good()) << sampledGoldenPath();
        out << got;
        GTEST_SKIP() << "sampled signature regenerated in "
                     << sampledGoldenPath();
    }

    std::ifstream in(sampledGoldenPath());
    ASSERT_TRUE(in.good()) << sampledGoldenPath()
                           << " missing; regenerate with "
                              "DMT_UPDATE_GOLDEN=1";
    std::ostringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), got)
        << "sampled run drifted from tests/golden/sampled_go.json; "
           "if intentional, regenerate with DMT_UPDATE_GOLDEN=1";
}

TEST(Sampled, GeneratedFamilyCpiBracketsFullDetail)
{
    // A long generated loop nest (~hundreds of thousands of
    // instructions) run twice: once full-detail, once interval
    // sampled.  The sampled CPI estimate must bracket the full-detail
    // CPI within its own 95% confidence interval (plus a small
    // absolute guard for the warmup-boundary bias of short windows) —
    // the agreement contract that makes sampled family sweeps
    // trustworthy.
    const std::string spec = "gen:loopnest:21:trips=200:units=48";
    const SimConfig cfg = SimConfig::dmt(6, 2);

    clearCheckpointCache();
    const RunResult full = runWorkload(cfg, spec, 2000000);
    ASSERT_TRUE(full.completed);
    ASSERT_GT(full.retired, 200000u) << "workload too short to sample";
    const double full_cpi = static_cast<double>(full.cycles) /
                            static_cast<double>(full.retired);

    SampleParams p;
    p.skip = 20000;
    p.warm = 500;
    p.measure = 2000;

    clearCheckpointCache();
    const RunResult s = runWorkloadSampled(cfg, spec, p);
    clearCheckpointCache();
    ASSERT_TRUE(s.completed);
    EXPECT_GE(s.sampling.intervals, 5u);
    EXPECT_GE(s.sampling.covered, full.retired);
    ASSERT_GT(s.sampling.cpi_mean, 0.0);

    EXPECT_NEAR(s.sampling.cpi_mean, full_cpi,
                s.sampling.cpi_ci95 + 0.03)
        << "sampled CPI " << s.sampling.cpi_mean << " +- "
        << s.sampling.cpi_ci95 << " does not bracket full-detail CPI "
        << full_cpi;
}

TEST(Sampled, EnvKnobParsing)
{
    setenv("DMT_SAMPLE", "1000:200:300", 1);
    SampleParams p = SampleParams::fromEnv();
    EXPECT_TRUE(p.enabled());
    EXPECT_EQ(p.skip, 1000u);
    EXPECT_EQ(p.warm, 200u);
    EXPECT_EQ(p.measure, 300u);
    EXPECT_EQ(p.max_intervals, 0u);

    setenv("DMT_SAMPLE", "1000:200:300:7", 1);
    p = SampleParams::fromEnv();
    EXPECT_EQ(p.max_intervals, 7u);

    unsetenv("DMT_SAMPLE");
    EXPECT_FALSE(SampleParams::fromEnv().enabled());
}

} // namespace
} // namespace dmt
