/**
 * @file
 * The parallel sweep scheduler's determinism contract: results come
 * back in submission order, bit-identical to the serial path for any
 * pool width — including under a seeded fault-injection storm — and a
 * job that dies with SimError becomes a failed cell without taking the
 * rest of the sweep down.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/json.hh"
#include "exp/experiments.hh"
#include "exp/sweep.hh"

namespace dmt
{
namespace
{

constexpr u64 kBudget = 8000;

const std::vector<std::string> &
someWorkloads()
{
    static const std::vector<std::string> w{"go", "li", "compress",
                                            "vortex"};
    return w;
}

/** Serial reference: plain runWorkload(), no pool involved. */
std::vector<std::string>
serialJson(const SimConfig &cfg)
{
    std::vector<std::string> docs;
    for (const std::string &w : someWorkloads())
        docs.push_back(runWorkload(cfg, w, kBudget).jsonString());
    return docs;
}

std::vector<std::string>
pooledJson(const SimConfig &cfg, int pool)
{
    SweepRunner runner(pool);
    for (const std::string &w : someWorkloads())
        runner.add(cfg, w, kBudget);
    std::vector<std::string> docs;
    for (const SweepCell &cell : runner.run()) {
        EXPECT_TRUE(cell.ok) << cell.error;
        docs.push_back(cell.result.jsonString());
    }
    return docs;
}

TEST(Sweep, PoolMatchesSerialBitIdentical)
{
    const SimConfig cfg = SimConfig::dmt(4, 2);
    const auto serial = serialJson(cfg);
    const auto pooled = pooledJson(cfg, 4);
    ASSERT_EQ(serial.size(), pooled.size());
    for (size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], pooled[i]) << someWorkloads()[i];
}

TEST(Sweep, FaultStormStaysDeterministicAcrossPool)
{
    // A five-site injection storm with a pinned seed: the injection
    // stream is engine-local, so pool scheduling must not perturb it.
    SimConfig cfg = SimConfig::dmt(4, 2);
    cfg.fault.enabled = true;
    cfg.fault.seed = 7;
    cfg.fault.rateAll(0.02);

    const auto serial = serialJson(cfg);
    const auto pool4 = pooledJson(cfg, 4);
    const auto pool2 = pooledJson(cfg, 2);
    ASSERT_EQ(serial.size(), pool4.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i], pool4[i]) << someWorkloads()[i];
        EXPECT_EQ(pool4[i], pool2[i]) << someWorkloads()[i];
    }
}

TEST(Sweep, CellsComeBackInSubmissionOrder)
{
    // Mixed job sizes so completion order differs from submission
    // order under any real pool.
    SweepRunner runner(4);
    const std::vector<std::pair<std::string, u64>> jobs = {
        {"ijpeg", 20000}, {"go", 1000}, {"perl", 10000}, {"li", 500},
        {"gcc", 15000},   {"vortex", 2000},
    };
    for (const auto &[w, budget] : jobs)
        runner.add(SimConfig::dmt(4, 2), w, budget);
    const auto &cells = runner.run();
    ASSERT_EQ(cells.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        ASSERT_TRUE(cells[i].ok) << cells[i].error;
        EXPECT_EQ(cells[i].result.workload, jobs[i].first);
        EXPECT_GE(cells[i].result.retired, jobs[i].second);
    }
}

TEST(Sweep, SimErrorBecomesFailedCellOthersKeepGoing)
{
    // watchdog_cycles=1 trips before the pipeline can retire its first
    // instruction — a guaranteed, deterministic SimError.
    SimConfig wedged = SimConfig::dmt(4, 2);
    wedged.watchdog_cycles = 1;

    SweepRunner runner(4);
    runner.add(SimConfig::dmt(4, 2), "go", kBudget);
    runner.add(wedged, "li", kBudget);
    runner.add(SimConfig::dmt(4, 2), "compress", kBudget);
    const auto &cells = runner.run();

    ASSERT_EQ(cells.size(), 3u);
    EXPECT_TRUE(cells[0].ok) << cells[0].error;
    EXPECT_FALSE(cells[1].ok);
    EXPECT_NE(cells[1].error.find("no retirement progress"),
              std::string::npos)
        << cells[1].error;
    EXPECT_TRUE(cells[2].ok) << cells[2].error;

    EXPECT_EQ(runner.stats().jobs_total, 3u);
    EXPECT_EQ(runner.stats().jobs_failed, 1u);
}

TEST(Sweep, StatsAggregateAcrossJobs)
{
    SweepRunner runner(2);
    for (const std::string &w : someWorkloads())
        runner.add(SimConfig::dmt(2, 2), w, 2000);
    const auto &cells = runner.run();

    u64 retired = 0;
    for (const SweepCell &cell : cells) {
        ASSERT_TRUE(cell.ok);
        EXPECT_GT(cell.wall_seconds, 0.0);
        retired += cell.result.retired;
    }
    const SweepStats &st = runner.stats();
    EXPECT_EQ(st.jobs_total, someWorkloads().size());
    EXPECT_EQ(st.jobs_failed, 0u);
    EXPECT_EQ(st.retired_total, retired);
    EXPECT_GT(st.wall_seconds, 0.0);
    EXPECT_GE(st.busy_seconds, 0.0);
    EXPECT_GT(st.throughput(), 0.0);

    StatGroup group("sweep");
    SweepStats::StatStore store;
    st.registerAll(group, store);
    const std::string dump = group.dump();
    EXPECT_NE(dump.find("sweep_jobs"), std::string::npos);
    EXPECT_NE(dump.find("sweep_mips"), std::string::npos);

    JsonWriter w;
    st.jsonOn(w);
    EXPECT_NE(w.str().find("\"jobs_total\""), std::string::npos);
}

TEST(Sweep, RespectsDmtJobsEnv)
{
    setenv("DMT_JOBS", "3", 1);
    EXPECT_EQ(sweepJobs(), 3);
    SweepRunner runner;
    EXPECT_EQ(runner.poolWidth(), 3);
    unsetenv("DMT_JOBS");
    EXPECT_GE(sweepJobs(), 1);
}

TEST(Sweep, PoolClampsToJobCount)
{
    SweepRunner runner(16);
    runner.add(SimConfig::dmt(2, 2), "go", 500);
    const auto &cells = runner.run();
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_TRUE(cells[0].ok);
    EXPECT_EQ(runner.stats().pool_width, 1) << "1 job needs 1 worker";
}

} // namespace
} // namespace dmt
