/**
 * @file
 * Watchdog and invariant-auditor tests: a deliberately wedged engine
 * must produce a catchable SimError carrying a machine-parseable JSON
 * post-mortem (and write it to the configured crash file), naming the
 * context that stopped retiring; a deliberately corrupted order tree
 * must be caught by the auditor, not by undefined behaviour later.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "casm/builder.hh"
#include "common/json.hh"
#include "dmt/engine.hh"
#include "fault/auditor.hh"

namespace dmt
{

/** White-box sabotage hooks (friend of DmtEngine and OrderTree). */
class EngineInspector
{
  public:
    /**
     * Wedge the head thread: park its recovery FSM in the latency
     * stage with an unserviceable delay anchored at trace-buffer entry
     * 0.  lowWater() == 0 then holds final retirement below all
     * pending "work" forever — retirement stops, fetch/dispatch fill
     * up and stall, and only the watchdog can end the run.
     */
    static void
    wedgeHeadRecovery(DmtEngine &e)
    {
        ASSERT_NE(e.tree.head(), kNoThread);
        ThreadContext &h = e.ctx(e.tree.head());
        h.recov.state = RecoveryFsm::State::Latency;
        h.recov.latency_left = 1 << 30;
        h.recov.cur.start_tb_id = 0;
    }

    /** Mark a never-spawned context active without linking it: an
     *  orphan the tree structural audit must report. */
    static void
    orphanThread(DmtEngine &e, ThreadId tid)
    {
        e.tree.active[static_cast<size_t>(tid)] = 1;
        e.tree.invalidate();
    }

    /** Point a thread's parent link at itself (a cycle). */
    static void
    selfParent(DmtEngine &e, ThreadId tid)
    {
        e.tree.parent[static_cast<size_t>(tid)] = tid;
        e.tree.kids[static_cast<size_t>(tid)].push_back(tid);
        e.tree.invalidate();
    }
};

namespace
{

using namespace reg;

/** A program that would run forever on a healthy machine. */
Program
spinProgram()
{
    AsmBuilder b;
    const auto loop = b.newLabel();
    b.li(t0, 1);
    b.bind(loop);
    b.add(t1, t1, t0);
    b.j(loop);
    return b.finish();
}

TEST(Watchdog, WedgedEngineThrowsWithJsonPostmortem)
{
    const char *crash_path = "test_watchdog_crash.json";
    std::remove(crash_path);

    SimConfig cfg = SimConfig::dmt(4, 2);
    cfg.watchdog_cycles = 100;
    cfg.crash_file = crash_path;
    DmtEngine e(cfg, spinProgram());
    EngineInspector::wedgeHeadRecovery(e);

    bool threw = false;
    try {
        e.run();
    } catch (const SimError &err) {
        threw = true;
        // The message names the culprit context.
        EXPECT_NE(std::string(err.what()).find("head tid 0"),
                  std::string::npos)
            << err.what();
        EXPECT_NE(std::string(err.what()).find("no retirement progress"),
                  std::string::npos)
            << err.what();

        // The attached post-mortem parses and identifies itself.
        ASSERT_TRUE(err.hasDetails());
        JsonValue doc;
        std::string perr;
        ASSERT_TRUE(JsonValue::parse(err.detailsJson(), &doc, &perr))
            << perr;
        ASSERT_NE(doc.find("postmortem"), nullptr);
        EXPECT_EQ(doc.find("postmortem")->asString(), "watchdog");
        ASSERT_NE(doc.find("cycle"), nullptr);
        EXPECT_GT(doc.find("cycle")->asNumber(), 100.0);
        ASSERT_NE(doc.find("threads"), nullptr);
        EXPECT_FALSE(doc.find("threads")->elements().empty());
        ASSERT_NE(doc.find("stats"), nullptr);
        ASSERT_NE(doc.find("config"), nullptr);
    }
    ASSERT_TRUE(threw) << "watchdog never fired";

    // The same document landed in the crash file.
    std::FILE *f = std::fopen(crash_path, "r");
    ASSERT_NE(f, nullptr) << "crash file was not written";
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    JsonValue doc;
    ASSERT_TRUE(JsonValue::parse(text, &doc, nullptr));
    ASSERT_NE(doc.find("postmortem"), nullptr);
    EXPECT_EQ(doc.find("postmortem")->asString(), "watchdog");
    std::remove(crash_path);
}

TEST(Watchdog, ZeroDisablesTheWatchdog)
{
    // The same wedged engine with watchdog_cycles=0 must honour
    // max_cycles instead of panicking.
    SimConfig cfg = SimConfig::dmt(4, 2);
    cfg.watchdog_cycles = 0;
    cfg.max_cycles = 2000;
    DmtEngine e(cfg, spinProgram());
    EngineInspector::wedgeHeadRecovery(e);
    EXPECT_NO_THROW(e.run());
    EXPECT_FALSE(e.programCompleted());
}

TEST(Auditor, CleanEngineAuditsGreen)
{
    SimConfig cfg = SimConfig::dmt(4, 2);
    cfg.crash_file.clear(); // no crash artifact from tests
    DmtEngine e(cfg, spinProgram());
    std::string why;
    EXPECT_TRUE(InvariantAuditor::checkNoThrow(e, &why)) << why;
    EXPECT_NO_THROW(InvariantAuditor::check(e));
}

TEST(Auditor, OrphanedThreadIsCaught)
{
    SimConfig cfg = SimConfig::dmt(4, 2);
    cfg.crash_file.clear();
    DmtEngine e(cfg, spinProgram());
    EngineInspector::orphanThread(e, 2);
    std::string why;
    EXPECT_FALSE(InvariantAuditor::checkNoThrow(e, &why));
    EXPECT_NE(why.find("tree"), std::string::npos) << why;
    EXPECT_THROW(InvariantAuditor::check(e), SimError);
}

TEST(Auditor, OrderTreeCycleIsCaughtNotWalkedForever)
{
    SimConfig cfg = SimConfig::dmt(4, 2);
    cfg.crash_file.clear();
    DmtEngine e(cfg, spinProgram());
    EngineInspector::selfParent(e, 0);
    std::string why;
    EXPECT_FALSE(InvariantAuditor::checkNoThrow(e, &why));
    EXPECT_THROW(InvariantAuditor::check(e), SimError);
}

TEST(Auditor, AuditFailureCarriesPostmortemDetails)
{
    SimConfig cfg = SimConfig::dmt(4, 2);
    cfg.crash_file.clear();
    DmtEngine e(cfg, spinProgram());
    EngineInspector::orphanThread(e, 3);
    try {
        InvariantAuditor::check(e);
        FAIL() << "corrupted tree audited clean";
    } catch (const SimError &err) {
        ASSERT_TRUE(err.hasDetails());
        JsonValue doc;
        ASSERT_TRUE(JsonValue::parse(err.detailsJson(), &doc, nullptr));
        ASSERT_NE(doc.find("postmortem"), nullptr);
        EXPECT_EQ(doc.find("postmortem")->asString(),
                  "invariant-audit");
        ASSERT_NE(doc.find("reason"), nullptr);
    }
}

// The per-cycle audit gate in step(): a healthy run with the auditor
// on every cycle must behave identically to one with it off.
TEST(Auditor, PeriodicAuditIsTransparent)
{
    AsmBuilder b;
    b.li(t0, 5);
    const auto loop = b.newLabel();
    b.bind(loop);
    b.addi(t1, t1, 3);
    b.out(t1);
    b.addi(t0, t0, -1);
    b.bgtz(t0, loop);
    b.halt();
    const Program prog = b.finish();

    SimConfig cfg = SimConfig::dmt(4, 2);
    DmtEngine plain(cfg, prog);
    plain.run();
    ASSERT_TRUE(plain.goldenOk()) << plain.goldenError();

    cfg.audit_period = 1;
    DmtEngine audited(cfg, prog);
    audited.run();
    ASSERT_TRUE(audited.goldenOk()) << audited.goldenError();
    EXPECT_EQ(audited.stats().cycles.value(),
              plain.stats().cycles.value());
    EXPECT_EQ(audited.outputStream(), plain.outputStream());
}

} // namespace
} // namespace dmt
