/**
 * @file
 * Golden regression signatures: every suite workload, on both the
 * baseline superscalar and the 6-thread/2-port DMT machine, must
 * reproduce the exact cycle count, retirement count and
 * spawn/squash/recovery accounting checked into tests/golden/.  Any
 * drift — a one-cycle perturbation is enough — fails with a
 * field-by-field diff.  Intentional behaviour changes regenerate the
 * signatures with DMT_UPDATE_GOLDEN=1.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hh"
#include "exp/experiments.hh"
#include "exp/sweep.hh"
#include "workloads/workloads.hh"

namespace dmt
{
namespace
{

/** The signature length: fixed, independent of DMT_BENCH_INSTR. */
constexpr u64 kGoldenBudget = 60000;

/** Knobs that would perturb the signatures must not leak in from the
 *  caller's environment. */
const struct EnvSanitizer
{
    EnvSanitizer()
    {
        for (const char *v :
             {"DMT_FAULT", "DMT_FAULT_RATE", "DMT_FAULT_SEED",
              "DMT_TRACE", "DMT_TRACE_FILE", "DMT_TRACE_COUNTERS_FILE",
              "DMT_TRACE_SAMPLE", "DMT_TRACE_RING", "DMT_WATCHDOG",
              "DMT_AUDIT", "DMT_BENCH_INSTR", "DMT_SAMPLE",
              "DMT_CKPT_DIR"})
            unsetenv(v);
    }
} env_sanitizer;

struct Machine
{
    const char *key;
    SimConfig cfg;
};

std::vector<Machine>
machines()
{
    return {{"baseline", exp::baseline()}, {"dmt6", SimConfig::dmt(6, 2)}};
}

/** The compared fields, in file order. */
std::vector<std::pair<std::string, u64>>
signatureOf(const RunResult &r)
{
    const DmtStats &s = r.stats;
    return {
        {"cycles", r.cycles},
        {"retired", r.retired},
        {"completed", r.completed ? 1u : 0u},
        {"threads_spawned", s.threads_spawned.value()},
        {"threads_squashed", s.threads_squashed.value()},
        {"threads_joined", s.threads_joined.value()},
        {"recoveries", s.recoveries.value()},
        {"recovery_dispatches", s.recovery_dispatches.value()},
        {"lsq_violations", s.lsq_violations.value()},
        {"cond_mispredicts", s.cond_mispredicts.value()},
    };
}

void
signatureOn(JsonWriter &w, const RunResult &r)
{
    w.beginObject();
    for (const auto &[k, v] : signatureOf(r))
        w.key(k).value(v);
    // Derived, for human readers; cycles/retired carry the comparison.
    w.key("ipc").value(r.ipc);
    w.endObject();
}

/** Field-by-field comparison; one message per mismatch. */
std::vector<std::string>
diffSignature(const JsonValue &want, const RunResult &got)
{
    std::vector<std::string> diffs;
    for (const auto &[k, v] : signatureOf(got)) {
        const JsonValue *w = want.find(k);
        if (!w) {
            diffs.push_back(k + ": missing from golden file");
            continue;
        }
        const u64 expect = static_cast<u64>(w->asNumber());
        if (expect != v) {
            std::ostringstream os;
            os << k << ": golden " << expect << ", run produced " << v;
            diffs.push_back(os.str());
        }
    }
    return diffs;
}

std::string
goldenPath(const std::string &workload)
{
    return std::string(DMT_GOLDEN_DIR) + "/" + workload + ".json";
}

bool
updateRequested()
{
    const char *v = std::getenv("DMT_UPDATE_GOLDEN");
    return v && *v && std::string(v) != "0";
}

TEST(Golden, SuiteMatchesCheckedInSignatures)
{
    const auto &suite = workloadSuite();
    const std::vector<Machine> mach = machines();

    SweepRunner runner;
    for (const WorkloadInfo &w : suite)
        for (const Machine &m : mach)
            runner.add(m.cfg, w.name, kGoldenBudget,
                       std::string(w.name) + "/" + m.key);
    const auto &cells = runner.run();
    for (const SweepCell &cell : cells)
        ASSERT_TRUE(cell.ok) << cell.error;

    if (updateRequested()) {
        for (size_t wi = 0; wi < suite.size(); ++wi) {
            JsonWriter w;
            w.beginObject();
            w.key("workload").value(suite[wi].name);
            w.key("max_retired").value(kGoldenBudget);
            for (size_t mi = 0; mi < mach.size(); ++mi) {
                w.key(mach[mi].key);
                signatureOn(w, cells[wi * mach.size() + mi].result);
            }
            w.endObject();
            std::ofstream out(goldenPath(suite[wi].name));
            ASSERT_TRUE(out.good()) << goldenPath(suite[wi].name);
            out << w.str() << "\n";
        }
        GTEST_SKIP() << "golden signatures regenerated in "
                     << DMT_GOLDEN_DIR;
    }

    for (size_t wi = 0; wi < suite.size(); ++wi) {
        const std::string path = goldenPath(suite[wi].name);
        std::ifstream in(path);
        ASSERT_TRUE(in.good())
            << path << " missing; regenerate with DMT_UPDATE_GOLDEN=1";
        std::ostringstream buf;
        buf << in.rdbuf();

        JsonValue doc;
        std::string err;
        ASSERT_TRUE(JsonValue::parse(buf.str(), &doc, &err))
            << path << ": " << err;
        const JsonValue *budget = doc.find("max_retired");
        ASSERT_NE(budget, nullptr) << path;
        ASSERT_EQ(static_cast<u64>(budget->asNumber()), kGoldenBudget)
            << path << " was generated at a different run length";

        for (size_t mi = 0; mi < mach.size(); ++mi) {
            const JsonValue *sig = doc.find(mach[mi].key);
            ASSERT_NE(sig, nullptr)
                << path << " has no '" << mach[mi].key << "' signature";
            const auto diffs =
                diffSignature(*sig, cells[wi * mach.size() + mi].result);
            std::ostringstream os;
            for (const std::string &d : diffs)
                os << "\n  " << d;
            EXPECT_TRUE(diffs.empty())
                << suite[wi].name << "/" << mach[mi].key
                << " drifted from its golden signature:" << os.str()
                << "\nIf intentional, regenerate with "
                   "DMT_UPDATE_GOLDEN=1.";
        }
    }
}

// ---- generated-family signatures ---------------------------------------

/** One pinned seed per generated family plus a knob-variant: the
 *  generator's emission and the machines' timing on it are both under
 *  regression control.  File names are the spec with ':'/'=' made
 *  filesystem-tame. */
struct PinnedGen
{
    const char *key;  ///< golden file stem (tests/golden/<key>.json)
    const char *spec; ///< canonical gen: workload spec
};

std::vector<PinnedGen>
genPinned()
{
    return {
        {"gen_calltree_11",
         "gen:calltree:11:alias=25:depth=6:entropy=70:trips=8:units=24"},
        {"gen_loopnest_7",
         "gen:loopnest:7:alias=25:depth=4:entropy=50:trips=40:units=24"},
        {"gen_branchy_5",
         "gen:branchy:5:alias=25:depth=4:entropy=50:trips=60:units=16"},
        {"gen_alias_9",
         "gen:alias:9:alias=60:depth=4:entropy=50:trips=400:units=256"},
        {"gen_prodcons_3",
         "gen:prodcons:3:alias=25:depth=4:entropy=50:trips=8:units=96"},
        {"gen_ptrchase_13",
         "gen:ptrchase:13:alias=25:depth=4:entropy=50:trips=600:"
         "units=64"},
        {"gen_evloop_17",
         "gen:evloop:17:alias=50:depth=4:entropy=80:trips=8:units=120"},
        // Knob-variant: the same family at a second point of the knob
        // space must pin to a different signature.
        {"gen_calltree_29",
         "gen:calltree:29:alias=80:depth=4:entropy=20:trips=8:units=24"},
    };
}

TEST(Golden, GeneratedFamiliesMatchCheckedInSignatures)
{
    const std::vector<PinnedGen> pinned = genPinned();
    const std::vector<Machine> mach = machines();

    SweepRunner runner;
    for (const PinnedGen &p : pinned)
        for (const Machine &m : mach)
            runner.add(m.cfg, p.spec, kGoldenBudget,
                       std::string(p.key) + "/" + m.key);
    const auto &cells = runner.run();
    for (const SweepCell &cell : cells)
        ASSERT_TRUE(cell.ok) << cell.error;

    if (updateRequested()) {
        for (size_t pi = 0; pi < pinned.size(); ++pi) {
            JsonWriter w;
            w.beginObject();
            w.key("workload").value(pinned[pi].spec);
            w.key("max_retired").value(kGoldenBudget);
            for (size_t mi = 0; mi < mach.size(); ++mi) {
                w.key(mach[mi].key);
                signatureOn(w, cells[pi * mach.size() + mi].result);
            }
            w.endObject();
            std::ofstream out(goldenPath(pinned[pi].key));
            ASSERT_TRUE(out.good()) << goldenPath(pinned[pi].key);
            out << w.str() << "\n";
        }
        GTEST_SKIP() << "generated-family signatures regenerated in "
                     << DMT_GOLDEN_DIR;
    }

    for (size_t pi = 0; pi < pinned.size(); ++pi) {
        const std::string path = goldenPath(pinned[pi].key);
        std::ifstream in(path);
        ASSERT_TRUE(in.good())
            << path << " missing; regenerate with DMT_UPDATE_GOLDEN=1";
        std::ostringstream buf;
        buf << in.rdbuf();

        JsonValue doc;
        std::string err;
        ASSERT_TRUE(JsonValue::parse(buf.str(), &doc, &err))
            << path << ": " << err;
        const JsonValue *spec = doc.find("workload");
        ASSERT_NE(spec, nullptr) << path;
        ASSERT_EQ(spec->asString(), pinned[pi].spec)
            << path << " pins a different spec";
        const JsonValue *budget = doc.find("max_retired");
        ASSERT_NE(budget, nullptr) << path;
        ASSERT_EQ(static_cast<u64>(budget->asNumber()), kGoldenBudget)
            << path << " was generated at a different run length";

        for (size_t mi = 0; mi < mach.size(); ++mi) {
            const JsonValue *sig = doc.find(mach[mi].key);
            ASSERT_NE(sig, nullptr)
                << path << " has no '" << mach[mi].key << "' signature";
            const auto diffs = diffSignature(
                *sig, cells[pi * mach.size() + mi].result);
            std::ostringstream os;
            for (const std::string &d : diffs)
                os << "\n  " << d;
            EXPECT_TRUE(diffs.empty())
                << pinned[pi].key << "/" << mach[mi].key
                << " drifted from its golden signature:" << os.str()
                << "\nIf intentional, regenerate with "
                   "DMT_UPDATE_GOLDEN=1.";
        }
    }
}

TEST(Golden, GeneratedPerturbationIsDetected)
{
    // The comparator must be as airtight on generated workloads as on
    // the suite: one cycle of drift on a gen: spec fails.
    const RunResult r = runWorkload(SimConfig::dmt(4, 2),
                                    genPinned()[1].spec, 5000);

    JsonWriter w;
    signatureOn(w, r);
    JsonValue sig;
    ASSERT_TRUE(JsonValue::parse(w.str(), &sig, nullptr));
    EXPECT_TRUE(diffSignature(sig, r).empty())
        << "a run must match its own signature";

    RunResult bumped = r;
    bumped.cycles += 1;
    const auto diffs = diffSignature(sig, bumped);
    ASSERT_EQ(diffs.size(), 1u);
    EXPECT_NE(diffs[0].find("cycles"), std::string::npos) << diffs[0];
}

TEST(Golden, OneCyclePerturbationIsDetected)
{
    // The comparator itself must be airtight: serialize a run's own
    // signature, nudge the cycle count by one, and demand a diff.
    const RunResult r = runWorkload(SimConfig::dmt(4, 2), "go", 5000);

    JsonWriter w;
    signatureOn(w, r);
    JsonValue sig;
    ASSERT_TRUE(JsonValue::parse(w.str(), &sig, nullptr));
    EXPECT_TRUE(diffSignature(sig, r).empty())
        << "a run must match its own signature";

    RunResult bumped = r;
    bumped.cycles += 1;
    const auto diffs = diffSignature(sig, bumped);
    ASSERT_EQ(diffs.size(), 1u);
    EXPECT_NE(diffs[0].find("cycles"), std::string::npos) << diffs[0];
}

} // namespace
} // namespace dmt
