/**
 * @file
 * The simulation service, bottom-up: canonical hashing (the cache-key
 * and identity-proof primitive), job-spec sample parsing, the wire
 * protocol's strict no-fatal() validation, the content-addressed
 * result cache with single-flight dedup, and finally a live daemon on
 * an ephemeral port proving the headline contract — cached, queued and
 * freshly computed answers are byte-identical to direct runWorkload()
 * calls.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hh"
#include "common/rng.hh"
#include "exp/report.hh"
#include "exp/runner.hh"
#include "exp/sampled.hh"
#include "serve/cache.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "uarch/config.hh"

namespace dmt
{
namespace
{

constexpr u64 kBudget = 2000; // instructions: keeps every run ~ms

SimConfig
smallDmt()
{
    SimConfig cfg = SimConfig::dmt(2, 2);
    cfg.max_retired = kBudget;
    return cfg;
}

JobSpec
smallJob(const std::string &workload = "go")
{
    JobSpec job;
    job.workload = workload;
    job.cfg = smallDmt();
    job.max_retired = kBudget;
    return job;
}

/** A fresh, empty durable-cache directory under the test cwd. */
std::string
tempCacheDir(const char *name)
{
    const std::string d = std::string("serve_test_") + name;
    ::mkdir(d.c_str(), 0755);
    if (DIR *dp = ::opendir(d.c_str())) {
        while (dirent *de = ::readdir(dp)) {
            const std::string f = de->d_name;
            if (f != "." && f != "..")
                std::remove((d + "/" + f).c_str());
        }
        ::closedir(dp);
    }
    return d;
}

std::string
readAll(const std::string &path)
{
    std::string out;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    if (!f)
        return out;
    char chunk[4096];
    size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        out.append(chunk, n);
    std::fclose(f);
    return out;
}

void
writeAll(const std::string &path, const std::string &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << path;
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
              bytes.size());
    std::fclose(f);
}

// ---- canonical hashing -------------------------------------------------

TEST(CanonicalHash, FnvPrimitives)
{
    EXPECT_EQ(fnv1aHash(""), kFnvBasis);
    EXPECT_NE(fnv1aHash("a"), fnv1aHash("b"));
    EXPECT_NE(fnv1aHash("ab"), fnv1aHash("ba")) << "order matters";
    // Chaining two pieces equals hashing the concatenation.
    EXPECT_EQ(fnv1aHash("cd", fnv1aHash("ab")), fnv1aHash("abcd"));
    EXPECT_EQ(hashHex(0).size(), 16u);
    EXPECT_EQ(hashHex(0xdeadbeefull), "00000000deadbeef");
}

TEST(CanonicalHash, RunsAreReproducible)
{
    const RunResult a =
        runWorkloadJob(smallDmt(), "go", kBudget, SampleParams{});
    const RunResult b =
        runWorkloadJob(smallDmt(), "go", kBudget, SampleParams{});
    EXPECT_EQ(a.jsonString(), b.jsonString());
    EXPECT_EQ(canonicalHash(a), canonicalHash(b));
}

TEST(CanonicalHash, HostTimingIsExcluded)
{
    RunResult a =
        runWorkloadJob(smallDmt(), "go", kBudget, SampleParams{});
    RunResult b = a;
    b.wall_s = a.wall_s + 123.0;
    b.minstr_per_s = a.minstr_per_s + 9.0;
    b.sampling.func_wall_s = 77.0;
    EXPECT_EQ(canonicalHash(a), canonicalHash(b))
        << "nondeterministic host timing must not change the digest";
    b.cycles += 1;
    EXPECT_NE(canonicalHash(a), canonicalHash(b));
}

TEST(CanonicalHash, ConfigIdentity)
{
    EXPECT_EQ(canonicalHash(smallDmt()), canonicalHash(smallDmt()));
    SimConfig other = smallDmt();
    other.max_threads = 4;
    EXPECT_NE(canonicalHash(smallDmt()), canonicalHash(other));
    other = smallDmt();
    other.max_retired = kBudget + 1;
    EXPECT_NE(canonicalHash(smallDmt()), canonicalHash(other))
        << "the budget is part of the machine identity";
}

// ---- sample-spec parsing ----------------------------------------------

TEST(SampleSpec, ParsesAndCanonicalizes)
{
    SampleParams p;
    std::string err;
    ASSERT_TRUE(SampleParams::parse("1000:100:200", &p, &err)) << err;
    EXPECT_EQ(p.skip, 1000u);
    EXPECT_EQ(p.warm, 100u);
    EXPECT_EQ(p.measure, 200u);
    EXPECT_EQ(p.max_intervals, 0u);
    EXPECT_TRUE(p.enabled());
    EXPECT_EQ(p.canonicalSpec(), "1000:100:200:0");

    ASSERT_TRUE(SampleParams::parse("1000:100:200:5", &p, &err));
    EXPECT_EQ(p.max_intervals, 5u);
    EXPECT_EQ(p.canonicalSpec(), "1000:100:200:5");

    ASSERT_TRUE(SampleParams::parse("", &p, &err)) << "empty = off";
    EXPECT_FALSE(p.enabled());
    EXPECT_EQ(p.canonicalSpec(), "off");
}

TEST(SampleSpec, RejectsGarbage)
{
    SampleParams p;
    std::string err;
    EXPECT_FALSE(SampleParams::parse("1000:100", &p, &err));
    EXPECT_FALSE(SampleParams::parse("1:2:3:4:5", &p, &err));
    EXPECT_FALSE(SampleParams::parse("a:b:c", &p, &err));
    EXPECT_FALSE(SampleParams::parse("1000:100:0", &p, &err))
        << "a zero measure window samples nothing";
}

// ---- protocol ----------------------------------------------------------

TEST(Protocol, RunRequestRoundTrips)
{
    JobSpec job = smallJob();
    job.priority = 5;
    const std::string line = runRequestLine(7, job);

    Request req;
    std::string err;
    ASSERT_TRUE(parseRequest(line, &req, &err)) << err;
    EXPECT_EQ(req.op, Request::Op::Run);
    ASSERT_EQ(req.id.type(), JsonValue::Type::Number);
    EXPECT_EQ(req.id.asNumber(), 7.0);
    EXPECT_EQ(req.job.workload, "go");
    EXPECT_EQ(req.job.max_retired, kBudget);
    EXPECT_EQ(req.job.priority, 5);
    EXPECT_FALSE(req.job.sample.enabled());
    EXPECT_EQ(canonicalHash(req.job.cfg), canonicalHash(job.cfg))
        << "replaying a recorded config must rebuild the same machine";
}

TEST(Protocol, SimpleOpsParse)
{
    Request req;
    std::string err;
    ASSERT_TRUE(parseRequest(simpleRequestLine("ping", 1), &req, &err));
    EXPECT_EQ(req.op, Request::Op::Ping);
    ASSERT_TRUE(parseRequest(simpleRequestLine("stats", 2), &req, &err));
    EXPECT_EQ(req.op, Request::Op::Stats);
    ASSERT_TRUE(
        parseRequest(simpleRequestLine("shutdown", 3), &req, &err));
    EXPECT_EQ(req.op, Request::Op::Shutdown);
}

TEST(Protocol, RejectsWithoutExiting)
{
    Request req;
    std::string err;
    const char *bad[] = {
        "not json at all",
        "[1,2,3]",
        "{\"id\":1}",
        "{\"op\":\"frobnicate\",\"id\":1}",
        "{\"op\":\"run\",\"id\":1}",
        "{\"op\":\"run\",\"job\":{\"workload\":\"nosuch\"}}",
        "{\"op\":\"run\",\"job\":{\"workload\":\"go\","
        "\"config\":{\"bogus\":1}}}",
        "{\"op\":\"run\",\"job\":{\"workload\":\"go\","
        "\"config\":{\"max_threads\":0}}}",
        "{\"op\":\"run\",\"job\":{\"workload\":\"go\","
        "\"config\":{\"fault_enabled\":true}}}",
        "{\"op\":\"run\",\"job\":{\"workload\":\"go\","
        "\"max_retired\":\"lots\"}}",
        "{\"op\":\"run\",\"job\":{\"workload\":\"go\","
        "\"sample\":\"1:2\"}}",
        "{\"op\":\"run\",\"job\":{\"workload\":\"go\","
        "\"sample\":\"1000:100:200\","
        "\"config\":{\"warmup_retired\":100}}}",
    };
    for (const char *line : bad) {
        err.clear();
        EXPECT_FALSE(parseRequest(line, &req, &err)) << line;
        EXPECT_FALSE(err.empty()) << line;
    }
}

TEST(Protocol, BudgetDefaultsMatchLocalRuns)
{
    setenv("DMT_BENCH_INSTR", "4321", 1);
    Request req;
    std::string err;
    ASSERT_TRUE(parseRequest(
        "{\"op\":\"run\",\"job\":{\"workload\":\"go\"}}", &req, &err))
        << err;
    EXPECT_EQ(req.job.max_retired, 4321u)
        << "detailed default is benchRunLength()";
    EXPECT_EQ(req.job.cfg.max_retired, 4321u)
        << "the resolved budget must be folded into the cache identity";

    ASSERT_TRUE(parseRequest("{\"op\":\"run\",\"job\":{\"workload\":"
                             "\"go\",\"sample\":\"1000:100:200\"}}",
                             &req, &err))
        << err;
    EXPECT_EQ(req.job.max_retired, 4321u)
        << "sampled default is DMT_BENCH_INSTR";
    unsetenv("DMT_BENCH_INSTR");

    ASSERT_TRUE(parseRequest("{\"op\":\"run\",\"job\":{\"workload\":"
                             "\"go\",\"sample\":\"1000:100:200\"}}",
                             &req, &err));
    EXPECT_EQ(req.job.max_retired, 0u)
        << "sampled with no knob = whole program";
}

TEST(Protocol, ExtractRawResult)
{
    const std::string doc = "{\"cycles\":123,\"ipc\":1.5}";
    const std::string reply =
        okRunReply(JsonValue{}, doc, 0x1234, 0x5678, true);
    std::string raw;
    ASSERT_TRUE(extractRawResult(reply, &raw));
    EXPECT_EQ(raw, doc) << "the slice must be byte-exact";
    EXPECT_FALSE(extractRawResult(errorReply(JsonValue{}, "x"), &raw));
}

TEST(Protocol, CacheKeySeparatesComponents)
{
    const SimConfig cfg = smallDmt();
    const u64 base = resultCacheKey(cfg, 1, SampleParams{});
    EXPECT_EQ(base, resultCacheKey(cfg, 1, SampleParams{}));
    EXPECT_NE(base, resultCacheKey(cfg, 2, SampleParams{}))
        << "program image is part of the key";
    SimConfig other = cfg;
    other.fetch_ports = 4;
    EXPECT_NE(base, resultCacheKey(other, 1, SampleParams{}));
    SampleParams sp;
    std::string err;
    ASSERT_TRUE(SampleParams::parse("1000:100:200", &sp, &err));
    EXPECT_NE(base, resultCacheKey(cfg, 1, sp));
}

// ---- result cache ------------------------------------------------------

ComputedResult
okResult(const std::string &json)
{
    ComputedResult r;
    r.ok = true;
    r.json = json;
    r.hash = fnv1aHash(json);
    return r;
}

TEST(ResultCache, MissThenHit)
{
    ResultCache cache(8);
    int calls = 0;
    auto out = cache.getOrCompute(1, [&] {
        ++calls;
        return okResult("one");
    });
    EXPECT_TRUE(out.ok);
    EXPECT_FALSE(out.cached);
    EXPECT_EQ(out.json, "one");

    out = cache.getOrCompute(1, [&] {
        ++calls;
        return okResult("never");
    });
    EXPECT_TRUE(out.ok);
    EXPECT_TRUE(out.cached);
    EXPECT_EQ(out.json, "one");
    EXPECT_EQ(calls, 1);

    const auto c = cache.counters();
    EXPECT_EQ(c.hits, 1u);
    EXPECT_EQ(c.misses, 1u);
    EXPECT_EQ(c.entries, 1u);
}

TEST(ResultCache, LruEvictionKeepsRecentlyUsed)
{
    ResultCache cache(2);
    auto fill = [&](u64 key, const char *json) {
        cache.getOrCompute(key, [&] { return okResult(json); });
    };
    fill(1, "one");
    fill(2, "two");
    // Touch 1 so 2 becomes the eviction victim.
    cache.getOrCompute(1, [&] { return okResult("never"); });
    fill(3, "three");
    EXPECT_EQ(cache.counters().evictions, 1u);

    int recomputed = 0;
    auto out = cache.getOrCompute(1, [&] {
        ++recomputed;
        return okResult("one'");
    });
    EXPECT_TRUE(out.cached) << "1 was promoted, must have survived";
    out = cache.getOrCompute(2, [&] {
        ++recomputed;
        return okResult("two'");
    });
    EXPECT_FALSE(out.cached) << "2 was the LRU entry, must be gone";
    EXPECT_EQ(recomputed, 1);
}

TEST(ResultCache, ErrorsAreNotCached)
{
    ResultCache cache(8);
    int calls = 0;
    auto out = cache.getOrCompute(9, [&]() -> ComputedResult {
        ++calls;
        ComputedResult r;
        r.error = "boom";
        return r;
    });
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(out.error, "boom");
    out = cache.getOrCompute(9, [&] {
        ++calls;
        return okResult("recovered");
    });
    EXPECT_TRUE(out.ok);
    EXPECT_FALSE(out.cached) << "a failure must not poison the key";
    EXPECT_EQ(calls, 2);
}

TEST(ResultCache, SingleFlightDeduplicates)
{
    ResultCache cache(8);
    std::atomic<int> calls{0};
    auto compute = [&] {
        calls.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        return okResult("shared");
    };
    ResultCache::Outcome a, b;
    std::thread t1([&] { a = cache.getOrCompute(5, compute); });
    // Give t1 a head start so t2 joins the in-flight computation.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    std::thread t2([&] { b = cache.getOrCompute(5, compute); });
    t1.join();
    t2.join();
    EXPECT_EQ(calls.load(), 1) << "one computation, two answers";
    EXPECT_TRUE(a.ok);
    EXPECT_TRUE(b.ok);
    EXPECT_EQ(a.json, "shared");
    EXPECT_EQ(b.json, "shared");
    EXPECT_TRUE(a.cached || b.cached);
    EXPECT_EQ(cache.counters().joins, 1u);
}

// ---- durable result cache ---------------------------------------------

TEST(DurableCache, SpillsAndRestoresAcrossInstances)
{
    const std::string dir = tempCacheDir("durable");
    const u64 key = 0x1998;
    {
        ResultCache cache(8, dir);
        const auto out =
            cache.getOrCompute(key, [] { return okResult("payload"); });
        EXPECT_TRUE(out.ok);
        EXPECT_FALSE(out.cached);
        EXPECT_EQ(cache.counters().spills, 1u);
    }

    // A brand-new instance (a restarted daemon) must answer from disk
    // without computing, and the disk hit must look like a cache hit.
    ResultCache fresh(8, dir);
    int calls = 0;
    auto out = fresh.getOrCompute(key, [&] {
        ++calls;
        return okResult("never");
    });
    EXPECT_TRUE(out.ok);
    EXPECT_TRUE(out.cached);
    EXPECT_EQ(out.json, "payload");
    EXPECT_EQ(out.hash, fnv1aHash("payload"));
    EXPECT_EQ(calls, 0);
    auto c = fresh.counters();
    EXPECT_EQ(c.disk_hits, 1u);
    EXPECT_EQ(c.misses, 0u);

    // The restored entry now lives in memory: no second disk probe.
    out = fresh.getOrCompute(key, [&] {
        ++calls;
        return okResult("never");
    });
    EXPECT_TRUE(out.cached);
    EXPECT_EQ(calls, 0);
    EXPECT_EQ(fresh.counters().disk_hits, 1u);
    EXPECT_EQ(fresh.counters().hits, 1u);
}

TEST(DurableCache, ErrorsAreNeverSpilled)
{
    const std::string dir = tempCacheDir("errspill");
    const u64 key = 0x7;
    ResultCache cache(8, dir);
    cache.getOrCompute(key, [] {
        ComputedResult r;
        r.error = "boom";
        return r;
    });
    const std::string path = dir + "/" + hashHex(key) + ".dmtres";
    struct stat st{};
    EXPECT_NE(::stat(path.c_str(), &st), 0)
        << "a failed compute must not leave a durable entry";
    EXPECT_EQ(cache.counters().spills, 0u);
}

TEST(DurableCache, RejectsTornCorruptAndMisplacedFiles)
{
    const std::string dir = tempCacheDir("corrupt");
    const u64 key = 11;
    const std::string path = dir + "/" + hashHex(key) + ".dmtres";

    const auto spill = [&] {
        std::remove(path.c_str());
        ResultCache c(8, dir);
        c.getOrCompute(key,
                       [] { return okResult("the canonical bytes"); });
    };
    // Load through a fresh instance; returns (recomputed?, counters).
    const auto probe = [&](const char *label) {
        ResultCache c(8, dir);
        int calls = 0;
        const auto out = c.getOrCompute(key, [&] {
            ++calls;
            return okResult("recomputed");
        });
        EXPECT_TRUE(out.ok) << label;
        EXPECT_EQ(calls, 1) << label << ": corrupt file must be "
                            << "rejected and the result recomputed";
        EXPECT_EQ(out.json, "recomputed") << label;
        const auto ctr = c.counters();
        EXPECT_EQ(ctr.restore_rejected, 1u) << label;
        EXPECT_EQ(ctr.disk_hits, 0u) << label;
        EXPECT_EQ(ctr.spills, 1u)
            << label << ": the recompute must rewrite the entry";
    };

    // Torn write: the file ends mid-payload (no intact footer).
    spill();
    std::string bytes = readAll(path);
    ASSERT_GT(bytes.size(), 32u);
    writeAll(path, bytes.substr(0, bytes.size() - 5));
    probe("torn");

    // The rewrite left a healthy file behind: next instance disk-hits.
    {
        ResultCache c(8, dir);
        const auto out =
            c.getOrCompute(key, [] { return okResult("never"); });
        EXPECT_TRUE(out.cached);
        EXPECT_EQ(out.json, "recomputed");
        EXPECT_EQ(c.counters().disk_hits, 1u);
    }

    // Flipped payload bit: length intact, integrity footer mismatch.
    spill();
    bytes = readAll(path);
    bytes[26] = static_cast<char>(bytes[26] ^ 0x40);
    writeAll(path, bytes);
    probe("bitflip");

    // Wrong magic: a foreign or older-version file.
    spill();
    bytes = readAll(path);
    bytes[0] = 'X';
    writeAll(path, bytes);
    probe("magic");

    // A valid entry parked under the wrong key's filename (e.g. a
    // botched manual copy) must not be served as that key.
    spill();
    const u64 other = 12;
    const std::string other_path =
        dir + "/" + hashHex(other) + ".dmtres";
    writeAll(other_path, readAll(path));
    {
        ResultCache c(8, dir);
        int calls = 0;
        const auto out = c.getOrCompute(other, [&] {
            ++calls;
            return okResult("recomputed");
        });
        EXPECT_TRUE(out.ok);
        EXPECT_EQ(calls, 1);
        EXPECT_EQ(c.counters().restore_rejected, 1u);
    }
}

// ---- wall-clock deadlines ----------------------------------------------

TEST(Deadline, ExpiredDeadlineAbortsDetailedRun)
{
    SimConfig cfg = smallDmt();
    cfg.max_retired = 50000; // long enough to cross a 4096-cycle granule
    cfg.deadline = std::chrono::steady_clock::now()
        - std::chrono::seconds(1);
    try {
        runWorkloadJob(cfg, "go", cfg.max_retired, SampleParams{});
        FAIL() << "an expired deadline must abort the run";
    } catch (const SimError &err) {
        EXPECT_NE(std::string(err.what()).find("deadline expired"),
                  std::string::npos)
            << err.what();
    }
}

TEST(Deadline, ExpiredDeadlineAbortsSampledRun)
{
    SampleParams p;
    std::string serr;
    ASSERT_TRUE(SampleParams::parse("20000:200:500:2", &p, &serr));
    SimConfig cfg = smallDmt();
    cfg.max_retired = 0;
    cfg.deadline = std::chrono::steady_clock::now()
        - std::chrono::seconds(1);
    clearCheckpointCache();
    try {
        runWorkloadJob(cfg, "go", 0, p);
        FAIL() << "an expired deadline must abort the sampled run";
    } catch (const SimError &err) {
        EXPECT_NE(std::string(err.what()).find("deadline expired"),
                  std::string::npos)
            << err.what();
    }
    clearCheckpointCache();
}

TEST(Deadline, DisarmedByDefaultAndExcludedFromIdentity)
{
    SimConfig cfg = smallDmt();
    EXPECT_FALSE(cfg.hasDeadline());
    SimConfig armed = cfg;
    armed.deadline = std::chrono::steady_clock::now()
        + std::chrono::hours(1);
    EXPECT_TRUE(armed.hasDeadline());
    EXPECT_EQ(canonicalHash(cfg), canonicalHash(armed))
        << "the deadline is scheduling state, not machine identity";
    EXPECT_EQ(resultCacheKey(cfg, 1, SampleParams{}),
              resultCacheKey(armed, 1, SampleParams{}))
        << "two budgets for the same cell must share one cache entry";
}

// ---- live daemon -------------------------------------------------------

class ServeEndToEnd : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ServeOptions opts;
        opts.port = 0; // ephemeral: tests never collide
        opts.pool = 2;
        opts.cache_entries = 64;
        opts.drain_s = 10.0;
        server = std::make_unique<Server>(opts);
        std::string err;
        ASSERT_TRUE(server->start(&err)) << err;
    }

    ServeClient
    makeClient()
    {
        ServeClient c;
        std::string err;
        EXPECT_TRUE(c.connect(server->port(), &err, 2.0)) << err;
        return c;
    }

    /** Submit @p job, expect success, return (raw result, reply). */
    std::string
    runJob(ServeClient &c, const JobSpec &job, JsonValue *reply,
           i64 id = 1)
    {
        std::string err, raw;
        EXPECT_TRUE(c.request(runRequestLine(id, job), reply, &err))
            << err;
        const JsonValue *ok = reply->find("ok");
        EXPECT_TRUE(ok && ok->asBool())
            << "job failed: " << c.lastLine();
        EXPECT_TRUE(extractRawResult(c.lastLine(), &raw));
        return raw;
    }

    std::unique_ptr<Server> server;
};

TEST_F(ServeEndToEnd, ColdCachedAndDirectAnswersAreByteIdentical)
{
    ServeClient c = makeClient();
    const JobSpec job = smallJob();

    JsonValue cold_reply;
    const std::string cold = runJob(c, job, &cold_reply);
    EXPECT_FALSE(cold_reply.find("cached")->asBool());

    JsonValue warm_reply;
    const std::string warm = runJob(c, job, &warm_reply, 2);
    EXPECT_TRUE(warm_reply.find("cached")->asBool());

    const RunResult direct = runWorkloadJob(job.cfg, job.workload,
                                            job.max_retired, job.sample);
    EXPECT_EQ(cold, direct.jsonString())
        << "daemon-computed bytes must equal a direct local run";
    EXPECT_EQ(warm, direct.jsonString())
        << "cache replay must not alter a single byte";
    EXPECT_EQ(cold_reply.find("result_hash")->asString(),
              hashHex(canonicalHash(direct)))
        << "the advertised digest must match the local digest";
    EXPECT_EQ(warm_reply.find("result_hash")->asString(),
              hashHex(canonicalHash(direct)));
    EXPECT_EQ(server->jobsSimulated(), 1u);
}

TEST_F(ServeEndToEnd, ConcurrentIdenticalJobsSimulateOnce)
{
    constexpr int kClients = 4;
    std::vector<ServeClient> clients(kClients);
    for (auto &c : clients) {
        std::string err;
        ASSERT_TRUE(c.connect(server->port(), &err, 2.0)) << err;
    }
    const JobSpec job = smallJob("compress");
    const std::string line = runRequestLine(1, job);
    for (auto &c : clients) {
        std::string err;
        ASSERT_TRUE(c.sendLine(line, &err)) << err;
    }
    std::vector<std::string> raws;
    for (auto &c : clients) {
        JsonValue reply;
        std::string err, raw;
        ASSERT_TRUE(c.recvReply(&reply, &err)) << err;
        ASSERT_TRUE(reply.find("ok")->asBool()) << c.lastLine();
        ASSERT_TRUE(extractRawResult(c.lastLine(), &raw));
        raws.push_back(raw);
    }
    for (int i = 1; i < kClients; ++i)
        EXPECT_EQ(raws[0], raws[i]) << "all N replies identical";
    EXPECT_EQ(server->jobsSimulated(), 1u)
        << "N duplicate submissions, exactly one simulation";
}

TEST_F(ServeEndToEnd, BadJobsAreContainedGoodJobsStillRun)
{
    ServeClient c = makeClient();
    std::string err;
    JsonValue reply;

    // Malformed request: error reply, connection stays up.
    ASSERT_TRUE(c.request("this is not json", &reply, &err)) << err;
    EXPECT_FALSE(reply.find("ok")->asBool());

    // Valid JSON, invalid job: rejection with a reason.
    ASSERT_TRUE(c.request("{\"op\":\"run\",\"id\":9,\"job\":"
                          "{\"workload\":\"nosuch\"}}",
                          &reply, &err))
        << err;
    EXPECT_FALSE(reply.find("ok")->asBool());
    EXPECT_NE(reply.find("error")->asString().find("nosuch"),
              std::string::npos);

    // A SimError inside a job (watchdog trip) becomes an error reply,
    // not a daemon death.
    JobSpec doomed = smallJob();
    doomed.cfg.watchdog_cycles = 1;
    ASSERT_TRUE(c.request(runRequestLine(10, doomed), &reply, &err))
        << err;
    EXPECT_FALSE(reply.find("ok")->asBool()) << c.lastLine();

    // The daemon survived all of the above and still serves.
    JsonValue good_reply;
    runJob(c, smallJob(), &good_reply, 11);
    EXPECT_TRUE(good_reply.find("ok")->asBool());
}

TEST_F(ServeEndToEnd, StatsReportQueueAndCaches)
{
    ServeClient c = makeClient();
    JsonValue reply;
    runJob(c, smallJob(), &reply);
    runJob(c, smallJob(), &reply, 2);

    std::string err;
    ASSERT_TRUE(
        c.request(simpleRequestLine("stats", 3), &reply, &err))
        << err;
    const JsonValue *stats = reply.find("stats");
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->find("jobs_simulated")->asNumber(), 1.0);
    EXPECT_EQ(stats->find("queue_depth")->asNumber(), 0.0);
    const JsonValue *cache = stats->find("cache");
    ASSERT_NE(cache, nullptr);
    EXPECT_EQ(cache->find("hits")->asNumber(), 1.0);
    EXPECT_EQ(cache->find("misses")->asNumber(), 1.0);
    ASSERT_NE(stats->find("ckpt_cache"), nullptr)
        << "checkpoint-cache counters ride along in stats";
}

TEST_F(ServeEndToEnd, ShutdownDrainsCleanly)
{
    ServeClient c = makeClient();
    JsonValue reply;
    runJob(c, smallJob(), &reply);

    std::string err;
    ASSERT_TRUE(
        c.request(simpleRequestLine("shutdown", 2), &reply, &err))
        << err;
    EXPECT_TRUE(reply.find("ok")->asBool());
    EXPECT_TRUE(server->draining());
    server->join();

    ServeClient late;
    EXPECT_FALSE(late.connect(server->port(), &err, 0.0))
        << "a drained daemon must not accept new connections";
}

// ---- crash-safe durable service ---------------------------------------

TEST(CrashRestart, RestartedDaemonRepliesFromDiskSimulatingNothing)
{
    const std::string dir = tempCacheDir("restart");
    ServeOptions opts;
    opts.port = 0;
    opts.pool = 2;
    opts.cache_entries = 64;
    opts.drain_s = 10.0;
    opts.cache_dir = dir;

    const std::vector<std::string> workloads = {"go", "compress", "li"};
    std::vector<std::string> first_raws;
    {
        Server server(opts);
        std::string err;
        ASSERT_TRUE(server.start(&err)) << err;
        ServeClient c;
        ASSERT_TRUE(c.connect(server.port(), &err, 2.0)) << err;
        for (size_t i = 0; i < workloads.size(); ++i) {
            JsonValue reply;
            std::string raw;
            ASSERT_TRUE(c.request(
                runRequestLine(static_cast<i64>(i),
                               smallJob(workloads[i])),
                &reply, &err))
                << err;
            ASSERT_TRUE(reply.find("ok")->asBool()) << c.lastLine();
            ASSERT_TRUE(extractRawResult(c.lastLine(), &raw));
            first_raws.push_back(raw);
        }
        EXPECT_EQ(server.jobsSimulated(), workloads.size());
        // The daemon dies here.  Every result was spilled at compute
        // time with an atomic rename, so even a kill -9 at any point
        // (the CI smoke does the real one) loses at most the job that
        // was mid-flight — never an answered one.
    }

    Server revived(opts);
    std::string err;
    ASSERT_TRUE(revived.start(&err)) << err;
    ServeClient c;
    ASSERT_TRUE(c.connect(revived.port(), &err, 2.0)) << err;
    for (size_t i = 0; i < workloads.size(); ++i) {
        JsonValue reply;
        std::string raw;
        ASSERT_TRUE(c.request(
            runRequestLine(static_cast<i64>(i), smallJob(workloads[i])),
            &reply, &err))
            << err;
        ASSERT_TRUE(reply.find("ok")->asBool()) << c.lastLine();
        EXPECT_TRUE(reply.find("cached")->asBool())
            << "a replayed cell must be served, not re-simulated";
        ASSERT_TRUE(extractRawResult(c.lastLine(), &raw));
        EXPECT_EQ(raw, first_raws[i])
            << "disk replay must not alter a single byte";
    }
    EXPECT_EQ(revived.jobsSimulated(), 0u)
        << "the whole replayed grid must come from disk";

    JsonValue reply;
    ASSERT_TRUE(c.request(simpleRequestLine("stats", 99), &reply, &err))
        << err;
    const JsonValue *cache = reply.find("stats")->find("cache");
    ASSERT_NE(cache, nullptr);
    EXPECT_EQ(cache->find("disk_hits")->asNumber(),
              static_cast<double>(workloads.size()));
    EXPECT_EQ(cache->find("misses")->asNumber(), 0.0);
}

TEST(Backpressure, FullQueueRepliesOverloadedAndDaemonSurvives)
{
    ServeOptions opts;
    opts.port = 0;
    opts.pool = 1;
    opts.cache_entries = 64;
    opts.drain_s = 10.0;
    opts.queue_max = 1;
    Server server(opts);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;
    ServeClient c;
    ASSERT_TRUE(c.connect(server.port(), &err, 2.0)) << err;

    // 24 distinct cells fired in one burst at a single worker with a
    // one-deep queue: the worker cannot possibly drain 24 cold
    // simulations while the burst is being parsed, so some requests
    // must bounce with a structured "overloaded" reply.
    constexpr int kJobs = 24;
    for (int i = 0; i < kJobs; ++i) {
        JobSpec job = smallJob();
        job.cfg.max_retired = kBudget + static_cast<u64>(i);
        job.max_retired = job.cfg.max_retired;
        ASSERT_TRUE(
            c.sendLine(runRequestLine(i, job), &err))
            << err;
    }
    int ok = 0, overloaded = 0;
    for (int i = 0; i < kJobs; ++i) {
        JsonValue reply;
        ASSERT_TRUE(c.recvReply(&reply, &err)) << err;
        if (reply.find("ok")->asBool()) {
            ++ok;
            continue;
        }
        EXPECT_EQ(replyErrorKind(reply), errkind::kOverloaded)
            << c.lastLine();
        ++overloaded;
    }
    EXPECT_EQ(ok + overloaded, kJobs);
    EXPECT_GT(ok, 0) << "an empty queue must accept work";
    EXPECT_GT(overloaded, 0) << "a full queue must shed work";

    // Rejection is per-request, not per-daemon: the service still
    // answers, and the stats account for every rejection.
    JsonValue reply;
    ASSERT_TRUE(
        c.request(simpleRequestLine("stats", 1000), &reply, &err))
        << err;
    EXPECT_EQ(reply.find("stats")->find("rejected_overload")->asNumber(),
              static_cast<double>(overloaded));
    JobSpec again = smallJob();
    again.cfg.max_retired = kBudget;
    ASSERT_TRUE(
        c.request(runRequestLine(2000, again), &reply, &err))
        << err;
    EXPECT_TRUE(reply.find("ok")->asBool()) << c.lastLine();
}

TEST(DeadlineService, ExpiredJobsFailAloneWithDeadlineKind)
{
    ServeOptions opts;
    opts.port = 0;
    opts.pool = 1;
    opts.cache_entries = 64;
    opts.drain_s = 10.0;
    Server server(opts);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;
    ServeClient c;
    ASSERT_TRUE(c.connect(server.port(), &err, 2.0)) << err;

    // Eight cold cells occupy the single worker for many milliseconds;
    // the ninth job's 1 ms budget expires while it waits in queue (or,
    // at worst, a few thousand cycles into its run — either way the
    // reply kind is "deadline" and only that job fails).
    constexpr int kBlockers = 8;
    for (int i = 0; i < kBlockers; ++i) {
        JobSpec job = smallJob("compress");
        job.cfg.max_retired = kBudget + 100 + static_cast<u64>(i);
        job.max_retired = job.cfg.max_retired;
        ASSERT_TRUE(c.sendLine(runRequestLine(i, job), &err)) << err;
    }
    JobSpec doomed = smallJob("li");
    doomed.cfg.max_retired = 50000;
    doomed.max_retired = 50000;
    doomed.deadline_ms = 1;
    ASSERT_TRUE(c.sendLine(runRequestLine(100, doomed), &err)) << err;

    int blockers_ok = 0;
    bool doomed_failed = false;
    for (int i = 0; i < kBlockers + 1; ++i) {
        JsonValue reply;
        ASSERT_TRUE(c.recvReply(&reply, &err)) << err;
        const i64 id =
            static_cast<i64>(reply.find("id")->asNumber());
        if (id == 100) {
            EXPECT_FALSE(reply.find("ok")->asBool());
            EXPECT_EQ(replyErrorKind(reply), errkind::kDeadline)
                << c.lastLine();
            EXPECT_NE(reply.find("error")->asString().find(
                          "deadline expired"),
                      std::string::npos);
            doomed_failed = true;
        } else if (reply.find("ok")->asBool()) {
            ++blockers_ok;
        }
    }
    EXPECT_TRUE(doomed_failed);
    EXPECT_EQ(blockers_ok, kBlockers)
        << "a deadline kills one job, never its queue-mates";

    JsonValue reply;
    ASSERT_TRUE(
        c.request(simpleRequestLine("stats", 101), &reply, &err))
        << err;
    EXPECT_GE(reply.find("stats")->find("deadline_expired")->asNumber(),
              1.0);
}

TEST(DeadlineService, ProtocolCarriesDeadlineMs)
{
    JobSpec job = smallJob();
    job.deadline_ms = 2500;
    const std::string line = runRequestLine(1, job);
    Request req;
    std::string err;
    ASSERT_TRUE(parseRequest(line, &req, &err)) << err;
    EXPECT_EQ(req.job.deadline_ms, 2500u);

    // Not part of the job identity: same cell, different budget.
    JobSpec other = smallJob();
    other.deadline_ms = 9000;
    EXPECT_EQ(resultCacheKey(req.job.cfg, 1, req.job.sample),
              resultCacheKey(other.cfg, 1, other.sample));
}

// ---- client resilience -------------------------------------------------

TEST(ClientTimeout, SilentServerSurfacesDistinctTimeout)
{
    // A listener that accepts and then never speaks.
    const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(lfd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)),
              0);
    ASSERT_EQ(::listen(lfd, 4), 0);
    socklen_t len = sizeof(addr);
    ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr *>(&addr),
                            &len),
              0);
    const int port = ntohs(addr.sin_port);

    ServeClient c;
    std::string err;
    ASSERT_TRUE(c.connect(port, &err, 1.0)) << err;
    c.setTimeout(0.1);
    std::string line;
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_FALSE(c.recvLine(&line, &err));
    const double waited =
        std::chrono::duration<double>(std::chrono::steady_clock::now()
                                      - t0)
            .count();
    EXPECT_TRUE(c.timedOut()) << err;
    EXPECT_NE(err.find("timeout"), std::string::npos) << err;
    EXPECT_LT(waited, 2.0) << "the wait must be bounded";
    ::close(lfd);
}

TEST(ClientRetry, GivesUpAgainstDeadPortAfterBoundedAttempts)
{
    // Grab an ephemeral port and close it so nothing listens there.
    const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(lfd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)),
              0);
    socklen_t len = sizeof(addr);
    ::getsockname(lfd, reinterpret_cast<sockaddr *>(&addr), &len);
    const int dead_port = ntohs(addr.sin_port);
    ::close(lfd);

    ServeClient c;
    RetryPolicy pol;
    pol.attempts = 3;
    pol.base_s = 0.01;
    pol.max_s = 0.02;
    JsonValue reply;
    std::string err;
    EXPECT_FALSE(c.requestWithRetry(dead_port,
                                    simpleRequestLine("ping", 1), 1,
                                    pol, &reply, &err));
    EXPECT_NE(err.find("3 attempts"), std::string::npos) << err;
}

TEST_F(ServeEndToEnd, RetryAnswersFirstTimeAndAfterConnectionLoss)
{
    ServeClient c;
    RetryPolicy pol;
    pol.attempts = 5;
    pol.base_s = 0.01;
    pol.max_s = 0.05;
    pol.op_timeout_s = 5.0;
    JsonValue reply;
    std::string err;
    // Never connected: requestWithRetry owns the connection.
    ASSERT_TRUE(c.requestWithRetry(server->port(),
                                   runRequestLine(3, smallJob()), 3,
                                   pol, &reply, &err))
        << err;
    EXPECT_TRUE(reply.find("ok")->asBool());

    // Sever the connection behind the client's back; the next request
    // must transparently reconnect and still verify result_hash.
    c.close();
    ASSERT_TRUE(c.requestWithRetry(server->port(),
                                   runRequestLine(4, smallJob()), 4,
                                   pol, &reply, &err))
        << err;
    EXPECT_TRUE(reply.find("ok")->asBool());
    EXPECT_TRUE(reply.find("cached")->asBool());
}

// ---- protocol fuzz -----------------------------------------------------

TEST_F(ServeEndToEnd, SeededGarbageNeverKillsTheDaemon)
{
    ServeClient c = makeClient();
    std::string err;
    Rng rng(20260808);
    constexpr int kLines = 300;
    const std::string valid = runRequestLine(1, smallJob());
    for (int i = 0; i < kLines; ++i) {
        std::string junk;
        if (rng.chance(0.3)) {
            // Truncated prefix of a well-formed request: the torn-line
            // shape a crashed client or fault injector produces.
            junk = valid.substr(0, 1 + rng.below(valid.size() - 1));
        } else {
            const u64 n = 1 + rng.below(120);
            for (u64 j = 0; j < n; ++j) {
                char ch = static_cast<char>(rng.below(256));
                if (ch == '\n' || ch == '\r' || ch == '\0')
                    ch = '?';
                junk.push_back(ch);
            }
        }
        ASSERT_TRUE(c.sendLine(junk, &err)) << err;
    }
    // Every junk line gets exactly one structured rejection, in order.
    for (int i = 0; i < kLines; ++i) {
        JsonValue reply;
        ASSERT_TRUE(c.recvReply(&reply, &err)) << err << " line " << i;
        EXPECT_FALSE(reply.find("ok")->asBool());
        EXPECT_EQ(replyErrorKind(reply), errkind::kBadRequest)
            << c.lastLine();
    }

    // An oversized line (no newline within the 1 MiB cap) costs that
    // connection only.
    ServeClient big = makeClient();
    ASSERT_TRUE(big.sendLine(std::string(2u << 20, 'x'), &err)) << err;
    JsonValue reply;
    if (big.recvReply(&reply, &err)) {
        EXPECT_FALSE(reply.find("ok")->asBool());
        EXPECT_EQ(replyErrorKind(reply), errkind::kBadRequest);
    }

    // After all of it, a well-formed request on the original
    // connection still gets a correct answer.
    runJob(c, smallJob(), &reply, 9999);
    EXPECT_TRUE(reply.find("ok")->asBool());
}

} // namespace
} // namespace dmt
