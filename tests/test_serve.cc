/**
 * @file
 * The simulation service, bottom-up: canonical hashing (the cache-key
 * and identity-proof primitive), job-spec sample parsing, the wire
 * protocol's strict no-fatal() validation, the content-addressed
 * result cache with single-flight dedup, and finally a live daemon on
 * an ephemeral port proving the headline contract — cached, queued and
 * freshly computed answers are byte-identical to direct runWorkload()
 * calls.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "exp/report.hh"
#include "exp/runner.hh"
#include "exp/sampled.hh"
#include "serve/cache.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "uarch/config.hh"

namespace dmt
{
namespace
{

constexpr u64 kBudget = 2000; // instructions: keeps every run ~ms

SimConfig
smallDmt()
{
    SimConfig cfg = SimConfig::dmt(2, 2);
    cfg.max_retired = kBudget;
    return cfg;
}

JobSpec
smallJob(const std::string &workload = "go")
{
    JobSpec job;
    job.workload = workload;
    job.cfg = smallDmt();
    job.max_retired = kBudget;
    return job;
}

// ---- canonical hashing -------------------------------------------------

TEST(CanonicalHash, FnvPrimitives)
{
    EXPECT_EQ(fnv1aHash(""), kFnvBasis);
    EXPECT_NE(fnv1aHash("a"), fnv1aHash("b"));
    EXPECT_NE(fnv1aHash("ab"), fnv1aHash("ba")) << "order matters";
    // Chaining two pieces equals hashing the concatenation.
    EXPECT_EQ(fnv1aHash("cd", fnv1aHash("ab")), fnv1aHash("abcd"));
    EXPECT_EQ(hashHex(0).size(), 16u);
    EXPECT_EQ(hashHex(0xdeadbeefull), "00000000deadbeef");
}

TEST(CanonicalHash, RunsAreReproducible)
{
    const RunResult a =
        runWorkloadJob(smallDmt(), "go", kBudget, SampleParams{});
    const RunResult b =
        runWorkloadJob(smallDmt(), "go", kBudget, SampleParams{});
    EXPECT_EQ(a.jsonString(), b.jsonString());
    EXPECT_EQ(canonicalHash(a), canonicalHash(b));
}

TEST(CanonicalHash, HostTimingIsExcluded)
{
    RunResult a =
        runWorkloadJob(smallDmt(), "go", kBudget, SampleParams{});
    RunResult b = a;
    b.wall_s = a.wall_s + 123.0;
    b.minstr_per_s = a.minstr_per_s + 9.0;
    b.sampling.func_wall_s = 77.0;
    EXPECT_EQ(canonicalHash(a), canonicalHash(b))
        << "nondeterministic host timing must not change the digest";
    b.cycles += 1;
    EXPECT_NE(canonicalHash(a), canonicalHash(b));
}

TEST(CanonicalHash, ConfigIdentity)
{
    EXPECT_EQ(canonicalHash(smallDmt()), canonicalHash(smallDmt()));
    SimConfig other = smallDmt();
    other.max_threads = 4;
    EXPECT_NE(canonicalHash(smallDmt()), canonicalHash(other));
    other = smallDmt();
    other.max_retired = kBudget + 1;
    EXPECT_NE(canonicalHash(smallDmt()), canonicalHash(other))
        << "the budget is part of the machine identity";
}

// ---- sample-spec parsing ----------------------------------------------

TEST(SampleSpec, ParsesAndCanonicalizes)
{
    SampleParams p;
    std::string err;
    ASSERT_TRUE(SampleParams::parse("1000:100:200", &p, &err)) << err;
    EXPECT_EQ(p.skip, 1000u);
    EXPECT_EQ(p.warm, 100u);
    EXPECT_EQ(p.measure, 200u);
    EXPECT_EQ(p.max_intervals, 0u);
    EXPECT_TRUE(p.enabled());
    EXPECT_EQ(p.canonicalSpec(), "1000:100:200:0");

    ASSERT_TRUE(SampleParams::parse("1000:100:200:5", &p, &err));
    EXPECT_EQ(p.max_intervals, 5u);
    EXPECT_EQ(p.canonicalSpec(), "1000:100:200:5");

    ASSERT_TRUE(SampleParams::parse("", &p, &err)) << "empty = off";
    EXPECT_FALSE(p.enabled());
    EXPECT_EQ(p.canonicalSpec(), "off");
}

TEST(SampleSpec, RejectsGarbage)
{
    SampleParams p;
    std::string err;
    EXPECT_FALSE(SampleParams::parse("1000:100", &p, &err));
    EXPECT_FALSE(SampleParams::parse("1:2:3:4:5", &p, &err));
    EXPECT_FALSE(SampleParams::parse("a:b:c", &p, &err));
    EXPECT_FALSE(SampleParams::parse("1000:100:0", &p, &err))
        << "a zero measure window samples nothing";
}

// ---- protocol ----------------------------------------------------------

TEST(Protocol, RunRequestRoundTrips)
{
    JobSpec job = smallJob();
    job.priority = 5;
    const std::string line = runRequestLine(7, job);

    Request req;
    std::string err;
    ASSERT_TRUE(parseRequest(line, &req, &err)) << err;
    EXPECT_EQ(req.op, Request::Op::Run);
    ASSERT_EQ(req.id.type(), JsonValue::Type::Number);
    EXPECT_EQ(req.id.asNumber(), 7.0);
    EXPECT_EQ(req.job.workload, "go");
    EXPECT_EQ(req.job.max_retired, kBudget);
    EXPECT_EQ(req.job.priority, 5);
    EXPECT_FALSE(req.job.sample.enabled());
    EXPECT_EQ(canonicalHash(req.job.cfg), canonicalHash(job.cfg))
        << "replaying a recorded config must rebuild the same machine";
}

TEST(Protocol, SimpleOpsParse)
{
    Request req;
    std::string err;
    ASSERT_TRUE(parseRequest(simpleRequestLine("ping", 1), &req, &err));
    EXPECT_EQ(req.op, Request::Op::Ping);
    ASSERT_TRUE(parseRequest(simpleRequestLine("stats", 2), &req, &err));
    EXPECT_EQ(req.op, Request::Op::Stats);
    ASSERT_TRUE(
        parseRequest(simpleRequestLine("shutdown", 3), &req, &err));
    EXPECT_EQ(req.op, Request::Op::Shutdown);
}

TEST(Protocol, RejectsWithoutExiting)
{
    Request req;
    std::string err;
    const char *bad[] = {
        "not json at all",
        "[1,2,3]",
        "{\"id\":1}",
        "{\"op\":\"frobnicate\",\"id\":1}",
        "{\"op\":\"run\",\"id\":1}",
        "{\"op\":\"run\",\"job\":{\"workload\":\"nosuch\"}}",
        "{\"op\":\"run\",\"job\":{\"workload\":\"go\","
        "\"config\":{\"bogus\":1}}}",
        "{\"op\":\"run\",\"job\":{\"workload\":\"go\","
        "\"config\":{\"max_threads\":0}}}",
        "{\"op\":\"run\",\"job\":{\"workload\":\"go\","
        "\"config\":{\"fault_enabled\":true}}}",
        "{\"op\":\"run\",\"job\":{\"workload\":\"go\","
        "\"max_retired\":\"lots\"}}",
        "{\"op\":\"run\",\"job\":{\"workload\":\"go\","
        "\"sample\":\"1:2\"}}",
        "{\"op\":\"run\",\"job\":{\"workload\":\"go\","
        "\"sample\":\"1000:100:200\","
        "\"config\":{\"warmup_retired\":100}}}",
    };
    for (const char *line : bad) {
        err.clear();
        EXPECT_FALSE(parseRequest(line, &req, &err)) << line;
        EXPECT_FALSE(err.empty()) << line;
    }
}

TEST(Protocol, BudgetDefaultsMatchLocalRuns)
{
    setenv("DMT_BENCH_INSTR", "4321", 1);
    Request req;
    std::string err;
    ASSERT_TRUE(parseRequest(
        "{\"op\":\"run\",\"job\":{\"workload\":\"go\"}}", &req, &err))
        << err;
    EXPECT_EQ(req.job.max_retired, 4321u)
        << "detailed default is benchRunLength()";
    EXPECT_EQ(req.job.cfg.max_retired, 4321u)
        << "the resolved budget must be folded into the cache identity";

    ASSERT_TRUE(parseRequest("{\"op\":\"run\",\"job\":{\"workload\":"
                             "\"go\",\"sample\":\"1000:100:200\"}}",
                             &req, &err))
        << err;
    EXPECT_EQ(req.job.max_retired, 4321u)
        << "sampled default is DMT_BENCH_INSTR";
    unsetenv("DMT_BENCH_INSTR");

    ASSERT_TRUE(parseRequest("{\"op\":\"run\",\"job\":{\"workload\":"
                             "\"go\",\"sample\":\"1000:100:200\"}}",
                             &req, &err));
    EXPECT_EQ(req.job.max_retired, 0u)
        << "sampled with no knob = whole program";
}

TEST(Protocol, ExtractRawResult)
{
    const std::string doc = "{\"cycles\":123,\"ipc\":1.5}";
    const std::string reply =
        okRunReply(JsonValue{}, doc, 0x1234, 0x5678, true);
    std::string raw;
    ASSERT_TRUE(extractRawResult(reply, &raw));
    EXPECT_EQ(raw, doc) << "the slice must be byte-exact";
    EXPECT_FALSE(extractRawResult(errorReply(JsonValue{}, "x"), &raw));
}

TEST(Protocol, CacheKeySeparatesComponents)
{
    const SimConfig cfg = smallDmt();
    const u64 base = resultCacheKey(cfg, 1, SampleParams{});
    EXPECT_EQ(base, resultCacheKey(cfg, 1, SampleParams{}));
    EXPECT_NE(base, resultCacheKey(cfg, 2, SampleParams{}))
        << "program image is part of the key";
    SimConfig other = cfg;
    other.fetch_ports = 4;
    EXPECT_NE(base, resultCacheKey(other, 1, SampleParams{}));
    SampleParams sp;
    std::string err;
    ASSERT_TRUE(SampleParams::parse("1000:100:200", &sp, &err));
    EXPECT_NE(base, resultCacheKey(cfg, 1, sp));
}

// ---- result cache ------------------------------------------------------

ComputedResult
okResult(const std::string &json)
{
    ComputedResult r;
    r.ok = true;
    r.json = json;
    r.hash = fnv1aHash(json);
    return r;
}

TEST(ResultCache, MissThenHit)
{
    ResultCache cache(8);
    int calls = 0;
    auto out = cache.getOrCompute(1, [&] {
        ++calls;
        return okResult("one");
    });
    EXPECT_TRUE(out.ok);
    EXPECT_FALSE(out.cached);
    EXPECT_EQ(out.json, "one");

    out = cache.getOrCompute(1, [&] {
        ++calls;
        return okResult("never");
    });
    EXPECT_TRUE(out.ok);
    EXPECT_TRUE(out.cached);
    EXPECT_EQ(out.json, "one");
    EXPECT_EQ(calls, 1);

    const auto c = cache.counters();
    EXPECT_EQ(c.hits, 1u);
    EXPECT_EQ(c.misses, 1u);
    EXPECT_EQ(c.entries, 1u);
}

TEST(ResultCache, LruEvictionKeepsRecentlyUsed)
{
    ResultCache cache(2);
    auto fill = [&](u64 key, const char *json) {
        cache.getOrCompute(key, [&] { return okResult(json); });
    };
    fill(1, "one");
    fill(2, "two");
    // Touch 1 so 2 becomes the eviction victim.
    cache.getOrCompute(1, [&] { return okResult("never"); });
    fill(3, "three");
    EXPECT_EQ(cache.counters().evictions, 1u);

    int recomputed = 0;
    auto out = cache.getOrCompute(1, [&] {
        ++recomputed;
        return okResult("one'");
    });
    EXPECT_TRUE(out.cached) << "1 was promoted, must have survived";
    out = cache.getOrCompute(2, [&] {
        ++recomputed;
        return okResult("two'");
    });
    EXPECT_FALSE(out.cached) << "2 was the LRU entry, must be gone";
    EXPECT_EQ(recomputed, 1);
}

TEST(ResultCache, ErrorsAreNotCached)
{
    ResultCache cache(8);
    int calls = 0;
    auto out = cache.getOrCompute(9, [&]() -> ComputedResult {
        ++calls;
        ComputedResult r;
        r.error = "boom";
        return r;
    });
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(out.error, "boom");
    out = cache.getOrCompute(9, [&] {
        ++calls;
        return okResult("recovered");
    });
    EXPECT_TRUE(out.ok);
    EXPECT_FALSE(out.cached) << "a failure must not poison the key";
    EXPECT_EQ(calls, 2);
}

TEST(ResultCache, SingleFlightDeduplicates)
{
    ResultCache cache(8);
    std::atomic<int> calls{0};
    auto compute = [&] {
        calls.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        return okResult("shared");
    };
    ResultCache::Outcome a, b;
    std::thread t1([&] { a = cache.getOrCompute(5, compute); });
    // Give t1 a head start so t2 joins the in-flight computation.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    std::thread t2([&] { b = cache.getOrCompute(5, compute); });
    t1.join();
    t2.join();
    EXPECT_EQ(calls.load(), 1) << "one computation, two answers";
    EXPECT_TRUE(a.ok);
    EXPECT_TRUE(b.ok);
    EXPECT_EQ(a.json, "shared");
    EXPECT_EQ(b.json, "shared");
    EXPECT_TRUE(a.cached || b.cached);
    EXPECT_EQ(cache.counters().joins, 1u);
}

// ---- live daemon -------------------------------------------------------

class ServeEndToEnd : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ServeOptions opts;
        opts.port = 0; // ephemeral: tests never collide
        opts.pool = 2;
        opts.cache_entries = 64;
        opts.drain_s = 10.0;
        server = std::make_unique<Server>(opts);
        std::string err;
        ASSERT_TRUE(server->start(&err)) << err;
    }

    ServeClient
    makeClient()
    {
        ServeClient c;
        std::string err;
        EXPECT_TRUE(c.connect(server->port(), &err, 2.0)) << err;
        return c;
    }

    /** Submit @p job, expect success, return (raw result, reply). */
    std::string
    runJob(ServeClient &c, const JobSpec &job, JsonValue *reply,
           i64 id = 1)
    {
        std::string err, raw;
        EXPECT_TRUE(c.request(runRequestLine(id, job), reply, &err))
            << err;
        const JsonValue *ok = reply->find("ok");
        EXPECT_TRUE(ok && ok->asBool())
            << "job failed: " << c.lastLine();
        EXPECT_TRUE(extractRawResult(c.lastLine(), &raw));
        return raw;
    }

    std::unique_ptr<Server> server;
};

TEST_F(ServeEndToEnd, ColdCachedAndDirectAnswersAreByteIdentical)
{
    ServeClient c = makeClient();
    const JobSpec job = smallJob();

    JsonValue cold_reply;
    const std::string cold = runJob(c, job, &cold_reply);
    EXPECT_FALSE(cold_reply.find("cached")->asBool());

    JsonValue warm_reply;
    const std::string warm = runJob(c, job, &warm_reply, 2);
    EXPECT_TRUE(warm_reply.find("cached")->asBool());

    const RunResult direct = runWorkloadJob(job.cfg, job.workload,
                                            job.max_retired, job.sample);
    EXPECT_EQ(cold, direct.jsonString())
        << "daemon-computed bytes must equal a direct local run";
    EXPECT_EQ(warm, direct.jsonString())
        << "cache replay must not alter a single byte";
    EXPECT_EQ(cold_reply.find("result_hash")->asString(),
              hashHex(canonicalHash(direct)))
        << "the advertised digest must match the local digest";
    EXPECT_EQ(warm_reply.find("result_hash")->asString(),
              hashHex(canonicalHash(direct)));
    EXPECT_EQ(server->jobsSimulated(), 1u);
}

TEST_F(ServeEndToEnd, ConcurrentIdenticalJobsSimulateOnce)
{
    constexpr int kClients = 4;
    std::vector<ServeClient> clients(kClients);
    for (auto &c : clients) {
        std::string err;
        ASSERT_TRUE(c.connect(server->port(), &err, 2.0)) << err;
    }
    const JobSpec job = smallJob("compress");
    const std::string line = runRequestLine(1, job);
    for (auto &c : clients) {
        std::string err;
        ASSERT_TRUE(c.sendLine(line, &err)) << err;
    }
    std::vector<std::string> raws;
    for (auto &c : clients) {
        JsonValue reply;
        std::string err, raw;
        ASSERT_TRUE(c.recvReply(&reply, &err)) << err;
        ASSERT_TRUE(reply.find("ok")->asBool()) << c.lastLine();
        ASSERT_TRUE(extractRawResult(c.lastLine(), &raw));
        raws.push_back(raw);
    }
    for (int i = 1; i < kClients; ++i)
        EXPECT_EQ(raws[0], raws[i]) << "all N replies identical";
    EXPECT_EQ(server->jobsSimulated(), 1u)
        << "N duplicate submissions, exactly one simulation";
}

TEST_F(ServeEndToEnd, BadJobsAreContainedGoodJobsStillRun)
{
    ServeClient c = makeClient();
    std::string err;
    JsonValue reply;

    // Malformed request: error reply, connection stays up.
    ASSERT_TRUE(c.request("this is not json", &reply, &err)) << err;
    EXPECT_FALSE(reply.find("ok")->asBool());

    // Valid JSON, invalid job: rejection with a reason.
    ASSERT_TRUE(c.request("{\"op\":\"run\",\"id\":9,\"job\":"
                          "{\"workload\":\"nosuch\"}}",
                          &reply, &err))
        << err;
    EXPECT_FALSE(reply.find("ok")->asBool());
    EXPECT_NE(reply.find("error")->asString().find("nosuch"),
              std::string::npos);

    // A SimError inside a job (watchdog trip) becomes an error reply,
    // not a daemon death.
    JobSpec doomed = smallJob();
    doomed.cfg.watchdog_cycles = 1;
    ASSERT_TRUE(c.request(runRequestLine(10, doomed), &reply, &err))
        << err;
    EXPECT_FALSE(reply.find("ok")->asBool()) << c.lastLine();

    // The daemon survived all of the above and still serves.
    JsonValue good_reply;
    runJob(c, smallJob(), &good_reply, 11);
    EXPECT_TRUE(good_reply.find("ok")->asBool());
}

TEST_F(ServeEndToEnd, StatsReportQueueAndCaches)
{
    ServeClient c = makeClient();
    JsonValue reply;
    runJob(c, smallJob(), &reply);
    runJob(c, smallJob(), &reply, 2);

    std::string err;
    ASSERT_TRUE(
        c.request(simpleRequestLine("stats", 3), &reply, &err))
        << err;
    const JsonValue *stats = reply.find("stats");
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->find("jobs_simulated")->asNumber(), 1.0);
    EXPECT_EQ(stats->find("queue_depth")->asNumber(), 0.0);
    const JsonValue *cache = stats->find("cache");
    ASSERT_NE(cache, nullptr);
    EXPECT_EQ(cache->find("hits")->asNumber(), 1.0);
    EXPECT_EQ(cache->find("misses")->asNumber(), 1.0);
    ASSERT_NE(stats->find("ckpt_cache"), nullptr)
        << "checkpoint-cache counters ride along in stats";
}

TEST_F(ServeEndToEnd, ShutdownDrainsCleanly)
{
    ServeClient c = makeClient();
    JsonValue reply;
    runJob(c, smallJob(), &reply);

    std::string err;
    ASSERT_TRUE(
        c.request(simpleRequestLine("shutdown", 2), &reply, &err))
        << err;
    EXPECT_TRUE(reply.find("ok")->asBool());
    EXPECT_TRUE(server->draining());
    server->join();

    ServeClient late;
    EXPECT_FALSE(late.connect(server->port(), &err, 0.0))
        << "a drained daemon must not accept new connections";
}

} // namespace
} // namespace dmt
