/**
 * @file
 * Shared structured-random program generator for the fuzz-style test
 * suites (differential fuzzing in test_fuzz.cc, fault-injection storms
 * in test_fault.cc).  Programs have nested calls, bounded loops,
 * hammock branches and byte/half/word memory traffic on a shared
 * scratch buffer.
 *
 * The generator guarantees termination: function i may only call
 * functions with larger indices, and every loop has a fixed trip count
 * with a protected counter register.
 */

#ifndef DMT_TESTS_FUZZ_CORPUS_HH
#define DMT_TESTS_FUZZ_CORPUS_HH

#include <vector>

#include "casm/builder.hh"
#include "common/rng.hh"
#include "sim/functional.hh"
#include "workloads/generator.hh"

namespace dmt
{

class ProgramFuzzer
{
  public:
    explicit ProgramFuzzer(u64 seed) : rng(seed) {}

    Program
    generate()
    {
        using namespace reg;
        nfuncs = static_cast<int>(rng.range(2, 4));
        for (int i = 0; i < nfuncs; ++i)
            funcs.push_back(b.newLabel());
        scratch = b.newLabel("scratch");
        b.bindData(scratch);
        b.dataSpace(256);

        // main: seed the data registers, run a calling loop, dump state.
        for (LogReg r = t0; r <= t7; ++r)
            b.li(r, rng.next32());
        b.la(s7, scratch); // global scratch base, never clobbered
        const int main_iters = static_cast<int>(rng.range(2, 5));
        b.li(s6, static_cast<u32>(main_iters));
        const auto main_loop = b.newLabel();
        b.bind(main_loop);
        b.move(a0, t0);
        b.jal(funcs[0]);
        b.xor_(t0, t0, v0);
        b.addi(s6, s6, -1);
        b.bgtz(s6, main_loop);
        for (LogReg r = t0; r <= t7; ++r)
            b.out(r);
        b.halt();

        for (int i = 0; i < nfuncs; ++i)
            emitFunction(i);
        return b.finish();
    }

  private:
    LogReg
    dataReg()
    {
        return static_cast<LogReg>(reg::t0 + rng.below(8));
    }

    /** One straight-line-ish operation (no loops). */
    void
    emitOp(int depth, bool allow_call, int func_idx)
    {
        using namespace reg;
        const int kind = static_cast<int>(rng.below(10));
        const LogReg a = dataReg();
        const LogReg c = dataReg();
        switch (kind) {
          case 0:
            b.add(c, a, dataReg());
            break;
          case 1:
            b.sub(c, a, dataReg());
            break;
          case 2:
            b.xor_(c, a, dataReg());
            break;
          case 3:
            b.mul(c, a, dataReg());
            break;
          case 4:
            b.addi(c, a, static_cast<i32>(rng.range(-100, 100)));
            break;
          case 5:
            b.srl(c, a, static_cast<int>(rng.below(8)));
            break;
          case 6: { // store to scratch
              b.andi(t8, a, 0x3C);
              b.add(t8, t8, s7);
              const int sz = static_cast<int>(rng.below(3));
              if (sz == 0)
                  b.sw(c, 0, t8);
              else if (sz == 1)
                  b.sh(c, static_cast<i32>(rng.below(2)) * 2, t8);
              else
                  b.sb(c, static_cast<i32>(rng.below(4)), t8);
              break;
          }
          case 7: { // load from scratch
              b.andi(t8, a, 0x3C);
              b.add(t8, t8, s7);
              const int sz = static_cast<int>(rng.below(5));
              if (sz == 0)
                  b.lw(c, 0, t8);
              else if (sz == 1)
                  b.lh(c, 0, t8);
              else if (sz == 2)
                  b.lhu(c, 2, t8);
              else if (sz == 3)
                  b.lb(c, static_cast<i32>(rng.below(4)), t8);
              else
                  b.lbu(c, static_cast<i32>(rng.below(4)), t8);
              break;
          }
          case 8: { // hammock branch
              const auto skip = b.newLabel();
              const int cond = static_cast<int>(rng.below(3));
              if (cond == 0)
                  b.beq(a, dataReg(), skip);
              else if (cond == 1)
                  b.blt(a, dataReg(), skip);
              else
                  b.bnez(a, skip);
              const int inner = static_cast<int>(rng.range(1, 2));
              for (int i = 0; i < inner; ++i)
                  emitOp(depth + 1, false, func_idx);
              b.bind(skip);
              break;
          }
          case 9:
            if (allow_call && func_idx + 1 < nfuncs) {
                b.move(a0, a);
                b.jal(funcs[static_cast<size_t>(func_idx) + 1]);
                b.move(c, v0);
            } else {
                b.nor_(c, a, dataReg());
            }
            break;
        }
    }

    void
    emitLoop(int func_idx)
    {
        using namespace reg;
        const auto head = b.newLabel();
        b.li(t9, static_cast<u32>(rng.range(1, 6)));
        b.bind(head);
        const int ops = static_cast<int>(rng.range(1, 4));
        for (int i = 0; i < ops; ++i) {
            const bool call = rng.chance(0.3);
            if (call && func_idx + 1 < nfuncs) {
                // The callee clobbers t9: protect the loop counter.
                b.push_(t9);
                emitOp(0, true, func_idx);
                b.pop_(t9);
            } else {
                emitOp(0, false, func_idx);
            }
        }
        b.addi(t9, t9, -1);
        b.bgtz(t9, head);
    }

    void
    emitFunction(int idx)
    {
        using namespace reg;
        b.bind(funcs[static_cast<size_t>(idx)]);
        b.addi(sp, sp, -16);
        b.sw(ra, 12, sp);
        b.sw(s0, 8, sp);
        b.sw(s1, 4, sp);
        b.move(s0, a0);

        const int items = static_cast<int>(rng.range(2, 6));
        for (int i = 0; i < items; ++i) {
            if (rng.chance(0.35)) {
                emitLoop(idx);
            } else {
                emitOp(0, true, idx);
            }
        }
        if (rng.chance(0.5))
            b.out(dataReg());

        // v0 = mix of the argument and a data register.
        b.xor_(v0, s0, dataReg());
        b.lw(s1, 4, sp);
        b.lw(s0, 8, sp);
        b.lw(ra, 12, sp);
        b.addi(sp, sp, 16);
        b.ret();
    }

    Rng rng;
    AsmBuilder b;
    int nfuncs = 0;
    std::vector<AsmBuilder::Label> funcs;
    AsmBuilder::Label scratch = 0;
};

/**
 * Mixed corpus draw for fuzz and fault storms: a seeded, deterministic
 * choice between a structured-random ProgramFuzzer program and a
 * generated workload family with seeded knobs (workloads/generator.hh).
 * Storms thereby also exercise the generator's structural shapes —
 * recursion trees, aliasing streams, software queues, pointer chases,
 * dispatch loops — which the random corpus cannot produce.
 */
inline Program
fuzzCorpusProgram(u64 seed)
{
    Rng pick(seed * 0x9e3779b97f4a7c15ull + 0xC0FFEEull);
    if (pick.below(2) == 0)
        return ProgramFuzzer(seed).generate();
    const auto &fams = genFamilies();
    GenParams p;
    p.family = fams[pick.below(fams.size())].name;
    p.seed = seed;
    p.depth = 2 + static_cast<int>(pick.below(4));
    p.trips = 3 + static_cast<int>(pick.below(12));
    p.entropy = static_cast<int>(pick.below(101));
    p.alias = static_cast<int>(pick.below(101));
    p.units = 6 + static_cast<int>(pick.below(30));
    return buildGenWorkload(p);
}

/** Reference output stream from the functional simulator. */
inline std::vector<u32>
fuzzGolden(const Program &prog)
{
    ArchState st;
    MainMemory mem;
    st.reset(prog);
    mem.loadProgram(prog);
    runFunctional(st, mem, prog, 5'000'000);
    return st.output;
}

} // namespace dmt

#endif // DMT_TESTS_FUZZ_CORPUS_HH
