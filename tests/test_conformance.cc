/**
 * @file
 * Differential conformance over the seeded workload generator: every
 * (family, seed) scenario emits a fresh program, runs it through the
 * functional core, the baseline superscalar, the dmt6 machine and a
 * fault-storm dmt6, and demands instruction-exact agreement of the
 * final architectural state (retired count, all registers, OUT
 * stream, memory pages) plus golden-clean recovery.  On top of the
 * state checks: canonical RunResult hashes must be stable across
 * reruns and across spec spellings, generated programs must survive
 * the ISA encode/decode round trip, and a gen: spec submitted to the
 * serve daemon must return bytes identical to a direct local run.
 *
 * Scenario count: all families x DMT_CONF_SEEDS seeds (default 15,
 * i.e. 105 scenarios; CI smoke uses 2).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/env.hh"
#include "common/rng.hh"
#include "exp/conformance.hh"
#include "exp/report.hh"
#include "exp/runner.hh"
#include "exp/sampled.hh"
#include "isa/encoding.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "workloads/generator.hh"
#include "workloads/workloads.hh"

namespace dmt
{
namespace
{

/** Knobs that would perturb runs must not leak in from the caller. */
const struct EnvSanitizer
{
    EnvSanitizer()
    {
        for (const char *v :
             {"DMT_FAULT", "DMT_FAULT_RATE", "DMT_FAULT_SEED",
              "DMT_TRACE", "DMT_TRACE_FILE", "DMT_TRACE_COUNTERS_FILE",
              "DMT_TRACE_SAMPLE", "DMT_TRACE_RING", "DMT_WATCHDOG",
              "DMT_AUDIT", "DMT_BENCH_INSTR", "DMT_SAMPLE",
              "DMT_CKPT_DIR"})
            unsetenv(v);
    }
} env_sanitizer;

/** Seeds per family (strict parse: garbage in the env is fatal). */
int
seedsPerFamily()
{
    static const int n = [] {
        const u64 v = parseEnvU64("DMT_CONF_SEEDS", 0);
        return v > 0 ? static_cast<int>(v) : 15;
    }();
    return n;
}

/**
 * Scenario knobs, derived deterministically from (family, seed) so the
 * sweep covers the knob space instead of pinning defaults.  Bounded so
 * each program retires a few hundred to a few tens of thousands of
 * instructions — long enough to spawn threads, short enough that a
 * hundred scenarios stay fast.
 */
GenParams
scenarioParams(int family_idx, u64 seed)
{
    const GenFamilyInfo &fam =
        genFamilies()[static_cast<size_t>(family_idx)];
    Rng r(seed * 0x9e3779b97f4a7c15ull
          + static_cast<u64>(family_idx) * 0x100000001b3ull);
    GenParams p;
    p.family = fam.name;
    p.seed = seed;
    p.depth = 2 + static_cast<int>(r.below(4));    // 2..5
    p.trips = 4 + static_cast<int>(r.below(24));   // 4..27
    p.entropy = static_cast<int>(r.below(101));
    p.alias = static_cast<int>(r.below(101));
    p.units = 8 + static_cast<int>(r.below(41));   // 8..48
    return p;
}

// ---- the scenario sweep ------------------------------------------------

class GenConformance : public ::testing::TestWithParam<int>
{
};

TEST_P(GenConformance, FunctionalAndDetailedAgreeExactly)
{
    const int family_idx = GetParam() / seedsPerFamily();
    const u64 seed =
        static_cast<u64>(GetParam() % seedsPerFamily()) + 1;
    const GenParams p = scenarioParams(family_idx, seed);
    const std::string spec = p.canonicalSpec();

    ConformanceOptions opts;
    opts.fault_rate = 0.03;
    opts.fault_seed = 0xF00D + seed;
    const ConformanceReport rep = checkConformance(spec, opts);
    EXPECT_TRUE(rep.ok) << rep.detail;
    EXPECT_GT(rep.functional_steps, 0u) << spec;
}

INSTANTIATE_TEST_SUITE_P(
    Families, GenConformance,
    ::testing::Range(0, static_cast<int>(genFamilies().size())
                            * seedsPerFamily()),
    [](const ::testing::TestParamInfo<int> &param_info) {
        const int fam = param_info.param / seedsPerFamily();
        const int seed = param_info.param % seedsPerFamily() + 1;
        return std::string(
                   genFamilies()[static_cast<size_t>(fam)].name)
            + "_s" + std::to_string(seed);
    });

// ---- determinism and identity ------------------------------------------

class GenFamilyCase : public ::testing::TestWithParam<int>
{
  protected:
    GenParams
    params() const
    {
        GenParams p;
        p.family = genFamilies()[static_cast<size_t>(GetParam())].name;
        p.seed = 42;
        return p;
    }
};

TEST_P(GenFamilyCase, ProgramEmissionIsDeterministic)
{
    const GenParams p = params();
    const Program a = buildGenWorkload(p);
    const Program b = buildGenWorkload(p.canonicalSpec());
    ASSERT_EQ(a.text.size(), b.text.size());
    for (size_t i = 0; i < a.text.size(); ++i)
        ASSERT_EQ(a.text[i], b.text[i]) << "instruction " << i;
    EXPECT_EQ(a.data, b.data);
    EXPECT_EQ(a.entry, b.entry);
}

TEST_P(GenFamilyCase, ProgramsSurviveEncodeDecodeRoundTrip)
{
    const Program prog = buildGenWorkload(params());
    for (const Instruction &inst : prog.text) {
        u32 word = 0;
        std::string err;
        ASSERT_TRUE(encodeInst(inst, &word, &err)) << err;
        EXPECT_EQ(decodeInst(word), inst);
    }
}

TEST_P(GenFamilyCase, CanonicalHashesAreStableAcrossRerunsAndSpellings)
{
    const GenParams p = params();
    const SimConfig cfg = SimConfig::dmt(4, 2);
    const RunResult a =
        runWorkloadJob(cfg, p.canonicalSpec(), 20000, SampleParams{});
    const RunResult b =
        runWorkloadJob(cfg, p.canonicalSpec(), 20000, SampleParams{});
    EXPECT_EQ(a.jsonString(), b.jsonString());
    EXPECT_EQ(canonicalHash(a), canonicalHash(b));

    // A minimal spelling (defaulted knobs) is the same workload: the
    // runner canonicalizes, so the bytes — including the embedded
    // workload name — must be identical.
    const std::string minimal = "gen:" + p.family + ":42";
    const RunResult c =
        runWorkloadJob(cfg, minimal, 20000, SampleParams{});
    EXPECT_EQ(c.workload, p.canonicalSpec());
    EXPECT_EQ(a.jsonString(), c.jsonString());
}

INSTANTIATE_TEST_SUITE_P(
    Families, GenFamilyCase,
    ::testing::Range(0, static_cast<int>(genFamilies().size())),
    [](const ::testing::TestParamInfo<int> &param_info) {
        return std::string(
            genFamilies()[static_cast<size_t>(param_info.param)].name);
    });

// ---- suite workloads conform too ---------------------------------------

TEST(SuiteConformance, MicrokernelScaleSuiteMembersConform)
{
    // The full suite kernels run millions of instructions; the
    // conformance contract is cheap to prove on the go kernel, whose
    // full run fits the test budget comfortably.
    ConformanceOptions opts;
    opts.max_steps = 20'000'000;
    const ConformanceReport rep = checkConformance("go", opts);
    EXPECT_TRUE(rep.ok) << rep.detail;
}

// ---- serve daemon byte-identity ----------------------------------------

class GenServe : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ServeOptions opts;
        opts.port = 0; // ephemeral: tests never collide
        opts.pool = 2;
        opts.cache_entries = 64;
        opts.drain_s = 10.0;
        server = std::make_unique<Server>(opts);
        std::string err;
        ASSERT_TRUE(server->start(&err)) << err;
    }

    ServeClient
    makeClient()
    {
        ServeClient c;
        std::string err;
        EXPECT_TRUE(c.connect(server->port(), &err, 2.0)) << err;
        return c;
    }

    std::string
    runJob(ServeClient &c, const JobSpec &job, JsonValue *reply,
           i64 id = 1)
    {
        std::string err, raw;
        EXPECT_TRUE(c.request(runRequestLine(id, job), reply, &err))
            << err;
        const JsonValue *ok = reply->find("ok");
        EXPECT_TRUE(ok && ok->asBool())
            << "job failed: " << c.lastLine();
        EXPECT_TRUE(extractRawResult(c.lastLine(), &raw));
        return raw;
    }

    std::unique_ptr<Server> server;
};

TEST_F(GenServe, GenSpecThroughDaemonMatchesDirectRunByteForByte)
{
    constexpr u64 kBudget = 4000;
    JobSpec job;
    job.workload = "gen:loopnest:7:trips=20"; // non-canonical spelling
    job.cfg = SimConfig::dmt(2, 2);
    job.cfg.max_retired = kBudget;
    job.max_retired = kBudget;

    ServeClient c = makeClient();
    JsonValue reply;
    const std::string served = runJob(c, job, &reply);
    EXPECT_FALSE(reply.find("cached")->asBool());

    const RunResult direct = runWorkloadJob(job.cfg, job.workload,
                                            job.max_retired, job.sample);
    EXPECT_EQ(served, direct.jsonString())
        << "daemon-computed bytes must equal a direct local run";

    // The canonical spelling is the same workload — it must hit the
    // cache and return the very same bytes.
    JobSpec canon = job;
    canon.workload = canonicalWorkloadName(job.workload);
    EXPECT_NE(canon.workload, job.workload);
    JsonValue warm_reply;
    const std::string warm = runJob(c, canon, &warm_reply, 2);
    EXPECT_TRUE(warm_reply.find("cached")->asBool())
        << "two spellings of one gen workload must share one cache "
           "cell";
    EXPECT_EQ(served, warm);
}

TEST_F(GenServe, MalformedGenSpecsAreRejectedDaemonSurvives)
{
    ServeClient c = makeClient();
    std::string err;
    JsonValue reply;

    for (const char *bad :
         {"gen:nosuchfamily:1", "gen:loopnest:1:trips=0",
          "gen:loopnest:1:trips=999999999", "gen:loopnest:xyz",
          "gen:loopnest:1:depth=3junk", "gen:loopnest:1:trips",
          "gen:loopnest", "gen:loopnest:1:trips=4:trips=5",
          "gen::1", "gen:loopnest:1:"}) {
        JobSpec job;
        job.workload = bad;
        job.cfg = SimConfig::dmt(2, 2);
        job.cfg.max_retired = 2000;
        job.max_retired = 2000;
        ASSERT_TRUE(c.request(runRequestLine(1, job), &reply, &err))
            << err;
        const JsonValue *ok = reply.find("ok");
        ASSERT_TRUE(ok && !ok->asBool())
            << bad << " must be rejected, got: " << c.lastLine();
    }

    // The daemon survived every rejection and still serves good jobs.
    JobSpec good;
    good.workload = "gen:loopnest:1";
    good.cfg = SimConfig::dmt(2, 2);
    good.cfg.max_retired = 2000;
    good.max_retired = 2000;
    JsonValue good_reply;
    runJob(c, good, &good_reply, 99);
    EXPECT_TRUE(good_reply.find("ok")->asBool());
}

} // namespace
} // namespace dmt
