/**
 * @file
 * Differential fuzzing: structured random programs (see
 * fuzz_corpus.hh) are executed on the functional simulator, the
 * baseline superscalar and several DMT machines.  All must retire the
 * identical dynamic instruction stream (golden checker) and emit the
 * identical output.
 */

#include <gtest/gtest.h>

#include "dmt/engine.hh"
#include "fuzz_corpus.hh"

namespace dmt
{
namespace
{

class FuzzDifferential : public ::testing::TestWithParam<int>
{
};

TEST_P(FuzzDifferential, AllMachinesAgree)
{
    ProgramFuzzer fuzzer(static_cast<u64>(GetParam()) * 7919 + 17);
    const Program prog = fuzzer.generate();
    const std::vector<u32> want = fuzzGolden(prog);

    std::vector<SimConfig> configs;
    configs.push_back(SimConfig::baseline());
    configs.push_back(SimConfig::dmt(2, 1));
    configs.push_back(SimConfig::dmt(4, 2));
    {
        SimConfig c = SimConfig::dmt(6, 2);
        c.tb_size = 64; // small trace buffers stress thread stalls
        c.tb_latency = 8;
        configs.push_back(c);
    }
    {
        SimConfig c = SimConfig::dmt(4, 2);
        c.early_divergence_repair = false; // paper-mode flushes
        c.unlimited_fus = false;
        configs.push_back(c);
    }

    for (const SimConfig &cfg : configs) {
        DmtEngine e(cfg, prog);
        e.run();
        ASSERT_TRUE(e.programCompleted())
            << "seed " << GetParam() << " cfg " << cfg.summary();
        ASSERT_TRUE(e.goldenOk())
            << "seed " << GetParam() << " cfg " << cfg.summary() << ": "
            << e.goldenError();
        EXPECT_EQ(e.outputStream(), want)
            << "seed " << GetParam() << " cfg " << cfg.summary();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferential,
                         ::testing::Range(0, 30));

/** Same differential contract over the mixed corpus: seeded draws
 *  alternate between random programs and generated workload families,
 *  so the machines also face the generator's structural shapes. */
class MixedCorpusDifferential : public ::testing::TestWithParam<int>
{
};

TEST_P(MixedCorpusDifferential, AllMachinesAgree)
{
    const Program prog =
        fuzzCorpusProgram(static_cast<u64>(GetParam()) * 6271 + 5);
    const std::vector<u32> want = fuzzGolden(prog);

    const std::vector<SimConfig> configs = {
        SimConfig::baseline(),
        SimConfig::dmt(4, 2),
        SimConfig::dmt(6, 2),
    };
    for (const SimConfig &cfg : configs) {
        DmtEngine e(cfg, prog);
        e.run();
        ASSERT_TRUE(e.programCompleted())
            << "seed " << GetParam() << " cfg " << cfg.summary();
        ASSERT_TRUE(e.goldenOk())
            << "seed " << GetParam() << " cfg " << cfg.summary() << ": "
            << e.goldenError();
        EXPECT_EQ(e.outputStream(), want)
            << "seed " << GetParam() << " cfg " << cfg.summary();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixedCorpusDifferential,
                         ::testing::Range(0, 20));

} // namespace
} // namespace dmt
