/**
 * @file
 * AsmBuilder tests: label fixups (forward and backward), data layout,
 * pseudo-op expansions, and equivalence with the textual assembler.
 */

#include <gtest/gtest.h>

#include "casm/assembler.hh"
#include "casm/builder.hh"
#include "sim/functional.hh"

namespace dmt
{
namespace
{

using namespace reg;

std::vector<u32>
runProgram(const Program &prog)
{
    ArchState st;
    MainMemory mem;
    st.reset(prog);
    mem.loadProgram(prog);
    runFunctional(st, mem, prog);
    return st.output;
}

TEST(Builder, ForwardAndBackwardBranches)
{
    AsmBuilder b;
    const auto fwd = b.newLabel();
    const auto back = b.newLabel();
    b.li(t0, 0);
    b.bind(back);
    b.addi(t0, t0, 1);
    b.slti(t1, t0, 3);
    b.bnez(t1, back);
    b.beqz(zero, fwd); // always taken forward
    b.li(t0, 999);     // skipped
    b.bind(fwd);
    b.out(t0);
    b.halt();
    const auto out = runProgram(b.finish());
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 3u);
}

TEST(Builder, JumpAndCallFixups)
{
    AsmBuilder b;
    const auto fn = b.newLabel("fn");
    const auto done = b.newLabel();
    b.li(a0, 4);
    b.jal(fn);
    b.out(v0);
    b.j(done);
    b.nop();
    b.bind(fn);
    b.mul(v0, a0, a0);
    b.ret();
    b.bind(done);
    b.halt();
    const auto out = runProgram(b.finish());
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 16u);
}

TEST(Builder, DataSection)
{
    AsmBuilder b;
    const auto tab = b.newLabel("tab");
    b.bindData(tab);
    b.dataWords({11, 22, 33});
    const Addr spc = b.dataSpace(8);
    EXPECT_EQ(spc, Program::kDataBase + 12);
    b.dataAlign(16);
    const auto bytes = b.newLabel();
    b.bindData(bytes);
    b.dataBytes({0xAA, 0xBB});

    b.la(t0, tab);
    b.lw(t1, 8, t0);
    b.out(t1);
    b.la(t2, bytes);
    b.lbu(t3, 1, t2);
    b.out(t3);
    b.halt();
    const auto out = runProgram(b.finish());
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 33u);
    EXPECT_EQ(out[1], 0xBBu);
}

TEST(Builder, LiSelectsEncodings)
{
    AsmBuilder b;
    b.li(t0, 5);          // addi
    b.li(t1, 0xFFFF);     // ori
    b.li(t2, 0xDEADBEEF); // lui+ori
    b.out(t0);
    b.out(t1);
    b.out(t2);
    b.halt();
    const Program p = b.finish();
    EXPECT_EQ(p.text[0].op, Opcode::ADDI);
    EXPECT_EQ(p.text[1].op, Opcode::ORI);
    EXPECT_EQ(p.text[2].op, Opcode::LUI);
    EXPECT_EQ(p.text[3].op, Opcode::ORI);
    const auto out = runProgram(p);
    EXPECT_EQ(out[0], 5u);
    EXPECT_EQ(out[1], 0xFFFFu);
    EXPECT_EQ(out[2], 0xDEADBEEFu);
}

TEST(Builder, EnterLeaveFrame)
{
    AsmBuilder b;
    const auto fn = b.newLabel();
    b.li(a0, 10);
    b.jal(fn);
    b.out(v0);
    b.halt();
    b.bind(fn);
    b.enter(16);
    b.sw(a0, 0, sp);
    b.lw(t0, 0, sp);
    b.addi(v0, t0, 1);
    b.leave(16);
    const auto out = runProgram(b.finish());
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 11u);
}

TEST(Builder, SymbolsExported)
{
    AsmBuilder b;
    const auto main_l = b.here("main");
    (void)main_l;
    b.halt();
    const auto data_l = b.newLabel("blob");
    b.bindData(data_l);
    b.dataWords({1});
    const Program p = b.finish();
    EXPECT_TRUE(p.hasSymbol("main"));
    EXPECT_TRUE(p.hasSymbol("blob"));
    EXPECT_EQ(p.symbol("main"), Program::kTextBase);
    EXPECT_EQ(p.symbol("blob"), Program::kDataBase);
}

TEST(Builder, AgreesWithTextAssembler)
{
    // The same tiny program written both ways must behave identically.
    AsmBuilder b;
    const auto loop = b.newLabel();
    b.li(s0, 0);
    b.li(s1, 10);
    b.li(s2, 0);
    b.bind(loop);
    b.mul(t0, s0, s0);
    b.add(s2, s2, t0);
    b.addi(s0, s0, 1);
    b.blt(s0, s1, loop);
    b.out(s2);
    b.halt();

    const Program text_prog = assembleOrDie(R"(
            li  $s0, 0
            li  $s1, 10
            li  $s2, 0
    loop:   mul $t0, $s0, $s0
            add $s2, $s2, $t0
            addi $s0, $s0, 1
            blt $s0, $s1, loop
            out $s2
            halt
    )");

    EXPECT_EQ(runProgram(b.finish()), runProgram(text_prog));
}

TEST(Program, FetchOutOfRangeIsHalt)
{
    AsmBuilder b;
    b.halt();
    const Program p = b.finish();
    EXPECT_TRUE(p.fetch(0).isHalt());
    EXPECT_TRUE(p.fetch(p.textEnd()).isHalt());
    EXPECT_TRUE(p.fetch(Program::kTextBase + 2).isHalt()) << "misaligned";
    EXPECT_FALSE(p.validTextAddr(Program::kTextBase + 4));
    EXPECT_TRUE(p.validTextAddr(Program::kTextBase));
}

} // namespace
} // namespace dmt
