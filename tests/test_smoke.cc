/**
 * @file
 * End-to-end smoke tests: every microkernel runs to completion on the
 * functional simulator, the baseline superscalar, and an aggressive
 * DMT machine; all three produce identical output streams (the golden
 * checker additionally validates every retired instruction).
 */

#include <gtest/gtest.h>

#include "dmt/engine.hh"
#include "sim/functional.hh"
#include "workloads/workloads.hh"

namespace dmt
{
namespace
{

std::vector<u32>
goldenOutput(const Program &prog)
{
    ArchState st;
    MainMemory mem;
    st.reset(prog);
    mem.loadProgram(prog);
    runFunctional(st, mem, prog);
    return st.output;
}

void
checkProgram(const Program &prog, const SimConfig &cfg)
{
    DmtEngine engine(cfg, prog);
    engine.run();
    ASSERT_TRUE(engine.programCompleted())
        << "program did not reach HALT";
    ASSERT_TRUE(engine.goldenOk()) << engine.goldenError();
    EXPECT_EQ(engine.outputStream(), goldenOutput(prog));
}

SimConfig
dmtConfig()
{
    SimConfig c = SimConfig::dmt(4, 2);
    return c;
}

TEST(Smoke, FibBaseline)
{
    checkProgram(mkFibRecursive(12), SimConfig::baseline());
}

TEST(Smoke, FibDmt)
{
    checkProgram(mkFibRecursive(12), dmtConfig());
}

TEST(Smoke, SumLoopDmt)
{
    checkProgram(mkSumLoop(500), dmtConfig());
}

TEST(Smoke, CallChainDmt)
{
    checkProgram(mkCallChain(300), dmtConfig());
}

TEST(Smoke, BranchyDmt)
{
    checkProgram(mkBranchy(400), dmtConfig());
}

TEST(Smoke, AliasStressDmt)
{
    checkProgram(mkAliasStress(200), dmtConfig());
}

TEST(Smoke, MatmulDmt)
{
    checkProgram(mkMatmul(8), dmtConfig());
}

TEST(Smoke, SortDmt)
{
    checkProgram(mkSort(40), dmtConfig());
}

TEST(Smoke, LinkedListDmt)
{
    checkProgram(mkLinkedList(60), dmtConfig());
}

TEST(Smoke, DeepRecursionDmt)
{
    checkProgram(mkDeepRecursion(40), dmtConfig());
}

TEST(Smoke, LoopBreakDmt)
{
    checkProgram(mkLoopBreak(30, 20), dmtConfig());
}

} // namespace
} // namespace dmt
