/**
 * @file
 * Phase-aware sampling: BBV collection must be a pure function of the
 * architectural instruction stream (bit-identical across both
 * fast-forward engines and any run() chunking), seeded k-means must be
 * reproducible and well-defined on degenerate inputs, the phase-sampled
 * pipeline must be deterministic across cache states and engines and
 * must agree with full-detail CPI, and a checked-in signature
 * (tests/golden/phase_go.json, regenerated with DMT_UPDATE_GOLDEN=1)
 * pins the whole thing.  A live daemon round-trip proves phase-spec
 * jobs inherit the serve layer's byte-identity contract.
 */

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "common/log.hh"
#include "exp/phase.hh"
#include "exp/runner.hh"
#include "exp/sampled.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "sim/bbv.hh"
#include "sim/translated_core.hh"
#include "uarch/config.hh"
#include "workloads/workloads.hh"

namespace dmt
{
namespace
{

/** Knobs that would perturb the deterministic runs below must not
 *  leak in from the caller's environment. */
const struct EnvSanitizer
{
    EnvSanitizer()
    {
        for (const char *v :
             {"DMT_FAULT", "DMT_FAULT_RATE", "DMT_FAULT_SEED",
              "DMT_TRACE", "DMT_TRACE_FILE", "DMT_TRACE_COUNTERS_FILE",
              "DMT_TRACE_SAMPLE", "DMT_TRACE_RING", "DMT_WATCHDOG",
              "DMT_AUDIT", "DMT_BENCH_INSTR", "DMT_SAMPLE",
              "DMT_CKPT_DIR", "DMT_FF_MODE", "DMT_FF_CACHE",
              "DMT_PHASE_K", "DMT_PHASE_DIMS", "DMT_PHASE_SEED"})
            unsetenv(v);
    }
} env_sanitizer;

/** The phase spec used by the determinism/golden/daemon tests. */
SampleParams
phaseParams(const std::string &spec)
{
    SampleParams p;
    std::string err;
    EXPECT_TRUE(SampleParams::parse(spec, &p, &err)) << err;
    EXPECT_TRUE(p.phaseMode());
    return p;
}

void
clearAllCaches()
{
    clearCheckpointCache();
    clearPhaseCache();
}

// ---- BbvCollector unit contract ----------------------------------------

TEST(BbvCollector, SplitsRegionsAcrossIntervalBoundaries)
{
    // interval 10, text of 100 instructions.  Stream: 4 instructions
    // from entry (key 0), taken transfer to text index 10; 8 more under
    // key 10 (crossing the boundary at position 10); transfer to index
    // 2; 3 trailing instructions flushed at a budget stop.
    BbvCollector bbv(10, 100, Program::kTextBase);
    bbv.transfer(Program::kTextBase + 40, 4);
    bbv.transfer(Program::kTextBase + 8, 8);
    bbv.flush(3);
    bbv.finish();
    EXPECT_EQ(bbv.position(), 15u);

    const auto &ivs = bbv.intervals();
    ASSERT_EQ(ivs.size(), 2u);
    EXPECT_EQ(ivs[0].instrs, 10u);
    const std::vector<std::pair<u32, u64>> want0{{0, 4}, {10, 6}};
    EXPECT_EQ(ivs[0].counts, want0);
    // Trailing partial interval: 2 instructions finishing the key-10
    // region plus the 3 flushed under key 2, sorted by block index.
    EXPECT_EQ(ivs[1].instrs, 5u);
    const std::vector<std::pair<u32, u64>> want1{{2, 3}, {10, 2}};
    EXPECT_EQ(ivs[1].counts, want1);
}

TEST(BbvCollector, OffTextAndMisalignedTargetsShareTheSentinel)
{
    BbvCollector bbv(100, 50, Program::kTextBase);
    bbv.transfer(Program::kTextBase + 2, 5);      // misaligned
    bbv.flush(1);
    bbv.transfer(Program::kTextBase + 4 * 200, 2); // past the text
    bbv.flush(1);
    bbv.finish();

    const auto &ivs = bbv.intervals();
    ASSERT_EQ(ivs.size(), 1u);
    EXPECT_EQ(ivs[0].instrs, 9u);
    // Both bad targets land in the one sentinel bucket (== text size).
    const std::vector<std::pair<u32, u64>> want{{0, 5}, {50, 4}};
    EXPECT_EQ(ivs[0].counts, want);
}

TEST(BbvCollector, ChunkedReportingIsInvariant)
{
    // The same region reported as one flush or many partial flushes
    // must produce identical vectors — the property that makes run()
    // chunking and budget stops invisible.
    BbvCollector one(7, 20, Program::kTextBase);
    one.transfer(Program::kTextBase + 12, 9);
    one.flush(5);
    one.finish();

    BbvCollector many(7, 20, Program::kTextBase);
    many.transfer(Program::kTextBase + 12, 9);
    many.flush(2);
    many.flush(0);
    many.flush(3);
    many.finish();

    EXPECT_EQ(one.intervals(), many.intervals());
}

// ---- BBV collection on real workloads ----------------------------------

TEST(Bbv, CrossEngineBitIdentity)
{
    const Program prog = buildWorkload("go");
    constexpr u64 kInterval = 10000;
    constexpr u64 kBudget = 200000;

    u64 cov_t = 0, cov_i = 0;
    bool done_t = false, done_i = false;
    const std::vector<IntervalBbv> t = collectBbvs(
        prog, kInterval, kBudget, FfMode::Translated, &cov_t, &done_t);
    const std::vector<IntervalBbv> i = collectBbvs(
        prog, kInterval, kBudget, FfMode::Interp, &cov_i, &done_i);

    EXPECT_EQ(cov_t, cov_i);
    EXPECT_EQ(done_t, done_i);
    ASSERT_EQ(t.size(), i.size());
    for (size_t n = 0; n < t.size(); ++n)
        EXPECT_TRUE(t[n] == i[n]) << "interval " << n
                                  << " differs between engines";

    // Reruns on the same engine are bit-identical too.
    const std::vector<IntervalBbv> t2 = collectBbvs(
        prog, kInterval, kBudget, FfMode::Translated);
    EXPECT_TRUE(t == t2);
}

TEST(Bbv, IntervalsPartitionTheStream)
{
    const Program prog = buildWorkload("go");
    // Deliberately odd interval length and budget: every interval but
    // the last must be exactly full, and the totals must tile the
    // covered stream with no gaps or double counting.
    u64 covered = 0;
    const std::vector<IntervalBbv> bbvs = collectBbvs(
        prog, 7321, 123457, FfMode::Translated, &covered);
    ASSERT_FALSE(bbvs.empty());
    u64 sum = 0;
    for (size_t n = 0; n < bbvs.size(); ++n) {
        if (n + 1 < bbvs.size()) {
            EXPECT_EQ(bbvs[n].instrs, 7321u) << "interval " << n;
        }
        u64 iv_sum = 0;
        for (const auto &[block, count] : bbvs[n].counts) {
            EXPECT_LE(block, prog.text.size());
            EXPECT_GT(count, 0u);
            iv_sum += count;
        }
        EXPECT_EQ(iv_sum, bbvs[n].instrs);
        sum += bbvs[n].instrs;
    }
    EXPECT_EQ(sum, covered);
    EXPECT_EQ(covered, 123457u) << "go runs past this budget";
}

// ---- seeded clustering -------------------------------------------------

PhaseParams
params(u64 interval, u64 max_k = 8, u64 dims = 16, u64 seed = 42)
{
    PhaseParams p;
    p.interval = interval;
    p.max_k = max_k;
    p.dims = dims;
    p.seed = seed;
    return p;
}

TEST(PhaseCluster, SeededRunsAreReproducible)
{
    const Program prog = buildWorkload("go");
    const std::vector<IntervalBbv> bbvs =
        collectBbvs(prog, 10000, 200000, FfMode::Translated);
    ASSERT_GE(bbvs.size(), 10u);

    const PhaseAnalysis a = clusterPhases(bbvs, params(10000));
    const PhaseAnalysis b = clusterPhases(bbvs, params(10000));
    EXPECT_EQ(a.k, b.k);
    EXPECT_EQ(a.assignment, b.assignment);
    ASSERT_EQ(a.phases.size(), b.phases.size());
    for (size_t n = 0; n < a.phases.size(); ++n) {
        EXPECT_EQ(a.phases[n].rep, b.phases[n].rep);
        EXPECT_EQ(a.phases[n].members, b.phases[n].members);
        EXPECT_DOUBLE_EQ(a.phases[n].weight, b.phases[n].weight);
    }
}

TEST(PhaseCluster, ResultIsWellFormedForAnySeed)
{
    const Program prog = buildWorkload("go");
    const std::vector<IntervalBbv> bbvs =
        collectBbvs(prog, 10000, 200000, FfMode::Translated);

    for (const u64 seed : {u64{7}, u64{42}, u64{12345}}) {
        const PhaseAnalysis pa =
            clusterPhases(bbvs, params(10000, 8, 16, seed));
        ASSERT_GE(pa.k, 1u);
        EXPECT_LE(pa.k, 8u);
        ASSERT_EQ(pa.assignment.size(), bbvs.size());
        ASSERT_EQ(pa.phases.size(), pa.k);
        double weight_sum = 0.0;
        u64 members_sum = 0;
        u64 prev_rep = 0;
        for (size_t n = 0; n < pa.phases.size(); ++n) {
            const PhaseInfo &ph = pa.phases[n];
            EXPECT_EQ(ph.id, n);
            if (n > 0) {
                EXPECT_GT(ph.rep, prev_rep)
                    << "ids must be dense in rep order";
            }
            prev_rep = ph.rep;
            ASSERT_LT(ph.rep, bbvs.size());
            EXPECT_EQ(pa.assignment[ph.rep], ph.id)
                << "a representative belongs to its own phase";
            EXPECT_GT(ph.members, 0u);
            weight_sum += ph.weight;
            members_sum += ph.members;
        }
        EXPECT_NEAR(weight_sum, 1.0, 1e-9);
        EXPECT_EQ(members_sum, bbvs.size());
    }
}

TEST(PhaseCluster, DegenerateInputsStayWellDefined)
{
    // Empty input: no phases at all.
    const PhaseAnalysis empty = clusterPhases({}, params(100));
    EXPECT_EQ(empty.k, 0u);
    EXPECT_TRUE(empty.phases.empty());

    // A single interval: one phase with the whole weight.
    IntervalBbv iv;
    iv.counts = {{0, 60}, {5, 40}};
    iv.instrs = 100;
    const PhaseAnalysis one = clusterPhases({iv}, params(100));
    ASSERT_EQ(one.k, 1u);
    EXPECT_EQ(one.phases[0].rep, 0u);
    EXPECT_EQ(one.phases[0].members, 1u);
    EXPECT_DOUBLE_EQ(one.phases[0].weight, 1.0);

    // All-identical vectors collapse to a single phase even when
    // max_k asks for more.
    const std::vector<IntervalBbv> same(5, iv);
    const PhaseAnalysis collapsed = clusterPhases(same, params(100, 8));
    ASSERT_EQ(collapsed.k, 1u);
    EXPECT_EQ(collapsed.phases[0].members, 5u);
    EXPECT_DOUBLE_EQ(collapsed.phases[0].weight, 1.0);

    // max_k beyond the interval count clamps to n.
    IntervalBbv other;
    other.counts = {{9, 100}};
    other.instrs = 100;
    const PhaseAnalysis few =
        clusterPhases({iv, other, iv}, params(100, 64));
    EXPECT_GE(few.k, 1u);
    EXPECT_LE(few.k, 3u);
}

TEST(PhaseCluster, AnalysisCacheSharesOneBuild)
{
    clearAllCaches();
    const PhaseParams p = params(20000);
    const auto a = phaseAnalysisFor("go", p, 400000);
    const auto b = phaseAnalysisFor("go", p, 400000);
    EXPECT_EQ(a.get(), b.get()) << "second lookup must share the build";
    const PhaseCacheCounters c = phaseCacheCounters();
    EXPECT_EQ(c.builds, 1u);
    EXPECT_EQ(c.hits, 1u);

    // A different parameter set is a different cache cell.
    const auto other = phaseAnalysisFor("go", params(20000, 4), 400000);
    EXPECT_NE(other.get(), a.get());
    EXPECT_EQ(phaseCacheCounters().builds, 2u);

    clearAllCaches();
    const PhaseCacheCounters z = phaseCacheCounters();
    EXPECT_EQ(z.builds + z.hits, 0u);
}

// ---- the phase-sampled pipeline ----------------------------------------

TEST(PhaseSampled, DeterministicAcrossCacheStatesAndEngines)
{
    const SampleParams p = phaseParams("phase:20000:500:1500");
    const SimConfig cfg = SimConfig::dmt(6, 2);
    constexpr u64 kBudget = 400000;

    clearAllCaches();
    const RunResult cold = runWorkloadSampled(cfg, "go", p, kBudget);
    const RunResult warm = runWorkloadSampled(cfg, "go", p, kBudget);
    EXPECT_EQ(cold.jsonString(), warm.jsonString())
        << "warm phase/checkpoint caches must not change a byte";

    EXPECT_EQ(cold.sampling.mode, "phase");
    EXPECT_GE(cold.sampling.phase_k, 1u);
    EXPECT_EQ(cold.sampling.phases.size(), cold.sampling.phase_k);
    EXPECT_EQ(cold.sampling.phase_intervals, 20u);
    EXPECT_GT(cold.sampling.covered, 0u);
    EXPECT_LT(cold.sampling.functional_instr, cold.sampling.covered);

    // The interp fast-forward engine must reproduce the same bytes:
    // BBVs, clustering, window placement and measured windows are all
    // engine-independent.
    setenv("DMT_FF_MODE", "interp", 1);
    clearAllCaches();
    const RunResult interp = runWorkloadSampled(cfg, "go", p, kBudget);
    unsetenv("DMT_FF_MODE");
    EXPECT_EQ(cold.jsonString(), interp.jsonString())
        << "phase-sampled results must not depend on DMT_FF_MODE";
    clearAllCaches();
}

TEST(PhaseSampled, CpiBracketsFullDetail)
{
    // Same agreement contract as the uniform sampler's bracket test:
    // on a long generated loop nest, the phase-weighted CPI estimate
    // must agree with the full-detail CPI within its own confidence
    // interval plus a small absolute guard for warmup-boundary bias.
    const std::string spec = "gen:loopnest:21:trips=200:units=48";
    const SimConfig cfg = SimConfig::dmt(6, 2);

    clearAllCaches();
    const RunResult full = runWorkload(cfg, spec, 2000000);
    ASSERT_TRUE(full.completed);
    ASSERT_GT(full.retired, 200000u) << "workload too short to sample";
    const double full_cpi = static_cast<double>(full.cycles) /
                            static_cast<double>(full.retired);

    const SampleParams p = phaseParams("phase:20000:500:2000");
    clearAllCaches();
    const RunResult s = runWorkloadSampled(cfg, spec, p);
    ASSERT_TRUE(s.completed);
    ASSERT_GE(s.sampling.phase_k, 1u);
    ASSERT_GT(s.sampling.cpi_mean, 0.0);

    EXPECT_NEAR(s.sampling.cpi_mean, full_cpi,
                s.sampling.cpi_ci95 + 0.03)
        << "phase-sampled CPI " << s.sampling.cpi_mean << " +- "
        << s.sampling.cpi_ci95 << " does not bracket full-detail CPI "
        << full_cpi;

    // The economics that motivate the mode: one window per phase means
    // far fewer detailed instructions than one window per interval.
    const u64 detailed = s.sampling.covered - s.sampling.functional_instr;
    EXPECT_LT(detailed * 3, s.sampling.covered)
        << "phase sampling should leave most of the stream functional";
    clearAllCaches();
}

std::string
phaseGoldenPath()
{
    return std::string(DMT_GOLDEN_DIR) + "/phase_go.json";
}

bool
updateRequested()
{
    const char *v = std::getenv("DMT_UPDATE_GOLDEN");
    return v && *v && std::string(v) != "0";
}

TEST(PhaseSampled, GoldenSignature)
{
    // Pin the whole phase pipeline — BBV profile, projection,
    // clustering, representative windows, weighted aggregation — to a
    // checked-in canonical JSON document.  Regenerate with
    // DMT_UPDATE_GOLDEN=1 after intentional behaviour changes.
    const SampleParams p = phaseParams("phase:20000:500:1500");

    clearAllCaches();
    const RunResult r =
        runWorkloadSampled(SimConfig::dmt(6, 2), "go", p, 400000);
    clearAllCaches();
    const std::string got = r.jsonString() + "\n";

    if (updateRequested()) {
        std::ofstream out(phaseGoldenPath());
        ASSERT_TRUE(out.good()) << phaseGoldenPath();
        out << got;
        GTEST_SKIP() << "phase signature regenerated in "
                     << phaseGoldenPath();
    }

    std::ifstream in(phaseGoldenPath());
    ASSERT_TRUE(in.good()) << phaseGoldenPath()
                           << " missing; regenerate with "
                              "DMT_UPDATE_GOLDEN=1";
    std::ostringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), got)
        << "phase-sampled run drifted from tests/golden/phase_go.json; "
           "if intentional, regenerate with DMT_UPDATE_GOLDEN=1";
}

// ---- daemon byte-identity ----------------------------------------------

class PhaseServe : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        clearAllCaches();
        ServeOptions opts;
        opts.port = 0; // ephemeral: tests never collide
        opts.pool = 2;
        opts.cache_entries = 64;
        opts.drain_s = 10.0;
        server = std::make_unique<Server>(opts);
        std::string err;
        ASSERT_TRUE(server->start(&err)) << err;
    }

    void
    TearDown() override
    {
        server.reset();
        clearAllCaches();
    }

    std::unique_ptr<Server> server;
};

TEST_F(PhaseServe, ColdCachedAndDirectAnswersAreByteIdentical)
{
    constexpr u64 kBudget = 60000;
    JobSpec job;
    job.workload = "go";
    job.cfg = SimConfig::dmt(2, 2);
    job.cfg.max_retired = kBudget;
    job.max_retired = kBudget;
    job.sample = phaseParams("phase:5000:200:600");

    ServeClient c;
    std::string err;
    ASSERT_TRUE(c.connect(server->port(), &err, 2.0)) << err;

    JsonValue cold_reply;
    std::string cold;
    ASSERT_TRUE(c.request(runRequestLine(1, job), &cold_reply, &err))
        << err;
    ASSERT_TRUE(cold_reply.find("ok") && cold_reply.find("ok")->asBool())
        << c.lastLine();
    ASSERT_TRUE(extractRawResult(c.lastLine(), &cold));
    EXPECT_FALSE(cold_reply.find("cached")->asBool());

    JsonValue warm_reply;
    std::string warm;
    ASSERT_TRUE(c.request(runRequestLine(2, job), &warm_reply, &err))
        << err;
    ASSERT_TRUE(extractRawResult(c.lastLine(), &warm));
    EXPECT_TRUE(warm_reply.find("cached")->asBool());

    const RunResult direct = runWorkloadJob(job.cfg, job.workload,
                                            job.max_retired, job.sample);
    EXPECT_EQ(direct.sampling.mode, "phase");
    EXPECT_EQ(cold, direct.jsonString())
        << "daemon-computed phase bytes must equal a direct local run";
    EXPECT_EQ(warm, direct.jsonString())
        << "cache replay must not alter a single byte";
    EXPECT_EQ(server->jobsSimulated(), 1u);
}

} // namespace
} // namespace dmt
