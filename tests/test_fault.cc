/**
 * @file
 * Fault-injection tests: every injection site corrupts *speculative*
 * state only, so a run with injection enabled must still converge to a
 * golden-checker-clean retirement stream purely through the paper's
 * recovery machinery (trace-buffer walks, final checks, join
 * validation, checkpoint restores).  Verified per site and as an
 * all-sites storm over the shared fuzz corpus, with the invariant
 * auditor riding along.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "dmt/engine.hh"
#include "fault/injector.hh"
#include "fuzz_corpus.hh"
#include "workloads/workloads.hh"

namespace dmt
{
namespace
{

Program
corpusProgram(int seed)
{
    ProgramFuzzer fuzzer(static_cast<u64>(seed) * 7919 + 17);
    return fuzzer.generate();
}

/** Run @p cfg on a corpus program; hard-assert golden cleanliness. */
void
runClean(const SimConfig &cfg, int seed, const char *what)
{
    const Program prog = corpusProgram(seed);
    const std::vector<u32> want = fuzzGolden(prog);
    DmtEngine e(cfg, prog);
    e.run();
    ASSERT_TRUE(e.programCompleted())
        << what << " seed " << seed << ": did not complete";
    ASSERT_TRUE(e.goldenOk())
        << what << " seed " << seed << ": " << e.goldenError();
    EXPECT_EQ(e.outputStream(), want) << what << " seed " << seed;
}

// ---------------------------------------------------------------------
// Per-site: moderate-rate injection at one site over several corpus
// programs must stay golden-clean and must actually fire.
// ---------------------------------------------------------------------

class FaultSiteTest : public ::testing::TestWithParam<int>
{
};

TEST_P(FaultSiteTest, SingleSiteInjectionRetiresGoldenClean)
{
    const auto site = static_cast<FaultSite>(GetParam());
    u64 injected = 0;
    for (int seed = 0; seed < 6; ++seed) {
        const Program prog = corpusProgram(seed);
        const std::vector<u32> want = fuzzGolden(prog);

        SimConfig cfg = SimConfig::dmt(4, 2);
        cfg.fault.enabled = true;
        cfg.fault.seed = 0xF00D + static_cast<u64>(seed);
        cfg.fault.rate[GetParam()] = 0.05;

        DmtEngine e(cfg, prog);
        e.run();
        ASSERT_TRUE(e.programCompleted())
            << faultSiteName(site) << " seed " << seed;
        ASSERT_TRUE(e.goldenOk())
            << faultSiteName(site) << " seed " << seed << ": "
            << e.goldenError();
        EXPECT_EQ(e.outputStream(), want)
            << faultSiteName(site) << " seed " << seed;
        injected += e.faults().injected(site);
    }

    // The corpus programs are short; a real workload guarantees every
    // site (dataflow deliveries in particular) sees opportunities.
    {
        const Program prog = buildWorkload("go");
        SimConfig cfg = SimConfig::dmt(6, 2);
        cfg.max_retired = 20000;
        cfg.fault.enabled = true;
        cfg.fault.seed = 0xF00D;
        cfg.fault.rate[GetParam()] = 0.05;
        DmtEngine e(cfg, prog);
        e.run();
        ASSERT_TRUE(e.goldenOk())
            << faultSiteName(site) << " on go: " << e.goldenError();
        injected += e.faults().injected(site);
    }

    EXPECT_GT(injected, 0u)
        << faultSiteName(site)
        << ": no injection opportunity fired over the whole corpus";
}

INSTANTIATE_TEST_SUITE_P(
    Sites, FaultSiteTest, ::testing::Range(0, kNumFaultSites),
    [](const ::testing::TestParamInfo<int> &pinfo) {
        std::string n =
            faultSiteName(static_cast<FaultSite>(pinfo.param));
        for (char &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

// ---------------------------------------------------------------------
// Storm: all five sites at >= 1%, seeded, over the fuzz corpus.  Must
// be golden-clean, and the repair work must show up as strictly more
// recovery walks than the fault-free runs.
// ---------------------------------------------------------------------

TEST(FaultStorm, AllSitesStormRetiresGoldenCleanViaRecovery)
{
    u64 walks_clean = 0;
    u64 walks_storm = 0;
    u64 injected = 0;

    for (int seed = 0; seed < 8; ++seed) {
        const Program prog = corpusProgram(seed);
        const std::vector<u32> want = fuzzGolden(prog);

        SimConfig cfg = SimConfig::dmt(6, 2);
        {
            DmtEngine e(cfg, prog);
            e.run();
            ASSERT_TRUE(e.goldenOk()) << "clean seed " << seed;
            walks_clean += e.stats().recovery_walk_hist.count();
        }

        // 3% per site: the corpus programs are short, so the 1%-floor
        // storm barely fires on them (the workload-scale 1% storm runs
        // below).
        cfg.fault.enabled = true;
        cfg.fault.seed = 0xBADD + static_cast<u64>(seed);
        cfg.fault.rateAll(0.03);
        DmtEngine e(cfg, prog);
        e.run();
        ASSERT_TRUE(e.programCompleted()) << "storm seed " << seed;
        ASSERT_TRUE(e.goldenOk())
            << "storm seed " << seed << ": " << e.goldenError();
        EXPECT_EQ(e.outputStream(), want) << "storm seed " << seed;
        walks_storm += e.stats().recovery_walk_hist.count();
        injected += e.faults().injectedTotal();
    }

    EXPECT_GT(injected, 0u) << "the storm never injected anything";
    EXPECT_GT(walks_storm, walks_clean)
        << "injected corruption must be repaired through recovery "
           "walks, not silently absorbed";
}

// Same all-site storm over the mixed corpus (fuzzCorpusProgram):
// seeded draws alternate between random programs and generated
// workload families, so recovery also faces queues, pointer chases
// and dispatch loops under injection.
TEST(FaultStorm, MixedCorpusStormRetiresGoldenClean)
{
    u64 injected = 0;
    for (int seed = 0; seed < 10; ++seed) {
        const Program prog =
            fuzzCorpusProgram(static_cast<u64>(seed) * 6271 + 5);
        const std::vector<u32> want = fuzzGolden(prog);

        SimConfig cfg = SimConfig::dmt(6, 2);
        cfg.fault.enabled = true;
        cfg.fault.seed = 0xD00D + static_cast<u64>(seed);
        cfg.fault.rateAll(0.03);
        DmtEngine e(cfg, prog);
        e.run();
        ASSERT_TRUE(e.programCompleted()) << "storm seed " << seed;
        ASSERT_TRUE(e.goldenOk())
            << "storm seed " << seed << ": " << e.goldenError();
        EXPECT_EQ(e.outputStream(), want) << "storm seed " << seed;
        injected += e.faults().injectedTotal();
    }
    EXPECT_GT(injected, 0u) << "the storm never injected anything";
}

// Workload-scale storm at the 1% floor: thousands of injections across
// every site on a real benchmark must still retire golden-clean.
TEST(FaultStorm, WorkloadStormAtOnePercentIsGoldenClean)
{
    const Program prog = buildWorkload("go");
    SimConfig cfg = SimConfig::dmt(6, 2);
    cfg.max_retired = 30000;
    cfg.fault.enabled = true;
    cfg.fault.seed = 0xC0FFEE;
    cfg.fault.rateAll(0.01);
    DmtEngine e(cfg, prog);
    e.run();
    ASSERT_TRUE(e.goldenOk()) << e.goldenError();
    EXPECT_GT(e.faults().injectedTotal(), 100u);
}

// The invariant auditor sweeps every engine structure each cycle while
// the storm rages: corruption must never produce an *illegal* state,
// only a repairable speculative one.
TEST(FaultStorm, AuditorStaysGreenUnderStorm)
{
    for (int seed = 0; seed < 3; ++seed) {
        SimConfig cfg = SimConfig::dmt(4, 2);
        cfg.fault.enabled = true;
        cfg.fault.seed = 42 + static_cast<u64>(seed);
        cfg.fault.rateAll(0.02);
        cfg.audit_period = 1;
        runClean(cfg, seed, "audited storm");
    }
}

// ---------------------------------------------------------------------
// Determinism: a (seed, rates) pair replays exactly.
// ---------------------------------------------------------------------

TEST(FaultInjector, SeededStormReplaysExactly)
{
    const Program prog = corpusProgram(3);
    SimConfig cfg = SimConfig::dmt(4, 2);
    cfg.fault.enabled = true;
    cfg.fault.seed = 1234;
    cfg.fault.rateAll(0.02);

    DmtEngine a(cfg, prog);
    a.run();
    DmtEngine b(cfg, prog);
    b.run();

    EXPECT_EQ(a.faults().injectedTotal(), b.faults().injectedTotal());
    for (int s = 0; s < kNumFaultSites; ++s) {
        const auto site = static_cast<FaultSite>(s);
        EXPECT_EQ(a.faults().injected(site), b.faults().injected(site))
            << faultSiteName(site);
        EXPECT_EQ(a.faults().offered(site), b.faults().offered(site))
            << faultSiteName(site);
    }
    EXPECT_EQ(a.stats().cycles.value(), b.stats().cycles.value());
    EXPECT_EQ(a.outputStream(), b.outputStream());
}

TEST(FaultInjector, CorruptValueAlwaysChangesTheValue)
{
    FaultOptions opts;
    opts.enabled = true;
    opts.seed = 7;
    opts.rateAll(1.0);
    FaultInjector inj;
    inj.configure(opts);
    for (int i = 0; i < 1000; ++i) {
        const u32 v = static_cast<u32>(i) * 2654435761u;
        EXPECT_NE(inj.corruptValue(FaultSite::LoadValue, v), v);
    }
}

// ---------------------------------------------------------------------
// Environment knobs (DMT_FAULT / DMT_FAULT_RATE / DMT_FAULT_SEED).
// ---------------------------------------------------------------------

TEST(FaultInjector, EnvKnobsSelectSitesRateAndSeed)
{
    setenv("DMT_FAULT", "load-value,branch-prediction", 1);
    setenv("DMT_FAULT_RATE", "0.25", 1);
    setenv("DMT_FAULT_SEED", "99", 1);
    const FaultOptions o = faultOptionsFromEnv(FaultOptions{});
    unsetenv("DMT_FAULT");
    unsetenv("DMT_FAULT_RATE");
    unsetenv("DMT_FAULT_SEED");

    EXPECT_TRUE(o.enabled);
    EXPECT_EQ(o.seed, 99u);
    EXPECT_DOUBLE_EQ(
        o.rate[static_cast<int>(FaultSite::LoadValue)], 0.25);
    EXPECT_DOUBLE_EQ(
        o.rate[static_cast<int>(FaultSite::BranchPrediction)], 0.25);
    EXPECT_DOUBLE_EQ(o.rate[static_cast<int>(FaultSite::SpawnInput)],
                     0.0);
    EXPECT_DOUBLE_EQ(
        o.rate[static_cast<int>(FaultSite::DataflowValue)], 0.0);
    EXPECT_DOUBLE_EQ(
        o.rate[static_cast<int>(FaultSite::SpawnDecision)], 0.0);
}

TEST(FaultInjector, EnvOffForcesInjectionOff)
{
    FaultOptions base;
    base.enabled = true;
    base.rateAll(0.5);
    setenv("DMT_FAULT", "off", 1);
    const FaultOptions o = faultOptionsFromEnv(base);
    unsetenv("DMT_FAULT");
    EXPECT_FALSE(o.enabled);
}

// Disabled injection is the default and must not perturb a run at all.
TEST(FaultInjector, DisabledInjectorIsInert)
{
    const Program prog = corpusProgram(1);
    SimConfig cfg = SimConfig::dmt(4, 2);
    DmtEngine e(cfg, prog);
    e.run();
    ASSERT_TRUE(e.goldenOk()) << e.goldenError();
    EXPECT_FALSE(e.faults().enabled());
    EXPECT_EQ(e.faults().injectedTotal(), 0u);
}

} // namespace
} // namespace dmt
