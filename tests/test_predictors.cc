/**
 * @file
 * Thread-level predictor tests: the spawn selection counters with
 * their retirement-stream estimator and after-loop target history, and
 * the register dataflow (last-modifier) predictor.
 */

#include <gtest/gtest.h>

#include "dmt/dataflow_pred.hh"
#include "dmt/spawn_pred.hh"

namespace dmt
{
namespace
{

TEST(SpawnPredictor, StartsWeaklySelected)
{
    SpawnPredictor sp(10, 4, 12);
    EXPECT_TRUE(sp.selected(0x400100));
    EXPECT_EQ(sp.counterOf(0x400100), 2);
}

TEST(SpawnPredictor, UsefulRetirementStrengthens)
{
    SpawnPredictor sp(10, 4, 12);
    sp.onThreadRetired(0x400100, true, false);
    EXPECT_EQ(sp.counterOf(0x400100), 3);
    sp.onThreadRetired(0x400100, true, false);
    EXPECT_EQ(sp.counterOf(0x400100), 3) << "saturates";
}

TEST(SpawnPredictor, TooSmallResets)
{
    SpawnPredictor sp(10, 4, 12);
    sp.onThreadRetired(0x400100, true, true);
    EXPECT_EQ(sp.counterOf(0x400100), 0);
    EXPECT_FALSE(sp.selected(0x400100));
}

TEST(SpawnPredictor, UselessResets)
{
    SpawnPredictor sp(10, 4, 12);
    sp.onThreadRetired(0x400100, false, false);
    EXPECT_FALSE(sp.selected(0x400100));
}

TEST(SpawnPredictor, SquashDecrements)
{
    SpawnPredictor sp(10, 4, 12);
    sp.onThreadSquashed(0x400100);
    EXPECT_EQ(sp.counterOf(0x400100), 1);
    EXPECT_FALSE(sp.selected(0x400100));
    sp.onThreadSquashed(0x400100);
    sp.onThreadSquashed(0x400100);
    EXPECT_EQ(sp.counterOf(0x400100), 0) << "saturates at zero";
}

TEST(SpawnPredictor, EstimatorRevivesNearJoins)
{
    SpawnPredictor sp(10, 4, 4);
    const Addr join = 0x400200;
    sp.onThreadRetired(join, false, false); // reset to 0
    ASSERT_FALSE(sp.selected(join));
    // Retirement stream: a spawn point followed shortly by the join,
    // with enough instructions in between to look worthwhile.
    for (int round = 0; round < 3; ++round) {
        sp.onRetireSpawnPoint(join);
        for (Addr pc = 0x400100; pc < 0x400100 + 40; pc += 4)
            sp.onRetirePc(pc);
        sp.onRetirePc(join); // pops and rewards
    }
    EXPECT_TRUE(sp.selected(join));
}

TEST(SpawnPredictor, EstimatorPunishesTinyThreads)
{
    SpawnPredictor sp(10, 4, 16);
    const Addr join = 0x400300;
    const int before = sp.counterOf(join);
    sp.onRetireSpawnPoint(join);
    sp.onRetirePc(join); // joins after 1 instruction: too small
    EXPECT_LT(sp.counterOf(join), before);
}

TEST(SpawnPredictor, EstimatorPunishesDistantJoins)
{
    SpawnPredictor sp(10, 2, 1); // only 2 contexts
    const Addr join = 0x400400;
    const int before = sp.counterOf(join);
    sp.onRetireSpawnPoint(join);
    // Three more spawn points pile up before the join: distance 3 >= 2.
    sp.onRetireSpawnPoint(0x400500);
    sp.onRetireSpawnPoint(0x400600);
    sp.onRetireSpawnPoint(0x400700);
    sp.onRetirePc(0x400700);
    sp.onRetirePc(0x400600);
    sp.onRetirePc(0x400500);
    sp.onRetirePc(join);
    EXPECT_LE(sp.counterOf(join), before);
}

TEST(SpawnPredictor, AfterLoopDefaultsToFallThrough)
{
    SpawnPredictor sp(10, 4, 12);
    EXPECT_EQ(sp.predictAfterLoop(0x400800), 0x400804u);
}

TEST(SpawnPredictor, AfterLoopLearnsRecordedExit)
{
    SpawnPredictor sp(10, 4, 12);
    sp.recordLoopExit(0x400800, 0x400900);
    EXPECT_EQ(sp.predictAfterLoop(0x400800), 0x400900u);
    // A different branch address with the same table slot must not
    // alias (tag check).
    EXPECT_EQ(sp.predictAfterLoop(0x400800 + 512 * 4), 0x400800u + 2048 + 4);
}

TEST(DataflowPredictor, LookupMissByDefault)
{
    DataflowPredictor df(256);
    EXPECT_EQ(df.lookup(0x400100), nullptr);
}

TEST(DataflowPredictor, RecordAndLookup)
{
    DataflowPredictor df(256);
    df.record(0x400100, {{2, 0x1234}, {4, 0x5678}});
    const DfEntry *e = df.lookup(0x400100);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->n, 2);
    EXPECT_EQ(e->items[0].reg, 2);
    EXPECT_EQ(e->items[0].modpc_lo, 0x1234);
    EXPECT_EQ(e->items[1].reg, 4);
}

TEST(DataflowPredictor, TagRejectsAliases)
{
    DataflowPredictor df(16);
    df.record(0x400100, {{2, 1}});
    EXPECT_EQ(df.lookup(0x400100 + 16 * 4), nullptr)
        << "same index, different start address";
}

TEST(DataflowPredictor, ClearRemoves)
{
    DataflowPredictor df(256);
    df.record(0x400100, {{2, 1}});
    df.clear(0x400100);
    EXPECT_EQ(df.lookup(0x400100), nullptr);
}

TEST(DataflowPredictor, CapsItemCount)
{
    DataflowPredictor df(256);
    std::vector<DfItem> many;
    for (int i = 0; i < 10; ++i)
        many.push_back({static_cast<LogReg>(i), static_cast<u16>(i)});
    df.record(0x400200, many);
    const DfEntry *e = df.lookup(0x400200);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->n, DfEntry::kMaxItems);
}

TEST(DataflowPredictor, RerecordOverwrites)
{
    DataflowPredictor df(256);
    df.record(0x400300, {{2, 1}, {3, 2}});
    df.record(0x400300, {{7, 9}});
    const DfEntry *e = df.lookup(0x400300);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->n, 1);
    EXPECT_EQ(e->items[0].reg, 7);
}

} // namespace
} // namespace dmt
