/**
 * @file
 * Experiment-layer tests: the per-figure machine configurations encode
 * exactly the parameters the paper states (these tests are the
 * machine-readable form of Section 4's methodology), plus the runner
 * and table renderer.
 */

#include <gtest/gtest.h>

#include "exp/experiments.hh"
#include "exp/report.hh"
#include "exp/runner.hh"

namespace dmt
{
namespace
{

TEST(PaperConfig, BaselineMachine)
{
    // "a 4-wide superscalar with a 128-instruction window"
    const SimConfig c = exp::baseline();
    EXPECT_EQ(c.max_threads, 1);
    EXPECT_EQ(c.fetch_ports, 1);
    EXPECT_EQ(c.fetch_block, 4);
    EXPECT_EQ(c.window_size, 128);
    EXPECT_EQ(c.retire_width, 4);
    EXPECT_TRUE(c.unlimited_fus);
    EXPECT_FALSE(c.isDmt());
}

TEST(PaperConfig, CacheHierarchy)
{
    // "16KB 2-way set associative instruction and data caches and a
    //  256KB 4-way set associative L2 cache. L1 miss penalty is 4
    //  cycles, and an L2 miss costs additional 20 cycles."
    const SimConfig c = exp::baseline();
    EXPECT_EQ(c.mem.l1i.size_bytes, 16u * 1024);
    EXPECT_EQ(c.mem.l1i.assoc, 2u);
    EXPECT_EQ(c.mem.l1d.size_bytes, 16u * 1024);
    EXPECT_EQ(c.mem.l1d.assoc, 2u);
    EXPECT_EQ(c.mem.l2.size_bytes, 256u * 1024);
    EXPECT_EQ(c.mem.l2.assoc, 4u);
    EXPECT_EQ(c.mem.l1_miss_penalty, 4u);
    EXPECT_EQ(c.mem.l2_miss_penalty, 20u);
}

TEST(PaperConfig, Figure4Machine)
{
    // "two fetch ports and two rename units ... trace buffer size is
    //  500 instructions per thread ... trace buffer pipeline is 4
    //  cycles long ... window size 128"
    const SimConfig c = exp::fig4Dmt(6);
    EXPECT_EQ(c.max_threads, 6);
    EXPECT_EQ(c.fetch_ports, 2);
    EXPECT_EQ(c.window_size, 128);
    EXPECT_EQ(c.tb_size, 500);
    EXPECT_EQ(c.tb_latency, 4);
    EXPECT_TRUE(c.unlimited_fus);
}

TEST(PaperConfig, Figure6ExecutionUnits)
{
    // "4 ALUs, 2 of which are used for address calculations, and 1
    //  multiply/divide unit. Two load and/or store instructions can be
    //  issued to the DCache every cycle. The latencies are 1 cycle for
    //  the ALU, 3 for multiply, 20 for divide, and 3 cycles for a load"
    const SimConfig c = exp::fig6Dmt(6, true);
    EXPECT_FALSE(c.unlimited_fus);
    EXPECT_EQ(c.fus.alu, 4);
    EXPECT_EQ(c.fus.muldiv, 1);
    EXPECT_EQ(c.fus.mem_ports, 2);
    EXPECT_EQ(c.lat_alu, 1);
    EXPECT_EQ(c.lat_mul, 3);
    EXPECT_EQ(c.lat_div, 20);
    EXPECT_EQ(c.lat_mem, 3);
    // "we have assumed additional 2 cycles of latency for loads that
    //  hit stores in other thread queues"
    EXPECT_EQ(c.lat_xthread_forward, 2);
}

TEST(PaperConfig, FigureSweeps)
{
    EXPECT_EQ(exp::fig5Dmt(4).fetch_ports, 4);
    EXPECT_EQ(exp::fig5Dmt(4).max_threads, 4);
    EXPECT_EQ(exp::fig7Dmt(200).tb_size, 200);
    EXPECT_EQ(exp::fig7Dmt(200).max_threads, 6);
    EXPECT_EQ(exp::fig89Dmt().max_threads, 6);
    EXPECT_FALSE(exp::fig10Dmt(false).dataflow_prediction);
    EXPECT_TRUE(exp::fig10Dmt(true).dataflow_prediction);
    EXPECT_EQ(exp::fig12Dmt(6).tb_read_block, 6);
    EXPECT_EQ(exp::fig12Dmt(0).tb_read_block, 0) << "ideal queue";
    EXPECT_EQ(exp::fig13Dmt(16).tb_latency, 16);
}

TEST(PaperConfig, ValidationCatchesNonsense)
{
    SimConfig c = exp::baseline();
    c.max_threads = 0;
    EXPECT_DEATH(c.validate(), "max_threads");
    SimConfig c2 = exp::baseline();
    c2.tb_size = 2;
    EXPECT_DEATH(c2.validate(), "trace buffer");
}

TEST(Runner, RespectsBudget)
{
    const RunResult r = runWorkload(exp::baseline(), "go", 5000);
    EXPECT_GE(r.retired, 5000u);
    EXPECT_LT(r.retired, 5200u);
    EXPECT_FALSE(r.completed);
    EXPECT_GT(r.ipc, 0.0);
}

TEST(Runner, SpeedupMath)
{
    RunResult base;
    base.cycles = 2000;
    base.retired = 1000;
    RunResult twice;
    twice.cycles = 1000;
    twice.retired = 1000;
    EXPECT_NEAR(speedupPct(base, twice), 100.0, 1e-9);
    EXPECT_NEAR(speedupPct(base, base), 0.0, 1e-9);
    // Different retired counts compare cycles-per-instruction.
    RunResult half_work;
    half_work.cycles = 1000;
    half_work.retired = 500;
    EXPECT_NEAR(speedupPct(base, half_work), 0.0, 1e-9);
}

TEST(Runner, DefaultLengthOverridableByEnv)
{
    // No env in tests: default applies.
    EXPECT_GT(benchRunLength(), 0u);
}

TEST(Report, RendersTable)
{
    Report rep("Figure X: demo", "a note");
    rep.columns({"workload", "a", "b"});
    rep.row("go", {1.25, -3.5});
    rep.row("li", {2.75, 0.5});
    rep.averageRow();
    const std::string out = rep.render();
    EXPECT_NE(out.find("Figure X: demo"), std::string::npos);
    EXPECT_NE(out.find("a note"), std::string::npos);
    EXPECT_NE(out.find("go"), std::string::npos);
    EXPECT_NE(out.find("1.25"), std::string::npos);
    EXPECT_NE(out.find("-3.50"), std::string::npos);
    EXPECT_NE(out.find("average"), std::string::npos);
    EXPECT_NE(out.find("2.00"), std::string::npos) << "mean of col a";
}

TEST(Report, AverageIgnoresPriorAverages)
{
    Report rep("t", "");
    rep.columns({"w", "x"});
    rep.row("r1", {2.0});
    rep.averageRow("avg1");
    rep.row("r2", {4.0});
    rep.averageRow("avg2");
    const std::string out = rep.render();
    // avg2 must be mean(2,4) = 3, not influenced by avg1.
    EXPECT_NE(out.find("3.00"), std::string::npos);
}

} // namespace
} // namespace dmt
