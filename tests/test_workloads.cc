/**
 * @file
 * Workload validity tests: every suite kernel and microkernel runs to
 * completion functionally, is deterministic, produces nonzero output,
 * and has an instruction mix with the control-flow character it claims
 * (calls for the procedure-intensive kernels, loops everywhere).
 */

#include <gtest/gtest.h>

#include <map>

#include "sim/functional.hh"
#include "workloads/workloads.hh"

namespace dmt
{
namespace
{

struct Mix
{
    u64 total = 0;
    u64 calls = 0;
    u64 branches = 0;
    u64 backward_taken = 0;
    u64 loads = 0;
    u64 stores = 0;
    std::vector<u32> output;
};

Mix
profile(const Program &prog, u64 cap = 20'000'000)
{
    ArchState st;
    MainMemory mem;
    st.reset(prog);
    mem.loadProgram(prog);
    Mix m;
    while (!st.halted) {
        const StepResult s = functionalStep(st, mem, prog);
        ++m.total;
        if (s.inst.isCall())
            ++m.calls;
        if (s.inst.isCondBranch()) {
            ++m.branches;
            if (s.inst.imm < 0 && s.next_pc != s.pc + 4)
                ++m.backward_taken;
        }
        if (s.inst.isLoad())
            ++m.loads;
        if (s.inst.isStore())
            ++m.stores;
        if (m.total > cap)
            ADD_FAILURE() << "workload did not terminate";
    }
    m.output = st.output;
    return m;
}

class SuiteWorkload : public ::testing::TestWithParam<int>
{
};

TEST_P(SuiteWorkload, RunsDeterministicallyToCompletion)
{
    const WorkloadInfo &w =
        workloadSuite()[static_cast<size_t>(GetParam())];
    const Mix a = profile(w.build());
    const Mix b = profile(w.build());

    EXPECT_GT(a.total, 100'000u)
        << w.name << " too short for timing runs";
    EXPECT_LT(a.total, 10'000'000u) << w.name << " too long";
    ASSERT_FALSE(a.output.empty()) << w.name << " emits no checksum";
    EXPECT_EQ(a.output, b.output) << w.name << " nondeterministic";
    EXPECT_EQ(a.total, b.total);
}

TEST_P(SuiteWorkload, HasSpawnOpportunities)
{
    const WorkloadInfo &w =
        workloadSuite()[static_cast<size_t>(GetParam())];
    const Mix m = profile(w.build());
    // Every kernel must exercise at least one thread-spawning construct
    // heavily: procedure calls or taken backward branches.
    EXPECT_GT(m.calls + m.backward_taken, m.total / 100)
        << w.name << " has too few spawn points";
    EXPECT_GT(m.branches, m.total / 50)
        << w.name << " is not branchy enough for SPECint";
    EXPECT_GT(m.loads + m.stores, m.total / 20)
        << w.name << " has too little memory traffic";
}

INSTANTIATE_TEST_SUITE_P(
    All, SuiteWorkload,
    ::testing::Range(0, static_cast<int>(workloadSuite().size())),
    [](const ::testing::TestParamInfo<int> &param_info) {
        return workloadSuite()[static_cast<size_t>(param_info.param)]
            .name;
    });

TEST(SuiteWorkloads, ProcedureKernelsAreCallHeavy)
{
    // The kernels standing in for procedure-intensive benchmarks must
    // have markedly more calls than the loop kernels.
    const Mix li = profile(buildWorkload("li"));
    const Mix ijpeg = profile(buildWorkload("ijpeg"));
    const double li_rate =
        static_cast<double>(li.calls) / static_cast<double>(li.total);
    const double ij_rate = static_cast<double>(ijpeg.calls)
        / static_cast<double>(ijpeg.total);
    EXPECT_GT(li_rate, 4 * ij_rate);
}

TEST(SuiteWorkloads, RegistryIsConsistent)
{
    EXPECT_EQ(workloadSuite().size(), 8u);
    for (const WorkloadInfo &w : workloadSuite()) {
        EXPECT_NE(w.build, nullptr);
        EXPECT_STRNE(w.name, "");
        EXPECT_STRNE(w.mimics, "");
    }
}

TEST(SuiteWorkloads, UnknownNameDies)
{
    EXPECT_DEATH(buildWorkload("nope"), "unknown workload");
}

TEST(Microkernels, KnownResults)
{
    EXPECT_EQ(profile(mkFibRecursive(10)).output,
              (std::vector<u32>{55}));
    EXPECT_EQ(profile(mkSumLoop(10)).output, (std::vector<u32>{45}));
    // call chain: sum of 2i+7 for i in [0,10)
    EXPECT_EQ(profile(mkCallChain(10)).output,
              (std::vector<u32>{90 + 70}));
    // linked list: sum of i*i+1 for i in [0,5)
    EXPECT_EQ(profile(mkLinkedList(5)).output,
              (std::vector<u32>{30 + 5}));
}

TEST(Microkernels, SortActuallySorts)
{
    const Mix m = profile(mkSort(50));
    ASSERT_EQ(m.output.size(), 3u);
    EXPECT_LE(m.output[0], m.output[1]) << "min <= max";
}

TEST(Microkernels, DeepRecursionBalancesStack)
{
    // If the stack discipline were broken the checksum would differ
    // between depths in a non-systematic way; spot-check determinism
    // and completion at a depth large enough to stress save/restore.
    const Mix a = profile(mkDeepRecursion(200));
    const Mix b = profile(mkDeepRecursion(200));
    EXPECT_EQ(a.output, b.output);
}

} // namespace
} // namespace dmt
