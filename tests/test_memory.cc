/**
 * @file
 * Timing-cache tests: geometry, hit/miss behaviour, LRU replacement,
 * and the two-level hierarchy's latency accounting.
 */

#include <gtest/gtest.h>

#include "memory/hierarchy.hh"

namespace dmt
{
namespace
{

CacheParams
tiny(u32 size, u32 assoc, u32 line)
{
    CacheParams p;
    p.name = "tiny";
    p.size_bytes = size;
    p.assoc = assoc;
    p.line_bytes = line;
    return p;
}

TEST(Cache, Geometry)
{
    Cache c(tiny(16 * 1024, 2, 32));
    EXPECT_EQ(c.numSets(), 16u * 1024 / (2 * 32));
}

TEST(Cache, HitAfterMiss)
{
    Cache c(tiny(1024, 2, 32));
    EXPECT_FALSE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x101F, false)) << "same line";
    EXPECT_FALSE(c.access(0x1020, false)) << "next line";
    EXPECT_EQ(c.misses(), 2u);
    EXPECT_EQ(c.hits(), 2u);
}

TEST(Cache, LruReplacement)
{
    // 2-way, 32B lines, 4 sets (256 bytes): addresses with the same
    // set index differ by 128.
    Cache c(tiny(256, 2, 32));
    c.access(0x0000, false);  // way 0
    c.access(0x0080, false);  // way 1 (same set)
    EXPECT_TRUE(c.access(0x0000, false)) << "refresh LRU of way 0";
    c.access(0x0100, false);  // evicts 0x0080 (LRU)
    EXPECT_TRUE(c.access(0x0000, false));
    EXPECT_FALSE(c.access(0x0080, false)) << "was evicted";
}

TEST(Cache, ProbeDoesNotAllocate)
{
    Cache c(tiny(256, 2, 32));
    EXPECT_FALSE(c.probe(0x40));
    EXPECT_FALSE(c.access(0x40, false));
    EXPECT_TRUE(c.probe(0x40));
}

TEST(Cache, ResetClears)
{
    Cache c(tiny(256, 2, 32));
    c.access(0x40, true);
    c.reset();
    EXPECT_FALSE(c.probe(0x40));
    EXPECT_EQ(c.misses(), 0u);
}

TEST(Hierarchy, PaperLatencies)
{
    // Section 4: L1 miss penalty 4 cycles, L2 miss an additional 20.
    HierarchyParams p;
    MemHierarchy h(p);
    EXPECT_EQ(h.instAccess(0x400000), 24u) << "cold: L1+L2 miss";
    EXPECT_EQ(h.instAccess(0x400000), 0u) << "warm: hit";
    EXPECT_EQ(h.dataAccess(0x10000000, false), 24u);
    EXPECT_EQ(h.dataAccess(0x10000000, true), 0u);
}

TEST(Hierarchy, L2CatchesL1Evictions)
{
    HierarchyParams p;
    p.l1i = {"l1i", 256, 1, 32}; // tiny direct-mapped L1I
    MemHierarchy h(p);
    h.instAccess(0x0000);
    h.instAccess(0x0100); // evicts 0x0000 from the tiny L1
    const Cycle lat = h.instAccess(0x0000);
    EXPECT_EQ(lat, p.l1_miss_penalty) << "L1 miss, L2 hit";
}

TEST(Hierarchy, PerfectModes)
{
    HierarchyParams p;
    p.perfect_icache = true;
    p.perfect_dcache = true;
    MemHierarchy h(p);
    EXPECT_EQ(h.instAccess(0xABCDEF0), 0u);
    EXPECT_EQ(h.dataAccess(0xABCDEF0, true), 0u);
}

TEST(Hierarchy, SharedL2)
{
    HierarchyParams p;
    MemHierarchy h(p);
    h.instAccess(0x8000);            // fills L2 line
    const Cycle lat = h.dataAccess(0x8000, false);
    EXPECT_EQ(lat, p.l1_miss_penalty)
        << "data side hits the line the instruction side brought in";
}

} // namespace
} // namespace dmt
