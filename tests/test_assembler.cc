/**
 * @file
 * Textual assembler tests: syntax, directives, labels, pseudo-ops,
 * error reporting, and functional agreement with hand-built programs.
 */

#include <gtest/gtest.h>

#include "casm/assembler.hh"
#include "isa/regs.hh"
#include "sim/functional.hh"

namespace dmt
{
namespace
{

std::vector<u32>
runSource(const std::string &src)
{
    const Program prog = assembleOrDie(src);
    ArchState st;
    MainMemory mem;
    st.reset(prog);
    mem.loadProgram(prog);
    runFunctional(st, mem, prog);
    return st.output;
}

TEST(Assembler, MinimalProgram)
{
    AsmResult r = assembleSource("halt\n");
    ASSERT_TRUE(r.ok) << r.errorText();
    ASSERT_EQ(r.program.text.size(), 1u);
    EXPECT_EQ(r.program.text[0].op, Opcode::HALT);
}

TEST(Assembler, CommentsAndBlankLines)
{
    AsmResult r = assembleSource(R"(
        # full line comment
        addi $t0, $zero, 1   # trailing comment
        ; alternative comment
        halt
    )");
    ASSERT_TRUE(r.ok) << r.errorText();
    EXPECT_EQ(r.program.text.size(), 2u);
}

TEST(Assembler, LabelsAndBranches)
{
    const auto out = runSource(R"(
            li   $t0, 0
            li   $t1, 5
    loop:   addi $t0, $t0, 1
            blt  $t0, $t1, loop
            out  $t0
            halt
    )");
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 5u);
}

TEST(Assembler, DataDirectivesAndLoads)
{
    const auto out = runSource(R"(
            .data
    words:  .word 10, 20, 30
    halves: .half 7, 9
    bytes:  .byte 1, 2, 3
            .align 4
    msg:    .asciiz "AB"
            .text
            la   $t0, words
            lw   $t1, 4($t0)
            out  $t1
            la   $t2, halves
            lhu  $t3, 2($t2)
            out  $t3
            la   $t4, bytes
            lbu  $t5, 2($t4)
            out  $t5
            la   $t6, msg
            lbu  $t7, 1($t6)
            out  $t7
            halt
    )");
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0], 20u);
    EXPECT_EQ(out[1], 9u);
    EXPECT_EQ(out[2], 3u);
    EXPECT_EQ(out[3], static_cast<u32>('B'));
}

TEST(Assembler, PseudoOps)
{
    const auto out = runSource(R"(
            li   $t0, 0x12345678
            out  $t0
            li   $t1, -7
            out  $t1
            move $t2, $t0
            out  $t2
            not  $t3, $zero
            out  $t3
            neg  $t4, $t1
            out  $t4
            subi $t5, $t4, 3
            out  $t5
            halt
    )");
    ASSERT_EQ(out.size(), 6u);
    EXPECT_EQ(out[0], 0x12345678u);
    EXPECT_EQ(out[1], static_cast<u32>(-7));
    EXPECT_EQ(out[2], 0x12345678u);
    EXPECT_EQ(out[3], 0xFFFFFFFFu);
    EXPECT_EQ(out[4], 7u);
    EXPECT_EQ(out[5], 4u);
}

TEST(Assembler, ConditionalPseudoBranches)
{
    const auto out = runSource(R"(
            li   $t0, -3
            li   $t1, 0
            bltz $t0, neg_path
            li   $t1, 99
    neg_path:
            bgtz $t0, wrong
            addi $t1, $t1, 1
    wrong:  blez $t0, done
            addi $t1, $t1, 100
    done:   out  $t1
            halt
    )");
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 1u);
}

TEST(Assembler, CallAndStack)
{
    const auto out = runSource(R"(
            li   $a0, 6
            jal  twice
            out  $v0
            halt
    twice:  push $a0
            pop  $t0
            sll  $v0, $t0, 1
            ret
    )");
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 12u);
}

TEST(Assembler, EntryDirective)
{
    AsmResult r = assembleSource(R"(
            .entry start
    other:  halt
    start:  out $zero
            halt
    )");
    ASSERT_TRUE(r.ok) << r.errorText();
    EXPECT_EQ(r.program.entry, r.program.symbol("start"));
}

TEST(Assembler, SymbolArithmetic)
{
    const auto out = runSource(R"(
            .data
    tab:    .word 5, 6, 7
            .text
            la  $t0, tab+8
            lw  $t1, 0($t0)
            out $t1
            halt
    )");
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 7u);
}

TEST(AssemblerErrors, UndefinedLabel)
{
    AsmResult r = assembleSource("j nowhere\nhalt\n");
    EXPECT_FALSE(r.ok);
    ASSERT_FALSE(r.errors.empty());
    EXPECT_NE(r.errorText().find("nowhere"), std::string::npos);
}

TEST(AssemblerErrors, DuplicateLabel)
{
    AsmResult r = assembleSource("a: nop\na: halt\n");
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.errorText().find("duplicate"), std::string::npos);
}

TEST(AssemblerErrors, UnknownMnemonic)
{
    AsmResult r = assembleSource("frobnicate $t0, $t1\nhalt\n");
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.errorText().find("frobnicate"), std::string::npos);
}

TEST(AssemblerErrors, BadRegister)
{
    AsmResult r = assembleSource("add $t0, $t1, $t99\nhalt\n");
    EXPECT_FALSE(r.ok);
}

TEST(AssemblerErrors, WrongOperandCount)
{
    AsmResult r = assembleSource("add $t0, $t1\nhalt\n");
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.errorText().find("expects"), std::string::npos);
}

TEST(AssemblerErrors, DataDirectiveInText)
{
    AsmResult r = assembleSource(".word 1\nhalt\n");
    EXPECT_FALSE(r.ok);
}

TEST(AssemblerErrors, LineNumbersReported)
{
    AsmResult r = assembleSource("nop\nnop\nbogus\n");
    ASSERT_FALSE(r.ok);
    EXPECT_EQ(r.errors.front().line, 3);
}

TEST(Assembler, LiSymbolAlwaysWide)
{
    // A forward-referenced symbol in li must assemble (pass-1 sizing
    // uses the wide form regardless of final value).
    AsmResult r = assembleSource(R"(
            li $t0, later
            out $t0
            halt
            .data
    later:  .word 1
    )");
    ASSERT_TRUE(r.ok) << r.errorText();
}

} // namespace
} // namespace dmt
