/**
 * @file
 * Whole-program binary round trips: every suite workload's text
 * segment encodes to 32-bit words and decodes back to the identical
 * instruction stream, and the disassembler renders every instruction
 * without tripping assertions — the "can you actually store this
 * program in an ICache" property.
 */

#include <gtest/gtest.h>

#include "isa/disasm.hh"
#include "isa/encoding.hh"
#include "workloads/workloads.hh"

namespace dmt
{
namespace
{

class ProgramImage : public ::testing::TestWithParam<int>
{
};

TEST_P(ProgramImage, EncodeDecodeWholeText)
{
    const WorkloadInfo &w =
        workloadSuite()[static_cast<size_t>(GetParam())];
    const Program prog = w.build();
    ASSERT_FALSE(prog.text.empty());

    for (size_t i = 0; i < prog.text.size(); ++i) {
        const Instruction &inst = prog.text[i];
        u32 word = 0;
        std::string err;
        ASSERT_TRUE(encodeInst(inst, &word, &err))
            << w.name << " @" << i << ": " << err;
        const Instruction back = decodeInst(word);
        EXPECT_EQ(back, inst)
            << w.name << " @" << i << ": "
            << disassemble(inst,
                           Program::kTextBase + static_cast<Addr>(i) * 4)
            << " != "
            << disassemble(back,
                           Program::kTextBase + static_cast<Addr>(i) * 4);
    }
}

TEST_P(ProgramImage, DisassemblesCompletely)
{
    const WorkloadInfo &w =
        workloadSuite()[static_cast<size_t>(GetParam())];
    const Program prog = w.build();
    for (size_t i = 0; i < prog.text.size(); ++i) {
        const Addr pc = Program::kTextBase + static_cast<Addr>(i) * 4;
        const std::string text = disassemble(prog.text[i], pc);
        EXPECT_FALSE(text.empty());
    }
}

TEST_P(ProgramImage, BranchTargetsStayInText)
{
    const WorkloadInfo &w =
        workloadSuite()[static_cast<size_t>(GetParam())];
    const Program prog = w.build();
    for (size_t i = 0; i < prog.text.size(); ++i) {
        const Instruction &inst = prog.text[i];
        const Addr pc = Program::kTextBase + static_cast<Addr>(i) * 4;
        if (inst.isCondBranch()) {
            EXPECT_TRUE(prog.validTextAddr(inst.branchTarget(pc)))
                << w.name << " branch @0x" << std::hex << pc;
        } else if (inst.isJump() && !inst.isIndirect()) {
            EXPECT_TRUE(prog.validTextAddr(inst.jumpTarget()))
                << w.name << " jump @0x" << std::hex << pc;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Suite, ProgramImage,
    ::testing::Range(0, static_cast<int>(workloadSuite().size())),
    [](const ::testing::TestParamInfo<int> &param_info) {
        return workloadSuite()[static_cast<size_t>(param_info.param)]
            .name;
    });

TEST(ProgramImageMicro, MicrokernelsRoundTrip)
{
    const std::vector<Program> programs = {
        mkFibRecursive(8), mkSumLoop(8),     mkMatmul(4),
        mkSort(8),         mkLinkedList(8),  mkCallChain(8),
        mkBranchy(8),      mkAliasStress(8), mkDeepRecursion(8),
        mkLoopBreak(4, 4),
    };
    for (const Program &prog : programs) {
        for (const Instruction &inst : prog.text) {
            u32 word = 0;
            std::string err;
            ASSERT_TRUE(encodeInst(inst, &word, &err)) << err;
            EXPECT_EQ(decodeInst(word), inst);
        }
    }
}

} // namespace
} // namespace dmt
