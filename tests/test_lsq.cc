/**
 * @file
 * Load/store queue and memory-disambiguation tests with a mock program
 * order: forwarding (same and cross thread, contained and partial),
 * violation detection on store execution and re-execution, silent
 * stores, squash orphaning, and retirement-aware ordering.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "dmt/lsq.hh"

namespace dmt
{
namespace
{

/** Program order = (tid, tb_id) lexicographic: tid 0 before tid 1... */
class SeqOracle : public OrderOracle
{
  public:
    bool
    memBefore(ThreadId ta, u64 a, ThreadId tb, u64 b) const override
    {
        if (ta != tb)
            return ta < tb;
        return a < b;
    }
};

class LsqTest : public ::testing::Test
{
  protected:
    LsqTest() : lsq(8, 8, 4) {}

    SeqOracle order;
    Lsq lsq;
};

TEST_F(LsqTest, AllocationQuotas)
{
    std::vector<i32> ids;
    for (int i = 0; i < 8; ++i) {
        const i32 id = lsq.allocLoad(0, 1, static_cast<u64>(i));
        ASSERT_GE(id, 0);
        ids.push_back(id);
    }
    EXPECT_TRUE(lsq.lqFull(0));
    EXPECT_EQ(lsq.allocLoad(0, 1, 99), -1);
    EXPECT_FALSE(lsq.lqFull(1)) << "quotas are per thread";
    EXPECT_GE(lsq.allocLoad(1, 1, 0), 0);
    lsq.freeLoad(ids[0]);
    EXPECT_GE(lsq.allocLoad(0, 1, 100), 0);
}

TEST_F(LsqTest, LoadFromMemoryWhenNoStore)
{
    const i32 ld = lsq.allocLoad(0, 1, 5);
    const auto r = lsq.loadIssue(ld, 0x1000, 4, order);
    EXPECT_EQ(r.kind, Lsq::LoadIssueResult::Memory);
}

TEST_F(LsqTest, ForwardFromLatestEarlierStore)
{
    const i32 s1 = lsq.allocStore(0, 1, 1);
    const i32 s2 = lsq.allocStore(0, 1, 3);
    lsq.storeExecute(s1, 0x1000, 4, 0xAAAA, order);
    lsq.storeExecute(s2, 0x1000, 4, 0xBBBB, order);
    const i32 ld = lsq.allocLoad(0, 1, 5);
    const auto r = lsq.loadIssue(ld, 0x1000, 4, order);
    ASSERT_EQ(r.kind, Lsq::LoadIssueResult::Forward);
    EXPECT_EQ(r.store_id, s2) << "latest earlier store wins";
    EXPECT_FALSE(r.cross_thread);
    EXPECT_EQ(Lsq::extractStoreBytes(lsq.store(r.store_id), 0x1000, 4),
              0xBBBBu);
}

TEST_F(LsqTest, YoungerStoreDoesNotForward)
{
    const i32 st = lsq.allocStore(0, 1, 10);
    lsq.storeExecute(st, 0x1000, 4, 0xAAAA, order);
    const i32 ld = lsq.allocLoad(0, 1, 5); // older than the store
    const auto r = lsq.loadIssue(ld, 0x1000, 4, order);
    EXPECT_EQ(r.kind, Lsq::LoadIssueResult::Memory);
}

TEST_F(LsqTest, CrossThreadForwardFlagged)
{
    const i32 st = lsq.allocStore(0, 1, 1);
    lsq.storeExecute(st, 0x2000, 4, 7, order);
    const i32 ld = lsq.allocLoad(1, 1, 0);
    const auto r = lsq.loadIssue(ld, 0x2000, 4, order);
    ASSERT_EQ(r.kind, Lsq::LoadIssueResult::Forward);
    EXPECT_TRUE(r.cross_thread) << "paper charges +2 cycles for this";
}

TEST_F(LsqTest, SubWordExtraction)
{
    const i32 st = lsq.allocStore(0, 1, 1);
    lsq.storeExecute(st, 0x1000, 4, 0xDDCCBBAA, order);
    const i32 ld = lsq.allocLoad(0, 1, 2);
    const auto r = lsq.loadIssue(ld, 0x1001, 1, order);
    ASSERT_EQ(r.kind, Lsq::LoadIssueResult::Forward);
    EXPECT_EQ(Lsq::extractStoreBytes(lsq.store(st), 0x1001, 1), 0xBBu);
    EXPECT_EQ(Lsq::extractStoreBytes(lsq.store(st), 0x1002, 2),
              0xDDCCu);
}

TEST_F(LsqTest, PartialOverlapStalls)
{
    const i32 st = lsq.allocStore(0, 1, 1);
    lsq.storeExecute(st, 0x1001, 1, 0xFF, order); // byte store
    const i32 ld = lsq.allocLoad(0, 1, 2);
    const auto r = lsq.loadIssue(ld, 0x1000, 4, order); // word load
    EXPECT_EQ(r.kind, Lsq::LoadIssueResult::Stall);
    EXPECT_EQ(r.store_id, st);
}

TEST_F(LsqTest, ViolationWhenStoreExecutesLate)
{
    // Later-thread load issues first, reading memory.
    const i32 ld = lsq.allocLoad(1, 1, 0);
    lsq.loadIssue(ld, 0x3000, 4, order);
    lsq.setLoadValue(ld, 0);
    // Earlier-thread store then executes to the same address.
    const i32 st = lsq.allocStore(0, 1, 0);
    const auto v = lsq.storeExecute(st, 0x3000, 4, 123, order);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0], ld);
}

TEST_F(LsqTest, SilentStoreIsNotAViolation)
{
    const i32 ld = lsq.allocLoad(1, 1, 0);
    lsq.loadIssue(ld, 0x3000, 4, order);
    lsq.setLoadValue(ld, 123); // load happened to observe 123
    const i32 st = lsq.allocStore(0, 1, 0);
    const auto v = lsq.storeExecute(st, 0x3000, 4, 123, order);
    EXPECT_TRUE(v.empty()) << "identical bytes: no recovery needed";
}

TEST_F(LsqTest, NoViolationForEarlierLoads)
{
    const i32 ld = lsq.allocLoad(0, 1, 0); // earlier than the store
    lsq.loadIssue(ld, 0x3000, 4, order);
    const i32 st = lsq.allocStore(0, 1, 5);
    const auto v = lsq.storeExecute(st, 0x3000, 4, 1, order);
    EXPECT_TRUE(v.empty());
}

TEST_F(LsqTest, ShadowingStoreSuppressesViolation)
{
    // Store A (t0/#0), store B (t0/#2), load (t0/#4) forwarded from B.
    const i32 sa = lsq.allocStore(0, 1, 0);
    const i32 sb = lsq.allocStore(0, 1, 2);
    lsq.storeExecute(sb, 0x4000, 4, 7, order);
    const i32 ld = lsq.allocLoad(0, 1, 4);
    const auto r = lsq.loadIssue(ld, 0x4000, 4, order);
    ASSERT_EQ(r.kind, Lsq::LoadIssueResult::Forward);
    lsq.setLoadValue(ld, 7);
    // A executes later with different data, but B shadows it.
    const auto v = lsq.storeExecute(sa, 0x4000, 4, 99, order);
    EXPECT_TRUE(v.empty());
}

TEST_F(LsqTest, StoreReexecutionWithNewAddress)
{
    const i32 st = lsq.allocStore(0, 1, 0);
    lsq.storeExecute(st, 0x5000, 4, 1, order);
    const i32 ld = lsq.allocLoad(1, 1, 0);
    const auto r = lsq.loadIssue(ld, 0x5000, 4, order);
    ASSERT_EQ(r.kind, Lsq::LoadIssueResult::Forward);
    lsq.setLoadValue(ld, 1);
    // Recovery re-executes the store to a different address: the load
    // that forwarded from it under the old address is stale.
    const auto v = lsq.storeExecute(st, 0x6000, 4, 1, order);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0], ld);
}

TEST_F(LsqTest, SquashedStoreOrphansForwardees)
{
    const i32 st = lsq.allocStore(0, 1, 0);
    lsq.storeExecute(st, 0x7000, 4, 5, order);
    const i32 ld = lsq.allocLoad(1, 1, 0);
    lsq.loadIssue(ld, 0x7000, 4, order);
    const auto res = lsq.freeStore(st, true);
    ASSERT_EQ(res.orphaned_loads.size(), 1u);
    EXPECT_EQ(res.orphaned_loads[0], ld);
    EXPECT_EQ(lsq.load(ld).fwd_store, -1);
}

TEST_F(LsqTest, DrainedStoreDoesNotOrphan)
{
    const i32 st = lsq.allocStore(0, 1, 0);
    lsq.storeExecute(st, 0x7000, 4, 5, order);
    const i32 ld = lsq.allocLoad(1, 1, 0);
    lsq.loadIssue(ld, 0x7000, 4, order);
    lsq.storeRetired(st, 1);
    const auto res = lsq.freeStore(st, false);
    EXPECT_TRUE(res.orphaned_loads.empty());
    EXPECT_EQ(lsq.load(ld).fwd_store, -1) << "dangling ref cleared";
}

TEST_F(LsqTest, RetiredStoresPrecedeEverything)
{
    // A store marked retired forwards to any live load even if its
    // owning thread id would sort after (contexts get recycled).
    const i32 st = lsq.allocStore(3, 1, 999);
    lsq.storeExecute(st, 0x8000, 4, 42, order);
    lsq.storeRetired(st, 7);
    const i32 ld = lsq.allocLoad(0, 1, 0);
    const auto r = lsq.loadIssue(ld, 0x8000, 4, order);
    ASSERT_EQ(r.kind, Lsq::LoadIssueResult::Forward);
    EXPECT_EQ(r.store_id, st);
}

TEST_F(LsqTest, OverlapAndContainment)
{
    EXPECT_TRUE(Lsq::overlaps(0x100, 4, 0x102, 2));
    EXPECT_FALSE(Lsq::overlaps(0x100, 4, 0x104, 4));
    EXPECT_TRUE(Lsq::contains(0x102, 2, 0x100, 4));
    EXPECT_FALSE(Lsq::contains(0x100, 4, 0x102, 2));
    EXPECT_TRUE(Lsq::contains(0x100, 4, 0x100, 4));
}

TEST_F(LsqTest, ReissueMovesAddressIndex)
{
    const i32 ld = lsq.allocLoad(0, 1, 5);
    lsq.loadIssue(ld, 0x1000, 4, order);
    // Re-issue (recovery) at a different address: a store to the old
    // address must no longer see it.
    lsq.loadIssue(ld, 0x9000, 4, order);
    const i32 st = lsq.allocStore(0, 1, 0);
    auto v = lsq.storeExecute(st, 0x1000, 4, 77, order);
    EXPECT_TRUE(v.empty());
    const i32 st2 = lsq.allocStore(0, 1, 1);
    v = lsq.storeExecute(st2, 0x9000, 4, 77, order);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0], ld);
}

TEST_F(LsqTest, RandomChurnKeepsAccounting)
{
    // Random allocate/issue/execute/free churn: per-thread counts must
    // track, quotas must hold, and freed slots must be reusable.
    Rng rng(0xC0FFEE);
    std::vector<i32> live_loads;
    std::vector<i32> live_stores;
    for (int step = 0; step < 5000; ++step) {
        const ThreadId tid = static_cast<ThreadId>(rng.below(4));
        switch (rng.below(5)) {
          case 0: {
              const i32 id = lsq.allocLoad(
                  tid, 1, static_cast<u64>(step));
              if (id >= 0)
                  live_loads.push_back(id);
              else
                  EXPECT_TRUE(lsq.lqFull(tid));
              break;
          }
          case 1: {
              const i32 id = lsq.allocStore(
                  tid, 1, static_cast<u64>(step));
              if (id >= 0)
                  live_stores.push_back(id);
              else
                  EXPECT_TRUE(lsq.sqFull(tid));
              break;
          }
          case 2:
            if (!live_loads.empty()) {
                const size_t k = rng.below(live_loads.size());
                lsq.loadIssue(live_loads[k],
                              0x1000 + static_cast<Addr>(
                                  rng.below(64)) * 4,
                              4, order);
            }
            break;
          case 3:
            if (!live_loads.empty()) {
                const size_t k = rng.below(live_loads.size());
                lsq.freeLoad(live_loads[k]);
                live_loads.erase(live_loads.begin()
                                 + static_cast<long>(k));
            }
            break;
          case 4:
            if (!live_stores.empty()) {
                const size_t k = rng.below(live_stores.size());
                if (rng.chance(0.6)) {
                    lsq.storeExecute(live_stores[k],
                                     0x1000 + static_cast<Addr>(
                                         rng.below(64)) * 4,
                                     4, rng.next32(), order);
                } else {
                    lsq.freeStore(live_stores[k], rng.chance(0.5));
                    live_stores.erase(live_stores.begin()
                                      + static_cast<long>(k));
                }
            }
            break;
        }
    }
    // Drain everything; all quotas must return to zero.
    for (i32 id : live_loads)
        lsq.freeLoad(id);
    for (i32 id : live_stores)
        lsq.freeStore(id, true);
    for (ThreadId tid = 0; tid < 4; ++tid) {
        EXPECT_EQ(lsq.loadCount(tid), 0);
        EXPECT_EQ(lsq.storeCount(tid), 0);
        EXPECT_FALSE(lsq.lqFull(tid));
        EXPECT_FALSE(lsq.sqFull(tid));
    }
}

} // namespace
} // namespace dmt
