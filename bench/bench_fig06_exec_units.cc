/**
 * @file
 * Figure 6: a 2-fetch-port DMT processor with realistic execution
 * resources (4 ALUs with 2 shared by address generation, 1 mul/div,
 * 2 DCache ports; latencies 1/3/20, 3-cycle loads) compared to the
 * ideal machine with unlimited units.  Speedups are computed over the
 * baseline with the matching execution-resource model, so the columns
 * isolate what the FU limits cost DMT itself.
 */

#include "bench_common.hh"

int
benchMain()
{
    using namespace dmt;
    Report rep(
        "Figure 6: realistic vs ideal execution units (2 fetch ports)",
        "paper: very little drop in speedup from the ideal machine");

    std::vector<std::string> headers{"workload", "4T-real", "4T-ideal",
                                     "6T-real", "6T-ideal"};
    rep.columns(headers);

    const std::vector<BenchColumn> machines = {
        {"base-real", exp::baseline(true)},
        {"base-ideal", exp::baseline(false)},
        {"4T-real", exp::fig6Dmt(4, true)},
        {"4T-ideal", exp::fig6Dmt(4, false)},
        {"6T-real", exp::fig6Dmt(6, true)},
        {"6T-ideal", exp::fig6Dmt(6, false)},
    };
    const SuiteSweep sweep = sweepGrid(machines);

    const auto &suite = workloadSuite();
    for (size_t wi = 0; wi < suite.size(); ++wi) {
        const std::vector<SweepCell> &cells = sweep.cells[wi];
        bool all_ok = true;
        for (const SweepCell &c : cells)
            all_ok = all_ok && c.ok;
        if (!all_ok) {
            warn("bench: skipping %s (a run failed)", suite[wi].name);
            continue;
        }
        const RunResult &base_real = cells[0].result;
        const RunResult &base_ideal = cells[1].result;
        rep.row(suite[wi].name,
                {speedupPct(base_real, cells[2].result),
                 speedupPct(base_ideal, cells[3].result),
                 speedupPct(base_real, cells[4].result),
                 speedupPct(base_ideal, cells[5].result)});
    }
    rep.averageRow();
    rep.print();
    return 0;
}
