/**
 * @file
 * Figure 6: a 2-fetch-port DMT processor with realistic execution
 * resources (4 ALUs with 2 shared by address generation, 1 mul/div,
 * 2 DCache ports; latencies 1/3/20, 3-cycle loads) compared to the
 * ideal machine with unlimited units.  Speedups are computed over the
 * baseline with the matching execution-resource model, so the columns
 * isolate what the FU limits cost DMT itself.
 */

#include "bench_common.hh"

int
benchMain()
{
    using namespace dmt;
    Report rep(
        "Figure 6: realistic vs ideal execution units (2 fetch ports)",
        "paper: very little drop in speedup from the ideal machine");

    std::vector<std::string> headers{"workload", "4T-real", "4T-ideal",
                                     "6T-real", "6T-ideal"};
    rep.columns(headers);

    for (const WorkloadInfo &w : workloadSuite()) {
        const RunResult base_real =
            runWorkload(exp::baseline(true), w.name);
        const RunResult base_ideal =
            runWorkload(exp::baseline(false), w.name);
        std::vector<double> row;
        for (int threads : {4, 6}) {
            const RunResult real =
                runWorkload(exp::fig6Dmt(threads, true), w.name);
            const RunResult ideal =
                runWorkload(exp::fig6Dmt(threads, false), w.name);
            row.push_back(speedupPct(base_real, real));
            row.push_back(speedupPct(base_ideal, ideal));
        }
        rep.row(w.name, row);
        std::fprintf(stderr, ".");
        std::fflush(stderr);
    }
    std::fprintf(stderr, "\n");
    rep.averageRow();
    rep.print();
    return 0;
}
