/**
 * @file
 * Figure 4: performance vs. number of threads.  DMT with 2 fetch ports
 * (two rename units), unlimited execution units, 128-entry window and
 * 500-instruction trace buffers, at 1..8 thread contexts; percentage
 * speedup over the 4-wide, 128-window baseline superscalar.
 */

#include "bench_common.hh"

int
benchMain()
{
    using namespace dmt;
    Report rep(
        "Figure 4: speedup vs number of threads "
        "(2 fetch ports, unlimited execution units)",
        "significant gains up to 6 threads, little above; >35% average "
        "at 8 threads; anomalies possible from sub-optimal thread "
        "selection (paper saw them on li/m88ksim)");

    std::vector<BenchColumn> cols;
    for (int threads : {2, 4, 6, 8})
        cols.push_back({strprintf("%dT", threads),
                        exp::fig4Dmt(threads)});
    speedupTable(rep, cols, "fig04");
    rep.print();
    return 0;
}
