/**
 * @file
 * Phase-aware vs uniform sampling accuracy (DESIGN.md section 17): for
 * every suite kernel plus a spread of generated-family instances, run
 * full-detail simulation as ground truth, then estimate CPI three ways
 * — uniform interval sampling, uniform capped to the same number of
 * windows the phase mode uses (matched measured-instruction budget),
 * and phase-aware sampling (DMT_SAMPLE=phase:...) — each from cold
 * caches so wall clocks include the profiling/checkpointing they
 * require.  The table reports per-workload CPI error against full
 * detail, the confidence-interval width, detailed instructions spent
 * and wall clock; BENCH_phase.json archives everything.  The headline
 * claim this bench defends: phase placement matches or beats uniform
 * accuracy while spending several times fewer detailed instructions.
 */

#include "bench_common.hh"

#include <cmath>

#include "exp/phase.hh"
#include "workloads/generator.hh"

namespace
{

/** One sampling mode's estimate for one workload. */
struct ModeResult
{
    double cpi = 0.0;
    double ci95 = 0.0;
    double err_pct = 0.0;  ///< |cpi - full| / full * 100
    dmt::u64 windows = 0;
    dmt::u64 detailed = 0; ///< detailed (warm + measured) instructions
    dmt::u64 covered = 0;
    double wall_s = 0.0;
    dmt::u64 phase_k = 0;  ///< phase mode only
};

struct WorkloadRow
{
    std::string name;
    double full_cpi = 0.0;
    dmt::u64 full_instr = 0;
    double full_wall_s = 0.0;
    ModeResult uniform, matched, phase;
};

/** The comparison suite: all 8 kernels plus one instance per
 *  generated family, knobs sized so the run fills the budget. */
std::vector<std::string>
phaseBenchSpecs()
{
    using namespace dmt;
    std::vector<std::string> specs;
    for (const WorkloadInfo &w : workloadSuite())
        specs.emplace_back(w.name);
    specs.emplace_back("gen:loopnest:21:trips=200:units=48");
    specs.emplace_back("gen:branchy:7:trips=60000");
    specs.emplace_back("gen:alias:3:trips=80000");
    specs.emplace_back("gen:ptrchase:5:trips=50000:units=2048");
    return specs;
}

ModeResult
runMode(const dmt::SimConfig &cfg, const std::string &workload,
        const dmt::SampleParams &p, dmt::u64 budget, double full_cpi)
{
    using namespace dmt;
    // Cold caches: each mode pays for its own profiling/checkpoints,
    // so wall clocks compare the full cost of the approach.
    clearCheckpointCache();
    clearPhaseCache();
    const RunResult r = runWorkloadSampled(cfg, workload, p, budget);
    ModeResult m;
    m.cpi = r.sampling.cpi_mean;
    m.ci95 = r.sampling.cpi_ci95;
    m.err_pct = full_cpi > 0.0
        ? std::fabs(m.cpi - full_cpi) / full_cpi * 100.0 : 0.0;
    m.windows = r.sampling.intervals;
    m.covered = r.sampling.covered;
    m.detailed = r.sampling.covered - r.sampling.functional_instr;
    m.wall_s = r.wall_s;
    m.phase_k = r.sampling.phase_k;
    return m;
}

void
modeJsonOn(dmt::JsonWriter &w, const ModeResult &m)
{
    w.beginObject();
    w.key("cpi").value(m.cpi);
    w.key("ci95").value(m.ci95);
    w.key("err_pct").value(m.err_pct);
    w.key("windows").value(m.windows);
    w.key("detailed_instr").value(m.detailed);
    w.key("covered").value(m.covered);
    w.key("wall_s").value(m.wall_s);
    if (m.phase_k > 0)
        w.key("phase_k").value(m.phase_k);
    w.endObject();
}

} // namespace

int
benchMain()
{
    using namespace dmt;

    // Whole programs (capped so gen:branchy stays bounded): the longer
    // the stream, the more windows uniform sampling must pay for while
    // the phase mode still pays k.  DMT_BENCH_INSTR can push further.
    const u64 budget = std::max<u64>(benchRunLength(), 2000000);
    const SimConfig cfg = SimConfig::dmt(6, 2);

    // Per-window depth differs deliberately: uniform spreads its
    // budget over every interval, so each window stays shallow; phase
    // runs only k windows, so it can afford warm/measure deep enough
    // to beat the cold-resume bias — that trade is the mode's point.
    SampleParams uniform;
    std::string perr;
    if (!SampleParams::parse("20000:2000:2000", &uniform, &perr))
        panic("uniform spec: %s", perr.c_str());
    SampleParams phase;
    if (!SampleParams::parse("phase:20000:4000:4000", &phase, &perr))
        panic("phase spec: %s", perr.c_str());

    std::vector<WorkloadRow> rows;
    for (const std::string &spec : phaseBenchSpecs()) {
        WorkloadRow row;
        row.name = canonicalWorkloadName(spec);

        const RunResult full = runWorkload(cfg, spec, budget);
        row.full_instr = full.retired;
        row.full_wall_s = full.wall_s;
        row.full_cpi = full.retired > 0
            ? static_cast<double>(full.cycles)
                  / static_cast<double>(full.retired)
            : 0.0;

        row.phase = runMode(cfg, spec, phase, budget, row.full_cpi);
        row.uniform = runMode(cfg, spec, uniform, budget, row.full_cpi);
        // Uniform at the phase mode's measured-instruction budget:
        // what the same detailed spend buys without phase placement.
        SampleParams matched = uniform;
        matched.max_intervals = std::max<u64>(
            row.phase.detailed / (uniform.warm + uniform.measure), 1);
        row.matched = runMode(cfg, spec, matched, budget, row.full_cpi);

        if (!benchQuiet()) {
            std::fprintf(stderr,
                         "phase bench: %-40s full %.4f  uniform %.4f "
                         "(%llu win)  phase %.4f (k=%llu)\n",
                         row.name.c_str(), row.full_cpi,
                         row.uniform.cpi,
                         static_cast<unsigned long long>(
                             row.uniform.windows),
                         row.phase.cpi,
                         static_cast<unsigned long long>(
                             row.phase.phase_k));
        }
        rows.push_back(std::move(row));
    }

    // Aggregates: mean absolute CPI error and total detailed
    // instructions per mode.
    double err_u = 0.0, err_m = 0.0, err_p = 0.0;
    u64 det_u = 0, det_m = 0, det_p = 0;
    for (const WorkloadRow &row : rows) {
        err_u += row.uniform.err_pct;
        err_m += row.matched.err_pct;
        err_p += row.phase.err_pct;
        det_u += row.uniform.detailed;
        det_m += row.matched.detailed;
        det_p += row.phase.detailed;
    }
    const double n = static_cast<double>(rows.size());
    err_u /= n;
    err_m /= n;
    err_p /= n;
    const double reduction = det_p > 0
        ? static_cast<double>(det_u) / static_cast<double>(det_p) : 0.0;

    std::printf("phase vs uniform sampling, %llu instr budget, "
                "%zu workloads (spec %s)\n",
                static_cast<unsigned long long>(budget), rows.size(),
                phase.canonicalSpec().c_str());
    std::printf("%-40s %9s %9s %8s %9s %8s %9s %8s %6s\n", "workload",
                "full_cpi", "uni_cpi", "err%", "match_cpi", "err%",
                "phase_cpi", "err%", "k");
    for (const WorkloadRow &row : rows) {
        std::printf("%-40s %9.4f %9.4f %8.2f %9.4f %8.2f %9.4f %8.2f "
                    "%6llu\n",
                    row.name.c_str(), row.full_cpi, row.uniform.cpi,
                    row.uniform.err_pct, row.matched.cpi,
                    row.matched.err_pct, row.phase.cpi,
                    row.phase.err_pct,
                    static_cast<unsigned long long>(row.phase.phase_k));
    }
    std::printf("mean |CPI error|: uniform %.2f%%, uniform-matched "
                "%.2f%%, phase %.2f%%\n",
                err_u, err_m, err_p);
    std::printf("detailed instructions: uniform %llu, matched %llu, "
                "phase %llu (%.1fx fewer than uniform)\n",
                static_cast<unsigned long long>(det_u),
                static_cast<unsigned long long>(det_m),
                static_cast<unsigned long long>(det_p), reduction);

    JsonWriter w;
    w.beginObject();
    w.key("artifact").value(std::string_view("phase"));
    w.key("budget").value(budget);
    w.key("uniform_spec")
        .value(std::string_view(uniform.canonicalSpec()));
    w.key("phase_spec").value(std::string_view(phase.canonicalSpec()));
    w.key("config");
    cfg.jsonOn(w);
    w.key("workloads").beginArray();
    for (const WorkloadRow &row : rows) {
        w.beginObject();
        w.key("workload").value(std::string_view(row.name));
        w.key("full_cpi").value(row.full_cpi);
        w.key("full_instr").value(row.full_instr);
        w.key("full_wall_s").value(row.full_wall_s);
        w.key("uniform");
        modeJsonOn(w, row.uniform);
        w.key("uniform_matched");
        modeJsonOn(w, row.matched);
        w.key("phase");
        modeJsonOn(w, row.phase);
        w.endObject();
    }
    w.endArray();
    w.key("summary");
    w.beginObject();
    w.key("mean_err_pct_uniform").value(err_u);
    w.key("mean_err_pct_uniform_matched").value(err_m);
    w.key("mean_err_pct_phase").value(err_p);
    w.key("detailed_instr_uniform").value(det_u);
    w.key("detailed_instr_uniform_matched").value(det_m);
    w.key("detailed_instr_phase").value(det_p);
    w.key("detail_reduction_vs_uniform").value(reduction);
    w.endObject();
    w.endObject();

    const std::string path = "BENCH_phase.json";
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("cannot write bench artifact %s", path.c_str());
        return 1;
    }
    const std::string doc = w.str() + "\n";
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    if (!benchQuiet())
        std::fprintf(stderr, "wrote %s\n", path.c_str());
    return 0;
}
