/**
 * @file
 * Figure 13: impact of the trace buffer (recovery startup) latency.
 * With a pipelined walk the latency is paid once per recovery
 * sequence, so performance is tolerant of a slow second-level buffer.
 */

#include "bench_common.hh"

int
benchMain()
{
    using namespace dmt;
    Report rep(
        "Figure 13: speedup vs trace buffer latency (4 threads)",
        "good tolerance: the latency is incurred once at the start of "
        "each recovery sequence");

    std::vector<BenchColumn> cols;
    for (int lat : {2, 4, 8, 16})
        cols.push_back({strprintf("lat%d", lat), exp::fig13Dmt(lat)});
    speedupTable(rep, cols, "fig13");
    rep.print();
    return 0;
}
