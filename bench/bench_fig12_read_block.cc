/**
 * @file
 * Figure 12: speedup vs. the trace buffer instruction-queue read block
 * size during recovery (2, 4 or 6 entries per cycle, plus an ideal
 * queue with unbounded read bandwidth).  The paper concludes the
 * required read bandwidth is modest.
 */

#include "bench_common.hh"

int
benchMain()
{
    using namespace dmt;
    Report rep(
        "Figure 12: speedup vs recovery read block size (4 threads)",
        "block size 4 is close to the ideal queue — recovery read "
        "bandwidth requirements are not excessive");

    std::vector<BenchColumn> cols;
    for (int blk : {2, 4, 6})
        cols.push_back({strprintf("block%d", blk), exp::fig12Dmt(blk)});
    cols.push_back({"ideal", exp::fig12Dmt(0)});
    speedupTable(rep, cols, "fig12");
    rep.print();
    return 0;
}
