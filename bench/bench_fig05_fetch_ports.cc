/**
 * @file
 * Figure 5: performance vs. number of fetch ports on a 4-thread DMT
 * processor (equivalent rename units), unlimited execution units.
 * The paper's headline: even with ONE fetch port — i.e. no more fetch
 * bandwidth than the baseline itself — DMT comes out ahead.
 */

#include "bench_common.hh"

int
benchMain()
{
    using namespace dmt;
    Report rep(
        "Figure 5: speedup vs fetch ports (4 threads, unlimited FUs)",
        "DMT outperforms the base superscalar even at equal total "
        "fetch bandwidth (1 port); paper saw ~15% with 1 port");

    std::vector<BenchColumn> cols;
    for (int ports : {1, 2, 4})
        cols.push_back({strprintf("%dport", ports),
                        exp::fig5Dmt(ports)});
    speedupTable(rep, cols, "fig05");
    rep.print();
    return 0;
}
