/**
 * @file
 * Figure 10: the dataflow (last-modifier) predictor's contribution on
 * a 4-thread processor — speedup with value prediction only versus
 * value plus dataflow prediction.
 */

#include "bench_common.hh"

int
benchMain()
{
    using namespace dmt;
    Report rep(
        "Figure 10: value prediction only vs value + dataflow "
        "prediction (4 threads, 2 ports)",
        "dataflow prediction promptly supplies procedure-modified "
        "inputs; it adds speedup on the call-heavy benchmarks");

    std::vector<BenchColumn> cols = {
        {"value-only", exp::fig10Dmt(false)},
        {"value+df", exp::fig10Dmt(true)},
    };
    speedupTable(rep, cols, "fig10");
    rep.print();
    return 0;
}
