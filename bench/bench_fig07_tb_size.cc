/**
 * @file
 * Figure 7: performance impact of the trace buffer size on a 6-thread
 * processor.  The paper finds that ~200 instructions per thread nearly
 * saturates performance (measured thread sizes were 50-130).
 */

#include "bench_common.hh"

int
benchMain()
{
    using namespace dmt;
    Report rep(
        "Figure 7: speedup vs trace buffer size (6 threads, 2 ports)",
        "'200 instructions per thread' almost achieves maximum "
        "performance; average thread size 50-130");

    std::vector<BenchColumn> cols;
    for (int tb : {25, 50, 100, 200, 500})
        cols.push_back({strprintf("tb%d", tb), exp::fig7Dmt(tb)});
    speedupTable(rep, cols, "fig07");
    rep.print();
    return 0;
}
