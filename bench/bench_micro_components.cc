/**
 * @file
 * google-benchmark microbenchmarks of the simulator's own components —
 * not a paper figure, but they keep the substrate honest (and explain
 * where simulation wall-clock goes).
 */

#include <benchmark/benchmark.h>

#include "branch/predictor.hh"
#include "casm/assembler.hh"
#include "common/rng.hh"
#include "dmt/engine.hh"
#include "dmt/trace_buffer.hh"
#include "memory/hierarchy.hh"
#include "sim/functional.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace dmt;

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache({"bench", 16 * 1024, 2, 32});
    Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(static_cast<Addr>(rng.below(1 << 18)), false));
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_GsharePredictUpdate(benchmark::State &state)
{
    Gshare g(16, 12);
    Rng rng(2);
    u32 h = 0;
    for (auto _ : state) {
        const Addr pc = static_cast<Addr>(rng.below(1 << 20)) * 4;
        const bool taken = g.predict(pc, h);
        g.update(pc, h, !taken);
        h = g.pushHistory(h, taken);
        benchmark::DoNotOptimize(h);
    }
}
BENCHMARK(BM_GsharePredictUpdate);

void
BM_TraceBufferAppend(benchmark::State &state)
{
    TraceBuffer tb;
    tb.reset(512);
    Rng rng(3);
    for (auto _ : state) {
        if (tb.full()) {
            state.PauseTiming();
            tb.reset(512);
            state.ResumeTiming();
        }
        TBEntry e;
        e.inst = Instruction{Opcode::ADD,
                             static_cast<LogReg>(rng.below(32)),
                             static_cast<LogReg>(rng.below(32)),
                             static_cast<LogReg>(rng.below(32)), 0};
        benchmark::DoNotOptimize(tb.append(e));
    }
}
BENCHMARK(BM_TraceBufferAppend);

void
BM_FunctionalStep(benchmark::State &state)
{
    const Program prog = mkSumLoop(1 << 30);
    ArchState st;
    MainMemory mem;
    st.reset(prog);
    mem.loadProgram(prog);
    for (auto _ : state)
        benchmark::DoNotOptimize(functionalStep(st, mem, prog).pc);
}
BENCHMARK(BM_FunctionalStep);

void
BM_AssembleSource(benchmark::State &state)
{
    std::string src;
    for (int i = 0; i < 200; ++i)
        src += "addi $t0, $t0, 1\n";
    src += "halt\n";
    for (auto _ : state) {
        AsmResult r = assembleSource(src);
        benchmark::DoNotOptimize(r.ok);
    }
}
BENCHMARK(BM_AssembleSource);

void
BM_BaselineCycles(benchmark::State &state)
{
    const Program prog = mkSumLoop(1 << 30);
    for (auto _ : state) {
        state.PauseTiming();
        SimConfig cfg = SimConfig::baseline();
        cfg.max_cycles = 2000;
        DmtEngine e(cfg, prog);
        state.ResumeTiming();
        e.run();
        benchmark::DoNotOptimize(e.stats().retired.value());
    }
    state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_BaselineCycles)->Unit(benchmark::kMicrosecond);

void
BM_DmtCycles(benchmark::State &state)
{
    const Program prog = buildWorkload("go");
    for (auto _ : state) {
        state.PauseTiming();
        SimConfig cfg = SimConfig::dmt(6, 2);
        cfg.max_cycles = 2000;
        DmtEngine e(cfg, prog);
        state.ResumeTiming();
        e.run();
        benchmark::DoNotOptimize(e.stats().retired.value());
    }
    state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_DmtCycles)->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
