/**
 * @file
 * Figure 8: lookahead execution beyond mispredicted branches on a
 * 6-thread processor — the percentage of finally-retired instructions
 * that were fetched (and executed) while an earlier, eventually
 * mispredicted branch was still unresolved.  Identically zero on a
 * conventional superscalar.
 */

#include "bench_common.hh"

int
benchMain()
{
    using namespace dmt;
    Report rep(
        "Figure 8: % of retired instructions fetched/executed beyond "
        "an unresolved mispredicted branch (6 threads)",
        "nonzero everywhere on DMT, zero by construction on the "
        "baseline superscalar");
    rep.columns({"workload", "fetch%", "exec%", "base-fetch%"});

    for (const WorkloadInfo &w : workloadSuite()) {
        const RunResult r = runWorkload(exp::fig89Dmt(), w.name);
        const RunResult base = runWorkload(exp::baseline(), w.name);
        const double retired =
            static_cast<double>(r.stats.retired.value());
        rep.row(w.name,
                {100.0 * r.stats.la_fetch_beyond_mispredict.value()
                     / retired,
                 100.0 * r.stats.la_exec_beyond_mispredict.value()
                     / retired,
                 100.0 * base.stats.la_fetch_beyond_mispredict.value()
                     / static_cast<double>(base.stats.retired.value())});
        std::fprintf(stderr, ".");
        std::fflush(stderr);
    }
    std::fprintf(stderr, "\n");
    rep.averageRow();
    rep.print();
    return 0;
}
