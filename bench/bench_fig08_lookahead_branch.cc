/**
 * @file
 * Figure 8: lookahead execution beyond mispredicted branches on a
 * 6-thread processor — the percentage of finally-retired instructions
 * that were fetched (and executed) while an earlier, eventually
 * mispredicted branch was still unresolved.  Identically zero on a
 * conventional superscalar.
 */

#include "bench_common.hh"

int
benchMain()
{
    using namespace dmt;
    Report rep(
        "Figure 8: % of retired instructions fetched/executed beyond "
        "an unresolved mispredicted branch (6 threads)",
        "nonzero everywhere on DMT, zero by construction on the "
        "baseline superscalar");
    rep.columns({"workload", "fetch%", "exec%", "base-fetch%"});

    const SuiteSweep sweep = sweepGrid({{"6T", exp::fig89Dmt()},
                                        {"base", exp::baseline()}});
    const auto &suite = workloadSuite();
    for (size_t wi = 0; wi < suite.size(); ++wi) {
        const std::vector<SweepCell> &cells = sweep.cells[wi];
        if (!cells[0].ok || !cells[1].ok) {
            warn("bench: skipping %s (a run failed)", suite[wi].name);
            continue;
        }
        const RunResult &r = cells[0].result;
        const RunResult &base = cells[1].result;
        const double retired =
            static_cast<double>(r.stats.retired.value());
        rep.row(suite[wi].name,
                {100.0 * r.stats.la_fetch_beyond_mispredict.value()
                     / retired,
                 100.0 * r.stats.la_exec_beyond_mispredict.value()
                     / retired,
                 100.0 * base.stats.la_fetch_beyond_mispredict.value()
                     / static_cast<double>(base.stats.retired.value())});
    }
    rep.averageRow();
    rep.print();
    return 0;
}
