/**
 * @file
 * Shared plumbing for the figure benches: run the whole suite against
 * a set of machine configurations and tabulate speedups over the
 * baseline superscalar.
 */

#ifndef DMT_BENCH_BENCH_COMMON_HH
#define DMT_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/strutil.hh"
#include "exp/experiments.hh"
#include "exp/report.hh"
#include "exp/runner.hh"
#include "workloads/workloads.hh"

namespace dmt
{

/** One machine column in a speedup table. */
struct BenchColumn
{
    std::string name;
    SimConfig cfg;
};

/**
 * Run every suite workload on the baseline and on each column's
 * machine; fill @p rep with percentage speedups and an average row.
 * Returns the per-column, per-workload results for follow-up printing.
 */
inline std::map<std::string, std::vector<RunResult>>
speedupTable(Report &rep, const std::vector<BenchColumn> &columns,
             const SimConfig &base_cfg = exp::baseline())
{
    std::vector<std::string> headers{"workload"};
    for (const auto &c : columns)
        headers.push_back(c.name);
    rep.columns(headers);

    std::map<std::string, std::vector<RunResult>> results;
    for (const WorkloadInfo &w : workloadSuite()) {
        const RunResult base = runWorkload(base_cfg, w.name);
        std::vector<double> row;
        for (const auto &c : columns) {
            const RunResult r = runWorkload(c.cfg, w.name);
            row.push_back(speedupPct(base, r));
            results[c.name].push_back(r);
        }
        rep.row(w.name, row);
        std::fprintf(stderr, ".");
        std::fflush(stderr);
    }
    std::fprintf(stderr, "\n");
    rep.averageRow();
    return results;
}

} // namespace dmt

#endif // DMT_BENCH_BENCH_COMMON_HH
