/**
 * @file
 * Shared plumbing for the figure benches: run the whole suite against
 * a set of machine configurations through the parallel sweep pool
 * (DMT_JOBS workers), tabulate speedups over the baseline superscalar,
 * and optionally archive the full run as a machine-readable
 * BENCH_<tag>.json artifact.
 */

#ifndef DMT_BENCH_BENCH_COMMON_HH
#define DMT_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/log.hh"
#include "common/strutil.hh"
#include "exp/experiments.hh"
#include "exp/report.hh"
#include "exp/runner.hh"
#include "exp/sampled.hh"
#include "exp/sweep.hh"
#include "workloads/workloads.hh"

namespace dmt
{

/** One machine column in a speedup table. */
struct BenchColumn
{
    std::string name;
    SimConfig cfg;
};

/** True when per-workload progress logging is suppressed. */
inline bool
benchQuiet()
{
    const char *q = std::getenv("DMT_BENCH_QUIET");
    return q && *q && *q != '0';
}

/** The whole suite x a machine list, as cells[workload][machine]. */
struct SuiteSweep
{
    std::vector<std::vector<SweepCell>> cells;
    SweepStats stats;
};

/**
 * Fan every (workload, machine) pair out over the sweep pool and
 * collect the cells in deterministic grid order — workloads in
 * @p workloads order, machines in @p machines order — regardless of
 * completion order.  Workload names may be suite names or
 * gen:<family>:<seed>[:knob=value...] generator specs (family sweeps:
 * pass a list of specs varying one knob or the seed).  Failed cells
 * (SimError) come back with ok == false; callers decide row-skip
 * policy.  Progress goes to stderr in completion order unless
 * DMT_BENCH_QUIET is set.
 */
inline SuiteSweep
sweepGrid(const std::vector<std::string> &workloads,
          const std::vector<BenchColumn> &machines)
{
    SweepRunner pool;
    for (const std::string &w : workloads)
        for (const BenchColumn &m : machines)
            pool.add(m.cfg, w, 0, w + "/" + m.name);

    SweepRunner::Progress progress;
    if (!benchQuiet()) {
        const SampleParams sp = SampleParams::fromEnv();
        if (sp.enabled()) {
            std::fprintf(stderr,
                         "sampling: DMT_SAMPLE=%s — cycles/retired "
                         "cover measured windows only\n",
                         sp.canonicalSpec().c_str());
        }
        std::fprintf(stderr, "sweep: %zu jobs on %d worker(s)\n",
                     pool.size(), pool.poolWidth());
        progress = [](const SweepJob &job, const SweepCell &cell,
                      size_t done, size_t total) {
            std::fprintf(stderr, "[%zu/%zu] %s%s\n", done, total,
                         job.label.c_str(),
                         cell.ok ? "" : "  FAILED");
            std::fflush(stderr);
        };
    }
    const std::vector<SweepCell> &flat = pool.run(progress);

    SuiteSweep out;
    const size_t ncols = machines.size();
    out.cells.resize(workloads.size());
    for (size_t wi = 0; wi < out.cells.size(); ++wi) {
        out.cells[wi].assign(flat.begin()
                                 + static_cast<long>(wi * ncols),
                             flat.begin()
                                 + static_cast<long>((wi + 1) * ncols));
    }
    out.stats = pool.stats();
    return out;
}

/** The whole benchmark suite x a machine list (suite-order rows). */
inline SuiteSweep
sweepGrid(const std::vector<BenchColumn> &machines)
{
    std::vector<std::string> names;
    for (const WorkloadInfo &w : workloadSuite())
        names.emplace_back(w.name);
    return sweepGrid(names, machines);
}

/**
 * Write the complete outcome of a speedupTable() run — the rendered
 * table, every machine configuration, the full per-workload stat
 * blocks, and the sweep's timing/throughput aggregate — to
 * BENCH_<tag>.json for downstream plotting/diffing.
 */
inline void
writeBenchArtifact(const std::string &tag, const Report &rep,
                   const SimConfig &base_cfg,
                   const std::vector<BenchColumn> &columns,
                   const std::vector<RunResult> &base_runs,
                   const std::map<std::string,
                                  std::vector<RunResult>> &results,
                   const SweepStats *sweep = nullptr)
{
    JsonWriter w;
    w.beginObject();
    w.key("artifact").value(std::string_view(tag));
    w.key("table");
    rep.jsonOn(w);
    w.key("base_config");
    base_cfg.jsonOn(w);
    w.key("base_runs").beginArray();
    for (const RunResult &r : base_runs)
        r.jsonOn(w);
    w.endArray();
    w.key("columns").beginArray();
    for (const auto &c : columns) {
        w.beginObject();
        w.key("name").value(std::string_view(c.name));
        w.key("config");
        c.cfg.jsonOn(w);
        w.key("runs").beginArray();
        auto it = results.find(c.name);
        if (it != results.end()) {
            for (const RunResult &r : it->second)
                r.jsonOn(w);
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    if (sweep) {
        w.key("sweep");
        sweep->jsonOn(w);
    }
    w.endObject();

    const std::string path = "BENCH_" + tag + ".json";
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("cannot write bench artifact %s", path.c_str());
        return;
    }
    const std::string doc = w.str() + "\n";
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    if (!benchQuiet())
        std::fprintf(stderr, "wrote %s\n", path.c_str());
}

/**
 * Run every suite workload on the baseline and on each column's
 * machine — all through the sweep pool — and fill @p rep with
 * percentage speedups and an average row.  The table is byte-identical
 * for any pool width: rows keep suite order, and a workload whose
 * baseline or any column run failed (SimError) is skipped with a
 * warning, exactly like the serial path did.  When @p artifact is
 * non-empty the full results are archived to BENCH_<artifact>.json.
 * Returns the per-column, per-workload results for follow-up printing.
 */
inline std::map<std::string, std::vector<RunResult>>
speedupTable(Report &rep, const std::vector<BenchColumn> &columns,
             const std::string &artifact = "",
             const SimConfig &base_cfg = exp::baseline())
{
    std::vector<std::string> headers{"workload"};
    for (const auto &c : columns)
        headers.push_back(c.name);
    rep.columns(headers);

    std::vector<BenchColumn> machines;
    machines.push_back({"base", base_cfg});
    machines.insert(machines.end(), columns.begin(), columns.end());
    const SuiteSweep sweep = sweepGrid(machines);

    std::map<std::string, std::vector<RunResult>> results;
    std::vector<RunResult> base_runs;
    const auto &suite = workloadSuite();
    for (size_t wi = 0; wi < suite.size(); ++wi) {
        const char *wname = suite[wi].name;
        const std::vector<SweepCell> &row_cells = sweep.cells[wi];
        if (!row_cells[0].ok) {
            warn("bench: skipping %s (baseline failed: %s)", wname,
                 row_cells[0].error.c_str());
            continue;
        }
        bool row_ok = true;
        for (size_t ci = 0; ci < columns.size(); ++ci) {
            if (!row_cells[ci + 1].ok) {
                warn("bench: skipping %s (%s failed: %s)", wname,
                     columns[ci].name.c_str(),
                     row_cells[ci + 1].error.c_str());
                row_ok = false;
                break;
            }
        }
        if (!row_ok)
            continue;
        const RunResult &base = row_cells[0].result;
        std::vector<double> row;
        for (size_t ci = 0; ci < columns.size(); ++ci) {
            const RunResult &r = row_cells[ci + 1].result;
            row.push_back(speedupPct(base, r));
            results[columns[ci].name].push_back(r);
        }
        base_runs.push_back(base);
        rep.row(wname, row);
    }
    rep.averageRow();

    if (!benchQuiet()) {
        std::fprintf(stderr,
                     "sweep: %llu jobs, %.1fs wall, %.1fs busy "
                     "(%.2fx), %.2f Minstr/s\n",
                     static_cast<unsigned long long>(
                         sweep.stats.jobs_total),
                     sweep.stats.wall_seconds, sweep.stats.busy_seconds,
                     sweep.stats.parallelism(),
                     sweep.stats.throughput() / 1e6);
        const CheckpointCacheCounters ckpt = checkpointCacheCounters();
        if (ckpt.mem_hits + ckpt.disk_hits + ckpt.builds > 0) {
            std::fprintf(stderr,
                         "checkpoint cache: %llu mem hit(s), %llu "
                         "disk hit(s), %llu built\n",
                         static_cast<unsigned long long>(
                             ckpt.mem_hits),
                         static_cast<unsigned long long>(
                             ckpt.disk_hits),
                         static_cast<unsigned long long>(ckpt.builds));
        }
    }
    if (!artifact.empty()) {
        writeBenchArtifact(artifact, rep, base_cfg, columns, base_runs,
                           results, &sweep.stats);
    }
    return results;
}

} // namespace dmt

/** Implemented by each figure-bench translation unit. */
int benchMain();

/**
 * Shared entry point for the figure benches.  speedupTable() already
 * skips individual workloads whose runs throw; this catches a SimError
 * that escapes the sweep itself (e.g. a panic while building configs)
 * and turns it into a diagnostic plus exit status 1 instead of
 * std::terminate().
 */
int
main()
{
    try {
        return benchMain();
    } catch (const dmt::SimError &err) {
        std::fprintf(stderr, "bench: fatal: %s\n", err.what());
        return 1;
    }
}

#endif // DMT_BENCH_BENCH_COMMON_HH
