/**
 * @file
 * Shared plumbing for the figure benches: run the whole suite against
 * a set of machine configurations, tabulate speedups over the baseline
 * superscalar, and optionally archive the full run as a
 * machine-readable BENCH_<tag>.json artifact.
 */

#ifndef DMT_BENCH_BENCH_COMMON_HH
#define DMT_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/log.hh"
#include "common/strutil.hh"
#include "exp/experiments.hh"
#include "exp/report.hh"
#include "exp/runner.hh"
#include "workloads/workloads.hh"

namespace dmt
{

/** One machine column in a speedup table. */
struct BenchColumn
{
    std::string name;
    SimConfig cfg;
};

/** True when per-workload progress logging is suppressed. */
inline bool
benchQuiet()
{
    const char *q = std::getenv("DMT_BENCH_QUIET");
    return q && *q && *q != '0';
}

/**
 * Write the complete outcome of a speedupTable() run — the rendered
 * table, every machine configuration, and the full per-workload stat
 * blocks — to BENCH_<tag>.json for downstream plotting/diffing.
 */
inline void
writeBenchArtifact(const std::string &tag, const Report &rep,
                   const SimConfig &base_cfg,
                   const std::vector<BenchColumn> &columns,
                   const std::vector<RunResult> &base_runs,
                   const std::map<std::string,
                                  std::vector<RunResult>> &results)
{
    JsonWriter w;
    w.beginObject();
    w.key("artifact").value(std::string_view(tag));
    w.key("table");
    rep.jsonOn(w);
    w.key("base_config");
    base_cfg.jsonOn(w);
    w.key("base_runs").beginArray();
    for (const RunResult &r : base_runs)
        r.jsonOn(w);
    w.endArray();
    w.key("columns").beginArray();
    for (const auto &c : columns) {
        w.beginObject();
        w.key("name").value(std::string_view(c.name));
        w.key("config");
        c.cfg.jsonOn(w);
        w.key("runs").beginArray();
        auto it = results.find(c.name);
        if (it != results.end()) {
            for (const RunResult &r : it->second)
                r.jsonOn(w);
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();

    const std::string path = "BENCH_" + tag + ".json";
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("cannot write bench artifact %s", path.c_str());
        return;
    }
    const std::string doc = w.str() + "\n";
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    if (!benchQuiet())
        std::fprintf(stderr, "wrote %s\n", path.c_str());
}

/**
 * Run every suite workload on the baseline and on each column's
 * machine; fill @p rep with percentage speedups and an average row.
 * When @p artifact is non-empty the full results are archived to
 * BENCH_<artifact>.json.  Per-workload progress goes to stderr unless
 * DMT_BENCH_QUIET is set.
 * Returns the per-column, per-workload results for follow-up printing.
 */
inline std::map<std::string, std::vector<RunResult>>
speedupTable(Report &rep, const std::vector<BenchColumn> &columns,
             const std::string &artifact = "",
             const SimConfig &base_cfg = exp::baseline())
{
    std::vector<std::string> headers{"workload"};
    for (const auto &c : columns)
        headers.push_back(c.name);
    rep.columns(headers);

    const bool quiet = benchQuiet();
    const size_t total = workloadSuite().size();
    size_t done = 0;

    std::map<std::string, std::vector<RunResult>> results;
    std::vector<RunResult> base_runs;
    for (const WorkloadInfo &w : workloadSuite()) {
        ++done;
        if (!quiet) {
            std::fprintf(stderr, "[%zu/%zu] %s (%zu machines)\n", done,
                         total, w.name, columns.size() + 1);
            std::fflush(stderr);
        }
        // A wedged or miscomputing run (SimError) drops this workload
        // from the table with a warning instead of killing the sweep.
        RunResult base;
        try {
            base = runWorkload(base_cfg, w.name);
        } catch (const SimError &err) {
            warn("bench: skipping %s (baseline failed: %s)", w.name,
                 err.what());
            continue;
        }
        std::vector<double> row;
        std::vector<RunResult> col_runs;
        bool row_ok = true;
        for (const auto &c : columns) {
            try {
                const RunResult r = runWorkload(c.cfg, w.name);
                row.push_back(speedupPct(base, r));
                col_runs.push_back(r);
            } catch (const SimError &err) {
                warn("bench: skipping %s (%s failed: %s)", w.name,
                     c.name.c_str(), err.what());
                row_ok = false;
                break;
            }
        }
        if (!row_ok)
            continue;
        for (size_t i = 0; i < columns.size(); ++i)
            results[columns[i].name].push_back(col_runs[i]);
        base_runs.push_back(base);
        rep.row(w.name, row);
    }
    rep.averageRow();

    if (!artifact.empty()) {
        writeBenchArtifact(artifact, rep, base_cfg, columns, base_runs,
                           results);
    }
    return results;
}

} // namespace dmt

/** Implemented by each figure-bench translation unit. */
int benchMain();

/**
 * Shared entry point for the figure benches.  speedupTable() already
 * skips individual workloads whose runs throw; this catches a SimError
 * that escapes the sweep itself (e.g. a panic while building configs)
 * and turns it into a diagnostic plus exit status 1 instead of
 * std::terminate().
 */
int
main()
{
    try {
        return benchMain();
    } catch (const dmt::SimError &err) {
        std::fprintf(stderr, "bench: fatal: %s\n", err.what());
        return 1;
    }
}

#endif // DMT_BENCH_BENCH_COMMON_HH
