/**
 * @file
 * Figure 11: data prediction statistics — classification of live
 * thread input register values on the 4-thread machine:
 *  (1) available at the spawn point and correct,
 *  (2) written after spawn time with the same value,
 *  (3) corrected in time by the dataflow predictor,
 * and the combined hit rate (the paper reports >90% on most
 * benchmarks).
 */

#include "bench_common.hh"

int
benchMain()
{
    using namespace dmt;
    Report rep(
        "Figure 11: live thread-input value prediction breakdown "
        "(4 threads)",
        "combined hit rates above 90% for most benchmarks");
    rep.columns({"workload", "at-spawn%", "same-later%", "dataflow%",
                 "hit%"});

    for (const WorkloadInfo &w : workloadSuite()) {
        const RunResult r = runWorkload(exp::fig11Dmt(), w.name);
        const double used =
            std::max<u64>(r.stats.inputs_used.value(), 1);
        rep.row(w.name,
                {100.0 * r.stats.inputs_valid_at_spawn.value() / used,
                 100.0 * r.stats.inputs_same_later.value() / used,
                 100.0 * r.stats.inputs_df_correct.value() / used,
                 100.0 * r.stats.inputs_hit.value() / used});
        std::fprintf(stderr, ".");
        std::fflush(stderr);
    }
    std::fprintf(stderr, "\n");
    rep.averageRow();
    rep.print();
    return 0;
}
