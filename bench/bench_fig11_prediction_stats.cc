/**
 * @file
 * Figure 11: data prediction statistics — classification of live
 * thread input register values on the 4-thread machine:
 *  (1) available at the spawn point and correct,
 *  (2) written after spawn time with the same value,
 *  (3) corrected in time by the dataflow predictor,
 * and the combined hit rate (the paper reports >90% on most
 * benchmarks).
 */

#include "bench_common.hh"

int
benchMain()
{
    using namespace dmt;
    Report rep(
        "Figure 11: live thread-input value prediction breakdown "
        "(4 threads)",
        "combined hit rates above 90% for most benchmarks");
    rep.columns({"workload", "at-spawn%", "same-later%", "dataflow%",
                 "hit%"});

    const SuiteSweep sweep = sweepGrid({{"4T", exp::fig11Dmt()}});
    const auto &suite = workloadSuite();
    for (size_t wi = 0; wi < suite.size(); ++wi) {
        const SweepCell &cell = sweep.cells[wi][0];
        if (!cell.ok) {
            warn("bench: skipping %s (%s)", suite[wi].name,
                 cell.error.c_str());
            continue;
        }
        const RunResult &r = cell.result;
        const double used =
            std::max<u64>(r.stats.inputs_used.value(), 1);
        rep.row(suite[wi].name,
                {100.0 * r.stats.inputs_valid_at_spawn.value() / used,
                 100.0 * r.stats.inputs_same_later.value() / used,
                 100.0 * r.stats.inputs_df_correct.value() / used,
                 100.0 * r.stats.inputs_hit.value() / used});
    }
    rep.averageRow();
    rep.print();
    return 0;
}
