/**
 * @file
 * Section 4.4 reproduction: the trace buffer storage/bandwidth cost
 * arithmetic.  The paper argues a 6-thread, 200-instructions-per-thread
 * configuration needs ~19KB of instruction-queue + data-array storage,
 * that the instruction queue can be single ported, and that 4-way
 * interleaving with 3-deep write queues absorbs the data-array write
 * bandwidth.  This bench reproduces the arithmetic and validates the
 * bank-conflict claim with a Monte-Carlo writeback trace.
 */

#include <cstdio>

#include "common/rng.hh"
#include "common/strutil.hh"

int
main()
{
    using namespace dmt;

    std::printf("\n== Section 4.4: trace buffer cost arithmetic\n");

    const int threads = 6;
    const int insts_per_thread = 200;
    const int bytes_result = 8;   // result + tag state (paper: 8B)
    const int bytes_inst = 4;
    const int bytes_ctrl = 4;     // operand mappings, LSQ ids, ...

    const int total_insts = threads * insts_per_thread;
    const int total_bytes =
        total_insts * (bytes_result + bytes_inst + bytes_ctrl);
    std::printf("  capacity: %d threads x %d insts = %d entries\n",
                threads, insts_per_thread, total_insts);
    std::printf("  storage:  %d x (%d+%d+%d) bytes = %.1f KB "
                "(paper: ~19KB)\n",
                total_insts, bytes_result, bytes_inst, bytes_ctrl,
                total_bytes / 1024.0);

    // Load/store queue sizing rule: each at least 1/4 of a trace buffer.
    std::printf("  LSQ rule: lq = sq = tb/4 = %d entries per thread\n",
                insts_per_thread / 4);

    // Data-array write bandwidth: every issued instruction except
    // branches and stores writes a result.  Model a 4-way interleaved
    // single-write-port array with a 3-deep write queue per bank and
    // measure dropped (conflicting) writes over a synthetic writeback
    // trace at the paper's issue rates.
    std::printf("\n== Data array interleaving (Monte-Carlo)\n");
    for (const int banks : {1, 2, 4}) {
        for (const int queue_depth : {0, 1, 3}) {
            Rng rng(0xC057u);
            int occupancy[8] = {0};
            u64 conflicts = 0;
            u64 writes = 0;
            const int cycles = 200000;
            for (int cyc = 0; cyc < cycles; ++cyc) {
                // Each bank drains one write per cycle.
                for (int b = 0; b < banks; ++b)
                    if (occupancy[b] > 0)
                        --occupancy[b];
                // ~2.8 results written back per cycle (4-wide issue,
                // minus branches/stores), to consecutive entry ids.
                const int n = static_cast<int>(rng.range(1, 4));
                for (int i = 0; i < n; ++i) {
                    ++writes;
                    const int bank =
                        static_cast<int>(rng.below(
                            static_cast<u64>(banks)));
                    if (occupancy[bank] <= queue_depth)
                        ++occupancy[bank];
                    else
                        ++conflicts;
                }
            }
            std::printf("  banks=%d queue=%d : %6.3f%% writes stall "
                        "(paper: 4 banks + 3-deep queues eliminate "
                        "most conflicts)\n",
                        banks, queue_depth,
                        100.0 * static_cast<double>(conflicts)
                            / static_cast<double>(writes));
        }
    }

    std::printf("\n== Instruction queue porting\n");
    std::printf("  single read/write port suffices: blocks are written "
                "at fetch and read at recovery, never simultaneously "
                "(modeled by recovery_dispatch_stall=1)\n");
    return 0;
}
