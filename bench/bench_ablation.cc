/**
 * @file
 * Ablation bench (beyond the paper's figures): the design choices
 * DESIGN.md calls out, each toggled on the 4-thread machine —
 * early divergence repair vs the paper's retirement-time flush,
 * dataflow-sync vs speculate-and-recover, recovery stall policies, and
 * spawn-source restrictions (calls only / loops only).
 */

#include "bench_common.hh"

int
benchMain()
{
    using namespace dmt;
    Report rep(
        "Ablations: engine policy choices (4 threads, 2 ports)",
        "columns are speedup over the baseline; 'default' is the "
        "shipping configuration");

    std::vector<BenchColumn> cols;
    cols.push_back({"default", SimConfig::dmt(4, 2)});
    {
        SimConfig c = SimConfig::dmt(4, 2);
        c.early_divergence_repair = false;
        cols.push_back({"late-div", c});
    }
    {
        SimConfig c = SimConfig::dmt(4, 2);
        c.dataflow_sync = true;
        cols.push_back({"df-sync", c});
    }
    {
        SimConfig c = SimConfig::dmt(4, 2);
        c.recovery_fetch_stall = 2;
        c.recovery_dispatch_stall = 2;
        cols.push_back({"stall-all", c});
    }
    {
        SimConfig c = SimConfig::dmt(4, 2);
        c.spawn_on_loop = false;
        cols.push_back({"calls-only", c});
    }
    {
        SimConfig c = SimConfig::dmt(4, 2);
        c.spawn_on_call = false;
        cols.push_back({"loops-only", c});
    }

    speedupTable(rep, cols, "ablation");
    rep.print();
    return 0;
}
