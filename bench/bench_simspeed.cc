/**
 * @file
 * Host simulator throughput (Minstr/s), not simulated IPC: how many
 * simulated instructions per wall-clock second the engine retires on
 * each machine configuration across the whole workload suite.  This is
 * the harness behind any claimed simulator-speed optimization — run it
 * before and after, compare the dmt6 aggregate, and archive the result
 * as BENCH_simspeed.json (see DESIGN.md section 11).
 *
 * Runs are serial (pool width 1) so per-workload wall clocks are not
 * polluted by sibling jobs; each machine's suite sweep is repeated
 * DMT_SIMSPEED_REPS times (default 3) and the best repetition is
 * reported, which filters transient host noise the way best-of-N
 * microbenchmarks do.  DMT_BENCH_INSTR scales the run length.
 */

#include "bench_common.hh"

#include <chrono>

#include "common/env.hh"
#include "sim/functional_core.hh"

namespace
{

struct MachineSpeed
{
    std::string name;
    dmt::SimConfig cfg;
    double minstr_per_s = 0.0; ///< best-rep suite aggregate
    double wall_s = 0.0;       ///< wall clock of the best rep
    dmt::u64 retired = 0;      ///< suite retirements in one rep
    std::vector<dmt::SweepCell> cells; ///< best rep, suite order
};

/** One serial pass of the whole suite on @p cfg. */
dmt::SweepStats
sweepOnce(const dmt::SimConfig &cfg, std::vector<dmt::SweepCell> *cells)
{
    using namespace dmt;
    SweepRunner pool(1);
    for (const WorkloadInfo &w : workloadSuite())
        pool.add(cfg, w.name, 0, w.name);
    *cells = pool.run();
    for (const SweepCell &cell : *cells) {
        if (!cell.ok)
            panic("simspeed: %s", cell.error.c_str());
    }
    return pool.stats();
}

} // namespace

int
benchMain()
{
    using namespace dmt;

    const u64 reps =
        std::max<u64>(1, parseEnvU64("DMT_SIMSPEED_REPS", 3));
    const u64 budget = benchRunLength();

    std::vector<MachineSpeed> machines(2);
    machines[0].name = "baseline";
    machines[0].cfg = exp::baseline();
    machines[1].name = "dmt6";
    machines[1].cfg = SimConfig::dmt(6, 2);

    for (MachineSpeed &m : machines) {
        for (u64 rep = 0; rep < reps; ++rep) {
            std::vector<SweepCell> cells;
            const SweepStats stats = sweepOnce(m.cfg, &cells);
            const double mips = stats.throughput() / 1e6;
            if (!benchQuiet()) {
                std::fprintf(stderr,
                             "simspeed: %s rep %llu/%llu: %.3f "
                             "Minstr/s (%.2fs wall)\n",
                             m.name.c_str(),
                             static_cast<unsigned long long>(rep + 1),
                             static_cast<unsigned long long>(reps),
                             mips, stats.wall_seconds);
            }
            if (mips > m.minstr_per_s) {
                m.minstr_per_s = mips;
                m.wall_s = stats.wall_seconds;
                m.retired = stats.retired_total;
                m.cells = std::move(cells);
            }
        }
    }

    // Functional fast-forward throughput: full-program FunctionalCore
    // runs — the engine behind the checkpointed skip distance in
    // sampled mode (DMT_SAMPLE), so its ratio over dmt6 bounds how much
    // of a sampled run's wall clock the skips can cost.
    double func_mips = 0.0;
    double func_wall = 0.0;
    u64 func_instr = 0;
    for (u64 rep = 0; rep < reps; ++rep) {
        double wall = 0.0;
        u64 instr = 0;
        for (const WorkloadInfo &w : workloadSuite()) {
            const Program prog = buildWorkload(w.name);
            FunctionalCore core(prog);
            const auto t0 = std::chrono::steady_clock::now();
            core.run(~u64{0});
            wall += std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
            instr += core.instrCount();
        }
        const double mips = wall > 0.0 ? instr / wall / 1e6 : 0.0;
        if (!benchQuiet()) {
            std::fprintf(stderr,
                         "simspeed: functional rep %llu/%llu: %.3f "
                         "Minstr/s (%.2fs wall, full programs)\n",
                         static_cast<unsigned long long>(rep + 1),
                         static_cast<unsigned long long>(reps), mips,
                         wall);
        }
        if (mips > func_mips) {
            func_mips = mips;
            func_wall = wall;
            func_instr = instr;
        }
    }
    const double ff_ratio = machines[1].minstr_per_s > 0.0
        ? func_mips / machines[1].minstr_per_s : 0.0;

    // Aggregate over machines: total simulated work over total time,
    // each machine contributing its best rep.
    double total_wall = 0.0;
    u64 total_retired = 0;
    for (const MachineSpeed &m : machines) {
        total_wall += m.wall_s;
        total_retired += m.retired;
    }
    const double aggregate =
        total_wall > 0.0 ? total_retired / total_wall / 1e6 : 0.0;

    std::printf("simulator throughput, best of %llu rep(s), "
                "%llu instr/run\n",
                static_cast<unsigned long long>(reps),
                static_cast<unsigned long long>(budget));
    std::printf("%-10s %12s %10s %12s\n", "machine", "Minstr/s",
                "wall_s", "retired");
    for (const MachineSpeed &m : machines) {
        std::printf("%-10s %12.3f %10.2f %12llu\n", m.name.c_str(),
                    m.minstr_per_s, m.wall_s,
                    static_cast<unsigned long long>(m.retired));
    }
    std::printf("%-10s %12.3f %10.2f %12llu\n", "aggregate", aggregate,
                total_wall,
                static_cast<unsigned long long>(total_retired));
    std::printf("%-10s %12.3f %10.2f %12llu  (full programs, "
                "%.0fx dmt6)\n",
                "functional", func_mips, func_wall,
                static_cast<unsigned long long>(func_instr), ff_ratio);

    JsonWriter w;
    w.beginObject();
    w.key("artifact").value(std::string_view("simspeed"));
    w.key("instr_per_run").value(budget);
    w.key("reps").value(reps);
    w.key("aggregate_minstr_per_s").value(aggregate);
    w.key("functional");
    w.beginObject();
    w.key("minstr_per_s").value(func_mips);
    w.key("wall_s").value(func_wall);
    w.key("instr").value(func_instr);
    w.key("speedup_vs_dmt6").value(ff_ratio);
    w.endObject();
    w.key("machines").beginArray();
    for (const MachineSpeed &m : machines) {
        w.beginObject();
        w.key("name").value(std::string_view(m.name));
        w.key("minstr_per_s").value(m.minstr_per_s);
        w.key("wall_s").value(m.wall_s);
        w.key("retired").value(m.retired);
        w.key("config");
        m.cfg.jsonOn(w);
        w.key("workloads").beginArray();
        const auto &suite = workloadSuite();
        for (size_t wi = 0; wi < m.cells.size(); ++wi) {
            const SweepCell &cell = m.cells[wi];
            w.beginObject();
            w.key("workload").value(std::string_view(suite[wi].name));
            w.key("retired").value(cell.result.retired);
            w.key("wall_s").value(cell.wall_seconds);
            w.key("minstr_per_s")
                .value(cell.wall_seconds > 0.0
                           ? cell.result.retired / cell.wall_seconds
                                 / 1e6
                           : 0.0);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();

    const std::string path = "BENCH_simspeed.json";
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("cannot write bench artifact %s", path.c_str());
        return 1;
    }
    const std::string doc = w.str() + "\n";
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    if (!benchQuiet())
        std::fprintf(stderr, "wrote %s\n", path.c_str());
    return 0;
}
