/**
 * @file
 * Host simulator throughput (Minstr/s), not simulated IPC: how many
 * simulated instructions per wall-clock second the engine retires on
 * each machine configuration across the whole workload suite.  This is
 * the harness behind any claimed simulator-speed optimization — run it
 * before and after, compare the dmt6 aggregate, and archive the result
 * as BENCH_simspeed.json (see DESIGN.md section 11).
 *
 * Runs are serial (pool width 1) so per-workload wall clocks are not
 * polluted by sibling jobs; each machine's suite sweep is repeated
 * DMT_SIMSPEED_REPS times (default 3) and the best repetition is
 * reported, which filters transient host noise the way best-of-N
 * microbenchmarks do.  DMT_BENCH_INSTR scales the run length.
 */

#include "bench_common.hh"

#include <chrono>

#include "common/env.hh"
#include "sim/bbv.hh"
#include "sim/functional_core.hh"
#include "workloads/generator.hh"

namespace
{

struct MachineSpeed
{
    std::string name;
    dmt::SimConfig cfg;
    double minstr_per_s = 0.0; ///< best-rep suite aggregate
    double wall_s = 0.0;       ///< wall clock of the best rep
    dmt::u64 retired = 0;      ///< suite retirements in one rep
    std::vector<dmt::SweepCell> cells; ///< best rep, suite order
};

/** One serial pass of the whole suite on @p cfg. */
dmt::SweepStats
sweepOnce(const dmt::SimConfig &cfg, std::vector<dmt::SweepCell> *cells)
{
    using namespace dmt;
    SweepRunner pool(1);
    for (const WorkloadInfo &w : workloadSuite())
        pool.add(cfg, w.name, 0, w.name);
    *cells = pool.run();
    for (const SweepCell &cell : *cells) {
        if (!cell.ok)
            panic("simspeed: %s", cell.error.c_str());
    }
    return pool.stats();
}

/** One fast-forward workload's share of a functional sweep. */
struct FuncRow
{
    std::string name;
    dmt::u64 instr = 0;
    double wall_s = 0.0;
};

/** Best-rep result of one fast-forward engine over the ff suite. */
struct FuncSpeed
{
    double minstr_per_s = 0.0;
    double wall_s = 0.0;
    dmt::u64 instr = 0;
    dmt::TranslationStats xstats; ///< translated mode only
    std::vector<FuncRow> rows;
};

/** The fast-forward measurement suite: the 8 microkernels plus one
 *  instance of each generated family, knobs sized so a single program
 *  run is long enough (hundreds of thousands to millions of
 *  instructions) that execution, not program setup, is measured. */
std::vector<std::string>
ffSpecs()
{
    using namespace dmt;
    std::vector<std::string> specs;
    for (const WorkloadInfo &w : workloadSuite())
        specs.emplace_back(w.name);
    specs.emplace_back("gen:calltree:1:units=8192");
    specs.emplace_back("gen:loopnest:1:trips=20000");
    specs.emplace_back("gen:branchy:1:trips=50000");
    specs.emplace_back("gen:alias:1:trips=100000");
    specs.emplace_back("gen:prodcons:1:units=65536");
    specs.emplace_back("gen:ptrchase:1:trips=100000:units=4096");
    specs.emplace_back("gen:evloop:1:units=65536");
    return specs;
}

/** Run one workload on one engine: repeat {reset; run to completion}
 *  until at least @p floor_instr instructions retire, so short kernels
 *  don't reduce the sample to timer noise and the translated engine is
 *  measured at steady state (the translation cache survives reset()).
 *  Times the run() calls only: fast-forward throughput is about
 *  executing instructions, and the sampled-run / checkpoint consumers
 *  pay reset()+loadProgram() once per workload, not once per 8M
 *  instructions. */
FuncRow
runFfRow(dmt::FfMode mode, const std::string &spec,
         dmt::u64 floor_instr, bool bbv_on,
         dmt::TranslationStats *xstats)
{
    using namespace dmt;
    const Program prog = buildWorkload(spec);
    FunctionalCore core(prog);
    core.setMode(mode);
    // Phase profiling attached (bench-scale interval); one collector
    // spans the repeats, exactly like a long profiling pass would.
    BbvCollector bbv(100000, prog.text.size(), prog.entry);
    if (bbv_on)
        core.setBbv(&bbv);
    FuncRow row;
    row.name = canonicalWorkloadName(spec);
    while (row.instr < floor_instr) {
        core.reset();
        const auto t0 = std::chrono::steady_clock::now();
        core.run(~u64{0});
        row.wall_s += std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        row.instr += core.instrCount();
    }
    *xstats += core.translationStats();
    return row;
}

/**
 * One repetition over both fast-forward engines, interleaved per
 * workload: each spec runs on the interpreter and then immediately on
 * the translated engine, so transient host load degrades both numbers
 * alike and the reported speedup is a like-for-like ratio instead of
 * the quotient of two separately-noisy measurements.
 */
void
measureFunctionalRep(const std::vector<std::string> &specs,
                     dmt::u64 floor_instr, FuncSpeed *interp,
                     FuncSpeed *xlat, FuncSpeed *interp_bbv,
                     FuncSpeed *xlat_bbv)
{
    using namespace dmt;
    for (const std::string &spec : specs) {
        interp->rows.push_back(runFfRow(FfMode::Interp, spec,
                                        floor_instr, false,
                                        &interp->xstats));
        xlat->rows.push_back(runFfRow(FfMode::Translated, spec,
                                      floor_instr, false,
                                      &xlat->xstats));
        interp_bbv->rows.push_back(
            runFfRow(FfMode::Interp, spec, floor_instr, true,
                     &interp_bbv->xstats));
        xlat_bbv->rows.push_back(
            runFfRow(FfMode::Translated, spec, floor_instr, true,
                     &xlat_bbv->xstats));
    }
    for (FuncSpeed *f : {interp, xlat, interp_bbv, xlat_bbv}) {
        for (const FuncRow &row : f->rows) {
            f->instr += row.instr;
            f->wall_s += row.wall_s;
        }
        f->minstr_per_s =
            f->wall_s > 0.0 ? f->instr / f->wall_s / 1e6 : 0.0;
    }
}

void
funcJsonOn(dmt::JsonWriter &w, const FuncSpeed &f)
{
    w.key("minstr_per_s").value(f.minstr_per_s);
    w.key("wall_s").value(f.wall_s);
    w.key("instr").value(f.instr);
    w.key("workloads").beginArray();
    for (const FuncRow &row : f.rows) {
        w.beginObject();
        w.key("workload").value(std::string_view(row.name));
        w.key("instr").value(row.instr);
        w.key("wall_s").value(row.wall_s);
        w.key("minstr_per_s")
            .value(row.wall_s > 0.0 ? row.instr / row.wall_s / 1e6
                                    : 0.0);
        w.endObject();
    }
    w.endArray();
}

} // namespace

int
benchMain()
{
    using namespace dmt;

    const u64 reps =
        std::max<u64>(1, parseEnvU64("DMT_SIMSPEED_REPS", 3));
    const u64 budget = benchRunLength();

    std::vector<MachineSpeed> machines(2);
    machines[0].name = "baseline";
    machines[0].cfg = exp::baseline();
    machines[1].name = "dmt6";
    machines[1].cfg = SimConfig::dmt(6, 2);

    for (MachineSpeed &m : machines) {
        for (u64 rep = 0; rep < reps; ++rep) {
            std::vector<SweepCell> cells;
            const SweepStats stats = sweepOnce(m.cfg, &cells);
            const double mips = stats.throughput() / 1e6;
            if (!benchQuiet()) {
                std::fprintf(stderr,
                             "simspeed: %s rep %llu/%llu: %.3f "
                             "Minstr/s (%.2fs wall)\n",
                             m.name.c_str(),
                             static_cast<unsigned long long>(rep + 1),
                             static_cast<unsigned long long>(reps),
                             mips, stats.wall_seconds);
            }
            if (mips > m.minstr_per_s) {
                m.minstr_per_s = mips;
                m.wall_s = stats.wall_seconds;
                m.retired = stats.retired_total;
                m.cells = std::move(cells);
            }
        }
    }

    // Functional fast-forward throughput: repeated full-program
    // FunctionalCore runs — the engine behind the checkpointed skip
    // distance in sampled mode (DMT_SAMPLE), so its ratio over dmt6
    // bounds how much of a sampled run's wall clock the skips can
    // cost.  Both engines (DMT_FF_MODE) are measured over the 8-kernel
    // suite plus one instance of each generated family.
    const std::vector<std::string> specs = ffSpecs();
    const u64 ff_floor = std::max<u64>(budget, 8'000'000);
    FuncSpeed interp, xlat, interp_bbv, xlat_bbv;
    for (u64 rep = 0; rep < reps; ++rep) {
        FuncSpeed ci, cx, cib, cxb;
        measureFunctionalRep(specs, ff_floor, &ci, &cx, &cib, &cxb);
        if (!benchQuiet()) {
            std::fprintf(stderr,
                         "simspeed: functional rep %llu/%llu: "
                         "interp %.3f, translated %.3f Minstr/s "
                         "(%.2fx); with BBV %.3f / %.3f\n",
                         static_cast<unsigned long long>(rep + 1),
                         static_cast<unsigned long long>(reps),
                         ci.minstr_per_s, cx.minstr_per_s,
                         ci.minstr_per_s > 0.0
                             ? cx.minstr_per_s / ci.minstr_per_s
                             : 0.0,
                         cib.minstr_per_s, cxb.minstr_per_s);
        }
        if (ci.minstr_per_s > interp.minstr_per_s)
            interp = std::move(ci);
        if (cx.minstr_per_s > xlat.minstr_per_s)
            xlat = std::move(cx);
        if (cib.minstr_per_s > interp_bbv.minstr_per_s)
            interp_bbv = std::move(cib);
        if (cxb.minstr_per_s > xlat_bbv.minstr_per_s)
            xlat_bbv = std::move(cxb);
    }
    // Phase-profiling tax: best BBV-on rep over best BBV-off rep.
    const double interp_bbv_pct = interp.minstr_per_s > 0.0
        ? (1.0 - interp_bbv.minstr_per_s / interp.minstr_per_s) * 100.0
        : 0.0;
    const double xlat_bbv_pct = xlat.minstr_per_s > 0.0
        ? (1.0 - xlat_bbv.minstr_per_s / xlat.minstr_per_s) * 100.0
        : 0.0;
    const double ff_ratio = machines[1].minstr_per_s > 0.0
        ? xlat.minstr_per_s / machines[1].minstr_per_s : 0.0;
    const double xlat_ratio = interp.minstr_per_s > 0.0
        ? xlat.minstr_per_s / interp.minstr_per_s : 0.0;

    if (!benchQuiet()) {
        const TranslationStats &xs = xlat.xstats;
        std::fprintf(
            stderr,
            "translation cache: %llu block(s) translated (%llu "
            "retranslation(s), %llu eviction(s)), %llu chain hit(s) / "
            "%llu miss(es), %llu indirect hit(s) / %llu miss(es), "
            "%llu block(s) executed\n",
            static_cast<unsigned long long>(xs.blocks_translated),
            static_cast<unsigned long long>(xs.retranslations),
            static_cast<unsigned long long>(xs.evictions),
            static_cast<unsigned long long>(xs.chain_hits),
            static_cast<unsigned long long>(xs.chain_misses),
            static_cast<unsigned long long>(xs.indirect_hits),
            static_cast<unsigned long long>(xs.indirect_misses),
            static_cast<unsigned long long>(xs.blocks_executed));
    }

    // Aggregate over machines: total simulated work over total time,
    // each machine contributing its best rep.
    double total_wall = 0.0;
    u64 total_retired = 0;
    for (const MachineSpeed &m : machines) {
        total_wall += m.wall_s;
        total_retired += m.retired;
    }
    const double aggregate =
        total_wall > 0.0 ? total_retired / total_wall / 1e6 : 0.0;

    std::printf("simulator throughput, best of %llu rep(s), "
                "%llu instr/run\n",
                static_cast<unsigned long long>(reps),
                static_cast<unsigned long long>(budget));
    std::printf("%-21s %12s %10s %12s\n", "machine", "Minstr/s",
                "wall_s", "retired");
    for (const MachineSpeed &m : machines) {
        std::printf("%-21s %12.3f %10.2f %12llu\n", m.name.c_str(),
                    m.minstr_per_s, m.wall_s,
                    static_cast<unsigned long long>(m.retired));
    }
    std::printf("%-21s %12.3f %10.2f %12llu\n", "aggregate", aggregate,
                total_wall,
                static_cast<unsigned long long>(total_retired));
    std::printf("%-21s %12.3f %10.2f %12llu  (full programs)\n",
                "functional", interp.minstr_per_s, interp.wall_s,
                static_cast<unsigned long long>(interp.instr));
    std::printf("%-21s %12.3f %10.2f %12llu  (%.2fx interp, "
                "%.0fx dmt6)\n",
                "functional_translated", xlat.minstr_per_s, xlat.wall_s,
                static_cast<unsigned long long>(xlat.instr), xlat_ratio,
                ff_ratio);
    std::printf("%-21s %12.3f %10.2f %12llu  (BBV on, %+.1f%%)\n",
                "functional_bbv", interp_bbv.minstr_per_s,
                interp_bbv.wall_s,
                static_cast<unsigned long long>(interp_bbv.instr),
                interp_bbv_pct);
    std::printf("%-21s %12.3f %10.2f %12llu  (BBV on, %+.1f%%)\n",
                "functional_translated_bbv", xlat_bbv.minstr_per_s,
                xlat_bbv.wall_s,
                static_cast<unsigned long long>(xlat_bbv.instr),
                xlat_bbv_pct);

    JsonWriter w;
    w.beginObject();
    w.key("artifact").value(std::string_view("simspeed"));
    w.key("instr_per_run").value(budget);
    w.key("reps").value(reps);
    w.key("aggregate_minstr_per_s").value(aggregate);
    w.key("functional");
    w.beginObject();
    funcJsonOn(w, interp);
    w.key("speedup_vs_dmt6")
        .value(machines[1].minstr_per_s > 0.0
                   ? interp.minstr_per_s / machines[1].minstr_per_s
                   : 0.0);
    w.endObject();
    w.key("functional_translated");
    w.beginObject();
    funcJsonOn(w, xlat);
    w.key("speedup_vs_interp").value(xlat_ratio);
    w.key("speedup_vs_dmt6").value(ff_ratio);
    w.key("cache");
    w.beginObject();
    w.key("blocks_translated").value(xlat.xstats.blocks_translated);
    w.key("retranslations").value(xlat.xstats.retranslations);
    w.key("evictions").value(xlat.xstats.evictions);
    w.key("chain_hits").value(xlat.xstats.chain_hits);
    w.key("chain_misses").value(xlat.xstats.chain_misses);
    w.key("indirect_hits").value(xlat.xstats.indirect_hits);
    w.key("indirect_misses").value(xlat.xstats.indirect_misses);
    w.key("blocks_executed").value(xlat.xstats.blocks_executed);
    w.endObject();
    w.endObject();
    w.key("functional_bbv");
    w.beginObject();
    funcJsonOn(w, interp_bbv);
    w.key("overhead_pct_vs_plain").value(interp_bbv_pct);
    w.endObject();
    w.key("functional_translated_bbv");
    w.beginObject();
    funcJsonOn(w, xlat_bbv);
    w.key("overhead_pct_vs_plain").value(xlat_bbv_pct);
    w.endObject();
    w.key("machines").beginArray();
    for (const MachineSpeed &m : machines) {
        w.beginObject();
        w.key("name").value(std::string_view(m.name));
        w.key("minstr_per_s").value(m.minstr_per_s);
        w.key("wall_s").value(m.wall_s);
        w.key("retired").value(m.retired);
        w.key("config");
        m.cfg.jsonOn(w);
        w.key("workloads").beginArray();
        const auto &suite = workloadSuite();
        for (size_t wi = 0; wi < m.cells.size(); ++wi) {
            const SweepCell &cell = m.cells[wi];
            w.beginObject();
            w.key("workload").value(std::string_view(suite[wi].name));
            w.key("retired").value(cell.result.retired);
            w.key("wall_s").value(cell.wall_seconds);
            w.key("minstr_per_s")
                .value(cell.wall_seconds > 0.0
                           ? cell.result.retired / cell.wall_seconds
                                 / 1e6
                           : 0.0);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();

    const std::string path = "BENCH_simspeed.json";
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("cannot write bench artifact %s", path.c_str());
        return 1;
    }
    const std::string doc = w.str() + "\n";
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    if (!benchQuiet())
        std::fprintf(stderr, "wrote %s\n", path.c_str());
    return 0;
}
