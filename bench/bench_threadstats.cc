/**
 * @file
 * Thread statistics quoted in the paper's text (Section 4.1): average
 * thread sizes (paper: 50-130 retired instructions), speculative
 * overlap, context occupancy, spawn/join/squash accounting, and the
 * fraction of speculative-thread instructions re-dispatched by
 * recovery (paper: ~30%).
 */

#include "bench_common.hh"

int
benchMain()
{
    using namespace dmt;
    Report rep(
        "Thread-level statistics on the 6-thread, 2-port machine",
        "paper: thread sizes 50-130; ~30% of speculative instructions "
        "redispatched from the trace buffer");
    rep.columns({"workload", "thr-size", "overlap%", "contexts",
                 "join%", "redispatch%"});

    const SuiteSweep sweep = sweepGrid({{"6T", exp::fig89Dmt()}});
    const auto &suite = workloadSuite();
    for (size_t wi = 0; wi < suite.size(); ++wi) {
        const SweepCell &cell = sweep.cells[wi][0];
        if (!cell.ok) {
            warn("bench: skipping %s (%s)", suite[wi].name,
                 cell.error.c_str());
            continue;
        }
        const DmtStats &s = cell.result.stats;
        const double spawned =
            std::max<u64>(s.threads_spawned.value(), 1);
        rep.row(suite[wi].name,
                {s.thread_size.mean(),
                 100.0 * s.thread_overlap.mean(),
                 s.active_threads.mean(),
                 100.0 * s.threads_joined.value() / spawned,
                 100.0 * s.recovery_dispatches.value()
                     / std::max<u64>(s.retired.value(), 1)});
    }
    rep.averageRow();
    rep.print();
    return 0;
}
