/**
 * @file
 * Figure 9: lookahead execution beyond ICache misses on a 6-thread
 * processor — retired instructions fetched (and executed) while an
 * earlier thread's fetch was blocked on an instruction-cache miss.
 * Zero on a conventional superscalar.  A small L1I makes the effect
 * visible at benchmark scale (the paper's SPEC runs miss in 16KB; our
 * kernels are smaller, so a concurrency-equivalent 2KB L1I is also
 * reported).
 */

#include "bench_common.hh"

int
benchMain()
{
    using namespace dmt;
    Report rep(
        "Figure 9: % of retired instructions fetched/executed during "
        "an earlier thread's ICache miss (6 threads)",
        "nonzero on DMT; zero on the baseline.  16KB = paper geometry; "
        "512B column recreates SPEC-scale miss pressure");
    rep.columns({"workload", "16K-fetch%", "16K-exec%", "512B-fetch%",
                 "512B-exec%"});

    std::vector<BenchColumn> machines;
    for (const u32 l1i_bytes : {16u * 1024, 512u}) {
        SimConfig cfg = exp::fig89Dmt();
        cfg.mem.l1i.size_bytes = l1i_bytes;
        if (l1i_bytes < 1024) {
            // Pressure variant: misses go all the way to memory,
            // like SPEC-sized code in a 16KB L1I + 256KB L2.
            cfg.mem.l2.size_bytes = 4 * 1024;
        }
        machines.push_back(
            {l1i_bytes >= 1024 ? "16K" : "512B", cfg});
    }
    const SuiteSweep sweep = sweepGrid(machines);

    const auto &suite = workloadSuite();
    for (size_t wi = 0; wi < suite.size(); ++wi) {
        const std::vector<SweepCell> &cells = sweep.cells[wi];
        if (!cells[0].ok || !cells[1].ok) {
            warn("bench: skipping %s (a run failed)", suite[wi].name);
            continue;
        }
        std::vector<double> row;
        for (const SweepCell &cell : cells) {
            const RunResult &r = cell.result;
            const double retired =
                static_cast<double>(r.stats.retired.value());
            row.push_back(100.0
                          * r.stats.la_fetch_beyond_imiss.value()
                          / retired);
            row.push_back(100.0 * r.stats.la_exec_beyond_imiss.value()
                          / retired);
        }
        rep.row(suite[wi].name, row);
    }
    rep.averageRow();
    rep.print();
    return 0;
}
