file(REMOVE_RECURSE
  "CMakeFiles/thread_anatomy.dir/thread_anatomy.cpp.o"
  "CMakeFiles/thread_anatomy.dir/thread_anatomy.cpp.o.d"
  "thread_anatomy"
  "thread_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thread_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
