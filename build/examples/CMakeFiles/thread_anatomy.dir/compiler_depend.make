# Empty compiler generated dependencies file for thread_anatomy.
# This may be replaced when dependencies are built.
