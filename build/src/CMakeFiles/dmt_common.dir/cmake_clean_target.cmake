file(REMOVE_RECURSE
  "libdmt_common.a"
)
