# Empty dependencies file for dmt_common.
# This may be replaced when dependencies are built.
