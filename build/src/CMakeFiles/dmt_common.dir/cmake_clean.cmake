file(REMOVE_RECURSE
  "CMakeFiles/dmt_common.dir/common/log.cc.o"
  "CMakeFiles/dmt_common.dir/common/log.cc.o.d"
  "CMakeFiles/dmt_common.dir/common/rng.cc.o"
  "CMakeFiles/dmt_common.dir/common/rng.cc.o.d"
  "CMakeFiles/dmt_common.dir/common/stats.cc.o"
  "CMakeFiles/dmt_common.dir/common/stats.cc.o.d"
  "CMakeFiles/dmt_common.dir/common/strutil.cc.o"
  "CMakeFiles/dmt_common.dir/common/strutil.cc.o.d"
  "libdmt_common.a"
  "libdmt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
