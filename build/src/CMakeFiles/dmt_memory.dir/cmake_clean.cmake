file(REMOVE_RECURSE
  "CMakeFiles/dmt_memory.dir/memory/cache.cc.o"
  "CMakeFiles/dmt_memory.dir/memory/cache.cc.o.d"
  "CMakeFiles/dmt_memory.dir/memory/hierarchy.cc.o"
  "CMakeFiles/dmt_memory.dir/memory/hierarchy.cc.o.d"
  "libdmt_memory.a"
  "libdmt_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmt_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
