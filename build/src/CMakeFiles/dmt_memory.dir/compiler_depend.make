# Empty compiler generated dependencies file for dmt_memory.
# This may be replaced when dependencies are built.
