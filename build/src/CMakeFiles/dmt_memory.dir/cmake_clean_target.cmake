file(REMOVE_RECURSE
  "libdmt_memory.a"
)
