file(REMOVE_RECURSE
  "CMakeFiles/dmt_workloads.dir/workloads/microkernels.cc.o"
  "CMakeFiles/dmt_workloads.dir/workloads/microkernels.cc.o.d"
  "CMakeFiles/dmt_workloads.dir/workloads/w_compress.cc.o"
  "CMakeFiles/dmt_workloads.dir/workloads/w_compress.cc.o.d"
  "CMakeFiles/dmt_workloads.dir/workloads/w_gcc.cc.o"
  "CMakeFiles/dmt_workloads.dir/workloads/w_gcc.cc.o.d"
  "CMakeFiles/dmt_workloads.dir/workloads/w_go.cc.o"
  "CMakeFiles/dmt_workloads.dir/workloads/w_go.cc.o.d"
  "CMakeFiles/dmt_workloads.dir/workloads/w_ijpeg.cc.o"
  "CMakeFiles/dmt_workloads.dir/workloads/w_ijpeg.cc.o.d"
  "CMakeFiles/dmt_workloads.dir/workloads/w_li.cc.o"
  "CMakeFiles/dmt_workloads.dir/workloads/w_li.cc.o.d"
  "CMakeFiles/dmt_workloads.dir/workloads/w_m88ksim.cc.o"
  "CMakeFiles/dmt_workloads.dir/workloads/w_m88ksim.cc.o.d"
  "CMakeFiles/dmt_workloads.dir/workloads/w_perl.cc.o"
  "CMakeFiles/dmt_workloads.dir/workloads/w_perl.cc.o.d"
  "CMakeFiles/dmt_workloads.dir/workloads/w_vortex.cc.o"
  "CMakeFiles/dmt_workloads.dir/workloads/w_vortex.cc.o.d"
  "CMakeFiles/dmt_workloads.dir/workloads/workloads.cc.o"
  "CMakeFiles/dmt_workloads.dir/workloads/workloads.cc.o.d"
  "libdmt_workloads.a"
  "libdmt_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmt_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
