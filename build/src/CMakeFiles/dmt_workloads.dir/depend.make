# Empty dependencies file for dmt_workloads.
# This may be replaced when dependencies are built.
