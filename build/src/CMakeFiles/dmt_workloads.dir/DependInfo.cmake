
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/microkernels.cc" "src/CMakeFiles/dmt_workloads.dir/workloads/microkernels.cc.o" "gcc" "src/CMakeFiles/dmt_workloads.dir/workloads/microkernels.cc.o.d"
  "/root/repo/src/workloads/w_compress.cc" "src/CMakeFiles/dmt_workloads.dir/workloads/w_compress.cc.o" "gcc" "src/CMakeFiles/dmt_workloads.dir/workloads/w_compress.cc.o.d"
  "/root/repo/src/workloads/w_gcc.cc" "src/CMakeFiles/dmt_workloads.dir/workloads/w_gcc.cc.o" "gcc" "src/CMakeFiles/dmt_workloads.dir/workloads/w_gcc.cc.o.d"
  "/root/repo/src/workloads/w_go.cc" "src/CMakeFiles/dmt_workloads.dir/workloads/w_go.cc.o" "gcc" "src/CMakeFiles/dmt_workloads.dir/workloads/w_go.cc.o.d"
  "/root/repo/src/workloads/w_ijpeg.cc" "src/CMakeFiles/dmt_workloads.dir/workloads/w_ijpeg.cc.o" "gcc" "src/CMakeFiles/dmt_workloads.dir/workloads/w_ijpeg.cc.o.d"
  "/root/repo/src/workloads/w_li.cc" "src/CMakeFiles/dmt_workloads.dir/workloads/w_li.cc.o" "gcc" "src/CMakeFiles/dmt_workloads.dir/workloads/w_li.cc.o.d"
  "/root/repo/src/workloads/w_m88ksim.cc" "src/CMakeFiles/dmt_workloads.dir/workloads/w_m88ksim.cc.o" "gcc" "src/CMakeFiles/dmt_workloads.dir/workloads/w_m88ksim.cc.o.d"
  "/root/repo/src/workloads/w_perl.cc" "src/CMakeFiles/dmt_workloads.dir/workloads/w_perl.cc.o" "gcc" "src/CMakeFiles/dmt_workloads.dir/workloads/w_perl.cc.o.d"
  "/root/repo/src/workloads/w_vortex.cc" "src/CMakeFiles/dmt_workloads.dir/workloads/w_vortex.cc.o" "gcc" "src/CMakeFiles/dmt_workloads.dir/workloads/w_vortex.cc.o.d"
  "/root/repo/src/workloads/workloads.cc" "src/CMakeFiles/dmt_workloads.dir/workloads/workloads.cc.o" "gcc" "src/CMakeFiles/dmt_workloads.dir/workloads/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dmt_casm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dmt_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dmt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
