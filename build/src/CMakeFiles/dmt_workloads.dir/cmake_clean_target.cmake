file(REMOVE_RECURSE
  "libdmt_workloads.a"
)
