file(REMOVE_RECURSE
  "CMakeFiles/dmt_exp.dir/exp/experiments.cc.o"
  "CMakeFiles/dmt_exp.dir/exp/experiments.cc.o.d"
  "CMakeFiles/dmt_exp.dir/exp/report.cc.o"
  "CMakeFiles/dmt_exp.dir/exp/report.cc.o.d"
  "CMakeFiles/dmt_exp.dir/exp/runner.cc.o"
  "CMakeFiles/dmt_exp.dir/exp/runner.cc.o.d"
  "libdmt_exp.a"
  "libdmt_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmt_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
