# Empty compiler generated dependencies file for dmt_exp.
# This may be replaced when dependencies are built.
