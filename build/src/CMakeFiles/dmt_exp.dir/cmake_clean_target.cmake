file(REMOVE_RECURSE
  "libdmt_exp.a"
)
