file(REMOVE_RECURSE
  "CMakeFiles/dmt_sim.dir/sim/arch_state.cc.o"
  "CMakeFiles/dmt_sim.dir/sim/arch_state.cc.o.d"
  "CMakeFiles/dmt_sim.dir/sim/checker.cc.o"
  "CMakeFiles/dmt_sim.dir/sim/checker.cc.o.d"
  "CMakeFiles/dmt_sim.dir/sim/functional.cc.o"
  "CMakeFiles/dmt_sim.dir/sim/functional.cc.o.d"
  "CMakeFiles/dmt_sim.dir/sim/mainmem.cc.o"
  "CMakeFiles/dmt_sim.dir/sim/mainmem.cc.o.d"
  "libdmt_sim.a"
  "libdmt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
