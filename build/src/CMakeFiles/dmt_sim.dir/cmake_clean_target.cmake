file(REMOVE_RECURSE
  "libdmt_sim.a"
)
