
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/arch_state.cc" "src/CMakeFiles/dmt_sim.dir/sim/arch_state.cc.o" "gcc" "src/CMakeFiles/dmt_sim.dir/sim/arch_state.cc.o.d"
  "/root/repo/src/sim/checker.cc" "src/CMakeFiles/dmt_sim.dir/sim/checker.cc.o" "gcc" "src/CMakeFiles/dmt_sim.dir/sim/checker.cc.o.d"
  "/root/repo/src/sim/functional.cc" "src/CMakeFiles/dmt_sim.dir/sim/functional.cc.o" "gcc" "src/CMakeFiles/dmt_sim.dir/sim/functional.cc.o.d"
  "/root/repo/src/sim/mainmem.cc" "src/CMakeFiles/dmt_sim.dir/sim/mainmem.cc.o" "gcc" "src/CMakeFiles/dmt_sim.dir/sim/mainmem.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dmt_casm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dmt_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dmt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
