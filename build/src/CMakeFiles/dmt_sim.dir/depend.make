# Empty dependencies file for dmt_sim.
# This may be replaced when dependencies are built.
