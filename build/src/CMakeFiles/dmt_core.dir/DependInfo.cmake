
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dmt/dataflow_pred.cc" "src/CMakeFiles/dmt_core.dir/dmt/dataflow_pred.cc.o" "gcc" "src/CMakeFiles/dmt_core.dir/dmt/dataflow_pred.cc.o.d"
  "/root/repo/src/dmt/engine.cc" "src/CMakeFiles/dmt_core.dir/dmt/engine.cc.o" "gcc" "src/CMakeFiles/dmt_core.dir/dmt/engine.cc.o.d"
  "/root/repo/src/dmt/engine_execute.cc" "src/CMakeFiles/dmt_core.dir/dmt/engine_execute.cc.o" "gcc" "src/CMakeFiles/dmt_core.dir/dmt/engine_execute.cc.o.d"
  "/root/repo/src/dmt/engine_fetch.cc" "src/CMakeFiles/dmt_core.dir/dmt/engine_fetch.cc.o" "gcc" "src/CMakeFiles/dmt_core.dir/dmt/engine_fetch.cc.o.d"
  "/root/repo/src/dmt/engine_rename.cc" "src/CMakeFiles/dmt_core.dir/dmt/engine_rename.cc.o" "gcc" "src/CMakeFiles/dmt_core.dir/dmt/engine_rename.cc.o.d"
  "/root/repo/src/dmt/engine_retire.cc" "src/CMakeFiles/dmt_core.dir/dmt/engine_retire.cc.o" "gcc" "src/CMakeFiles/dmt_core.dir/dmt/engine_retire.cc.o.d"
  "/root/repo/src/dmt/io_regfile.cc" "src/CMakeFiles/dmt_core.dir/dmt/io_regfile.cc.o" "gcc" "src/CMakeFiles/dmt_core.dir/dmt/io_regfile.cc.o.d"
  "/root/repo/src/dmt/lookahead.cc" "src/CMakeFiles/dmt_core.dir/dmt/lookahead.cc.o" "gcc" "src/CMakeFiles/dmt_core.dir/dmt/lookahead.cc.o.d"
  "/root/repo/src/dmt/lsq.cc" "src/CMakeFiles/dmt_core.dir/dmt/lsq.cc.o" "gcc" "src/CMakeFiles/dmt_core.dir/dmt/lsq.cc.o.d"
  "/root/repo/src/dmt/order_tree.cc" "src/CMakeFiles/dmt_core.dir/dmt/order_tree.cc.o" "gcc" "src/CMakeFiles/dmt_core.dir/dmt/order_tree.cc.o.d"
  "/root/repo/src/dmt/recovery.cc" "src/CMakeFiles/dmt_core.dir/dmt/recovery.cc.o" "gcc" "src/CMakeFiles/dmt_core.dir/dmt/recovery.cc.o.d"
  "/root/repo/src/dmt/spawn_pred.cc" "src/CMakeFiles/dmt_core.dir/dmt/spawn_pred.cc.o" "gcc" "src/CMakeFiles/dmt_core.dir/dmt/spawn_pred.cc.o.d"
  "/root/repo/src/dmt/stats.cc" "src/CMakeFiles/dmt_core.dir/dmt/stats.cc.o" "gcc" "src/CMakeFiles/dmt_core.dir/dmt/stats.cc.o.d"
  "/root/repo/src/dmt/thread.cc" "src/CMakeFiles/dmt_core.dir/dmt/thread.cc.o" "gcc" "src/CMakeFiles/dmt_core.dir/dmt/thread.cc.o.d"
  "/root/repo/src/dmt/trace_buffer.cc" "src/CMakeFiles/dmt_core.dir/dmt/trace_buffer.cc.o" "gcc" "src/CMakeFiles/dmt_core.dir/dmt/trace_buffer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dmt_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dmt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dmt_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dmt_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dmt_casm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dmt_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dmt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
