file(REMOVE_RECURSE
  "CMakeFiles/dmt_core.dir/dmt/dataflow_pred.cc.o"
  "CMakeFiles/dmt_core.dir/dmt/dataflow_pred.cc.o.d"
  "CMakeFiles/dmt_core.dir/dmt/engine.cc.o"
  "CMakeFiles/dmt_core.dir/dmt/engine.cc.o.d"
  "CMakeFiles/dmt_core.dir/dmt/engine_execute.cc.o"
  "CMakeFiles/dmt_core.dir/dmt/engine_execute.cc.o.d"
  "CMakeFiles/dmt_core.dir/dmt/engine_fetch.cc.o"
  "CMakeFiles/dmt_core.dir/dmt/engine_fetch.cc.o.d"
  "CMakeFiles/dmt_core.dir/dmt/engine_rename.cc.o"
  "CMakeFiles/dmt_core.dir/dmt/engine_rename.cc.o.d"
  "CMakeFiles/dmt_core.dir/dmt/engine_retire.cc.o"
  "CMakeFiles/dmt_core.dir/dmt/engine_retire.cc.o.d"
  "CMakeFiles/dmt_core.dir/dmt/io_regfile.cc.o"
  "CMakeFiles/dmt_core.dir/dmt/io_regfile.cc.o.d"
  "CMakeFiles/dmt_core.dir/dmt/lookahead.cc.o"
  "CMakeFiles/dmt_core.dir/dmt/lookahead.cc.o.d"
  "CMakeFiles/dmt_core.dir/dmt/lsq.cc.o"
  "CMakeFiles/dmt_core.dir/dmt/lsq.cc.o.d"
  "CMakeFiles/dmt_core.dir/dmt/order_tree.cc.o"
  "CMakeFiles/dmt_core.dir/dmt/order_tree.cc.o.d"
  "CMakeFiles/dmt_core.dir/dmt/recovery.cc.o"
  "CMakeFiles/dmt_core.dir/dmt/recovery.cc.o.d"
  "CMakeFiles/dmt_core.dir/dmt/spawn_pred.cc.o"
  "CMakeFiles/dmt_core.dir/dmt/spawn_pred.cc.o.d"
  "CMakeFiles/dmt_core.dir/dmt/stats.cc.o"
  "CMakeFiles/dmt_core.dir/dmt/stats.cc.o.d"
  "CMakeFiles/dmt_core.dir/dmt/thread.cc.o"
  "CMakeFiles/dmt_core.dir/dmt/thread.cc.o.d"
  "CMakeFiles/dmt_core.dir/dmt/trace_buffer.cc.o"
  "CMakeFiles/dmt_core.dir/dmt/trace_buffer.cc.o.d"
  "libdmt_core.a"
  "libdmt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
