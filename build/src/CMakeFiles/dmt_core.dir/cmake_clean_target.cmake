file(REMOVE_RECURSE
  "libdmt_core.a"
)
