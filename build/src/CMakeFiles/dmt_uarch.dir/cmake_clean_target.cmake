file(REMOVE_RECURSE
  "libdmt_uarch.a"
)
