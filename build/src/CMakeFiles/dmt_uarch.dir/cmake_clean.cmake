file(REMOVE_RECURSE
  "CMakeFiles/dmt_uarch.dir/uarch/config.cc.o"
  "CMakeFiles/dmt_uarch.dir/uarch/config.cc.o.d"
  "CMakeFiles/dmt_uarch.dir/uarch/fu.cc.o"
  "CMakeFiles/dmt_uarch.dir/uarch/fu.cc.o.d"
  "CMakeFiles/dmt_uarch.dir/uarch/physregs.cc.o"
  "CMakeFiles/dmt_uarch.dir/uarch/physregs.cc.o.d"
  "libdmt_uarch.a"
  "libdmt_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmt_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
