
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uarch/config.cc" "src/CMakeFiles/dmt_uarch.dir/uarch/config.cc.o" "gcc" "src/CMakeFiles/dmt_uarch.dir/uarch/config.cc.o.d"
  "/root/repo/src/uarch/fu.cc" "src/CMakeFiles/dmt_uarch.dir/uarch/fu.cc.o" "gcc" "src/CMakeFiles/dmt_uarch.dir/uarch/fu.cc.o.d"
  "/root/repo/src/uarch/physregs.cc" "src/CMakeFiles/dmt_uarch.dir/uarch/physregs.cc.o" "gcc" "src/CMakeFiles/dmt_uarch.dir/uarch/physregs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dmt_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dmt_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dmt_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dmt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
