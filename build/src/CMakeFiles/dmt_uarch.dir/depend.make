# Empty dependencies file for dmt_uarch.
# This may be replaced when dependencies are built.
