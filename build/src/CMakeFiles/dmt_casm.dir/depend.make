# Empty dependencies file for dmt_casm.
# This may be replaced when dependencies are built.
