
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/casm/assembler.cc" "src/CMakeFiles/dmt_casm.dir/casm/assembler.cc.o" "gcc" "src/CMakeFiles/dmt_casm.dir/casm/assembler.cc.o.d"
  "/root/repo/src/casm/builder.cc" "src/CMakeFiles/dmt_casm.dir/casm/builder.cc.o" "gcc" "src/CMakeFiles/dmt_casm.dir/casm/builder.cc.o.d"
  "/root/repo/src/casm/program.cc" "src/CMakeFiles/dmt_casm.dir/casm/program.cc.o" "gcc" "src/CMakeFiles/dmt_casm.dir/casm/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dmt_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dmt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
