file(REMOVE_RECURSE
  "libdmt_casm.a"
)
