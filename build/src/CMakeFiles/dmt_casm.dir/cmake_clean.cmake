file(REMOVE_RECURSE
  "CMakeFiles/dmt_casm.dir/casm/assembler.cc.o"
  "CMakeFiles/dmt_casm.dir/casm/assembler.cc.o.d"
  "CMakeFiles/dmt_casm.dir/casm/builder.cc.o"
  "CMakeFiles/dmt_casm.dir/casm/builder.cc.o.d"
  "CMakeFiles/dmt_casm.dir/casm/program.cc.o"
  "CMakeFiles/dmt_casm.dir/casm/program.cc.o.d"
  "libdmt_casm.a"
  "libdmt_casm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmt_casm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
