# Empty compiler generated dependencies file for dmt_branch.
# This may be replaced when dependencies are built.
