file(REMOVE_RECURSE
  "libdmt_branch.a"
)
