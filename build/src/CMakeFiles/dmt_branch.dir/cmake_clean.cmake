file(REMOVE_RECURSE
  "CMakeFiles/dmt_branch.dir/branch/btb.cc.o"
  "CMakeFiles/dmt_branch.dir/branch/btb.cc.o.d"
  "CMakeFiles/dmt_branch.dir/branch/gshare.cc.o"
  "CMakeFiles/dmt_branch.dir/branch/gshare.cc.o.d"
  "CMakeFiles/dmt_branch.dir/branch/predictor.cc.o"
  "CMakeFiles/dmt_branch.dir/branch/predictor.cc.o.d"
  "CMakeFiles/dmt_branch.dir/branch/ras.cc.o"
  "CMakeFiles/dmt_branch.dir/branch/ras.cc.o.d"
  "libdmt_branch.a"
  "libdmt_branch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmt_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
