file(REMOVE_RECURSE
  "libdmt_isa.a"
)
