# Empty dependencies file for dmt_isa.
# This may be replaced when dependencies are built.
