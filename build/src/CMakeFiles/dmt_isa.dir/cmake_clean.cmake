file(REMOVE_RECURSE
  "CMakeFiles/dmt_isa.dir/isa/disasm.cc.o"
  "CMakeFiles/dmt_isa.dir/isa/disasm.cc.o.d"
  "CMakeFiles/dmt_isa.dir/isa/encoding.cc.o"
  "CMakeFiles/dmt_isa.dir/isa/encoding.cc.o.d"
  "CMakeFiles/dmt_isa.dir/isa/inst.cc.o"
  "CMakeFiles/dmt_isa.dir/isa/inst.cc.o.d"
  "CMakeFiles/dmt_isa.dir/isa/regs.cc.o"
  "CMakeFiles/dmt_isa.dir/isa/regs.cc.o.d"
  "libdmt_isa.a"
  "libdmt_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmt_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
