file(REMOVE_RECURSE
  "CMakeFiles/test_tracebuf.dir/test_tracebuf.cc.o"
  "CMakeFiles/test_tracebuf.dir/test_tracebuf.cc.o.d"
  "test_tracebuf"
  "test_tracebuf.pdb"
  "test_tracebuf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tracebuf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
