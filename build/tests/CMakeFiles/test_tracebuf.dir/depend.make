# Empty dependencies file for test_tracebuf.
# This may be replaced when dependencies are built.
