file(REMOVE_RECURSE
  "CMakeFiles/test_images.dir/test_images.cc.o"
  "CMakeFiles/test_images.dir/test_images.cc.o.d"
  "test_images"
  "test_images.pdb"
  "test_images[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_images.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
