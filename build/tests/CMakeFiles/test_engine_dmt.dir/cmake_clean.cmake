file(REMOVE_RECURSE
  "CMakeFiles/test_engine_dmt.dir/test_engine_dmt.cc.o"
  "CMakeFiles/test_engine_dmt.dir/test_engine_dmt.cc.o.d"
  "test_engine_dmt"
  "test_engine_dmt.pdb"
  "test_engine_dmt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_dmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
