# Empty dependencies file for test_engine_dmt.
# This may be replaced when dependencies are built.
