file(REMOVE_RECURSE
  "CMakeFiles/test_engine_baseline.dir/test_engine_baseline.cc.o"
  "CMakeFiles/test_engine_baseline.dir/test_engine_baseline.cc.o.d"
  "test_engine_baseline"
  "test_engine_baseline.pdb"
  "test_engine_baseline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
