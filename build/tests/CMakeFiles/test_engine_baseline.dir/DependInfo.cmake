
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_engine_baseline.cc" "tests/CMakeFiles/test_engine_baseline.dir/test_engine_baseline.cc.o" "gcc" "tests/CMakeFiles/test_engine_baseline.dir/test_engine_baseline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dmt_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dmt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dmt_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dmt_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dmt_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dmt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dmt_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dmt_casm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dmt_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dmt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
