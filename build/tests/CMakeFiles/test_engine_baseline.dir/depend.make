# Empty dependencies file for test_engine_baseline.
# This may be replaced when dependencies are built.
