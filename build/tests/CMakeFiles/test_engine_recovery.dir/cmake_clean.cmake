file(REMOVE_RECURSE
  "CMakeFiles/test_engine_recovery.dir/test_engine_recovery.cc.o"
  "CMakeFiles/test_engine_recovery.dir/test_engine_recovery.cc.o.d"
  "test_engine_recovery"
  "test_engine_recovery.pdb"
  "test_engine_recovery[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
