# Empty dependencies file for test_engine_recovery.
# This may be replaced when dependencies are built.
