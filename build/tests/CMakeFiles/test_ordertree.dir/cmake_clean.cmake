file(REMOVE_RECURSE
  "CMakeFiles/test_ordertree.dir/test_ordertree.cc.o"
  "CMakeFiles/test_ordertree.dir/test_ordertree.cc.o.d"
  "test_ordertree"
  "test_ordertree.pdb"
  "test_ordertree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ordertree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
