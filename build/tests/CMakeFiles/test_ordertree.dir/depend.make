# Empty dependencies file for test_ordertree.
# This may be replaced when dependencies are built.
