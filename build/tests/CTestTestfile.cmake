# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_assembler[1]_include.cmake")
include("/root/repo/build/tests/test_builder[1]_include.cmake")
include("/root/repo/build/tests/test_functional[1]_include.cmake")
include("/root/repo/build/tests/test_memory[1]_include.cmake")
include("/root/repo/build/tests/test_branch[1]_include.cmake")
include("/root/repo/build/tests/test_tracebuf[1]_include.cmake")
include("/root/repo/build/tests/test_ordertree[1]_include.cmake")
include("/root/repo/build/tests/test_lsq[1]_include.cmake")
include("/root/repo/build/tests/test_predictors[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_engine_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_engine_dmt[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_engine_recovery[1]_include.cmake")
include("/root/repo/build/tests/test_exp[1]_include.cmake")
include("/root/repo/build/tests/test_images[1]_include.cmake")
