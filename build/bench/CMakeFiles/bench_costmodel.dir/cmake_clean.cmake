file(REMOVE_RECURSE
  "CMakeFiles/bench_costmodel.dir/bench_costmodel.cc.o"
  "CMakeFiles/bench_costmodel.dir/bench_costmodel.cc.o.d"
  "bench_costmodel"
  "bench_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
