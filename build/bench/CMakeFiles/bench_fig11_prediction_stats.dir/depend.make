# Empty dependencies file for bench_fig11_prediction_stats.
# This may be replaced when dependencies are built.
