# Empty dependencies file for bench_fig08_lookahead_branch.
# This may be replaced when dependencies are built.
