# Empty dependencies file for bench_fig09_lookahead_icache.
# This may be replaced when dependencies are built.
