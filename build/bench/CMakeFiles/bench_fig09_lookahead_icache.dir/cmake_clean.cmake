file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_lookahead_icache.dir/bench_fig09_lookahead_icache.cc.o"
  "CMakeFiles/bench_fig09_lookahead_icache.dir/bench_fig09_lookahead_icache.cc.o.d"
  "bench_fig09_lookahead_icache"
  "bench_fig09_lookahead_icache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_lookahead_icache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
