file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_fetch_ports.dir/bench_fig05_fetch_ports.cc.o"
  "CMakeFiles/bench_fig05_fetch_ports.dir/bench_fig05_fetch_ports.cc.o.d"
  "bench_fig05_fetch_ports"
  "bench_fig05_fetch_ports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_fetch_ports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
