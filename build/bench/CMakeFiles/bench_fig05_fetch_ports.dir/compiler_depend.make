# Empty compiler generated dependencies file for bench_fig05_fetch_ports.
# This may be replaced when dependencies are built.
