# Empty dependencies file for bench_threadstats.
# This may be replaced when dependencies are built.
