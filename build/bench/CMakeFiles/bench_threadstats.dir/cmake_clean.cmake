file(REMOVE_RECURSE
  "CMakeFiles/bench_threadstats.dir/bench_threadstats.cc.o"
  "CMakeFiles/bench_threadstats.dir/bench_threadstats.cc.o.d"
  "bench_threadstats"
  "bench_threadstats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_threadstats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
