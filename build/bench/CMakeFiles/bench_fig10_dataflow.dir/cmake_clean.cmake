file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_dataflow.dir/bench_fig10_dataflow.cc.o"
  "CMakeFiles/bench_fig10_dataflow.dir/bench_fig10_dataflow.cc.o.d"
  "bench_fig10_dataflow"
  "bench_fig10_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
