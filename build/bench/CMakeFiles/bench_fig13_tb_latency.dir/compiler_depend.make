# Empty compiler generated dependencies file for bench_fig13_tb_latency.
# This may be replaced when dependencies are built.
