file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_read_block.dir/bench_fig12_read_block.cc.o"
  "CMakeFiles/bench_fig12_read_block.dir/bench_fig12_read_block.cc.o.d"
  "bench_fig12_read_block"
  "bench_fig12_read_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_read_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
