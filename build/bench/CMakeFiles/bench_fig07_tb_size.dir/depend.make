# Empty dependencies file for bench_fig07_tb_size.
# This may be replaced when dependencies are built.
