file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_exec_units.dir/bench_fig06_exec_units.cc.o"
  "CMakeFiles/bench_fig06_exec_units.dir/bench_fig06_exec_units.cc.o.d"
  "bench_fig06_exec_units"
  "bench_fig06_exec_units.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_exec_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
