# Empty dependencies file for bench_fig06_exec_units.
# This may be replaced when dependencies are built.
