#include "isa/inst.hh"

#include "common/log.hh"

namespace dmt
{

namespace
{

// Shorthand for table construction.
constexpr OpInfo
alu2(const char *m)
{
    return {m, OpClass::IntAlu, false, false, false, false, false, false,
            false, 2, true};
}

constexpr OpInfo
alu1Imm(const char *m)
{
    return {m, OpClass::IntAlu, false, false, false, false, false, false,
            true, 1, true};
}

constexpr OpInfo
branch(const char *m)
{
    return {m, OpClass::Control, false, false, true, false, false, false,
            true, 2, false};
}

constexpr OpInfo
load(const char *m)
{
    return {m, OpClass::MemRead, true, false, false, false, false, false,
            true, 1, true};
}

constexpr OpInfo
store(const char *m)
{
    return {m, OpClass::MemWrite, false, true, false, false, false, false,
            true, 2, false};
}

constexpr OpInfo kOpTable[kNumOpcodes] = {
    /* ADD   */ alu2("add"),
    /* SUB   */ alu2("sub"),
    /* AND   */ alu2("and"),
    /* OR    */ alu2("or"),
    /* XOR   */ alu2("xor"),
    /* NOR   */ alu2("nor"),
    /* SLL   */ alu1Imm("sll"),
    /* SRL   */ alu1Imm("srl"),
    /* SRA   */ alu1Imm("sra"),
    /* SLLV  */ alu2("sllv"),
    /* SRLV  */ alu2("srlv"),
    /* SRAV  */ alu2("srav"),
    /* SLT   */ alu2("slt"),
    /* SLTU  */ alu2("sltu"),
    /* MUL   */ {"mul", OpClass::IntMul, false, false, false, false, false,
                 false, false, 2, true},
    /* MULH  */ {"mulh", OpClass::IntMul, false, false, false, false, false,
                 false, false, 2, true},
    /* DIV   */ {"div", OpClass::IntDiv, false, false, false, false, false,
                 false, false, 2, true},
    /* DIVU  */ {"divu", OpClass::IntDiv, false, false, false, false, false,
                 false, false, 2, true},
    /* REM   */ {"rem", OpClass::IntDiv, false, false, false, false, false,
                 false, false, 2, true},
    /* REMU  */ {"remu", OpClass::IntDiv, false, false, false, false, false,
                 false, false, 2, true},
    /* ADDI  */ alu1Imm("addi"),
    /* ANDI  */ alu1Imm("andi"),
    /* ORI   */ alu1Imm("ori"),
    /* XORI  */ alu1Imm("xori"),
    /* SLTI  */ alu1Imm("slti"),
    /* SLTIU */ alu1Imm("sltiu"),
    /* LUI   */ {"lui", OpClass::IntAlu, false, false, false, false, false,
                 false, true, 0, true},
    /* LW    */ load("lw"),
    /* LH    */ load("lh"),
    /* LHU   */ load("lhu"),
    /* LB    */ load("lb"),
    /* LBU   */ load("lbu"),
    /* SW    */ store("sw"),
    /* SH    */ store("sh"),
    /* SB    */ store("sb"),
    /* BEQ   */ branch("beq"),
    /* BNE   */ branch("bne"),
    /* BLT   */ branch("blt"),
    /* BGE   */ branch("bge"),
    /* BLTU  */ branch("bltu"),
    /* BGEU  */ branch("bgeu"),
    /* J     */ {"j", OpClass::Control, false, false, false, true, false,
                 false, true, 0, false},
    /* JAL   */ {"jal", OpClass::Control, false, false, false, true, true,
                 false, true, 0, true},
    /* JR    */ {"jr", OpClass::Control, false, false, false, true, false,
                 true, false, 1, false},
    /* JALR  */ {"jalr", OpClass::Control, false, false, false, true, true,
                 true, false, 1, true},
    /* NOP   */ {"nop", OpClass::Other, false, false, false, false, false,
                 false, false, 0, false},
    /* HALT  */ {"halt", OpClass::Other, false, false, false, false, false,
                 false, false, 0, false},
    /* OUT   */ {"out", OpClass::Other, false, false, false, false, false,
                 false, false, 1, false},
};

} // namespace

const OpInfo &
opInfo(Opcode op)
{
    const int idx = static_cast<int>(op);
    DMT_ASSERT(idx >= 0 && idx < kNumOpcodes, "opcode out of range: %d",
               idx);
    return kOpTable[idx];
}

const char *
mnemonic(Opcode op)
{
    return opInfo(op).mnemonic;
}

int
Instruction::memBytes() const
{
    switch (op) {
      case Opcode::LW:
      case Opcode::SW:
        return 4;
      case Opcode::LH:
      case Opcode::LHU:
      case Opcode::SH:
        return 2;
      case Opcode::LB:
      case Opcode::LBU:
      case Opcode::SB:
        return 1;
      default:
        return 0;
    }
}

bool
Instruction::memSigned() const
{
    return op == Opcode::LB || op == Opcode::LH;
}

Instruction
makeNop()
{
    return Instruction{};
}

Instruction
makeHalt()
{
    Instruction i;
    i.op = Opcode::HALT;
    return i;
}

} // namespace dmt
