/**
 * @file
 * Architectural register naming: MIPS-style ABI aliases used by the
 * assembler, disassembler and workload builder.
 */

#ifndef DMT_ISA_REGS_HH
#define DMT_ISA_REGS_HH

#include <string>
#include <string_view>

#include "common/types.hh"

namespace dmt
{

/** ABI register numbers. */
namespace reg
{
constexpr LogReg zero = 0;
constexpr LogReg at = 1;
constexpr LogReg v0 = 2;
constexpr LogReg v1 = 3;
constexpr LogReg a0 = 4;
constexpr LogReg a1 = 5;
constexpr LogReg a2 = 6;
constexpr LogReg a3 = 7;
constexpr LogReg t0 = 8;
constexpr LogReg t1 = 9;
constexpr LogReg t2 = 10;
constexpr LogReg t3 = 11;
constexpr LogReg t4 = 12;
constexpr LogReg t5 = 13;
constexpr LogReg t6 = 14;
constexpr LogReg t7 = 15;
constexpr LogReg s0 = 16;
constexpr LogReg s1 = 17;
constexpr LogReg s2 = 18;
constexpr LogReg s3 = 19;
constexpr LogReg s4 = 20;
constexpr LogReg s5 = 21;
constexpr LogReg s6 = 22;
constexpr LogReg s7 = 23;
constexpr LogReg t8 = 24;
constexpr LogReg t9 = 25;
constexpr LogReg k0 = 26;
constexpr LogReg k1 = 27;
constexpr LogReg gp = 28;
constexpr LogReg sp = 29;
constexpr LogReg fp = 30;
constexpr LogReg ra = 31;
} // namespace reg

/** ABI name ("$sp") for a register number. */
std::string regName(LogReg r);

/**
 * Parse a register operand: "$sp", "sp", "$29", "r29", "29".
 * @retval true on success, writing the index through @p out.
 */
bool parseReg(std::string_view text, LogReg *out);

} // namespace dmt

#endif // DMT_ISA_REGS_HH
