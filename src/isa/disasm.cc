#include "isa/disasm.hh"

#include "common/strutil.hh"
#include "isa/regs.hh"

namespace dmt
{

std::string
disassemble(const Instruction &inst, Addr pc)
{
    const OpInfo &info = inst.info();
    const std::string m = info.mnemonic;

    if (inst.op == Opcode::NOP || inst.op == Opcode::HALT)
        return m;
    if (inst.op == Opcode::OUT)
        return m + " " + regName(inst.rs);
    if (inst.op == Opcode::J || inst.op == Opcode::JAL)
        return strprintf("%s 0x%x", m.c_str(), inst.jumpTarget());
    if (inst.op == Opcode::JR)
        return m + " " + regName(inst.rs);
    if (inst.op == Opcode::JALR) {
        return m + " " + regName(inst.rd) + ", " + regName(inst.rs);
    }
    if (inst.isCondBranch()) {
        return strprintf("%s %s, %s, 0x%x", m.c_str(),
                         regName(inst.rs).c_str(),
                         regName(inst.rt).c_str(), inst.branchTarget(pc));
    }
    if (inst.isLoad()) {
        return strprintf("%s %s, %d(%s)", m.c_str(),
                         regName(inst.rd).c_str(), inst.imm,
                         regName(inst.rs).c_str());
    }
    if (inst.isStore()) {
        return strprintf("%s %s, %d(%s)", m.c_str(),
                         regName(inst.rt).c_str(), inst.imm,
                         regName(inst.rs).c_str());
    }
    if (inst.op == Opcode::LUI)
        return strprintf("%s %s, 0x%x", m.c_str(),
                         regName(inst.rd).c_str(), inst.imm);
    if (info.hasImm) {
        // ALU immediates (including shift amounts).
        return strprintf("%s %s, %s, %d", m.c_str(),
                         regName(inst.rd).c_str(),
                         regName(inst.rs).c_str(), inst.imm);
    }
    // Three-register ALU forms.
    return strprintf("%s %s, %s, %s", m.c_str(), regName(inst.rd).c_str(),
                     regName(inst.rs).c_str(), regName(inst.rt).c_str());
}

} // namespace dmt
