/**
 * @file
 * Canonical decoded instruction representation and its static queries
 * (sources, destination, branch/call classification, targets).
 *
 * Register-field conventions:
 *  - ALU reg-reg:  rd <- rs OP rt
 *  - Shifts-imm:   rd <- rs SHIFT imm (imm is the shift amount)
 *  - ALU imm:      rd <- rs OP imm (logical imms are zero-extended by the
 *                  assembler; arithmetic imms are signed)
 *  - LUI:          rd <- imm << 16
 *  - Loads:        rd <- mem[rs + imm]
 *  - Stores:       mem[rs + imm] <- rt
 *  - Branches:     compare rs, rt; target = pc + 4 + imm (imm in bytes)
 *  - J/JAL:        target = imm (absolute byte address); JAL writes rd
 *  - JR:           target = rs
 *  - JALR:         target = rs; writes rd
 *  - OUT:          emits rs to the program output stream at retirement
 */

#ifndef DMT_ISA_INST_HH
#define DMT_ISA_INST_HH

#include "common/types.hh"
#include "isa/opcodes.hh"

namespace dmt
{

/** A decoded instruction, independent of its memory encoding. */
struct Instruction
{
    Opcode op = Opcode::NOP;
    LogReg rd = 0;
    LogReg rs = 0;
    LogReg rt = 0;
    i32 imm = 0;

    bool operator==(const Instruction &) const = default;

    const OpInfo &info() const { return opInfo(op); }

    bool isLoad() const { return info().isLoad; }
    bool isStore() const { return info().isStore; }
    bool isMem() const { return isLoad() || isStore(); }
    bool isCondBranch() const { return info().isCondBranch; }
    bool isJump() const { return info().isJump; }
    bool isControl() const { return isCondBranch() || isJump(); }
    bool isCall() const { return info().isCall; }
    bool isIndirect() const { return info().isIndirect; }
    bool isReturn() const { return op == Opcode::JR && rs == 31; }
    bool isHalt() const { return op == Opcode::HALT; }

    /** Number of register sources read (0..2). */
    int numSrcs() const { return info().numSrcs; }

    /**
     * The i-th register source.  src(0) is always rs for one-source
     * instructions; two-source instructions read rs then rt.
     */
    LogReg src(int i) const { return i == 0 ? rs : rt; }

    /**
     * Destination logical register, or -1 when none (stores, branches,
     * HALT...).  Writes to r0 are architecturally discarded but still
     * reported here; callers interested in dataflow should use
     * effectiveDest().
     */
    int dest() const { return info().hasDest ? rd : -1; }

    /** dest() with r0-writes treated as no destination. */
    int
    effectiveDest() const
    {
        const int d = dest();
        return d == 0 ? -1 : d;
    }

    /** Conditional-branch target for an instance at @p pc. */
    Addr
    branchTarget(Addr pc) const
    {
        return pc + 4 + static_cast<u32>(imm);
    }

    /** Absolute target of J/JAL. */
    Addr jumpTarget() const { return static_cast<u32>(imm); }

    /**
     * True when this is a conditional branch whose target precedes it —
     * the paper's heuristic signal for a loop-closing branch.
     */
    bool
    isBackwardBranch(Addr pc) const
    {
        (void)pc; // backwardness is encoded in the (PC-relative) imm sign
        return isCondBranch() && imm < 0;
    }

    /** Bytes accessed by a load/store (1, 2 or 4); 0 otherwise. */
    int memBytes() const;

    /** True for loads that sign-extend (LB/LH). */
    bool memSigned() const;
};

/** A NOP instruction value. */
Instruction makeNop();

/** A HALT instruction value. */
Instruction makeHalt();

} // namespace dmt

#endif // DMT_ISA_INST_HH
