#include "isa/encoding.hh"

#include "common/bitutils.hh"
#include "common/strutil.hh"

namespace dmt
{

namespace
{

enum class Format { R, I, JFmt };

Format
formatOf(Opcode op)
{
    switch (op) {
      case Opcode::J:
      case Opcode::JAL:
        return Format::JFmt;
      case Opcode::ADDI:
      case Opcode::ANDI:
      case Opcode::ORI:
      case Opcode::XORI:
      case Opcode::SLTI:
      case Opcode::SLTIU:
      case Opcode::LUI:
      case Opcode::LW:
      case Opcode::LH:
      case Opcode::LHU:
      case Opcode::LB:
      case Opcode::LBU:
      case Opcode::SW:
      case Opcode::SH:
      case Opcode::SB:
      case Opcode::BEQ:
      case Opcode::BNE:
      case Opcode::BLT:
      case Opcode::BGE:
      case Opcode::BLTU:
      case Opcode::BGEU:
        return Format::I;
      default:
        return Format::R;
    }
}

bool
isLogicalImm(Opcode op)
{
    return op == Opcode::ANDI || op == Opcode::ORI || op == Opcode::XORI
        || op == Opcode::LUI;
}

bool
isShiftImm(Opcode op)
{
    return op == Opcode::SLL || op == Opcode::SRL || op == Opcode::SRA;
}

} // namespace

bool
encodeInst(const Instruction &inst, u32 *word, std::string *err)
{
    const auto fail = [&](const std::string &msg) {
        if (err)
            *err = msg;
        return false;
    };

    const u32 op = static_cast<u32>(inst.op);
    if (op >= static_cast<u32>(kNumOpcodes))
        return fail("bad opcode");
    if (inst.rd >= 32 || inst.rs >= 32 || inst.rt >= 32)
        return fail("register index out of range");

    u32 w = insertBits(op, 31, 26);
    switch (formatOf(inst.op)) {
      case Format::R: {
          if (isShiftImm(inst.op) && (inst.imm < 0 || inst.imm > 31))
              return fail("shift amount out of range");
          if (!isShiftImm(inst.op) && inst.imm != 0)
              return fail("R-type carries an immediate");
          w |= insertBits(inst.rd, 25, 21);
          w |= insertBits(inst.rs, 20, 16);
          w |= insertBits(inst.rt, 15, 11);
          w |= insertBits(static_cast<u32>(inst.imm), 10, 0);
          break;
      }
      case Format::I: {
          i32 field = inst.imm;
          if (inst.isCondBranch()) {
              if (field & 3)
                  return fail("branch offset not word aligned");
              field >>= 2;
          }
          if (isLogicalImm(inst.op)) {
              if (field < 0 || field > 0xFFFF)
                  return fail(strprintf("logical immediate 0x%x out of "
                                        "range", field));
          } else if (field < -32768 || field > 32767) {
              return fail(strprintf("immediate %d out of range", field));
          }
          // Stores and branches carry their second source in the rd slot.
          const u32 top = (inst.isStore() || inst.isCondBranch())
              ? inst.rt : inst.rd;
          w |= insertBits(top, 25, 21);
          w |= insertBits(inst.rs, 20, 16);
          w |= insertBits(static_cast<u32>(field) & 0xFFFF, 15, 0);
          break;
      }
      case Format::JFmt: {
          const u32 target = static_cast<u32>(inst.imm);
          if (target & 3)
              return fail("jump target not word aligned");
          if ((target >> 2) >= (1u << 26))
              return fail("jump target out of 26-bit range");
          if (inst.op == Opcode::JAL && inst.rd != 31)
              return fail("JAL must link through r31");
          w |= insertBits(target >> 2, 25, 0);
          break;
      }
    }
    *word = w;
    return true;
}

Instruction
decodeInst(u32 word)
{
    const u32 opField = bits(word, 31, 26);
    if (opField >= static_cast<u32>(kNumOpcodes))
        return makeHalt();

    Instruction inst;
    inst.op = static_cast<Opcode>(opField);

    switch (formatOf(inst.op)) {
      case Format::R:
        inst.rd = static_cast<LogReg>(bits(word, 25, 21));
        inst.rs = static_cast<LogReg>(bits(word, 20, 16));
        inst.rt = static_cast<LogReg>(bits(word, 15, 11));
        inst.imm = static_cast<i32>(bits(word, 10, 0));
        break;
      case Format::I: {
          const u32 top = bits(word, 25, 21);
          if (inst.isStore() || inst.isCondBranch()) {
              inst.rt = static_cast<LogReg>(top);
          } else {
              inst.rd = static_cast<LogReg>(top);
          }
          inst.rs = static_cast<LogReg>(bits(word, 20, 16));
          const u32 raw = bits(word, 15, 0);
          if (isLogicalImm(inst.op)) {
              inst.imm = static_cast<i32>(raw);
          } else {
              inst.imm = signExtend(raw, 16);
          }
          if (inst.isCondBranch())
              inst.imm <<= 2;
          break;
      }
      case Format::JFmt:
        inst.imm = static_cast<i32>(bits(word, 25, 0) << 2);
        if (inst.op == Opcode::JAL)
            inst.rd = 31;
        break;
    }
    return inst;
}

} // namespace dmt
