#include "isa/regs.hh"

#include "common/log.hh"
#include "common/strutil.hh"

namespace dmt
{

namespace
{

const char *kRegNames[kNumLogRegs] = {
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
};

} // namespace

std::string
regName(LogReg r)
{
    DMT_ASSERT(r < kNumLogRegs, "register %d out of range", r);
    return std::string("$") + kRegNames[r];
}

bool
parseReg(std::string_view text, LogReg *out)
{
    text = trim(text);
    if (text.empty())
        return false;
    if (text.front() == '$')
        text.remove_prefix(1);
    if (text.empty())
        return false;

    // Symbolic ABI name?
    for (int i = 0; i < kNumLogRegs; ++i) {
        if (iequals(text, kRegNames[i])) {
            *out = static_cast<LogReg>(i);
            return true;
        }
    }

    // Numeric form, optionally r-prefixed.
    if (text.front() == 'r' || text.front() == 'R')
        text.remove_prefix(1);
    i64 idx;
    if (!parseInt(text, &idx) || idx < 0 || idx >= kNumLogRegs)
        return false;
    *out = static_cast<LogReg>(idx);
    return true;
}

} // namespace dmt
