/**
 * @file
 * Instruction disassembly for traces, examples and debugging.
 */

#ifndef DMT_ISA_DISASM_HH
#define DMT_ISA_DISASM_HH

#include <string>

#include "isa/inst.hh"

namespace dmt
{

/**
 * Render @p inst as assembly text.  When @p pc is meaningful,
 * branch/jump targets are shown as absolute addresses.
 */
std::string disassemble(const Instruction &inst, Addr pc = 0);

} // namespace dmt

#endif // DMT_ISA_DISASM_HH
