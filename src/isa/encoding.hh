/**
 * @file
 * Binary encoding of the ISA into 32-bit words.
 *
 * Formats (op always in bits [31:26]):
 *  - R-type:  op | rd[25:21] | rs[20:16] | rt[15:11] | shamt/zero[10:0]
 *  - I-type:  op | rd[25:21] | rs[20:16] | imm16[15:0]
 *             (stores put the data register in the rd field; branches put
 *              the second comparison source in the rd field; branch
 *              offsets are encoded in words, giving a +/-128KB reach)
 *  - J-type:  op | target26[25:0] (word address)
 */

#ifndef DMT_ISA_ENCODING_HH
#define DMT_ISA_ENCODING_HH

#include <string>

#include "isa/inst.hh"

namespace dmt
{

/**
 * Encode @p inst into a 32-bit word.
 *
 * @retval true on success.  On failure (field out of range) returns
 * false and writes a diagnostic into @p err when non-null.
 */
bool encodeInst(const Instruction &inst, u32 *word, std::string *err);

/**
 * Decode a 32-bit word back into the canonical instruction form.
 * Unknown opcodes decode as HALT (a fetch into garbage stops the
 * offending speculative thread rather than corrupting the simulation).
 */
Instruction decodeInst(u32 word);

} // namespace dmt

#endif // DMT_ISA_ENCODING_HH
