/**
 * @file
 * Opcode enumeration and static opcode traits for the simulator's
 * MIPS-like 32-bit RISC instruction set.
 *
 * The ISA deliberately mirrors the SimpleScalar/MIPS subset the paper
 * simulates: three-operand integer ALU ops, immediate forms, loads and
 * stores of bytes/halves/words, two-register conditional branches,
 * absolute and register jumps with a link form for procedure calls, and
 * a HALT/OUT pair replacing syscalls so that runs are self-contained.
 */

#ifndef DMT_ISA_OPCODES_HH
#define DMT_ISA_OPCODES_HH

#include <cstdint>

namespace dmt
{

enum class Opcode : std::uint8_t
{
    // ALU register-register
    ADD, SUB, AND, OR, XOR, NOR,
    SLL, SRL, SRA, SLLV, SRLV, SRAV,
    SLT, SLTU,
    MUL, MULH, DIV, DIVU, REM, REMU,
    // ALU register-immediate
    ADDI, ANDI, ORI, XORI, SLTI, SLTIU, LUI,
    // Memory
    LW, LH, LHU, LB, LBU, SW, SH, SB,
    // Conditional branches (PC-relative)
    BEQ, BNE, BLT, BGE, BLTU, BGEU,
    // Jumps
    J, JAL, JR, JALR,
    // Misc
    NOP, HALT, OUT,

    NumOpcodes
};

/** Broad execution classes used by the issue stage to pick an FU. */
enum class OpClass : std::uint8_t
{
    IntAlu,     ///< single-cycle integer op
    IntMul,     ///< pipelined multiplier
    IntDiv,     ///< unpipelined divider
    MemRead,    ///< load
    MemWrite,   ///< store
    Control,    ///< branch or jump
    Other,      ///< NOP / HALT / OUT
};

/** Static per-opcode properties. */
struct OpInfo
{
    const char *mnemonic;
    OpClass opClass;
    bool isLoad;
    bool isStore;
    bool isCondBranch;
    bool isJump;         ///< unconditional control transfer
    bool isCall;         ///< writes a return address (JAL / JALR)
    bool isIndirect;     ///< target comes from a register (JR / JALR)
    bool hasImm;
    /** Number of register sources actually read (0..2). */
    int numSrcs;
    /** true when the instruction writes a destination register. */
    bool hasDest;
};

/** Lookup table access; panics on out-of-range opcode. */
const OpInfo &opInfo(Opcode op);

/** Convenience: mnemonic text for an opcode. */
const char *mnemonic(Opcode op);

/** Number of opcodes (for table sizing / iteration in tests). */
constexpr int kNumOpcodes = static_cast<int>(Opcode::NumOpcodes);

} // namespace dmt

#endif // DMT_ISA_OPCODES_HH
