#include "workloads/workloads.hh"

#include "common/log.hh"
#include "workloads/generator.hh"

namespace dmt
{

const std::vector<WorkloadInfo> &
workloadSuite()
{
    static const std::vector<WorkloadInfo> suite = {
        {"go", "099.go", "branchy position evaluation, deep heuristics",
         &buildGo},
        {"m88ksim", "124.m88ksim",
         "instruction-interpreter dispatch loop, call per step",
         &buildM88ksim},
        {"gcc", "126.gcc", "recursive IR tree construction and walking",
         &buildGcc},
        {"compress", "129.compress",
         "LZW-style hash-table compression loop", &buildCompress},
        {"li", "130.li", "recursive cons-cell interpreter with marking",
         &buildLi},
        {"ijpeg", "132.ijpeg", "nested-loop block transforms",
         &buildIjpeg},
        {"perl", "134.perl", "string hashing and opcode dispatch",
         &buildPerl},
        {"vortex", "147.vortex", "object-database lookups and updates",
         &buildVortex},
    };
    return suite;
}

Program
buildWorkload(const std::string &name)
{
    if (isGenSpec(name))
        return buildGenWorkload(name);
    for (const WorkloadInfo &w : workloadSuite()) {
        if (name == w.name)
            return w.build();
    }
    fatal("unknown workload '%s'", name.c_str());
}

} // namespace dmt
