/**
 * @file
 * Small self-checking programs used by the test suite and the examples.
 * Each returns a finished Program that OUTs its result(s) and HALTs.
 */

#include "workloads/workloads.hh"

#include "casm/builder.hh"
#include "common/rng.hh"

namespace dmt
{

using namespace reg;

Program
mkFibRecursive(int n)
{
    AsmBuilder b;
    const auto fib = b.newLabel("fib");

    // main
    b.li(a0, static_cast<u32>(n));
    b.jal(fib);
    b.out(v0);
    b.halt();

    // fib(n): n < 2 ? n : fib(n-1) + fib(n-2)
    b.bind(fib);
    const auto recurse = b.newLabel();
    b.slti(t0, a0, 2);
    b.beqz(t0, recurse);
    b.move(v0, a0);
    b.ret();

    b.bind(recurse);
    b.addi(sp, sp, -12);
    b.sw(ra, 8, sp);
    b.sw(s0, 4, sp);
    b.sw(a0, 0, sp);
    b.addi(a0, a0, -1);
    b.jal(fib);
    b.move(s0, v0);
    b.lw(a0, 0, sp);
    b.addi(a0, a0, -2);
    b.jal(fib);
    b.add(v0, v0, s0);
    b.lw(s0, 4, sp);
    b.lw(ra, 8, sp);
    b.addi(sp, sp, 12);
    b.ret();

    return b.finish();
}

Program
mkSumLoop(int n)
{
    AsmBuilder b;
    const auto loop = b.newLabel("loop");

    b.li(t0, 0);                       // i
    b.li(t1, 0);                       // sum
    b.li(t2, static_cast<u32>(n));
    b.bind(loop);
    b.add(t1, t1, t0);
    b.addi(t0, t0, 1);
    b.blt(t0, t2, loop);
    b.out(t1);
    b.halt();
    return b.finish();
}

Program
mkMatmul(int n)
{
    AsmBuilder b;
    Rng gen(0x1234abcdu);

    std::vector<u32> a_init;
    std::vector<u32> b_init;
    for (int i = 0; i < n * n; ++i) {
        a_init.push_back(gen.next32() % 1000);
        b_init.push_back(gen.next32() % 1000);
    }

    const auto la_ = b.newLabel("mat_a");
    const auto lb_ = b.newLabel("mat_b");
    const auto lc_ = b.newLabel("mat_c");
    b.bindData(la_);
    b.dataWords(a_init);
    b.bindData(lb_);
    b.dataWords(b_init);
    b.bindData(lc_);
    b.dataSpace(static_cast<u32>(n * n * 4));

    // Registers: s0=a, s1=b, s2=c, s3=i, s4=j, s5=k, s6=acc, s7=n
    b.la(s0, la_);
    b.la(s1, lb_);
    b.la(s2, lc_);
    b.li(s7, static_cast<u32>(n));

    const auto iloop = b.newLabel();
    const auto jloop = b.newLabel();
    const auto kloop = b.newLabel();
    b.li(s3, 0);
    b.bind(iloop);
    b.li(s4, 0);
    b.bind(jloop);
    b.li(s5, 0);
    b.li(s6, 0);
    b.bind(kloop);
    // acc += a[i*n+k] * b[k*n+j]
    b.mul(t0, s3, s7);
    b.add(t0, t0, s5);
    b.sll(t0, t0, 2);
    b.add(t0, t0, s0);
    b.lw(t1, 0, t0);
    b.mul(t2, s5, s7);
    b.add(t2, t2, s4);
    b.sll(t2, t2, 2);
    b.add(t2, t2, s1);
    b.lw(t3, 0, t2);
    b.mul(t4, t1, t3);
    b.add(s6, s6, t4);
    b.addi(s5, s5, 1);
    b.blt(s5, s7, kloop);
    // c[i*n+j] = acc
    b.mul(t0, s3, s7);
    b.add(t0, t0, s4);
    b.sll(t0, t0, 2);
    b.add(t0, t0, s2);
    b.sw(s6, 0, t0);
    b.addi(s4, s4, 1);
    b.blt(s4, s7, jloop);
    b.addi(s3, s3, 1);
    b.blt(s3, s7, iloop);

    // checksum = xor of c
    const auto sumloop = b.newLabel();
    b.li(t0, 0);                      // idx
    b.mul(t1, s7, s7);                // n*n
    b.li(t2, 0);                      // xor acc
    b.bind(sumloop);
    b.sll(t3, t0, 2);
    b.add(t3, t3, s2);
    b.lw(t4, 0, t3);
    b.xor_(t2, t2, t4);
    b.addi(t0, t0, 1);
    b.blt(t0, t1, sumloop);
    b.out(t2);
    b.halt();
    return b.finish();
}

Program
mkSort(int n)
{
    AsmBuilder b;
    Rng gen(0x5eedu + static_cast<u64>(n));
    std::vector<u32> init;
    for (int i = 0; i < n; ++i)
        init.push_back(gen.next32() & 0xFFFF);

    const auto arr = b.newLabel("arr");
    b.bindData(arr);
    b.dataWords(init);

    b.la(s0, arr);
    b.li(s1, static_cast<u32>(n));

    // Bubble sort.
    const auto outer = b.newLabel();
    const auto inner = b.newLabel();
    const auto noswap = b.newLabel();
    const auto inner_end = b.newLabel();
    b.li(s2, 0); // i
    b.bind(outer);
    b.li(s3, 0); // j
    b.sub(t9, s1, s2);
    b.addi(t9, t9, -1); // limit = n - i - 1
    b.blez(t9, inner_end);
    b.bind(inner);
    b.sll(t0, s3, 2);
    b.add(t0, t0, s0);
    b.lw(t1, 0, t0);
    b.lw(t2, 4, t0);
    b.bge(t2, t1, noswap);
    b.sw(t2, 0, t0);
    b.sw(t1, 4, t0);
    b.bind(noswap);
    b.addi(s3, s3, 1);
    b.blt(s3, t9, inner);
    b.bind(inner_end);
    b.addi(s2, s2, 1);
    b.addi(t8, s1, -1);
    b.blt(s2, t8, outer);

    // Emit min, max, xor checksum.
    b.lw(t0, 0, s0);
    b.out(t0);
    b.addi(t1, s1, -1);
    b.sll(t1, t1, 2);
    b.add(t1, t1, s0);
    b.lw(t2, 0, t1);
    b.out(t2);
    const auto ck = b.newLabel();
    b.li(t3, 0);
    b.li(t4, 0);
    b.bind(ck);
    b.sll(t5, t3, 2);
    b.add(t5, t5, s0);
    b.lw(t6, 0, t5);
    b.xor_(t4, t4, t6);
    b.addi(t3, t3, 1);
    b.blt(t3, s1, ck);
    b.out(t4);
    b.halt();
    return b.finish();
}

Program
mkLinkedList(int n)
{
    AsmBuilder b;
    const auto heap = b.newLabel("heap");
    b.bindData(heap);
    b.dataSpace(static_cast<u32>(n * 8 + 8));

    // Build: node[i] = {value = i*i + 1, next = &node[i+1]}, last -> 0.
    const auto build = b.newLabel();
    const auto linked = b.newLabel();
    const auto walk = b.newLabel();
    const auto done = b.newLabel();
    b.la(s0, heap);
    b.li(s1, static_cast<u32>(n));
    b.li(t0, 0);     // i
    b.move(t1, s0);  // cursor
    b.bind(build);
    b.mul(t2, t0, t0);
    b.addi(t2, t2, 1);
    b.sw(t2, 0, t1);
    b.addi(t3, t1, 8);
    b.addi(t4, t0, 1);
    b.bne(t4, s1, linked);
    b.li(t3, 0);     // last node: null next
    b.bind(linked);
    b.sw(t3, 4, t1);
    b.addi(t1, t1, 8);
    b.addi(t0, t0, 1);
    b.blt(t0, s1, build);

    // Walk: sum values following next pointers.
    b.move(t1, s0);
    b.li(s2, 0);
    b.bind(walk);
    b.beqz(t1, done);
    b.lw(t2, 0, t1);
    b.add(s2, s2, t2);
    b.lw(t1, 4, t1);
    b.b(walk);
    b.bind(done);
    b.out(s2);
    b.halt();
    return b.finish();
}

Program
mkCallChain(int n)
{
    AsmBuilder b;
    const auto leaf = b.newLabel("leaf");
    const auto loop = b.newLabel();

    b.li(s0, 0);                     // accumulator
    b.li(s1, static_cast<u32>(n));
    b.li(s2, 0);                     // i
    b.bind(loop);
    b.move(a0, s2);
    b.jal(leaf);
    b.add(s0, s0, v0);
    b.addi(s2, s2, 1);
    b.blt(s2, s1, loop);
    b.out(s0);
    b.halt();

    // leaf(x) = x*2 + 7
    b.bind(leaf);
    b.sll(v0, a0, 1);
    b.addi(v0, v0, 7);
    b.ret();
    return b.finish();
}

Program
mkBranchy(int n)
{
    AsmBuilder b;
    const auto loop = b.newLabel();
    const auto b1 = b.newLabel();
    const auto b2 = b.newLabel();
    const auto next = b.newLabel();

    b.li(s0, 0x1357u);   // xorshift state
    b.li(s1, static_cast<u32>(n));
    b.li(s2, 0);         // i
    b.li(s3, 0);         // count of bit0
    b.li(s4, 0);         // count of bit3
    b.bind(loop);
    // xorshift32
    b.sll(t0, s0, 13);
    b.xor_(s0, s0, t0);
    b.srl(t0, s0, 17);
    b.xor_(s0, s0, t0);
    b.sll(t0, s0, 5);
    b.xor_(s0, s0, t0);
    // data-dependent branches
    b.andi(t1, s0, 1);
    b.beqz(t1, b1);
    b.addi(s3, s3, 1);
    b.bind(b1);
    b.andi(t2, s0, 8);
    b.beqz(t2, b2);
    b.addi(s4, s4, 1);
    b.b(next);
    b.bind(b2);
    b.addi(s4, s4, 0);
    b.bind(next);
    b.addi(s2, s2, 1);
    b.blt(s2, s1, loop);
    b.out(s3);
    b.out(s4);
    b.out(s0);
    b.halt();
    return b.finish();
}

Program
mkAliasStress(int n)
{
    AsmBuilder b;
    const auto buf = b.newLabel("buf");
    b.bindData(buf);
    b.dataSpace(256);

    const auto loop = b.newLabel();
    b.la(s0, buf);
    b.li(s1, static_cast<u32>(n));
    b.li(s2, 0);  // i
    b.li(s3, 0);  // acc
    b.bind(loop);
    // word slot = (i * 7) % 32
    b.mul(t0, s2, s2);
    b.addi(t0, t0, 7);
    b.andi(t0, t0, 31);
    b.sll(t0, t0, 2);
    b.add(t0, t0, s0);
    // store a word, read back bytes and halves (contained forwards)
    b.sw(s2, 0, t0);
    b.lbu(t1, 0, t0);
    b.lhu(t2, 2, t0);
    b.add(s3, s3, t1);
    b.add(s3, s3, t2);
    // store a byte then load the containing word (partial overlap)
    b.sb(s2, 1, t0);
    b.lw(t3, 0, t0);
    b.xor_(s3, s3, t3);
    b.addi(s2, s2, 1);
    b.blt(s2, s1, loop);
    b.out(s3);
    b.halt();
    return b.finish();
}

Program
mkDeepRecursion(int depth)
{
    AsmBuilder b;
    const auto rec = b.newLabel("rec");

    b.li(a0, static_cast<u32>(depth));
    b.jal(rec);
    b.out(v0);
    b.halt();

    // rec(n): if n == 0 return 1; return rec(n-1)*2 + n (saving s-regs)
    b.bind(rec);
    const auto go = b.newLabel();
    b.bnez(a0, go);
    b.li(v0, 1);
    b.ret();
    b.bind(go);
    b.addi(sp, sp, -16);
    b.sw(ra, 12, sp);
    b.sw(s0, 8, sp);
    b.sw(s1, 4, sp);
    b.sw(a0, 0, sp);
    b.move(s0, a0);
    b.addi(s1, a0, 100);
    b.addi(a0, a0, -1);
    b.jal(rec);
    b.sll(v0, v0, 1);
    b.lw(t0, 0, sp);
    b.add(v0, v0, t0);
    b.sub(v0, v0, s1);
    b.add(v0, v0, s0);
    b.addi(v0, v0, 100);
    b.lw(s1, 4, sp);
    b.lw(s0, 8, sp);
    b.lw(ra, 12, sp);
    b.addi(sp, sp, 16);
    b.ret();
    return b.finish();
}

Program
mkLoopBreak(int outer, int inner)
{
    AsmBuilder b;
    const auto oloop = b.newLabel();
    const auto iloop = b.newLabel();
    const auto brk = b.newLabel();
    const auto icont = b.newLabel();

    b.li(s0, 0);                        // i
    b.li(s1, static_cast<u32>(outer));
    b.li(s2, static_cast<u32>(inner));
    b.li(s5, 0);                        // acc
    b.bind(oloop);
    b.li(s3, 0);                        // j
    b.bind(iloop);
    b.add(s5, s5, s3);
    // break when (i + j) & 15 == 13 — an unusual loop exit
    b.add(t0, s0, s3);
    b.andi(t0, t0, 15);
    b.addi(t1, t0, -13);
    b.beqz(t1, brk);
    b.addi(s3, s3, 1);
    b.blt(s3, s2, iloop);
    b.b(icont);
    b.bind(brk);
    b.addi(s5, s5, 1000);
    b.bind(icont);
    b.addi(s0, s0, 1);
    b.blt(s0, s1, oloop);
    b.out(s5);
    b.halt();
    return b.finish();
}

} // namespace dmt
