/**
 * @file
 * "ijpeg"-like workload: 8x8 block transforms over a synthetic image.
 * Per block, a called procedure runs butterfly passes over rows and
 * columns, quantizes with a division table, and accumulates a zig-zag
 * checksum.  Mimics 132.ijpeg: regular nested loops, multiply/divide
 * pressure, moderate call density — the loop-thread complement to the
 * call-heavy kernels.
 */

#include "workloads/workloads.hh"

#include "casm/builder.hh"
#include "common/rng.hh"

namespace dmt
{

using namespace reg;

Program
buildIjpeg()
{
    constexpr int kDim = 64;    // image is kDim x kDim words
    constexpr int kPasses = 3;

    AsmBuilder b;
    Rng gen(0x1deadA11u);

    std::vector<u32> image;
    for (int i = 0; i < kDim * kDim; ++i)
        image.push_back(gen.next32() & 0xFF);
    std::vector<u32> quant = {16, 11, 10, 16, 24, 40, 51, 61};

    const auto image_l = b.newLabel("image");
    b.bindData(image_l);
    b.dataWords(image);
    const auto quant_l = b.newLabel("quant");
    b.bindData(quant_l);
    b.dataWords(quant);

    const auto block = b.newLabel("transform_block");

    // ---- main -------------------------------------------------------------
    // s0 = image, s1 = pass, s2 = checksum
    b.la(s0, image_l);
    b.li(s1, 0);
    b.li(s2, 0);
    const auto pass_loop = b.newLabel();
    const auto by_loop = b.newLabel();
    const auto bx_loop = b.newLabel();
    b.bind(pass_loop);
    b.li(s3, 0); // block y
    b.bind(by_loop);
    b.li(s4, 0); // block x
    b.bind(bx_loop);
    // a0 = &image[by*8*kDim + bx*8]
    b.li(t0, 8 * kDim);
    b.mul(t1, s3, t0);
    b.sll(t2, s4, 3);
    b.add(t1, t1, t2);
    b.sll(t1, t1, 2);
    b.add(a0, t1, s0);
    b.jal(block);
    b.add(s2, s2, v0);
    b.addi(s4, s4, 1);
    b.li(t3, kDim / 8);
    b.blt(s4, t3, bx_loop);
    b.addi(s3, s3, 1);
    b.blt(s3, t3, by_loop);
    b.addi(s1, s1, 1);
    b.li(t4, kPasses);
    b.blt(s1, t4, pass_loop);
    b.out(s2);
    b.halt();

    // ---- transform_block(base) -> checksum ---------------------------------
    b.bind(block);
    // Row butterflies: for each row r: for k in 0..3:
    //   a = m[r][k]; c = m[r][7-k];
    //   m[r][k] = a + c; m[r][7-k] = (a - c) >> 1
    const auto row_loop = b.newLabel();
    const auto rk_loop = b.newLabel();
    b.li(t9, 0); // r
    b.bind(row_loop);
    b.li(t8, 0); // k
    b.bind(rk_loop);
    b.li(t0, 4 * kDim);
    b.mul(t1, t9, t0);
    b.add(t1, t1, a0);      // row base
    b.sll(t2, t8, 2);
    b.add(t2, t2, t1);      // &m[r][k]
    b.li(t3, 7);
    b.sub(t3, t3, t8);
    b.sll(t3, t3, 2);
    b.add(t3, t3, t1);      // &m[r][7-k]
    b.lw(t4, 0, t2);
    b.lw(t5, 0, t3);
    b.add(t6, t4, t5);
    b.sub(t7, t4, t5);
    b.sra(t7, t7, 1);
    b.sw(t6, 0, t2);
    b.sw(t7, 0, t3);
    b.addi(t8, t8, 1);
    b.li(t0, 4);
    b.blt(t8, t0, rk_loop);
    b.addi(t9, t9, 1);
    b.li(t0, 8);
    b.blt(t9, t0, row_loop);

    // Column quantize + zig-zag checksum:
    // v0 accumulates m[r][c] / quant[(r+c)&7] with alternating sign.
    const auto cq_outer = b.newLabel();
    const auto cq_inner = b.newLabel();
    const auto cq_cont = b.newLabel();
    const auto no_neg = b.newLabel();
    b.li(v0, 0);
    b.li(t9, 0); // r
    b.la(t8, quant_l);
    b.bind(cq_outer);
    b.li(t7, 0); // c
    b.bind(cq_inner);
    b.li(t0, 4 * kDim);
    b.mul(t1, t9, t0);
    b.sll(t2, t7, 2);
    b.add(t1, t1, t2);
    b.add(t1, t1, a0);
    b.lw(t3, 0, t1);        // coefficient
    b.add(t4, t9, t7);
    b.andi(t4, t4, 7);
    b.sll(t4, t4, 2);
    b.add(t4, t4, t8);
    b.lw(t5, 0, t4);        // quantizer (non-zero)
    b.div_(t6, t3, t5);
    b.sw(t6, 0, t1);        // store quantized value back
    b.andi(t0, t4, 4);      // pseudo-alternating sign
    b.beqz(t0, no_neg);
    b.sub(v0, v0, t6);
    b.b(cq_cont);
    b.bind(no_neg);
    b.add(v0, v0, t6);
    b.bind(cq_cont);
    b.addi(t7, t7, 1);
    b.li(t0, 8);
    b.blt(t7, t0, cq_inner);
    b.addi(t9, t9, 1);
    b.blt(t9, t0, cq_outer);
    b.ret();

    return b.finish();
}

} // namespace dmt
