/**
 * @file
 * "gcc"-like workload: builds random expression trees in an arena,
 * recursively evaluates them, constant-folds them in place, and
 * re-evaluates.  Mimics 126.gcc's recursive IR walking: deep call
 * chains, pointer-rich data, and branchy opcode dispatch.
 */

#include "workloads/workloads.hh"

#include "casm/builder.hh"

namespace dmt
{

using namespace reg;

Program
buildGcc()
{
    constexpr int kDepth = 7;       // 2^(kDepth+1)-1 = 255 nodes/tree
    constexpr int kTrees = 100;
    constexpr u32 kArenaBytes = 16 * 1024;

    AsmBuilder b;

    const auto arena_l = b.newLabel("arena");
    b.bindData(arena_l);
    b.dataSpace(kArenaBytes);
    const auto next_l = b.newLabel("arena_next");
    b.bindData(next_l);
    b.dataWords({0});

    const auto build = b.newLabel("build_tree");
    const auto eval = b.newLabel("eval_tree");
    const auto fold = b.newLabel("fold_tree");

    // Node layout: +0 op (0 = leaf), +4 left, +8 right, +12 val.

    // ---- main ------------------------------------------------------------
    b.li(s0, 0);  // tree index
    b.li(s1, 0);  // checksum
    const auto tree_loop = b.newLabel();
    b.bind(tree_loop);
    // Reset the arena.
    b.la(t0, arena_l);
    b.la(t1, next_l);
    b.sw(t0, 0, t1);
    // root = build(kDepth, seed)
    b.li(a0, kDepth);
    b.li(t2, 0x9E37u);
    b.mul(a1, s0, t2);
    b.addi(a1, a1, 0x79B9 & 0x7FFF);
    b.jal(build);
    b.move(s2, v0);
    // checksum += eval(root)
    b.move(a0, s2);
    b.jal(eval);
    b.add(s1, s1, v0);
    // fold(root); checksum ^= eval(root)
    b.move(a0, s2);
    b.jal(fold);
    b.move(a0, s2);
    b.jal(eval);
    b.xor_(s1, s1, v0);
    b.addi(s0, s0, 1);
    b.li(t3, kTrees);
    b.blt(s0, t3, tree_loop);
    b.out(s1);
    b.halt();

    // ---- build(depth, seed) -> node ---------------------------------------
    b.bind(build);
    // allocate 16 bytes
    b.la(t0, next_l);
    b.lw(t1, 0, t0);
    b.addi(t2, t1, 16);
    b.sw(t2, 0, t0);
    const auto interior = b.newLabel();
    b.bnez(a0, interior);
    // leaf: val = seed ^ (seed >> 7), op = 0
    b.sw(zero, 0, t1);
    b.srl(t3, a1, 7);
    b.xor_(t3, t3, a1);
    b.sw(t3, 12, t1);
    b.move(v0, t1);
    b.ret();
    b.bind(interior);
    b.addi(sp, sp, -16);
    b.sw(ra, 12, sp);
    b.sw(s3, 8, sp);
    b.sw(s4, 4, sp);
    b.sw(s5, 0, sp);
    b.move(s3, t1);                 // node
    b.move(s4, a0);                 // depth
    b.move(s5, a1);                 // seed
    // op = 1 + (seed & 3)
    b.andi(t4, a1, 3);
    b.addi(t4, t4, 1);
    b.sw(t4, 0, s3);
    // left = build(depth-1, seed*1103515245 + 12345)
    b.addi(a0, s4, -1);
    b.li(t5, 1103515245u);
    b.mul(a1, s5, t5);
    b.addi(a1, a1, 12345);
    b.jal(build);
    b.sw(v0, 4, s3);
    // right = build(depth-1, seed*69069 + 1)
    b.addi(a0, s4, -1);
    b.li(t5, 69069u);
    b.mul(a1, s5, t5);
    b.addi(a1, a1, 1);
    b.jal(build);
    b.sw(v0, 8, s3);
    b.sw(zero, 12, s3);
    b.move(v0, s3);
    b.lw(s5, 0, sp);
    b.lw(s4, 4, sp);
    b.lw(s3, 8, sp);
    b.lw(ra, 12, sp);
    b.addi(sp, sp, 16);
    b.ret();

    // ---- eval(node) -> value ------------------------------------------------
    b.bind(eval);
    b.lw(t0, 0, a0);                // op
    const auto e_interior = b.newLabel();
    b.bnez(t0, e_interior);
    b.lw(v0, 12, a0);
    b.ret();
    b.bind(e_interior);
    b.addi(sp, sp, -12);
    b.sw(ra, 8, sp);
    b.sw(s3, 4, sp);
    b.sw(s4, 0, sp);
    b.move(s3, a0);
    b.lw(a0, 4, s3);
    b.jal(eval);
    b.move(s4, v0);                 // left value
    b.lw(a0, 8, s3);
    b.jal(eval);                    // v0 = right value
    // Per-node attribute pass: canonicalize the operand values with a
    // short mixing loop (stands in for gcc's per-node bookkeeping —
    // real gcc does far more straight-line work per IR node than a
    // bare operator application).
    {
        const auto mixl = b.newLabel();
        b.li(t6, 6);
        b.bind(mixl);
        b.srl(t7, s4, 3);
        b.xor_(t7, t7, v0);
        b.sll(t8, t7, 1);
        b.add(t7, t7, t8);
        b.andi(t7, t7, 0xFFF);
        b.add(s4, s4, t7);
        b.addi(t6, t6, -1);
        b.bgtz(t6, mixl);
    }
    b.lw(t0, 0, s3);
    {
        const auto op2 = b.newLabel();
        const auto op3 = b.newLabel();
        const auto op4 = b.newLabel();
        const auto done = b.newLabel();
        b.addi(t1, t0, -1);
        b.bnez(t1, op2);
        b.add(v0, s4, v0);
        b.b(done);
        b.bind(op2);
        b.addi(t1, t0, -2);
        b.bnez(t1, op3);
        b.sub(v0, s4, v0);
        b.b(done);
        b.bind(op3);
        b.addi(t1, t0, -3);
        b.bnez(t1, op4);
        b.mul(v0, s4, v0);
        b.b(done);
        b.bind(op4);
        b.xor_(v0, s4, v0);
        b.bind(done);
    }
    b.lw(s4, 0, sp);
    b.lw(s3, 4, sp);
    b.lw(ra, 8, sp);
    b.addi(sp, sp, 12);
    b.ret();

    // ---- fold(node): constant-fold in place --------------------------------
    b.bind(fold);
    b.lw(t0, 0, a0);
    const auto f_interior = b.newLabel();
    b.bnez(t0, f_interior);
    b.ret();
    b.bind(f_interior);
    b.addi(sp, sp, -8);
    b.sw(ra, 4, sp);
    b.sw(s3, 0, sp);
    b.move(s3, a0);
    b.lw(a0, 4, s3);
    b.jal(fold);
    b.lw(a0, 8, s3);
    b.jal(fold);
    // Both children are now leaves: compute and become a leaf.
    b.lw(t1, 4, s3);
    b.lw(t2, 12, t1);               // left val
    b.lw(t1, 8, s3);
    b.lw(t3, 12, t1);               // right val
    b.lw(t0, 0, s3);
    {
        const auto op2 = b.newLabel();
        const auto op3 = b.newLabel();
        const auto op4 = b.newLabel();
        const auto done = b.newLabel();
        b.addi(t4, t0, -1);
        b.bnez(t4, op2);
        b.add(t5, t2, t3);
        b.b(done);
        b.bind(op2);
        b.addi(t4, t0, -2);
        b.bnez(t4, op3);
        b.sub(t5, t2, t3);
        b.b(done);
        b.bind(op3);
        b.addi(t4, t0, -3);
        b.bnez(t4, op4);
        b.mul(t5, t2, t3);
        b.b(done);
        b.bind(op4);
        b.xor_(t5, t2, t3);
        b.bind(done);
    }
    b.sw(zero, 0, s3);
    b.sw(t5, 12, s3);
    b.lw(s3, 0, sp);
    b.lw(ra, 4, sp);
    b.addi(sp, sp, 8);
    b.ret();

    return b.finish();
}

} // namespace dmt
