/**
 * @file
 * Seeded workload-family generator: parameterized program families
 * with tunable call depth, loop trip counts, branch entropy and
 * memory-aliasing density, plus structural shapes the fixed suite
 * lacks (producer-consumer queue, pointer chasing, event-loop
 * dispatch).  A family + seed + knob set is addressed by a *workload
 * spec string*
 *
 *     gen:<family>:<seed>[:knob=value...]
 *
 * accepted everywhere a suite workload name is (buildWorkload, the
 * figure-bench sweep grids, run_workload, the serve daemon), so every
 * layer of the stack gains hundreds of scenarios per family for free.
 *
 * Determinism contract: a spec string fully determines the emitted
 * Program image, bit for bit, on every platform (all randomness comes
 * from the repo's splitmix64 Rng, seeded only from the spec).  Two
 * spellings of the same parameters — knobs in any order, defaulted or
 * explicit — normalize to one canonicalSpec(), and the canonical spec
 * re-parses to identical parameters, so caches and golden files keyed
 * by workload name never split or collide wrongly.  Every generated
 * program is self-checking (OUTs checksums) and provably terminating
 * (fixed trip counts, bounded recursion), which is what turns each
 * seed into a differential-conformance test case (see
 * exp/conformance.hh).
 */

#ifndef DMT_WORKLOADS_GENERATOR_HH
#define DMT_WORKLOADS_GENERATOR_HH

#include <string>
#include <string_view>
#include <vector>

#include "casm/program.hh"

namespace dmt
{

/** One generated-workload family. */
struct GenFamilyInfo
{
    const char *name;      ///< spec-string family component
    const char *character; ///< dominant control-flow behaviour
    const char *knobs;     ///< the knobs this family responds to
};

/** All families, in reporting order. */
const std::vector<GenFamilyInfo> &genFamilies();

/** Parsed gen: spec — a family, a seed, and the knob set. */
struct GenParams
{
    std::string family;
    u64 seed = 1;

    // Knobs.  All integral so canonical rendering is exact; entropy
    // and alias are percentages (0..100).  Ranges are enforced by
    // parseGenSpec(); out-of-range values are rejected, never clamped.
    int depth = 4;     ///< call/recursion depth            [1, 10]
    int trips = 8;     ///< loop trip count                 [1, 100000]
    int entropy = 50;  ///< branch-entropy percentage       [0, 100]
    int alias = 25;    ///< memory-aliasing density percent [0, 100]
    int units = 16;    ///< structural element count        [1, 65536]

    /**
     * The one true spelling of this parameter set:
     * "gen:<family>:<seed>:alias=A:depth=D:entropy=E:trips=T:units=U"
     * with every knob explicit and keys in alphabetical order.
     * Round-trips through parseGenSpec() to equal parameters.
     */
    std::string canonicalSpec() const;
};

/** True when @p name is addressed to the generator ("gen:" prefix). */
bool isGenSpec(std::string_view name);

/**
 * Strict spec parse: unknown family names, malformed or duplicate
 * knobs, out-of-range values, empty fields and trailing garbage all
 * return false with a structured message in @p err — never a fatal().
 * The serve layer rejects bad specs as error replies through this;
 * local paths wrap it with fatal() (buildWorkload).
 */
bool parseGenSpec(std::string_view spec, GenParams *out,
                  std::string *err);

/** Build the program for parsed parameters. */
Program buildGenWorkload(const GenParams &params);

/** Parse + build; fatal() on a malformed spec (local CLI paths). */
Program buildGenWorkload(const std::string &spec);

/**
 * Canonical name for any workload addressable by buildWorkload(): gen
 * specs normalize to GenParams::canonicalSpec(); suite names pass
 * through unchanged.  fatal() on a malformed gen spec.  Runner entry
 * points canonicalize before keying caches or stamping RunResults so
 * every spelling of one workload shares one identity.
 */
std::string canonicalWorkloadName(const std::string &name);

} // namespace dmt

#endif // DMT_WORKLOADS_GENERATOR_HH
