#include "workloads/generator.hh"

#include <algorithm>

#include "casm/builder.hh"
#include "common/env.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "common/strutil.hh"

namespace dmt
{

using namespace reg;

namespace
{

// ---- knob plumbing -----------------------------------------------------

struct KnobRange
{
    const char *key;
    int GenParams::*field;
    int lo;
    int hi;
};

/** Alphabetical by key — the canonicalSpec() rendering order. */
constexpr KnobRange kKnobs[] = {
    {"alias", &GenParams::alias, 0, 100},
    {"depth", &GenParams::depth, 1, 10},
    {"entropy", &GenParams::entropy, 0, 100},
    {"trips", &GenParams::trips, 1, 100000},
    {"units", &GenParams::units, 1, 65536},
};

/** Split preserving empty fields (splitFields() drops them, which
 *  would let "gen::5" or "gen:loopnest::3" parse as valid). */
std::vector<std::string>
splitExact(std::string_view s, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

int
familyIndex(std::string_view name)
{
    const auto &fams = genFamilies();
    for (size_t i = 0; i < fams.size(); ++i) {
        if (name == fams[i].name)
            return static_cast<int>(i);
    }
    return -1;
}

// ---- shared emission helpers ------------------------------------------

/** Per-family deterministic RNG: the spec is the only entropy source. */
Rng
specRng(const GenParams &p)
{
    // splitmix64 scrambles thoroughly; mixing in the family index keeps
    // gen:calltree:7 and gen:loopnest:7 structurally unrelated.
    return Rng(p.seed * 0x9e3779b97f4a7c15ull
               + static_cast<u64>(familyIndex(p.family)) * 0x1000193);
}

/** Percentage -> threshold against an 8-bit uniform draw (0..256). */
u32
pctThreshold(int pct)
{
    return static_cast<u32>((pct * 256 + 50) / 100);
}

/** In-program xorshift32 step on @p state (nonzero stays nonzero). */
void
emitXorshift(AsmBuilder &b, LogReg state, LogReg tmp)
{
    b.sll(tmp, state, 13);
    b.xor_(state, state, tmp);
    b.srl(tmp, state, 17);
    b.xor_(state, state, tmp);
    b.sll(tmp, state, 5);
    b.xor_(state, state, tmp);
}

/**
 * cond = ((state >> shift) & 255) < thr_reg.  With a well-mixed state
 * the branch on @p cond fires with probability thr/256 — the knob that
 * turns an entropy/alias percentage into data-dependent control flow.
 */
void
emitByteBelow(AsmBuilder &b, LogReg cond, LogReg state, int shift,
              LogReg thr_reg)
{
    if (shift > 0)
        b.srl(cond, state, shift);
    else
        b.move(cond, state);
    b.andi(cond, cond, 255);
    b.sltu(cond, cond, thr_reg);
}

/** Nonzero 32-bit PRNG seed for the program's xorshift register. */
u32
progSeed(Rng &r)
{
    return r.next32() | 1u;
}

// ---- family: calltree --------------------------------------------------
//
// Seeded recursive tree walk: `units` rounds call walk(depth, x).
// Each non-leaf level always recurses once and takes a *second*
// recursive call with probability `entropy` (data-dependent), so
// entropy sweeps the shape from a call chain to a full binary tree —
// exactly the call-depth/frequency axis DMT spawn prediction cares
// about.  `alias` is the fraction of frames that spill/reload through
// a 16-word shared area, creating cross-frame memory dependences.

Program
genCalltree(const GenParams &p)
{
    Rng r = specRng(p);
    AsmBuilder b;
    const auto shared = b.newLabel("shared");
    b.bindData(shared);
    b.dataSpace(64);

    const auto walk = b.newLabel("walk");
    const auto round = b.newLabel();

    b.la(s7, shared);
    b.li(s6, pctThreshold(p.entropy));
    b.li(s5, pctThreshold(p.alias));
    b.li(s0, 0);                              // acc
    b.li(s1, static_cast<u32>(p.units));      // rounds
    b.li(s2, progSeed(r));                    // PRNG
    b.bind(round);
    b.li(a0, static_cast<u32>(p.depth));
    b.move(a1, s2);
    b.jal(walk);
    b.add(s0, s0, v0);
    emitXorshift(b, s2, t0);
    b.addi(s1, s1, -1);
    b.bgtz(s1, round);
    b.out(s0);
    // Shared-area checksum so the spill traffic is architecturally
    // visible.
    const auto ck = b.newLabel();
    b.li(t0, 0);
    b.li(t1, 0);
    b.bind(ck);
    b.sll(t2, t0, 2);
    b.add(t2, t2, s7);
    b.lw(t3, 0, t2);
    b.xor_(t1, t1, t3);
    b.addi(t0, t0, 1);
    b.slti(t4, t0, 16);
    b.bnez(t4, ck);
    b.out(t1);
    b.halt();

    // walk(d = a0, x = a1) -> v0.  Clobbers t-regs; preserves s-regs.
    b.bind(walk);
    const auto rec = b.newLabel();
    const auto skip2 = b.newLabel();
    const auto nospill = b.newLabel();
    b.bnez(a0, rec);
    b.sll(v0, a1, 1);                         // leaf: mix(x)
    b.xor_(v0, v0, a1);
    b.addi(v0, v0, 13);
    b.ret();

    b.bind(rec);
    b.addi(sp, sp, -16);
    b.sw(ra, 12, sp);
    b.sw(s0, 8, sp);
    b.sw(s1, 4, sp);
    b.move(s0, a0);                           // d
    b.move(s1, a1);                           // x
    b.addi(a0, s0, -1);
    b.xori(a1, s1, 0x5bdu);
    b.jal(walk);
    emitByteBelow(b, t0, s1, 0, s6);          // entropy: second call?
    b.beqz(t0, skip2);
    b.sw(v0, 0, sp);                          // keep first result
    b.addi(a0, s0, -1);
    b.add(a1, s1, v0);
    b.jal(walk);
    b.lw(t1, 0, sp);
    b.add(v0, v0, t1);
    b.bind(skip2);
    b.add(v0, v0, s0);
    emitByteBelow(b, t2, s1, 8, s5);          // alias: spill frame?
    b.beqz(t2, nospill);
    b.andi(t3, s1, 60);                       // shared slot 0..15
    b.add(t3, t3, s7);
    b.sw(v0, 0, t3);
    b.lw(t4, 0, t3);
    b.add(v0, v0, t4);
    b.bind(nospill);
    b.lw(s1, 4, sp);
    b.lw(s0, 8, sp);
    b.lw(ra, 12, sp);
    b.addi(sp, sp, 16);
    b.ret();
    return b.finish();
}

// ---- family: loopnest --------------------------------------------------
//
// `units` x `trips` nest with a multiplicative loop-carried dependence
// on the accumulator.  Every inner iteration issues one memory access
// whose slot is hot (first 2 words) with probability `alias`, else
// spread over a 64-word buffer; stores and loads alternate by
// iteration parity.  An `entropy` hammock adds data-dependent extra
// work, perturbing the loop body's branch behaviour.

Program
genLoopnest(const GenParams &p)
{
    Rng r = specRng(p);
    AsmBuilder b;
    const auto buf = b.newLabel("buf");
    b.bindData(buf);
    b.dataSpace(256);

    b.la(s7, buf);
    b.li(s6, pctThreshold(p.entropy));
    b.li(s5, pctThreshold(p.alias));
    b.li(s4, progSeed(r));                    // PRNG
    b.li(s0, 0);                              // acc
    b.li(t8, static_cast<u32>(p.units));      // outer bound
    b.li(t9, static_cast<u32>(p.trips));      // inner bound
    b.li(s1, 0);                              // i
    const auto outer = b.newLabel();
    const auto inner = b.newLabel();
    const auto do_load = b.newLabel();
    const auto mem_done = b.newLabel();
    const auto no_extra = b.newLabel();
    b.bind(outer);
    b.li(s2, 0);                              // j
    b.bind(inner);
    b.sll(t0, s0, 1);                         // acc = acc*3 ^ (i+j)
    b.add(s0, t0, s0);
    b.add(t1, s1, s2);
    b.xor_(s0, s0, t1);
    emitXorshift(b, s4, t0);
    // Slot select: hot window with probability `alias`.
    emitByteBelow(b, t2, s4, 0, s5);
    b.srl(t3, s4, 8);
    b.andi(t3, t3, 252);                      // cold: 64-word spread
    b.sll(t4, t2, 31);
    b.sra(t4, t4, 31);                        // t4 = hot ? ~0 : 0
    b.andi(t5, s4, 4);                        // hot: slot 0 or 1
    b.and_(t5, t5, t4);
    b.nor_(t4, t4, zero);
    b.and_(t3, t3, t4);
    b.or_(t3, t3, t5);
    b.add(t3, t3, s7);
    b.andi(t6, s2, 1);                        // odd j loads, even stores
    b.bnez(t6, do_load);
    b.sw(s0, 0, t3);
    b.b(mem_done);
    b.bind(do_load);
    b.lw(t7, 0, t3);
    b.add(s0, s0, t7);
    b.bind(mem_done);
    emitByteBelow(b, t0, s4, 16, s6);         // entropy hammock
    b.beqz(t0, no_extra);
    b.mul(t1, s0, s2);
    b.xor_(s0, s0, t1);
    b.bind(no_extra);
    b.addi(s2, s2, 1);
    b.blt(s2, t9, inner);
    b.addi(s1, s1, 1);
    b.blt(s1, t8, outer);
    b.out(s0);
    const auto ck = b.newLabel();
    b.li(t0, 0);
    b.li(t1, 0);
    b.bind(ck);
    b.sll(t2, t0, 2);
    b.add(t2, t2, s7);
    b.lw(t3, 0, t2);
    b.xor_(t1, t1, t3);
    b.addi(t0, t0, 1);
    b.slti(t4, t0, 64);
    b.bnez(t4, ck);
    b.out(t1);
    b.halt();
    return b.finish();
}

// ---- family: branchy ---------------------------------------------------
//
// `trips` iterations over min(units, 32) static branch sites.  Each
// site's taken probability is the `entropy` percentage with a seeded
// per-site skew, so one program mixes near-deterministic and coin-flip
// branches the way the paper's branchy integer codes do.

Program
genBranchy(const GenParams &p)
{
    Rng r = specRng(p);
    AsmBuilder b;
    const int sites = std::min(p.units, 32);

    b.li(s4, progSeed(r));                    // PRNG
    b.li(s0, 0);                              // acc
    b.li(s1, static_cast<u32>(p.trips));      // iterations
    b.li(s2, 0);                              // taken count
    const auto loop = b.newLabel();
    b.bind(loop);
    for (int i = 0; i < sites; ++i) {
        emitXorshift(b, s4, t0);
        // Seeded per-site skew of +-25 around the entropy threshold.
        const int skew = static_cast<int>(r.range(-25, 25));
        const int thr = std::clamp(
            static_cast<int>(pctThreshold(p.entropy)) + skew, 0, 256);
        const auto skip = b.newLabel();
        b.andi(t1, s4, 255);
        b.li(t2, static_cast<u32>(thr));
        b.sltu(t1, t1, t2);
        b.beqz(t1, skip);
        b.addi(s2, s2, 1);
        switch (r.below(3)) {
          case 0:
            b.xor_(s0, s0, s4);
            break;
          case 1:
            b.add(s0, s0, s2);
            break;
          default:
            b.sll(t3, s0, 1);
            b.xor_(s0, t3, s0);
            break;
        }
        b.bind(skip);
    }
    b.addi(s1, s1, -1);
    b.bgtz(s1, loop);
    b.out(s0);
    b.out(s2);
    b.halt();
    return b.finish();
}

// ---- family: alias -----------------------------------------------------
//
// Mixed-width store/load traffic over a `units`-word buffer.  With
// probability `alias` an access lands in the hot 32-byte window
// (dense forwarding and dependence violations); otherwise it spreads
// over the whole buffer.  Byte stores under word loads exercise
// partial-overlap forwarding, the LSQ's hardest case.

Program
genAlias(const GenParams &p)
{
    Rng r = specRng(p);
    AsmBuilder b;
    // Power-of-two word count so slot selection is a mask.  Clamped to
    // [16, 4096]: the mask is an andi immediate and must encode in 16
    // bits ((4096-1)<<2 = 0x3FFC).
    u32 words = 16;
    while (words < 4096 && words * 2 <= static_cast<u32>(p.units))
        words *= 2;
    const auto buf = b.newLabel("buf");
    b.bindData(buf);
    b.dataSpace(words * 4);

    b.la(s7, buf);
    b.li(s5, pctThreshold(p.alias));
    b.li(s4, progSeed(r));
    b.li(s0, 0);                              // acc
    b.li(s1, static_cast<u32>(p.trips));      // iterations
    const auto loop = b.newLabel();
    const auto cold = b.newLabel();
    const auto addr_done = b.newLabel();
    b.bind(loop);
    emitXorshift(b, s4, t0);
    emitByteBelow(b, t1, s4, 0, s5);
    b.beqz(t1, cold);
    b.srl(t2, s4, 8);
    b.andi(t2, t2, 28);                       // hot: 8 words
    b.b(addr_done);
    b.bind(cold);
    b.srl(t2, s4, 8);
    b.andi(t2, t2, (words - 1) << 2);         // cold: whole buffer
    b.bind(addr_done);
    b.add(t2, t2, s7);
    // Word store, narrow readback (contained forwards).
    b.sw(s4, 0, t2);
    b.lbu(t3, 1, t2);
    b.lhu(t4, 2, t2);
    b.add(s0, s0, t3);
    b.add(s0, s0, t4);
    // Byte store under the word, full-word readback (partial overlap).
    b.sb(s1, 2, t2);
    b.lw(t5, 0, t2);
    b.xor_(s0, s0, t5);
    b.addi(s1, s1, -1);
    b.bgtz(s1, loop);
    b.out(s0);
    b.halt();
    return b.finish();
}

// ---- family: prodcons --------------------------------------------------
//
// Producer-consumer over a 16-slot ring with head/tail indices kept in
// memory: the producer bursts min(trips, 12) items, the consumer
// drains the same burst, and the round repeats until ~`units` items
// have flowed.  Index loads depend on the previous round's index
// stores — the serialized inter-"thread" communication pattern of a
// software queue.

Program
genProdcons(const GenParams &p)
{
    Rng r = specRng(p);
    AsmBuilder b;
    const auto ring = b.newLabel("ring");
    b.bindData(ring);
    b.dataSpace(16 * 4 + 8);                  // slots, head, tail

    const int burst = std::min(p.trips, 12);
    const int rounds = std::max(1, p.units / burst);

    b.la(s7, ring);
    b.li(s4, progSeed(r));
    b.li(s0, 0);                              // acc
    b.li(s1, static_cast<u32>(rounds));
    const auto round = b.newLabel();
    const auto produce = b.newLabel();
    const auto consume = b.newLabel();
    b.bind(round);
    // Produce `burst` items.
    b.li(s2, static_cast<u32>(burst));
    b.bind(produce);
    emitXorshift(b, s4, t0);
    b.lw(t1, 68, s7);                         // tail
    b.andi(t2, t1, 15);
    b.sll(t2, t2, 2);
    b.add(t2, t2, s7);
    b.add(t3, s4, t1);                        // item value
    b.sw(t3, 0, t2);
    b.addi(t1, t1, 1);
    b.sw(t1, 68, s7);
    b.addi(s2, s2, -1);
    b.bgtz(s2, produce);
    // Consume `burst` items.
    b.li(s2, static_cast<u32>(burst));
    b.bind(consume);
    b.lw(t1, 64, s7);                         // head
    b.andi(t2, t1, 15);
    b.sll(t2, t2, 2);
    b.add(t2, t2, s7);
    b.lw(t3, 0, t2);
    b.add(t4, t3, t1);
    b.xor_(s0, s0, t4);
    b.addi(t1, t1, 1);
    b.sw(t1, 64, s7);
    b.addi(s2, s2, -1);
    b.bgtz(s2, consume);
    b.addi(s1, s1, -1);
    b.bgtz(s1, round);
    b.out(s0);
    b.lw(t0, 64, s7);
    b.out(t0);                                // items consumed
    b.halt();
    return b.finish();
}

// ---- family: ptrchase --------------------------------------------------
//
// `units` 8-byte nodes linked into one seeded permutation cycle; the
// walk takes `trips` dependent-load steps.  Every next-pointer load
// feeds the following address — the serial pointer-chasing dependence
// chain where lookahead, not width, decides performance.

Program
genPtrchase(const GenParams &p)
{
    Rng r = specRng(p);
    AsmBuilder b;
    const u32 n = static_cast<u32>(p.units);

    // Seeded single-cycle permutation via Fisher-Yates.
    std::vector<u32> order(n);
    for (u32 i = 0; i < n; ++i)
        order[i] = i;
    for (u32 i = n - 1; i > 0; --i)
        std::swap(order[i], order[r.below(i + 1)]);

    const Addr base = b.dataAddr() + Program::kDataBase;
    std::vector<u32> words(2 * n);
    for (u32 i = 0; i < n; ++i) {
        const u32 node = order[i];
        const u32 succ = order[(i + 1) % n];
        words[2 * node] = r.next32() & 0xFFFF;          // value
        words[2 * node + 1] = base + 8 * succ;          // next
    }
    const auto nodes = b.newLabel("nodes");
    b.bindData(nodes);
    b.dataWords(words);

    b.la(t1, nodes);                          // cursor (first node)
    b.li(t2, static_cast<u32>(p.trips));      // steps
    b.li(s2, 0);                              // acc
    const auto chase = b.newLabel();
    b.bind(chase);
    b.lw(t3, 0, t1);
    b.add(s2, s2, t3);
    b.lw(t1, 4, t1);                          // address-forming load
    b.addi(t2, t2, -1);
    b.bgtz(t2, chase);
    b.out(s2);
    b.halt();
    return b.finish();
}

// ---- family: evloop ----------------------------------------------------
//
// Event-loop dispatch: `units` precomputed event codes drive a
// compare-chain dispatcher that calls one of four handler procedures
// per event (the call-per-step structure of m88ksim/perl).  `entropy`
// skews the code distribution from all-handler-0 (perfectly
// predictable dispatch) to uniform; handlers below the `alias`
// percentile bank into one shared cell, the rest into private cells.

Program
genEvloop(const GenParams &p)
{
    Rng r = specRng(p);
    AsmBuilder b;
    constexpr int kHandlers = 4;

    std::vector<u32> codes(static_cast<size_t>(p.units));
    for (u32 &c : codes) {
        // With probability `entropy`, a uniform handler; else 0.
        c = r.below(256) < pctThreshold(p.entropy)
                ? static_cast<u32>(r.below(kHandlers)) : 0u;
    }
    const auto events = b.newLabel("events");
    b.bindData(events);
    b.dataWords(codes);
    const auto cells = b.newLabel("cells");
    b.bindData(cells);
    b.dataSpace(kHandlers * 4 + 4);           // private cells + shared

    std::vector<AsmBuilder::Label> handlers;
    for (int i = 0; i < kHandlers; ++i)
        handlers.push_back(b.newLabel());

    b.la(s0, events);
    b.la(s7, cells);
    b.li(s1, static_cast<u32>(p.units));
    b.li(s2, 0);                              // acc
    const auto loop = b.newLabel();
    const auto next = b.newLabel();
    b.bind(loop);
    b.lw(t0, 0, s0);
    for (int i = 0; i < kHandlers - 1; ++i) {
        const auto not_i = b.newLabel();
        b.addi(t1, t0, -i);
        b.bnez(t1, not_i);
        b.jal(handlers[static_cast<size_t>(i)]);
        b.b(next);
        b.bind(not_i);
    }
    b.jal(handlers[kHandlers - 1]);
    b.bind(next);
    b.addi(s0, s0, 4);
    b.addi(s1, s1, -1);
    b.bgtz(s1, loop);
    b.out(s2);
    const auto ck = b.newLabel();
    b.li(t0, 0);
    b.li(t1, 0);
    b.bind(ck);
    b.sll(t2, t0, 2);
    b.add(t2, t2, s7);
    b.lw(t3, 0, t2);
    b.xor_(t1, t1, t3);
    b.addi(t0, t0, 1);
    b.slti(t4, t0, kHandlers + 1);
    b.bnez(t4, ck);
    b.out(t1);
    b.halt();

    // Leaf handlers: mutate acc and a memory cell, no frame needed.
    for (int i = 0; i < kHandlers; ++i) {
        b.bind(handlers[static_cast<size_t>(i)]);
        const bool shared = (i * 100) / kHandlers < p.alias;
        const i32 cell_off = shared ? kHandlers * 4 : i * 4;
        b.lw(t2, cell_off, s7);
        b.addi(t3, t2, 3 + 2 * i);
        b.sw(t3, cell_off, s7);
        switch (i) {
          case 0:
            b.add(s2, s2, t3);
            break;
          case 1:
            b.xor_(s2, s2, t3);
            break;
          case 2:
            b.sll(t4, s2, 1);
            b.add(s2, t4, t3);
            break;
          default:
            b.sub(s2, s2, t3);
            break;
        }
        b.ret();
    }
    return b.finish();
}

using FamilyBuilder = Program (*)(const GenParams &);

struct FamilyEntry
{
    GenFamilyInfo info;
    FamilyBuilder build;
};

const std::vector<FamilyEntry> &
familyTable()
{
    static const std::vector<FamilyEntry> table = {
        {{"calltree", "seeded recursive call tree",
          "depth, entropy (2nd-call rate), alias (frame spills), units"},
         &genCalltree},
        {{"loopnest", "loop nest with carried dependence",
          "units x trips, entropy (hammock), alias (hot-slot rate)"},
         &genLoopnest},
        {{"branchy", "skewed data-dependent branch field",
          "trips, units (sites, <=32), entropy (taken rate)"},
         &genBranchy},
        {{"alias", "mixed-width aliasing store/load stream",
          "trips, units (buffer words), alias (hot-window rate)"},
         &genAlias},
        {{"prodcons", "producer-consumer ring queue",
          "units (items), trips (burst, <=12)"},
         &genProdcons},
        {{"ptrchase", "seeded pointer-chasing cycle",
          "units (nodes), trips (steps)"},
         &genPtrchase},
        {{"evloop", "event-loop handler dispatch",
          "units (events), entropy (code skew), alias (shared cell)"},
         &genEvloop},
    };
    return table;
}

} // namespace

const std::vector<GenFamilyInfo> &
genFamilies()
{
    static const std::vector<GenFamilyInfo> infos = [] {
        std::vector<GenFamilyInfo> v;
        for (const FamilyEntry &e : familyTable())
            v.push_back(e.info);
        return v;
    }();
    return infos;
}

std::string
GenParams::canonicalSpec() const
{
    std::string s = strprintf("gen:%s:%llu", family.c_str(),
                              static_cast<unsigned long long>(seed));
    for (const KnobRange &k : kKnobs)
        s += strprintf(":%s=%d", k.key, this->*(k.field));
    return s;
}

bool
isGenSpec(std::string_view name)
{
    return trim(name).substr(0, 4) == "gen:";
}

bool
parseGenSpec(std::string_view spec, GenParams *out, std::string *err)
{
    std::string scratch;
    std::string &e = err ? *err : scratch;
    *out = GenParams{};

    const std::string_view body = trim(spec);
    const std::vector<std::string> fields = splitExact(body, ':');
    if (fields.size() < 3 || fields[0] != "gen") {
        e = "workload spec must be gen:<family>:<seed>[:knob=value...]";
        return false;
    }
    if (familyIndex(fields[1]) < 0) {
        std::string known;
        for (const GenFamilyInfo &f : genFamilies()) {
            if (!known.empty())
                known += ", ";
            known += f.name;
        }
        e = "unknown workload family \"" + fields[1] + "\" (families: "
            + known + ")";
        return false;
    }
    out->family = fields[1];
    if (!parseU64(fields[2], &out->seed)) {
        e = "bad seed \"" + fields[2] + "\" (need a decimal integer)";
        return false;
    }

    bool seen[std::size(kKnobs)] = {};
    for (size_t i = 3; i < fields.size(); ++i) {
        const std::string &f = fields[i];
        const size_t eq = f.find('=');
        if (eq == std::string::npos || eq == 0) {
            e = "bad knob \"" + f + "\" (need knob=value)";
            return false;
        }
        const std::string key = f.substr(0, eq);
        const std::string val = f.substr(eq + 1);
        size_t ki = 0;
        for (; ki < std::size(kKnobs); ++ki) {
            if (key == kKnobs[ki].key)
                break;
        }
        if (ki == std::size(kKnobs)) {
            e = "unknown knob \"" + key
                + "\" (knobs: alias, depth, entropy, trips, units)";
            return false;
        }
        if (seen[ki]) {
            e = "duplicate knob \"" + key + "\"";
            return false;
        }
        seen[ki] = true;
        u64 v = 0;
        if (!parseU64(val, &v)) {
            e = "knob " + key + ": bad value \"" + val
                + "\" (need a decimal integer)";
            return false;
        }
        const KnobRange &k = kKnobs[ki];
        if (v < static_cast<u64>(k.lo) || v > static_cast<u64>(k.hi)) {
            e = strprintf("knob %s=%llu out of range [%d, %d]", k.key,
                          static_cast<unsigned long long>(v), k.lo,
                          k.hi);
            return false;
        }
        out->*(k.field) = static_cast<int>(v);
    }
    return true;
}

Program
buildGenWorkload(const GenParams &params)
{
    for (const FamilyEntry &e : familyTable()) {
        if (params.family == e.info.name)
            return e.build(params);
    }
    fatal("unknown workload family '%s'", params.family.c_str());
}

Program
buildGenWorkload(const std::string &spec)
{
    GenParams p;
    std::string err;
    if (!parseGenSpec(spec, &p, &err))
        fatal("workload spec \"%s\": %s", spec.c_str(), err.c_str());
    return buildGenWorkload(p);
}

std::string
canonicalWorkloadName(const std::string &name)
{
    if (!isGenSpec(name))
        return name;
    GenParams p;
    std::string err;
    if (!parseGenSpec(name, &p, &err))
        fatal("workload spec \"%s\": %s", name.c_str(), err.c_str());
    return p.canonicalSpec();
}

} // namespace dmt
