/**
 * @file
 * "li"-like workload: a cons-cell list kernel.  Tiny allocation and
 * accessor procedures (cons, mknum), recursive list construction,
 * recursive summation, a recursive map (building fresh structure) and
 * a mark pass over the arena.  Mimics 130.li: very high call density
 * with small leaf procedures and pointer chasing.
 */

#include "workloads/workloads.hh"

#include "casm/builder.hh"

namespace dmt
{

using namespace reg;

Program
buildLi()
{
    constexpr int kListLen = 24;
    constexpr int kIterations = 150;
    constexpr u32 kArenaBytes = 24 * 1024;

    AsmBuilder b;

    // Cell layout: +0 tag (0 = number, 1 = cons, bit 8 = mark),
    //              +4 car (value or pointer), +8 cdr (pointer).
    const auto arena_l = b.newLabel("cells");
    b.bindData(arena_l);
    b.dataSpace(kArenaBytes);
    const auto next_l = b.newLabel("cells_next");
    b.bindData(next_l);
    b.dataWords({0});

    const auto alloc = b.newLabel("cell_alloc");
    const auto mknum = b.newLabel("mknum");
    const auto cons = b.newLabel("cons");
    const auto buildlist = b.newLabel("build_list");
    const auto sumlist = b.newLabel("sum_list");
    const auto maplist = b.newLabel("map_double");
    const auto marklist = b.newLabel("mark_list");

    // ---- main -------------------------------------------------------------
    b.li(s0, 0); // iteration
    b.li(s1, 0); // checksum
    const auto iter_loop = b.newLabel();
    b.bind(iter_loop);
    // reset arena
    b.la(t0, arena_l);
    b.la(t1, next_l);
    b.sw(t0, 0, t1);
    // list = build_list(kListLen, iter)
    b.li(a0, kListLen);
    b.move(a1, s0);
    b.jal(buildlist);
    b.move(s2, v0);
    // checksum += sum_list(list)
    b.move(a0, s2);
    b.jal(sumlist);
    b.add(s1, s1, v0);
    // doubled = map_double(list); checksum ^= sum_list(doubled)
    b.move(a0, s2);
    b.jal(maplist);
    b.move(a0, v0);
    b.jal(sumlist);
    b.xor_(s1, s1, v0);
    // mark_list(list); checksum += number of marked cells via sum
    b.move(a0, s2);
    b.jal(marklist);
    b.add(s1, s1, v0);
    b.addi(s0, s0, 1);
    b.li(t2, kIterations);
    b.blt(s0, t2, iter_loop);
    b.out(s1);
    b.halt();

    // ---- cell_alloc() -> cell -----------------------------------------------
    b.bind(alloc);
    b.la(t0, next_l);
    b.lw(v0, 0, t0);
    b.addi(t1, v0, 12);
    b.sw(t1, 0, t0);
    b.ret();

    // ---- mknum(v) -> cell -----------------------------------------------------
    b.bind(mknum);
    b.addi(sp, sp, -8);
    b.sw(ra, 4, sp);
    b.sw(a0, 0, sp);
    b.jal(alloc);
    b.lw(t0, 0, sp);
    b.sw(zero, 0, v0);
    b.sw(t0, 4, v0);
    b.sw(zero, 8, v0);
    b.lw(ra, 4, sp);
    b.addi(sp, sp, 8);
    b.ret();

    // ---- cons(car, cdr) -> cell ----------------------------------------------
    b.bind(cons);
    b.addi(sp, sp, -12);
    b.sw(ra, 8, sp);
    b.sw(a0, 4, sp);
    b.sw(a1, 0, sp);
    b.jal(alloc);
    b.li(t0, 1);
    b.sw(t0, 0, v0);
    b.lw(t1, 4, sp);
    b.sw(t1, 4, v0);
    b.lw(t2, 0, sp);
    b.sw(t2, 8, v0);
    b.lw(ra, 8, sp);
    b.addi(sp, sp, 12);
    b.ret();

    // ---- build_list(n, seed) -> list -------------------------------------------
    // Recursive: build_list(0) = nil (0); else cons(mknum(f(n,seed)),
    // build_list(n-1, seed)).
    b.bind(buildlist);
    const auto bl_rec = b.newLabel();
    b.bnez(a0, bl_rec);
    b.li(v0, 0);
    b.ret();
    b.bind(bl_rec);
    b.addi(sp, sp, -12);
    b.sw(ra, 8, sp);
    b.sw(s3, 4, sp);
    b.sw(s4, 0, sp);
    b.move(s3, a0);
    b.move(s4, a1);
    b.addi(a0, a0, -1);
    b.jal(buildlist);
    b.move(a1, v0);                  // cdr = recursive tail
    b.mul(t0, s3, s4);
    b.addi(a0, t0, 17);
    b.xor_(a0, a0, s3);
    b.jal(mknum);                    // leaves a1 (the tail) untouched
    b.move(a0, v0);                  // car cell
    b.jal(cons);
    b.lw(s4, 0, sp);
    b.lw(s3, 4, sp);
    b.lw(ra, 8, sp);
    b.addi(sp, sp, 12);
    b.ret();

    // ---- sum_list(list) -> sum ---------------------------------------------------
    b.bind(sumlist);
    const auto sl_rec = b.newLabel();
    b.bnez(a0, sl_rec);
    b.li(v0, 0);
    b.ret();
    b.bind(sl_rec);
    b.addi(sp, sp, -8);
    b.sw(ra, 4, sp);
    b.sw(s3, 0, sp);
    b.lw(t0, 4, a0);                 // car cell
    b.lw(s3, 4, t0);                 // its number
    b.lw(a0, 8, a0);                 // cdr
    b.jal(sumlist);
    b.add(v0, v0, s3);
    b.lw(s3, 0, sp);
    b.lw(ra, 4, sp);
    b.addi(sp, sp, 8);
    b.ret();

    // ---- map_double(list) -> new list ----------------------------------------------
    b.bind(maplist);
    const auto ml_rec = b.newLabel();
    b.bnez(a0, ml_rec);
    b.li(v0, 0);
    b.ret();
    b.bind(ml_rec);
    b.addi(sp, sp, -12);
    b.sw(ra, 8, sp);
    b.sw(s3, 4, sp);
    b.sw(s4, 0, sp);
    b.lw(t0, 4, a0);                 // car cell
    b.lw(s3, 4, t0);                 // number
    b.lw(a0, 8, a0);
    b.jal(maplist);
    b.move(s4, v0);                  // mapped tail
    b.sll(a0, s3, 1);
    b.jal(mknum);
    b.move(a0, v0);
    b.move(a1, s4);
    b.jal(cons);
    b.lw(s4, 0, sp);
    b.lw(s3, 4, sp);
    b.lw(ra, 8, sp);
    b.addi(sp, sp, 12);
    b.ret();

    // ---- mark_list(list) -> cells marked --------------------------------------------
    b.bind(marklist);
    const auto mk_rec = b.newLabel();
    b.bnez(a0, mk_rec);
    b.li(v0, 0);
    b.ret();
    b.bind(mk_rec);
    b.addi(sp, sp, -8);
    b.sw(ra, 4, sp);
    b.sw(s3, 0, sp);
    b.lw(t0, 0, a0);                 // tag
    b.ori(t0, t0, 0x100);            // set mark bit
    b.sw(t0, 0, a0);
    b.lw(t1, 4, a0);                 // car cell
    b.lw(t2, 0, t1);
    b.ori(t2, t2, 0x100);
    b.sw(t2, 0, t1);
    b.lw(a0, 8, a0);
    b.jal(marklist);
    b.addi(v0, v0, 2);
    b.lw(s3, 0, sp);
    b.lw(ra, 4, sp);
    b.addi(sp, sp, 8);
    b.ret();

    return b.finish();
}

} // namespace dmt
