/**
 * @file
 * "compress"-like workload: LZW-style compression over a synthetic
 * byte stream with realistic repetition, using an open-addressing hash
 * table of (prefix, symbol) pairs.  Mimics 129.compress: a hot loop
 * with hash probing, data-dependent branches and procedure calls per
 * symbol.
 */

#include "workloads/workloads.hh"

#include "casm/builder.hh"
#include "common/rng.hh"

namespace dmt
{

using namespace reg;

Program
buildCompress()
{
    constexpr int kInputBytes = 5000;
    constexpr int kTableSize = 16384; // entries of {key, code}

    AsmBuilder b;

    // Synthetic compressible input: random phrases repeated.
    Rng gen(0xC0DEC0DEu);
    std::vector<u8> input;
    std::vector<u8> phrase;
    while (static_cast<int>(input.size()) < kInputBytes) {
        if (phrase.empty() || gen.chance(0.3)) {
            phrase.clear();
            const int len = static_cast<int>(gen.range(3, 9));
            for (int i = 0; i < len; ++i)
                phrase.push_back(static_cast<u8>(gen.range('a', 'p')));
        }
        input.insert(input.end(), phrase.begin(), phrase.end());
    }
    input.resize(kInputBytes);

    const auto input_l = b.newLabel("input");
    b.bindData(input_l);
    b.dataBytes(input);
    b.dataAlign(4);
    const auto table_l = b.newLabel("hash_table");
    b.bindData(table_l);
    b.dataSpace(kTableSize * 8);

    const auto out_l = b.newLabel("outbuf");
    b.bindData(out_l);
    b.dataSpace(32 * 1024);
    const auto freq_l = b.newLabel("freq");
    b.bindData(freq_l);
    b.dataSpace(256 * 4);

    const auto lookup = b.newLabel("ht_lookup");
    const auto insert = b.newLabel("ht_insert");
    const auto putcode = b.newLabel("put_code");

    // ---- main ----------------------------------------------------------
    // s0 = input cursor, s1 = end, s2 = prefix code, s3 = checksum,
    // s4 = next free code, s5 = table base
    b.la(s0, input_l);
    b.addi(s1, s0, kInputBytes);
    b.la(s5, table_l);
    b.li(s4, 256);
    b.li(s3, 0);
    b.li(s7, 0);
    b.lbu(s2, 0, s0);   // first symbol becomes the initial prefix
    b.addi(s0, s0, 1);

    const auto loop = b.newLabel();
    const auto miss = b.newLabel();
    const auto next = b.newLabel();
    const auto flush = b.newLabel();
    b.bind(loop);
    b.bge(s0, s1, flush);
    b.lbu(s6, 0, s0);       // ch
    b.addi(s0, s0, 1);
    // key = (prefix << 8) | ch   (prefix < 2^20)
    b.sll(a0, s2, 8);
    b.or_(a0, a0, s6);
    b.jal(lookup);
    b.bltz(v0, miss);
    b.move(s2, v0);         // extend the prefix
    b.b(next);
    b.bind(miss);
    // emit prefix, insert (prefix, ch) -> next code, restart at ch
    b.sll(t0, s3, 7);
    b.add(t0, t0, s3);      // checksum*129
    b.add(s3, t0, s2);
    b.move(a0, s2);
    b.jal(putcode);         // pack the emitted code into the output
    b.sll(a0, s2, 8);
    b.or_(a0, a0, s6);
    b.move(a1, s4);
    b.addi(s4, s4, 1);
    b.jal(insert);
    b.move(s2, s6);
    b.bind(next);
    // Per-symbol bookkeeping: frequency count and running entropy-ish
    // accumulator (compress95 does block checks and ratio monitoring —
    // real loop bodies are much fatter than hash-probe alone).
    b.la(t0, freq_l);
    b.andi(t1, s6, 0xFF);
    b.sll(t1, t1, 2);
    b.add(t1, t1, t0);
    b.lw(t2, 0, t1);
    b.addi(t2, t2, 1);
    b.sw(t2, 0, t1);
    b.srl(t3, t2, 2);
    b.xor_(t3, t3, s6);
    b.sll(t4, t3, 1);
    b.add(t3, t3, t4);
    b.andi(t3, t3, 0x3FF);
    b.add(s7, s7, t3);
    b.b(loop);
    b.bind(flush);
    b.sll(t0, s3, 7);
    b.add(t0, t0, s3);
    b.add(s3, t0, s2);
    b.out(s3);
    b.out(s4);
    b.out(s7);
    b.halt();

    // ---- put_code(code): bit-pack into the output buffer ------------------
    // Uses t8/t9-side registers only; clobbers t0..t5.
    b.bind(putcode);
    {
        // Static cursor kept in the data segment: [0] byte offset,
        // [4] bit offset, [8] running parity.
        const auto cur_l = b.newLabel("out_cursor");
        b.bindData(cur_l);
        b.dataWords({0, 0, 0});
        b.la(t0, cur_l);
        b.lw(t1, 0, t0);        // byte offset
        b.lw(t2, 4, t0);        // bit offset
        b.la(t3, out_l);
        b.add(t3, t3, t1);
        // merge 13 bits of code at the bit offset
        b.sllv(t4, a0, t2);
        b.lw(t5, 0, t3);
        b.xor_(t5, t5, t4);
        b.sw(t5, 0, t3);
        b.addi(t2, t2, 13);
        const auto no_spill = b.newLabel();
        b.slti(t4, t2, 32);
        b.bnez(t4, no_spill);
        b.addi(t2, t2, -32);
        b.addi(t1, t1, 4);
        b.andi(t1, t1, 0x3FFF); // wrap the output buffer
        b.bind(no_spill);
        b.sw(t1, 0, t0);
        b.sw(t2, 4, t0);
        b.lw(t5, 8, t0);
        b.xor_(t5, t5, a0);
        b.sw(t5, 8, t0);
        b.ret();
    }

    // ---- ht_lookup(key) -> code or -1 -----------------------------------
    // Open addressing, linear probing.  Empty slots have key == 0.
    b.bind(lookup);
    // h = (key * 2654435761) >> 20, masked
    b.li(t0, 2654435761u);
    b.mul(t1, a0, t0);
    b.srl(t1, t1, 20);
    b.andi(t1, t1, kTableSize - 1);
    const auto probe = b.newLabel();
    const auto found = b.newLabel();
    const auto empty = b.newLabel();
    b.bind(probe);
    b.sll(t2, t1, 3);
    b.add(t2, t2, s5);
    b.lw(t3, 0, t2);        // stored key
    b.beqz(t3, empty);
    b.beq(t3, a0, found);
    b.addi(t1, t1, 1);
    b.andi(t1, t1, kTableSize - 1);
    b.b(probe);
    b.bind(found);
    b.lw(v0, 4, t2);
    b.ret();
    b.bind(empty);
    b.li(v0, 0xFFFFFFFFu);
    b.ret();

    // ---- ht_insert(key, code) -------------------------------------------
    b.bind(insert);
    b.li(t0, 2654435761u);
    b.mul(t1, a0, t0);
    b.srl(t1, t1, 20);
    b.andi(t1, t1, kTableSize - 1);
    const auto iprobe = b.newLabel();
    const auto islot = b.newLabel();
    b.bind(iprobe);
    b.sll(t2, t1, 3);
    b.add(t2, t2, s5);
    b.lw(t3, 0, t2);
    b.beqz(t3, islot);
    b.addi(t1, t1, 1);
    b.andi(t1, t1, kTableSize - 1);
    b.b(iprobe);
    b.bind(islot);
    b.sw(a0, 0, t2);
    b.sw(a1, 4, t2);
    b.ret();

    return b.finish();
}

} // namespace dmt
