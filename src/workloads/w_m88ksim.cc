/**
 * @file
 * "m88ksim"-like workload: an instruction-set interpreter.  A small
 * guest VM (8 registers, accumulator checksum) executes a guest
 * program; every guest step fetches, decodes and dispatches through an
 * indirect jump table to per-opcode handler procedures.  Mimics
 * 124.m88ksim's dispatch-loop structure: one call per simulated
 * instruction plus indirect branches.
 */

#include "workloads/workloads.hh"

#include "casm/builder.hh"

namespace dmt
{

using namespace reg;

namespace
{

// Guest instruction encoding: op | r1<<8 | r2<<16 | imm<<24.
constexpr u32
g(u32 op, u32 r1 = 0, u32 r2 = 0, u32 imm = 0)
{
    return op | (r1 << 8) | (r2 << 16) | (imm << 24);
}

enum GuestOp : u32
{
    G_LOADI = 0, // r1 = imm
    G_ADD = 1,   // r1 += r2
    G_SUB = 2,   // r1 -= r2
    G_MUL = 3,   // r1 *= r2
    G_XOR = 4,   // r1 ^= r2
    G_ACC = 5,   // checksum += r1
    G_JNZ = 6,   // if (r1 != 0) pc += (signed)imm - 128
    G_HALT = 7,
};

} // namespace

Program
buildM88ksim()
{
    constexpr int kNumOps = 8;

    AsmBuilder b;

    // Guest program: nested countdown loops exercising all opcodes.
    // r0 = outer counter, r1 = inner counter, r2 = scratch, r3 = one.
    const std::vector<u32> guest = {
        /* 0 */ g(G_LOADI, 0, 0, 180), // outer = 180
        /* 1 */ g(G_LOADI, 3, 0, 1),   // one = 1
        /* 2 */ g(G_LOADI, 1, 0, 25),  // inner = 25
        /* 3 */ g(G_LOADI, 2, 0, 3),
        /* 4 */ g(G_MUL, 2, 1),        // scratch = 3 * inner
        /* 5 */ g(G_XOR, 2, 0),
        /* 6 */ g(G_ACC, 2),
        /* 7 */ g(G_SUB, 1, 3),        // inner--
        /* 8 */ g(G_JNZ, 1, 0, 128 - 5), // back to 3
        /* 9 */ g(G_ACC, 0),
        /* 10 */ g(G_SUB, 0, 3),       // outer--
        /* 11 */ g(G_JNZ, 0, 0, 128 - 9), // back to 2
        /* 12 */ g(G_HALT),
    };

    const auto guest_l = b.newLabel("guest_prog");
    b.bindData(guest_l);
    b.dataWords(guest);

    const auto regs_l = b.newLabel("guest_regs");
    b.bindData(regs_l);
    b.dataSpace(8 * 4);

    const auto table_l = b.newLabel("dispatch_table");
    b.bindData(table_l);
    b.dataSpace(kNumOps * 4);

    const auto step = b.newLabel("vm_step");
    const auto handlers_done = b.newLabel("vm_done");
    AsmBuilder::Label handler[kNumOps];
    for (int i = 0; i < kNumOps; ++i)
        handler[i] = b.newLabel();

    // ---- main: build the dispatch table, then run the VM ---------------
    b.la(s6, table_l);
    for (int i = 0; i < kNumOps; ++i) {
        b.la(t0, handler[i]);
        b.sw(t0, i * 4, s6);
    }
    b.la(s0, guest_l);  // guest program base
    b.la(s1, regs_l);   // guest register file
    b.li(s2, 0);        // guest pc (word index)
    b.li(s3, 0);        // checksum
    b.li(s4, 0);        // executed guest instructions

    const auto vm_loop = b.newLabel();
    b.bind(vm_loop);
    b.jal(step);
    b.bnez(v0, vm_loop);
    b.bind(handlers_done);
    b.out(s3);
    b.out(s4);
    b.halt();

    // ---- vm_step: fetch/decode/dispatch one guest instruction ----------
    // Returns v0 = 0 when the guest halted.
    b.bind(step);
    b.addi(sp, sp, -8);
    b.sw(ra, 4, sp);
    b.sll(t0, s2, 2);
    b.add(t0, t0, s0);
    b.lw(s5, 0, t0);        // raw guest word
    b.addi(s2, s2, 1);      // guest pc++
    b.addi(s4, s4, 1);
    b.andi(t1, s5, 0xFF);   // opcode
    b.sll(t1, t1, 2);
    b.add(t1, t1, s6);
    b.lw(t2, 0, t1);        // handler address
    b.jalr(t2);             // indirect dispatch
    b.lw(ra, 4, sp);
    b.addi(sp, sp, 8);
    b.ret();

    // Handler conventions: s5 = raw word, s1 = guest regfile,
    // v0 = continue flag.  t3 = &guest_r1, t4 = guest r1 value,
    // t5 = guest r2 value, t6 = imm.
    auto decode_fields = [&]() {
        b.srl(t3, s5, 8);
        b.andi(t3, t3, 0xFF);
        b.sll(t3, t3, 2);
        b.add(t3, t3, s1);     // &r1
        b.lw(t4, 0, t3);       // r1
        b.srl(t5, s5, 16);
        b.andi(t5, t5, 0xFF);
        b.sll(t5, t5, 2);
        b.add(t5, t5, s1);
        b.lw(t5, 0, t5);       // r2
        b.srl(t6, s5, 24);     // imm
    };

    // G_LOADI
    b.bind(handler[G_LOADI]);
    decode_fields();
    b.sw(t6, 0, t3);
    b.li(v0, 1);
    b.ret();

    // G_ADD
    b.bind(handler[G_ADD]);
    decode_fields();
    b.add(t4, t4, t5);
    b.sw(t4, 0, t3);
    b.li(v0, 1);
    b.ret();

    // G_SUB
    b.bind(handler[G_SUB]);
    decode_fields();
    b.sub(t4, t4, t5);
    b.sw(t4, 0, t3);
    b.li(v0, 1);
    b.ret();

    // G_MUL
    b.bind(handler[G_MUL]);
    decode_fields();
    b.mul(t4, t4, t5);
    b.sw(t4, 0, t3);
    b.li(v0, 1);
    b.ret();

    // G_XOR
    b.bind(handler[G_XOR]);
    decode_fields();
    b.xor_(t4, t4, t5);
    b.sw(t4, 0, t3);
    b.li(v0, 1);
    b.ret();

    // G_ACC: checksum = checksum*31 + r1
    b.bind(handler[G_ACC]);
    decode_fields();
    b.sll(t7, s3, 5);
    b.sub(t7, t7, s3);
    b.add(s3, t7, t4);
    b.li(v0, 1);
    b.ret();

    // G_JNZ: relative branch, bias 128
    {
        b.bind(handler[G_JNZ]);
        decode_fields();
        const auto not_taken = b.newLabel();
        b.beqz(t4, not_taken);
        b.addi(t6, t6, -128);
        b.add(s2, s2, t6);
        b.addi(s2, s2, -1);   // relative to the branch itself
        b.bind(not_taken);
        b.li(v0, 1);
        b.ret();
    }

    // G_HALT
    b.bind(handler[G_HALT]);
    b.li(v0, 0);
    b.ret();

    return b.finish();
}

} // namespace dmt
