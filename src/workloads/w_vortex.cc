/**
 * @file
 * "vortex"-like workload: an object database built on a binary search
 * tree.  Records are inserted, looked up and updated through recursive
 * procedures with pointer chasing; transactions mix hits, misses and
 * inserts.  Mimics 147.vortex: call-heavy object manipulation with
 * data-dependent control flow.
 */

#include "workloads/workloads.hh"

#include "casm/builder.hh"

namespace dmt
{

using namespace reg;

Program
buildVortex()
{
    constexpr int kInitialRecords = 200;
    constexpr int kTransactions = 4500;
    constexpr u32 kArenaBytes = 96 * 1024;

    AsmBuilder b;

    // Node layout: +0 key, +4 value, +8 left, +12 right.
    const auto arena_l = b.newLabel("db_arena");
    b.bindData(arena_l);
    b.dataSpace(kArenaBytes);
    const auto next_l = b.newLabel("db_next");
    b.bindData(next_l);
    b.dataWords({0});
    const auto root_l = b.newLabel("db_root");
    b.bindData(root_l);
    b.dataWords({0});

    const auto insert = b.newLabel("bst_insert");
    const auto lookup = b.newLabel("bst_lookup");
    const auto nextkey = b.newLabel("next_key");

    // ---- main --------------------------------------------------------------
    // s0 = PRNG state, s1 = checksum, s2 = transaction index
    b.la(t0, arena_l);
    b.la(t1, next_l);
    b.sw(t0, 0, t1);
    b.li(s0, 0x1234567u);
    b.li(s1, 0);

    // Phase 1: populate.
    const auto pop_loop = b.newLabel();
    b.li(s2, 0);
    b.bind(pop_loop);
    b.jal(nextkey);
    b.move(a0, v0);
    b.sll(a1, v0, 1);
    b.addi(a1, a1, 3);
    b.jal(insert);
    b.addi(s2, s2, 1);
    b.li(t0, kInitialRecords);
    b.blt(s2, t0, pop_loop);

    // Phase 2: transactions.
    const auto txn_loop = b.newLabel();
    const auto txn_miss = b.newLabel();
    const auto txn_next = b.newLabel();
    b.li(s2, 0);
    b.bind(txn_loop);
    b.jal(nextkey);
    b.move(s3, v0);
    b.move(a0, s3);
    b.jal(lookup);
    b.beqz(v0, txn_miss);
    // Hit: checksum += value; update value = value*5 + key.
    b.lw(t0, 4, v0);
    b.add(s1, s1, t0);
    b.sll(t1, t0, 2);
    b.add(t1, t1, t0);
    b.add(t1, t1, s3);
    b.sw(t1, 4, v0);
    b.b(txn_next);
    b.bind(txn_miss);
    // Miss: insert a fresh record.
    b.move(a0, s3);
    b.addi(a1, s3, 77);
    b.jal(insert);
    b.addi(s1, s1, 1);
    b.bind(txn_next);
    b.addi(s2, s2, 1);
    b.li(t2, kTransactions);
    b.blt(s2, t2, txn_loop);
    b.out(s1);
    b.halt();

    // ---- next_key() -> bounded pseudo-random key ------------------------------
    // xorshift on s0, then fold into [0, 511] so lookups hit often.
    b.bind(nextkey);
    b.sll(t0, s0, 13);
    b.xor_(s0, s0, t0);
    b.srl(t0, s0, 17);
    b.xor_(s0, s0, t0);
    b.sll(t0, s0, 5);
    b.xor_(s0, s0, t0);
    b.andi(v0, s0, 511);
    b.addi(v0, v0, 1); // keys are nonzero
    b.ret();

    // ---- bst_insert(key, value) -------------------------------------------------
    // Iterative descent; allocates when the slot is empty.  Duplicate
    // keys update in place.
    b.bind(insert);
    {
        const auto descend = b.newLabel();
        const auto go_right = b.newLabel();
        const auto attach = b.newLabel();
        const auto update = b.newLabel();
        b.la(t0, root_l);   // t0 = link slot address
        b.bind(descend);
        b.lw(t1, 0, t0);    // node at slot
        b.beqz(t1, attach);
        b.lw(t2, 0, t1);    // node key
        b.beq(t2, a0, update);
        b.blt(t2, a0, go_right);
        b.addi(t0, t1, 8);  // left slot
        b.b(descend);
        b.bind(go_right);
        b.addi(t0, t1, 12); // right slot
        b.b(descend);
        b.bind(attach);
        b.la(t3, next_l);
        b.lw(t4, 0, t3);
        b.addi(t5, t4, 16);
        b.sw(t5, 0, t3);
        b.sw(a0, 0, t4);
        b.sw(a1, 4, t4);
        b.sw(zero, 8, t4);
        b.sw(zero, 12, t4);
        b.sw(t4, 0, t0);
        b.ret();
        b.bind(update);
        b.sw(a1, 4, t1);
        b.ret();
    }

    // ---- bst_lookup(key) -> node or 0 (recursive) ---------------------------------
    // lookup(key) walks from the root via a recursive helper to create
    // call depth proportional to the tree height.
    {
        const auto helper = b.newLabel("bst_lookup_rec");
        b.bind(lookup);
        b.la(t0, root_l);
        b.lw(a1, 0, t0);
        // fall through into helper(key, node)
        b.bind(helper);
        const auto miss = b.newLabel();
        const auto hit = b.newLabel();
        const auto right = b.newLabel();
        b.beqz(a1, miss);
        b.lw(t1, 0, a1);
        b.beq(t1, a0, hit);
        b.addi(sp, sp, -8);
        b.sw(ra, 4, sp);
        b.blt(t1, a0, right);
        b.lw(a1, 8, a1);
        b.jal(helper);
        b.lw(ra, 4, sp);
        b.addi(sp, sp, 8);
        b.ret();
        b.bind(right);
        b.lw(a1, 12, a1);
        b.jal(helper);
        b.lw(ra, 4, sp);
        b.addi(sp, sp, 8);
        b.ret();
        b.bind(hit);
        b.move(v0, a1);
        b.ret();
        b.bind(miss);
        b.li(v0, 0);
        b.ret();
    }

    return b.finish();
}

} // namespace dmt
