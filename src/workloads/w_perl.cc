/**
 * @file
 * "perl"-like workload: a byte-coded script interpreter over a string
 * table with an associative array.  Per script op, the dispatcher
 * calls string procedures (strlen, hash, compare) that loop over
 * characters, and a bucketed hash map insert/lookup.  Mimics
 * 134.perl: interpreter dispatch plus string/hash library calls.
 */

#include "workloads/workloads.hh"

#include "casm/builder.hh"
#include "common/rng.hh"

namespace dmt
{

using namespace reg;

Program
buildPerl()
{
    constexpr int kStrings = 48;
    constexpr int kScriptOps = 2600;
    constexpr int kBuckets = 256; // map: {key hash, value} pairs

    AsmBuilder b;
    Rng gen(0x9e71f00du);

    // String table: offsets + packed NUL-terminated strings.
    std::vector<u8> pool;
    std::vector<u32> offsets;
    for (int i = 0; i < kStrings; ++i) {
        offsets.push_back(static_cast<u32>(pool.size()));
        const int len = static_cast<int>(gen.range(2, 14));
        for (int j = 0; j < len; ++j)
            pool.push_back(static_cast<u8>(gen.range('A', 'z')));
        pool.push_back(0);
    }

    // Script: byte pairs (op, string index). op in 1..4.
    std::vector<u8> script;
    for (int i = 0; i < kScriptOps; ++i) {
        script.push_back(static_cast<u8>(gen.range(1, 4)));
        script.push_back(static_cast<u8>(gen.below(kStrings)));
    }
    script.push_back(0); // end marker

    const auto pool_l = b.newLabel("strpool");
    b.bindData(pool_l);
    b.dataBytes(pool);
    b.dataAlign(4);
    const auto offs_l = b.newLabel("stroffs");
    b.bindData(offs_l);
    b.dataWords(offsets);
    const auto script_l = b.newLabel("script");
    b.bindData(script_l);
    b.dataBytes(script);
    b.dataAlign(4);
    const auto map_l = b.newLabel("assoc");
    b.bindData(map_l);
    b.dataSpace(kBuckets * 8);

    const auto strhash = b.newLabel("strhash");
    const auto strlen_ = b.newLabel("strlen");
    const auto strcmp_ = b.newLabel("strcmp");
    const auto str_at = b.newLabel("str_at");
    const auto map_put = b.newLabel("map_put");
    const auto map_get = b.newLabel("map_get");

    // ---- main ---------------------------------------------------------------
    // s0 = script cursor, s1 = checksum, s2 = map base, s7 = op counter
    b.la(s0, script_l);
    b.li(s1, 0);
    b.la(s2, map_l);
    b.li(s7, 0);

    const auto loop = b.newLabel();
    const auto op2 = b.newLabel();
    const auto op3 = b.newLabel();
    const auto op4 = b.newLabel();
    const auto cont = b.newLabel();
    const auto done = b.newLabel();

    b.bind(loop);
    b.lbu(s3, 0, s0);       // op
    b.beqz(s3, done);
    b.lbu(s4, 1, s0);       // string index
    b.addi(s0, s0, 2);
    b.addi(s7, s7, 1);

    // op 1: store — assoc[hash(str)] = strlen(str) + op counter
    b.addi(t0, s3, -1);
    b.bnez(t0, op2);
    b.move(a0, s4);
    b.jal(str_at);
    b.move(s5, v0);
    b.move(a0, s5);
    b.jal(strhash);
    b.move(s6, v0);
    b.move(a0, s5);
    b.jal(strlen_);
    b.add(a1, v0, s7);
    b.move(a0, s6);
    b.jal(map_put);
    b.b(cont);

    // op 2: fetch — checksum += assoc[hash(str)]
    b.bind(op2);
    b.addi(t0, s3, -2);
    b.bnez(t0, op3);
    b.move(a0, s4);
    b.jal(str_at);
    b.move(a0, v0);
    b.jal(strhash);
    b.move(a0, v0);
    b.jal(map_get);
    b.add(s1, s1, v0);
    b.b(cont);

    // op 3: compare adjacent strings — checksum ^= strcmp result
    b.bind(op3);
    b.addi(t0, s3, -3);
    b.bnez(t0, op4);
    b.move(a0, s4);
    b.jal(str_at);
    b.move(s5, v0);
    b.addi(t1, s4, 1);
    b.li(t2, kStrings);
    b.rem(t1, t1, t2);
    b.move(a0, t1);
    b.jal(str_at);
    b.move(a1, v0);
    b.move(a0, s5);
    b.jal(strcmp_);
    b.xor_(s1, s1, v0);
    b.b(cont);

    // op 4: hash+length mix
    b.bind(op4);
    b.move(a0, s4);
    b.jal(str_at);
    b.move(s5, v0);
    b.move(a0, s5);
    b.jal(strhash);
    b.move(s6, v0);
    b.move(a0, s5);
    b.jal(strlen_);
    b.mul(t0, v0, s6);
    b.add(s1, s1, t0);

    b.bind(cont);
    b.b(loop);
    b.bind(done);
    b.out(s1);
    b.out(s7);
    b.halt();

    // ---- str_at(index) -> char* -----------------------------------------------
    b.bind(str_at);
    b.la(t0, offs_l);
    b.sll(t1, a0, 2);
    b.add(t1, t1, t0);
    b.lw(t2, 0, t1);
    b.la(t3, pool_l);
    b.add(v0, t2, t3);
    b.ret();

    // ---- strhash(char*) -> h (djb2) --------------------------------------------
    b.bind(strhash);
    {
        const auto hl = b.newLabel();
        const auto hend = b.newLabel();
        b.li(v0, 5381);
        b.bind(hl);
        b.lbu(t0, 0, a0);
        b.beqz(t0, hend);
        b.sll(t1, v0, 5);
        b.add(v0, v0, t1);
        b.add(v0, v0, t0);
        b.addi(a0, a0, 1);
        b.b(hl);
        b.bind(hend);
        b.ret();
    }

    // ---- strlen(char*) -> n -------------------------------------------------------
    b.bind(strlen_);
    {
        const auto ll = b.newLabel();
        const auto lend = b.newLabel();
        b.li(v0, 0);
        b.bind(ll);
        b.lbu(t0, 0, a0);
        b.beqz(t0, lend);
        b.addi(v0, v0, 1);
        b.addi(a0, a0, 1);
        b.b(ll);
        b.bind(lend);
        b.ret();
    }

    // ---- strcmp(a, b) -> difference of first mismatching chars ----------------------
    b.bind(strcmp_);
    {
        const auto cl = b.newLabel();
        const auto cdiff = b.newLabel();
        const auto cend = b.newLabel();
        b.bind(cl);
        b.lbu(t0, 0, a0);
        b.lbu(t1, 0, a1);
        b.bne(t0, t1, cdiff);
        b.beqz(t0, cend);
        b.addi(a0, a0, 1);
        b.addi(a1, a1, 1);
        b.b(cl);
        b.bind(cdiff);
        b.sub(v0, t0, t1);
        b.ret();
        b.bind(cend);
        b.li(v0, 0);
        b.ret();
    }

    // ---- map_put(h, v) ---------------------------------------------------------------
    b.bind(map_put);
    b.andi(t0, a0, kBuckets - 1);
    b.sll(t0, t0, 3);
    b.add(t0, t0, s2);
    b.sw(a0, 0, t0);
    b.sw(a1, 4, t0);
    b.ret();

    // ---- map_get(h) -> v or 0 ----------------------------------------------------------
    b.bind(map_get);
    {
        const auto hit = b.newLabel();
        b.andi(t0, a0, kBuckets - 1);
        b.sll(t0, t0, 3);
        b.add(t0, t0, s2);
        b.lw(t1, 0, t0);
        b.beq(t1, a0, hit);
        b.li(v0, 0);
        b.ret();
        b.bind(hit);
        b.lw(v0, 4, t0);
        b.ret();
    }

    return b.finish();
}

} // namespace dmt
