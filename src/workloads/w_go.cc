/**
 * @file
 * "go"-like workload: branchy board-position evaluation.  A 19x19
 * board of small integers is scanned repeatedly; every point is scored
 * by a called procedure full of data-dependent conditionals (neighbour
 * counts, chains, edge heuristics), and the board is mutated between
 * passes.  Mimics 099.go's hard-to-predict branches and moderate call
 * density.
 */

#include "workloads/workloads.hh"

#include "casm/builder.hh"
#include "common/rng.hh"

namespace dmt
{

using namespace reg;

Program
buildGo()
{
    constexpr int kDim = 19;
    constexpr int kPasses = 60;

    AsmBuilder b;
    Rng gen(0x900d900du);

    std::vector<u32> board;
    for (int i = 0; i < kDim * kDim; ++i)
        board.push_back(gen.next32() % 3); // empty / black / white

    const auto board_l = b.newLabel("board");
    b.bindData(board_l);
    b.dataWords(board);

    const auto eval_point = b.newLabel("eval_point");
    const auto scan = b.newLabel("scan_board");

    // ---- main ----------------------------------------------------------
    // s0 = board, s1 = pass, s2 = total score
    b.la(s0, board_l);
    b.li(s1, 0);
    b.li(s2, 0);
    const auto pass_loop = b.newLabel();
    b.bind(pass_loop);
    b.move(a0, s1);
    b.jal(scan);
    b.add(s2, s2, v0);
    b.addi(s1, s1, 1);
    b.li(t0, kPasses);
    b.blt(s1, t0, pass_loop);
    b.out(s2);
    b.halt();

    // ---- scan_board(pass) -> score ------------------------------------
    // Calls eval_point for every interior point; mutates a point when
    // its score crosses a threshold.
    b.bind(scan);
    b.addi(sp, sp, -24);
    b.sw(ra, 20, sp);
    b.sw(s3, 16, sp);
    b.sw(s4, 12, sp);
    b.sw(s5, 8, sp);
    b.sw(s6, 4, sp);
    b.sw(s7, 0, sp);
    b.move(s7, a0);  // pass number
    b.li(s3, 1);     // y
    b.li(s5, 0);     // score accumulator
    const auto yloop = b.newLabel();
    const auto xloop = b.newLabel();
    const auto no_mutate = b.newLabel();
    b.bind(yloop);
    b.li(s4, 1);     // x
    b.bind(xloop);
    b.move(a0, s4);
    b.move(a1, s3);
    b.jal(eval_point);
    b.add(s5, s5, v0);
    // Mutate the point when score+pass has low bits 0b101:
    // board[y][x] = (board[y][x] + 1) % 3.
    b.add(t0, v0, s7);
    b.andi(t0, t0, 7);
    b.addi(t0, t0, -5);
    b.bnez(t0, no_mutate);
    b.li(t3, kDim);
    b.mul(t1, s3, t3);
    b.add(t1, t1, s4);
    b.sll(t1, t1, 2);
    b.add(t1, t1, s0);
    b.lw(t4, 0, t1);
    b.addi(t4, t4, 1);
    b.li(t5, 3);
    b.rem(t4, t4, t5);
    b.sw(t4, 0, t1);
    b.bind(no_mutate);
    b.addi(s4, s4, 1);
    b.li(t2, kDim - 1);
    b.blt(s4, t2, xloop);
    b.addi(s3, s3, 1);
    b.blt(s3, t2, yloop);
    b.move(v0, s5);
    b.lw(s7, 0, sp);
    b.lw(s6, 4, sp);
    b.lw(s5, 8, sp);
    b.lw(s4, 12, sp);
    b.lw(s3, 16, sp);
    b.lw(ra, 20, sp);
    b.addi(sp, sp, 24);
    b.ret();

    // ---- eval_point(x, y) -> score -------------------------------------
    b.bind(eval_point);
    // addr = board + 4*(y*19 + x); neighbours N/S/E/W
    b.li(t9, kDim);
    b.mul(t0, a1, t9);
    b.add(t0, t0, a0);
    b.sll(t0, t0, 2);
    b.la(at, board_l);
    b.add(t0, t0, at);
    b.lw(t1, 0, t0);                       // me
    b.lw(t2, -4, t0);                      // west
    b.lw(t3, 4, t0);                       // east
    b.lw(t4, -4 * kDim, t0);               // north
    b.lw(t5, 4 * kDim, t0);                // south
    b.li(v0, 0);

    const auto not_empty = b.newLabel();
    const auto count_friends = b.newLabel();
    const auto w_done = b.newLabel();
    const auto e_done = b.newLabel();
    const auto n_done = b.newLabel();
    const auto s_done = b.newLabel();
    const auto liberties = b.newLabel();
    const auto edge_bonus = b.newLabel();
    const auto finish = b.newLabel();

    // Empty point: score by neighbour pressure.
    b.bnez(t1, not_empty);
    b.add(v0, t2, t3);
    b.add(v0, v0, t4);
    b.add(v0, v0, t5);
    b.b(finish);

    b.bind(not_empty);
    b.li(t6, 0); // friends
    b.li(t7, 0); // liberties
    b.bind(count_friends);
    b.bne(t2, t1, w_done);
    b.addi(t6, t6, 1);
    b.bind(w_done);
    b.bnez(t2, e_done);
    b.addi(t7, t7, 1);
    b.bind(e_done);
    b.bne(t3, t1, n_done);
    b.addi(t6, t6, 1);
    b.bind(n_done);
    b.bnez(t3, s_done);
    b.addi(t7, t7, 1);
    b.bind(s_done);
    b.bne(t4, t1, liberties);
    b.addi(t6, t6, 1);
    b.bind(liberties);
    b.bnez(t4, edge_bonus);
    b.addi(t7, t7, 1);
    b.bind(edge_bonus);
    b.bne(t5, t1, finish);
    b.addi(t6, t6, 2);

    b.bind(finish);
    // score = friends*3 + liberties*2 + me
    b.sll(t8, t6, 1);
    b.add(t8, t8, t6);
    b.sll(t9, t7, 1);
    b.add(v0, v0, t8);
    b.add(v0, v0, t9);
    b.add(v0, v0, t1);
    b.ret();

    return b.finish();
}

} // namespace dmt
