/**
 * @file
 * Synthetic workload suite standing in for the paper's SPEC95int runs
 * (go, m88ksim, gcc, compress, li, ijpeg, perl, vortex).  Each kernel
 * is built programmatically (AsmBuilder) and mimics the control-flow
 * character that matters to DMT: call depth and frequency, loop
 * structure, branch predictability, and stack save/restore traffic.
 *
 * Every program is deterministic, self-checking (emits OUT checksums
 * that the golden model must reproduce) and ends in HALT.
 */

#ifndef DMT_WORKLOADS_WORKLOADS_HH
#define DMT_WORKLOADS_WORKLOADS_HH

#include <string>
#include <vector>

#include "casm/program.hh"

namespace dmt
{

/** A named benchmark program. */
struct WorkloadInfo
{
    const char *name;
    const char *mimics;       ///< the SPEC95 benchmark it stands in for
    const char *character;    ///< dominant control-flow behaviour
    Program (*build)();
};

// The SPEC95int-like suite.
Program buildGo();        ///< branchy board evaluation (go)
Program buildM88ksim();   ///< CPU-interpreter dispatch loop (m88ksim)
Program buildGcc();       ///< recursive IR tree walking (gcc)
Program buildCompress();  ///< LZW-style hash compression (compress)
Program buildLi();        ///< recursive list interpreter (li)
Program buildIjpeg();     ///< nested-loop transform kernels (ijpeg)
Program buildPerl();      ///< string hashing interpreter (perl)
Program buildVortex();    ///< OO-database lookups (vortex)

/** All suite workloads, in the paper's reporting order. */
const std::vector<WorkloadInfo> &workloadSuite();

/**
 * Build a workload by name: a suite name, or a generated-family spec
 * "gen:<family>:<seed>[:knob=value...]" (see workloads/generator.hh).
 * fatal() on unknown names and malformed specs.
 */
Program buildWorkload(const std::string &name);

// ---- microkernels (tests and examples) --------------------------------

/** Recursive Fibonacci of @p n; OUTs the result. */
Program mkFibRecursive(int n);

/** Sum 0..n-1 in a simple loop; OUTs the sum. */
Program mkSumLoop(int n);

/** Dense @p n x @p n integer matrix multiply; OUTs a checksum. */
Program mkMatmul(int n);

/** Bubble-sorts @p n pseudo-random words; OUTs min, max, checksum. */
Program mkSort(int n);

/** Builds and walks a linked list of @p n nodes; OUTs the sum. */
Program mkLinkedList(int n);

/** Calls a tiny leaf procedure @p n times; OUTs an accumulator. */
Program mkCallChain(int n);

/** Data-dependent branch pattern over @p n PRNG draws; OUTs counts. */
Program mkBranchy(int n);

/** Store/load aliasing stress: writes then reads overlapping bytes. */
Program mkAliasStress(int n);

/** Deep recursion with stack save/restore of many registers. */
Program mkDeepRecursion(int depth);

/** Loop nest with an unusual (break-style) loop exit. */
Program mkLoopBreak(int outer, int inner);

} // namespace dmt

#endif // DMT_WORKLOADS_WORKLOADS_HH
