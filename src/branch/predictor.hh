/**
 * @file
 * Branch prediction facade combining the shared gshare table and BTB
 * with per-thread history registers and return address stacks, matching
 * the paper's arrangement: tables shared, sequencing state per thread.
 */

#ifndef DMT_BRANCH_PREDICTOR_HH
#define DMT_BRANCH_PREDICTOR_HH

#include "branch/btb.hh"
#include "branch/gshare.hh"
#include "branch/ras.hh"
#include "isa/inst.hh"

namespace dmt
{

/** Per-thread speculative sequencing state. */
struct ThreadBranchState
{
    u32 history = 0;
    Ras ras;

    void
    clearForSpawn(const ThreadBranchState &parent)
    {
        history = 0;       // paper: history cleared on spawn
        ras = parent.ras;  // paper: RAS copied from the spawning thread
    }
};

/** Outcome of a fetch-time prediction. */
struct BranchPrediction
{
    bool taken = false;
    Addr target = 0;
    /** History register value used for the table lookup (for update). */
    u32 history_used = 0;
    /** True when the target came from the RAS. */
    bool used_ras = false;
    /** True when an indirect target was unavailable (BTB miss). */
    bool target_unknown = false;
};

/** Predictor sizing. */
struct PredictorParams
{
    int gshare_table_bits = 16;
    int gshare_history_bits = 12;
    int btb_index_bits = 14;
};

/**
 * Shared predictor unit.  predict() also performs the speculative
 * per-thread updates (history shift, RAS push/pop); callers checkpoint
 * ThreadBranchState before calling and restore it on squash.
 */
class BranchPredictorUnit
{
  public:
    explicit BranchPredictorUnit(const PredictorParams &params);

    /**
     * Predict the control transfer of @p inst at @p pc for a thread
     * with sequencing state @p ts.  Non-control instructions return
     * not-taken/fall-through and leave @p ts untouched.
     */
    BranchPrediction predict(const Instruction &inst, Addr pc,
                             ThreadBranchState &ts);

    /** Train tables after a conditional branch resolves. */
    void updateCond(Addr pc, u32 history_used, bool taken);

    /** Train the BTB after an indirect jump resolves. */
    void updateIndirect(Addr pc, Addr target);

    void reset();

    const Gshare &gshare() const { return gshare_; }

  private:
    Gshare gshare_;
    Btb btb_;
};

} // namespace dmt

#endif // DMT_BRANCH_PREDICTOR_HH
