#include "branch/btb.hh"

#include "common/log.hh"

namespace dmt
{

Btb::Btb(int index_bits_)
    : index_bits(index_bits_)
{
    DMT_ASSERT(index_bits > 0 && index_bits <= 24, "bad btb size");
    mask = (1u << index_bits) - 1;
    entries.resize(1u << index_bits);
}

bool
Btb::lookup(Addr pc, Addr *target) const
{
    const Entry &e = entries[indexOf(pc)];
    if (!e.valid || e.tag != tagOf(pc))
        return false;
    *target = e.target;
    return true;
}

void
Btb::update(Addr pc, Addr target)
{
    Entry &e = entries[indexOf(pc)];
    e.valid = true;
    e.tag = tagOf(pc);
    e.target = target;
}

void
Btb::reset()
{
    for (auto &e : entries)
        e = Entry{};
}

} // namespace dmt
