#include "branch/gshare.hh"

#include "common/log.hh"

namespace dmt
{

Gshare::Gshare(int table_bits_, int history_bits_)
    : table_bits(table_bits_), history_bits(history_bits_)
{
    DMT_ASSERT(table_bits > 0 && table_bits <= 24, "bad table size");
    DMT_ASSERT(history_bits >= 0 && history_bits <= table_bits,
               "history wider than table index");
    table_mask = (1u << table_bits) - 1;
    history_mask = history_bits == 0 ? 0 : (1u << history_bits) - 1;
    table.assign(1u << table_bits, 1); // weakly not-taken
}

u32
Gshare::index(Addr pc, u32 history) const
{
    return ((pc >> 2) ^ (history & history_mask)) & table_mask;
}

bool
Gshare::predict(Addr pc, u32 history) const
{
    return table[index(pc, history)] >= 2;
}

void
Gshare::update(Addr pc, u32 history, bool taken)
{
    u8 &ctr = table[index(pc, history)];
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else if (ctr > 0) {
        --ctr;
    }
}

void
Gshare::reset()
{
    table.assign(table.size(), 1);
}

} // namespace dmt
