/**
 * @file
 * Gshare direction predictor (McFarling).  One table of 2-bit saturating
 * counters shared by all threads; each thread supplies its own branch
 * history register, exactly as in the paper's modified gshare (Section
 * 3.1.4): a freshly spawned thread starts with a cleared history, so its
 * first k branches are predicted with little correlation, after which
 * the scheme is true gshare.
 */

#ifndef DMT_BRANCH_GSHARE_HH
#define DMT_BRANCH_GSHARE_HH

#include <vector>

#include "common/types.hh"

namespace dmt
{

/** Shared-table gshare predictor. */
class Gshare
{
  public:
    /**
     * @param table_bits log2 of the counter-table size.
     * @param history_bits branch-history register width (<= table_bits).
     */
    Gshare(int table_bits, int history_bits);

    /** Predict direction with the caller's history register. */
    bool predict(Addr pc, u32 history) const;

    /** Train the table with the resolved direction. */
    void update(Addr pc, u32 history, bool taken);

    /** Shift @p taken into a history register value. */
    u32
    pushHistory(u32 history, bool taken) const
    {
        return ((history << 1) | (taken ? 1u : 0u)) & history_mask;
    }

    int historyBits() const { return history_bits; }
    void reset();

  private:
    u32 index(Addr pc, u32 history) const;

    int table_bits;
    int history_bits;
    u32 table_mask;
    u32 history_mask;
    std::vector<u8> table; ///< 2-bit counters, initialized weakly taken
};

} // namespace dmt

#endif // DMT_BRANCH_GSHARE_HH
