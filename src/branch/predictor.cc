#include "branch/predictor.hh"

namespace dmt
{

BranchPredictorUnit::BranchPredictorUnit(const PredictorParams &params)
    : gshare_(params.gshare_table_bits, params.gshare_history_bits),
      btb_(params.btb_index_bits)
{
}

BranchPrediction
BranchPredictorUnit::predict(const Instruction &inst, Addr pc,
                             ThreadBranchState &ts)
{
    BranchPrediction p;
    p.target = pc + 4;

    if (inst.isCondBranch()) {
        p.history_used = ts.history;
        p.taken = gshare_.predict(pc, ts.history);
        if (p.taken)
            p.target = inst.branchTarget(pc);
        ts.history = gshare_.pushHistory(ts.history, p.taken);
        return p;
    }

    if (!inst.isJump())
        return p;

    p.taken = true;
    if (inst.isCall())
        ts.ras.push(pc + 4);

    if (!inst.isIndirect()) {
        p.target = inst.jumpTarget();
        return p;
    }

    if (inst.isReturn()) {
        const Addr ret = ts.ras.pop();
        if (ret != 0) {
            p.target = ret;
            p.used_ras = true;
        } else {
            p.target_unknown = !btb_.lookup(pc, &p.target);
            if (p.target_unknown)
                p.target = pc + 4;
        }
        return p;
    }

    // Non-return indirect: BTB.
    p.target_unknown = !btb_.lookup(pc, &p.target);
    if (p.target_unknown)
        p.target = pc + 4;
    return p;
}

void
BranchPredictorUnit::updateCond(Addr pc, u32 history_used, bool taken)
{
    gshare_.update(pc, history_used, taken);
}

void
BranchPredictorUnit::updateIndirect(Addr pc, Addr target)
{
    btb_.update(pc, target);
}

void
BranchPredictorUnit::reset()
{
    gshare_.reset();
    btb_.reset();
}

} // namespace dmt
