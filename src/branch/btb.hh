/**
 * @file
 * Branch target buffer for indirect jumps.  Direct targets are decoded
 * from the instruction; the BTB supplies predicted targets for JR/JALR
 * that are not returns (returns use the RAS).  Modeled "very large" per
 * the paper's methodology so the baseline is not penalized.
 */

#ifndef DMT_BRANCH_BTB_HH
#define DMT_BRANCH_BTB_HH

#include <vector>

#include "common/types.hh"

namespace dmt
{

/** Direct-mapped tagged target buffer. */
class Btb
{
  public:
    explicit Btb(int index_bits);

    /**
     * Look up a predicted target.
     * @retval true on hit, writing the target through @p target.
     */
    bool lookup(Addr pc, Addr *target) const;

    /** Install/refresh a target. */
    void update(Addr pc, Addr target);

    void reset();

  private:
    struct Entry
    {
        bool valid = false;
        u32 tag = 0;
        Addr target = 0;
    };

    u32 indexOf(Addr pc) const { return (pc >> 2) & mask; }
    u32 tagOf(Addr pc) const { return pc >> (2 + index_bits); }

    int index_bits;
    u32 mask;
    std::vector<Entry> entries;
};

} // namespace dmt

#endif // DMT_BRANCH_BTB_HH
