/**
 * @file
 * Return address stack.  Each thread owns one; a spawned thread receives
 * a copy of its parent's RAS (paper Section 3.1.4).  The full stack is
 * small enough that branch checkpoints copy it wholesale, giving exact
 * repair on intra-thread branch misprediction.
 */

#ifndef DMT_BRANCH_RAS_HH
#define DMT_BRANCH_RAS_HH

#include <array>

#include "common/types.hh"

namespace dmt
{

/** Fixed-depth circular return address stack. */
class Ras
{
  public:
    static constexpr int kDepth = 32;

    void
    push(Addr ret)
    {
        top = (top + 1) % kDepth;
        if (depth < kDepth)
            ++depth;
        stack[static_cast<size_t>(top)] = ret;
    }

    /** Pop the predicted return address; 0 when empty. */
    Addr
    pop()
    {
        if (depth == 0)
            return 0;
        const Addr ret = stack[static_cast<size_t>(top)];
        top = (top + kDepth - 1) % kDepth;
        --depth;
        return ret;
    }

    /** Peek without popping; 0 when empty. */
    Addr
    peek() const
    {
        return depth == 0 ? 0 : stack[static_cast<size_t>(top)];
    }

    bool empty() const { return depth == 0; }
    int size() const { return depth; }

    void
    clear()
    {
        top = kDepth - 1;
        depth = 0;
    }

  private:
    std::array<Addr, kDepth> stack{};
    int top = kDepth - 1;
    int depth = 0;
};

} // namespace dmt

#endif // DMT_BRANCH_RAS_HH
