#include "branch/ras.hh"

// Ras is fully inline; this translation unit exists so the header is
// compiled standalone at least once (self-containment check).
