/**
 * @file
 * TranslatedCore implementation.  Layout of the hot loop:
 *
 *   enter_target  — validate a PC, look up / translate its superblock
 *   handlers      — one per opcode, plus a synthetic GOTO that closes
 *                   capped / text-end blocks with a budget-free
 *                   fall-through transfer
 *   TAKE          — chained block→block transfer straight through
 *                   pre-resolved pointers (eviction severs stale
 *                   links, so no liveness check runs here), expanded
 *                   per handler for per-site branch-target history
 *   chain_miss    — out-of-line cache lookup that installs the chain
 *                   link for next time
 *
 * Dispatch is direct-threaded via computed goto on GNU-compatible
 * compilers; defining DMT_FF_SWITCH_DISPATCH (CMake option
 * DMT_FF_SWITCH) selects a portable switch loop built from the very
 * same handler bodies, so the two paths cannot drift.
 *
 * Exactness notes, mirrored from functionalStep()/FunctionalCore:
 *  - the instruction budget is retired per instruction, so a run can
 *    stop mid-block with the precise next PC (checkpoint positions);
 *  - an invalid fetch PC (off text / misaligned) halts without
 *    consuming budget, *after* the budget check, like the
 *    interpreter's loop-top ordering;
 *  - HALT consumes budget and leaves PC on itself;
 *  - JALR reads rs before the (possibly aliasing) link write;
 *  - loads of unallocated pages read zero and never allocate;
 *  - writes to r0 are routed to a dump slot at translation time.
 */

#include "sim/translated_core.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/env.hh"
#include "common/log.hh"
#include "common/strutil.hh"
#include "sim/bbv.hh"

namespace dmt
{

// ---- mode / env knobs --------------------------------------------------

bool
parseFfMode(std::string_view s, FfMode *out)
{
    const std::string_view t = trim(s);
    if (t == "interp") {
        *out = FfMode::Interp;
        return true;
    }
    if (t == "translated") {
        *out = FfMode::Translated;
        return true;
    }
    return false;
}

const char *
ffModeName(FfMode mode)
{
    return mode == FfMode::Interp ? "interp" : "translated";
}

FfMode
ffModeFromEnv()
{
    const char *raw = std::getenv("DMT_FF_MODE");
    if (!raw || !*raw)
        return FfMode::Translated;
    FfMode mode;
    if (!parseFfMode(raw, &mode)) {
        fatal("DMT_FF_MODE=\"%s\": unknown fast-forward mode (expected "
              "\"interp\" or \"translated\")",
              raw);
    }
    return mode;
}

u32
ffCacheBlocksFromEnv()
{
    return static_cast<u32>(parseEnvU64(
        "DMT_FF_CACHE", TranslatedCore::kDefaultCacheBlocks, 1,
        u64{1} << 20));
}

TranslationStats &
TranslationStats::operator+=(const TranslationStats &o)
{
    blocks_translated += o.blocks_translated;
    retranslations += o.retranslations;
    evictions += o.evictions;
    chain_hits += o.chain_hits;
    chain_misses += o.chain_misses;
    indirect_hits += o.indirect_hits;
    indirect_misses += o.indirect_misses;
    blocks_executed += o.blocks_executed;
    instrs_executed += o.instrs_executed;
    return *this;
}

TranslationStats
TranslationStats::operator-(const TranslationStats &o) const
{
    TranslationStats d;
    d.blocks_translated = blocks_translated - o.blocks_translated;
    d.retranslations = retranslations - o.retranslations;
    d.evictions = evictions - o.evictions;
    d.chain_hits = chain_hits - o.chain_hits;
    d.chain_misses = chain_misses - o.chain_misses;
    d.indirect_hits = indirect_hits - o.indirect_hits;
    d.indirect_misses = indirect_misses - o.indirect_misses;
    d.blocks_executed = blocks_executed - o.blocks_executed;
    d.instrs_executed = instrs_executed - o.instrs_executed;
    return d;
}

// ---- translation -------------------------------------------------------

namespace
{

/** MicroOp.kind values are raw Opcode values, plus synthetic kinds:
 *  kGotoKind closes capped / text-end blocks with a budget-free
 *  transfer, and the inline-jump kinds are J/JAL whose direct target
 *  was followed during translation (superblock extension), so they
 *  execute as sequential micro-ops whose next PC is the target. */
constexpr u8 kGotoKind = static_cast<u8>(kNumOpcodes);
constexpr u8 kJInlineKind = static_cast<u8>(kNumOpcodes) + 1;
constexpr u8 kJalInlineKind = static_cast<u8>(kNumOpcodes) + 2;
constexpr u32 kNumKinds = static_cast<u32>(kNumOpcodes) + 3;

/** Exit-table bound per block: conditional branches index their taken
 *  exit through the u8 MicroOp.rd field. */
constexpr size_t kMaxBlockExits = 254;

constexpr u8
opKind(Opcode op)
{
    return static_cast<u8>(op);
}

// The dispatch table below is written in Opcode declaration order;
// these anchors turn any enum reshuffle into a compile error instead
// of silently wrong threaded code.
static_assert(opKind(Opcode::ADD) == 0);
static_assert(opKind(Opcode::SLT) == 12);
static_assert(opKind(Opcode::ADDI) == 20);
static_assert(opKind(Opcode::LUI) == 26);
static_assert(opKind(Opcode::LW) == 27);
static_assert(opKind(Opcode::SW) == 32);
static_assert(opKind(Opcode::BEQ) == 35);
static_assert(opKind(Opcode::J) == 41);
static_assert(opKind(Opcode::NOP) == 45);
static_assert(opKind(Opcode::HALT) == 46);
static_assert(opKind(Opcode::OUT) == 47);
static_assert(kNumOpcodes == 48);

/** Little-endian composes/decomposes; single loads/stores after the
 *  optimizer on LE hosts, correct everywhere. */
inline u32
ld32(const u8 *p)
{
    return static_cast<u32>(p[0]) | static_cast<u32>(p[1]) << 8
        | static_cast<u32>(p[2]) << 16 | static_cast<u32>(p[3]) << 24;
}

inline u16
ld16(const u8 *p)
{
    return static_cast<u16>(p[0] | p[1] << 8);
}

inline void
st32(u8 *p, u32 v)
{
    p[0] = static_cast<u8>(v);
    p[1] = static_cast<u8>(v >> 8);
    p[2] = static_cast<u8>(v >> 16);
    p[3] = static_cast<u8>(v >> 24);
}

inline void
st16(u8 *p, u16 v)
{
    p[0] = static_cast<u8>(v);
    p[1] = static_cast<u8>(v >> 8);
}

} // namespace

TranslatedCore::TranslatedCore(const Program &prog, u32 max_blocks)
    : prog_(prog), max_blocks_(max_blocks < 1 ? 1 : max_blocks),
      idx2block_(prog.text.size()),
      ever_translated_(prog.text.size(), 0)
{
}

void
TranslatedCore::invalidateAll()
{
    for (u32 i = 0; i < slots_.size(); ++i) {
        if (!slots_[i].live)
            continue;
        Block &b = slots_[i];
        b.live = false;
        ++b.gen;
        b.code.clear();
        b.code.shrink_to_fit();
        b.exits.clear();
        b.exits.shrink_to_fit();
        free_slots_.push_back(i);
    }
    std::fill(idx2block_.begin(), idx2block_.end(), TargetRef{});
    live_blocks_ = 0;
}

u32
TranslatedCore::addExit(Block *b, Addr target)
{
    Exit e;
    e.target_pc = target;
    b->exits.push_back(e);
    return static_cast<u32>(b->exits.size() - 1);
}

void
TranslatedCore::evictOne()
{
    // Least-recently-entered block.  The linear scan is acceptable:
    // evictions happen only at the cache bound, and the bound is tiny
    // exactly when someone (a test) wants eviction churn.
    u32 victim = kNoBlock;
    u64 oldest = ~u64{0};
    for (u32 i = 0; i < slots_.size(); ++i) {
        if (slots_[i].live && slots_[i].last_used < oldest) {
            oldest = slots_[i].last_used;
            victim = i;
        }
    }
    DMT_ASSERT(victim != kNoBlock,
               "translation cache eviction with no live blocks");
    Block &b = slots_[victim];
    idx2block_[(b.start_pc - Program::kTextBase) >> 2] = TargetRef{};
    b.live = false;
    ++b.gen;
    b.code.clear();
    b.code.shrink_to_fit();
    b.exits.clear();
    b.exits.shrink_to_fit();
    // Sever every chain link into the victim.  Paying a full exit walk
    // here (rare: only at the cache bound) is what lets chained
    // transfers in the dispatch loop jump through raw pointers with no
    // liveness check at all.
    for (Block &s : slots_) {
        if (!s.live)
            continue;
        for (Exit &e : s.exits) {
            if (e.slot == victim) {
                e.code = nullptr;
                e.exits = nullptr;
                e.entry = nullptr;
                e.slot = kNoBlock;
            }
        }
    }
    free_slots_.push_back(victim);
    --live_blocks_;
    ++stats_.evictions;
}

u32
TranslatedCore::lookupOrTranslate(u32 start_idx)
{
    const u32 slot = idx2block_[start_idx].slot;
    if (slot != kNoBlock) {
        slots_[slot].last_used = ++use_clock_;
        return slot;
    }
    return translate(start_idx);
}

u32
TranslatedCore::translate(u32 start_idx)
{
    if (live_blocks_ >= max_blocks_)
        evictOne();

    u32 slot;
    if (!free_slots_.empty()) {
        slot = free_slots_.back();
        free_slots_.pop_back();
    } else {
        slot = static_cast<u32>(slots_.size());
        slots_.emplace_back();
    }

    Block &b = slots_[slot];
    b.live = true;
    b.start_pc = Program::kTextBase + static_cast<Addr>(start_idx) * 4;
    b.last_used = ++use_clock_;

    const size_t text_size = prog_.text.size();
    u32 idx = start_idx;
    bool open = true;
    while (open) {
        const Instruction &inst = prog_.text[idx];
        const Addr pc = Program::kTextBase + static_cast<Addr>(idx) * 4;
        MicroOp u{};
        u.kind = opKind(inst.op);
        u.rd = inst.effectiveDest() >= 0
            ? inst.rd
            : static_cast<u8>(kNumLogRegs); // r0 / no-dest write dump
        u.rs = inst.rs;
        u.rt = inst.rt;
        u.imm = static_cast<u32>(inst.imm);
        u.aux = pc + 4; // sequential-op next PC (exact budget stops)
        u32 next_idx = idx + 1;

        switch (opInfo(inst.op).opClass) {
          case OpClass::IntAlu:
          case OpClass::IntMul:
          case OpClass::IntDiv:
            // Fold translation-time constants so handlers are pure
            // data moves: shift amounts pre-masked, LUI pre-shifted.
            if (inst.op == Opcode::SLL || inst.op == Opcode::SRL
                || inst.op == Opcode::SRA) {
                u.imm &= 31;
            } else if (inst.op == Opcode::LUI) {
                u.imm <<= 16;
            }
            break;
          case OpClass::MemRead:
          case OpClass::MemWrite:
            break;
          case OpClass::Control:
            switch (inst.op) {
              case Opcode::J:
              case Opcode::JAL: {
                  // Direct jumps with an in-text target are followed
                  // inline (superblock extension with tail
                  // duplication): the jump becomes a sequential
                  // micro-op whose next PC is the target, and decoding
                  // continues there.  Only an off-text target ends the
                  // block with an Exit, so block entry re-checks it.
                  const Addr t = inst.jumpTarget();
                  if (inst.op == Opcode::JAL)
                      u.imm = pc + 4; // link value, folded
                  if (prog_.validTextAddr(t)) {
                      u.kind = inst.op == Opcode::J ? kJInlineKind
                                                    : kJalInlineKind;
                      u.aux = t;
                      next_idx = (t - Program::kTextBase) >> 2;
                  } else {
                      u.aux = addExit(&b, t);
                      open = false;
                  }
                  break;
              }
              case Opcode::JR:
              case Opcode::JALR:
                u.imm = pc + 4; // link value (unused by JR)
                // Indirect site: the Exit doubles as a one-entry
                // next-block predictor (target_pc = last seen).
                u.aux = addExit(&b, 0);
                open = false;
                break;
              default:
                // Conditional branch: taken-edge side exit, indexed
                // through rd (branches write no register); aux keeps
                // the fall-through PC for exact budget stops.
                u.rd = static_cast<u8>(
                    addExit(&b, inst.branchTarget(pc)));
                break;
            }
            break;
          case OpClass::Other:
            if (inst.op == Opcode::HALT) {
                u.aux = pc; // HALT leaves the PC on itself
                open = false;
            }
            break;
        }

        u.handler = labels_ ? labels_[u.kind] : nullptr;
        b.code.push_back(u);
        idx = next_idx;
        if (open
            && (idx >= text_size || b.code.size() >= kMaxBlockLen
                || b.exits.size() >= kMaxBlockExits)) {
            // Close capped / text-end blocks with a budget-free
            // transfer to wherever decoding would continue.  An
            // off-text fall-through target halts at entry, exactly
            // like the interpreter's fetch check.
            MicroOp g{};
            g.kind = kGotoKind;
            g.rd = static_cast<u8>(kNumLogRegs);
            g.aux = addExit(
                &b, Program::kTextBase + static_cast<Addr>(idx) * 4);
            g.handler = labels_ ? labels_[g.kind] : nullptr;
            b.code.push_back(g);
            open = false;
        }
    }

    idx2block_[start_idx] = TargetRef{b.code.data(), b.exits.data(),
                                      b.code.front().handler, slot};
    ++live_blocks_;
    ++stats_.blocks_translated;
    if (ever_translated_[start_idx])
        ++stats_.retranslations;
    ever_translated_[start_idx] = 1;
    return slot;
}

// ---- memory fast path --------------------------------------------------

inline const u8 *
TranslatedCore::readPage(const MainMemory &mem, Addr ea)
{
    const u32 page = ea >> MainMemory::kPageBits;
    TlbR &t = rtlb_[page & (kTlbEntries - 1)];
    if (t.page == page)
        return t.base;
    const u8 *base = mem.pageData(ea);
    if (base) {
        // Absent pages read as zero and must never be cached: a later
        // store may allocate them.
        t.page = page;
        t.base = base;
    }
    return base;
}

inline u8 *
TranslatedCore::writePage(MainMemory &mem, Addr ea)
{
    const u32 page = ea >> MainMemory::kPageBits;
    TlbW &t = wtlb_[page & (kTlbEntries - 1)];
    if (t.page == page)
        return t.base;
    u8 *base = mem.pageDataWritable(ea);
    t.page = page;
    t.base = base;
    return base;
}

// ---- execution ---------------------------------------------------------

#if (defined(__GNUC__) || defined(__clang__)) \
    && !defined(DMT_FF_SWITCH_DISPATCH)
#define DMT_FF_COMPUTED_GOTO 1
#else
#define DMT_FF_COMPUTED_GOTO 0
#endif

#if DMT_FF_COMPUTED_GOTO
#define OP(name) L_##name:
#define OP_SYNTH_GOTO L_GOTO:
#define OP_SYNTH_J_INLINE L_J_INLINE:
#define OP_SYNTH_JAL_INLINE L_JAL_INLINE:
#define DISPATCH() goto *up->handler
#else
#define OP(name) case opKind(Opcode::name):
#define OP_SYNTH_GOTO case kGotoKind:
#define OP_SYNTH_J_INLINE case kJInlineKind:
#define OP_SYNTH_JAL_INLINE case kJalInlineKind:
#define DISPATCH() goto dispatch_top
#endif

/** Enter a cached block by slot index (lookup / resolve paths).  LRU
 *  touches happen only in lookupOrTranslate, keeping transfers free of
 *  member read-modify-writes. */
#define ENTER_SLOT(slot_expr)                                          \
    do {                                                               \
        cur_slot = (slot_expr);                                        \
        const Block &b_ = slots[cur_slot];                             \
        ++n_blocks;                                                    \
        up = b_.code.data();                                           \
        exits = b_.exits.data();                                       \
    } while (0)

/** Dispatch into a block whose first-handler label was cached at
 *  chain-install time: the indirect jump's target comes from one load
 *  of `e` instead of the dependent pair code → code->handler, so a
 *  host-mispredicted transfer redirects one load-latency sooner.  The
 *  switch dispatcher has no label addresses; it re-derives the case
 *  from up->kind as always. */
#if DMT_FF_COMPUTED_GOTO
#define DISPATCH_ENTRY(e) goto *(e)
#else
#define DISPATCH_ENTRY(e) DISPATCH()
#endif

/** Enter a block through a chained exit and dispatch: four loads off
 *  one Exit and an indirect jump, no table indexing and no liveness
 *  check (eviction severed any stale link). */
#define ENTER_CHAIN()                                                  \
    do {                                                               \
        const void *entry_ = ex->entry;                                \
        cur_slot = ex->slot;                                           \
        ++n_blocks;                                                    \
        up = ex->code;                                                 \
        exits = ex->exits;                                             \
        DISPATCH_ENTRY(entry_);                                        \
    } while (0)

/** Retire one sequential instruction; stop exactly on the budget
 *  (every sequential micro-op carries its next PC in aux). */
#define NEXT()                                                         \
    do {                                                               \
        if (--remaining == 0) {                                        \
            final_pc = up->aux;                                        \
            goto done;                                                 \
        }                                                              \
        ++up;                                                          \
        DISPATCH();                                                    \
    } while (0)

namespace
{

/** Cold tail of the BBV fast path: write back the engine's cursor,
 *  run the exact scalar transfer (interval close / first touch) and
 *  return the refreshed interval room.  Out of line so the expansion
 *  at every transfer site stays a few instructions. */
__attribute__((noinline)) u64
bbvSlowTransfer(BbvCollector *bbv, u64 room, u32 cur_key, u32 key,
                u64 n)
{
    bbv->syncHot(room, cur_key);
    bbv->transferKey(key, n);
    return bbv->hotRoom();
}

} // namespace

/** Report a taken transfer to the BBV collector: the instructions
 *  retired since the previous boundary fall out of the budget counter
 *  as a delta, and the region key is computed here, where the ALU
 *  work hides in the dispatch loop's latency shadow.  A transfer that
 *  re-enters the current region's key (a loop back to its own head —
 *  a large share of all transfers) is not reported at all: merging
 *  contiguous same-key regions is exact, because their histogram
 *  contributions add and the slow path splits a merged delta at the
 *  identical boundary position.  The rest run the collector's
 *  documented hot-path bump (see BbvCollector::hotCounts) on engine
 *  locals — with the collector off this is one predictable branch per
 *  transfer, and with it on the dispatch loop only makes a call at
 *  interval boundaries and first block touches. */
#define BBV_NOTE(target_expr)                                          \
    do {                                                               \
        if (bbv_on) {                                                  \
            const u32 bkey_ =                                          \
                BbvCollector::keyForPc((target_expr), bbv_text_size);  \
            if (bkey_ != bbv_cur_key) {                                \
                const u64 bn_ = bbv_rem - remaining;                   \
                const u64 bc_ = bbv_counts[bbv_cur_key];               \
                if (bn_ < bbv_room && bc_ != 0) {                      \
                    bbv_counts[bbv_cur_key] = bc_ + bn_;               \
                    bbv_room -= bn_;                                   \
                } else {                                               \
                    bbv_room = bbvSlowTransfer(                        \
                        bbv, bbv_room, bbv_cur_key, bkey_, bn_);       \
                }                                                      \
                bbv_rem = remaining;                                   \
                bbv_cur_key = bkey_;                                   \
            }                                                          \
        }                                                              \
    } while (0)

/** Retire a taken control transfer through exit `ex`.  The chained
 *  fast path is expanded inline so every handler owns a distinct
 *  indirect-jump site (per-site branch-target history), exactly like
 *  the per-handler DISPATCH in NEXT; only unchained exits share the
 *  out-of-line resolve path. */
#define TAKE()                                                         \
    do {                                                               \
        --remaining;                                                   \
        BBV_NOTE(ex->target_pc);                                       \
        if (remaining == 0) {                                          \
            final_pc = ex->target_pc;                                  \
            goto done;                                                 \
        }                                                              \
        if (ex->code) {                                                \
            ++n_chain_hits;                                            \
            ENTER_CHAIN();                                             \
        }                                                              \
        goto chain_miss;                                               \
    } while (0)

/** Retire an inlined J/JAL (superblock tail duplication): sequential
 *  in the translation but an architectural taken transfer, so it is a
 *  BBV region boundary, with the target PC already folded into aux. */
#define NEXT_JUMP()                                                    \
    do {                                                               \
        --remaining;                                                   \
        BBV_NOTE(up->aux);                                             \
        if (remaining == 0) {                                          \
            final_pc = up->aux;                                        \
            goto done;                                                 \
        }                                                              \
        ++up;                                                          \
        DISPATCH();                                                    \
    } while (0)

/** Retire an indirect transfer (JR/JALR) to `target`.  The flat
 *  PC→block table is the predictor: one subtract, one bounds/align
 *  check, one 16-byte TargetRef load — the same cost monomorphic or
 *  megamorphic, where a cached-last-target compare would mispredict
 *  on every polymorphic dispatch.  Expanded inline per handler for
 *  the same per-site branch-target-history reason as TAKE.  Only an
 *  untranslated or invalid target drops to the resolve path, through
 *  this site's exit slot (which exists solely for that hand-off). */
#define INDIRECT_TAKE()                                                \
    do {                                                               \
        --remaining;                                                   \
        BBV_NOTE(target);                                              \
        if (remaining == 0) {                                          \
            final_pc = target;                                         \
            goto done;                                                 \
        }                                                              \
        const u32 ioff_ = target - text_base;                          \
        if (ioff_ < text_bytes && (ioff_ & 3) == 0) {                  \
            const TargetRef &tr_ = i2b[ioff_ >> 2];                    \
            if (tr_.code) {                                            \
                ++n_ind_hits;                                          \
                cur_slot = tr_.slot;                                   \
                ++n_blocks;                                            \
                up = tr_.code;                                         \
                exits = tr_.exits;                                     \
                DISPATCH_ENTRY(tr_.entry);                             \
            }                                                          \
        }                                                              \
        ++n_ind_misses;                                                \
        ex = const_cast<Exit *>(&exits[up->aux]);                      \
        ex->target_pc = target;                                        \
        ex->code = nullptr;                                            \
        goto resolve_exit;                                             \
    } while (0)

u64
TranslatedCore::run(ArchState &state, MainMemory &mem, u64 max_instr,
                    BbvCollector *bbv)
{
    if (max_instr == 0 || state.halted)
        return 0;

    // BBV collection state: bbv_rem trails `remaining` at the last
    // region boundary, so the instruction count of a region falls out
    // as a subtraction instead of a second hot-loop counter.  The
    // histogram pointer, interval room and open-region key live in
    // locals (see BbvCollector::hotCounts) and are written back via
    // syncHot before any other collector call.
    const bool bbv_on = bbv != nullptr;
    u64 bbv_rem = max_instr;
    const u32 bbv_text_size = static_cast<u32>(prog_.text.size());
    u64 *const bbv_counts = bbv_on ? bbv->hotCounts() : nullptr;
    u64 bbv_room = bbv_on ? bbv->hotRoom() : 0;
    u32 bbv_cur_key = bbv_on ? bbv->currentKey() : 0;

    // Architectural registers staged into a flat local array; index
    // kNumLogRegs is a write-only dump standing in for r0
    // destinations, so the hot loop needs no r0 checks (reads are safe
    // because regs[0] is invariantly zero in ArchState).
    u32 regs[kNumLogRegs + 1];
    std::memcpy(regs, state.regs.data(), sizeof(u32) * kNumLogRegs);
    regs[kNumLogRegs] = 0;

    for (u32 i = 0; i < kTlbEntries; ++i) {
        rtlb_[i] = TlbR{};
        wtlb_[i] = TlbW{};
    }

    u64 remaining = max_instr;
    Addr final_pc = 0;
    bool halted = false;

    const MicroOp *up = nullptr;
    const Exit *exits = nullptr;
    Exit *ex = nullptr;
    u32 cur_slot = kNoBlock;
    Addr target = state.pc;

    // Hot-path state staged in locals so the dispatch loop performs no
    // member read-modify-writes; flushed at `done`.  The slot array
    // pointer must be re-read after any lookupOrTranslate() call
    // (translation may grow the vector); the idx2block_ table never
    // resizes, so its pointer is stable.
    const Block *slots = slots_.data();
    const TargetRef *i2b = idx2block_.data();
    const Addr text_base = Program::kTextBase;
    const u32 text_bytes = static_cast<u32>(prog_.text.size()) * 4;
    u64 n_blocks = 0;
    u64 n_chain_hits = 0, n_chain_misses = 0;
    u64 n_ind_hits = 0, n_ind_misses = 0;

#if DMT_FF_COMPUTED_GOTO
    // One entry per Opcode in declaration order (anchored by the
    // static_asserts above) plus the synthetic kinds.  Exported to
    // translate() through labels_: micro-ops carry their handler
    // address directly, so dispatch needs no table load.
    static const void *kLabels[] = {
        &&L_ADD, &&L_SUB, &&L_AND, &&L_OR, &&L_XOR, &&L_NOR,
        &&L_SLL, &&L_SRL, &&L_SRA, &&L_SLLV, &&L_SRLV, &&L_SRAV,
        &&L_SLT, &&L_SLTU,
        &&L_MUL, &&L_MULH, &&L_DIV, &&L_DIVU, &&L_REM, &&L_REMU,
        &&L_ADDI, &&L_ANDI, &&L_ORI, &&L_XORI, &&L_SLTI, &&L_SLTIU,
        &&L_LUI,
        &&L_LW, &&L_LH, &&L_LHU, &&L_LB, &&L_LBU,
        &&L_SW, &&L_SH, &&L_SB,
        &&L_BEQ, &&L_BNE, &&L_BLT, &&L_BGE, &&L_BLTU, &&L_BGEU,
        &&L_J, &&L_JAL, &&L_JR, &&L_JALR,
        &&L_NOP, &&L_HALT, &&L_OUT,
        &&L_GOTO, &&L_J_INLINE, &&L_JAL_INLINE,
    };
    static_assert(sizeof(kLabels) / sizeof(kLabels[0]) == kNumKinds);
    labels_ = kLabels;
#endif

    // Loop-top fetch check, after the budget check by construction:
    // every path here either has budget left or exited already.
    if (!prog_.validTextAddr(target)) {
        final_pc = target;
        halted = true;
        goto done;
    }
    {
        const u32 slot =
            lookupOrTranslate((target - Program::kTextBase) >> 2);
        slots = slots_.data();
        ENTER_SLOT(slot);
    }
    DISPATCH();

#if !DMT_FF_COMPUTED_GOTO
dispatch_top:
    switch (up->kind) {
#endif

    OP(ADD) regs[up->rd] = regs[up->rs] + regs[up->rt]; NEXT();
    OP(SUB) regs[up->rd] = regs[up->rs] - regs[up->rt]; NEXT();
    OP(AND) regs[up->rd] = regs[up->rs] & regs[up->rt]; NEXT();
    OP(OR) regs[up->rd] = regs[up->rs] | regs[up->rt]; NEXT();
    OP(XOR) regs[up->rd] = regs[up->rs] ^ regs[up->rt]; NEXT();
    OP(NOR) regs[up->rd] = ~(regs[up->rs] | regs[up->rt]); NEXT();
    OP(SLL) regs[up->rd] = regs[up->rs] << up->imm; NEXT();
    OP(SRL) regs[up->rd] = regs[up->rs] >> up->imm; NEXT();
    OP(SRA)
    regs[up->rd] = static_cast<u32>(
        static_cast<i32>(regs[up->rs]) >> up->imm);
    NEXT();
    OP(SLLV) regs[up->rd] = regs[up->rs] << (regs[up->rt] & 31); NEXT();
    OP(SRLV) regs[up->rd] = regs[up->rs] >> (regs[up->rt] & 31); NEXT();
    OP(SRAV)
    regs[up->rd] = static_cast<u32>(
        static_cast<i32>(regs[up->rs]) >> (regs[up->rt] & 31));
    NEXT();
    OP(SLT)
    regs[up->rd] = static_cast<i32>(regs[up->rs])
                       < static_cast<i32>(regs[up->rt])
                     ? 1 : 0;
    NEXT();
    OP(SLTU) regs[up->rd] = regs[up->rs] < regs[up->rt] ? 1 : 0; NEXT();
    OP(MUL)
    regs[up->rd] = static_cast<u32>(
        static_cast<i64>(static_cast<i32>(regs[up->rs]))
        * static_cast<i64>(static_cast<i32>(regs[up->rt])));
    NEXT();
    OP(MULH)
    regs[up->rd] = static_cast<u32>(
        (static_cast<i64>(static_cast<i32>(regs[up->rs]))
         * static_cast<i64>(static_cast<i32>(regs[up->rt])))
        >> 32);
    NEXT();
    OP(DIV)
    {
        const u32 a = regs[up->rs], b = regs[up->rt];
        regs[up->rd] = b == 0 ? 0xFFFFFFFFu
            : (a == 0x80000000u && b == 0xFFFFFFFFu)
            ? 0x80000000u
            : static_cast<u32>(static_cast<i32>(a)
                               / static_cast<i32>(b));
        NEXT();
    }
    OP(DIVU)
    {
        const u32 b = regs[up->rt];
        regs[up->rd] = b == 0 ? 0xFFFFFFFFu : regs[up->rs] / b;
        NEXT();
    }
    OP(REM)
    {
        const u32 a = regs[up->rs], b = regs[up->rt];
        regs[up->rd] = b == 0 ? a
            : (a == 0x80000000u && b == 0xFFFFFFFFu)
            ? 0
            : static_cast<u32>(static_cast<i32>(a)
                               % static_cast<i32>(b));
        NEXT();
    }
    OP(REMU)
    {
        const u32 b = regs[up->rt];
        regs[up->rd] = b == 0 ? regs[up->rs] : regs[up->rs] % b;
        NEXT();
    }
    OP(ADDI) regs[up->rd] = regs[up->rs] + up->imm; NEXT();
    OP(ANDI) regs[up->rd] = regs[up->rs] & up->imm; NEXT();
    OP(ORI) regs[up->rd] = regs[up->rs] | up->imm; NEXT();
    OP(XORI) regs[up->rd] = regs[up->rs] ^ up->imm; NEXT();
    OP(SLTI)
    regs[up->rd] = static_cast<i32>(regs[up->rs])
                       < static_cast<i32>(up->imm)
                     ? 1 : 0;
    NEXT();
    OP(SLTIU) regs[up->rd] = regs[up->rs] < up->imm ? 1 : 0; NEXT();
    OP(LUI) regs[up->rd] = up->imm; NEXT();

    OP(LW)
    {
        const Addr ea = (regs[up->rs] + up->imm) & ~Addr{3};
        const u8 *p = readPage(mem, ea);
        regs[up->rd] = p ? ld32(p + (ea & kPageMask)) : 0;
        NEXT();
    }
    OP(LH)
    {
        const Addr ea = (regs[up->rs] + up->imm) & ~Addr{1};
        const u8 *p = readPage(mem, ea);
        const u16 v = p ? ld16(p + (ea & kPageMask)) : 0;
        regs[up->rd] =
            static_cast<u32>(static_cast<i32>(static_cast<i16>(v)));
        NEXT();
    }
    OP(LHU)
    {
        const Addr ea = (regs[up->rs] + up->imm) & ~Addr{1};
        const u8 *p = readPage(mem, ea);
        regs[up->rd] = p ? ld16(p + (ea & kPageMask)) : 0;
        NEXT();
    }
    OP(LB)
    {
        const Addr ea = regs[up->rs] + up->imm;
        const u8 *p = readPage(mem, ea);
        const u8 v = p ? p[ea & kPageMask] : 0;
        regs[up->rd] =
            static_cast<u32>(static_cast<i32>(static_cast<i8>(v)));
        NEXT();
    }
    OP(LBU)
    {
        const Addr ea = regs[up->rs] + up->imm;
        const u8 *p = readPage(mem, ea);
        regs[up->rd] = p ? p[ea & kPageMask] : 0;
        NEXT();
    }
    OP(SW)
    {
        const Addr ea = (regs[up->rs] + up->imm) & ~Addr{3};
        st32(writePage(mem, ea) + (ea & kPageMask), regs[up->rt]);
        NEXT();
    }
    OP(SH)
    {
        const Addr ea = (regs[up->rs] + up->imm) & ~Addr{1};
        st16(writePage(mem, ea) + (ea & kPageMask),
             static_cast<u16>(regs[up->rt]));
        NEXT();
    }
    OP(SB)
    {
        const Addr ea = regs[up->rs] + up->imm;
        writePage(mem, ea)[ea & kPageMask] =
            static_cast<u8>(regs[up->rt]);
        NEXT();
    }

    OP(BEQ)
    if (regs[up->rs] == regs[up->rt]) {
        ex = const_cast<Exit *>(&exits[up->rd]);
        TAKE();
    }
    NEXT();
    OP(BNE)
    if (regs[up->rs] != regs[up->rt]) {
        ex = const_cast<Exit *>(&exits[up->rd]);
        TAKE();
    }
    NEXT();
    OP(BLT)
    if (static_cast<i32>(regs[up->rs])
        < static_cast<i32>(regs[up->rt])) {
        ex = const_cast<Exit *>(&exits[up->rd]);
        TAKE();
    }
    NEXT();
    OP(BGE)
    if (static_cast<i32>(regs[up->rs])
        >= static_cast<i32>(regs[up->rt])) {
        ex = const_cast<Exit *>(&exits[up->rd]);
        TAKE();
    }
    NEXT();
    OP(BLTU)
    if (regs[up->rs] < regs[up->rt]) {
        ex = const_cast<Exit *>(&exits[up->rd]);
        TAKE();
    }
    NEXT();
    OP(BGEU)
    if (regs[up->rs] >= regs[up->rt]) {
        ex = const_cast<Exit *>(&exits[up->rd]);
        TAKE();
    }
    NEXT();

    OP(J)
    ex = const_cast<Exit *>(&exits[up->aux]);
    TAKE();
    OP(JAL)
    regs[up->rd] = up->imm;
    ex = const_cast<Exit *>(&exits[up->aux]);
    TAKE();
    OP(JR)
    {
        target = regs[up->rs];
        INDIRECT_TAKE();
    }
    OP(JALR)
    {
        target = regs[up->rs]; // read rs before the aliasing link write
        regs[up->rd] = up->imm;
        INDIRECT_TAKE();
    }

    OP(NOP) NEXT();
    OP(HALT)
    --remaining; // HALT consumes budget, like the interpreter
    halted = true;
    final_pc = up->aux; // aux = the HALT's own pc (pc does not advance)
    goto done;
    OP(OUT)
    state.emitOut(regs[up->rs]);
    NEXT();

    OP_SYNTH_GOTO
    // Budget-free fall-through closing a capped / text-end block.
    ex = const_cast<Exit *>(&exits[up->aux]);
    if (ex->code) {
        ++n_chain_hits;
        ENTER_CHAIN();
    }
    goto chain_miss;

    OP_SYNTH_J_INLINE
    // Direct jump inlined into the superblock (tail duplication):
    // consumes budget like any instruction, aux = target PC.
    NEXT_JUMP();

    OP_SYNTH_JAL_INLINE
    // Inlined call: write the link value, keep decoding sequentially.
    regs[up->rd] = up->imm;
    NEXT_JUMP();

#if !DMT_FF_COMPUTED_GOTO
      default:
        break;
    }
    panic("translated dispatch on unknown kind %u",
          static_cast<unsigned>(up->kind));
#endif

chain_miss:
    ++n_chain_misses;
resolve_exit:
    target = ex->target_pc;
    if (!prog_.validTextAddr(target)) {
        final_pc = target;
        halted = true;
        goto done;
    }
    {
        // Translation below may evict the very block `ex` lives in;
        // re-reach the exit through its slot generation before
        // installing the chain link.
        const u32 src_slot = cur_slot;
        const u32 src_gen = slots_[src_slot].gen;
        const u32 exit_idx = static_cast<u32>(ex - exits);
        const u32 slot =
            lookupOrTranslate((target - Program::kTextBase) >> 2);
        slots = slots_.data();
        if (slots_[src_slot].gen == src_gen) {
            Exit &live_exit = slots_[src_slot].exits[exit_idx];
            live_exit.code = slots_[slot].code.data();
            live_exit.exits = slots_[slot].exits.data();
            live_exit.entry = slots_[slot].code.front().handler;
            live_exit.slot = slot;
        }
        ENTER_SLOT(slot);
    }
    DISPATCH();

done:
    if (bbv_on) {
        bbv->syncHot(bbv_room, bbv_cur_key);
        bbv->flush(bbv_rem - remaining);
    }
    std::memcpy(state.regs.data(), regs, sizeof(u32) * kNumLogRegs);
    state.pc = final_pc;
    if (halted)
        state.halted = true;
    const u64 executed = max_instr - remaining;
    stats_.blocks_executed += n_blocks;
    stats_.chain_hits += n_chain_hits;
    stats_.chain_misses += n_chain_misses;
    stats_.indirect_hits += n_ind_hits;
    stats_.indirect_misses += n_ind_misses;
    stats_.instrs_executed += executed;
    return executed;
}

#undef OP
#undef OP_SYNTH_GOTO
#undef OP_SYNTH_J_INLINE
#undef OP_SYNTH_JAL_INLINE
#undef DISPATCH
#undef DISPATCH_ENTRY
#undef ENTER_SLOT
#undef ENTER_CHAIN
#undef NEXT
#undef NEXT_JUMP
#undef BBV_NOTE
#undef TAKE
#undef INDIRECT_TAKE

} // namespace dmt
