#include "sim/mainmem.hh"

#include <algorithm>
#include <cstring>

#include "casm/program.hh"
#include "common/log.hh"

namespace dmt
{

MainMemory::MainMemory(const MainMemory &other)
{
    *this = other;
}

MainMemory &
MainMemory::operator=(const MainMemory &other)
{
    if (this == &other)
        return *this;
    pages.clear();
    for (const auto &[idx, page] : other.pages)
        pages.emplace(idx, std::make_unique<Page>(*page));
    return *this;
}

void
MainMemory::clear()
{
    pages.clear();
}

void
MainMemory::loadProgram(const Program &prog)
{
    for (size_t i = 0; i < prog.data.size(); ++i)
        write8(Program::kDataBase + static_cast<Addr>(i), prog.data[i]);
}

void
MainMemory::forEachPage(
    const std::function<void(u32, const u8 *)> &fn) const
{
    std::vector<u32> indices;
    indices.reserve(pages.size());
    for (const auto &[idx, page] : pages)
        indices.push_back(idx);
    std::sort(indices.begin(), indices.end());
    for (const u32 idx : indices)
        fn(idx, pages.at(idx)->data());
}

void
MainMemory::setPageRaw(u32 index, const u8 *bytes)
{
    auto &slot = pages[index];
    if (!slot)
        slot = std::make_unique<Page>(kPageSize, 0);
    std::memcpy(slot->data(), bytes, kPageSize);
}

bool
MainMemory::operator==(const MainMemory &other) const
{
    if (pages.size() != other.pages.size())
        return false;
    for (const auto &[idx, page] : pages) {
        const auto it = other.pages.find(idx);
        if (it == other.pages.end())
            return false;
        if (std::memcmp(page->data(), it->second->data(), kPageSize)
            != 0) {
            return false;
        }
    }
    return true;
}

const u8 *
MainMemory::pageData(Addr addr) const
{
    const Page *page = findPage(addr);
    return page ? page->data() : nullptr;
}

u8 *
MainMemory::pageDataWritable(Addr addr)
{
    return touchPage(addr).data();
}

const MainMemory::Page *
MainMemory::findPage(Addr addr) const
{
    auto it = pages.find(addr >> kPageBits);
    return it == pages.end() ? nullptr : it->second.get();
}

MainMemory::Page &
MainMemory::touchPage(Addr addr)
{
    auto &slot = pages[addr >> kPageBits];
    if (!slot)
        slot = std::make_unique<Page>(kPageSize, 0);
    return *slot;
}

u8
MainMemory::read8(Addr addr) const
{
    const Page *page = findPage(addr);
    return page ? (*page)[addr & (kPageSize - 1)] : 0;
}

u16
MainMemory::read16(Addr addr) const
{
    addr &= ~1u;
    return static_cast<u16>(read8(addr) | (read8(addr + 1) << 8));
}

u32
MainMemory::read32(Addr addr) const
{
    addr &= ~3u;
    return read8(addr) | (read8(addr + 1) << 8) | (read8(addr + 2) << 16)
        | (static_cast<u32>(read8(addr + 3)) << 24);
}

void
MainMemory::write8(Addr addr, u8 value)
{
    touchPage(addr)[addr & (kPageSize - 1)] = value;
}

void
MainMemory::write16(Addr addr, u16 value)
{
    addr &= ~1u;
    write8(addr, static_cast<u8>(value));
    write8(addr + 1, static_cast<u8>(value >> 8));
}

void
MainMemory::write32(Addr addr, u32 value)
{
    addr &= ~3u;
    write8(addr, static_cast<u8>(value));
    write8(addr + 1, static_cast<u8>(value >> 8));
    write8(addr + 2, static_cast<u8>(value >> 16));
    write8(addr + 3, static_cast<u8>(value >> 24));
}

u32
MainMemory::read(Addr addr, int bytes, bool sign_extend) const
{
    switch (bytes) {
      case 1: {
          const u8 v = read8(addr);
          return sign_extend ? static_cast<u32>(static_cast<i32>(
                     static_cast<i8>(v)))
                             : v;
      }
      case 2: {
          const u16 v = read16(addr);
          return sign_extend ? static_cast<u32>(static_cast<i32>(
                     static_cast<i16>(v)))
                             : v;
      }
      case 4:
        return read32(addr);
      default:
        panic("bad access size %d", bytes);
    }
}

void
MainMemory::write(Addr addr, int bytes, u32 value)
{
    switch (bytes) {
      case 1:
        write8(addr, static_cast<u8>(value));
        break;
      case 2:
        write16(addr, static_cast<u16>(value));
        break;
      case 4:
        write32(addr, value);
        break;
      default:
        panic("bad access size %d", bytes);
    }
}

} // namespace dmt
