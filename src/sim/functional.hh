/**
 * @file
 * Functional (untimed) execution semantics.  The single source of truth
 * for instruction behaviour: the DMT engine's execute stage calls the
 * same aluCompute()/branchTaken() helpers so that timing simulation and
 * the golden reference can never disagree on semantics.
 */

#ifndef DMT_SIM_FUNCTIONAL_HH
#define DMT_SIM_FUNCTIONAL_HH

#include "isa/inst.hh"
#include "sim/arch_state.hh"
#include "sim/mainmem.hh"

namespace dmt
{

class Program;

/**
 * Compute an ALU result from source values.  For immediate forms the
 * second operand is ignored and inst.imm is used.  Valid only for
 * IntAlu/IntMul/IntDiv class instructions; callers handle loads
 * (memory), JAL/JALR (return address = pc + 4) and branches separately.
 */
u32 aluCompute(const Instruction &inst, u32 rs_val, u32 rt_val);

/** Evaluate a conditional branch. */
bool branchTaken(const Instruction &inst, u32 rs_val, u32 rt_val);

/** Effective memory address (size-aligned) for a load/store. */
Addr memEffectiveAddr(const Instruction &inst, u32 rs_val);

/** Everything a single functional step did (for checking/tracing). */
struct StepResult
{
    Addr pc = 0;
    Instruction inst;
    Addr next_pc = 0;
    bool halted = false;

    int dest = -1;       ///< logical destination (post r0-filter)
    u32 dest_val = 0;

    bool is_load = false;
    bool is_store = false;
    Addr mem_addr = 0;
    int mem_bytes = 0;
    u32 store_val = 0;

    bool emitted_out = false;
    u32 out_val = 0;
};

/**
 * Execute one instruction at state.pc, updating @p state and @p mem.
 * HALT (or a fetch outside the text segment) sets state.halted.
 */
StepResult functionalStep(ArchState &state, MainMemory &mem,
                          const Program &prog);

/**
 * Run the whole program functionally.
 *
 * @param max_steps safety bound; throws SimError when exceeded so
 *        sweep cells with runaway prefixes fail as cells, not as
 *        process exits.
 * @return executed instruction count.
 */
u64 runFunctional(ArchState &state, MainMemory &mem, const Program &prog,
                  u64 max_steps = 500'000'000);

} // namespace dmt

#endif // DMT_SIM_FUNCTIONAL_HH
