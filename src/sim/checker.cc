#include "sim/checker.hh"

#include "casm/program.hh"
#include "common/strutil.hh"
#include "isa/disasm.hh"

namespace dmt
{

GoldenChecker::GoldenChecker(const Program &prog_)
    : prog(prog_)
{
    state.reset(prog);
    mem.loadProgram(prog);
}

GoldenChecker::GoldenChecker(const Program &prog_,
                             const ArchState &state_, const MainMemory &mem_)
    : prog(prog_), state(state_), mem(mem_)
{
}

bool
GoldenChecker::onRetire(const RetireRecord &rec)
{
    if (!ok())
        return false;

    const auto fail = [&](const std::string &what, u64 want, u64 got) {
        error_ = strprintf(
            "golden mismatch at retired #%llu pc=0x%x (%s): %s: "
            "expected 0x%llx, got 0x%llx",
            static_cast<unsigned long long>(verified_), rec.pc,
            disassemble(prog.fetch(rec.pc), rec.pc).c_str(), what.c_str(),
            static_cast<unsigned long long>(want),
            static_cast<unsigned long long>(got));
        return false;
    };

    if (state.halted)
        return fail("retire after golden HALT", 0, rec.pc);
    if (state.pc != rec.pc)
        return fail("control flow (pc)", state.pc, rec.pc);

    const StepResult golden = functionalStep(state, mem, prog);

    if (golden.dest != rec.dest) {
        return fail("destination register",
                    static_cast<u64>(static_cast<i64>(golden.dest)),
                    static_cast<u64>(static_cast<i64>(rec.dest)));
    }
    if (golden.dest >= 0 && golden.dest_val != rec.dest_val)
        return fail("result value", golden.dest_val, rec.dest_val);
    if (golden.is_store != rec.is_store)
        return fail("store-ness", golden.is_store, rec.is_store);
    if (golden.is_store) {
        if (golden.mem_addr != rec.mem_addr)
            return fail("store address", golden.mem_addr, rec.mem_addr);
        if (golden.store_val != rec.store_val)
            return fail("store value", golden.store_val, rec.store_val);
    }
    if (golden.emitted_out != rec.emitted_out)
        return fail("OUT emission", golden.emitted_out, rec.emitted_out);
    if (golden.emitted_out && golden.out_val != rec.out_val)
        return fail("OUT value", golden.out_val, rec.out_val);

    ++verified_;
    return true;
}

} // namespace dmt
