/**
 * @file
 * Flat byte-addressable main memory with sparse page allocation.
 * Little-endian, 32-bit address space.  Accesses are size-aligned by
 * masking low address bits (the ISA has no unaligned accesses; masking
 * keeps speculative wild addresses deterministic and harmless).
 */

#ifndef DMT_SIM_MAINMEM_HH
#define DMT_SIM_MAINMEM_HH

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace dmt
{

class Program;

/** Sparse simulated memory. */
class MainMemory
{
  public:
    static constexpr u32 kPageBits = 16;
    static constexpr u32 kPageSize = 1u << kPageBits;

    MainMemory() = default;

    /** Copyable so the golden checker can fork state. */
    MainMemory(const MainMemory &other);
    MainMemory &operator=(const MainMemory &other);
    MainMemory(MainMemory &&) = default;
    MainMemory &operator=(MainMemory &&) = default;

    /** Zero everything. */
    void clear();

    /** Initialize the data segment from @p prog. */
    void loadProgram(const Program &prog);

    u8 read8(Addr addr) const;
    u16 read16(Addr addr) const;
    u32 read32(Addr addr) const;

    void write8(Addr addr, u8 value);
    void write16(Addr addr, u16 value);
    void write32(Addr addr, u32 value);

    /** Generic read of 1/2/4 bytes with optional sign extension. */
    u32 read(Addr addr, int bytes, bool sign_extend) const;

    /** Generic write of 1/2/4 bytes. */
    void write(Addr addr, int bytes, u32 value);

    /** Number of pages currently allocated (for tests). */
    size_t numPages() const { return pages.size(); }

    /**
     * Raw bytes of the page containing @p addr, or nullptr when the
     * page is absent (absent pages read as zero and must stay
     * unallocated).  The pointer stays valid until the page is freed:
     * pages are heap blocks owned through unique_ptr, so map rehashes
     * don't move them.  Fast-path hook for TranslatedCore's page TLBs.
     */
    const u8 *pageData(Addr addr) const;

    /** Like pageData() but allocating: never nullptr. */
    u8 *pageDataWritable(Addr addr);

    /**
     * Visit every allocated page in ascending page-index order (the
     * deterministic order checkpoints serialize in).  @p fn receives
     * the page index and a pointer to its kPageSize bytes.
     */
    void forEachPage(
        const std::function<void(u32, const u8 *)> &fn) const;

    /** Install a full page's bytes at @p index (checkpoint load). */
    void setPageRaw(u32 index, const u8 *bytes);

    /**
     * Sparse-page-exact equality: same allocated page set with
     * byte-identical contents.  An allocated all-zero page and an
     * absent page compare *unequal* — checkpoints must round-trip the
     * sparse structure itself, not just the values it implies.
     */
    bool operator==(const MainMemory &other) const;

  private:
    using Page = std::vector<u8>;

    const Page *findPage(Addr addr) const;
    Page &touchPage(Addr addr);

    std::unordered_map<u32, std::unique_ptr<Page>> pages;
};

} // namespace dmt

#endif // DMT_SIM_MAINMEM_HH
