/**
 * @file
 * Architectural checkpoints: a snapshot of functional machine state —
 * registers, PC, OUT-stream digest, sparse memory pages — plus the
 * retired-instruction position it corresponds to.  A checkpoint is
 * everything a detailed DmtEngine (or another FunctionalCore) needs to
 * resume mid-stream, so the fast-forward cost of a paper-scale prefix
 * is paid once per workload and shared across every sweep cell, and —
 * through the binary save/load format and DMT_CKPT_DIR — across
 * simulator invocations.
 *
 * The on-disk format is guarded by a magic/version header and a hash
 * of the program image (text, data, entry): a checkpoint taken against
 * a different program version refuses to load rather than silently
 * resuming nonsense state.
 */

#ifndef DMT_SIM_CHECKPOINT_HH
#define DMT_SIM_CHECKPOINT_HH

#include <string>

#include "sim/arch_state.hh"
#include "sim/mainmem.hh"

namespace dmt
{

class FunctionalCore;
class Program;

/** Resumable architectural snapshot at a retired-instruction count. */
struct Checkpoint
{
    ArchState state;
    MainMemory mem;
    /** Instructions retired before this state (the resume position). */
    u64 instr_count = 0;
    /** programHash() of the image this snapshot belongs to. */
    u64 prog_hash = 0;

    /** FNV-1a digest of a program image (text + data + entry). */
    static u64 programHash(const Program &prog);

    /** Snapshot a functional core's current architectural state. */
    static Checkpoint capture(const FunctionalCore &core);

    /**
     * Write the checkpoint to @p path (binary, atomic via temp-file +
     * rename so concurrent sweep workers never observe a torn file).
     * @return false (with a warn()) when the file cannot be written.
     */
    bool save(const std::string &path) const;

    /**
     * Load a checkpoint, validating magic, version and program hash.
     * @return false when the file is missing, torn, of a different
     *         format version, or taken against a different program;
     *         @p err (optional) receives the reason.
     */
    static bool load(const std::string &path, u64 expect_prog_hash,
                     Checkpoint *out, std::string *err = nullptr);
};

} // namespace dmt

#endif // DMT_SIM_CHECKPOINT_HH
