#include "sim/arch_state.hh"

#include "casm/program.hh"

namespace dmt
{

void
ArchState::reset(const Program &prog)
{
    regs.fill(0);
    regs[29] = Program::kStackTop; // $sp
    regs[28] = Program::kDataBase; // $gp
    pc = prog.entry;
    halted = false;
    output.clear();
}

} // namespace dmt
