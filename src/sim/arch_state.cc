#include "sim/arch_state.hh"

#include "casm/program.hh"

namespace dmt
{

void
ArchState::reset(const Program &prog)
{
    regs.fill(0);
    regs[29] = Program::kStackTop; // $sp
    regs[28] = Program::kDataBase; // $gp
    pc = prog.entry;
    halted = false;
    output.clear();
    out_count = 0;
    out_hash = kOutHashInit;
}

} // namespace dmt
