/**
 * @file
 * Superblock-translated fast-forward engine: a portable threaded-code
 * execution core in the style of Valgrind's per-block translate →
 * cache → chain pipeline.
 *
 * The batched functional interpreter (FunctionalCore) still pays a
 * per-instruction decode-and-dispatch tax: a class switch, an
 * out-of-line aluCompute() call with its own opcode switch, and a
 * hash-map page walk per memory access.  TranslatedCore amortizes all
 * of that once per *block*: superblocks are discovered at runtime by
 * straight-line decode from the entry PC across direct jumps and calls
 * (J/JAL are inlined with tail duplication) to the first indirect or
 * otherwise unresolvable transfer (or a length cap), translated into a
 * dense array of
 * pre-resolved micro-op records — operands folded to register indices
 * and immediates, shift amounts pre-masked, LUI/link values
 * pre-computed, memory ops pre-classified into per-width handlers —
 * and executed by a computed-goto dispatch loop (a switch fallback
 * keeps non-GNU compilers working; see DMT_FF_SWITCH_DISPATCH).
 *
 * Translations live in a cache keyed by block start PC and bounded by
 * DMT_FF_CACHE (LRU eviction by entry epoch; evicting a block bumps
 * its slot generation, which lazily invalidates every chain link into
 * it).  Direct block→block successors — jump targets, taken-branch
 * side exits, fall-throughs — are chained on first use so hot loops
 * run block to block with zero per-instruction dispatch overhead;
 * indirect transfers (JR/JALR) resolve through a flat PC-indexed
 * block table — one bounds check and one load, monomorphic or
 * megamorphic alike.
 *
 * Determinism contract: execution is bit-for-bit identical to stepping
 * functionalStep() the same distance — registers, sparse-page memory
 * (absent pages are never allocated by loads), OUT stream, PC, halt
 * flag and executed-instruction count, including exact mid-block stops
 * when an instruction budget runs out (the dispatch loop retires the
 * budget per instruction, so a run() can stop anywhere a checkpoint
 * needs it).  tests/test_translated.cc enforces this differentially
 * across the conformance scenario matrix.
 */

#ifndef DMT_SIM_TRANSLATED_CORE_HH
#define DMT_SIM_TRANSLATED_CORE_HH

#include <string_view>
#include <vector>

#include "casm/program.hh"
#include "sim/arch_state.hh"
#include "sim/mainmem.hh"

namespace dmt
{

class BbvCollector;

/** Fast-forward execution engine selection (DMT_FF_MODE). */
enum class FfMode : u8
{
    Interp,     ///< batched pre-decoded interpreter (PR 5)
    Translated, ///< superblock-translated threaded code (default)
};

/** Strict mode parse; @return false on an unknown mode name. */
bool parseFfMode(std::string_view s, FfMode *out);

/** Canonical name of a mode ("interp" / "translated"). */
const char *ffModeName(FfMode mode);

/**
 * DMT_FF_MODE: fast-forward engine for every FunctionalCore consumer
 * (checkpoint generation, sampled runs, conformance, serve daemon).
 * Unset defaults to Translated; an unknown mode is a fatal() user
 * error, never a silent fallback.
 */
FfMode ffModeFromEnv();

/** DMT_FF_CACHE: translation-cache bound in blocks (default 8192). */
u32 ffCacheBlocksFromEnv();

/** Translation-cache and dispatch telemetry. */
struct TranslationStats
{
    u64 blocks_translated = 0; ///< translate() calls (incl. retranslations)
    u64 retranslations = 0;    ///< translations of a previously evicted PC
    u64 evictions = 0;
    u64 chain_hits = 0;     ///< direct-exit transfers through a live link
    u64 chain_misses = 0;   ///< direct-exit transfers needing a lookup
    u64 indirect_hits = 0;   ///< JR/JALR flat-table dispatches
    u64 indirect_misses = 0; ///< JR/JALR targets not yet translated
    u64 blocks_executed = 0;
    u64 instrs_executed = 0;

    TranslationStats &operator+=(const TranslationStats &o);
    TranslationStats operator-(const TranslationStats &o) const;
};

/**
 * Translate-and-execute engine over one immutable Program.  Holds no
 * architectural state of its own: run() advances the caller's
 * ArchState/MainMemory, so checkpoint restore and reset need no
 * translator involvement and cached blocks survive both.
 */
class TranslatedCore
{
  public:
    /** Default translation-cache bound (blocks). */
    static constexpr u32 kDefaultCacheBlocks = 8192;
    /** Superblock length cap (instructions) before a fall-through
     *  transfer closes the block. */
    static constexpr u32 kMaxBlockLen = 256;

    /** Bind to @p prog (kept by reference — must outlive the core). */
    explicit TranslatedCore(const Program &prog,
                            u32 max_blocks = kDefaultCacheBlocks);

    /**
     * Execute up to @p max_instr instructions from state.pc, exactly
     * like stepping functionalStep(); stops early at HALT or when the
     * PC leaves the text segment.
     *
     * With @p bbv attached, every taken control transfer — block-exit
     * jumps and branches plus the J/JAL ops inlined into superblocks —
     * reports (target, instructions since the previous boundary) to
     * the collector, and the trailing run is flushed on exit; see
     * sim/bbv.hh for the cross-engine contract.  Collection is a
     * per-transfer delta off the existing budget counter, so the
     * per-instruction dispatch path is untouched.
     *
     * @return instructions actually executed.
     */
    u64 run(ArchState &state, MainMemory &mem, u64 max_instr,
            BbvCollector *bbv = nullptr);

    const TranslationStats &stats() const { return stats_; }

    /** Blocks currently cached (bounded by the cache limit). */
    size_t cachedBlocks() const { return live_blocks_; }

    /** Drop every translation (invalidation hook; chains die with the
     *  generation bump, re-execution retranslates on demand). */
    void invalidateAll();

  private:
    /** One pre-resolved execution record (see translated_core.cc). */
    struct MicroOp
    {
        u32 imm;  ///< folded immediate / shift amount / link value
        u32 aux;  ///< next PC for sequential ops; exit index / own PC
                  ///< for block-ending control ops (see translate())
        /** Handler label for computed-goto dispatch, resolved at
         *  translation time so dispatch is a single dependent load
         *  before the indirect jump (null under switch dispatch,
         *  which switches on kind instead). */
        const void *handler;
        u8 kind;  ///< Opcode value, or a synthetic kind (GOTO, inlined
                  ///< J/JAL) past kNumOpcodes
        u8 rd;    ///< destination slot (kNumLogRegs = r0 write dump);
                  ///< taken-exit index for conditional branches
        u8 rs;
        u8 rt;
    };

    /** One control-flow edge out of a block.  A chained transfer jumps
     *  straight through pre-resolved pointers into the target block
     *  (code == nullptr means unchained); eviction severs every link
     *  into the victim by walking live exits, so the hot path carries
     *  no generation check.  Pointers into a Block's vectors stay
     *  valid across slots_ growth because vector moves keep the heap
     *  buffers, and translated blocks are never resized in place. */
    struct alignas(32) Exit
    {
        const MicroOp *code = nullptr; ///< chained target block entry
        const Exit *exits = nullptr;   ///< chained target exit table
        /** Chained target's first handler label, duplicated out of
         *  code[0] so a taken transfer resolves its indirect jump
         *  after ONE load from this (already hot) Exit instead of the
         *  dependent pair code → code->handler; that shaves a load
         *  latency off every host-mispredicted transfer, which is
         *  where branch-heavy guests spend their time. */
        const void *entry = nullptr;
        Addr target_pc = 0; ///< folded target
        u32 slot = ~u32{0}; ///< chained target slot
    }; // exactly 32 bytes, aligned: a taken transfer touches one line

    struct Block
    {
        Addr start_pc = 0;
        u32 gen = 0;    ///< bumped on eviction: guards in-flight exit
                        ///< pointers across translate() in run()
        bool live = false;
        u64 last_used = 0;
        std::vector<MicroOp> code;
        std::vector<Exit> exits;
    };

    static constexpr u32 kNoBlock = ~u32{0};
    static constexpr u32 kNoPage = ~u32{0};
    static constexpr u32 kTlbEntries = 16;
    static constexpr Addr kPageMask = MainMemory::kPageSize - 1;

    u32 lookupOrTranslate(u32 start_idx);
    u32 translate(u32 start_idx);
    void evictOne();
    u32 addExit(Block *b, Addr target);

    const u8 *readPage(const MainMemory &mem, Addr ea);
    u8 *writePage(MainMemory &mem, Addr ea);

    const Program &prog_;
    u32 max_blocks_;
    /** Handler label table exported by run() before the first
     *  translation (computed labels are function-scope); null under
     *  switch dispatch. */
    const void *const *labels_ = nullptr;
    std::vector<Block> slots_;
    std::vector<u32> free_slots_;
    u32 live_blocks_ = 0;
    u64 use_clock_ = 0;
    /** Pre-resolved entry pointers for one translated block, ready to
     *  load straight into the dispatch cursors. */
    struct alignas(32) TargetRef
    {
        const MicroOp *code = nullptr; ///< null: not translated
        const Exit *exits = nullptr;
        const void *entry = nullptr; ///< code[0]'s handler (see Exit)
        u32 slot = ~u32{0};
    }; // 32 bytes: an indirect dispatch loads exactly one line

    /** Block start index (PC-derived) → entry pointers, code == null
     *  when absent.  A flat text-sized table rather than a hash map:
     *  lookups sit on the indirect-jump miss path (where they make a
     *  predictor miss almost as cheap as a hit), and text segments are
     *  small.  The program image is immutable for the life of the
     *  core, so start-PC keying is content keying; invalidateAll() is
     *  the hook for anything that would break that assumption. */
    std::vector<TargetRef> idx2block_;
    std::vector<u8> ever_translated_;
    TranslationStats stats_;

    /** Direct-mapped page-pointer caches, rebuilt per run() so a
     *  checkpoint restore() can swap the memory image freely. */
    struct TlbR { u32 page = kNoPage; const u8 *base = nullptr; };
    struct TlbW { u32 page = kNoPage; u8 *base = nullptr; };
    TlbR rtlb_[kTlbEntries];
    TlbW wtlb_[kTlbEntries];
};

} // namespace dmt

#endif // DMT_SIM_TRANSLATED_CORE_HH
