#include "sim/functional.hh"

#include "casm/program.hh"
#include "common/log.hh"

namespace dmt
{

u32
aluCompute(const Instruction &inst, u32 rs_val, u32 rt_val)
{
    const u32 a = rs_val;
    const u32 b = rt_val;
    const i32 sa = static_cast<i32>(a);
    const i32 sb = static_cast<i32>(b);
    const u32 imm = static_cast<u32>(inst.imm);
    const i32 simm = inst.imm;

    switch (inst.op) {
      case Opcode::ADD: return a + b;
      case Opcode::SUB: return a - b;
      case Opcode::AND: return a & b;
      case Opcode::OR: return a | b;
      case Opcode::XOR: return a ^ b;
      case Opcode::NOR: return ~(a | b);
      case Opcode::SLL: return a << (imm & 31);
      case Opcode::SRL: return a >> (imm & 31);
      case Opcode::SRA: return static_cast<u32>(sa >> (imm & 31));
      case Opcode::SLLV: return a << (b & 31);
      case Opcode::SRLV: return a >> (b & 31);
      case Opcode::SRAV: return static_cast<u32>(sa >> (b & 31));
      case Opcode::SLT: return sa < sb ? 1 : 0;
      case Opcode::SLTU: return a < b ? 1 : 0;
      case Opcode::MUL:
        return static_cast<u32>(static_cast<i64>(sa)
                                * static_cast<i64>(sb));
      case Opcode::MULH:
        return static_cast<u32>((static_cast<i64>(sa)
                                 * static_cast<i64>(sb)) >> 32);
      case Opcode::DIV:
        if (b == 0)
            return 0xFFFFFFFFu;
        if (a == 0x80000000u && b == 0xFFFFFFFFu)
            return 0x80000000u;
        return static_cast<u32>(sa / sb);
      case Opcode::DIVU:
        return b == 0 ? 0xFFFFFFFFu : a / b;
      case Opcode::REM:
        if (b == 0)
            return a;
        if (a == 0x80000000u && b == 0xFFFFFFFFu)
            return 0;
        return static_cast<u32>(sa % sb);
      case Opcode::REMU:
        return b == 0 ? a : a % b;
      case Opcode::ADDI: return a + imm;
      case Opcode::ANDI: return a & imm;
      case Opcode::ORI: return a | imm;
      case Opcode::XORI: return a ^ imm;
      case Opcode::SLTI: return sa < simm ? 1 : 0;
      case Opcode::SLTIU: return a < imm ? 1 : 0;
      case Opcode::LUI: return imm << 16;
      default:
        panic("aluCompute on non-ALU opcode %s", mnemonic(inst.op));
    }
}

bool
branchTaken(const Instruction &inst, u32 rs_val, u32 rt_val)
{
    const i32 sa = static_cast<i32>(rs_val);
    const i32 sb = static_cast<i32>(rt_val);
    switch (inst.op) {
      case Opcode::BEQ: return rs_val == rt_val;
      case Opcode::BNE: return rs_val != rt_val;
      case Opcode::BLT: return sa < sb;
      case Opcode::BGE: return sa >= sb;
      case Opcode::BLTU: return rs_val < rt_val;
      case Opcode::BGEU: return rs_val >= rt_val;
      default:
        panic("branchTaken on non-branch opcode %s", mnemonic(inst.op));
    }
}

Addr
memEffectiveAddr(const Instruction &inst, u32 rs_val)
{
    const Addr raw = rs_val + static_cast<u32>(inst.imm);
    return raw & ~static_cast<Addr>(inst.memBytes() - 1);
}

StepResult
functionalStep(ArchState &state, MainMemory &mem, const Program &prog)
{
    StepResult r;
    r.pc = state.pc;

    if (!prog.validTextAddr(state.pc)) {
        r.inst = makeHalt();
        r.halted = true;
        state.halted = true;
        r.next_pc = state.pc;
        return r;
    }

    const Instruction &inst = prog.fetch(state.pc);
    r.inst = inst;
    Addr next_pc = state.pc + 4;

    const u32 rs_val = state.reg(inst.rs);
    const u32 rt_val = state.reg(inst.rt);

    switch (opInfo(inst.op).opClass) {
      case OpClass::IntAlu:
      case OpClass::IntMul:
      case OpClass::IntDiv: {
          const u32 v = aluCompute(inst, rs_val, rt_val);
          state.setReg(inst.rd, v);
          if (inst.effectiveDest() >= 0) {
              r.dest = inst.effectiveDest();
              r.dest_val = v;
          }
          break;
      }
      case OpClass::MemRead: {
          r.is_load = true;
          r.mem_addr = memEffectiveAddr(inst, rs_val);
          r.mem_bytes = inst.memBytes();
          const u32 v = mem.read(r.mem_addr, r.mem_bytes,
                                 inst.memSigned());
          state.setReg(inst.rd, v);
          if (inst.effectiveDest() >= 0) {
              r.dest = inst.effectiveDest();
              r.dest_val = v;
          }
          break;
      }
      case OpClass::MemWrite: {
          r.is_store = true;
          r.mem_addr = memEffectiveAddr(inst, rs_val);
          r.mem_bytes = inst.memBytes();
          r.store_val = rt_val;
          mem.write(r.mem_addr, r.mem_bytes, rt_val);
          break;
      }
      case OpClass::Control: {
          switch (inst.op) {
            case Opcode::J:
              next_pc = inst.jumpTarget();
              break;
            case Opcode::JAL:
              state.setReg(inst.rd, state.pc + 4);
              r.dest = inst.effectiveDest();
              r.dest_val = state.pc + 4;
              next_pc = inst.jumpTarget();
              break;
            case Opcode::JR:
              next_pc = rs_val;
              break;
            case Opcode::JALR:
              // Read rs before the (possibly aliasing) link write.
              next_pc = rs_val;
              state.setReg(inst.rd, state.pc + 4);
              if (inst.effectiveDest() >= 0) {
                  r.dest = inst.effectiveDest();
                  r.dest_val = state.pc + 4;
              }
              break;
            default:
              if (branchTaken(inst, rs_val, rt_val))
                  next_pc = inst.branchTarget(state.pc);
              break;
          }
          break;
      }
      case OpClass::Other:
        if (inst.op == Opcode::HALT) {
            r.halted = true;
            state.halted = true;
            next_pc = state.pc;
        } else if (inst.op == Opcode::OUT) {
            r.emitted_out = true;
            r.out_val = rs_val;
            state.emitOut(rs_val);
        }
        break;
    }

    r.next_pc = next_pc;
    state.pc = next_pc;
    return r;
}

u64
runFunctional(ArchState &state, MainMemory &mem, const Program &prog,
              u64 max_steps)
{
    u64 steps = 0;
    while (!state.halted) {
        functionalStep(state, mem, prog);
        if (++steps >= max_steps) {
            // Throwing (not exiting) lets sweeps treat a runaway
            // functional prefix as one failed cell, like any other
            // contained SimError.
            panic("functional run exceeded %llu steps",
                  static_cast<unsigned long long>(max_steps));
        }
    }
    return steps;
}

} // namespace dmt
