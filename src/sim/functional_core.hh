/**
 * @file
 * Batched functional (untimed) core for checkpointed fast-forward.
 *
 * functionalStep() is built for lock-step golden checking: it
 * materializes a full StepResult and re-derives the opcode class and
 * memory-access shape of every instruction on every step.  Skipping a
 * multi-hundred-million-instruction prefix needs none of that, so
 * FunctionalCore pre-decodes the whole text segment once into a flat
 * side table (opcode class, access size, sign-extension, effective
 * destination) and executes in batches with no per-step result object.
 * Semantics stay anchored to the shared aluCompute()/branchTaken()
 * helpers — the same single source of truth the timing engine and the
 * golden checker use — so a fast-forwarded architectural state is
 * bit-identical to stepping functionalStep() the same distance.
 */

#ifndef DMT_SIM_FUNCTIONAL_CORE_HH
#define DMT_SIM_FUNCTIONAL_CORE_HH

#include <vector>

#include "casm/program.hh"
#include "sim/arch_state.hh"
#include "sim/mainmem.hh"

namespace dmt
{

/** Batched functional interpreter over a pre-decoded program. */
class FunctionalCore
{
  public:
    /**
     * Bind to @p prog (kept by reference — it must outlive the core)
     * and reset to its initial conditions.  Fast-forward runs stream
     * OUT values (running hash + count) by default so architectural
     * state stays bounded; pass @p stream_output = false when a caller
     * needs the exact OUT vector (e.g. equivalence tests).
     */
    explicit FunctionalCore(const Program &prog,
                            bool stream_output = true);

    /** Re-initialize to the program's entry conditions. */
    void reset();

    /**
     * Execute up to @p max_instr instructions; stops early at HALT.
     * @return instructions actually executed in this call.
     */
    u64 run(u64 max_instr);

    /** Total instructions executed since reset() (checkpoint index). */
    u64 instrCount() const { return instr_count_; }

    bool halted() const { return state_.halted; }

    const ArchState &state() const { return state_; }
    const MainMemory &memory() const { return mem_; }
    const Program &program() const { return prog_; }

    /** Overwrite the architectural state (checkpoint resume). */
    void restore(const ArchState &state, const MainMemory &mem,
                 u64 instr_count);

  private:
    /** Pre-decoded per-instruction execution recipe. */
    struct DecodedOp
    {
        OpClass cls;
        u8 mem_bytes;     ///< 1/2/4 for loads+stores, 0 otherwise
        bool mem_signed;  ///< sign-extending load
        bool has_dest;    ///< writes rd
    };

    const Program &prog_;
    std::vector<DecodedOp> decoded_;
    ArchState state_;
    MainMemory mem_;
    u64 instr_count_ = 0;
};

} // namespace dmt

#endif // DMT_SIM_FUNCTIONAL_CORE_HH
