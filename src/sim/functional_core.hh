/**
 * @file
 * Batched functional (untimed) core for checkpointed fast-forward.
 *
 * functionalStep() is built for lock-step golden checking: it
 * materializes a full StepResult and re-derives the opcode class and
 * memory-access shape of every instruction on every step.  Skipping a
 * multi-hundred-million-instruction prefix needs none of that, so
 * FunctionalCore pre-decodes the whole text segment once into a flat
 * side table (opcode class, access size, sign-extension, effective
 * destination) and executes in batches with no per-step result object.
 * Semantics stay anchored to the shared aluCompute()/branchTaken()
 * helpers — the same single source of truth the timing engine and the
 * golden checker use — so a fast-forwarded architectural state is
 * bit-identical to stepping functionalStep() the same distance.
 *
 * Since PR 9 the batched interpreter is only one of two engines behind
 * run(): DMT_FF_MODE selects between it ("interp") and the
 * superblock-translated threaded-code core ("translated", the default;
 * see sim/translated_core.hh).  Both produce bit-identical
 * architectural state, so every consumer of this API — checkpoint
 * generation, sampled runs, the serve daemon — picks up the fast
 * engine with no code changes.
 */

#ifndef DMT_SIM_FUNCTIONAL_CORE_HH
#define DMT_SIM_FUNCTIONAL_CORE_HH

#include <memory>
#include <vector>

#include "casm/program.hh"
#include "sim/arch_state.hh"
#include "sim/mainmem.hh"
#include "sim/translated_core.hh"

namespace dmt
{

class BbvCollector;

/** Batched functional interpreter over a pre-decoded program. */
class FunctionalCore
{
  public:
    /**
     * Bind to @p prog (kept by reference — it must outlive the core)
     * and reset to its initial conditions.  Fast-forward runs stream
     * OUT values (running hash + count) by default so architectural
     * state stays bounded; pass @p stream_output = false when a caller
     * needs the exact OUT vector (e.g. equivalence tests).
     */
    explicit FunctionalCore(const Program &prog,
                            bool stream_output = true);

    /** Re-initialize to the program's entry conditions. */
    void reset();

    /**
     * Execute up to @p max_instr instructions; stops early at HALT.
     * @return instructions actually executed in this call.
     */
    u64 run(u64 max_instr);

    /** Total instructions executed since reset() (checkpoint index). */
    u64 instrCount() const { return instr_count_; }

    bool halted() const { return state_.halted; }

    const ArchState &state() const { return state_; }
    const MainMemory &memory() const { return mem_; }
    const Program &program() const { return prog_; }

    /** Overwrite the architectural state (checkpoint resume). */
    void restore(const ArchState &state, const MainMemory &mem,
                 u64 instr_count);

    /** Fast-forward engine in use (DMT_FF_MODE at construction). */
    FfMode mode() const { return mode_; }

    /** Switch engines; cached translations are kept across switches
     *  (they hold no architectural state). */
    void setMode(FfMode mode) { mode_ = mode; }

    /** Rebind the translation-cache bound (drops cached blocks). */
    void setCacheBound(u32 max_blocks);

    /**
     * Attach (or detach, with nullptr) a BBV collector: subsequent
     * run() calls report every taken control transfer to it under the
     * engine-independent contract in sim/bbv.hh.  The collector is not
     * owned and must outlive the attachment; collection state spans
     * run() calls, so interval vectors are invariant to chunking.
     */
    void setBbv(BbvCollector *bbv) { bbv_ = bbv; }

    /** Translation telemetry (zeros while no translated run happened). */
    TranslationStats translationStats() const;

  private:
    /** Pre-decoded per-instruction execution recipe. */
    struct DecodedOp
    {
        OpClass cls;
        u8 mem_bytes;     ///< 1/2/4 for loads+stores, 0 otherwise
        bool mem_signed;  ///< sign-extending load
        bool has_dest;    ///< writes rd
    };

    u64 runInterp(u64 max_instr);
    template <bool kBbv> u64 runInterpImpl(u64 max_instr);

    const Program &prog_;
    std::vector<DecodedOp> decoded_;
    ArchState state_;
    MainMemory mem_;
    u64 instr_count_ = 0;
    FfMode mode_;
    u32 cache_blocks_;
    BbvCollector *bbv_ = nullptr;
    /** Lazily built on the first translated-mode run(). */
    std::unique_ptr<TranslatedCore> translated_;
};

} // namespace dmt

#endif // DMT_SIM_FUNCTIONAL_CORE_HH
