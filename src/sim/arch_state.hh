/**
 * @file
 * Architectural register state shared by the functional simulator and
 * the golden checker.
 */

#ifndef DMT_SIM_ARCH_STATE_HH
#define DMT_SIM_ARCH_STATE_HH

#include <array>
#include <vector>

#include "common/types.hh"

namespace dmt
{

class Program;

/** Architected machine state: registers, PC, halt flag, output stream. */
struct ArchState
{
    std::array<u32, kNumLogRegs> regs{};
    Addr pc = 0;
    bool halted = false;
    /** Values emitted by the OUT instruction, in program order. */
    std::vector<u32> output;

    /** Reset to the program's initial conditions (entry PC, stack). */
    void reset(const Program &prog);

    u32
    reg(LogReg r) const
    {
        return r == 0 ? 0 : regs[r];
    }

    void
    setReg(LogReg r, u32 v)
    {
        if (r != 0)
            regs[r] = v;
    }
};

} // namespace dmt

#endif // DMT_SIM_ARCH_STATE_HH
