/**
 * @file
 * Architectural register state shared by the functional simulator and
 * the golden checker.
 */

#ifndef DMT_SIM_ARCH_STATE_HH
#define DMT_SIM_ARCH_STATE_HH

#include <array>
#include <vector>

#include "common/types.hh"

namespace dmt
{

class Program;

/** Architected machine state: registers, PC, halt flag, output stream. */
struct ArchState
{
    /** FNV-1a offset basis: initial value of out_hash. */
    static constexpr u64 kOutHashInit = 0xcbf29ce484222325ull;

    std::array<u32, kNumLogRegs> regs{};
    Addr pc = 0;
    bool halted = false;
    /** Values emitted by the OUT instruction, in program order.  Kept
     *  exact only while !stream_output (checker runs); a multi-million
     *  instruction fast-forward uses streaming mode so the vector
     *  cannot balloon memory. */
    std::vector<u32> output;
    /** When set, OUT values update only the running hash and count
     *  below; the exact vector stays empty. */
    bool stream_output = false;
    /** OUT values emitted so far (maintained in both modes). */
    u64 out_count = 0;
    /** FNV-1a hash over the OUT stream (maintained in both modes). */
    u64 out_hash = kOutHashInit;

    /** Reset to the program's initial conditions (entry PC, stack). */
    void reset(const Program &prog);

    /** Record an OUT emission under the current output mode. */
    void
    emitOut(u32 v)
    {
        if (!stream_output)
            output.push_back(v);
        ++out_count;
        out_hash = (out_hash ^ v) * 0x100000001b3ull;
    }

    u32
    reg(LogReg r) const
    {
        return r == 0 ? 0 : regs[r];
    }

    void
    setReg(LogReg r, u32 v)
    {
        if (r != 0)
            regs[r] = v;
    }
};

} // namespace dmt

#endif // DMT_SIM_ARCH_STATE_HH
