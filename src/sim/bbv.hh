/**
 * @file
 * Basic-block-vector collection during functional fast-forward.
 *
 * Phase analysis (exp/phase.hh) needs, for every fixed-length interval
 * of the dynamic instruction stream, a sparse vector of "how many
 * instructions executed in each basic block".  Both fast-forward
 * engines feed the same collector under one exact contract so the
 * vectors are bit-identical across DMT_FF_MODE settings:
 *
 *   - A *region* is a maximal run of dynamically executed instructions
 *     between taken control transfers (J, JAL, JR, JALR, and taken
 *     conditional branches — including direct jumps the translated
 *     engine inlined into a superblock).  Not-taken branches and the
 *     translated engine's synthetic block-cap fall-throughs do not end
 *     a region.
 *   - Every executed instruction is attributed to the region it runs
 *     in, keyed by the region's start PC (the target of the most
 *     recent taken transfer; program entry starts the first region).
 *     The transfer instruction itself belongs to the region it ends.
 *   - The stream is sliced into fixed-length intervals by absolute
 *     instruction position; a region straddling a boundary is split by
 *     position.
 *
 * The result is a pure function of the architectural instruction
 * stream: independent of the engine, of how run() calls are chunked,
 * of checkpoint-cache state and of DMT_JOBS.  The engines report only
 * at region boundaries (one call per taken transfer, carrying the
 * instruction count since the previous boundary), so the interpreter
 * pays one counter bump per transfer and the translated engine keeps
 * its per-instruction dispatch loop untouched; with no collector
 * attached both engines pay a single predictable branch per transfer.
 */

#ifndef DMT_SIM_BBV_HH
#define DMT_SIM_BBV_HH

#include <algorithm>
#include <utility>
#include <vector>

#include "casm/program.hh"

namespace dmt
{

/** One interval's sparse basic-block vector: (block index, executed
 *  instructions) pairs sorted by block index, plus the interval's
 *  instruction total (== interval length except for the final partial
 *  interval of a run). */
struct IntervalBbv
{
    std::vector<std::pair<u32, u64>> counts;
    u64 instrs = 0;

    bool operator==(const IntervalBbv &o) const
    {
        return instrs == o.instrs && counts == o.counts;
    }
};

/** Accumulates region-granular execution counts into per-interval
 *  sparse vectors.  See the file comment for the exact contract. */
class BbvCollector
{
  public:
    /**
     * @param interval_len instructions per interval (must be > 0)
     * @param text_size    program text length in instructions; region
     *                     keys are text indices, with one extra bucket
     *                     for off-text transfer targets
     * @param entry_pc     start PC of the first region
     */
    BbvCollector(u64 interval_len, size_t text_size, Addr entry_pc)
        : interval_len_(interval_len), text_size_(text_size),
          counts_(text_size + 1, 0), next_boundary_(interval_len)
    {
        cur_key_ = keyFor(entry_pc);
    }

    /** Current absolute stream position (instructions accounted). */
    u64 position() const { return pos_; }

    /** The one PC→region-key mapping, shared with producers that
     *  precompute keys (transferKey / the hot path): the text index of the
     *  target, or the sentinel bucket (== text_size) for off-text or
     *  misaligned targets (the engine halts at the next fetch). */
    static u32 keyForPc(Addr pc, u32 text_size)
    {
        const Addr off = pc - Program::kTextBase;
        const u32 idx = static_cast<u32>(off >> 2);
        return (off % 4 == 0 && idx < text_size)
            ? idx
            : text_size;
    }

    /**
     * Hot path: @p n instructions executed since the previous event,
     * all in the current region, which ends now with a taken transfer
     * to @p target_pc (the transfer instruction is the last of the
     * @p n).
     */
    void transfer(Addr target_pc, u64 n)
    {
        transferKey(keyFor(target_pc), n);
    }

    /** transfer() with the region key already computed (must come
     *  from keyForPc with this collector's text size). */
    void transferKey(u32 key, u64 n)
    {
        account(n);
        cur_key_ = key;
    }

    /** End-of-run flush: @p n trailing instructions stay in the
     *  current region, which remains open (budget stop / HALT). */
    void flush(u64 n) { account(n); }

    /**
     * Hot-path state export for an engine that inlines transfer()'s
     * fast path straight into its dispatch loop, on raw locals with no
     * member aliasing.  The engine snapshots hotCounts() (stable — the
     * histogram never reallocates), hotRoom() (instructions left in
     * the open interval) and currentKey(), then per taken transfer to
     * key `k` with region delta `n` runs
     *
     *     if (k != cur_key) {
     *         if (n < room && counts[cur_key] != 0) {
     *             counts[cur_key] += n;   // region ends inside the
     *             room -= n;              // open interval, block
     *         } else {                    // already touched
     *             syncHot(room, cur_key); // write back, then the
     *             transferKey(k, n);      // exact slow path
     *             room = hotRoom();
     *         }
     *         cur_key = k;
     *     }
     *
     * and calls syncHot() before any other collector method.  The
     * same-key skip is exact: contiguous same-key regions add the same
     * histogram contributions merged or not, and a merged delta splits
     * at the identical interval boundary.  The guarded bump is
     * account()'s single-iteration body with the interval-close and
     * first-touch branches hoisted into its condition.
     */
    u64 *hotCounts() { return counts_.data(); }

    /** Instructions the open interval still accepts (always >= 1). */
    u64 hotRoom() const { return next_boundary_ - pos_; }

    /** Key of the open region (the last taken transfer's target). */
    u32 currentKey() const { return cur_key_; }

    /** Write back an engine's hot-path cursor (see hotCounts()). */
    void syncHot(u64 room, u32 cur_key)
    {
        pos_ = next_boundary_ - room;
        cur_key_ = cur_key;
    }

    /** Close the trailing partial interval (if it holds any
     *  instructions).  Call once, after the final flush(). */
    void finish()
    {
        if (pos_ > next_boundary_ - interval_len_)
            closeInterval();
    }

    const std::vector<IntervalBbv> &intervals() const
    {
        return intervals_;
    }

    std::vector<IntervalBbv> takeIntervals()
    {
        return std::move(intervals_);
    }

  private:
    u32 keyFor(Addr pc) const
    {
        return keyForPc(pc, static_cast<u32>(text_size_));
    }

    void bump(u32 key, u64 n)
    {
        if (counts_[key] == 0)
            touched_.push_back(key);
        counts_[key] += n;
    }

    void account(u64 n)
    {
        while (n > 0) {
            const u64 room = next_boundary_ - pos_;
            const u64 take = n < room ? n : room;
            bump(cur_key_, take);
            pos_ += take;
            n -= take;
            if (pos_ == next_boundary_) {
                closeInterval();
                next_boundary_ += interval_len_;
            }
        }
    }

    void closeInterval()
    {
        IntervalBbv iv;
        std::sort(touched_.begin(), touched_.end());
        iv.counts.reserve(touched_.size());
        for (const u32 key : touched_) {
            iv.counts.emplace_back(key, counts_[key]);
            iv.instrs += counts_[key];
            counts_[key] = 0;
        }
        touched_.clear();
        intervals_.push_back(std::move(iv));
    }

    u64 interval_len_;
    size_t text_size_;
    u32 cur_key_ = 0;
    u64 pos_ = 0;
    /** Dense per-block counters for the open interval (text segments
     *  are small) plus the first-touch list that makes closing an
     *  interval O(blocks touched), not O(text). */
    std::vector<u64> counts_;
    std::vector<u32> touched_;
    u64 next_boundary_;
    std::vector<IntervalBbv> intervals_;
};

} // namespace dmt

#endif // DMT_SIM_BBV_HH
