#include "sim/checkpoint.hh"

#include <cstdio>
#include <cstring>
#include <vector>

#include "casm/program.hh"
#include "common/log.hh"
#include "sim/functional_core.hh"

namespace dmt
{

namespace
{

constexpr char kMagic[8] = {'D', 'M', 'T', 'C', 'K', 'P', 'T', '1'};

void
putU32(std::vector<u8> *buf, u32 v)
{
    for (int i = 0; i < 4; ++i)
        buf->push_back(static_cast<u8>(v >> (8 * i)));
}

void
putU64(std::vector<u8> *buf, u64 v)
{
    for (int i = 0; i < 8; ++i)
        buf->push_back(static_cast<u8>(v >> (8 * i)));
}

/** Bounds-checked little-endian reader over a loaded file. */
struct ByteReader
{
    const u8 *p;
    size_t left;

    bool
    take(void *dst, size_t n)
    {
        if (left < n)
            return false;
        std::memcpy(dst, p, n);
        p += n;
        left -= n;
        return true;
    }

    bool
    u32At(u32 *v)
    {
        u8 b[4];
        if (!take(b, 4))
            return false;
        *v = static_cast<u32>(b[0]) | static_cast<u32>(b[1]) << 8
            | static_cast<u32>(b[2]) << 16 | static_cast<u32>(b[3]) << 24;
        return true;
    }

    bool
    u64At(u64 *v)
    {
        u32 lo, hi;
        if (!u32At(&lo) || !u32At(&hi))
            return false;
        *v = static_cast<u64>(hi) << 32 | lo;
        return true;
    }
};

u64
fnv1a(u64 h, const void *data, size_t n)
{
    const u8 *p = static_cast<const u8 *>(data);
    for (size_t i = 0; i < n; ++i)
        h = (h ^ p[i]) * 0x100000001b3ull;
    return h;
}

} // namespace

u64
Checkpoint::programHash(const Program &prog)
{
    u64 h = ArchState::kOutHashInit;
    for (const Instruction &inst : prog.text) {
        const u8 fields[4] = {static_cast<u8>(inst.op), inst.rd, inst.rs,
                              inst.rt};
        h = fnv1a(h, fields, sizeof(fields));
        const u32 imm = static_cast<u32>(inst.imm);
        h = fnv1a(h, &imm, sizeof(imm));
    }
    if (!prog.data.empty())
        h = fnv1a(h, prog.data.data(), prog.data.size());
    const u32 entry = prog.entry;
    return fnv1a(h, &entry, sizeof(entry));
}

Checkpoint
Checkpoint::capture(const FunctionalCore &core)
{
    Checkpoint ck;
    ck.state = core.state();
    ck.mem = core.memory();
    ck.instr_count = core.instrCount();
    ck.prog_hash = programHash(core.program());
    return ck;
}

bool
Checkpoint::save(const std::string &path) const
{
    std::vector<u8> buf;
    buf.reserve(256 + mem.numPages() * (MainMemory::kPageSize + 4));
    buf.insert(buf.end(), kMagic, kMagic + sizeof(kMagic));
    putU64(&buf, prog_hash);
    putU64(&buf, instr_count);
    putU32(&buf, state.pc);
    putU32(&buf, state.halted ? 1 : 0);
    for (const u32 r : state.regs)
        putU32(&buf, r);
    putU64(&buf, state.out_count);
    putU64(&buf, state.out_hash);
    putU32(&buf, static_cast<u32>(state.output.size()));
    for (const u32 v : state.output)
        putU32(&buf, v);
    putU32(&buf, static_cast<u32>(mem.numPages()));
    mem.forEachPage([&](u32 idx, const u8 *bytes) {
        putU32(&buf, idx);
        buf.insert(buf.end(), bytes, bytes + MainMemory::kPageSize);
    });

    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
        warn("checkpoint: cannot write %s", tmp.c_str());
        return false;
    }
    const bool wrote =
        std::fwrite(buf.data(), 1, buf.size(), f) == buf.size();
    const bool closed = std::fclose(f) == 0;
    if (!wrote || !closed || std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("checkpoint: failed to persist %s", path.c_str());
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
Checkpoint::load(const std::string &path, u64 expect_prog_hash,
                 Checkpoint *out, std::string *err)
{
    const auto fail = [&](const char *why) {
        if (err)
            *err = std::string(path) + ": " + why;
        return false;
    };

    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return fail("cannot open");
    std::vector<u8> buf;
    u8 chunk[65536];
    size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        buf.insert(buf.end(), chunk, chunk + n);
    std::fclose(f);

    ByteReader rd{buf.data(), buf.size()};
    char magic[8];
    if (!rd.take(magic, sizeof(magic))
        || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        return fail("bad magic/version");

    Checkpoint ck;
    u32 halted = 0, out_n = 0, page_n = 0;
    if (!rd.u64At(&ck.prog_hash) || !rd.u64At(&ck.instr_count)
        || !rd.u32At(&ck.state.pc) || !rd.u32At(&halted))
        return fail("truncated header");
    if (ck.prog_hash != expect_prog_hash)
        return fail("program hash mismatch (stale checkpoint)");
    ck.state.halted = halted != 0;
    for (u32 &r : ck.state.regs) {
        if (!rd.u32At(&r))
            return fail("truncated registers");
    }
    if (!rd.u64At(&ck.state.out_count) || !rd.u64At(&ck.state.out_hash)
        || !rd.u32At(&out_n))
        return fail("truncated output digest");
    ck.state.output.resize(out_n);
    for (u32 &v : ck.state.output) {
        if (!rd.u32At(&v))
            return fail("truncated output stream");
    }
    if (!rd.u32At(&page_n))
        return fail("truncated page count");
    for (u32 i = 0; i < page_n; ++i) {
        u32 idx;
        if (!rd.u32At(&idx) || rd.left < MainMemory::kPageSize)
            return fail("truncated page data");
        ck.mem.setPageRaw(idx, rd.p);
        rd.p += MainMemory::kPageSize;
        rd.left -= MainMemory::kPageSize;
    }
    if (rd.left != 0)
        return fail("trailing bytes");

    *out = std::move(ck);
    return true;
}

} // namespace dmt
