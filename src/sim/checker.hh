/**
 * @file
 * Golden checker: an independent functional execution advanced in
 * lock-step with the timing simulator's final retirement stream.  Any
 * divergence in control flow, register results, memory effects or
 * program output is a timing-simulator bug and is reported immediately.
 *
 * This is the central correctness oracle for the DMT engine: because
 * DMT executes with value-speculated thread inputs and re-executes
 * instructions selectively, the only end-to-end guarantee worth having
 * is "the finally-retired instruction stream equals sequential
 * execution".  The checker enforces exactly that.
 */

#ifndef DMT_SIM_CHECKER_HH
#define DMT_SIM_CHECKER_HH

#include <string>

#include "sim/functional.hh"

namespace dmt
{

/** What the timing simulator claims a retired instruction did. */
struct RetireRecord
{
    Addr pc = 0;
    int dest = -1;       ///< effective logical destination or -1
    u32 dest_val = 0;
    bool is_store = false;
    Addr mem_addr = 0;
    u32 store_val = 0;
    bool emitted_out = false;
    u32 out_val = 0;
};

/** Lock-step golden-model checker. */
class GoldenChecker
{
  public:
    explicit GoldenChecker(const Program &prog);

    /**
     * Start checking mid-stream from a checkpointed architectural
     * state (@p state, @p mem) instead of the program's entry
     * conditions.  The timing simulator being checked must resume from
     * the identical snapshot.
     */
    GoldenChecker(const Program &prog, const ArchState &state,
                  const MainMemory &mem);

    /**
     * Verify one retired instruction.  Returns true on match; on
     * mismatch records a diagnostic (retrievable via error()) and
     * returns false.  Once a mismatch is seen the checker latches
     * failure.
     */
    bool onRetire(const RetireRecord &rec);

    /** True while no mismatch has been observed. */
    bool ok() const { return error_.empty(); }

    /** First mismatch diagnostic (empty when ok). */
    const std::string &error() const { return error_; }

    /** Instructions verified so far. */
    u64 verified() const { return verified_; }

    /** True when the golden execution has reached HALT. */
    bool goldenHalted() const { return state.halted; }

  private:
    const Program &prog;
    ArchState state;
    MainMemory mem;
    std::string error_;
    u64 verified_ = 0;
};

} // namespace dmt

#endif // DMT_SIM_CHECKER_HH
