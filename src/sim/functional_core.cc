#include "sim/functional_core.hh"

#include "common/log.hh"
#include "sim/bbv.hh"
#include "sim/functional.hh"

namespace dmt
{

FunctionalCore::FunctionalCore(const Program &prog, bool stream_output)
    : prog_(prog)
{
    decoded_.reserve(prog_.text.size());
    for (const Instruction &inst : prog_.text) {
        DecodedOp d;
        d.cls = opInfo(inst.op).opClass;
        d.mem_bytes = static_cast<u8>(inst.isMem() ? inst.memBytes() : 0);
        d.mem_signed = inst.isLoad() && inst.memSigned();
        d.has_dest = inst.effectiveDest() >= 0;
        decoded_.push_back(d);
    }
    state_.stream_output = stream_output;
    mode_ = ffModeFromEnv();
    cache_blocks_ = ffCacheBlocksFromEnv();
    reset();
}

void
FunctionalCore::setCacheBound(u32 max_blocks)
{
    cache_blocks_ = max_blocks < 1 ? 1 : max_blocks;
    translated_.reset();
}

TranslationStats
FunctionalCore::translationStats() const
{
    return translated_ ? translated_->stats() : TranslationStats{};
}

void
FunctionalCore::reset()
{
    const bool stream = state_.stream_output;
    state_.reset(prog_);
    state_.stream_output = stream;
    mem_.clear();
    mem_.loadProgram(prog_);
    instr_count_ = 0;
}

void
FunctionalCore::restore(const ArchState &state, const MainMemory &mem,
                        u64 instr_count)
{
    const bool stream = state_.stream_output;
    state_ = state;
    state_.stream_output = stream;
    mem_ = mem;
    instr_count_ = instr_count;
}

u64
FunctionalCore::run(u64 max_instr)
{
    if (mode_ == FfMode::Translated) {
        if (!translated_)
            translated_ =
                std::make_unique<TranslatedCore>(prog_, cache_blocks_);
        const u64 done = translated_->run(state_, mem_, max_instr, bbv_);
        instr_count_ += done;
        return done;
    }
    return runInterp(max_instr);
}

u64
FunctionalCore::runInterp(u64 max_instr)
{
    // Split on the collector once per batch so the common (off) path
    // compiles with zero per-instruction BBV overhead.
    return bbv_ ? runInterpImpl<true>(max_instr)
                : runInterpImpl<false>(max_instr);
}

template <bool kBbv>
u64
FunctionalCore::runInterpImpl(u64 max_instr)
{
    const Addr text_base = Program::kTextBase;
    const Addr text_end = prog_.textEnd();
    const Instruction *text = prog_.text.data();
    const DecodedOp *dec = decoded_.data();

    u64 done = 0;
    u64 bbv_last = 0; // `done` at the last BBV region boundary
    Addr pc = state_.pc;
    while (done < max_instr && !state_.halted) {
        if (pc < text_base || pc >= text_end || (pc & 3) != 0) {
            // Running off the text segment halts, like functionalStep.
            state_.halted = true;
            break;
        }
        const size_t idx = (pc - text_base) >> 2;
        const Instruction &inst = text[idx];
        const DecodedOp &d = dec[idx];
        Addr next_pc = pc + 4;

        const u32 rs_val = state_.reg(inst.rs);
        const u32 rt_val = state_.reg(inst.rt);

        switch (d.cls) {
          case OpClass::IntAlu:
          case OpClass::IntMul:
          case OpClass::IntDiv:
            state_.setReg(inst.rd, aluCompute(inst, rs_val, rt_val));
            break;
          case OpClass::MemRead: {
              const Addr ea = (rs_val + static_cast<u32>(inst.imm))
                  & ~static_cast<Addr>(d.mem_bytes - 1);
              state_.setReg(inst.rd,
                            mem_.read(ea, d.mem_bytes, d.mem_signed));
              break;
          }
          case OpClass::MemWrite: {
              const Addr ea = (rs_val + static_cast<u32>(inst.imm))
                  & ~static_cast<Addr>(d.mem_bytes - 1);
              mem_.write(ea, d.mem_bytes, rt_val);
              break;
          }
          case OpClass::Control: {
              bool taken = true; // jumps always transfer
              switch (inst.op) {
                case Opcode::J:
                  next_pc = inst.jumpTarget();
                  break;
                case Opcode::JAL:
                  state_.setReg(inst.rd, pc + 4);
                  next_pc = inst.jumpTarget();
                  break;
                case Opcode::JR:
                  next_pc = rs_val;
                  break;
                case Opcode::JALR:
                  // Read rs before the (possibly aliasing) link write.
                  next_pc = rs_val;
                  state_.setReg(inst.rd, pc + 4);
                  break;
                default:
                  taken = branchTaken(inst, rs_val, rt_val);
                  if (taken)
                      next_pc = inst.branchTarget(pc);
                  break;
              }
              // A taken transfer ends a BBV region; the transfer
              // instruction itself (retired below as done+1) belongs
              // to the region it ends.  See sim/bbv.hh.
              if (kBbv && taken) {
                  bbv_->transfer(next_pc, done + 1 - bbv_last);
                  bbv_last = done + 1;
              }
              break;
          }
          case OpClass::Other:
            if (inst.op == Opcode::HALT) {
                state_.halted = true;
                next_pc = pc;
            } else if (inst.op == Opcode::OUT) {
                state_.emitOut(rs_val);
            }
            break;
        }

        pc = next_pc;
        ++done;
    }

    if (kBbv)
        bbv_->flush(done - bbv_last);
    state_.pc = pc;
    instr_count_ += done;
    return done;
}

} // namespace dmt
