#include "memory/hierarchy.hh"

namespace dmt
{

MemHierarchy::MemHierarchy(const HierarchyParams &params)
    : params_(params), l1i_(params.l1i), l1d_(params.l1d), l2_(params.l2)
{
}

Cycle
MemHierarchy::instAccess(Addr addr)
{
    if (params_.perfect_icache)
        return 0;
    if (l1i_.access(addr, false))
        return 0;
    if (l2_.access(addr, false))
        return params_.l1_miss_penalty;
    return params_.l1_miss_penalty + params_.l2_miss_penalty;
}

Cycle
MemHierarchy::dataAccess(Addr addr, bool write)
{
    if (params_.perfect_dcache)
        return 0;
    if (l1d_.access(addr, write))
        return 0;
    if (l2_.access(addr, write))
        return params_.l1_miss_penalty;
    return params_.l1_miss_penalty + params_.l2_miss_penalty;
}

void
MemHierarchy::reset()
{
    l1i_.reset();
    l1d_.reset();
    l2_.reset();
}

} // namespace dmt
