/**
 * @file
 * Two-level cache hierarchy matching the paper's machine: 16KB 2-way
 * L1I and L1D, shared 256KB 4-way L2; an L1 miss costs 4 cycles and an
 * L2 miss an additional 20 (Section 4).
 */

#ifndef DMT_MEMORY_HIERARCHY_HH
#define DMT_MEMORY_HIERARCHY_HH

#include "memory/cache.hh"

namespace dmt
{

/** Hierarchy geometry and penalties. */
struct HierarchyParams
{
    CacheParams l1i{"l1i", 16 * 1024, 2, 32};
    CacheParams l1d{"l1d", 16 * 1024, 2, 32};
    CacheParams l2{"l2", 256 * 1024, 4, 64};
    Cycle l1_miss_penalty = 4;
    Cycle l2_miss_penalty = 20;
    /** When true every access hits (used by idealized configs). */
    bool perfect_icache = false;
    bool perfect_dcache = false;
};

/** Shared-L2 two-level hierarchy, timing only. */
class MemHierarchy
{
  public:
    explicit MemHierarchy(const HierarchyParams &params);

    /**
     * Instruction-fetch lookup.
     * @return extra cycles beyond the pipelined L1 hit (0 on hit).
     */
    Cycle instAccess(Addr addr);

    /** Data lookup; @p write marks the line dirty. */
    Cycle dataAccess(Addr addr, bool write);

    void reset();

    const Cache &l1i() const { return l1i_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_; }
    const HierarchyParams &params() const { return params_; }

  private:
    HierarchyParams params_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
};

} // namespace dmt

#endif // DMT_MEMORY_HIERARCHY_HH
