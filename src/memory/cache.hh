/**
 * @file
 * Timing-only set-associative cache model with true-LRU replacement.
 * Data values live in MainMemory; the cache tracks presence to charge
 * latency, exactly like the paper's performance simulator.
 */

#ifndef DMT_MEMORY_CACHE_HH
#define DMT_MEMORY_CACHE_HH

#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace dmt
{

/** Geometry of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    u32 size_bytes = 16 * 1024;
    u32 assoc = 2;
    u32 line_bytes = 32;
};

/** One level of timing-only cache. */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Look up @p addr; allocates the line on miss.
     * @retval true on hit.
     */
    bool access(Addr addr, bool write);

    /** Probe without modifying state (for tests). */
    bool probe(Addr addr) const;

    /** Invalidate everything. */
    void reset();

    u64 hits() const { return hits_.value(); }
    u64 misses() const { return misses_.value(); }
    const CacheParams &params() const { return params_; }

    /** Number of sets (for tests). */
    u32 numSets() const { return num_sets; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        u32 tag = 0;
        u64 lru = 0;
    };

    u32 setIndex(Addr addr) const;
    u32 tagOf(Addr addr) const;

    CacheParams params_;
    u32 num_sets;
    int offset_bits;
    int index_bits;
    std::vector<Line> lines; // num_sets x assoc
    u64 access_seq = 0;
    Counter hits_;
    Counter misses_;
};

} // namespace dmt

#endif // DMT_MEMORY_CACHE_HH
