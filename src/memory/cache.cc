#include "memory/cache.hh"

#include "common/bitutils.hh"
#include "common/log.hh"

namespace dmt
{

Cache::Cache(const CacheParams &params)
    : params_(params)
{
    DMT_ASSERT(isPowerOfTwo(params.line_bytes), "line size not pow2");
    DMT_ASSERT(params.assoc > 0, "zero associativity");
    DMT_ASSERT(params.size_bytes % (params.line_bytes * params.assoc) == 0,
               "size not divisible by way size");
    num_sets = params.size_bytes / (params.line_bytes * params.assoc);
    DMT_ASSERT(isPowerOfTwo(num_sets), "set count not pow2");
    offset_bits = floorLog2(params.line_bytes);
    index_bits = floorLog2(num_sets);
    lines.resize(static_cast<size_t>(num_sets) * params.assoc);
}

u32
Cache::setIndex(Addr addr) const
{
    return bits(addr >> offset_bits, index_bits - 1, 0) & (num_sets - 1);
}

u32
Cache::tagOf(Addr addr) const
{
    return addr >> (offset_bits + index_bits);
}

bool
Cache::access(Addr addr, bool write)
{
    const u32 set = setIndex(addr);
    const u32 tag = tagOf(addr);
    Line *ways = &lines[static_cast<size_t>(set) * params_.assoc];
    ++access_seq;

    Line *victim = &ways[0];
    for (u32 w = 0; w < params_.assoc; ++w) {
        Line &line = ways[w];
        if (line.valid && line.tag == tag) {
            line.lru = access_seq;
            line.dirty = line.dirty || write;
            ++hits_;
            return true;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lru < victim->lru) {
            victim = &line;
        }
    }

    ++misses_;
    victim->valid = true;
    victim->dirty = write;
    victim->tag = tag;
    victim->lru = access_seq;
    return false;
}

bool
Cache::probe(Addr addr) const
{
    const u32 set = setIndex(addr);
    const u32 tag = tagOf(addr);
    const Line *ways = &lines[static_cast<size_t>(set) * params_.assoc];
    for (u32 w = 0; w < params_.assoc; ++w) {
        if (ways[w].valid && ways[w].tag == tag)
            return true;
    }
    return false;
}

void
Cache::reset()
{
    for (auto &line : lines)
        line = Line{};
    access_seq = 0;
    hits_.reset();
    misses_.reset();
}

} // namespace dmt
