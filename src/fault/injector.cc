#include "fault/injector.hh"

#include <cstdlib>
#include <cstring>
#include <string>

#include "common/env.hh"
#include "common/log.hh"

namespace dmt
{

void
FaultInjector::configure(const FaultOptions &opts)
{
    opts_ = opts;
    bool any = false;
    for (int i = 0; i < kNumFaultSites; ++i) {
        // Independent streams per site: the draw and corruption
        // sequences of one site are unaffected by the others' rates.
        draw_[i] = Rng(opts.seed * 0x9e3779b97f4a7c15ull
                       + static_cast<u64>(2 * i + 1));
        value_[i] = Rng(opts.seed * 0xbf58476d1ce4e5b9ull
                        + static_cast<u64>(2 * i + 2));
        injected_[i] = 0;
        offered_[i] = 0;
        any = any || opts.rate[i] > 0.0;
    }
    enabled_ = opts.enabled && any;
}

bool
FaultInjector::roll(FaultSite site)
{
    const int i = static_cast<int>(site);
    ++offered_[i];
    if (opts_.rate[i] <= 0.0)
        return false;
    if (!draw_[i].chance(opts_.rate[i]))
        return false;
    ++injected_[i];
    return true;
}

Rng &
FaultInjector::valueRng(FaultSite site)
{
    return value_[static_cast<int>(site)];
}

u64
FaultInjector::injected(FaultSite site) const
{
    return injected_[static_cast<int>(site)];
}

u64
FaultInjector::injectedTotal() const
{
    u64 n = 0;
    for (u64 v : injected_)
        n += v;
    return n;
}

u64
FaultInjector::offered(FaultSite site) const
{
    return offered_[static_cast<int>(site)];
}

FaultOptions
faultOptionsFromEnv(FaultOptions base)
{
    const char *spec = std::getenv("DMT_FAULT");
    const double env_rate = parseEnvF64("DMT_FAULT_RATE", 0.01, 0.0, 1.0);

    if (spec && *spec) {
        std::string s(spec);
        if (s == "0" || s == "off") {
            base.enabled = false;
        } else {
            base.enabled = true;
            size_t pos = 0;
            while (pos <= s.size()) {
                size_t comma = s.find(',', pos);
                if (comma == std::string::npos)
                    comma = s.size();
                const std::string tok = s.substr(pos, comma - pos);
                pos = comma + 1;
                if (tok.empty())
                    continue;
                if (tok == "1" || tok == "on" || tok == "all") {
                    for (int i = 0; i < kNumFaultSites; ++i) {
                        if (base.rate[i] <= 0.0)
                            base.rate[i] = env_rate;
                    }
                    continue;
                }
                bool known = false;
                for (int i = 0; i < kNumFaultSites; ++i) {
                    if (tok == faultSiteName(static_cast<FaultSite>(i))) {
                        if (base.rate[i] <= 0.0)
                            base.rate[i] = env_rate;
                        known = true;
                    }
                }
                if (!known)
                    warn("DMT_FAULT: unknown site '%s' ignored",
                         tok.c_str());
            }
        }
    }

    base.seed = parseEnvU64("DMT_FAULT_SEED", base.seed);
    return base;
}

} // namespace dmt
