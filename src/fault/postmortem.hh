/**
 * @file
 * Crash diagnostics: a machine-readable JSON post-mortem of the engine
 * (cycle, configuration, per-thread pipeline/trace-buffer/recovery
 * state, resource accounting, headline stats, and the last-N telemetry
 * ring events when a ring sink is attached).  Produced on watchdog
 * expiry and invariant-audit failure, attached to the thrown SimError,
 * and written to the configured crash file so deadlocks are debuggable
 * from the artifact instead of a one-line exit message.
 */

#ifndef DMT_FAULT_POSTMORTEM_HH
#define DMT_FAULT_POSTMORTEM_HH

#include <string>

namespace dmt
{

class DmtEngine;

/** White-box engine state snapshotter (friend of DmtEngine). */
class Postmortem
{
  public:
    /** Render the full post-mortem document. */
    static std::string json(const DmtEngine &e, const std::string &kind,
                            const std::string &reason);

    /**
     * Render the post-mortem and write it to the engine's configured
     * crash file (cfg.crash_file; empty path skips the file).
     * @return the JSON document.
     */
    static std::string dump(const DmtEngine &e, const std::string &kind,
                            const std::string &reason);
};

} // namespace dmt

#endif // DMT_FAULT_POSTMORTEM_HH
