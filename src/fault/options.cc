#include "fault/options.hh"

namespace dmt
{

const char *
faultSiteName(FaultSite s)
{
    switch (s) {
      case FaultSite::SpawnInput: return "spawn-input";
      case FaultSite::DataflowValue: return "dataflow-value";
      case FaultSite::LoadValue: return "load-value";
      case FaultSite::SpawnDecision: return "spawn-decision";
      case FaultSite::BranchPrediction: return "branch-prediction";
      case FaultSite::kCount: break;
    }
    return "?";
}

} // namespace dmt
