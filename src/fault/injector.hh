/**
 * @file
 * Seeded deterministic fault injector.  The engine owns one and asks it
 * at each hook point whether to corrupt the value/decision at hand;
 * when disabled every query is a single predictable branch on a cold
 * bool (the Tracer discipline).
 *
 * Determinism: one splitmix64 stream per site, all derived from the
 * configured seed, so enabling an extra site does not perturb the draw
 * sequence of the others and a (seed, rates) pair replays exactly.
 */

#ifndef DMT_FAULT_INJECTOR_HH
#define DMT_FAULT_INJECTOR_HH

#include "common/rng.hh"
#include "fault/options.hh"

namespace dmt
{

/** Deterministic speculative-state corruptor. */
class FaultInjector
{
  public:
    FaultInjector() = default;

    /** Install options; resets the draw streams and counters. */
    void configure(const FaultOptions &opts);

    bool enabled() const { return enabled_; }

    /** Should the state at this @p site opportunity be corrupted?
     *  Counts the injection when it fires. */
    bool
    shouldInject(FaultSite site)
    {
        if (!enabled_)
            return false;
        return roll(site);
    }

    /** Corrupt a 32-bit value (guaranteed != the original). */
    u32
    corruptValue(FaultSite site, u32 v)
    {
        // Low bit forced on so the XOR mask is never zero.
        return v ^ (valueRng(site).next32() | 1u);
    }

    /** Injections fired at @p site so far. */
    u64 injected(FaultSite site) const;

    /** Total injections fired across all sites. */
    u64 injectedTotal() const;

    /** Opportunities offered at @p site (enabled runs only). */
    u64 offered(FaultSite site) const;

    const FaultOptions &options() const { return opts_; }

  private:
    bool roll(FaultSite site);
    Rng &valueRng(FaultSite site);

    bool enabled_ = false;
    FaultOptions opts_;
    Rng draw_[kNumFaultSites];
    Rng value_[kNumFaultSites];
    u64 injected_[kNumFaultSites] = {};
    u64 offered_[kNumFaultSites] = {};
};

/**
 * Apply environment overrides on top of @p base:
 *
 *  - DMT_FAULT: comma-separated site list ("spawn-input",
 *    "dataflow-value", "load-value", "spawn-decision",
 *    "branch-prediction"), or "1"/"all" for every site; "0"/"off"
 *    forces injection off.  Selected sites get DMT_FAULT_RATE (default
 *    0.01) unless the config already set a nonzero rate.
 *  - DMT_FAULT_RATE: per-opportunity probability for selected sites.
 *  - DMT_FAULT_SEED: deterministic stream seed.
 */
FaultOptions faultOptionsFromEnv(FaultOptions base);

} // namespace dmt

#endif // DMT_FAULT_INJECTOR_HH
