/**
 * @file
 * Fault-injection configuration embedded in SimConfig (the `fault`
 * member).  A plain aggregate, like trace/options.hh, so the config
 * layer does not depend on the injector machinery.  Environment
 * overrides (DMT_FAULT et al.) are applied by faultOptionsFromEnv() in
 * fault/injector.hh.
 *
 * The fault contract: every site corrupts *speculative-only* state —
 * state the paper's recovery machinery (trace-buffer walks, dependency
 * filtering, divergence flushes, join validation) is required to repair
 * before final retirement.  A run with injection enabled must therefore
 * still produce a golden-checker-clean retirement stream; injection
 * storms are a correctness test, not just a perf knob.
 */

#ifndef DMT_FAULT_OPTIONS_HH
#define DMT_FAULT_OPTIONS_HH

#include "common/types.hh"

namespace dmt
{

/** Speculative-state corruption sites. */
enum class FaultSite : u8
{
    /** Value-predicted input registers of a freshly spawned thread
     *  (corrupted value; repaired by the head-switch final check or the
     *  progressive final check → recovery walk). */
    SpawnInput,
    /** Values delivered through the dataflow (last-modifier) predictor
     *  (repaired by the final check, like any wrong input value). */
    DataflowValue,
    /** Load values delivered to consumers.  Modelled as an aggressively
     *  value-speculated load: the corrupted value is consumed and a
     *  load-root recovery request is filed, exactly like an LSQ
     *  ordering violation. */
    LoadValue,
    /** Thread-selection predictor decisions (flipped: spurious spawns
     *  and suppressed spawns; cleaned up by join validation / the
     *  thread-misprediction detector). */
    SpawnDecision,
    /** Conditional-branch predictions (flipped direction; repaired by
     *  the ordinary checkpoint-restore misprediction machinery). */
    BranchPrediction,

    kCount
};

constexpr int kNumFaultSites = static_cast<int>(FaultSite::kCount);

/** Stable lowercase site name, e.g. "spawn-input". */
const char *faultSiteName(FaultSite s);

/** Which sites inject, at what per-opportunity probability. */
struct FaultOptions
{
    /** Master gate.  False compiles every hook down to one predictable
     *  branch on a cold bool. */
    bool enabled = false;

    /** Deterministic injection stream seed. */
    u64 seed = 1;

    /** Per-opportunity injection probability per site; 0 disables the
     *  site.  Indexed by FaultSite. */
    double rate[kNumFaultSites] = {0, 0, 0, 0, 0};

    /** Set every site to @p r. */
    void
    rateAll(double r)
    {
        for (double &x : rate)
            x = r;
    }
};

} // namespace dmt

#endif // DMT_FAULT_OPTIONS_HH
