#include "fault/postmortem.hh"

#include <cstdio>

#include "common/json.hh"
#include "common/log.hh"
#include "dmt/engine.hh"
#include "trace/ring_sink.hh"

namespace dmt
{

namespace
{

const char *
recoveryStateName(RecoveryFsm::State s)
{
    switch (s) {
      case RecoveryFsm::State::Idle: return "idle";
      case RecoveryFsm::State::Latency: return "latency";
      case RecoveryFsm::State::Walk: return "walk";
    }
    return "?";
}

void
threadOn(JsonWriter &w, const ThreadContext &t)
{
    w.beginObject();
    w.key("tid").value(t.id);
    w.key("gen").value(t.gen);
    w.key("start_pc").value(static_cast<u64>(t.start_pc));
    w.key("pc").value(static_cast<u64>(t.pc));
    w.key("is_loop_thread").value(t.is_loop_thread);
    w.key("stopped").value(t.stopped);
    w.key("fetched_halt").value(t.fetched_halt);
    w.key("fetch_queue").value(static_cast<u64>(t.fq.size()));
    w.key("pipe").value(static_cast<u64>(t.pipe.size()));
    w.key("tb_first").value(t.tb.firstId());
    w.key("tb_end").value(t.tb.endId());
    w.key("tb_size").value(t.tb.size());
    w.key("retired").value(t.retired_count);
    w.key("checkpoints").value(static_cast<u64>(t.checkpoints.size()));
    w.key("recovery").beginObject();
    w.key("state").value(recoveryStateName(t.recov.state));
    w.key("queued").value(static_cast<u64>(t.recov.has_pending ? 1 : 0));
    w.key("walk_pos").value(t.recov.walk_pos);
    w.key("latency_left").value(t.recov.latency_left);
    w.key("low_water").value(t.recov.lowWater());
    w.endObject();
    w.endObject();
}

} // namespace

std::string
Postmortem::json(const DmtEngine &e, const std::string &kind,
                 const std::string &reason)
{
    JsonWriter w;
    w.beginObject();
    w.key("postmortem").value(std::string_view(kind));
    w.key("reason").value(std::string_view(reason));
    w.key("cycle").value(e.now_);
    w.key("retired_total").value(e.retired_total);
    w.key("program_done").value(e.program_done);
    w.key("window_used").value(e.window_used);
    w.key("window_size").value(e.cfg.window_size);
    w.key("drain_queue").value(static_cast<u64>(e.drain_q.size()));
    w.key("phys_regs_total").value(e.prf.count());
    w.key("phys_regs_free").value(e.prf.numFree());
    w.key("dyninsts_live").value(e.pool.live());
    w.key("golden_ok").value(e.goldenOk());

    w.key("config");
    e.cfg.jsonOn(w);

    // head()/order() rebuild through a recursive preorder walk, which
    // never terminates on a corrupted (cyclic) tree — and a corrupted
    // tree is exactly what an invariant-audit post-mortem may be
    // looking at.  audit() is iterative and cycle-safe; gate on it.
    const bool tree_ok = e.tree.audit(nullptr);
    w.key("order_tree_intact").value(tree_ok);
    const ThreadId head = tree_ok ? e.tree.head() : kNoThread;
    w.key("head_tid").value(head);
    w.key("head_validated").value(e.head_validated);
    w.key("order").beginArray();
    if (tree_ok) {
        for (ThreadId tid : e.tree.order())
            w.value(tid);
    }
    w.endArray();

    w.key("threads").beginArray();
    for (const auto &t : e.threads) {
        if (t->active)
            threadOn(w, *t);
    }
    w.endArray();

    w.key("faults").beginObject();
    w.key("enabled").value(e.injector_.enabled());
    w.key("injected_total").value(e.injector_.injectedTotal());
    w.key("by_site").beginObject();
    for (int i = 0; i < kNumFaultSites; ++i) {
        const FaultSite s = static_cast<FaultSite>(i);
        w.key(faultSiteName(s)).value(e.injector_.injected(s));
    }
    w.endObject();
    w.endObject();

    w.key("stats").beginObject();
    w.key("cycles").value(e.stats_.cycles.value());
    w.key("retired").value(e.stats_.retired.value());
    w.key("dispatched").value(e.stats_.dispatched.value());
    w.key("issued").value(e.stats_.issued.value());
    w.key("threads_spawned").value(e.stats_.threads_spawned.value());
    w.key("threads_squashed").value(e.stats_.threads_squashed.value());
    w.key("recoveries").value(e.stats_.recoveries.value());
    w.key("recovery_dispatches")
        .value(e.stats_.recovery_dispatches.value());
    w.key("lsq_violations").value(e.stats_.lsq_violations.value());
    w.key("st_headswitch").value(e.stats_.st_headswitch.value());
    w.key("st_recovery").value(e.stats_.st_recovery.value());
    w.key("st_incomplete").value(e.stats_.st_incomplete.value());
    w.key("st_empty").value(e.stats_.st_empty.value());
    w.endObject();

    // Last-N telemetry events (PR-1 ring sink), oldest first.
    w.key("ring_events").beginArray();
    if (const RingSink *ring = e.tracer_.ring()) {
        for (size_t i = 0; i < ring->size(); ++i) {
            const TraceEvent &ev = ring->at(i);
            w.beginObject();
            w.key("cycle").value(ev.cycle);
            w.key("tid").value(ev.tid);
            w.key("stage").value(traceStageName(ev.stage));
            w.key("kind").value(traceEventKindName(ev.kind));
            w.key("pc").value(static_cast<u64>(ev.pc));
            w.key("a").value(ev.a);
            w.key("b").value(ev.b);
            w.endObject();
        }
    }
    w.endArray();

    w.endObject();
    return w.str();
}

std::string
Postmortem::dump(const DmtEngine &e, const std::string &kind,
                 const std::string &reason)
{
    std::string doc = json(e, kind, reason);
    const std::string &path = e.cfg.crash_file;
    if (!path.empty()) {
        if (std::FILE *f = std::fopen(path.c_str(), "w")) {
            std::fwrite(doc.data(), 1, doc.size(), f);
            std::fputc('\n', f);
            std::fclose(f);
            warn("post-mortem written to %s", path.c_str());
        } else {
            warn("cannot write post-mortem file %s", path.c_str());
        }
    }
    return doc;
}

} // namespace dmt
