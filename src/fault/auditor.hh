/**
 * @file
 * Per-cycle invariant auditor.  A white-box checker (friend of
 * DmtEngine and Lsq) that sweeps the machine's structural invariants
 * between cycles:
 *
 *  - order tree: internal structural consistency (parent/child
 *    agreement, acyclicity) and agreement with the engine's per-context
 *    active flags;
 *  - recovery FSMs: walk position inside the trace buffer, sane
 *    latency, sorted load roots;
 *  - trace buffers: id sequencing, completed => result_valid, memory
 *    entries own valid LSQ slots that point back at them;
 *  - LSQ: free-list/valid agreement, per-thread occupancy counts,
 *    by-word index consistency;
 *  - store drain queue: valid retired stores in nondecreasing
 *    retirement order;
 *  - physical registers: free-list/alloc-bit agreement and exact leak
 *    accounting (every allocated register is held by exactly one live
 *    DynInst's destination);
 *  - active window: 0 <= window_used <= window_size and equal to the
 *    live non-squashed pipeline population.
 *
 * Scheduling is the engine's job (SimConfig::audit_period / DMT_AUDIT);
 * when a sweep fails the auditor attaches a full JSON post-mortem to
 * the thrown SimError and writes the crash file.
 */

#ifndef DMT_FAULT_AUDITOR_HH
#define DMT_FAULT_AUDITOR_HH

#include <string>

namespace dmt
{

class DmtEngine;
class ThreadContext;

/** Structural invariant sweep over a (quiescent, between-cycles)
 *  engine. */
class InvariantAuditor
{
  public:
    /**
     * Run every invariant check.  On the first violation found, dump a
     * post-mortem (crash file + SimError details) and throw SimError.
     */
    static void check(const DmtEngine &e);

    /**
     * Non-throwing variant for tests: @return true when every
     * invariant holds, else false with @p why (if given) describing
     * the first violation.
     */
    static bool checkNoThrow(const DmtEngine &e, std::string *why);

  private:
    // One leg per invariant group; member functions so the friend
    // grants (DmtEngine, Lsq, OrderTree) apply.
    static bool auditTree(const DmtEngine &e, std::string *why);
    static bool auditRecovery(const ThreadContext &t, std::string *why);
    static bool auditTraceBuffer(const DmtEngine &e,
                                 const ThreadContext &t,
                                 std::string *why);
    static bool auditLsq(const DmtEngine &e, std::string *why);
    static bool auditDrainQueue(const DmtEngine &e, std::string *why);
    static bool auditRegsAndWindow(const DmtEngine &e,
                                   std::string *why);
};

} // namespace dmt

#endif // DMT_FAULT_AUDITOR_HH
