#include "fault/auditor.hh"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <unordered_set>
#include <vector>

#include "common/log.hh"
#include "dmt/engine.hh"
#include "fault/postmortem.hh"

namespace dmt
{

namespace
{

/** Record the first violation; all checks funnel through this. */
bool
fail(std::string *why, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

bool
fail(std::string *why, const char *fmt, ...)
{
    if (why) {
        va_list ap;
        va_start(ap, fmt);
        char buf[512];
        std::vsnprintf(buf, sizeof(buf), fmt, ap);
        va_end(ap);
        *why = buf;
    }
    return false;
}

} // namespace

/** Order tree: internal structure + agreement with the engine's
 *  per-context active flags. */
bool
InvariantAuditor::auditTree(const DmtEngine &e, std::string *why)
{
    std::string tree_why;
    if (!e.tree.audit(&tree_why))
        return fail(why, "order tree: %s", tree_why.c_str());
    for (const auto &t : e.threads) {
        if (e.tree.contains(t->id) != t->active) {
            return fail(why,
                        "order tree/context disagreement: tid %d is %s "
                        "in the tree but context is %s",
                        t->id,
                        e.tree.contains(t->id) ? "present" : "absent",
                        t->active ? "active" : "inactive");
        }
    }
    return true;
}

/** Recovery FSM legality for one thread. */
bool
InvariantAuditor::auditRecovery(const ThreadContext &t, std::string *why)
{
    const RecoveryFsm &r = t.recov;
    if (r.state == RecoveryFsm::State::Walk) {
        if (r.walk_pos < t.tb.firstId() || r.walk_pos > t.tb.endId()) {
            return fail(why,
                        "tid %d: recovery walk position %llu outside "
                        "trace buffer [%llu, %llu]",
                        t.id, (unsigned long long)r.walk_pos,
                        (unsigned long long)t.tb.firstId(),
                        (unsigned long long)t.tb.endId());
        }
    }
    if (r.latency_left < 0) {
        return fail(why, "tid %d: negative recovery latency %d", t.id,
                    r.latency_left);
    }
    if (r.state == RecoveryFsm::State::Idle && r.latency_left != 0) {
        return fail(why, "tid %d: idle recovery FSM with latency %d",
                    t.id, r.latency_left);
    }
    if (r.busy() && r.lowWater() < t.tb.firstId()) {
        return fail(why,
                    "tid %d: recovery low-water %llu below trace buffer "
                    "base %llu (retirement overran pending recovery)",
                    t.id, (unsigned long long)r.lowWater(),
                    (unsigned long long)t.tb.firstId());
    }
    auto rootsSorted = [](const RecoveryRequest &q) {
        return std::is_sorted(q.load_roots.begin(), q.load_roots.end());
    };
    if (!rootsSorted(r.cur))
        return fail(why, "tid %d: active walk load roots unsorted", t.id);
    if (r.has_pending && !rootsSorted(r.pending))
        return fail(why, "tid %d: pending load roots unsorted", t.id);
    return true;
}

/** Trace-buffer entry invariants + LSQ back-pointers for one thread. */
bool
InvariantAuditor::auditTraceBuffer(const DmtEngine &e,
                                   const ThreadContext &t,
                                   std::string *why)
{
    for (u64 id = t.tb.firstId(); id < t.tb.endId(); ++id) {
        const TBEntry &entry = t.tb.at(id);
        if (entry.id != id) {
            return fail(why,
                        "tid %d: trace buffer slot %llu holds entry id "
                        "%llu",
                        t.id, (unsigned long long)id,
                        (unsigned long long)entry.id);
        }
        if (entry.completed && !entry.result_valid) {
            return fail(why,
                        "tid %d: entry %llu completed without a valid "
                        "result",
                        t.id, (unsigned long long)id);
        }
        if (entry.inst.isLoad()) {
            if (entry.lq_id < 0
                || entry.lq_id >= static_cast<i32>(e.lsq.loads.size())) {
                return fail(why, "tid %d: load entry %llu has bad lq id "
                            "%d", t.id, (unsigned long long)id,
                            entry.lq_id);
            }
            const LsqLoad &ld =
                e.lsq.loads[static_cast<size_t>(entry.lq_id)];
            if (!ld.valid || ld.tid != t.id || ld.tgen != t.gen
                || ld.tb_id != id) {
                return fail(why,
                            "tid %d: load entry %llu lq slot %d does "
                            "not point back (valid=%d tid=%d gen=%u "
                            "tb=%llu)",
                            t.id, (unsigned long long)id, entry.lq_id,
                            ld.valid, ld.tid, ld.tgen,
                            (unsigned long long)ld.tb_id);
            }
        }
        if (entry.inst.isStore()) {
            if (entry.sq_id < 0
                || entry.sq_id >= static_cast<i32>(e.lsq.stores.size())) {
                return fail(why, "tid %d: store entry %llu has bad sq "
                            "id %d", t.id, (unsigned long long)id,
                            entry.sq_id);
            }
            const LsqStore &st =
                e.lsq.stores[static_cast<size_t>(entry.sq_id)];
            if (!st.valid || st.tid != t.id || st.tgen != t.gen
                || st.tb_id != id) {
                return fail(why,
                            "tid %d: store entry %llu sq slot %d does "
                            "not point back (valid=%d tid=%d gen=%u "
                            "tb=%llu)",
                            t.id, (unsigned long long)id, entry.sq_id,
                            st.valid, st.tid, st.tgen,
                            (unsigned long long)st.tb_id);
            }
        }
    }
    return true;
}

/** LSQ internals: free lists, per-thread occupancy, by-word indexes. */
bool
InvariantAuditor::auditLsq(const DmtEngine &e, std::string *why)
{
    const Lsq &q = e.lsq;

    auto auditSide = [&](const char *side, size_t total,
                         const std::vector<i32> &free_list,
                         const std::vector<int> &counts,
                         auto validOf, auto tidOf) -> bool {
        std::vector<u8> is_free(total, 0);
        for (i32 id : free_list) {
            if (id < 0 || id >= static_cast<i32>(total))
                return fail(why, "lsq %s free list holds bad id %d",
                            side, id);
            if (is_free[static_cast<size_t>(id)])
                return fail(why, "lsq %s id %d on free list twice",
                            side, id);
            is_free[static_cast<size_t>(id)] = 1;
            if (validOf(id))
                return fail(why, "lsq %s id %d free but valid", side,
                            id);
        }
        std::vector<int> seen(counts.size(), 0);
        size_t n_valid = 0;
        for (size_t id = 0; id < total; ++id) {
            if (!validOf(static_cast<i32>(id)))
                continue;
            ++n_valid;
            const ThreadId tid = tidOf(static_cast<i32>(id));
            if (tid < 0 || tid >= static_cast<ThreadId>(counts.size()))
                return fail(why, "lsq %s id %zu owned by bad tid %d",
                            side, id, tid);
            ++seen[static_cast<size_t>(tid)];
        }
        if (n_valid + free_list.size() != total) {
            return fail(why,
                        "lsq %s slot leak: %zu valid + %zu free != %zu "
                        "total",
                        side, n_valid, free_list.size(), total);
        }
        for (size_t tid = 0; tid < counts.size(); ++tid) {
            if (counts[tid] != seen[tid]) {
                return fail(why,
                            "lsq %s count drift: tid %zu records %d "
                            "but holds %d",
                            side, tid, counts[tid], seen[tid]);
            }
        }
        return true;
    };

    if (!auditSide("load", q.loads.size(), q.free_loads, q.lq_count,
                   [&](i32 id) {
                       return q.loads[static_cast<size_t>(id)].valid;
                   },
                   [&](i32 id) {
                       return q.loads[static_cast<size_t>(id)].tid;
                   })) {
        return false;
    }
    if (!auditSide("store", q.stores.size(), q.free_stores, q.sq_count,
                   [&](i32 id) {
                       return q.stores[static_cast<size_t>(id)].valid;
                   },
                   [&](i32 id) {
                       return q.stores[static_cast<size_t>(id)].tid;
                   })) {
        return false;
    }

    // By-word indexes: every listed id is a valid issued/executed entry
    // filed under the word of its current address, exactly once; every
    // issued/executed entry is listed.
    auto auditIndex = [&](const char *side, const WordIndex &by_word,
                          const auto &entries, auto inIndex,
                          auto addrOf) -> bool {
        std::unordered_set<i32> listed;
        bool ok = true;
        by_word.forEachChain([&](Addr word, i32 head) {
            if (!ok)
                return;
            // Bounded walk: a cycle in the intrusive links would spin
            // past the entry count and trip the duplicate check.
            for (i32 id = head; id >= 0; id = by_word.chainNext(id)) {
                if (id >= static_cast<i32>(entries.size())) {
                    ok = fail(why, "lsq %s index holds bad id %d",
                              side, id);
                    return;
                }
                if (!inIndex(id)) {
                    ok = fail(why,
                              "lsq %s index holds id %d that is not "
                              "an issued valid entry",
                              side, id);
                    return;
                }
                if ((addrOf(id) & ~3u) != word) {
                    ok = fail(why,
                              "lsq %s id %d filed under word 0x%x but "
                              "addressed 0x%x",
                              side, id, word, addrOf(id));
                    return;
                }
                if (!listed.insert(id).second) {
                    ok = fail(why, "lsq %s id %d indexed twice", side,
                              id);
                    return;
                }
            }
        });
        if (!ok)
            return false;
        for (size_t id = 0; id < entries.size(); ++id) {
            if (inIndex(static_cast<i32>(id))
                && !listed.count(static_cast<i32>(id))) {
                return fail(why, "lsq %s id %zu missing from the "
                            "by-word index", side, id);
            }
        }
        return true;
    };

    if (!auditIndex("load", q.loads_by_word, q.loads,
                    [&](i32 id) {
                        const LsqLoad &ld =
                            q.loads[static_cast<size_t>(id)];
                        return ld.valid && ld.issued;
                    },
                    [&](i32 id) {
                        return q.loads[static_cast<size_t>(id)].addr;
                    })) {
        return false;
    }
    if (!auditIndex("store", q.stores_by_word, q.stores,
                    [&](i32 id) {
                        const LsqStore &st =
                            q.stores[static_cast<size_t>(id)];
                        return st.valid && st.executed;
                    },
                    [&](i32 id) {
                        return q.stores[static_cast<size_t>(id)].addr;
                    })) {
        return false;
    }
    return true;
}

/** Store drain queue: valid retired stores in retirement order. */
bool
InvariantAuditor::auditDrainQueue(const DmtEngine &e, std::string *why)
{
    u64 last_seq = 0;
    bool first = true;
    for (i32 sq_id : e.drain_q) {
        if (sq_id < 0 || sq_id >= static_cast<i32>(e.lsq.stores.size()))
            return fail(why, "drain queue holds bad sq id %d", sq_id);
        const LsqStore &st = e.lsq.stores[static_cast<size_t>(sq_id)];
        if (!st.valid || !st.retired || !st.executed) {
            return fail(why,
                        "drain queue sq id %d not a valid retired "
                        "executed store (valid=%d retired=%d "
                        "executed=%d)",
                        sq_id, st.valid, st.retired, st.executed);
        }
        if (!first && st.retire_seq < last_seq) {
            return fail(why,
                        "drain queue out of retirement order: seq %llu "
                        "after %llu",
                        (unsigned long long)st.retire_seq,
                        (unsigned long long)last_seq);
        }
        last_seq = st.retire_seq;
        first = false;
    }
    return true;
}

/**
 * Physical registers and the active window.  Ownership is exact: every
 * allocated register is the destination of exactly one live
 * (non-squashed, not yet early-retired) DynInst, and those DynInsts
 * are precisely the window population.
 */
bool
InvariantAuditor::auditRegsAndWindow(const DmtEngine &e, std::string *why)
{
    const int n_alloc = e.prf.numAllocated();
    if (n_alloc != e.prf.count() - e.prf.numFree()) {
        return fail(why,
                    "phys reg free list drift: %d allocation bits set "
                    "but %d of %d off the free list",
                    n_alloc, e.prf.count() - e.prf.numFree(),
                    e.prf.count());
    }

    std::vector<i32> holder(static_cast<size_t>(e.prf.count()),
                            kNoThread);
    int live_window = 0;
    int held = 0;
    for (const auto &t : e.threads) {
        for (const DynRef &ref : t->pipe) {
            const DynInst *d = e.pool.get(ref);
            if (!d || d->squashed)
                continue;
            ++live_window;
            if (d->dest_phys == kNoPhysReg)
                continue;
            if (d->dest_phys < 0 || d->dest_phys >= e.prf.count())
                return fail(why, "tid %d holds out-of-range phys reg "
                            "%d", t->id, d->dest_phys);
            if (!e.prf.allocated(d->dest_phys)) {
                return fail(why,
                            "tid %d pc 0x%x holds phys reg %d that is "
                            "on the free list (use after free)",
                            t->id, d->pc, d->dest_phys);
            }
            i32 &h = holder[static_cast<size_t>(d->dest_phys)];
            if (h != kNoThread) {
                return fail(why,
                            "phys reg %d held by two live instructions "
                            "(tids %d and %d)",
                            d->dest_phys, h, t->id);
            }
            h = t->id;
            ++held;
        }
    }
    if (held != n_alloc) {
        return fail(why,
                    "physical register leak: %d registers allocated "
                    "but %d held by live instructions",
                    n_alloc, held);
    }

    if (e.window_used < 0 || e.window_used > e.cfg.window_size) {
        return fail(why,
                    "active window occupancy %d outside [0, %d]",
                    e.window_used, e.cfg.window_size);
    }
    if (e.window_used != live_window) {
        return fail(why,
                    "active window accounting drift: counter %d but %d "
                    "live instructions in flight",
                    e.window_used, live_window);
    }
    return true;
}

bool
InvariantAuditor::checkNoThrow(const DmtEngine &e, std::string *why)
{
    if (!auditTree(e, why))
        return false;
    for (const auto &t : e.threads) {
        if (!t->active)
            continue;
        if (!auditRecovery(*t, why))
            return false;
        if (!auditTraceBuffer(e, *t, why))
            return false;
    }
    if (!auditLsq(e, why))
        return false;
    if (!auditDrainQueue(e, why))
        return false;
    if (!auditRegsAndWindow(e, why))
        return false;
    return true;
}

void
InvariantAuditor::check(const DmtEngine &e)
{
    std::string why;
    if (checkNoThrow(e, &why))
        return;
    std::string details =
        Postmortem::dump(e, "invariant-audit", why);
    panicWithDetails(std::move(details),
                     "invariant audit failed at cycle %llu: %s",
                     (unsigned long long)e.now_, why.c_str());
}

} // namespace dmt
