#include "casm/program.hh"

#include "common/log.hh"

namespace dmt
{

const Instruction &
Program::fetch(Addr pc) const
{
    static const Instruction halt = makeHalt();
    if (!validTextAddr(pc))
        return halt;
    return text[(pc - kTextBase) / 4];
}

Addr
Program::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    if (it == symbols.end())
        fatal("undefined symbol '%s'", name.c_str());
    return it->second;
}

bool
Program::hasSymbol(const std::string &name) const
{
    return symbols.count(name) != 0;
}

} // namespace dmt
