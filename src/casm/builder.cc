#include "casm/builder.hh"

#include "common/log.hh"

namespace dmt
{

AsmBuilder::Label
AsmBuilder::newLabel(std::string name)
{
    labels.push_back({std::move(name), false, 0});
    return static_cast<Label>(labels.size()) - 1;
}

void
AsmBuilder::bind(Label l)
{
    auto &info = labels.at(static_cast<size_t>(l));
    DMT_ASSERT(!info.bound, "label '%s' bound twice", info.name.c_str());
    info.bound = true;
    info.addr = pcAt(text.size());
}

void
AsmBuilder::bindData(Label l)
{
    auto &info = labels.at(static_cast<size_t>(l));
    DMT_ASSERT(!info.bound, "label '%s' bound twice", info.name.c_str());
    info.bound = true;
    info.addr = dataAddr();
}

Addr
AsmBuilder::dataAddr() const
{
    return Program::kDataBase + static_cast<Addr>(data.size());
}

Addr
AsmBuilder::dataWords(const std::vector<u32> &values)
{
    dataAlign(4);
    const Addr start = dataAddr();
    for (u32 v : values) {
        for (int b = 0; b < 4; ++b)
            data.push_back(static_cast<u8>(v >> (8 * b)));
    }
    return start;
}

Addr
AsmBuilder::dataSpace(u32 n)
{
    const Addr start = dataAddr();
    data.insert(data.end(), n, 0);
    return start;
}

Addr
AsmBuilder::dataBytes(const std::vector<u8> &bytes)
{
    const Addr start = dataAddr();
    data.insert(data.end(), bytes.begin(), bytes.end());
    return start;
}

void
AsmBuilder::dataAlign(u32 n)
{
    DMT_ASSERT(n > 0, "bad alignment");
    while (data.size() % n != 0)
        data.push_back(0);
}

Addr
AsmBuilder::pcAt(size_t idx) const
{
    return Program::kTextBase + static_cast<Addr>(idx) * 4;
}

void
AsmBuilder::emit(Instruction inst)
{
    DMT_ASSERT(!finished, "emit after finish()");
    text.push_back(inst);
}

void
AsmBuilder::emitBranch(Opcode op, LogReg rs, LogReg rt, Label target)
{
    fixups.push_back({text.size(), target, FixKind::Branch});
    emit({op, 0, rs, rt, 0});
}

// ---- ALU ----------------------------------------------------------------

void AsmBuilder::add(LogReg rd, LogReg rs, LogReg rt)
{ emit({Opcode::ADD, rd, rs, rt, 0}); }
void AsmBuilder::sub(LogReg rd, LogReg rs, LogReg rt)
{ emit({Opcode::SUB, rd, rs, rt, 0}); }
void AsmBuilder::and_(LogReg rd, LogReg rs, LogReg rt)
{ emit({Opcode::AND, rd, rs, rt, 0}); }
void AsmBuilder::or_(LogReg rd, LogReg rs, LogReg rt)
{ emit({Opcode::OR, rd, rs, rt, 0}); }
void AsmBuilder::xor_(LogReg rd, LogReg rs, LogReg rt)
{ emit({Opcode::XOR, rd, rs, rt, 0}); }
void AsmBuilder::nor_(LogReg rd, LogReg rs, LogReg rt)
{ emit({Opcode::NOR, rd, rs, rt, 0}); }
void AsmBuilder::slt(LogReg rd, LogReg rs, LogReg rt)
{ emit({Opcode::SLT, rd, rs, rt, 0}); }
void AsmBuilder::sltu(LogReg rd, LogReg rs, LogReg rt)
{ emit({Opcode::SLTU, rd, rs, rt, 0}); }
void AsmBuilder::mul(LogReg rd, LogReg rs, LogReg rt)
{ emit({Opcode::MUL, rd, rs, rt, 0}); }
void AsmBuilder::mulh(LogReg rd, LogReg rs, LogReg rt)
{ emit({Opcode::MULH, rd, rs, rt, 0}); }
void AsmBuilder::div_(LogReg rd, LogReg rs, LogReg rt)
{ emit({Opcode::DIV, rd, rs, rt, 0}); }
void AsmBuilder::divu(LogReg rd, LogReg rs, LogReg rt)
{ emit({Opcode::DIVU, rd, rs, rt, 0}); }
void AsmBuilder::rem(LogReg rd, LogReg rs, LogReg rt)
{ emit({Opcode::REM, rd, rs, rt, 0}); }
void AsmBuilder::remu(LogReg rd, LogReg rs, LogReg rt)
{ emit({Opcode::REMU, rd, rs, rt, 0}); }

void
AsmBuilder::sll(LogReg rd, LogReg rs, int shamt)
{
    DMT_ASSERT(shamt >= 0 && shamt < 32, "bad shift amount %d", shamt);
    emit({Opcode::SLL, rd, rs, 0, shamt});
}

void
AsmBuilder::srl(LogReg rd, LogReg rs, int shamt)
{
    DMT_ASSERT(shamt >= 0 && shamt < 32, "bad shift amount %d", shamt);
    emit({Opcode::SRL, rd, rs, 0, shamt});
}

void
AsmBuilder::sra(LogReg rd, LogReg rs, int shamt)
{
    DMT_ASSERT(shamt >= 0 && shamt < 32, "bad shift amount %d", shamt);
    emit({Opcode::SRA, rd, rs, 0, shamt});
}

void AsmBuilder::sllv(LogReg rd, LogReg rs, LogReg rt)
{ emit({Opcode::SLLV, rd, rs, rt, 0}); }
void AsmBuilder::srlv(LogReg rd, LogReg rs, LogReg rt)
{ emit({Opcode::SRLV, rd, rs, rt, 0}); }
void AsmBuilder::srav(LogReg rd, LogReg rs, LogReg rt)
{ emit({Opcode::SRAV, rd, rs, rt, 0}); }

void AsmBuilder::addi(LogReg rd, LogReg rs, i32 imm)
{ emit({Opcode::ADDI, rd, rs, 0, imm}); }
void AsmBuilder::andi(LogReg rd, LogReg rs, u32 imm)
{ emit({Opcode::ANDI, rd, rs, 0, static_cast<i32>(imm & 0xFFFF)}); }
void AsmBuilder::ori(LogReg rd, LogReg rs, u32 imm)
{ emit({Opcode::ORI, rd, rs, 0, static_cast<i32>(imm & 0xFFFF)}); }
void AsmBuilder::xori(LogReg rd, LogReg rs, u32 imm)
{ emit({Opcode::XORI, rd, rs, 0, static_cast<i32>(imm & 0xFFFF)}); }
void AsmBuilder::slti(LogReg rd, LogReg rs, i32 imm)
{ emit({Opcode::SLTI, rd, rs, 0, imm}); }
void AsmBuilder::sltiu(LogReg rd, LogReg rs, i32 imm)
{ emit({Opcode::SLTIU, rd, rs, 0, imm}); }
void AsmBuilder::lui(LogReg rd, u32 imm16)
{ emit({Opcode::LUI, rd, 0, 0, static_cast<i32>(imm16 & 0xFFFF)}); }

// ---- memory ---------------------------------------------------------------

void AsmBuilder::lw(LogReg rd, i32 off, LogReg base)
{ emit({Opcode::LW, rd, base, 0, off}); }
void AsmBuilder::lh(LogReg rd, i32 off, LogReg base)
{ emit({Opcode::LH, rd, base, 0, off}); }
void AsmBuilder::lhu(LogReg rd, i32 off, LogReg base)
{ emit({Opcode::LHU, rd, base, 0, off}); }
void AsmBuilder::lb(LogReg rd, i32 off, LogReg base)
{ emit({Opcode::LB, rd, base, 0, off}); }
void AsmBuilder::lbu(LogReg rd, i32 off, LogReg base)
{ emit({Opcode::LBU, rd, base, 0, off}); }
void AsmBuilder::sw(LogReg rt, i32 off, LogReg base)
{ emit({Opcode::SW, 0, base, rt, off}); }
void AsmBuilder::sh(LogReg rt, i32 off, LogReg base)
{ emit({Opcode::SH, 0, base, rt, off}); }
void AsmBuilder::sb(LogReg rt, i32 off, LogReg base)
{ emit({Opcode::SB, 0, base, rt, off}); }

// ---- control ----------------------------------------------------------------

void AsmBuilder::beq(LogReg rs, LogReg rt, Label t)
{ emitBranch(Opcode::BEQ, rs, rt, t); }
void AsmBuilder::bne(LogReg rs, LogReg rt, Label t)
{ emitBranch(Opcode::BNE, rs, rt, t); }
void AsmBuilder::blt(LogReg rs, LogReg rt, Label t)
{ emitBranch(Opcode::BLT, rs, rt, t); }
void AsmBuilder::bge(LogReg rs, LogReg rt, Label t)
{ emitBranch(Opcode::BGE, rs, rt, t); }
void AsmBuilder::bltu(LogReg rs, LogReg rt, Label t)
{ emitBranch(Opcode::BLTU, rs, rt, t); }
void AsmBuilder::bgeu(LogReg rs, LogReg rt, Label t)
{ emitBranch(Opcode::BGEU, rs, rt, t); }

void AsmBuilder::beqz(LogReg rs, Label t) { beq(rs, reg::zero, t); }
void AsmBuilder::bnez(LogReg rs, Label t) { bne(rs, reg::zero, t); }
void AsmBuilder::bltz(LogReg rs, Label t) { blt(rs, reg::zero, t); }
void AsmBuilder::bgez(LogReg rs, Label t) { bge(rs, reg::zero, t); }
void AsmBuilder::bgtz(LogReg rs, Label t) { blt(reg::zero, rs, t); }
void AsmBuilder::blez(LogReg rs, Label t) { bge(reg::zero, rs, t); }
void AsmBuilder::b(Label t) { beq(reg::zero, reg::zero, t); }

void
AsmBuilder::j(Label target)
{
    fixups.push_back({text.size(), target, FixKind::Jump});
    emit({Opcode::J, 0, 0, 0, 0});
}

void
AsmBuilder::jal(Label target)
{
    fixups.push_back({text.size(), target, FixKind::Jump});
    emit({Opcode::JAL, reg::ra, 0, 0, 0});
}

void AsmBuilder::jr(LogReg rs) { emit({Opcode::JR, 0, rs, 0, 0}); }
void AsmBuilder::jalr(LogReg rs) { emit({Opcode::JALR, reg::ra, rs, 0, 0}); }
void AsmBuilder::ret() { jr(reg::ra); }

// ---- pseudo / misc -----------------------------------------------------------

void
AsmBuilder::li(LogReg rd, u32 value)
{
    const i32 sval = static_cast<i32>(value);
    if (sval >= -32768 && sval <= 32767) {
        addi(rd, reg::zero, sval);
    } else if (value <= 0xFFFF) {
        ori(rd, reg::zero, value);
    } else {
        lui(rd, value >> 16);
        ori(rd, rd, value & 0xFFFF);
    }
}

void
AsmBuilder::la(LogReg rd, Label data_label)
{
    fixups.push_back({text.size(), data_label, FixKind::LuiHi});
    emit({Opcode::LUI, rd, 0, 0, 0});
    fixups.push_back({text.size(), data_label, FixKind::OriLo});
    emit({Opcode::ORI, rd, rd, 0, 0});
}

void
AsmBuilder::laAddr(LogReg rd, Addr addr)
{
    li(rd, addr);
}

void AsmBuilder::move(LogReg rd, LogReg rs) { add(rd, rs, reg::zero); }
void AsmBuilder::nop() { emit(makeNop()); }
void AsmBuilder::halt() { emit(makeHalt()); }
void AsmBuilder::out(LogReg rs) { emit({Opcode::OUT, 0, rs, 0, 0}); }

void
AsmBuilder::push_(LogReg rs)
{
    addi(reg::sp, reg::sp, -4);
    sw(rs, 0, reg::sp);
}

void
AsmBuilder::pop_(LogReg rd)
{
    lw(rd, 0, reg::sp);
    addi(reg::sp, reg::sp, 4);
}

void
AsmBuilder::enter(int frame_bytes)
{
    DMT_ASSERT(frame_bytes >= 4 && frame_bytes % 4 == 0,
               "bad frame size %d", frame_bytes);
    addi(reg::sp, reg::sp, -frame_bytes);
    sw(reg::ra, frame_bytes - 4, reg::sp);
}

void
AsmBuilder::leave(int frame_bytes)
{
    DMT_ASSERT(frame_bytes >= 4 && frame_bytes % 4 == 0,
               "bad frame size %d", frame_bytes);
    lw(reg::ra, frame_bytes - 4, reg::sp);
    addi(reg::sp, reg::sp, frame_bytes);
    ret();
}

Program
AsmBuilder::finish()
{
    DMT_ASSERT(!finished, "finish() called twice");
    finished = true;

    for (const auto &fix : fixups) {
        const auto &info = labels.at(static_cast<size_t>(fix.label));
        if (!info.bound) {
            fatal("unbound label %d ('%s')", fix.label,
                  info.name.c_str());
        }
        Instruction &inst = text.at(fix.text_idx);
        switch (fix.kind) {
          case FixKind::Branch:
            inst.imm = static_cast<i32>(
                static_cast<i64>(info.addr)
                - static_cast<i64>(pcAt(fix.text_idx)) - 4);
            break;
          case FixKind::Jump:
            inst.imm = static_cast<i32>(info.addr);
            break;
          case FixKind::LuiHi:
            inst.imm = static_cast<i32>(info.addr >> 16);
            break;
          case FixKind::OriLo:
            inst.imm = static_cast<i32>(info.addr & 0xFFFF);
            break;
        }
    }

    Program prog;
    prog.text = std::move(text);
    prog.data = std::move(data);
    prog.entry = Program::kTextBase;
    for (const auto &info : labels) {
        if (info.bound && !info.name.empty())
            prog.symbols[info.name] = info.addr;
    }
    return prog;
}

} // namespace dmt
