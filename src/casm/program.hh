/**
 * @file
 * Executable program image: a text segment of decoded instructions, an
 * initialized data segment, and a symbol table.  Produced by the textual
 * assembler or the programmatic AsmBuilder; consumed by the functional
 * simulator and the DMT engine.
 */

#ifndef DMT_CASM_PROGRAM_HH
#define DMT_CASM_PROGRAM_HH

#include <map>
#include <string>
#include <vector>

#include "isa/inst.hh"

namespace dmt
{

/** A loaded program image. */
class Program
{
  public:
    /** Base address of the text segment. */
    static constexpr Addr kTextBase = 0x00400000;
    /** Base address of the initialized data segment. */
    static constexpr Addr kDataBase = 0x10000000;
    /** Initial stack pointer (stack grows down). */
    static constexpr Addr kStackTop = 0x7ffff000;

    /** Instructions, text[i] lives at kTextBase + 4*i. */
    std::vector<Instruction> text;
    /** Initialized bytes at kDataBase. */
    std::vector<u8> data;
    /** Execution entry point. */
    Addr entry = kTextBase;
    /** Label name -> address (text or data). */
    std::map<std::string, Addr> symbols;

    /** Number of instructions in the text segment. */
    size_t size() const { return text.size(); }

    /** First address past the text segment. */
    Addr
    textEnd() const
    {
        return kTextBase + static_cast<Addr>(text.size()) * 4;
    }

    /** True when @p pc addresses an instruction of this program. */
    bool
    validTextAddr(Addr pc) const
    {
        return pc >= kTextBase && pc < textEnd() && (pc & 3) == 0;
    }

    /**
     * Instruction at @p pc.  Out-of-range fetches (a speculative thread
     * running off the end) return HALT so the thread stops cleanly.
     */
    const Instruction &fetch(Addr pc) const;

    /** Address of symbol @p name; fatal() when missing. */
    Addr symbol(const std::string &name) const;

    /** True when the symbol table has @p name. */
    bool hasSymbol(const std::string &name) const;
};

} // namespace dmt

#endif // DMT_CASM_PROGRAM_HH
