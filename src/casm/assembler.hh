/**
 * @file
 * Two-pass textual assembler for the simulator ISA.
 *
 * Syntax summary:
 *
 *     # comment, ; comment
 *             .text
 *     main:   addi  $sp, $sp, -16
 *             sw    $ra, 0($sp)
 *             jal   fib
 *             li    $t0, 0x12345678      # pseudo: lui+ori
 *             la    $t1, table           # pseudo: lui+ori
 *             move  $a0, $v0             # pseudo
 *             beqz  $a0, done            # pseudo
 *             b     loop                 # pseudo
 *             ret                        # pseudo: jr $ra
 *     done:   halt
 *             .data
 *     table:  .word 1, 2, 3
 *             .half 7, 9
 *             .byte 1
 *             .space 64
 *             .align 4
 *             .asciiz "hello"
 *
 * The optional ".entry label" directive sets the start PC (default: the
 * first text instruction).
 */

#ifndef DMT_CASM_ASSEMBLER_HH
#define DMT_CASM_ASSEMBLER_HH

#include <string>
#include <string_view>
#include <vector>

#include "casm/program.hh"

namespace dmt
{

/** One assembly diagnostic. */
struct AsmError
{
    int line;            ///< 1-based source line
    std::string message;
};

/** Result of an assembly run. */
struct AsmResult
{
    bool ok = false;
    Program program;
    std::vector<AsmError> errors;

    /** All diagnostics joined, one per line. */
    std::string errorText() const;
};

/** Assemble @p source into a program image. */
AsmResult assembleSource(std::string_view source);

/** Assemble, fatal()ing on any error — for known-good internal sources. */
Program assembleOrDie(std::string_view source);

} // namespace dmt

#endif // DMT_CASM_ASSEMBLER_HH
