/**
 * @file
 * Programmatic assembler: a type-safe builder for constructing Program
 * images from C++.  Used by the synthetic SPEC95int-like workloads where
 * hand-maintaining thousands of lines of textual assembly would be
 * error-prone.
 *
 * Labels are integer handles; forward references are recorded as fixups
 * and patched in finish().
 */

#ifndef DMT_CASM_BUILDER_HH
#define DMT_CASM_BUILDER_HH

#include <string>
#include <vector>

#include "casm/program.hh"
#include "isa/regs.hh"

namespace dmt
{

/** Builder for Program images. */
class AsmBuilder
{
  public:
    using Label = int;

    AsmBuilder() = default;

    /** Create a new unbound label; @p name (if any) lands in symbols. */
    Label newLabel(std::string name = "");

    /** Bind @p l to the current text position. */
    void bind(Label l);

    /** Bind @p l to the current data position. */
    void bindData(Label l);

    /** Create a label bound to the current text position. */
    Label
    here(std::string name = "")
    {
        Label l = newLabel(std::move(name));
        bind(l);
        return l;
    }

    // ---- data section -------------------------------------------------

    /** Current data address. */
    Addr dataAddr() const;

    /** Append words; returns the address of the first. */
    Addr dataWords(const std::vector<u32> &values);

    /** Append @p n zero bytes; returns the start address. */
    Addr dataSpace(u32 n);

    /** Append raw bytes; returns the start address. */
    Addr dataBytes(const std::vector<u8> &bytes);

    /** Pad the data section to an @p n-byte boundary. */
    void dataAlign(u32 n);

    // ---- ALU -----------------------------------------------------------

    void add(LogReg rd, LogReg rs, LogReg rt);
    void sub(LogReg rd, LogReg rs, LogReg rt);
    void and_(LogReg rd, LogReg rs, LogReg rt);
    void or_(LogReg rd, LogReg rs, LogReg rt);
    void xor_(LogReg rd, LogReg rs, LogReg rt);
    void nor_(LogReg rd, LogReg rs, LogReg rt);
    void slt(LogReg rd, LogReg rs, LogReg rt);
    void sltu(LogReg rd, LogReg rs, LogReg rt);
    void mul(LogReg rd, LogReg rs, LogReg rt);
    void mulh(LogReg rd, LogReg rs, LogReg rt);
    void div_(LogReg rd, LogReg rs, LogReg rt);
    void divu(LogReg rd, LogReg rs, LogReg rt);
    void rem(LogReg rd, LogReg rs, LogReg rt);
    void remu(LogReg rd, LogReg rs, LogReg rt);
    void sll(LogReg rd, LogReg rs, int shamt);
    void srl(LogReg rd, LogReg rs, int shamt);
    void sra(LogReg rd, LogReg rs, int shamt);
    void sllv(LogReg rd, LogReg rs, LogReg rt);
    void srlv(LogReg rd, LogReg rs, LogReg rt);
    void srav(LogReg rd, LogReg rs, LogReg rt);
    void addi(LogReg rd, LogReg rs, i32 imm);
    void andi(LogReg rd, LogReg rs, u32 imm);
    void ori(LogReg rd, LogReg rs, u32 imm);
    void xori(LogReg rd, LogReg rs, u32 imm);
    void slti(LogReg rd, LogReg rs, i32 imm);
    void sltiu(LogReg rd, LogReg rs, i32 imm);
    void lui(LogReg rd, u32 imm16);

    // ---- memory ---------------------------------------------------------

    void lw(LogReg rd, i32 off, LogReg base);
    void lh(LogReg rd, i32 off, LogReg base);
    void lhu(LogReg rd, i32 off, LogReg base);
    void lb(LogReg rd, i32 off, LogReg base);
    void lbu(LogReg rd, i32 off, LogReg base);
    void sw(LogReg rt, i32 off, LogReg base);
    void sh(LogReg rt, i32 off, LogReg base);
    void sb(LogReg rt, i32 off, LogReg base);

    // ---- control --------------------------------------------------------

    void beq(LogReg rs, LogReg rt, Label target);
    void bne(LogReg rs, LogReg rt, Label target);
    void blt(LogReg rs, LogReg rt, Label target);
    void bge(LogReg rs, LogReg rt, Label target);
    void bltu(LogReg rs, LogReg rt, Label target);
    void bgeu(LogReg rs, LogReg rt, Label target);
    void beqz(LogReg rs, Label target);
    void bnez(LogReg rs, Label target);
    void bltz(LogReg rs, Label target);
    void bgez(LogReg rs, Label target);
    void bgtz(LogReg rs, Label target);
    void blez(LogReg rs, Label target);
    void b(Label target);
    void j(Label target);
    void jal(Label target);
    void jr(LogReg rs);
    void jalr(LogReg rs);
    void ret();

    // ---- pseudo / misc ----------------------------------------------------

    void li(LogReg rd, u32 value);
    void la(LogReg rd, Label data_label);
    void laAddr(LogReg rd, Addr addr);
    void move(LogReg rd, LogReg rs);
    void nop();
    void halt();
    void out(LogReg rs);
    void push_(LogReg rs);
    void pop_(LogReg rd);

    /**
     * Function prologue: reserve @p frame_bytes of stack and save $ra in
     * the top slot.  frame_bytes must be >= 4 and word aligned.
     */
    void enter(int frame_bytes);

    /** Matching epilogue: restore $ra, pop the frame, return. */
    void leave(int frame_bytes);

    /** Number of instructions emitted so far. */
    size_t textSize() const { return text.size(); }

    /**
     * Finalize: resolve all fixups and hand out the image.  fatal()s on
     * unbound labels.  The builder must not be reused afterwards.
     */
    Program finish();

  private:
    enum class FixKind { Branch, Jump, LuiHi, OriLo };

    struct LabelInfo
    {
        std::string name;
        bool bound = false;
        Addr addr = 0;
    };

    struct Fixup
    {
        size_t text_idx;
        Label label;
        FixKind kind;
    };

    Addr pcAt(size_t idx) const;
    void emit(Instruction inst);
    void emitBranch(Opcode op, LogReg rs, LogReg rt, Label target);

    std::vector<Instruction> text;
    std::vector<u8> data;
    std::vector<LabelInfo> labels;
    std::vector<Fixup> fixups;
    bool finished = false;
};

} // namespace dmt

#endif // DMT_CASM_BUILDER_HH
