#include "casm/assembler.hh"

#include <functional>
#include <optional>

#include "common/log.hh"
#include "common/strutil.hh"
#include "isa/regs.hh"

namespace dmt
{

std::string
AsmResult::errorText() const
{
    std::string out;
    for (const auto &e : errors)
        out += strprintf("line %d: %s\n", e.line, e.message.c_str());
    return out;
}

namespace
{

/** Parsed form of one source statement. */
struct Statement
{
    int line = 0;
    std::vector<std::string> labels;
    std::string mnemonic;            // lowercased; empty for label-only
    std::vector<std::string> operands;
    std::string stringArg;           // for .asciiz
    bool hasStringArg = false;
};

/** Segment being filled. */
enum class Segment { Text, Data };

class AsmContext
{
  public:
    AsmContext() = default;

    Program program;
    std::vector<AsmError> errors;
    std::string entryLabel;

    void
    error(int line, std::string msg)
    {
        errors.push_back({line, std::move(msg)});
    }

    bool
    lookup(const std::string &sym, Addr *out) const
    {
        auto it = program.symbols.find(sym);
        if (it == program.symbols.end())
            return false;
        *out = it->second;
        return true;
    }
};

bool
splitStatement(const std::string &raw, int line_no, Statement *out,
               std::string *err)
{
    std::string s = raw;
    // Strip comments, but not inside string literals.
    bool in_str = false;
    for (size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '"' && (i == 0 || s[i - 1] != '\\'))
            in_str = !in_str;
        if (!in_str && (s[i] == '#' || s[i] == ';')) {
            s.resize(i);
            break;
        }
    }

    out->line = line_no;

    std::string_view rest = trim(s);
    // Peel off leading labels.
    while (true) {
        size_t colon = rest.find(':');
        if (colon == std::string_view::npos)
            break;
        std::string_view head = trim(rest.substr(0, colon));
        // A colon inside an operand list (unlikely) would have spaces or
        // commas before it; only treat it as a label if head looks like
        // an identifier.
        bool ident = !head.empty();
        for (char c : head) {
            if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_'
                  || c == '.')) {
                ident = false;
                break;
            }
        }
        if (!ident)
            break;
        out->labels.emplace_back(head);
        rest = trim(rest.substr(colon + 1));
    }

    if (rest.empty())
        return true;

    // Mnemonic is the first whitespace-delimited token.
    size_t sp = rest.find_first_of(" \t");
    out->mnemonic = toLower(rest.substr(0, sp));
    if (sp == std::string_view::npos)
        return true;
    std::string_view ops = trim(rest.substr(sp));

    if (out->mnemonic == ".asciiz") {
        // Single quoted string operand.
        if (ops.size() < 2 || ops.front() != '"' || ops.back() != '"') {
            *err = ".asciiz expects a quoted string";
            return false;
        }
        std::string unescaped;
        for (size_t i = 1; i + 1 < ops.size(); ++i) {
            char c = ops[i];
            if (c == '\\' && i + 2 < ops.size()) {
                ++i;
                switch (ops[i]) {
                  case 'n': c = '\n'; break;
                  case 't': c = '\t'; break;
                  case '0': c = '\0'; break;
                  case '\\': c = '\\'; break;
                  case '"': c = '"'; break;
                  default: c = ops[i]; break;
                }
            }
            unescaped.push_back(c);
        }
        out->stringArg = unescaped;
        out->hasStringArg = true;
        return true;
    }

    // Comma-separated operands; memory operands keep their parentheses.
    std::string cur;
    for (char c : ops) {
        if (c == ',') {
            auto t = trim(cur);
            if (!t.empty())
                out->operands.emplace_back(t);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    auto t = trim(cur);
    if (!t.empty())
        out->operands.emplace_back(t);
    return true;
}

/** Value of an immediate operand: integer literal or symbol[+/-offset]. */
bool
evalImm(const AsmContext &ctx, std::string_view text, i64 *out)
{
    text = trim(text);
    i64 v;
    if (parseInt(text, &v)) {
        *out = v;
        return true;
    }
    // symbol, symbol+N, symbol-N
    size_t pos = text.find_first_of("+-", 1);
    std::string sym(trim(text.substr(0, pos)));
    Addr base;
    if (!ctx.lookup(sym, &base))
        return false;
    i64 off = 0;
    if (pos != std::string_view::npos) {
        if (!parseInt(text.substr(pos), &off))
            return false;
    }
    *out = static_cast<i64>(base) + off;
    return true;
}

/** Parse "imm(reg)" / "(reg)" / "imm" memory operands. */
bool
parseMemOperand(const AsmContext &ctx, std::string_view text, LogReg *base,
                i64 *offset)
{
    text = trim(text);
    size_t open = text.find('(');
    if (open == std::string_view::npos) {
        // Bare absolute address with $zero base.
        if (!evalImm(ctx, text, offset))
            return false;
        *base = 0;
        return true;
    }
    size_t close = text.rfind(')');
    if (close == std::string_view::npos || close < open)
        return false;
    std::string_view off_text = trim(text.substr(0, open));
    std::string_view reg_text = text.substr(open + 1, close - open - 1);
    *offset = 0;
    if (!off_text.empty() && !evalImm(ctx, off_text, offset))
        return false;
    return parseReg(reg_text, base);
}

/**
 * Size in instructions of the expansion of a text statement.  Must agree
 * exactly with emitText() below.
 */
int
textSize(const Statement &st)
{
    const std::string &m = st.mnemonic;
    if (m == "li") {
        i64 v;
        if (st.operands.size() == 2 && parseInt(st.operands[1], &v)
            && v >= -32768 && v <= 0xFFFF) {
            return 1;
        }
        return 2;
    }
    if (m == "la")
        return 2;
    if (m == "push" || m == "pop")
        return 2;
    return 1;
}

struct OpPattern
{
    Opcode op;
    enum Kind
    {
        RRR,       // rd, rs, rt
        RRI,       // rd, rs, imm
        ShiftImm,  // rd, rs, shamt
        Mem,       // reg, imm(base)
        BranchRR,  // rs, rt, label
        Jump,      // label
        JumpReg,   // rs
        Lui,       // rd, imm
        None,      // no operands
        OutOp,     // rs
    } kind;
};

const std::map<std::string, OpPattern> &
opPatterns()
{
    static const std::map<std::string, OpPattern> table = {
        {"add", {Opcode::ADD, OpPattern::RRR}},
        {"sub", {Opcode::SUB, OpPattern::RRR}},
        {"and", {Opcode::AND, OpPattern::RRR}},
        {"or", {Opcode::OR, OpPattern::RRR}},
        {"xor", {Opcode::XOR, OpPattern::RRR}},
        {"nor", {Opcode::NOR, OpPattern::RRR}},
        {"sllv", {Opcode::SLLV, OpPattern::RRR}},
        {"srlv", {Opcode::SRLV, OpPattern::RRR}},
        {"srav", {Opcode::SRAV, OpPattern::RRR}},
        {"slt", {Opcode::SLT, OpPattern::RRR}},
        {"sltu", {Opcode::SLTU, OpPattern::RRR}},
        {"mul", {Opcode::MUL, OpPattern::RRR}},
        {"mulh", {Opcode::MULH, OpPattern::RRR}},
        {"div", {Opcode::DIV, OpPattern::RRR}},
        {"divu", {Opcode::DIVU, OpPattern::RRR}},
        {"rem", {Opcode::REM, OpPattern::RRR}},
        {"remu", {Opcode::REMU, OpPattern::RRR}},
        {"sll", {Opcode::SLL, OpPattern::ShiftImm}},
        {"srl", {Opcode::SRL, OpPattern::ShiftImm}},
        {"sra", {Opcode::SRA, OpPattern::ShiftImm}},
        {"addi", {Opcode::ADDI, OpPattern::RRI}},
        {"andi", {Opcode::ANDI, OpPattern::RRI}},
        {"ori", {Opcode::ORI, OpPattern::RRI}},
        {"xori", {Opcode::XORI, OpPattern::RRI}},
        {"slti", {Opcode::SLTI, OpPattern::RRI}},
        {"sltiu", {Opcode::SLTIU, OpPattern::RRI}},
        {"lui", {Opcode::LUI, OpPattern::Lui}},
        {"lw", {Opcode::LW, OpPattern::Mem}},
        {"lh", {Opcode::LH, OpPattern::Mem}},
        {"lhu", {Opcode::LHU, OpPattern::Mem}},
        {"lb", {Opcode::LB, OpPattern::Mem}},
        {"lbu", {Opcode::LBU, OpPattern::Mem}},
        {"sw", {Opcode::SW, OpPattern::Mem}},
        {"sh", {Opcode::SH, OpPattern::Mem}},
        {"sb", {Opcode::SB, OpPattern::Mem}},
        {"beq", {Opcode::BEQ, OpPattern::BranchRR}},
        {"bne", {Opcode::BNE, OpPattern::BranchRR}},
        {"blt", {Opcode::BLT, OpPattern::BranchRR}},
        {"bge", {Opcode::BGE, OpPattern::BranchRR}},
        {"bltu", {Opcode::BLTU, OpPattern::BranchRR}},
        {"bgeu", {Opcode::BGEU, OpPattern::BranchRR}},
        {"j", {Opcode::J, OpPattern::Jump}},
        {"jal", {Opcode::JAL, OpPattern::Jump}},
        {"jr", {Opcode::JR, OpPattern::JumpReg}},
        {"jalr", {Opcode::JALR, OpPattern::JumpReg}},
        {"nop", {Opcode::NOP, OpPattern::None}},
        {"halt", {Opcode::HALT, OpPattern::None}},
        {"out", {Opcode::OUT, OpPattern::OutOp}},
    };
    return table;
}

class Emitter
{
  public:
    Emitter(AsmContext &ctx_, bool final_pass)
        : ctx(ctx_), final(final_pass)
    {
    }

    /** Emit the expansion of @p st; returns false and records an error
     *  on malformed statements. */
    bool emitText(const Statement &st);

  private:
    AsmContext &ctx;
    bool final;

    Addr
    pc() const
    {
        return Program::kTextBase
            + static_cast<Addr>(ctx.program.text.size()) * 4;
    }

    void
    push(Instruction inst)
    {
        ctx.program.text.push_back(inst);
    }

    bool
    err(const Statement &st, std::string msg)
    {
        if (final)
            ctx.error(st.line, std::move(msg));
        // During pass 1 errors are suppressed — unresolved forward
        // references are expected; sizes are still correct.
        return false;
    }

    bool reg(const Statement &st, int i, LogReg *out);
    bool imm(const Statement &st, int i, i64 *out);
    bool wantOps(const Statement &st, size_t n);

    bool emitReal(const Statement &st, const OpPattern &pat);
    bool emitPseudo(const Statement &st);
    void emitLi(LogReg rd, i64 value);
};

bool
Emitter::wantOps(const Statement &st, size_t n)
{
    if (st.operands.size() != n) {
        return err(st, strprintf("'%s' expects %zu operands, got %zu",
                                 st.mnemonic.c_str(), n,
                                 st.operands.size()));
    }
    return true;
}

bool
Emitter::reg(const Statement &st, int i, LogReg *out)
{
    if (i >= static_cast<int>(st.operands.size()))
        return err(st, "missing register operand");
    if (!parseReg(st.operands[static_cast<size_t>(i)], out)) {
        return err(st, strprintf("bad register '%s'",
                                 st.operands[static_cast<size_t>(i)]
                                     .c_str()));
    }
    return true;
}

bool
Emitter::imm(const Statement &st, int i, i64 *out)
{
    if (i >= static_cast<int>(st.operands.size()))
        return err(st, "missing immediate operand");
    const std::string &text = st.operands[static_cast<size_t>(i)];
    if (!evalImm(ctx, text, out)) {
        // Unresolved forward reference: fine in pass 1.
        if (!final) {
            *out = 0;
            return true;
        }
        return err(st, strprintf("cannot evaluate '%s'", text.c_str()));
    }
    return true;
}

void
Emitter::emitLi(LogReg rd, i64 value)
{
    const u32 v = static_cast<u32>(value);
    if (value >= -32768 && value <= 32767) {
        push({Opcode::ADDI, rd, reg::zero, 0,
              static_cast<i32>(value)});
    } else if (value >= 0 && value <= 0xFFFF) {
        push({Opcode::ORI, rd, reg::zero, 0, static_cast<i32>(value)});
    } else {
        push({Opcode::LUI, rd, 0, 0, static_cast<i32>(v >> 16)});
        push({Opcode::ORI, rd, rd, 0, static_cast<i32>(v & 0xFFFF)});
    }
}

bool
Emitter::emitReal(const Statement &st, const OpPattern &pat)
{
    Instruction inst;
    inst.op = pat.op;
    switch (pat.kind) {
      case OpPattern::RRR:
        if (!wantOps(st, 3) || !reg(st, 0, &inst.rd)
            || !reg(st, 1, &inst.rs) || !reg(st, 2, &inst.rt)) {
            return false;
        }
        break;
      case OpPattern::RRI: {
          i64 v;
          if (!wantOps(st, 3) || !reg(st, 0, &inst.rd)
              || !reg(st, 1, &inst.rs) || !imm(st, 2, &v)) {
              return false;
          }
          inst.imm = static_cast<i32>(v);
          break;
      }
      case OpPattern::ShiftImm: {
          i64 v;
          if (!wantOps(st, 3) || !reg(st, 0, &inst.rd)
              || !reg(st, 1, &inst.rs) || !imm(st, 2, &v)) {
              return false;
          }
          if (v < 0 || v > 31)
              return err(st, "shift amount out of range");
          inst.imm = static_cast<i32>(v);
          break;
      }
      case OpPattern::Mem: {
          LogReg value_reg;
          LogReg base;
          i64 off;
          if (!wantOps(st, 2) || !reg(st, 0, &value_reg))
              return false;
          if (!parseMemOperand(ctx, st.operands[1], &base, &off)) {
              if (!final) {
                  base = 0;
                  off = 0;
              } else {
                  return err(st, strprintf("bad memory operand '%s'",
                                           st.operands[1].c_str()));
              }
          }
          if (final && (off < -32768 || off > 32767))
              return err(st, "memory offset out of range");
          inst.rs = base;
          inst.imm = static_cast<i32>(off);
          if (inst.isStore()) {
              inst.rt = value_reg;
          } else {
              inst.rd = value_reg;
          }
          break;
      }
      case OpPattern::BranchRR: {
          i64 target;
          if (!wantOps(st, 3) || !reg(st, 0, &inst.rs)
              || !reg(st, 1, &inst.rt) || !imm(st, 2, &target)) {
              return false;
          }
          inst.imm = static_cast<i32>(static_cast<i64>(target)
                                      - static_cast<i64>(pc()) - 4);
          break;
      }
      case OpPattern::Jump: {
          i64 target;
          if (!wantOps(st, 1) || !imm(st, 0, &target))
              return false;
          inst.imm = static_cast<i32>(target);
          if (inst.op == Opcode::JAL)
              inst.rd = reg::ra;
          break;
      }
      case OpPattern::JumpReg:
        if (inst.op == Opcode::JALR) {
            // jalr rs  (link in $ra)  or  jalr rd, rs
            if (st.operands.size() == 1) {
                if (!reg(st, 0, &inst.rs))
                    return false;
                inst.rd = reg::ra;
            } else if (!wantOps(st, 2) || !reg(st, 0, &inst.rd)
                       || !reg(st, 1, &inst.rs)) {
                return false;
            }
        } else {
            if (!wantOps(st, 1) || !reg(st, 0, &inst.rs))
                return false;
        }
        break;
      case OpPattern::Lui: {
          i64 v;
          if (!wantOps(st, 2) || !reg(st, 0, &inst.rd) || !imm(st, 1, &v))
              return false;
          if (final && (v < 0 || v > 0xFFFF))
              return err(st, "lui immediate out of range");
          inst.imm = static_cast<i32>(v & 0xFFFF);
          break;
      }
      case OpPattern::None:
        if (!wantOps(st, 0))
            return false;
        break;
      case OpPattern::OutOp:
        if (!wantOps(st, 1) || !reg(st, 0, &inst.rs))
            return false;
        break;
    }
    push(inst);
    return true;
}

bool
Emitter::emitPseudo(const Statement &st)
{
    const std::string &m = st.mnemonic;
    if (m == "li") {
        LogReg rd;
        i64 v;
        if (!wantOps(st, 2) || !reg(st, 0, &rd) || !imm(st, 1, &v))
            return false;
        // Symbolic values always use the wide form so that pass-1 sizing
        // (which cannot resolve forward references) stays correct.
        i64 literal;
        if (parseInt(st.operands[1], &literal) && literal >= -32768
            && literal <= 0xFFFF) {
            emitLi(rd, v);
        } else {
            const u32 addr = static_cast<u32>(v);
            push({Opcode::LUI, rd, 0, 0, static_cast<i32>(addr >> 16)});
            push({Opcode::ORI, rd, rd, 0,
                  static_cast<i32>(addr & 0xFFFF)});
        }
        return true;
    }
    if (m == "la") {
        LogReg rd;
        i64 v;
        if (!wantOps(st, 2) || !reg(st, 0, &rd) || !imm(st, 1, &v))
            return false;
        const u32 addr = static_cast<u32>(v);
        push({Opcode::LUI, rd, 0, 0, static_cast<i32>(addr >> 16)});
        push({Opcode::ORI, rd, rd, 0, static_cast<i32>(addr & 0xFFFF)});
        return true;
    }
    if (m == "move") {
        LogReg rd;
        LogReg rs;
        if (!wantOps(st, 2) || !reg(st, 0, &rd) || !reg(st, 1, &rs))
            return false;
        push({Opcode::ADD, rd, rs, reg::zero, 0});
        return true;
    }
    if (m == "not") {
        LogReg rd;
        LogReg rs;
        if (!wantOps(st, 2) || !reg(st, 0, &rd) || !reg(st, 1, &rs))
            return false;
        push({Opcode::NOR, rd, rs, reg::zero, 0});
        return true;
    }
    if (m == "neg") {
        LogReg rd;
        LogReg rs;
        if (!wantOps(st, 2) || !reg(st, 0, &rd) || !reg(st, 1, &rs))
            return false;
        push({Opcode::SUB, rd, reg::zero, rs, 0});
        return true;
    }
    if (m == "subi") {
        LogReg rd;
        LogReg rs;
        i64 v;
        if (!wantOps(st, 3) || !reg(st, 0, &rd) || !reg(st, 1, &rs)
            || !imm(st, 2, &v)) {
            return false;
        }
        push({Opcode::ADDI, rd, rs, 0, static_cast<i32>(-v)});
        return true;
    }
    if (m == "b") {
        i64 target;
        if (!wantOps(st, 1) || !imm(st, 0, &target))
            return false;
        Instruction inst{Opcode::BEQ, 0, reg::zero, reg::zero, 0};
        inst.imm = static_cast<i32>(target - static_cast<i64>(pc()) - 4);
        push(inst);
        return true;
    }
    if (m == "beqz" || m == "bnez" || m == "bltz" || m == "bgez"
        || m == "bgtz" || m == "blez") {
        LogReg rs;
        i64 target;
        if (!wantOps(st, 2) || !reg(st, 0, &rs) || !imm(st, 1, &target))
            return false;
        Instruction inst;
        if (m == "beqz") {
            inst = {Opcode::BEQ, 0, rs, reg::zero, 0};
        } else if (m == "bnez") {
            inst = {Opcode::BNE, 0, rs, reg::zero, 0};
        } else if (m == "bltz") {
            inst = {Opcode::BLT, 0, rs, reg::zero, 0};
        } else if (m == "bgez") {
            inst = {Opcode::BGE, 0, rs, reg::zero, 0};
        } else if (m == "bgtz") {
            inst = {Opcode::BLT, 0, reg::zero, rs, 0};
        } else { // blez: rs <= 0  <=>  0 >= rs
            inst = {Opcode::BGE, 0, reg::zero, rs, 0};
        }
        inst.imm = static_cast<i32>(target - static_cast<i64>(pc()) - 4);
        push(inst);
        return true;
    }
    if (m == "ret") {
        if (!wantOps(st, 0))
            return false;
        push({Opcode::JR, 0, reg::ra, 0, 0});
        return true;
    }
    if (m == "call") {
        i64 target;
        if (!wantOps(st, 1) || !imm(st, 0, &target))
            return false;
        push({Opcode::JAL, reg::ra, 0, 0, static_cast<i32>(target)});
        return true;
    }
    if (m == "push") {
        LogReg rs;
        if (!wantOps(st, 1) || !reg(st, 0, &rs))
            return false;
        push({Opcode::ADDI, reg::sp, reg::sp, 0, -4});
        push({Opcode::SW, 0, reg::sp, rs, 0});
        return true;
    }
    if (m == "pop") {
        LogReg rd;
        if (!wantOps(st, 1) || !reg(st, 0, &rd))
            return false;
        push({Opcode::LW, rd, reg::sp, 0, 0});
        push({Opcode::ADDI, reg::sp, reg::sp, 0, 4});
        return true;
    }
    return err(st, strprintf("unknown mnemonic '%s'", m.c_str()));
}

bool
Emitter::emitText(const Statement &st)
{
    auto it = opPatterns().find(st.mnemonic);
    if (it != opPatterns().end())
        return emitReal(st, it->second);
    return emitPseudo(st);
}

} // namespace

AsmResult
assembleSource(std::string_view source)
{
    AsmResult result;
    AsmContext ctx;

    // Parse all lines once.
    std::vector<Statement> stmts;
    const auto lines = splitLines(source);
    for (size_t i = 0; i < lines.size(); ++i) {
        Statement st;
        std::string perr;
        if (!splitStatement(lines[i], static_cast<int>(i) + 1, &st,
                            &perr)) {
            ctx.error(static_cast<int>(i) + 1, perr);
            continue;
        }
        if (!st.labels.empty() || !st.mnemonic.empty())
            stmts.push_back(std::move(st));
    }

    // Pass 1: lay out addresses and define symbols.
    {
        Segment seg = Segment::Text;
        Addr text_pc = Program::kTextBase;
        Addr data_off = 0;
        for (const auto &st : stmts) {
            const Addr here = seg == Segment::Text
                ? text_pc : Program::kDataBase + data_off;
            for (const auto &label : st.labels) {
                if (ctx.program.symbols.count(label)) {
                    ctx.error(st.line, strprintf("duplicate label '%s'",
                                                 label.c_str()));
                } else {
                    ctx.program.symbols[label] = here;
                }
            }
            if (st.mnemonic.empty())
                continue;
            if (st.mnemonic == ".text") {
                seg = Segment::Text;
            } else if (st.mnemonic == ".data") {
                seg = Segment::Data;
            } else if (st.mnemonic == ".entry") {
                if (st.operands.size() == 1)
                    ctx.entryLabel = st.operands[0];
                else
                    ctx.error(st.line, ".entry expects one label");
            } else if (st.mnemonic[0] == '.') {
                if (seg != Segment::Data) {
                    ctx.error(st.line, strprintf(
                        "data directive '%s' outside .data",
                        st.mnemonic.c_str()));
                    continue;
                }
                if (st.mnemonic == ".word") {
                    data_off += 4 * static_cast<Addr>(st.operands.size());
                } else if (st.mnemonic == ".half") {
                    data_off += 2 * static_cast<Addr>(st.operands.size());
                } else if (st.mnemonic == ".byte") {
                    data_off += static_cast<Addr>(st.operands.size());
                } else if (st.mnemonic == ".space") {
                    i64 n = 0;
                    if (st.operands.size() != 1
                        || !parseInt(st.operands[0], &n) || n < 0) {
                        ctx.error(st.line, ".space expects a size");
                    } else {
                        data_off += static_cast<Addr>(n);
                    }
                } else if (st.mnemonic == ".align") {
                    i64 n = 0;
                    if (st.operands.size() != 1
                        || !parseInt(st.operands[0], &n) || n <= 0) {
                        ctx.error(st.line, ".align expects an alignment");
                    } else {
                        const Addr a = static_cast<Addr>(n);
                        data_off = (data_off + a - 1) / a * a;
                    }
                } else if (st.mnemonic == ".asciiz") {
                    data_off += static_cast<Addr>(st.stringArg.size()) + 1;
                } else {
                    ctx.error(st.line, strprintf("unknown directive '%s'",
                                                 st.mnemonic.c_str()));
                }
            } else {
                if (seg != Segment::Text) {
                    ctx.error(st.line, "instruction outside .text");
                    continue;
                }
                // Pass-1 sizing: emit into a scratch, or compute size.
                text_pc += 4 * static_cast<Addr>(textSize(st));
            }
        }
        // Fix label addresses: labels bound to data addresses already
        // recorded relative to kDataBase during the walk above.
    }

    if (!ctx.errors.empty()) {
        result.errors = ctx.errors;
        return result;
    }

    // Pass 2: emit code and data.
    {
        Segment seg = Segment::Text;
        Emitter emitter(ctx, true);
        auto &data = ctx.program.data;
        auto emit_scalar = [&](const Statement &st, int bytes) {
            for (const auto &op : st.operands) {
                i64 v;
                if (!evalImm(ctx, op, &v)) {
                    ctx.error(st.line, strprintf("bad data value '%s'",
                                                 op.c_str()));
                    v = 0;
                }
                for (int b = 0; b < bytes; ++b)
                    data.push_back(static_cast<u8>(v >> (8 * b)));
            }
        };
        for (const auto &st : stmts) {
            if (st.mnemonic.empty())
                continue;
            if (st.mnemonic == ".text") {
                seg = Segment::Text;
            } else if (st.mnemonic == ".data") {
                seg = Segment::Data;
            } else if (st.mnemonic == ".entry") {
                // handled in pass 1
            } else if (st.mnemonic[0] == '.') {
                if (st.mnemonic == ".word") {
                    emit_scalar(st, 4);
                } else if (st.mnemonic == ".half") {
                    emit_scalar(st, 2);
                } else if (st.mnemonic == ".byte") {
                    emit_scalar(st, 1);
                } else if (st.mnemonic == ".space") {
                    i64 n = 0;
                    parseInt(st.operands[0], &n);
                    data.insert(data.end(), static_cast<size_t>(n), 0);
                } else if (st.mnemonic == ".align") {
                    i64 n = 1;
                    parseInt(st.operands[0], &n);
                    const Addr a = static_cast<Addr>(n);
                    while (data.size() % a != 0)
                        data.push_back(0);
                } else if (st.mnemonic == ".asciiz") {
                    for (char c : st.stringArg)
                        data.push_back(static_cast<u8>(c));
                    data.push_back(0);
                }
            } else if (seg == Segment::Text) {
                const size_t before = ctx.program.text.size();
                const int expected = textSize(st);
                if (!emitter.emitText(st)) {
                    // Keep layout identical to pass 1 even on error.
                    while (ctx.program.text.size()
                           < before + static_cast<size_t>(expected)) {
                        ctx.program.text.push_back(makeNop());
                    }
                } else {
                    DMT_ASSERT(ctx.program.text.size()
                               == before + static_cast<size_t>(expected),
                               "pass1/pass2 size mismatch for '%s'",
                               st.mnemonic.c_str());
                }
            }
        }
    }

    if (!ctx.entryLabel.empty()) {
        Addr e;
        if (ctx.lookup(ctx.entryLabel, &e))
            ctx.program.entry = e;
        else
            ctx.error(0, strprintf("undefined entry label '%s'",
                                   ctx.entryLabel.c_str()));
    }

    result.errors = ctx.errors;
    result.ok = ctx.errors.empty();
    if (result.ok)
        result.program = std::move(ctx.program);
    return result;
}

Program
assembleOrDie(std::string_view source)
{
    AsmResult r = assembleSource(source);
    if (!r.ok)
        fatal("assembly failed:\n%s", r.errorText().c_str());
    return std::move(r.program);
}

} // namespace dmt
