#include "serve/protocol.hh"

#include <cmath>

#include "common/strutil.hh"
#include "exp/report.hh"
#include "exp/runner.hh"
#include "workloads/generator.hh"
#include "workloads/workloads.hh"

namespace dmt
{

namespace
{

/** JSON numbers arrive as doubles; budgets and sizes must be exact
 *  non-negative integers.  (Doubles are exact through 2^53 — far past
 *  any budget worth simulating.) */
bool
numAsU64(const JsonValue &v, u64 max_value, u64 *out, std::string *err,
         const char *what)
{
    if (v.type() != JsonValue::Type::Number) {
        *err = std::string(what) + " must be a number";
        return false;
    }
    const double d = v.asNumber();
    if (!(d >= 0.0) || d != std::floor(d)
        || d > static_cast<double>(max_value)) {
        *err = std::string(what) + " out of range";
        return false;
    }
    *out = static_cast<u64>(d);
    return true;
}

bool
numAsInt(const JsonValue &v, i64 min_value, i64 max_value, int *out,
         std::string *err, const char *what)
{
    if (v.type() != JsonValue::Type::Number) {
        *err = std::string(what) + " must be a number";
        return false;
    }
    const double d = v.asNumber();
    if (d != std::floor(d) || d < static_cast<double>(min_value)
        || d > static_cast<double>(max_value)) {
        *err = std::string(what) + " out of range";
        return false;
    }
    *out = static_cast<int>(d);
    return true;
}

bool
asBool(const JsonValue &v, bool *out, std::string *err, const char *what)
{
    if (v.type() != JsonValue::Type::Bool) {
        *err = std::string(what) + " must be a boolean";
        return false;
    }
    *out = v.asBool();
    return true;
}

/**
 * Strict, never-fatal() workload-name validation: suite names must be
 * known, gen: specs must fully parse (unknown families, malformed or
 * out-of-range knobs, trailing garbage all reject with the parser's
 * structured message).
 */
bool
validWorkload(const std::string &name, std::string *e)
{
    if (isGenSpec(name)) {
        GenParams p;
        std::string gerr;
        if (!parseGenSpec(name, &p, &gerr)) {
            *e = "workload spec \"" + name + "\": " + gerr;
            return false;
        }
        return true;
    }
    for (const WorkloadInfo &w : workloadSuite()) {
        if (name == w.name)
            return true;
    }
    *e = "unknown workload \"" + name + "\"";
    return false;
}

} // namespace

bool
applyConfigOverrides(SimConfig *cfg, const JsonValue &obj,
                     std::string *err)
{
    std::string scratch;
    std::string &e = err ? *err : scratch;
    if (obj.type() != JsonValue::Type::Object) {
        e = "config must be an object";
        return false;
    }

    // The machine template applies first regardless of key order, so
    // later keys override template values, never the other way around.
    if (const JsonValue *m = obj.find("machine")) {
        if (m->type() != JsonValue::Type::String) {
            e = "machine must be a string";
            return false;
        }
        if (m->asString() == "baseline")
            *cfg = SimConfig::baseline();
        else if (m->asString() == "dmt")
            *cfg = SimConfig::dmt(cfg->max_threads > 1
                                      ? cfg->max_threads : 6,
                                  cfg->fetch_ports);
        else {
            e = "machine must be \"dmt\" or \"baseline\"";
            return false;
        }
    }

    for (const auto &[key, v] : obj.members()) {
        bool ok = true;
        if (key == "machine") {
            continue; // handled above
        } else if (key == "max_threads") {
            ok = numAsInt(v, 1, 64, &cfg->max_threads, &e, "max_threads");
        } else if (key == "spawn_on_call") {
            ok = asBool(v, &cfg->spawn_on_call, &e, "spawn_on_call");
        } else if (key == "spawn_on_loop") {
            ok = asBool(v, &cfg->spawn_on_loop, &e, "spawn_on_loop");
        } else if (key == "value_prediction") {
            ok = asBool(v, &cfg->value_prediction, &e,
                        "value_prediction");
        } else if (key == "dataflow_prediction") {
            ok = asBool(v, &cfg->dataflow_prediction, &e,
                        "dataflow_prediction");
        } else if (key == "fetch_ports") {
            ok = numAsInt(v, 1, 64, &cfg->fetch_ports, &e, "fetch_ports");
        } else if (key == "fetch_block") {
            ok = numAsInt(v, 1, 1024, &cfg->fetch_block, &e,
                          "fetch_block");
        } else if (key == "window_size") {
            ok = numAsInt(v, 1, 1 << 20, &cfg->window_size, &e,
                          "window_size");
        } else if (key == "retire_width") {
            ok = numAsInt(v, 1, 1024, &cfg->retire_width, &e,
                          "retire_width");
        } else if (key == "unlimited_fus") {
            ok = asBool(v, &cfg->unlimited_fus, &e, "unlimited_fus");
        } else if (key == "phys_regs") {
            ok = numAsInt(v, 0, 1 << 22, &cfg->phys_regs, &e,
                          "phys_regs");
        } else if (key == "tb_size") {
            ok = numAsInt(v, 8, 1 << 22, &cfg->tb_size, &e, "tb_size");
        } else if (key == "tb_latency") {
            ok = numAsInt(v, 0, 1 << 20, &cfg->tb_latency, &e,
                          "tb_latency");
        } else if (key == "tb_read_block") {
            ok = numAsInt(v, 0, 1 << 20, &cfg->tb_read_block, &e,
                          "tb_read_block");
        } else if (key == "lq_size") {
            ok = numAsInt(v, 0, 1 << 22, &cfg->lq_size, &e, "lq_size");
        } else if (key == "sq_size") {
            ok = numAsInt(v, 0, 1 << 22, &cfg->sq_size, &e, "sq_size");
        } else if (key == "lat_mem") {
            ok = numAsInt(v, 1, 10000, &cfg->lat_mem, &e, "lat_mem");
        } else if (key == "max_retired") {
            ok = numAsU64(v, ~u64{0} >> 11, &cfg->max_retired, &e,
                          "max_retired");
        } else if (key == "warmup_retired") {
            ok = numAsU64(v, ~u64{0} >> 11, &cfg->warmup_retired, &e,
                          "warmup_retired");
        } else if (key == "watchdog_cycles") {
            ok = numAsU64(v, ~u64{0} >> 11, &cfg->watchdog_cycles, &e,
                          "watchdog_cycles");
        } else if (key == "audit_period") {
            ok = numAsInt(v, 0, 1 << 30, &cfg->audit_period, &e,
                          "audit_period");
        } else if (key == "fault_enabled") {
            bool fe = false;
            ok = asBool(v, &fe, &e, "fault_enabled");
            if (ok && fe) {
                e = "fault injection is not servable";
                ok = false;
            }
        } else {
            e = "unknown config key \"" + key + "\"";
            ok = false;
        }
        if (!ok)
            return false;
    }
    return true;
}

bool
checkJobSpec(const JobSpec &job, std::string *err)
{
    std::string scratch;
    std::string &e = err ? *err : scratch;
    const SimConfig &c = job.cfg;

    if (!validWorkload(job.workload, &e))
        return false;
    // Mirror of SimConfig::validate(), which fatal()s: every
    // constraint that would exit the process must reject here first.
    if (c.max_threads < 1 || c.max_threads > 64) {
        e = "max_threads out of range";
        return false;
    }
    if (c.fetch_ports < 1 || c.fetch_block < 1) {
        e = "bad fetch configuration";
        return false;
    }
    if (c.window_size < c.fetch_block) {
        e = "window smaller than one fetch block";
        return false;
    }
    if (c.tb_size < 8) {
        e = "trace buffer too small";
        return false;
    }
    if (c.lqSize() < 1 || c.sqSize() < 1) {
        e = "load/store queues too small";
        return false;
    }
    if (c.tb_latency < 0 || c.tb_read_block < 0) {
        e = "bad trace buffer timing";
        return false;
    }
    if (c.lat_alu < 1 || c.lat_mul < 1 || c.lat_div < 1
        || c.lat_mem < 1) {
        e = "latencies must be at least 1 cycle";
        return false;
    }
    if (c.audit_period < 0) {
        e = "audit_period must be >= 0";
        return false;
    }
    if (c.fault.enabled) {
        e = "fault injection is not servable";
        return false;
    }
    if (job.sample.enabled() && c.warmup_retired > 0) {
        e = "warmup_retired conflicts with sampling (the sample spec "
            "owns warmup)";
        return false;
    }
    if (c.max_retired > 0 && c.warmup_retired >= c.max_retired) {
        e = "warmup_retired leaves no measurement window";
        return false;
    }
    return true;
}

bool
parseRequest(std::string_view line, Request *out, std::string *err)
{
    std::string scratch;
    std::string &e = err ? *err : scratch;
    *out = Request{};

    JsonValue root;
    std::string perr;
    if (!JsonValue::parse(line, &root, &perr)) {
        e = "bad JSON: " + perr;
        return false;
    }
    if (root.type() != JsonValue::Type::Object) {
        e = "request must be an object";
        return false;
    }
    if (const JsonValue *id = root.find("id"))
        out->id = *id;

    const JsonValue *op = root.find("op");
    if (!op || op->type() != JsonValue::Type::String) {
        e = "missing op";
        return false;
    }
    const std::string &name = op->asString();
    if (name == "ping") {
        out->op = Request::Op::Ping;
        return true;
    }
    if (name == "stats") {
        out->op = Request::Op::Stats;
        return true;
    }
    if (name == "shutdown") {
        out->op = Request::Op::Shutdown;
        return true;
    }
    if (name != "run") {
        e = "unknown op \"" + name + "\"";
        return false;
    }

    out->op = Request::Op::Run;
    const JsonValue *jobv = root.find("job");
    if (!jobv || jobv->type() != JsonValue::Type::Object) {
        e = "run needs a job object";
        return false;
    }

    JobSpec &job = out->job;
    job.cfg = SimConfig::dmt(6, 2);
    if (const JsonValue *cfgv = jobv->find("config")) {
        if (!applyConfigOverrides(&job.cfg, *cfgv, &e))
            return false;
    }

    const JsonValue *w = jobv->find("workload");
    if (!w || w->type() != JsonValue::Type::String) {
        e = "job needs a workload name";
        return false;
    }
    job.workload = w->asString();
    if (isGenSpec(job.workload)) {
        // Normalize to the canonical spelling before anything keys on
        // the name: the result cache stores RunResult bytes (which
        // embed the workload string), so two spellings of one gen
        // workload must collapse to one identity here, not later.
        GenParams gp;
        std::string gerr;
        if (!parseGenSpec(job.workload, &gp, &gerr)) {
            e = "workload spec \"" + job.workload + "\": " + gerr;
            return false;
        }
        job.workload = gp.canonicalSpec();
    }

    if (const JsonValue *s = jobv->find("sample")) {
        if (s->type() != JsonValue::Type::String) {
            e = "sample must be a spec string";
            return false;
        }
        if (!SampleParams::parse(s->asString(), &job.sample, &e))
            return false;
    }

    u64 budget = job.cfg.max_retired; // config override as fallback
    if (const JsonValue *m = jobv->find("max_retired")) {
        if (!numAsU64(*m, ~u64{0} >> 11, &budget, &e, "max_retired"))
            return false;
    }
    job.max_retired = effectiveBudget(job.sample.enabled(), budget);
    // The budget is part of the machine's canonical identity, so the
    // cache key derived from cfg covers it.
    job.cfg.max_retired = job.max_retired;

    if (const JsonValue *p = jobv->find("priority")) {
        int prio = 0;
        if (!numAsInt(*p, -1000000, 1000000, &prio, &e, "priority"))
            return false;
        job.priority = prio;
    }

    if (const JsonValue *d = jobv->find("deadline_ms")) {
        // Cap at one day: a longer "deadline" is a typo, not a budget.
        if (!numAsU64(*d, 86400000, &job.deadline_ms, &e,
                      "deadline_ms"))
            return false;
    }

    return checkJobSpec(job, &e);
}

void
jobSpecJsonOn(JsonWriter &w, const JobSpec &job)
{
    w.beginObject();
    w.key("workload").value(std::string_view(job.workload));
    w.key("max_retired").value(job.max_retired);
    if (job.sample.enabled())
        w.key("sample").value(
            std::string_view(job.sample.canonicalSpec()));
    if (job.priority != 0)
        w.key("priority").value(job.priority);
    if (job.deadline_ms != 0)
        w.key("deadline_ms").value(job.deadline_ms);
    w.key("config");
    job.cfg.jsonOn(w);
    w.endObject();
}

std::string
runRequestLine(i64 id, const JobSpec &job)
{
    JsonWriter w;
    w.beginObject();
    w.key("op").value("run");
    w.key("id").value(id);
    w.key("job");
    jobSpecJsonOn(w, job);
    w.endObject();
    return w.str();
}

std::string
simpleRequestLine(const char *op, i64 id)
{
    JsonWriter w;
    w.beginObject();
    w.key("op").value(op);
    w.key("id").value(id);
    w.endObject();
    return w.str();
}

std::string
errorReply(const JsonValue &id, const std::string &message,
           const char *kind, u64 req_hash)
{
    JsonWriter w;
    w.beginObject();
    w.key("id");
    id.writeTo(w);
    w.key("ok").value(false);
    w.key("kind").value(kind);
    if (req_hash != 0)
        w.key("req").value(std::string_view(hashHex(req_hash)));
    w.key("error").value(std::string_view(message));
    w.endObject();
    return w.str();
}

std::string
replyErrorKind(const JsonValue &reply)
{
    if (reply.type() != JsonValue::Type::Object)
        return "";
    const JsonValue *ok = reply.find("ok");
    if (!ok || ok->type() != JsonValue::Type::Bool || ok->asBool())
        return "";
    const JsonValue *kind = reply.find("kind");
    if (kind && kind->type() == JsonValue::Type::String)
        return kind->asString();
    return errkind::kGeneric;
}

std::string
okRunReply(const JsonValue &id, std::string_view result_json, u64 key,
           u64 result_hash, bool cached, u64 req_hash)
{
    JsonWriter w;
    w.beginObject();
    w.key("id");
    id.writeTo(w);
    w.key("ok").value(true);
    w.key("cached").value(cached);
    w.key("key").value(std::string_view(hashHex(key)));
    w.key("result_hash").value(std::string_view(hashHex(result_hash)));
    if (req_hash != 0)
        w.key("req").value(std::string_view(hashHex(req_hash)));
    // "result" stays the final member — extractRawResult() depends on
    // slicing up to the envelope's closing brace.
    w.key("result").rawValue(result_json);
    w.endObject();
    return w.str();
}

bool
extractRawResult(std::string_view reply_line, std::string *out)
{
    const std::string_view marker = "\"result\":";
    const size_t at = reply_line.find(marker);
    if (at == std::string_view::npos || reply_line.empty()
        || reply_line.back() != '}')
        return false;
    const size_t begin = at + marker.size();
    // Drop the closing brace of the reply envelope itself.
    *out = std::string(
        reply_line.substr(begin, reply_line.size() - 1 - begin));
    return true;
}

std::string
pongReply(const JsonValue &id, u64 req_hash)
{
    JsonWriter w;
    w.beginObject();
    w.key("id");
    id.writeTo(w);
    w.key("ok").value(true);
    if (req_hash != 0)
        w.key("req").value(std::string_view(hashHex(req_hash)));
    w.key("pong").value(true);
    w.endObject();
    return w.str();
}

} // namespace dmt
