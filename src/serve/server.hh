/**
 * @file
 * The persistent simulation daemon: a local TCP front-end that turns
 * the deterministic runWorkload() funnel into a shared service.
 *
 * Architecture (one process):
 *
 *   acceptor thread ──► per-connection reader threads
 *                          │  parse line-delimited JSON requests
 *                          │  (protocol.hh); stats/ping answered
 *                          │  inline, run requests enqueued
 *                          ▼
 *                    priority job queue (larger priority first,
 *                          FIFO within a priority level)
 *                          ▼
 *                    worker pool (DMT_SERVE_JOBS, default the sweep
 *                          width) ──► ResultCache::getOrCompute
 *                          ──► reply on the requesting connection
 *
 * Replies carry the byte-exact canonical RunResult JSON; the result
 * cache plus the process-wide checkpoint cache (exp/sampled) make
 * repeated cells free and warm sampled requests skip fast-forward.
 *
 * Lifecycle: requestDrain() (SIGTERM/SIGINT in dmt_served, or a
 * client "shutdown" request) stops accepting connections and reading
 * new requests; already-queued jobs run to completion and reply;
 * join() waits for that up to the drain timeout, after which any
 * still-queued jobs get structured "draining" error replies.  A job
 * that dies with SimError (watchdog, invariant audit, golden
 * mismatch) becomes an error reply, never a daemon exit — the same
 * containment contract SweepRunner gives sweeps.
 */

#ifndef DMT_SERVE_SERVER_HH
#define DMT_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/cache.hh"
#include "serve/protocol.hh"

namespace dmt
{

/** Daemon configuration, from the DMT_SERVE_* environment knobs. */
struct ServeOptions
{
    /** Listening port on 127.0.0.1; 0 picks an ephemeral port
     *  (reported by Server::port()).  Default 1998 — the paper's
     *  publication year. */
    int port = 1998;
    /** Worker pool width; 0 = sweepJobs() (DMT_JOBS / hardware). */
    int pool = 0;
    /** Result-cache capacity in entries; 0 disables storage
     *  (single-flight dedup stays on). */
    u64 cache_entries = 4096;
    /** Seconds join() waits for queued jobs after a drain request
     *  before failing them with "draining" replies. */
    double drain_s = 30.0;
    /** Durable result-cache directory (DMT_SERVE_CACHE_DIR); every
     *  computed result is spilled here at compute time, so a crashed
     *  daemon restarted on the same directory replays answered cells
     *  from disk.  Empty keeps the cache memory-only. */
    std::string cache_dir;
    /** Job-queue bound (DMT_SERVE_QUEUE); a run request arriving with
     *  this many jobs already queued is rejected with a structured
     *  "overloaded" reply instead of buffered without limit.  0 =
     *  unbounded. */
    u64 queue_max = 1024;
    /** Default per-job wall-clock budget in seconds, measured from
     *  enqueue (DMT_SERVE_DEADLINE_S; a job's deadline_ms overrides).
     *  0 = no deadline. */
    double deadline_s = 0.0;

    /** Strict parse of DMT_SERVE_PORT / DMT_SERVE_JOBS /
     *  DMT_SERVE_CACHE / DMT_SERVE_DRAIN_S / DMT_SERVE_CACHE_DIR /
     *  DMT_SERVE_QUEUE / DMT_SERVE_DEADLINE_S; garbage is fatal()
     *  like every other DMT_* knob, and a cache directory that cannot
     *  be created (or is not a directory) is fatal() too. */
    static ServeOptions fromEnv();
};

/** The daemon.  Construct, start(), eventually requestDrain()+join(). */
class Server
{
  public:
    explicit Server(const ServeOptions &opts);
    ~Server();

    /** Bind 127.0.0.1, spawn acceptor + workers.
     *  @retval false with @p err set when the socket setup fails. */
    bool start(std::string *err);

    /** The bound port (after start(); useful with opts.port == 0). */
    int port() const { return port_; }

    /** True once a drain was requested (signal, client shutdown). */
    bool draining() const { return draining_.load(); }

    /** Begin graceful shutdown; idempotent, callable from any thread. */
    void requestDrain();

    /** Wait for the drain to complete and every thread to exit.
     *  Returns immediately if start() never succeeded. */
    void join();

    /** Lifetime request/job/cache accounting as a JSON object (the
     *  body of the "stats" reply). */
    std::string statsJson() const;

    /** Simulations actually executed (cache misses that ran). */
    u64 jobsSimulated() const { return jobs_simulated_.load(); }

  private:
    struct Conn
    {
        int fd = -1;
        std::mutex write_mu;
        ~Conn();
    };

    struct QueuedJob
    {
        std::shared_ptr<Conn> conn;
        JsonValue id;
        JobSpec spec;
        u64 key = 0;
        u64 seq = 0;
        /** FNV-1a of the exact request line, echoed in the reply as
         *  "req" so a retrying client can detect a request mutated in
         *  flight (see protocol.hh). */
        u64 req_hash = 0;
        /** Wall-clock deadline (from enqueue + the job's budget);
         *  epoch = none.  Checked at dequeue and enforced inside the
         *  simulation via SimConfig::deadline. */
        std::chrono::steady_clock::time_point deadline{};
    };

    /** Max-heap order: higher priority first, then submission order. */
    struct JobWorse
    {
        bool
        operator()(const std::shared_ptr<QueuedJob> &a,
                   const std::shared_ptr<QueuedJob> &b) const
        {
            if (a->spec.priority != b->spec.priority)
                return a->spec.priority < b->spec.priority;
            return a->seq > b->seq;
        }
    };

    void acceptLoop();
    void connLoop(std::shared_ptr<Conn> conn);
    void workerLoop();
    void handleLine(const std::shared_ptr<Conn> &conn,
                    std::string_view line);
    void sendReply(const std::shared_ptr<Conn> &conn,
                   const std::string &body);
    u64 programHashFor(const std::string &workload);

    ServeOptions opts_;
    ResultCache cache_;
    int listen_fd_ = -1;
    int port_ = 0;
    bool started_ = false;
    std::atomic<bool> draining_{false};

    std::thread acceptor_;
    std::vector<std::thread> workers_;
    std::mutex readers_mu_;
    std::vector<std::thread> readers_;

    mutable std::mutex queue_mu_;
    std::condition_variable queue_cv_;   ///< work available / draining
    std::condition_variable drained_cv_; ///< queue empty, workers idle
    std::priority_queue<std::shared_ptr<QueuedJob>,
                        std::vector<std::shared_ptr<QueuedJob>>,
                        JobWorse>
        queue_;
    u64 next_seq_ = 0;
    int active_jobs_ = 0;

    std::mutex prog_mu_;
    std::unordered_map<std::string, u64> prog_hash_;

    std::chrono::steady_clock::time_point start_time_;
    std::atomic<u64> requests_{0};
    std::atomic<u64> bad_requests_{0};
    std::atomic<u64> jobs_simulated_{0};
    std::atomic<u64> jobs_failed_{0};
    std::atomic<u64> jobs_rejected_{0}; ///< drain-timeout failures
    std::atomic<u64> rejected_overload_{0}; ///< queue-full rejections
    std::atomic<u64> deadline_expired_{0};  ///< in queue or mid-run
    std::atomic<u64> busy_us_{0};       ///< summed job wall clock
};

} // namespace dmt

#endif // DMT_SERVE_SERVER_HH
