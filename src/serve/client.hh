/**
 * @file
 * Client side of the simulation service: a thin blocking connection
 * speaking the line-delimited JSON protocol (serve/protocol.hh).
 * Requests can be pipelined — send many lines, then collect replies;
 * the server answers in completion order, matching on "id".
 */

#ifndef DMT_SERVE_CLIENT_HH
#define DMT_SERVE_CLIENT_HH

#include <string>
#include <utility>

#include "common/json.hh"

namespace dmt
{

/** A blocking protocol connection to a dmt_served daemon. */
class ServeClient
{
  public:
    ServeClient() = default;
    ~ServeClient();
    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;
    ServeClient(ServeClient &&other) noexcept { *this = std::move(other); }
    ServeClient &
    operator=(ServeClient &&other) noexcept
    {
        if (this != &other) {
            close();
            fd_ = other.fd_;
            other.fd_ = -1;
            rxbuf_ = std::move(other.rxbuf_);
            last_line_ = std::move(other.last_line_);
        }
        return *this;
    }

    /**
     * Connect to 127.0.0.1:@p port.  When @p retry_s > 0, connection
     * refusal is retried until the deadline — the idiom for "the
     * daemon was just forked, wait for it to listen".
     * @retval false with @p err set on failure.
     */
    bool connect(int port, std::string *err, double retry_s = 0.0);

    bool connected() const { return fd_ >= 0; }

    /** Send one request line (newline appended). */
    bool sendLine(const std::string &line, std::string *err);

    /** Block for the next raw reply line (no trailing newline). */
    bool recvLine(std::string *line, std::string *err);

    /** Block for the next reply line and parse it. */
    bool recvReply(JsonValue *reply, std::string *err);

    /** The raw bytes of the last reply recvReply() parsed — the thing
     *  to hand extractRawResult() for byte-exact result comparison. */
    const std::string &lastLine() const { return last_line_; }

    /** sendLine + recvReply for the lock-step (non-pipelined) case. */
    bool request(const std::string &line, JsonValue *reply,
                 std::string *err);

    void close();

  private:
    int fd_ = -1;
    std::string rxbuf_;
    std::string last_line_;
};

} // namespace dmt

#endif // DMT_SERVE_CLIENT_HH
