/**
 * @file
 * Client side of the simulation service: a thin blocking connection
 * speaking the line-delimited JSON protocol (serve/protocol.hh).
 * Requests can be pipelined — send many lines, then collect replies;
 * the server answers in completion order, matching on "id".
 *
 * Two resilience layers sit on top of the raw connection:
 *
 *  - setTimeout() arms a poll-based per-reply timeout on recvLine(),
 *    surfaced as a distinct "timeout: ..." error (timedOut() true), so
 *    a wedged daemon costs one bounded wait instead of a hung client.
 *
 *  - requestWithRetry() drives a whole request to completion through
 *    connect failures, "overloaded"/"draining" replies, reply
 *    timeouts, and transport corruption (id mismatch, result_hash
 *    mismatch), using bounded exponential backoff with deterministic
 *    seeded jitter.  Safe because run requests are idempotent by
 *    cache-key construction — replaying one can only hit the cache.
 */

#ifndef DMT_SERVE_CLIENT_HH
#define DMT_SERVE_CLIENT_HH

#include <string>
#include <utility>

#include "common/json.hh"
#include "common/types.hh"

namespace dmt
{

/** Backoff/retry schedule for ServeClient::requestWithRetry(). */
struct RetryPolicy
{
    /** Total attempts (first try included); at least 1. */
    int attempts = 6;
    /** First backoff delay; doubles per retry up to max_s. */
    double base_s = 0.05;
    double max_s = 2.0;
    /** Per-reply receive timeout for each attempt; 0 = wait forever. */
    double op_timeout_s = 0.0;
    /** Jitter seed: same seed + same failure pattern = same delays,
     *  so retry storms in tests are reproducible. */
    u64 seed = 0x1998;
};

/** A blocking protocol connection to a dmt_served daemon. */
class ServeClient
{
  public:
    ServeClient() = default;
    ~ServeClient();
    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;
    ServeClient(ServeClient &&other) noexcept { *this = std::move(other); }
    ServeClient &
    operator=(ServeClient &&other) noexcept
    {
        if (this != &other) {
            close();
            fd_ = other.fd_;
            other.fd_ = -1;
            rxbuf_ = std::move(other.rxbuf_);
            last_line_ = std::move(other.last_line_);
            timeout_s_ = other.timeout_s_;
            timed_out_ = other.timed_out_;
        }
        return *this;
    }

    /**
     * Connect to 127.0.0.1:@p port.  When @p retry_s > 0, connection
     * refusal is retried until the deadline — the idiom for "the
     * daemon was just forked, wait for it to listen".
     * @retval false with @p err set on failure.
     */
    bool connect(int port, std::string *err, double retry_s = 0.0);

    bool connected() const { return fd_ >= 0; }

    /** Send one request line (newline appended). */
    bool sendLine(const std::string &line, std::string *err);

    /** Arm (or with 0 disarm) a per-reply receive timeout.  Applies to
     *  every subsequent recvLine()/recvReply(); an expiry fails that
     *  call with a "timeout: ..." error and timedOut() true.  After a
     *  timeout the connection must be close()d — the late reply would
     *  otherwise be mis-matched to the next request. */
    void setTimeout(double seconds) { timeout_s_ = seconds; }

    /** True when the last failed recv was a timeout, not a transport
     *  or protocol error. */
    bool timedOut() const { return timed_out_; }

    /** Block for the next raw reply line (no trailing newline). */
    bool recvLine(std::string *line, std::string *err);

    /** Block for the next reply line and parse it. */
    bool recvReply(JsonValue *reply, std::string *err);

    /** The raw bytes of the last reply recvReply() parsed — the thing
     *  to hand extractRawResult() for byte-exact result comparison. */
    const std::string &lastLine() const { return last_line_; }

    /** sendLine + recvReply for the lock-step (non-pipelined) case. */
    bool request(const std::string &line, JsonValue *reply,
                 std::string *err);

    /**
     * Drive @p line (carrying request id @p id) to a definitive reply
     * through transient failures: reconnects to 127.0.0.1:@p port as
     * needed, retries on connect refusal, reply timeout, connection
     * loss, "overloaded"/"draining" error replies, and corrupted
     * transport (reply id != @p id, or a run reply whose result bytes
     * do not hash to its result_hash).  Backoff doubles from
     * pol.base_s to pol.max_s with deterministic jitter from pol.seed.
     *
     * @retval true with the reply (which may still be a non-retryable
     * error reply — bad_request / deadline / sim_error — for the
     * caller to inspect); false with @p err once pol.attempts are
     * exhausted.
     */
    bool requestWithRetry(int port, const std::string &line, i64 id,
                          const RetryPolicy &pol, JsonValue *reply,
                          std::string *err);

    void close();

  private:
    int fd_ = -1;
    std::string rxbuf_;
    std::string last_line_;
    double timeout_s_ = 0.0;
    bool timed_out_ = false;
};

} // namespace dmt

#endif // DMT_SERVE_CLIENT_HH
