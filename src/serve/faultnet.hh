/**
 * @file
 * A seeded in-process TCP fault injector for the simulation service.
 *
 * FaultNetProxy listens on 127.0.0.1 and relays byte streams to an
 * upstream port (a dmt_served daemon), flipping a seeded coin on every
 * accepted connection and every forwarded chunk.  When it comes up
 * tails the proxy injects one of the failure modes a real network (or
 * a dying peer) produces:
 *
 *   refuse      close a just-accepted connection before any bytes flow
 *   garble      XOR a few random bytes of the chunk, then forward it
 *   tear        forward a random prefix of the chunk, then drop both
 *               sides — a mid-line (mid-reply) disconnect
 *   drop        disconnect both sides without forwarding anything
 *   stall       sit on the chunk for stall_ms before forwarding it
 *
 * Decisions come from one splitmix64 stream (DMT_FAULTNET_SEED), so a
 * single-connection exchange replays identically; with concurrent
 * connections the stream is shared and ordered by arrival.
 *
 * This is the adversary the resilience layers are tested against:
 * ServeClient::requestWithRetry() must converge to byte-identical
 * results through any storm the proxy produces, and the daemon behind
 * it must never exit.  Knobs: DMT_FAULTNET (route dmt_client through a
 * proxy), DMT_FAULTNET_RATE (per-event fault probability),
 * DMT_FAULTNET_SEED, DMT_FAULTNET_STALL_MS.
 */

#ifndef DMT_SERVE_FAULTNET_HH
#define DMT_SERVE_FAULTNET_HH

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace dmt
{

/** Proxy configuration, from the DMT_FAULTNET_* environment knobs. */
struct FaultNetOptions
{
    /** Proxy listening port on 127.0.0.1; 0 picks an ephemeral port
     *  (reported by FaultNetProxy::port()). */
    int listen_port = 0;
    /** The real daemon's port; every accepted connection relays to
     *  127.0.0.1:upstream_port. */
    int upstream_port = 0;
    /** Per-event fault probability — drawn once per accepted
     *  connection (refusal) and once per forwarded chunk. */
    double rate = 0.05;
    /** Seed for the shared fault-decision stream. */
    u64 seed = 1998;
    /** How long a "stall" fault sits on a chunk. */
    u64 stall_ms = 100;

    /** Strict parse of DMT_FAULTNET_RATE / DMT_FAULTNET_SEED /
     *  DMT_FAULTNET_STALL_MS (garbage is fatal(), like every other
     *  DMT_* knob) on top of the given upstream port. */
    static FaultNetOptions fromEnv(int upstream_port);
};

/** The fault-injecting relay.  Construct, start(), eventually stop(). */
class FaultNetProxy
{
  public:
    /** Lifetime fault accounting (all monotonic). */
    struct Counters
    {
        u64 connections = 0; ///< accepted (refused included)
        u64 refused = 0;
        u64 chunks = 0;      ///< chunks seen, both directions
        u64 garbled = 0;
        u64 torn = 0;
        u64 dropped = 0;
        u64 stalled = 0;

        u64
        faults() const
        {
            return refused + garbled + torn + dropped + stalled;
        }
    };

    explicit FaultNetProxy(const FaultNetOptions &opts);
    ~FaultNetProxy();
    FaultNetProxy(const FaultNetProxy &) = delete;
    FaultNetProxy &operator=(const FaultNetProxy &) = delete;

    /** Bind 127.0.0.1 and spawn the acceptor.
     *  @retval false with @p err set when socket setup fails. */
    bool start(std::string *err);

    /** The bound port (after start()). */
    int port() const { return port_; }

    /** Stop accepting, sever every relay, join all threads.
     *  Idempotent; also run by the destructor. */
    void stop();

    Counters counters() const;

  private:
    enum class Fault { None, Garble, Tear, Drop, Stall };

    /** One seeded decision for a chunk of @p len bytes; fault
     *  parameters (garble positions/masks, tear length) are drawn
     *  under the same lock so the stream stays reproducible. */
    struct Decision
    {
        Fault fault = Fault::None;
        size_t tear_keep = 0;
        int garble_n = 0;
        size_t garble_off[8] = {};
        unsigned char garble_xor[8] = {};
    };
    Decision drawChunkFault(size_t len);
    bool drawRefuse();
    void acceptLoop();
    void relayLoop(int client_fd);

    FaultNetOptions opts_;
    int listen_fd_ = -1;
    int port_ = 0;
    bool started_ = false;
    std::atomic<bool> stopping_{false};
    std::thread acceptor_;
    std::mutex relays_mu_;
    std::vector<std::thread> relays_;

    std::mutex rng_mu_;
    Rng rng_;

    std::atomic<u64> connections_{0};
    std::atomic<u64> refused_{0};
    std::atomic<u64> chunks_{0};
    std::atomic<u64> garbled_{0};
    std::atomic<u64> torn_{0};
    std::atomic<u64> dropped_{0};
    std::atomic<u64> stalled_{0};
};

} // namespace dmt

#endif // DMT_SERVE_FAULTNET_HH
