/**
 * @file
 * Wire protocol for the simulation service: line-delimited JSON over a
 * local TCP socket.  One request per line, one reply per request; the
 * server may interleave replies from one connection's requests in
 * completion order, so every request carries a client-chosen "id" that
 * the reply echoes back.
 *
 * Requests:
 *
 *   {"op":"run","id":1,"job":{"workload":"go","max_retired":60000,
 *       "sample":"20000:500:1500:5","priority":2,
 *       "config":{"machine":"dmt","max_threads":6,"fetch_ports":2}}}
 *   {"op":"stats","id":2}
 *   {"op":"ping","id":3}
 *   {"op":"shutdown","id":4}
 *
 * Replies:
 *
 *   {"id":1,"ok":true,"cached":false,"key":"<16-hex>",
 *       "result_hash":"<16-hex>","result":{...canonical RunResult...}}
 *   {"id":1,"ok":false,"kind":"sim_error","error":"..."}
 *   {"id":2,"ok":true,"stats":{...}}
 *
 * Error replies carry a machine-readable "kind" so clients can decide
 * what to do without parsing prose: "bad_request" (malformed line or
 * rejected job spec), "overloaded" (job queue full — retryable),
 * "draining" (daemon shutting down — retryable against a replacement),
 * "deadline" (the job's wall-clock budget expired, in queue or
 * mid-run), "sim_error" (SimError inside the simulation: watchdog,
 * invariant audit, golden mismatch), or the generic "error".  Run
 * requests are idempotent by construction — the cache key is a pure
 * function of the job — so retrying any of these is always safe.
 *
 * A run job may carry "deadline_ms": its wall-clock budget measured
 * from enqueue (0 or absent = the daemon's DMT_SERVE_DEADLINE_S
 * default).  The deadline is scheduling state, not job identity: two
 * requests differing only in deadline_ms share one cache cell.
 *
 * The embedded "result" document is the *byte-exact* canonical
 * RunResult JSON (spliced with JsonWriter::rawValue, never re-parsed),
 * and "result_hash" is its FNV-1a digest — so a client can prove a
 * cached answer is identical to a freshly computed or locally run one
 * without trusting the cache.
 *
 * Everything here parses without side effects: a malformed request, an
 * unknown workload or an out-of-range configuration produces an error
 * string for an error *reply* — never the fatal() exit the CLI tools
 * use, which would take the daemon down with the request.
 */

#ifndef DMT_SERVE_PROTOCOL_HH
#define DMT_SERVE_PROTOCOL_HH

#include <string>
#include <string_view>

#include "common/json.hh"
#include "exp/sampled.hh"
#include "uarch/config.hh"

namespace dmt
{

/** One simulation request, fully resolved and validated. */
struct JobSpec
{
    std::string workload;  ///< a workloadSuite() name
    SimConfig cfg;         ///< machine; cfg.max_retired == budget
    /** Resolved retirement budget (effectiveBudget() already applied,
     *  so identical effective requests share one cache key). */
    u64 max_retired = 0;
    SampleParams sample;   ///< job-level sampling (env is ignored)
    i64 priority = 0;      ///< larger = scheduled sooner
    /** Wall-clock budget from enqueue, milliseconds; 0 = the daemon's
     *  DMT_SERVE_DEADLINE_S default.  Not part of the cache key. */
    u64 deadline_ms = 0;
};

/** A parsed client request. */
struct Request
{
    enum class Op { Run, Stats, Ping, Shutdown };
    Op op = Op::Ping;
    /** Echoed back in the reply; Null when the client sent none. */
    JsonValue id;
    JobSpec job;           ///< populated when op == Run
};

/**
 * Parse and validate one request line.
 * @retval false with a description in @p err (when given); the caller
 * turns that into an error reply.
 */
bool parseRequest(std::string_view line, Request *out, std::string *err);

/**
 * Apply a job-spec "config" override object onto @p cfg.  Accepts
 * exactly the keys SimConfig::jsonOn() emits (minus the run-control
 * and fault block), so a recorded config document can be replayed as
 * an override.  Unknown keys, wrong types and values that would trip
 * SimConfig::validate() — which fatal()s, unacceptable in a daemon —
 * are rejected through @p err instead.
 */
bool applyConfigOverrides(SimConfig *cfg, const JsonValue &obj,
                          std::string *err);

/**
 * The daemon-side validity check mirroring SimConfig::validate()'s
 * constraints (plus suite-membership for @p workload) as a rejection
 * instead of an exit.  Every job must pass this before it can reach a
 * DmtEngine constructor.
 */
bool checkJobSpec(const JobSpec &job, std::string *err);

/** Serialize @p job as the protocol's "job" object. */
void jobSpecJsonOn(JsonWriter &w, const JobSpec &job);

/** Build a complete "run" request line (no trailing newline). */
std::string runRequestLine(i64 id, const JobSpec &job);

/** Build a bare {"op":...,"id":N} request line. */
std::string simpleRequestLine(const char *op, i64 id);

// ---- reply builders (no trailing newline) ------------------------------

/** Error-reply "kind" values; see the file header for semantics. */
namespace errkind
{
constexpr const char *kBadRequest = "bad_request";
constexpr const char *kOverloaded = "overloaded";
constexpr const char *kDraining = "draining";
constexpr const char *kDeadline = "deadline";
constexpr const char *kSimError = "sim_error";
constexpr const char *kGeneric = "error";
} // namespace errkind

/**
 * Every reply builder takes an optional @p req_hash: the FNV-1a digest
 * of the exact request line the server is answering, echoed back as
 * "req" (omitted when 0).  The client hashed the bytes it sent, so a
 * request mutated in flight — even into different-but-valid JSON the
 * server happily served — produces an echo mismatch the client can
 * treat as transport corruption and retry, instead of accepting an
 * answer to a question it never asked.
 */
std::string errorReply(const JsonValue &id, const std::string &message,
                       const char *kind = errkind::kGeneric,
                       u64 req_hash = 0);

/** The "kind" of a parsed error reply ("" for a success reply or a
 *  malformed document; kGeneric when an error reply carries none). */
std::string replyErrorKind(const JsonValue &reply);

/** Success reply for a run; @p result_json is spliced verbatim. */
std::string okRunReply(const JsonValue &id, std::string_view result_json,
                       u64 key, u64 result_hash, bool cached,
                       u64 req_hash = 0);

std::string pongReply(const JsonValue &id, u64 req_hash = 0);

/**
 * Slice the byte-exact "result" document out of an okRunReply() line.
 * Relies on "result" being the reply's final member — a property of our
 * reply builder, not of JSON — so clients and tests can compare the
 * canonical bytes without a lossy parse→dump round trip.
 * @retval false when @p reply_line is not a successful run reply.
 */
bool extractRawResult(std::string_view reply_line, std::string *out);

} // namespace dmt

#endif // DMT_SERVE_PROTOCOL_HH
