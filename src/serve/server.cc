#include "serve/server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdlib>

#include <cerrno>
#include <cstring>

#include "common/env.hh"
#include "common/log.hh"
#include "common/strutil.hh"
#include "exp/report.hh"
#include "exp/runner.hh"
#include "exp/sweep.hh"
#include "sim/checkpoint.hh"
#include "workloads/workloads.hh"

namespace dmt
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Reader poll period: bounds how long a drain waits on idle
 *  connections and how often readers re-check the draining flag. */
constexpr int kPollMs = 100;

/** A request line longer than this is a broken or hostile client. */
constexpr size_t kMaxLine = 1u << 20;

bool
sendAll(int fd, const char *data, size_t n)
{
    while (n > 0) {
        // MSG_NOSIGNAL: a client that hung up must produce an error
        // return, not a SIGPIPE that kills the daemon.
        const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += w;
        n -= static_cast<size_t>(w);
    }
    return true;
}

} // namespace

ServeOptions
ServeOptions::fromEnv()
{
    ServeOptions o;
    o.port = static_cast<int>(
        parseEnvU64("DMT_SERVE_PORT", 1998, 0, 65535));
    o.pool = static_cast<int>(parseEnvU64("DMT_SERVE_JOBS", 0, 0, 1024));
    o.cache_entries = parseEnvU64("DMT_SERVE_CACHE", 4096, 0, 1u << 20);
    o.drain_s = parseEnvF64("DMT_SERVE_DRAIN_S", 30.0, 0.0, 86400.0);
    o.queue_max = parseEnvU64("DMT_SERVE_QUEUE", 1024, 0, 1u << 20);
    o.deadline_s =
        parseEnvF64("DMT_SERVE_DEADLINE_S", 0.0, 0.0, 86400.0);
    if (const char *dir = std::getenv("DMT_SERVE_CACHE_DIR");
        dir && *dir) {
        // A misconfigured durable tier must fail loudly at startup,
        // not degrade every later request into a spill warning.
        if (::mkdir(dir, 0755) != 0 && errno != EEXIST)
            fatal("DMT_SERVE_CACHE_DIR=\"%s\": cannot create: %s", dir,
                  std::strerror(errno));
        struct stat st{};
        if (::stat(dir, &st) != 0 || !S_ISDIR(st.st_mode))
            fatal("DMT_SERVE_CACHE_DIR=\"%s\": not a directory", dir);
        o.cache_dir = dir;
    }
    return o;
}

Server::Conn::~Conn()
{
    if (fd >= 0)
        ::close(fd);
}

Server::Server(const ServeOptions &opts)
    : opts_(opts),
      cache_(static_cast<size_t>(opts.cache_entries), opts.cache_dir)
{
    if (opts_.pool <= 0)
        opts_.pool = sweepJobs();
}

Server::~Server()
{
    requestDrain();
    join();
}

bool
Server::start(std::string *err)
{
    DMT_ASSERT(!started_, "Server::start called twice");

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        if (err)
            *err = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<u16>(opts_.port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0
        || ::listen(listen_fd_, 64) < 0) {
        if (err)
            *err = std::string("bind/listen 127.0.0.1:")
                + std::to_string(opts_.port) + ": "
                + std::strerror(errno);
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr *>(&addr), &len);
    port_ = ntohs(addr.sin_port);

    start_time_ = Clock::now();
    started_ = true;
    acceptor_ = std::thread(&Server::acceptLoop, this);
    workers_.reserve(static_cast<size_t>(opts_.pool));
    for (int i = 0; i < opts_.pool; ++i)
        workers_.emplace_back(&Server::workerLoop, this);
    return true;
}

void
Server::acceptLoop()
{
    while (!draining_.load()) {
        pollfd pfd{listen_fd_, POLLIN, 0};
        const int n = ::poll(&pfd, 1, kPollMs);
        if (n <= 0)
            continue;
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        auto conn = std::make_shared<Conn>();
        conn->fd = fd;
        std::lock_guard<std::mutex> lk(readers_mu_);
        readers_.emplace_back(&Server::connLoop, this, std::move(conn));
    }
}

void
Server::connLoop(std::shared_ptr<Conn> conn)
{
    std::string buf;
    char chunk[4096];
    while (!draining_.load()) {
        pollfd pfd{conn->fd, POLLIN, 0};
        const int n = ::poll(&pfd, 1, kPollMs);
        if (n < 0 && errno != EINTR)
            break;
        if (n <= 0)
            continue;
        const ssize_t r = ::recv(conn->fd, chunk, sizeof(chunk), 0);
        if (r == 0)
            break; // client hung up
        if (r < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        buf.append(chunk, static_cast<size_t>(r));
        size_t start = 0;
        for (;;) {
            const size_t nl = buf.find('\n', start);
            if (nl == std::string::npos)
                break;
            std::string_view line(buf.data() + start, nl - start);
            if (!line.empty() && line.back() == '\r')
                line.remove_suffix(1);
            if (!line.empty())
                handleLine(conn, line);
            start = nl + 1;
        }
        buf.erase(0, start);
        if (buf.size() > kMaxLine) {
            sendReply(conn,
                      errorReply(JsonValue{}, "request line too long",
                                 errkind::kBadRequest));
            break;
        }
    }
}

void
Server::handleLine(const std::shared_ptr<Conn> &conn,
                   std::string_view line)
{
    requests_.fetch_add(1);
    // Echoed on every reply: proof the server answered *these* bytes,
    // not a corrupted-but-parseable mutation of them.
    const u64 req_hash = fnv1aHash(line);
    Request req;
    std::string err;
    if (!parseRequest(line, &req, &err)) {
        bad_requests_.fetch_add(1);
        sendReply(conn,
                  errorReply(req.id, err, errkind::kBadRequest,
                             req_hash));
        return;
    }

    switch (req.op) {
      case Request::Op::Ping:
        sendReply(conn, pongReply(req.id, req_hash));
        return;
      case Request::Op::Stats: {
        JsonWriter w;
        w.beginObject();
        w.key("id");
        req.id.writeTo(w);
        w.key("ok").value(true);
        w.key("req").value(std::string_view(hashHex(req_hash)));
        w.key("stats").rawValue(statsJson());
        w.endObject();
        sendReply(conn, w.str());
        return;
      }
      case Request::Op::Shutdown: {
        JsonWriter w;
        w.beginObject();
        w.key("id");
        req.id.writeTo(w);
        w.key("ok").value(true);
        w.key("req").value(std::string_view(hashHex(req_hash)));
        w.key("draining").value(true);
        w.endObject();
        sendReply(conn, w.str());
        requestDrain();
        return;
      }
      case Request::Op::Run:
        break;
    }

    auto job = std::make_shared<QueuedJob>();
    job->conn = conn;
    job->id = req.id;
    job->req_hash = req_hash;
    job->spec = std::move(req.job);
    job->key = resultCacheKey(job->spec.cfg,
                              programHashFor(job->spec.workload),
                              job->spec.sample);
    // The deadline clock starts at enqueue: queueing delay counts
    // against the budget, so an overloaded daemon sheds stale work
    // instead of simulating answers nobody is waiting for anymore.
    const double budget_s = job->spec.deadline_ms > 0
        ? static_cast<double>(job->spec.deadline_ms) / 1000.0
        : opts_.deadline_s;
    if (budget_s > 0) {
        job->deadline = Clock::now()
            + std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(budget_s));
    }
    {
        std::unique_lock<std::mutex> lk(queue_mu_);
        if (opts_.queue_max > 0 && queue_.size() >= opts_.queue_max) {
            lk.unlock(); // reply outside the lock
            rejected_overload_.fetch_add(1);
            sendReply(job->conn,
                      errorReply(job->id,
                                 strprintf("overloaded: %llu jobs "
                                           "queued (DMT_SERVE_QUEUE)",
                                           static_cast<unsigned long long>(
                                               opts_.queue_max)),
                                 errkind::kOverloaded, req_hash));
            return;
        }
        job->seq = next_seq_++;
        queue_.push(std::move(job));
    }
    queue_cv_.notify_one();
}

u64
Server::programHashFor(const std::string &workload)
{
    std::lock_guard<std::mutex> lk(prog_mu_);
    auto it = prog_hash_.find(workload);
    if (it != prog_hash_.end())
        return it->second;
    // Workload names were suite-checked at parse time, so build cannot
    // fatal().  Build once per daemon lifetime per workload.
    const u64 h = Checkpoint::programHash(buildWorkload(workload));
    prog_hash_[workload] = h;
    return h;
}

void
Server::workerLoop()
{
    for (;;) {
        std::shared_ptr<QueuedJob> job;
        {
            std::unique_lock<std::mutex> lk(queue_mu_);
            queue_cv_.wait(lk, [&] {
                return !queue_.empty() || draining_.load();
            });
            if (queue_.empty()) {
                if (draining_.load())
                    return;
                continue;
            }
            job = queue_.top();
            queue_.pop();
            ++active_jobs_;
        }

        const auto t0 = Clock::now();
        const bool has_deadline =
            job->deadline.time_since_epoch().count() != 0;
        if (has_deadline && t0 >= job->deadline) {
            // Expired while queued: shed the job without simulating.
            // The cache stays untouched, so a retry with a fresh
            // budget computes (or disk-hits) normally.
            deadline_expired_.fetch_add(1);
            const double waited =
                std::chrono::duration<double>(t0 - job->deadline).count();
            sendReply(job->conn,
                      errorReply(job->id,
                                 strprintf("deadline expired %.1fs ago "
                                           "while queued",
                                           waited),
                                 errkind::kDeadline, job->req_hash));
            std::lock_guard<std::mutex> lk(queue_mu_);
            --active_jobs_;
            if (queue_.empty() && active_jobs_ == 0)
                drained_cv_.notify_all();
            continue;
        }
        if (has_deadline)
            job->spec.cfg.deadline = job->deadline;
        const ResultCache::Outcome out =
            cache_.getOrCompute(job->key, [&]() -> ComputedResult {
                ComputedResult res;
                const RunResult r = runWorkloadJob(
                    job->spec.cfg, job->spec.workload,
                    job->spec.max_retired, job->spec.sample);
                res.json = r.jsonString();
                res.hash = fnv1aHash(res.json);
                res.ok = true;
                return res;
            });
        busy_us_.fetch_add(static_cast<u64>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - t0)
                .count()));
        if (!out.cached)
            jobs_simulated_.fetch_add(1);

        if (out.ok) {
            sendReply(job->conn,
                      okRunReply(job->id, out.json, job->key, out.hash,
                                 out.cached, job->req_hash));
        } else if (out.error.rfind("deadline expired", 0) == 0) {
            deadline_expired_.fetch_add(1);
            sendReply(job->conn,
                      errorReply(job->id, out.error, errkind::kDeadline,
                                 job->req_hash));
        } else {
            jobs_failed_.fetch_add(1);
            sendReply(job->conn,
                      errorReply(job->id, out.error, errkind::kSimError,
                                 job->req_hash));
        }

        {
            std::lock_guard<std::mutex> lk(queue_mu_);
            --active_jobs_;
            if (queue_.empty() && active_jobs_ == 0)
                drained_cv_.notify_all();
        }
    }
}

void
Server::sendReply(const std::shared_ptr<Conn> &conn,
                  const std::string &body)
{
    const std::string line = body + "\n";
    std::lock_guard<std::mutex> lk(conn->write_mu);
    // A failed send means the client is gone; the result (if any) is
    // cached regardless, so the work is not lost.
    sendAll(conn->fd, line.data(), line.size());
}

void
Server::requestDrain()
{
    bool expected = false;
    if (!draining_.compare_exchange_strong(expected, true))
        return;
    queue_cv_.notify_all();
}

void
Server::join()
{
    if (!started_)
        return;
    if (acceptor_.joinable())
        acceptor_.join();
    // The acceptor is gone, so readers_ can no longer grow.
    {
        std::lock_guard<std::mutex> lk(readers_mu_);
        for (std::thread &t : readers_) {
            if (t.joinable())
                t.join();
        }
        readers_.clear();
    }
    // Give queued jobs drain_s to finish, then fail the remainder
    // with a structured reply so no client blocks forever.  Replies
    // go out after dropping the queue lock: a worker mid-reply holds
    // the connection write lock and takes the queue lock next.
    std::vector<std::shared_ptr<QueuedJob>> dropped;
    {
        std::unique_lock<std::mutex> lk(queue_mu_);
        const bool drained = drained_cv_.wait_for(
            lk, std::chrono::duration<double>(opts_.drain_s),
            [&] { return queue_.empty() && active_jobs_ == 0; });
        if (!drained) {
            while (!queue_.empty()) {
                dropped.push_back(queue_.top());
                queue_.pop();
            }
        }
    }
    for (const std::shared_ptr<QueuedJob> &job : dropped) {
        jobs_rejected_.fetch_add(1);
        sendReply(job->conn,
                  errorReply(job->id,
                             "server draining: job dropped after drain "
                             "timeout",
                             errkind::kDraining, job->req_hash));
    }
    queue_cv_.notify_all();
    for (std::thread &t : workers_) {
        if (t.joinable())
            t.join();
    }
    workers_.clear();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    started_ = false;
}

std::string
Server::statsJson() const
{
    size_t depth = 0;
    int active = 0;
    {
        std::lock_guard<std::mutex> lk(queue_mu_);
        depth = queue_.size();
        active = active_jobs_;
    }
    const ResultCache::Counters cc = cache_.counters();
    const CheckpointCacheCounters kc = checkpointCacheCounters();

    JsonWriter w;
    w.beginObject();
    w.key("pool_width").value(opts_.pool);
    w.key("draining").value(draining_.load());
    w.key("queue_depth").value(static_cast<u64>(depth));
    w.key("active_jobs").value(active);
    w.key("requests").value(requests_.load());
    w.key("bad_requests").value(bad_requests_.load());
    w.key("jobs_simulated").value(jobs_simulated_.load());
    w.key("jobs_failed").value(jobs_failed_.load());
    w.key("jobs_rejected").value(jobs_rejected_.load());
    w.key("rejected_overload").value(rejected_overload_.load());
    w.key("deadline_expired").value(deadline_expired_.load());
    w.key("busy_s").value(static_cast<double>(busy_us_.load()) / 1e6);
    w.key("wall_s").value(
        std::chrono::duration<double>(Clock::now() - start_time_)
            .count());
    w.key("cache");
    w.beginObject();
    w.key("capacity").value(cc.capacity);
    w.key("entries").value(cc.entries);
    w.key("hits").value(cc.hits);
    w.key("disk_hits").value(cc.disk_hits);
    w.key("misses").value(cc.misses);
    w.key("joins").value(cc.joins);
    w.key("evictions").value(cc.evictions);
    w.key("spills").value(cc.spills);
    w.key("restore_rejected").value(cc.restore_rejected);
    w.key("hit_rate").value(cc.hitRate());
    w.endObject();
    w.key("ckpt_cache");
    w.beginObject();
    w.key("mem_hits").value(kc.mem_hits);
    w.key("disk_hits").value(kc.disk_hits);
    w.key("builds").value(kc.builds);
    w.endObject();
    w.endObject();
    return w.str();
}

} // namespace dmt
