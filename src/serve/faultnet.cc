#include "serve/faultnet.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/env.hh"

namespace dmt
{

namespace
{

constexpr int kPollMs = 100;

bool
sendAll(int fd, const char *data, size_t n)
{
    while (n > 0) {
        const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += w;
        n -= static_cast<size_t>(w);
    }
    return true;
}

int
connectLoopback(int port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

} // namespace

FaultNetOptions
FaultNetOptions::fromEnv(int upstream_port)
{
    FaultNetOptions o;
    o.upstream_port = upstream_port;
    o.rate = parseEnvF64("DMT_FAULTNET_RATE", 0.05, 0.0, 1.0);
    o.seed = parseEnvU64("DMT_FAULTNET_SEED", 1998);
    o.stall_ms = parseEnvU64("DMT_FAULTNET_STALL_MS", 100, 0, 60000);
    return o;
}

FaultNetProxy::FaultNetProxy(const FaultNetOptions &opts)
    : opts_(opts), rng_(opts.seed)
{
}

FaultNetProxy::~FaultNetProxy()
{
    stop();
}

bool
FaultNetProxy::start(std::string *err)
{
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        if (err)
            *err = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<u16>(opts_.listen_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0
        || ::listen(listen_fd_, 64) < 0) {
        if (err)
            *err = std::string("bind/listen: ") + std::strerror(errno);
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr *>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    started_ = true;
    acceptor_ = std::thread(&FaultNetProxy::acceptLoop, this);
    return true;
}

void
FaultNetProxy::stop()
{
    if (!started_)
        return;
    stopping_.store(true);
    if (acceptor_.joinable())
        acceptor_.join();
    {
        std::lock_guard<std::mutex> lk(relays_mu_);
        for (std::thread &t : relays_) {
            if (t.joinable())
                t.join();
        }
        relays_.clear();
    }
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    started_ = false;
}

FaultNetProxy::Counters
FaultNetProxy::counters() const
{
    Counters c;
    c.connections = connections_.load();
    c.refused = refused_.load();
    c.chunks = chunks_.load();
    c.garbled = garbled_.load();
    c.torn = torn_.load();
    c.dropped = dropped_.load();
    c.stalled = stalled_.load();
    return c;
}

bool
FaultNetProxy::drawRefuse()
{
    std::lock_guard<std::mutex> lk(rng_mu_);
    return rng_.chance(opts_.rate);
}

FaultNetProxy::Decision
FaultNetProxy::drawChunkFault(size_t len)
{
    Decision d;
    std::lock_guard<std::mutex> lk(rng_mu_);
    if (!rng_.chance(opts_.rate))
        return d;
    switch (rng_.below(4)) {
      case 0:
        d.fault = Fault::Garble;
        d.garble_n = static_cast<int>(1 + rng_.below(8));
        for (int i = 0; i < d.garble_n; ++i) {
            d.garble_off[i] = static_cast<size_t>(rng_.below(len));
            d.garble_xor[i] =
                static_cast<unsigned char>(1 + rng_.below(255));
        }
        break;
      case 1:
        d.fault = Fault::Tear;
        d.tear_keep = static_cast<size_t>(rng_.below(len));
        break;
      case 2:
        d.fault = Fault::Drop;
        break;
      default:
        d.fault = Fault::Stall;
        break;
    }
    return d;
}

void
FaultNetProxy::acceptLoop()
{
    while (!stopping_.load()) {
        pollfd pfd{listen_fd_, POLLIN, 0};
        const int n = ::poll(&pfd, 1, kPollMs);
        if (n <= 0)
            continue;
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        connections_.fetch_add(1);
        if (drawRefuse()) {
            // The client sees ECONNRESET/EOF before any reply — the
            // moral equivalent of a refused connection.
            refused_.fetch_add(1);
            ::close(fd);
            continue;
        }
        std::lock_guard<std::mutex> lk(relays_mu_);
        relays_.emplace_back(&FaultNetProxy::relayLoop, this, fd);
    }
}

void
FaultNetProxy::relayLoop(int client_fd)
{
    const int up_fd = connectLoopback(opts_.upstream_port);
    if (up_fd < 0) {
        ::close(client_fd);
        return;
    }
    char chunk[4096];
    bool open = true;
    while (open && !stopping_.load()) {
        pollfd pfds[2] = {{client_fd, POLLIN, 0}, {up_fd, POLLIN, 0}};
        const int n = ::poll(pfds, 2, kPollMs);
        if (n < 0 && errno != EINTR)
            break;
        if (n <= 0)
            continue;
        for (int i = 0; i < 2 && open; ++i) {
            if (!(pfds[i].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            const ssize_t r =
                ::recv(pfds[i].fd, chunk, sizeof(chunk), 0);
            if (r <= 0) {
                open = false;
                break;
            }
            size_t len = static_cast<size_t>(r);
            const int dst = pfds[i].fd == client_fd ? up_fd : client_fd;
            chunks_.fetch_add(1);
            const Decision d = drawChunkFault(len);
            switch (d.fault) {
              case Fault::Garble:
                for (int g = 0; g < d.garble_n; ++g)
                    chunk[d.garble_off[g]] = static_cast<char>(
                        static_cast<unsigned char>(
                            chunk[d.garble_off[g]])
                        ^ d.garble_xor[g]);
                garbled_.fetch_add(1);
                break;
              case Fault::Tear:
                torn_.fetch_add(1);
                if (d.tear_keep > 0)
                    sendAll(dst, chunk, d.tear_keep);
                open = false;
                continue;
              case Fault::Drop:
                dropped_.fetch_add(1);
                open = false;
                continue;
              case Fault::Stall:
                stalled_.fetch_add(1);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(opts_.stall_ms));
                break;
              case Fault::None:
                break;
            }
            if (!sendAll(dst, chunk, len))
                open = false;
        }
    }
    ::close(client_fd);
    ::close(up_fd);
}

} // namespace dmt
