/**
 * @file
 * Content-addressed result cache with single-flight deduplication.
 *
 * Identity: a result is addressed by FNV-1a over the canonical
 * machine-configuration JSON (budget included), the program-image
 * hash of the workload, and the canonical sample spec — exactly the
 * inputs the deterministic engine's output depends on.  Because runs
 * are bit-reproducible (DESIGN.md section 10), a cache hit *is* the
 * simulation: the stored canonical RunResult JSON is byte-identical
 * to what re-running would produce.
 *
 * Single-flight: when N requests for the same key arrive while none
 * is cached, exactly one computes; the rest block on the in-flight
 * entry and receive the same bytes.  Errors (SimError) propagate to
 * every waiter but are never cached — a later identical request
 * retries.
 *
 * Eviction is LRU over a bounded entry count (DMT_SERVE_CACHE); the
 * values are strings, so memory is roughly entries x canonical-JSON
 * size (a few KB each).
 *
 * Durable tier: with a spill directory (DMT_SERVE_CACHE_DIR) every
 * computed entry is also written to disk — atomically, temp-file +
 * rename, with a magic header and an FNV-1a integrity footer — at
 * compute time, not at shutdown, so a kill -9'd daemon loses nothing
 * already answered.  A memory miss probes the directory before
 * simulating; torn, truncated or corrupted files are rejected (and
 * deleted) at load time, mirroring the checkpoint store's guards, and
 * the entry is simply recomputed and rewritten.  Disk entries are
 * content-addressed by the same key as memory entries and are not
 * LRU-bounded: the directory is the durable record.
 */

#ifndef DMT_SERVE_CACHE_HH
#define DMT_SERVE_CACHE_HH

#include <condition_variable>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/types.hh"

namespace dmt
{

struct SampleParams;
struct SimConfig;

/**
 * The cache key for (machine cfg incl. budget, program image, sample
 * spec).  @p prog_hash is Checkpoint::programHash() of the workload's
 * built image, so two workload names with identical programs share
 * results and a changed generator invalidates naturally.
 */
u64 resultCacheKey(const SimConfig &cfg, u64 prog_hash,
                   const SampleParams &sample);

/** What a compute function returns / a cache entry stores. */
struct ComputedResult
{
    bool ok = false;
    std::string json;     ///< canonical RunResult document
    u64 hash = 0;         ///< fnv1aHash(json)
    std::string error;    ///< SimError message when !ok
};

/** Bounded LRU result cache with single-flight dedup and an optional
 *  durable on-disk tier. */
class ResultCache
{
  public:
    /**
     * @param max_entries 0 disables in-memory storage (dedup still
     *        applies).
     * @param dir Spill directory for the durable tier (must already
     *        exist); empty keeps the cache memory-only.
     */
    explicit ResultCache(size_t max_entries, std::string dir = "");

    struct Outcome
    {
        bool ok = false;
        /** Served without running a simulation in this request —
         *  either a stored entry (hit) or a single-flight join. */
        bool cached = false;
        bool joined = false; ///< waited on another request's compute
        std::string json;
        u64 hash = 0;
        std::string error;
    };

    /**
     * Return the entry for @p key, computing it with @p compute if
     * absent.  @p compute runs outside the cache lock; a SimError it
     * throws is captured into a failed Outcome (and delivered to any
     * waiters joined on this flight).
     */
    Outcome getOrCompute(u64 key,
                         const std::function<ComputedResult()> &compute);

    struct Counters
    {
        u64 hits = 0;       ///< served from memory storage
        u64 misses = 0;     ///< computed by this request
        u64 joins = 0;      ///< served by another request's compute
        u64 evictions = 0;
        u64 entries = 0;    ///< current stored entries
        u64 capacity = 0;
        u64 disk_hits = 0;  ///< served from the durable tier
        u64 spills = 0;     ///< entries persisted to the durable tier
        /** Durable-tier files rejected at load time (torn write, bad
         *  magic, key mismatch, corrupt payload) and deleted. */
        u64 restore_rejected = 0;

        double
        hitRate() const
        {
            const u64 lookups = hits + disk_hits + misses + joins;
            return lookups > 0
                ? static_cast<double>(hits + disk_hits + joins)
                      / static_cast<double>(lookups)
                : 0.0;
        }
    };
    Counters counters() const;

    /** The durable-tier directory ("" when the tier is off). */
    const std::string &dir() const { return dir_; }

  private:
    struct Flight
    {
        bool done = false;
        ComputedResult res;
    };

    using LruList = std::list<std::pair<u64, ComputedResult>>;

    /** Durable-tier probe for @p key; called without @p mu_ held.
     *  @retval false on miss or rejection (sets @p rejected). */
    bool loadDisk(u64 key, ComputedResult *out, bool *rejected) const;
    /** Persist @p res for @p key (atomic temp+rename); returns
     *  success.  Called without @p mu_ held. */
    bool spillDisk(u64 key, const ComputedResult &res) const;

    mutable std::mutex mu_;
    std::condition_variable cv_;
    size_t max_entries_;
    std::string dir_;
    LruList lru_; ///< front = most recently used
    std::unordered_map<u64, LruList::iterator> map_;
    std::unordered_map<u64, std::shared_ptr<Flight>> inflight_;
    Counters ctr_;
};

} // namespace dmt

#endif // DMT_SERVE_CACHE_HH
