#include "serve/cache.hh"

#include "common/json.hh"
#include "common/log.hh"
#include "exp/report.hh"
#include "exp/sampled.hh"
#include "uarch/config.hh"

namespace dmt
{

u64
resultCacheKey(const SimConfig &cfg, u64 prog_hash,
               const SampleParams &sample)
{
    JsonWriter w;
    cfg.jsonOn(w);
    u64 h = fnv1aHash(w.str());
    h = fnv1aHash("|", h);
    h = fnv1aHash(hashHex(prog_hash), h);
    h = fnv1aHash("|", h);
    h = fnv1aHash(sample.canonicalSpec(), h);
    return h;
}

ResultCache::ResultCache(size_t max_entries) : max_entries_(max_entries)
{
    ctr_.capacity = max_entries;
}

ResultCache::Outcome
ResultCache::getOrCompute(u64 key,
                          const std::function<ComputedResult()> &compute)
{
    std::unique_lock<std::mutex> lk(mu_);
    std::shared_ptr<Flight> flight;
    for (;;) {
        auto it = map_.find(key);
        if (it != map_.end()) {
            // Promote to most-recent and serve the stored bytes.
            lru_.splice(lru_.begin(), lru_, it->second);
            ++ctr_.hits;
            const ComputedResult &res = it->second->second;
            return Outcome{true, true, false, res.json, res.hash, ""};
        }
        auto fit = inflight_.find(key);
        if (fit == inflight_.end())
            break;
        // Single-flight join: another request is computing this key.
        flight = fit->second;
        ++ctr_.joins;
        cv_.wait(lk, [&] { return flight->done; });
        const ComputedResult &res = flight->res;
        return Outcome{res.ok, true, true, res.json, res.hash,
                       res.error};
    }

    flight = std::make_shared<Flight>();
    inflight_[key] = flight;
    ++ctr_.misses;
    lk.unlock();

    ComputedResult res;
    try {
        res = compute();
    } catch (const SimError &err) {
        res = ComputedResult{};
        res.error = err.what();
    }

    lk.lock();
    if (res.ok && max_entries_ > 0) {
        lru_.emplace_front(key, res);
        map_[key] = lru_.begin();
        while (lru_.size() > max_entries_) {
            map_.erase(lru_.back().first);
            lru_.pop_back();
            ++ctr_.evictions;
        }
    }
    ctr_.entries = lru_.size();
    flight->res = res;
    flight->done = true;
    inflight_.erase(key);
    cv_.notify_all();
    return Outcome{res.ok, false, false, res.json, res.hash, res.error};
}

ResultCache::Counters
ResultCache::counters() const
{
    std::lock_guard<std::mutex> lk(mu_);
    Counters c = ctr_;
    c.entries = lru_.size();
    return c;
}

} // namespace dmt
