#include "serve/cache.hh"

#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "common/json.hh"
#include "common/log.hh"
#include "exp/report.hh"
#include "exp/sampled.hh"
#include "uarch/config.hh"

namespace dmt
{

namespace
{

/** Durable-entry format version; a change rejects (and rewrites) every
 *  older file rather than misreading it. */
constexpr char kResMagic[8] = {'D', 'M', 'T', 'R', 'E', 'S', '0', '1'};

void
putU64LE(std::string *buf, u64 v)
{
    for (int i = 0; i < 8; ++i)
        buf->push_back(static_cast<char>(v >> (8 * i)));
}

bool
readU64LE(const u8 *p, u64 *v)
{
    u64 out = 0;
    for (int i = 0; i < 8; ++i)
        out |= static_cast<u64>(p[i]) << (8 * i);
    *v = out;
    return true;
}

std::string
entryPath(const std::string &dir, u64 key)
{
    return dir + "/" + hashHex(key) + ".dmtres";
}

} // namespace

u64
resultCacheKey(const SimConfig &cfg, u64 prog_hash,
               const SampleParams &sample)
{
    JsonWriter w;
    cfg.jsonOn(w);
    u64 h = fnv1aHash(w.str());
    h = fnv1aHash("|", h);
    h = fnv1aHash(hashHex(prog_hash), h);
    h = fnv1aHash("|", h);
    h = fnv1aHash(sample.canonicalSpec(), h);
    return h;
}

ResultCache::ResultCache(size_t max_entries, std::string dir)
    : max_entries_(max_entries),
      dir_(std::move(dir))
{
    ctr_.capacity = max_entries;
}

bool
ResultCache::spillDisk(u64 key, const ComputedResult &res) const
{
    // Layout: magic | key | payload length | payload | FNV-1a(payload).
    // The footer (not a header field) is the torn-write guard: a crash
    // mid-write leaves a file whose digest cannot match.
    std::string buf;
    buf.reserve(40 + res.json.size());
    buf.append(kResMagic, sizeof(kResMagic));
    putU64LE(&buf, key);
    putU64LE(&buf, static_cast<u64>(res.json.size()));
    buf.append(res.json);
    putU64LE(&buf, fnv1aHash(res.json));

    const std::string path = entryPath(dir_, key);
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
        warn("result cache: cannot write %s", tmp.c_str());
        return false;
    }
    const bool wrote =
        std::fwrite(buf.data(), 1, buf.size(), f) == buf.size();
    const bool closed = std::fclose(f) == 0;
    if (!wrote || !closed
        || std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("result cache: failed to persist %s", path.c_str());
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
ResultCache::loadDisk(u64 key, ComputedResult *out, bool *rejected) const
{
    *rejected = false;
    const std::string path = entryPath(dir_, key);
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false; // plain miss: nothing durable for this key

    std::vector<u8> buf;
    u8 chunk[65536];
    size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        buf.insert(buf.end(), chunk, chunk + n);
    std::fclose(f);

    // Every rejection deletes the file: the entry will be recomputed
    // and rewritten, so a corrupt file can never wedge its key.
    const auto reject = [&](const char *why) {
        warn("result cache: rejecting %s (%s)", path.c_str(), why);
        std::remove(path.c_str());
        *rejected = true;
        return false;
    };

    if (buf.size() < 32)
        return reject("truncated header");
    if (std::memcmp(buf.data(), kResMagic, sizeof(kResMagic)) != 0)
        return reject("bad magic/version");
    u64 stored_key = 0, len = 0, footer = 0;
    readU64LE(buf.data() + 8, &stored_key);
    readU64LE(buf.data() + 16, &len);
    if (stored_key != key)
        return reject("key mismatch");
    if (buf.size() != 32 + len)
        return reject("torn or oversized payload");
    const char *payload = reinterpret_cast<const char *>(buf.data() + 24);
    readU64LE(buf.data() + 24 + len, &footer);
    const u64 digest = fnv1aHash(std::string_view(payload, len));
    if (digest != footer)
        return reject("integrity footer mismatch");

    out->ok = true;
    out->json.assign(payload, len);
    out->hash = digest;
    out->error.clear();
    return true;
}

ResultCache::Outcome
ResultCache::getOrCompute(u64 key,
                          const std::function<ComputedResult()> &compute)
{
    std::unique_lock<std::mutex> lk(mu_);
    std::shared_ptr<Flight> flight;
    for (;;) {
        auto it = map_.find(key);
        if (it != map_.end()) {
            // Promote to most-recent and serve the stored bytes.
            lru_.splice(lru_.begin(), lru_, it->second);
            ++ctr_.hits;
            const ComputedResult &res = it->second->second;
            return Outcome{true, true, false, res.json, res.hash, ""};
        }
        auto fit = inflight_.find(key);
        if (fit == inflight_.end())
            break;
        // Single-flight join: another request is computing this key.
        flight = fit->second;
        ++ctr_.joins;
        cv_.wait(lk, [&] { return flight->done; });
        const ComputedResult &res = flight->res;
        return Outcome{res.ok, true, true, res.json, res.hash,
                       res.error};
    }

    flight = std::make_shared<Flight>();
    inflight_[key] = flight;
    lk.unlock();

    // The durable-tier probe runs inside the flight: concurrent
    // requests for this key wait on one disk read, not N, and a disk
    // hit is indistinguishable from a memory hit to every waiter.
    ComputedResult res;
    bool from_disk = false, rejected = false, spilled = false;
    if (!dir_.empty())
        from_disk = loadDisk(key, &res, &rejected);

    if (!from_disk) {
        try {
            res = compute();
        } catch (const SimError &err) {
            res = ComputedResult{};
            res.error = err.what();
        }
        if (res.ok && !dir_.empty())
            spilled = spillDisk(key, res);
    }

    lk.lock();
    if (from_disk)
        ++ctr_.disk_hits;
    else
        ++ctr_.misses;
    if (rejected)
        ++ctr_.restore_rejected;
    if (spilled)
        ++ctr_.spills;
    if (res.ok && max_entries_ > 0) {
        lru_.emplace_front(key, res);
        map_[key] = lru_.begin();
        while (lru_.size() > max_entries_) {
            map_.erase(lru_.back().first);
            lru_.pop_back();
            ++ctr_.evictions;
        }
    }
    ctr_.entries = lru_.size();
    flight->res = res;
    flight->done = true;
    inflight_.erase(key);
    cv_.notify_all();
    return Outcome{res.ok, from_disk, false, res.json, res.hash,
                   res.error};
}

ResultCache::Counters
ResultCache::counters() const
{
    std::lock_guard<std::mutex> lk(mu_);
    Counters c = ctr_;
    c.entries = lru_.size();
    return c;
}

} // namespace dmt
