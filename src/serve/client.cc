#include "serve/client.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/rng.hh"
#include "common/strutil.hh"
#include "exp/report.hh"
#include "serve/protocol.hh"

namespace dmt
{

namespace
{

int
connectOnce(int port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

} // namespace

ServeClient::~ServeClient()
{
    close();
}

void
ServeClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    rxbuf_.clear();
}

bool
ServeClient::connect(int port, std::string *err, double retry_s)
{
    close();
    const auto deadline = std::chrono::steady_clock::now()
        + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(retry_s));
    for (;;) {
        fd_ = connectOnce(port);
        if (fd_ >= 0)
            return true;
        if (std::chrono::steady_clock::now() >= deadline)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (err)
        *err = "connect 127.0.0.1:" + std::to_string(port) + ": "
            + std::strerror(errno);
    return false;
}

bool
ServeClient::sendLine(const std::string &line, std::string *err)
{
    if (fd_ < 0) {
        if (err)
            *err = "not connected";
        return false;
    }
    const std::string out = line + "\n";
    const char *p = out.data();
    size_t n = out.size();
    while (n > 0) {
        const ssize_t w = ::send(fd_, p, n, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            if (err)
                *err = std::string("send: ") + std::strerror(errno);
            return false;
        }
        p += w;
        n -= static_cast<size_t>(w);
    }
    return true;
}

bool
ServeClient::recvLine(std::string *line, std::string *err)
{
    timed_out_ = false;
    if (fd_ < 0) {
        if (err)
            *err = "not connected";
        return false;
    }
    const auto deadline = std::chrono::steady_clock::now()
        + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeout_s_));
    for (;;) {
        const size_t nl = rxbuf_.find('\n');
        if (nl != std::string::npos) {
            *line = rxbuf_.substr(0, nl);
            rxbuf_.erase(0, nl + 1);
            return true;
        }
        if (timeout_s_ > 0) {
            const auto left = deadline - std::chrono::steady_clock::now();
            const auto left_ms =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    left)
                    .count();
            pollfd pfd{fd_, POLLIN, 0};
            const int n = ::poll(
                &pfd, 1,
                static_cast<int>(std::max<long long>(0, left_ms)));
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                if (err)
                    *err = std::string("poll: ") + std::strerror(errno);
                return false;
            }
            if (n == 0) {
                timed_out_ = true;
                if (err)
                    *err = strprintf("timeout: no reply within %.3fs",
                                     timeout_s_);
                return false;
            }
        }
        char chunk[4096];
        const ssize_t r = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (r == 0) {
            if (err)
                *err = "server closed the connection";
            return false;
        }
        if (r < 0) {
            if (errno == EINTR)
                continue;
            if (err)
                *err = std::string("recv: ") + std::strerror(errno);
            return false;
        }
        rxbuf_.append(chunk, static_cast<size_t>(r));
    }
}

bool
ServeClient::recvReply(JsonValue *reply, std::string *err)
{
    if (!recvLine(&last_line_, err))
        return false;
    std::string perr;
    if (!JsonValue::parse(last_line_, reply, &perr)) {
        if (err)
            *err = "bad reply JSON: " + perr;
        return false;
    }
    return true;
}

bool
ServeClient::request(const std::string &line, JsonValue *reply,
                     std::string *err)
{
    return sendLine(line, err) && recvReply(reply, err);
}

namespace
{

/** Is @p reply a definitive answer to request @p id?  Sets
 *  @p retry_why when not (wrong/missing id = corrupted or stale
 *  transport; a wrong/missing "req" echo = the *request* was mutated
 *  in flight, so whatever the server answered is not our question;
 *  overloaded/draining = try again later; a run reply whose spliced
 *  result bytes do not match result_hash = torn reply). */
bool
replyIsDefinitive(const JsonValue &reply, std::string_view raw, i64 id,
                  const std::string &req_echo, std::string *retry_why)
{
    const JsonValue *rid = reply.find("id");
    if (!rid || rid->type() != JsonValue::Type::Number
        || static_cast<i64>(rid->asNumber()) != id) {
        *retry_why = "reply id mismatch (corrupted or stale reply)";
        return false;
    }
    // The id alone cannot catch a request garbled into *different but
    // valid* JSON — the server would faithfully answer the mutated job
    // under our id.  The request-integrity echo can: the server hashes
    // the exact line it served, and we hashed the exact line we sent.
    const JsonValue *req = reply.find("req");
    if (!req || req->type() != JsonValue::Type::String
        || req->asString() != req_echo) {
        *retry_why =
            "request integrity echo mismatch (request corrupted in "
            "flight)";
        return false;
    }
    const std::string kind = replyErrorKind(reply);
    if (kind == errkind::kOverloaded || kind == errkind::kDraining) {
        *retry_why = "server " + kind;
        return false;
    }
    const JsonValue *hash = reply.find("result_hash");
    if (hash && hash->type() == JsonValue::Type::String) {
        std::string result;
        if (!extractRawResult(raw, &result)
            || hashHex(fnv1aHash(result)) != hash->asString()) {
            *retry_why = "result bytes do not match result_hash";
            return false;
        }
    }
    return true;
}

} // namespace

bool
ServeClient::requestWithRetry(int port, const std::string &line, i64 id,
                              const RetryPolicy &pol, JsonValue *reply,
                              std::string *err)
{
    Rng rng(pol.seed);
    const std::string req_echo = hashHex(fnv1aHash(line));
    std::string last_err = "no attempts made";
    const int attempts = std::max(1, pol.attempts);
    for (int attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0) {
            // Exponential backoff, jittered to [50%, 100%] of the
            // nominal delay so synchronized clients spread out.
            double delay = pol.base_s;
            for (int i = 1; i < attempt && delay < pol.max_s; ++i)
                delay *= 2.0;
            delay = std::min(delay, pol.max_s);
            delay *= 0.5 + 0.5 * (static_cast<double>(rng.below(1024))
                                  / 1024.0);
            std::this_thread::sleep_for(
                std::chrono::duration<double>(delay));
        }
        std::string aerr;
        if (!connected() && !connect(port, &aerr, 0.0)) {
            last_err = aerr;
            continue;
        }
        setTimeout(pol.op_timeout_s);
        if (!sendLine(line, &aerr)) {
            last_err = aerr;
            close();
            continue;
        }
        if (!recvReply(reply, &aerr)) {
            last_err = aerr;
            // After a timeout the reply may still arrive; a fresh
            // connection is the only way to keep id matching sound.
            close();
            continue;
        }
        std::string why;
        if (!replyIsDefinitive(*reply, last_line_, id, req_echo,
                               &why)) {
            last_err = why;
            if (why.rfind("server ", 0) != 0)
                close(); // corrupted transport, not a polite error
            continue;
        }
        return true;
    }
    if (err)
        *err = strprintf("giving up after %d attempts: %s", attempts,
                         last_err.c_str());
    return false;
}

} // namespace dmt
