#include "serve/client.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace dmt
{

namespace
{

int
connectOnce(int port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

} // namespace

ServeClient::~ServeClient()
{
    close();
}

void
ServeClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    rxbuf_.clear();
}

bool
ServeClient::connect(int port, std::string *err, double retry_s)
{
    close();
    const auto deadline = std::chrono::steady_clock::now()
        + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(retry_s));
    for (;;) {
        fd_ = connectOnce(port);
        if (fd_ >= 0)
            return true;
        if (std::chrono::steady_clock::now() >= deadline)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (err)
        *err = "connect 127.0.0.1:" + std::to_string(port) + ": "
            + std::strerror(errno);
    return false;
}

bool
ServeClient::sendLine(const std::string &line, std::string *err)
{
    if (fd_ < 0) {
        if (err)
            *err = "not connected";
        return false;
    }
    const std::string out = line + "\n";
    const char *p = out.data();
    size_t n = out.size();
    while (n > 0) {
        const ssize_t w = ::send(fd_, p, n, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            if (err)
                *err = std::string("send: ") + std::strerror(errno);
            return false;
        }
        p += w;
        n -= static_cast<size_t>(w);
    }
    return true;
}

bool
ServeClient::recvLine(std::string *line, std::string *err)
{
    if (fd_ < 0) {
        if (err)
            *err = "not connected";
        return false;
    }
    for (;;) {
        const size_t nl = rxbuf_.find('\n');
        if (nl != std::string::npos) {
            *line = rxbuf_.substr(0, nl);
            rxbuf_.erase(0, nl + 1);
            return true;
        }
        char chunk[4096];
        const ssize_t r = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (r == 0) {
            if (err)
                *err = "server closed the connection";
            return false;
        }
        if (r < 0) {
            if (errno == EINTR)
                continue;
            if (err)
                *err = std::string("recv: ") + std::strerror(errno);
            return false;
        }
        rxbuf_.append(chunk, static_cast<size_t>(r));
    }
}

bool
ServeClient::recvReply(JsonValue *reply, std::string *err)
{
    if (!recvLine(&last_line_, err))
        return false;
    std::string perr;
    if (!JsonValue::parse(last_line_, reply, &perr)) {
        if (err)
            *err = "bad reply JSON: " + perr;
        return false;
    }
    return true;
}

bool
ServeClient::request(const std::string &line, JsonValue *reply,
                     std::string *err)
{
    return sendLine(line, err) && recvReply(reply, err);
}

} // namespace dmt
