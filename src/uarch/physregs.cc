#include "uarch/physregs.hh"

#include "common/log.hh"

namespace dmt
{

PhysRegFile::PhysRegFile(int count)
{
    DMT_ASSERT(count > 0, "empty register file");
    values.assign(static_cast<size_t>(count), 0);
    ready_.assign(static_cast<size_t>(count), 0);
    alloc_.assign(static_cast<size_t>(count), 0);
    free_list.reserve(static_cast<size_t>(count));
    for (int i = count - 1; i >= 0; --i)
        free_list.push_back(i);
}

size_t
PhysRegFile::check(PhysReg p) const
{
    DMT_ASSERT(p >= 0 && p < count(), "phys reg %d out of range", p);
    return static_cast<size_t>(p);
}

PhysReg
PhysRegFile::alloc()
{
    if (free_list.empty())
        return kNoPhysReg;
    const PhysReg p = free_list.back();
    free_list.pop_back();
    DMT_ASSERT(!alloc_[static_cast<size_t>(p)], "alloc of live reg %d", p);
    alloc_[static_cast<size_t>(p)] = 1;
    ready_[static_cast<size_t>(p)] = 0;
    return p;
}

void
PhysRegFile::free(PhysReg p)
{
    const size_t i = check(p);
    DMT_ASSERT(alloc_[i], "double free of phys reg %d", p);
    alloc_[i] = 0;
    free_list.push_back(p);
}

int
PhysRegFile::numAllocated() const
{
    int n = 0;
    for (u8 a : alloc_)
        n += a ? 1 : 0;
    return n;
}

void
PhysRegFile::write(PhysReg p, u32 v)
{
    const size_t i = check(p);
    DMT_ASSERT(alloc_[i], "write to free phys reg %d", p);
    values[i] = v;
    ready_[i] = 1;
}

} // namespace dmt
