/**
 * @file
 * Shared physical register file with free list.  Values and ready bits
 * only; wakeup lists are owned by the engine.  Double-free and
 * use-after-free are checked with allocation bits because register
 * lifetime bugs are the classic failure mode of this design.
 */

#ifndef DMT_UARCH_PHYSREGS_HH
#define DMT_UARCH_PHYSREGS_HH

#include <vector>

#include "common/types.hh"

namespace dmt
{

/** Physical register file + free list. */
class PhysRegFile
{
  public:
    explicit PhysRegFile(int count);

    /** Allocate a register (not-ready); kNoPhysReg when exhausted. */
    PhysReg alloc();

    /** Return a register to the free list. */
    void free(PhysReg p);

    bool ready(PhysReg p) const { return ready_[check(p)]; }
    u32 value(PhysReg p) const { return values[check(p)]; }
    bool allocated(PhysReg p) const { return alloc_[check(p)]; }

    /** Write a value and mark ready. */
    void write(PhysReg p, u32 v);

    int numFree() const { return static_cast<int>(free_list.size()); }
    int count() const { return static_cast<int>(values.size()); }

    /** Registers whose allocation bit is set.  Equal to
     *  count() - numFree() unless the free list and the allocation
     *  bits have diverged (the leak auditor checks exactly that). */
    int numAllocated() const;

  private:
    size_t check(PhysReg p) const;

    std::vector<u32> values;
    std::vector<u8> ready_;
    std::vector<u8> alloc_;
    std::vector<PhysReg> free_list;
};

} // namespace dmt

#endif // DMT_UARCH_PHYSREGS_HH
