#include "uarch/fu.hh"

namespace dmt
{

FuPool::FuPool(bool unlimited_, const FuParams &params_, int lat_div_)
    : unlimited(unlimited_), params(params_), lat_div(lat_div_)
{
}

void
FuPool::newCycle(Cycle now)
{
    alu_left = params.alu;
    mem_left = params.mem_ports;
    muldiv_left = params.muldiv;
}

bool
FuPool::tryIssue(OpClass cls, Cycle now)
{
    if (unlimited)
        return true;

    switch (cls) {
      case OpClass::IntAlu:
        if (alu_left <= 0)
            return false;
        --alu_left;
        return true;
      case OpClass::IntMul:
        if (muldiv_left <= 0 || now < div_busy_until)
            return false;
        --muldiv_left;
        return true;
      case OpClass::IntDiv:
        if (muldiv_left <= 0 || now < div_busy_until)
            return false;
        --muldiv_left;
        div_busy_until = now + static_cast<Cycle>(lat_div);
        return true;
      case OpClass::MemRead:
      case OpClass::MemWrite:
        // A memory op needs a DCache port and an address-generation ALU.
        if (mem_left <= 0 || alu_left <= 0)
            return false;
        --mem_left;
        --alu_left;
        return true;
      case OpClass::Control:
      case OpClass::Other:
        // Branches and misc ops use an ALU slot.
        if (alu_left <= 0)
            return false;
        --alu_left;
        return true;
    }
    return true;
}

} // namespace dmt
