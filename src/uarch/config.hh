/**
 * @file
 * Full machine configuration for the DMT engine.  A max_threads == 1
 * configuration with spawning disabled *is* the paper's baseline
 * superscalar: same pipeline, one retire stage (early retirement and
 * final retirement coincide because nothing is value-speculated).
 */

#ifndef DMT_UARCH_CONFIG_HH
#define DMT_UARCH_CONFIG_HH

#include <chrono>
#include <string>

#include "branch/predictor.hh"
#include "fault/options.hh"
#include "memory/hierarchy.hh"
#include "trace/options.hh"

namespace dmt
{

class JsonWriter;

/** Execution resource counts for the realistic configuration. */
struct FuParams
{
    /** Total ALUs; address calculations of issued memory ops use them. */
    int alu = 4;
    /** Multiply/divide units (divide is unpipelined). */
    int muldiv = 1;
    /** Loads+stores issued to the DCache per cycle. */
    int mem_ports = 2;
};

/** Complete machine description. */
struct SimConfig
{
    // ---- threading ----------------------------------------------------
    /** Hardware thread contexts; 1 disables DMT entirely. */
    int max_threads = 1;
    /** Spawn at procedure calls (after-return threads). */
    bool spawn_on_call = true;
    /** Spawn at backward branches (after-loop threads). */
    bool spawn_on_loop = true;
    /** Predict thread inputs as the parent context (always on in the
     *  paper; exposed for ablation). */
    bool value_prediction = true;
    /** Last-modifier dataflow prediction (paper Section 3.4). */
    bool dataflow_prediction = true;
    /** When a dataflow watch is armed for an input (history says it
     *  will be rewritten by the predecessor), make consumers wait for
     *  the predicted modifier's writeback instead of speculating on a
     *  value known to be stale.  Extension over the paper's
     *  update-and-recover behaviour. */
    bool dataflow_sync = false;
    /** log2 of the thread-selection counter table. */
    int spawn_table_bits = 12;
    /** Threads below this retired size reset their selection counter. */
    int min_thread_size = 12;
    /** Minimum speculative-overlap fraction before counter reset. */
    double min_overlap_frac = 0.10;
    /** Memory dependence throttle (store-set flavoured extension; the
     *  paper speculates all loads aggressively): loads whose PC keeps
     *  getting violated wait until all earlier stores have executed. */
    bool memdep_sync = true;
    /** Maximum concurrent threads with the same start PC (0 =
     *  unlimited).  Bounds how many iterations/unwind levels of the
     *  same static continuation speculate at once. */
    int max_same_start = 0;
    /** Pre-emption hysteresis: the order-list tail is only evicted for
     *  a new thread once it is at least this many cycles old (damps
     *  spawn cascades thrashing freshly created contexts). */
    int preempt_min_age = 0;

    // ---- fetch --------------------------------------------------------
    int fetch_ports = 1;
    /** Instructions per fetch block (per port per cycle). */
    int fetch_block = 4;

    // ---- pipeline -----------------------------------------------------
    /** Active instructions in the execution pipeline (level-1 window). */
    int window_size = 128;
    /** Cycles from fetch to dispatch (decode+rename depth). */
    int frontend_depth = 3;
    /** Early/final retirement width (per cycle). */
    int retire_width = 4;
    /** Unlimited execution units (Figures 4 and 5). */
    bool unlimited_fus = true;
    FuParams fus;
    /** Physical registers; 0 derives a generous default. */
    int phys_regs = 0;

    // ---- latencies ----------------------------------------------------
    int lat_alu = 1;
    int lat_mul = 3;
    int lat_div = 20;
    /** Load-to-use latency including address calculation (DCache hit). */
    int lat_mem = 3;
    /** Extra latency for cross-thread store-to-load forwarding. */
    int lat_xthread_forward = 2;

    // ---- trace buffer ---------------------------------------------------
    /** Trace buffer capacity per thread (instructions). */
    int tb_size = 500;
    /** Recovery pipeline startup latency (trace buffer access). */
    int tb_latency = 4;
    /** Instructions read per cycle during recovery walk; 0 = ideal. */
    int tb_read_block = 4;
    /** Recovery re-dispatch width into the rename unit (per thread —
     *  each trace buffer has its own recovery pipe). */
    int recovery_dispatch_width = 4;
    /** 0: fetch never stalls for recovery; 1: stalls during an active
     *  walk; 2: stalls whenever recovery work is queued. */
    int recovery_fetch_stall = 0;
    /** Same policy levels for dispatch (trace-buffer write port). */
    int recovery_dispatch_stall = 0;
    /**
     * When a branch re-executed by recovery changes direction, repair
     * the thread's trace immediately (true) instead of deferring the
     * flush to the branch's final retirement as the paper describes
     * (false).  Early repair redirects the thread onto the corrected
     * path while it is still speculative.
     */
    bool early_divergence_repair = true;

    // ---- load/store queues --------------------------------------------
    /** Per-thread load queue entries; 0 derives tb_size/4 (paper). */
    int lq_size = 0;
    /** Per-thread store queue entries; 0 derives tb_size/4 (paper). */
    int sq_size = 0;

    // ---- memory & prediction --------------------------------------------
    HierarchyParams mem;
    PredictorParams bpred;

    // ---- run control ------------------------------------------------------
    /** Stop after this many finally-retired instructions (0 = none). */
    u64 max_retired = 0;
    /**
     * Statistics warmup window for checkpoint-resumed runs: the stat
     * block (and the cache-hierarchy snapshot baseline) is zeroed once
     * this many instructions have finally retired, so caches,
     * predictors and spawn tables warm up before measurement begins.
     * The boundary is evaluated between cycles, so up to
     * retire_width-1 instructions of the crossing cycle count toward
     * warmup rather than measurement.  0 measures from cycle zero (the
     * full-run behaviour).
     */
    u64 warmup_retired = 0;
    /** Hard cycle bound (0 = none); exceeding it is a fatal error. */
    u64 max_cycles = 0;
    /** Verify every retired instruction against the golden model. */
    bool check_golden = true;
    /** Deadlock watchdog: panic (SimError + post-mortem) when no
     *  instruction finally retires for this many cycles (0 = off);
     *  DMT_WATCHDOG overrides at engine construction. */
    u64 watchdog_cycles = 500000;
    /**
     * Absolute wall-clock deadline for this run (steady clock); a
     * default-constructed (epoch) value disables the check.  Checked
     * alongside the watchdog in DmtEngine::run() and in the sampled
     * fast-forward loop; expiry panics ("deadline expired ...",
     * SimError) so a caller — notably a serve-layer worker — fails one
     * run, not the process.  Runtime scheduling state, not machine
     * identity: excluded from jsonOn(), canonical hashes and cache
     * keys.
     */
    std::chrono::steady_clock::time_point deadline{};

    /** True when a wall-clock deadline is armed. */
    bool
    hasDeadline() const
    {
        return deadline.time_since_epoch().count() != 0;
    }

    // ---- robustness --------------------------------------------------------
    /** Run the invariant auditor every this many cycles (0 = off);
     *  DMT_AUDIT overrides at engine construction. */
    int audit_period = 0;
    /** Where watchdog/audit failures write their JSON post-mortem
     *  (empty = no file); DMT_CRASH_FILE overrides. */
    std::string crash_file = "dmt_crash.json";
    /** Fault injection configuration; DMT_FAULT et al. override at
     *  engine construction (see fault/injector.hh). */
    FaultOptions fault;

    // ---- telemetry ---------------------------------------------------------
    /** Trace subsystem configuration; DMT_TRACE et al. override at
     *  engine construction (see trace/tracer.hh). */
    TraceOptions trace;

    /** True when this machine runs DMT (more than one context). */
    bool isDmt() const { return max_threads > 1; }

    /** Effective physical register count. */
    int physRegCount() const;

    /** Effective per-thread load queue capacity. */
    int lqSize() const;

    /** Effective per-thread store queue capacity. */
    int sqSize() const;

    /** Validate invariants; fatal()s on nonsense. */
    void validate() const;

    /** The paper's baseline: 4-wide superscalar, 128-entry window. */
    static SimConfig baseline();

    /** DMT machine with @p threads contexts and @p ports fetch ports. */
    static SimConfig dmt(int threads, int ports);

    /** Human-readable one-line summary. */
    std::string summary() const;

    /** Serialize the headline knobs as a JSON object. */
    void jsonOn(JsonWriter &w) const;
};

} // namespace dmt

#endif // DMT_UARCH_CONFIG_HH
