#include "uarch/config.hh"

#include "common/json.hh"
#include "common/log.hh"
#include "common/strutil.hh"

namespace dmt
{

int
SimConfig::physRegCount() const
{
    if (phys_regs > 0)
        return phys_regs;
    // Registers are freed at early retirement (results live on in the
    // trace buffer data array), so live registers are bounded by the
    // in-pipeline population; the rest is headroom for same-cycle
    // transients and per-thread state.
    return 2 * window_size + 64 * max_threads + 128;
}

int
SimConfig::lqSize() const
{
    return lq_size > 0 ? lq_size : tb_size / 4;
}

int
SimConfig::sqSize() const
{
    return sq_size > 0 ? sq_size : tb_size / 4;
}

void
SimConfig::validate() const
{
    if (max_threads < 1 || max_threads > 64)
        fatal("max_threads %d out of range", max_threads);
    if (fetch_ports < 1 || fetch_block < 1)
        fatal("bad fetch configuration");
    if (window_size < fetch_block)
        fatal("window smaller than one fetch block");
    if (tb_size < 8)
        fatal("trace buffer too small (%d)", tb_size);
    if (lqSize() < 1 || sqSize() < 1)
        fatal("load/store queues too small");
    if (tb_latency < 0 || tb_read_block < 0)
        fatal("bad trace buffer timing");
    if (lat_alu < 1 || lat_mul < 1 || lat_div < 1 || lat_mem < 1)
        fatal("latencies must be at least 1 cycle");
    if (audit_period < 0)
        fatal("audit_period must be >= 0");
    if (max_retired > 0 && warmup_retired >= max_retired) {
        fatal("warmup_retired %llu leaves no measurement window before "
              "max_retired %llu",
              static_cast<unsigned long long>(warmup_retired),
              static_cast<unsigned long long>(max_retired));
    }
    for (int i = 0; i < kNumFaultSites; ++i) {
        if (fault.rate[i] < 0.0 || fault.rate[i] > 1.0) {
            fatal("fault rate for %s out of [0, 1]: %g",
                  faultSiteName(static_cast<FaultSite>(i)),
                  fault.rate[i]);
        }
    }
}

SimConfig
SimConfig::baseline()
{
    SimConfig c;
    c.max_threads = 1;
    c.spawn_on_call = false;
    c.spawn_on_loop = false;
    c.fetch_ports = 1;
    c.fetch_block = 4;
    c.window_size = 128;
    c.unlimited_fus = true;
    return c;
}

SimConfig
SimConfig::dmt(int threads, int ports)
{
    SimConfig c;
    c.max_threads = threads;
    c.fetch_ports = ports;
    c.fetch_block = 4;
    c.window_size = 128;
    c.unlimited_fus = true;
    c.tb_size = 500;
    return c;
}

std::string
SimConfig::summary() const
{
    return strprintf(
        "%s threads=%d ports=%d window=%d tb=%d/%d/%d fus=%s",
        isDmt() ? "DMT" : "base", max_threads, fetch_ports, window_size,
        tb_size, tb_latency, tb_read_block,
        unlimited_fus ? "unlimited"
                      : strprintf("%dalu/%dmd/%dmem", fus.alu, fus.muldiv,
                                  fus.mem_ports)
                            .c_str());
}

void
SimConfig::jsonOn(JsonWriter &w) const
{
    w.beginObject();
    w.key("machine").value(isDmt() ? "dmt" : "baseline");
    w.key("max_threads").value(max_threads);
    w.key("spawn_on_call").value(spawn_on_call);
    w.key("spawn_on_loop").value(spawn_on_loop);
    w.key("value_prediction").value(value_prediction);
    w.key("dataflow_prediction").value(dataflow_prediction);
    w.key("fetch_ports").value(fetch_ports);
    w.key("fetch_block").value(fetch_block);
    w.key("window_size").value(window_size);
    w.key("retire_width").value(retire_width);
    w.key("unlimited_fus").value(unlimited_fus);
    w.key("phys_regs").value(physRegCount());
    w.key("tb_size").value(tb_size);
    w.key("tb_latency").value(tb_latency);
    w.key("tb_read_block").value(tb_read_block);
    w.key("lq_size").value(lqSize());
    w.key("sq_size").value(sqSize());
    w.key("lat_mem").value(lat_mem);
    w.key("max_retired").value(max_retired);
    w.key("warmup_retired").value(warmup_retired);
    w.key("watchdog_cycles").value(watchdog_cycles);
    w.key("audit_period").value(audit_period);
    w.key("fault_enabled").value(fault.enabled);
    w.endObject();
}

} // namespace dmt
