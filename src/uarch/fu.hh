/**
 * @file
 * Execution-unit pool for the realistic configuration (Figure 6): four
 * ALUs of which memory-op address calculations consume up to two, one
 * unpipelined multiply/divide unit, and two DCache ports.  The
 * "unlimited" mode used by Figures 4/5 grants every request.
 */

#ifndef DMT_UARCH_FU_HH
#define DMT_UARCH_FU_HH

#include "isa/opcodes.hh"
#include "uarch/config.hh"

namespace dmt
{

/** Per-cycle FU availability tracker. */
class FuPool
{
  public:
    FuPool(bool unlimited, const FuParams &params, int lat_div);

    /** Begin a new cycle: replenish per-cycle slots. */
    void newCycle(Cycle now);

    /**
     * Try to claim the resources for issuing @p cls this cycle.
     * @retval true when granted (resources consumed).
     */
    bool tryIssue(OpClass cls, Cycle now);

    /** Remaining ALU slots this cycle (for tests). */
    int aluSlotsLeft() const { return alu_left; }
    int memSlotsLeft() const { return mem_left; }

  private:
    bool unlimited;
    FuParams params;
    int lat_div;

    int alu_left = 0;
    int mem_left = 0;
    int muldiv_left = 0;
    /** Divider is unpipelined: busy until this cycle. */
    Cycle div_busy_until = 0;
};

} // namespace dmt

#endif // DMT_UARCH_FU_HH
