#include "exp/phase.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <mutex>
#include <unordered_map>

#include "common/log.hh"
#include "common/rng.hh"
#include "common/strutil.hh"
#include "sim/functional_core.hh"
#include "workloads/workloads.hh"

namespace dmt
{

// ---- BBV collection ----------------------------------------------------

std::vector<IntervalBbv>
collectBbvs(const Program &prog, u64 interval_len, u64 budget,
            FfMode mode, u64 *covered_out, bool *completed_out)
{
    DMT_ASSERT(interval_len > 0, "BBV interval length must be > 0");
    FunctionalCore core(prog);
    core.setMode(mode);
    BbvCollector bbv(interval_len, prog.text.size(), prog.entry);
    core.setBbv(&bbv);
    // Chunked so an unbounded profile of a non-halting program is
    // still budget-driven by the caller; interval vectors are chunk
    // invariant by the sim/bbv.hh contract.
    constexpr u64 kChunk = u64{1} << 22;
    while (!core.halted()) {
        u64 step = kChunk;
        if (budget > 0) {
            const u64 left = budget - core.instrCount();
            if (left == 0)
                break;
            step = left < step ? left : step;
        }
        if (core.run(step) == 0)
            break;
    }
    core.setBbv(nullptr);
    bbv.finish();
    if (covered_out)
        *covered_out = core.instrCount();
    if (completed_out)
        *completed_out = core.halted();
    return bbv.takeIntervals();
}

// ---- projection + clustering -------------------------------------------

namespace
{

constexpr double kTwoPi = 6.283185307179586;

/** splitmix64 output folded to a uniform double in [0, 1) — the same
 *  mapping Rng::chance() uses, fixed here for cross-platform
 *  bit-stability of the clustering. */
inline double
u01(u64 x)
{
    return static_cast<double>(x >> 11)
        * (1.0 / 9007199254740992.0); // 2^-53
}

/** Projection row for one block key: dims values in [-1, 1) drawn
 *  from a splitmix64 stream keyed by (seed, block) only, so rows are
 *  independent of traversal order and of which intervals touch the
 *  block. */
std::vector<double>
projectionRow(u64 seed, u32 block, u64 dims)
{
    Rng rng(seed ^ (static_cast<u64>(block) + 1)
                       * 0x9e3779b97f4a7c15ull);
    std::vector<double> row(dims);
    for (u64 d = 0; d < dims; ++d)
        row[d] = 2.0 * u01(rng.next64()) - 1.0;
    return row;
}

double
dist2(const double *a, const double *b, size_t dims)
{
    double s = 0.0;
    for (size_t d = 0; d < dims; ++d) {
        const double diff = a[d] - b[d];
        s += diff * diff;
    }
    return s;
}

struct KmeansRun
{
    std::vector<u32> assign;      ///< point -> center
    std::vector<double> centers;  ///< k x dims, row-major
    std::vector<u64> sizes;       ///< points per center
    double distortion = 0.0;
};

/**
 * Deterministic k-means: splitmix64-driven k-means++ seeding, Lloyd
 * iterations with all ties broken by lowest index, empty clusters
 * re-seeded from the farthest point.  @p feats is n x dims row-major.
 */
KmeansRun
kmeansFit(const std::vector<double> &feats, size_t n, size_t dims,
          size_t k, u64 seed)
{
    KmeansRun run;
    run.assign.assign(n, 0);
    run.centers.assign(k * dims, 0.0);
    run.sizes.assign(k, 0);

    // Every k gets its own stream so adding a candidate k never
    // perturbs the others.
    Rng rng(seed ^ (static_cast<u64>(k) * 0xd1b54a32d192ed03ull));

    // k-means++ D^2 seeding.
    std::vector<double> d2(n, 0.0);
    const size_t first = static_cast<size_t>(rng.below(n));
    std::copy_n(&feats[first * dims], dims, &run.centers[0]);
    for (size_t i = 0; i < n; ++i)
        d2[i] = dist2(&feats[i * dims], &run.centers[0], dims);
    for (size_t c = 1; c < k; ++c) {
        double total = 0.0;
        for (size_t i = 0; i < n; ++i)
            total += d2[i];
        size_t pick = 0;
        if (total > 0.0) {
            const double r = u01(rng.next64()) * total;
            double cum = 0.0;
            pick = n - 1;
            for (size_t i = 0; i < n; ++i) {
                cum += d2[i];
                if (cum > r) {
                    pick = i;
                    break;
                }
            }
        } else {
            // All remaining mass is zero (duplicate points): seed from
            // the lowest index; the empty-cluster pass below and the
            // final non-empty filter keep the result well-defined.
            pick = static_cast<size_t>(c % n);
        }
        std::copy_n(&feats[pick * dims], dims, &run.centers[c * dims]);
        for (size_t i = 0; i < n; ++i) {
            const double d =
                dist2(&feats[i * dims], &run.centers[c * dims], dims);
            if (d < d2[i])
                d2[i] = d;
        }
    }

    // Lloyd iterations.
    std::vector<double> sums(k * dims);
    constexpr int kMaxIters = 64;
    for (int iter = 0; iter < kMaxIters; ++iter) {
        bool changed = iter == 0;
        run.distortion = 0.0;
        std::fill(run.sizes.begin(), run.sizes.end(), u64{0});
        for (size_t i = 0; i < n; ++i) {
            size_t best = 0;
            double best_d =
                dist2(&feats[i * dims], &run.centers[0], dims);
            for (size_t c = 1; c < k; ++c) {
                const double d = dist2(&feats[i * dims],
                                       &run.centers[c * dims], dims);
                if (d < best_d) { // strict: ties keep the lowest c
                    best_d = d;
                    best = c;
                }
            }
            if (run.assign[i] != best) {
                run.assign[i] = static_cast<u32>(best);
                changed = true;
            }
            ++run.sizes[best];
            run.distortion += best_d;
        }

        // Re-seed empty clusters from the farthest point (ties lowest
        // index) — but only while there is spread to steal; duplicate
        // point sets legitimately leave clusters empty.
        bool reseeded = false;
        for (size_t c = 0; c < k; ++c) {
            if (run.sizes[c] != 0)
                continue;
            size_t far = 0;
            double far_d = -1.0;
            for (size_t i = 0; i < n; ++i) {
                const double d = dist2(
                    &feats[i * dims],
                    &run.centers[run.assign[i] * dims], dims);
                if (d > far_d) { // strict: ties keep the lowest i
                    far_d = d;
                    far = i;
                }
            }
            if (far_d <= 0.0)
                break;
            std::copy_n(&feats[far * dims], dims,
                        &run.centers[c * dims]);
            reseeded = true;
        }
        if (reseeded)
            continue; // re-assign against the new centers
        if (!changed)
            break;

        std::fill(sums.begin(), sums.end(), 0.0);
        for (size_t i = 0; i < n; ++i) {
            const u32 c = run.assign[i];
            for (size_t d = 0; d < dims; ++d)
                sums[c * dims + d] += feats[i * dims + d];
        }
        for (size_t c = 0; c < k; ++c) {
            if (run.sizes[c] == 0)
                continue;
            for (size_t d = 0; d < dims; ++d)
                run.centers[c * dims + d] = sums[c * dims + d]
                    / static_cast<double>(run.sizes[c]);
        }
    }
    return run;
}

/** X-means-flavoured BIC of one fitted clustering (higher is better).
 *  Exact constants matter less than monotonic behaviour: the score
 *  must reward tighter clusters and charge k * (dims + 1) parameters. */
double
bicScore(const KmeansRun &run, size_t n, size_t dims, size_t k)
{
    const double r = static_cast<double>(n);
    // Spherical variance estimate; clamped so identical points (zero
    // distortion) stay finite and k selection still favours small k
    // through the parameter penalty.
    double sigma2 = n > k
        ? run.distortion / static_cast<double>(n - k)
        : 0.0;
    if (sigma2 < 1e-12)
        sigma2 = 1e-12;
    double ll = 0.0;
    size_t live = 0;
    for (size_t c = 0; c < k; ++c) {
        const u64 rc = run.sizes[c];
        if (rc == 0)
            continue;
        ++live;
        const double rcd = static_cast<double>(rc);
        ll += rcd * std::log(rcd) - rcd * std::log(r)
            - rcd * static_cast<double>(dims) / 2.0
                  * std::log(kTwoPi * sigma2)
            - (rcd - 1.0) / 2.0;
    }
    const double params =
        static_cast<double>(live) * (static_cast<double>(dims) + 1.0);
    return ll - params / 2.0 * std::log(r);
}

} // namespace

PhaseAnalysis
clusterPhases(const std::vector<IntervalBbv> &bbvs,
              const PhaseParams &params)
{
    DMT_ASSERT(params.interval > 0 && params.max_k > 0
                   && params.dims > 0,
               "phase params must be positive");
    PhaseAnalysis pa;
    pa.interval_len = params.interval;
    const size_t n = bbvs.size();
    if (n == 0)
        return pa;

    // Random-project each interval's sparse BBV to a dense feature
    // row, weighting blocks by their share of the interval so the
    // trailing partial interval compares by distribution, not volume.
    const size_t dims = static_cast<size_t>(params.dims);
    std::vector<double> feats(n * dims, 0.0);
    std::unordered_map<u32, std::vector<double>> rows;
    for (size_t i = 0; i < n; ++i) {
        const IntervalBbv &iv = bbvs[i];
        if (iv.instrs == 0)
            continue;
        const double inv = 1.0 / static_cast<double>(iv.instrs);
        for (const auto &[block, count] : iv.counts) {
            auto it = rows.find(block);
            if (it == rows.end()) {
                it = rows.emplace(block, projectionRow(params.seed,
                                                      block, dims))
                         .first;
            }
            const double w = static_cast<double>(count) * inv;
            const std::vector<double> &row = it->second;
            for (size_t d = 0; d < dims; ++d)
                feats[i * dims + d] += w * row[d];
        }
    }

    // Fit every candidate k, then take the smallest k whose BIC
    // reaches 90% of the score range (SimPoint's rule): more clusters
    // must buy a real likelihood gain, not just spend parameters.
    const size_t kmax = std::min(static_cast<size_t>(params.max_k), n);
    std::vector<KmeansRun> runs;
    std::vector<double> scores;
    runs.reserve(kmax);
    for (size_t k = 1; k <= kmax; ++k) {
        runs.push_back(kmeansFit(feats, n, dims, k, params.seed));
        scores.push_back(bicScore(runs.back(), n, dims, k));
    }
    const double lo = *std::min_element(scores.begin(), scores.end());
    const double hi = *std::max_element(scores.begin(), scores.end());
    const double threshold = lo + 0.9 * (hi - lo);
    size_t chosen = kmax;
    for (size_t k = 1; k <= kmax; ++k) {
        if (scores[k - 1] >= threshold) {
            chosen = k;
            break;
        }
    }
    const KmeansRun &fit = runs[chosen - 1];

    // Representative per cluster: the member nearest its center (ties
    // lowest interval); weight = the cluster's instruction share.
    u64 total_instrs = 0;
    for (const IntervalBbv &iv : bbvs)
        total_instrs += iv.instrs;
    struct Cluster
    {
        size_t center;
        u64 rep;
        u64 members = 0;
        u64 instrs = 0;
        double best_d = 0.0;
        bool seen = false;
    };
    std::vector<Cluster> clusters(chosen);
    for (size_t i = 0; i < n; ++i) {
        Cluster &cl = clusters[fit.assign[i]];
        const double d = dist2(&feats[i * dims],
                               &fit.centers[fit.assign[i] * dims],
                               dims);
        if (!cl.seen || d < cl.best_d) { // strict: ties keep lowest i
            cl.seen = true;
            cl.best_d = d;
            cl.rep = i;
        }
        ++cl.members;
        cl.instrs += bbvs[i].instrs;
    }

    // Dense ids in representative order; remap the assignment.
    std::vector<size_t> order;
    for (size_t c = 0; c < chosen; ++c)
        if (clusters[c].seen)
            order.push_back(c);
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) {
                  return clusters[a].rep < clusters[b].rep;
              });
    std::vector<u32> remap(chosen, 0);
    for (size_t new_id = 0; new_id < order.size(); ++new_id) {
        const Cluster &cl = clusters[order[new_id]];
        remap[order[new_id]] = static_cast<u32>(new_id);
        PhaseInfo info;
        info.id = static_cast<u32>(new_id);
        info.rep = cl.rep;
        info.members = cl.members;
        info.weight = total_instrs > 0
            ? static_cast<double>(cl.instrs)
                  / static_cast<double>(total_instrs)
            : 0.0;
        pa.phases.push_back(info);
    }
    pa.k = static_cast<u32>(order.size());
    pa.assignment.resize(n);
    for (size_t i = 0; i < n; ++i)
        pa.assignment[i] = remap[fit.assign[i]];
    return pa;
}

// ---- process-wide analysis cache ---------------------------------------

namespace
{

std::mutex g_phase_m;
std::map<std::string, std::shared_ptr<const PhaseAnalysis>> g_phase;
u64 g_phase_hits = 0;
u64 g_phase_builds = 0;

} // namespace

std::shared_ptr<const PhaseAnalysis>
phaseAnalysisFor(const std::string &workload,
                 const PhaseParams &params, u64 budget)
{
    const std::string key = strprintf(
        "%s|%llu|%llu|%llu|%llu|%llu", workload.c_str(),
        static_cast<unsigned long long>(params.interval),
        static_cast<unsigned long long>(params.max_k),
        static_cast<unsigned long long>(params.dims),
        static_cast<unsigned long long>(params.seed),
        static_cast<unsigned long long>(budget));
    // Build under the lock: concurrent sweep cells asking for the same
    // analysis should wait for one profile, not race N of them.
    std::lock_guard<std::mutex> lock(g_phase_m);
    std::shared_ptr<const PhaseAnalysis> &slot = g_phase[key];
    if (slot) {
        ++g_phase_hits;
        return slot;
    }
    const Program prog = buildWorkload(workload);
    auto pa = std::make_shared<PhaseAnalysis>();
    u64 covered = 0;
    bool completed = false;
    const std::vector<IntervalBbv> bbvs =
        collectBbvs(prog, params.interval, budget, ffModeFromEnv(),
                    &covered, &completed);
    *pa = clusterPhases(bbvs, params);
    pa->covered = covered;
    pa->completed = completed;
    ++g_phase_builds;
    slot = std::move(pa);
    return slot;
}

void
clearPhaseCache()
{
    std::lock_guard<std::mutex> lock(g_phase_m);
    g_phase.clear();
    g_phase_hits = 0;
    g_phase_builds = 0;
}

PhaseCacheCounters
phaseCacheCounters()
{
    std::lock_guard<std::mutex> lock(g_phase_m);
    PhaseCacheCounters c;
    c.hits = g_phase_hits;
    c.builds = g_phase_builds;
    return c;
}

} // namespace dmt
