/**
 * @file
 * Plain-text table rendering for the figure benches: fixed-width
 * columns, a title block quoting the paper's series, and a footer for
 * averages.
 */

#ifndef DMT_EXP_REPORT_HH
#define DMT_EXP_REPORT_HH

#include <string>
#include <vector>

namespace dmt
{

class JsonWriter;

/** Simple fixed-width table. */
class Report
{
  public:
    /**
     * @param title figure name, e.g. "Figure 4: speedup vs threads"
     * @param paper_note what the paper reports, for side-by-side reading
     */
    Report(std::string title, std::string paper_note);

    /** Define columns (first column is the row label). */
    void columns(const std::vector<std::string> &names);

    /** Add a data row. */
    void row(const std::string &label, const std::vector<double> &values);

    /** Append an "average" row over all rows added so far. */
    void averageRow(const std::string &label = "average");

    /** Render everything. */
    std::string render() const;

    /** Render and print to stdout. */
    void print() const;

    /** Serialize the table (title, columns, rows) as JSON. */
    void jsonOn(JsonWriter &w) const;

  private:
    std::string title;
    std::string paper_note;
    std::vector<std::string> cols;
    struct Row
    {
        std::string label;
        std::vector<double> values;
        bool is_average = false;
    };
    std::vector<Row> rows;
};

} // namespace dmt

#endif // DMT_EXP_REPORT_HH
