/**
 * @file
 * Plain-text table rendering for the figure benches: fixed-width
 * columns, a title block quoting the paper's series, and a footer for
 * averages.
 */

#ifndef DMT_EXP_REPORT_HH
#define DMT_EXP_REPORT_HH

#include <string>
#include <string_view>
#include <vector>

#include "common/types.hh"

namespace dmt
{

class JsonWriter;
struct RunResult;
struct SimConfig;

// ---- canonical hashing -------------------------------------------------
//
// Golden tooling and the serve-layer result cache both need a compact,
// stable identity for "this exact result" / "this exact machine".  The
// contract: hash the *canonical JSON* form (jsonOn through JsonWriter),
// which already excludes host-timing fields (wall_s, minstr_per_s,
// func_wall_s), with FNV-1a — the same digest family checkpoints use
// for program images.  Equal hashes ⇔ byte-identical canonical
// documents (modulo 64-bit collisions, irrelevant at cache scale).

/** FNV-1a offset basis (matches ArchState::kOutHashInit). */
constexpr u64 kFnvBasis = 0xcbf29ce484222325ull;

/** FNV-1a over @p bytes, chained from @p seed. */
u64 fnv1aHash(std::string_view bytes, u64 seed = kFnvBasis);

/** Canonical digest of a RunResult (over jsonString()). */
u64 canonicalHash(const RunResult &r);

/** Canonical digest of a SimConfig (over its jsonOn() document). */
u64 canonicalHash(const SimConfig &cfg);

/** Fixed-width lowercase hex rendering of a 64-bit digest. */
std::string hashHex(u64 h);

/** Simple fixed-width table. */
class Report
{
  public:
    /**
     * @param title figure name, e.g. "Figure 4: speedup vs threads"
     * @param paper_note what the paper reports, for side-by-side reading
     */
    Report(std::string title, std::string paper_note);

    /** Define columns (first column is the row label). */
    void columns(const std::vector<std::string> &names);

    /** Add a data row. */
    void row(const std::string &label, const std::vector<double> &values);

    /** Append an "average" row over all rows added so far. */
    void averageRow(const std::string &label = "average");

    /** Render everything. */
    std::string render() const;

    /** Render and print to stdout. */
    void print() const;

    /** Serialize the table (title, columns, rows) as JSON. */
    void jsonOn(JsonWriter &w) const;

  private:
    std::string title;
    std::string paper_note;
    std::vector<std::string> cols;
    struct Row
    {
        std::string label;
        std::vector<double> values;
        bool is_average = false;
    };
    std::vector<Row> rows;
};

} // namespace dmt

#endif // DMT_EXP_REPORT_HH
