/**
 * @file
 * Interval-sampled simulation (SMARTS-style): alternate checkpointed
 * functional fast-forward with short detailed measurement windows so a
 * paper-scale instruction stream costs close to functional-sim speed.
 *
 * Each period is skip + warm + measure instructions.  The skip portion
 * is covered by FunctionalCore fast-forward (via a process-wide
 * checkpoint cache, so N sweep cells over the same workload pay for the
 * prefix once); the warm portion runs detailed with statistics
 * detached (cfg.warmup_retired) so caches, predictors and spawn tables
 * recover from the cold start; the measure portion accumulates into
 * the RunResult.  Per-interval CPI feeds a mean +- 95% confidence
 * interval so the aggregate comes with an error bar.
 *
 * Configuration comes from DMT_SAMPLE="skip:warm:measure[:intervals]"
 * (instruction counts; intervals bounds the number of measured windows,
 * 0 or omitted = run to program end / budget).  DMT_CKPT_DIR names a
 * directory where checkpoints persist across invocations.
 *
 * DMT_SAMPLE="phase:interval:warm:measure[:maxk[:dims[:seed]]]"
 * selects phase-aware placement instead (exp/phase.hh): a BBV profile
 * over fixed `interval`-length slices is clustered into phases, one
 * warm+measure window runs at each phase representative, and CPI
 * aggregates by phase weight.  Omitted trailing fields default from
 * DMT_PHASE_K / DMT_PHASE_DIMS / DMT_PHASE_SEED (env consulted only by
 * fromEnv(); daemon job specs stay hermetic).
 */

#ifndef DMT_EXP_SAMPLED_HH
#define DMT_EXP_SAMPLED_HH

#include <string>

#include "exp/phase.hh"
#include "exp/runner.hh"

namespace dmt
{

/** Parsed DMT_SAMPLE knob. */
struct SampleParams
{
    /** Window-placement policy. */
    enum class Mode : u8
    {
        Uniform, ///< fixed-stride intervals (SMARTS-style)
        Phase,   ///< one window per BBV-clustered phase representative
    };

    Mode mode = Mode::Uniform;
    u64 skip = 0;    ///< uniform: functional fast-forward per interval
    u64 warm = 0;    ///< detailed instructions with stats detached
    u64 measure = 0; ///< detailed instructions measured
    u64 max_intervals = 0; ///< uniform: 0 = unbounded
    /** Phase-mode knobs (interval length, cluster bound, projection
     *  dims, seed); interval > 0 iff mode == Phase. */
    PhaseParams phase;

    /** Sampling is active when a measurement window is configured. */
    bool enabled() const { return measure > 0; }

    bool phaseMode() const { return mode == Mode::Phase; }

    /**
     * Canonical spec string: "skip:warm:measure:intervals" (uniform),
     * "phase:interval:warm:measure:maxk:dims:seed" (phase, every field
     * explicit), or "off" when disabled.  This is the sample-spec
     * component of the serve layer's content-addressed cache key, so
     * it must render identically for parameter sets that behave
     * identically.
     */
    std::string canonicalSpec() const;

    /**
     * Parse "skip:warm:measure[:intervals]" or
     * "phase:interval:warm:measure[:maxk[:dims[:seed]]]" without
     * touching the process: on garbage, returns false and describes
     * the problem in @p err (job-spec parsing needs an error reply,
     * not an exit).  An empty string parses as disabled.
     */
    static bool parse(std::string_view spec, SampleParams *out,
                      std::string *err);

    /** Parse DMT_SAMPLE; garbage is fatal() like every other DMT_*
     *  knob.  Unset => disabled.  For phase specs, trailing fields the
     *  spec omitted default from DMT_PHASE_K / DMT_PHASE_DIMS /
     *  DMT_PHASE_SEED (explicit spec fields always win). */
    static SampleParams fromEnv();
};

/**
 * Run @p workload on @p cfg under interval sampling.  @p budget bounds
 * the stream positions traversed (0 = DMT_BENCH_INSTR if set, else the
 * whole program); sampling stops at HALT, the budget, or
 * @p params.max_intervals, whichever comes first.
 *
 * The returned RunResult's cycles/retired/stats cover the measured
 * windows only (summed across intervals); result.sampling carries the
 * coverage bookkeeping and the CPI confidence interval.  Golden
 * checking stays enabled inside every detailed window.
 */
RunResult runWorkloadSampled(const SimConfig &cfg,
                             const std::string &workload,
                             const SampleParams &params, u64 budget = 0);

/**
 * Drop every in-memory checkpoint (test hook; on-disk DMT_CKPT_DIR
 * files are left alone so persistence can be exercised separately).
 * Also zeroes the cache counters below.
 */
void clearCheckpointCache();

/**
 * Process-lifetime accounting for the shared checkpoint cache.  A
 * sampled window first looks for its start checkpoint in memory
 * (mem_hits), then on disk under DMT_CKPT_DIR (disk_hits), and only
 * then pays for functional fast-forward to build one (builds).  The
 * daemon reports these in its `stats` reply and the local harness
 * mains print them in their stderr summaries, so warm-cache behaviour
 * is visible in both deployments.
 */
struct CheckpointCacheCounters
{
    u64 mem_hits = 0;
    u64 disk_hits = 0;
    u64 builds = 0;
};

/** Snapshot of the shared checkpoint-cache counters. */
CheckpointCacheCounters checkpointCacheCounters();

} // namespace dmt

#endif // DMT_EXP_SAMPLED_HH
