#include "exp/experiments.hh"

namespace dmt
{

namespace exp
{

SimConfig
baseline(bool realistic_fus)
{
    SimConfig c = SimConfig::baseline();
    c.unlimited_fus = !realistic_fus;
    return c;
}

SimConfig
fig4Dmt(int threads)
{
    SimConfig c = SimConfig::dmt(threads, 2);
    c.unlimited_fus = true;
    c.tb_size = 500;
    return c;
}

SimConfig
fig5Dmt(int fetch_ports)
{
    SimConfig c = SimConfig::dmt(4, fetch_ports);
    c.unlimited_fus = true;
    return c;
}

SimConfig
fig6Dmt(int threads, bool realistic_fus)
{
    SimConfig c = SimConfig::dmt(threads, 2);
    c.unlimited_fus = !realistic_fus;
    return c;
}

SimConfig
fig7Dmt(int tb_size)
{
    SimConfig c = SimConfig::dmt(6, 2);
    c.tb_size = tb_size;
    return c;
}

SimConfig
fig89Dmt()
{
    return SimConfig::dmt(6, 2);
}

SimConfig
fig10Dmt(bool dataflow)
{
    SimConfig c = SimConfig::dmt(4, 2);
    c.dataflow_prediction = dataflow;
    return c;
}

SimConfig
fig11Dmt()
{
    return fig10Dmt(true);
}

SimConfig
fig12Dmt(int read_block)
{
    SimConfig c = SimConfig::dmt(4, 2);
    c.tb_read_block = read_block;
    return c;
}

SimConfig
fig13Dmt(int tb_latency)
{
    SimConfig c = SimConfig::dmt(4, 2);
    c.tb_latency = tb_latency;
    return c;
}

} // namespace exp

} // namespace dmt
