/**
 * @file
 * Differential conformance harness: proves that the cycle-level
 * engines and the functional core agree, instruction-exactly, on a
 * given workload.  The functional interpreter runs the program to
 * completion and yields the reference final architectural state
 * (registers, sparse memory pages, OUT stream, executed count); each
 * detailed machine must then complete the same program golden-clean
 * and land on the *identical* final state.  Combined with the seeded
 * workload generator (workloads/generator.hh) every `gen:` spec
 * becomes a self-checking test case — the conformance suite sweeps
 * hundreds of them.
 *
 * The memory comparison is sound because of two engine invariants:
 * stores reach the architectural MainMemory only at final retirement,
 * and loads never allocate pages — so after a completed run the
 * engine's memory must equal the functional execution's memory
 * sparse-page-exactly (MainMemory::operator==).
 */

#ifndef DMT_EXP_CONFORMANCE_HH
#define DMT_EXP_CONFORMANCE_HH

#include <string>

#include "uarch/config.hh"

namespace dmt
{

/** Knobs for one conformance check. */
struct ConformanceOptions
{
    /** Safety bound on the functional reference run. */
    u64 max_steps = 5'000'000;

    /** Also rerun the DMT machine under an all-site fault storm and
     *  require golden-clean recovery onto the same final state. */
    bool fault_storm = true;
    double fault_rate = 0.02;
    u64 fault_seed = 0xF00D;
};

/** Outcome of one conformance check. */
struct ConformanceReport
{
    bool ok = true;
    /** First divergence, formatted for a test failure message. */
    std::string detail;

    u64 functional_steps = 0; ///< reference executed-instruction count
    u64 baseline_cycles = 0;
    u64 dmt_cycles = 0;
    u64 storm_cycles = 0;     ///< 0 when the storm leg is disabled
};

/**
 * Run @p workload (suite name or gen: spec) functionally and on one
 * detailed machine @p cfg; require completion, a clean golden checker,
 * and instruction-exact final state (retired count, all 32 registers,
 * OUT stream, memory pages).  Returns false with @p detail on the
 * first divergence.  @p cycles (optional) receives the machine's
 * cycle count.
 */
bool conformsOn(const SimConfig &cfg, const std::string &workload,
                u64 max_steps, std::string *detail,
                u64 *cycles = nullptr);

/**
 * Full differential check of @p workload across the paper's two
 * machines — baseline superscalar and dmt6 (2 fetch ports) — plus an
 * optional fault-storm leg on the DMT machine.
 */
ConformanceReport
checkConformance(const std::string &workload,
                 const ConformanceOptions &opts = ConformanceOptions());

} // namespace dmt

#endif // DMT_EXP_CONFORMANCE_HH
