#include "exp/report.hh"

#include <cstdio>

#include "common/json.hh"
#include "common/log.hh"
#include "common/strutil.hh"
#include "exp/runner.hh"
#include "uarch/config.hh"

namespace dmt
{

u64
fnv1aHash(std::string_view bytes, u64 seed)
{
    u64 h = seed;
    for (const char c : bytes)
        h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ull;
    return h;
}

u64
canonicalHash(const RunResult &r)
{
    return fnv1aHash(r.jsonString());
}

u64
canonicalHash(const SimConfig &cfg)
{
    JsonWriter w;
    cfg.jsonOn(w);
    return fnv1aHash(w.str());
}

std::string
hashHex(u64 h)
{
    return strprintf("%016llx", static_cast<unsigned long long>(h));
}

Report::Report(std::string title_, std::string paper_note_)
    : title(std::move(title_)), paper_note(std::move(paper_note_))
{
}

void
Report::columns(const std::vector<std::string> &names)
{
    cols = names;
}

void
Report::row(const std::string &label, const std::vector<double> &values)
{
    DMT_ASSERT(values.size() + 1 == cols.size(),
               "row width mismatch: %zu values for %zu columns",
               values.size(), cols.size());
    rows.push_back({label, values, false});
}

void
Report::averageRow(const std::string &label)
{
    if (rows.empty())
        return;
    std::vector<double> avg(rows.front().values.size(), 0.0);
    int n = 0;
    for (const Row &r : rows) {
        if (r.is_average)
            continue;
        for (size_t i = 0; i < avg.size(); ++i)
            avg[i] += r.values[i];
        ++n;
    }
    for (double &v : avg)
        v /= n;
    rows.push_back({label, avg, true});
}

std::string
Report::render() const
{
    std::string out;
    out += "\n== " + title + "\n";
    if (!paper_note.empty())
        out += "   paper: " + paper_note + "\n";

    const int label_w = 12;
    const int col_w = 12;

    out += strprintf("%-*s", label_w, cols.empty() ? "" :
                     cols.front().c_str());
    for (size_t i = 1; i < cols.size(); ++i)
        out += strprintf("%*s", col_w, cols[i].c_str());
    out += "\n";
    out += std::string(label_w + col_w * (cols.size() - 1), '-') + "\n";

    for (const Row &r : rows) {
        if (r.is_average)
            out += std::string(label_w + col_w * (cols.size() - 1), '-')
                + "\n";
        out += strprintf("%-*s", label_w, r.label.c_str());
        for (double v : r.values)
            out += strprintf("%*.2f", col_w, v);
        out += "\n";
    }
    return out;
}

void
Report::print() const
{
    std::fputs(render().c_str(), stdout);
    std::fflush(stdout);
}

void
Report::jsonOn(JsonWriter &w) const
{
    w.beginObject();
    w.key("title").value(std::string_view(title));
    w.key("paper_note").value(std::string_view(paper_note));
    w.key("columns").beginArray();
    for (const std::string &c : cols)
        w.value(std::string_view(c));
    w.endArray();
    w.key("rows").beginArray();
    for (const Row &r : rows) {
        w.beginObject();
        w.key("label").value(std::string_view(r.label));
        w.key("is_average").value(r.is_average);
        w.key("values").beginArray();
        for (double v : r.values)
            w.value(v);
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace dmt
