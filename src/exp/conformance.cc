#include "exp/conformance.hh"

#include "common/strutil.hh"
#include "dmt/engine.hh"
#include "sim/functional.hh"
#include "sim/mainmem.hh"
#include "workloads/generator.hh"
#include "workloads/workloads.hh"

namespace dmt
{

namespace
{

/** Reference final state from a functional run-to-completion. */
struct FunctionalFinal
{
    ArchState st;
    MainMemory mem;
    u64 steps = 0;
};

bool
runReference(const Program &prog, u64 max_steps, FunctionalFinal *out,
             std::string *detail)
{
    out->st.reset(prog);
    out->mem.loadProgram(prog);
    out->steps = runFunctional(out->st, out->mem, prog, max_steps);
    if (!out->st.halted) {
        *detail = strprintf("functional reference did not halt within "
                            "%llu steps",
                            static_cast<unsigned long long>(max_steps));
        return false;
    }
    return true;
}

bool
compareFinalState(const DmtEngine &engine, const FunctionalFinal &ref,
                  std::string *detail)
{
    if (!engine.programCompleted()) {
        *detail = strprintf("engine did not complete (retired %llu of "
                            "%llu)",
                            static_cast<unsigned long long>(
                                engine.retiredTotal()),
                            static_cast<unsigned long long>(ref.steps));
        return false;
    }
    if (!engine.goldenOk()) {
        *detail = "golden checker: " + engine.goldenError();
        return false;
    }
    if (engine.retiredTotal() != ref.steps) {
        *detail = strprintf("retired count %llu != functional steps "
                            "%llu",
                            static_cast<unsigned long long>(
                                engine.retiredTotal()),
                            static_cast<unsigned long long>(ref.steps));
        return false;
    }
    for (LogReg r = 0; r < kNumLogRegs; ++r) {
        if (engine.retiredReg(r) != ref.st.reg(r)) {
            *detail = strprintf("register $%d: engine 0x%08x != "
                                "functional 0x%08x", r,
                                engine.retiredReg(r), ref.st.reg(r));
            return false;
        }
    }
    if (engine.outputStream() != ref.st.output) {
        *detail = strprintf("OUT stream mismatch (engine %zu values, "
                            "functional %zu)",
                            engine.outputStream().size(),
                            ref.st.output.size());
        return false;
    }
    if (!(engine.memory() == ref.mem)) {
        *detail = "final memory image differs from functional "
                  "reference";
        return false;
    }
    return true;
}

bool
conformsOnRef(const SimConfig &cfg, const Program &prog,
              const FunctionalFinal &ref, std::string *detail,
              u64 *cycles)
{
    SimConfig run_cfg = cfg;
    // Budget just past completion: a machine that loses instructions
    // fails the retired-count compare instead of running away.
    run_cfg.max_retired = ref.steps + 64;
    DmtEngine engine(run_cfg, prog);
    engine.run();
    if (cycles)
        *cycles = engine.now();
    return compareFinalState(engine, ref, detail);
}

} // namespace

bool
conformsOn(const SimConfig &cfg, const std::string &workload,
           u64 max_steps, std::string *detail, u64 *cycles)
{
    const Program prog = buildWorkload(workload);
    FunctionalFinal ref;
    if (!runReference(prog, max_steps, &ref, detail))
        return false;
    return conformsOnRef(cfg, prog, ref, detail, cycles);
}

ConformanceReport
checkConformance(const std::string &workload,
                 const ConformanceOptions &opts)
{
    ConformanceReport rep;
    const Program prog = buildWorkload(workload);

    FunctionalFinal ref;
    std::string detail;
    if (!runReference(prog, opts.max_steps, &ref, &detail)) {
        rep.ok = false;
        rep.detail = workload + ": " + detail;
        return rep;
    }
    rep.functional_steps = ref.steps;

    if (!conformsOnRef(SimConfig::baseline(), prog, ref, &detail,
                       &rep.baseline_cycles)) {
        rep.ok = false;
        rep.detail = workload + " [baseline]: " + detail;
        return rep;
    }

    const SimConfig dmt6 = SimConfig::dmt(6, 2);
    if (!conformsOnRef(dmt6, prog, ref, &detail, &rep.dmt_cycles)) {
        rep.ok = false;
        rep.detail = workload + " [dmt6]: " + detail;
        return rep;
    }

    if (opts.fault_storm) {
        // All-site injection storm: faults corrupt speculative-only
        // state, so recovery must land on the very same final state.
        SimConfig storm = dmt6;
        storm.fault.enabled = true;
        storm.fault.seed = opts.fault_seed;
        storm.fault.rateAll(opts.fault_rate);
        if (!conformsOnRef(storm, prog, ref, &detail,
                           &rep.storm_cycles)) {
            rep.ok = false;
            rep.detail = workload + " [dmt6+fault-storm]: " + detail;
            return rep;
        }
    }
    return rep;
}

} // namespace dmt
