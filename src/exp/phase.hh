/**
 * @file
 * SimPoint-style phase analysis over fast-forward BBVs.
 *
 * The uniform sampler (exp/sampled.hh) spends its detailed-simulation
 * budget re-measuring the same program phase over and over.  This
 * module finds the phases instead: a functional fast-forward pass
 * collects one basic-block vector per fixed-length instruction
 * interval (sim/bbv.hh), the vectors are random-projected to a small
 * fixed dimension, clustered with a deterministic seeded k-means++,
 * and a BIC-style score picks k.  Each cluster contributes one
 * representative interval and an instruction-count weight; the phase
 * sampling mode (DMT_SAMPLE=phase:...) then runs one warm+measure
 * window per representative and aggregates CPI by weight.
 *
 * Determinism contract: every stage is bit-identical across reruns,
 * platforms, DMT_JOBS settings and both fast-forward engines.  The
 * BBVs are a pure function of the architectural instruction stream
 * (sim/bbv.hh); projection directions and every k-means tie-break come
 * from splitmix64 streams keyed only by (seed, block, dim) or broken
 * by lowest index; no floating-point reduction depends on traversal
 * order beyond the fixed interval order.
 */

#ifndef DMT_EXP_PHASE_HH
#define DMT_EXP_PHASE_HH

#include <memory>
#include <string>
#include <vector>

#include "casm/program.hh"
#include "sim/bbv.hh"
#include "sim/translated_core.hh"

namespace dmt
{

/** Phase-analysis knobs (the phase:... part of a sample spec). */
struct PhaseParams
{
    u64 interval = 0; ///< BBV interval length (instructions, > 0)
    u64 max_k = 8;    ///< k-means cluster bound (1..64)
    u64 dims = 16;    ///< random-projection dimensions (1..256)
    u64 seed = 42;    ///< projection + k-means seed

    bool operator==(const PhaseParams &o) const
    {
        return interval == o.interval && max_k == o.max_k
            && dims == o.dims && seed == o.seed;
    }
};

/** One phase of a clustered run. */
struct PhaseInfo
{
    u32 id = 0;           ///< dense id, ordered by rep ascending
    u64 rep = 0;          ///< representative interval index
    u64 members = 0;      ///< intervals assigned to this phase
    double weight = 0.0;  ///< instruction-count share (sums to 1)
};

/** Result of clustering one workload's interval BBVs. */
struct PhaseAnalysis
{
    u64 interval_len = 0;
    u64 covered = 0;   ///< instructions profiled (stream positions)
    bool completed = false; ///< profiling reached HALT within budget
    u32 k = 0;         ///< phases found (<= max_k, 0 only if no BBVs)
    std::vector<u32> assignment; ///< interval index -> phase id
    std::vector<PhaseInfo> phases; ///< phases[i].id == i
};

/**
 * Collect interval BBVs by fast-forwarding @p prog from its entry on
 * engine @p mode; stops at HALT or after @p budget instructions
 * (0 = run to HALT).  @p covered_out / @p completed_out report how far
 * the profile reached.  The result is bit-identical for both FfMode
 * values (the sim/bbv.hh contract); tests pin each engine explicitly.
 */
std::vector<IntervalBbv> collectBbvs(const Program &prog,
                                     u64 interval_len, u64 budget,
                                     FfMode mode,
                                     u64 *covered_out = nullptr,
                                     bool *completed_out = nullptr);

/**
 * Project + cluster @p bbvs under @p params.  interval_len, covered
 * and completed in the result are left for the caller; assignment and
 * phases are fully populated.  Degenerate inputs stay well-defined:
 * k never exceeds the interval count, all-identical vectors collapse
 * to one phase, and an empty input yields k = 0.
 */
PhaseAnalysis clusterPhases(const std::vector<IntervalBbv> &bbvs,
                            const PhaseParams &params);

/**
 * Cached end-to-end analysis for @p workload (a canonical suite /
 * gen: name) bounded by @p budget stream instructions (0 = to HALT).
 * Profiling runs on the DMT_FF_MODE engine; results are process-wide
 * shared (immutable) and keyed by (workload, params, budget), so sweep
 * cells over the same workload pay for profiling once — mirroring the
 * sampled checkpoint cache.
 */
std::shared_ptr<const PhaseAnalysis>
phaseAnalysisFor(const std::string &workload, const PhaseParams &params,
                 u64 budget);

/** Drop every cached phase analysis and zero the counters (test hook,
 *  companion to clearCheckpointCache()). */
void clearPhaseCache();

/** Process-lifetime accounting for the shared phase-analysis cache. */
struct PhaseCacheCounters
{
    u64 hits = 0;
    u64 builds = 0;
};

PhaseCacheCounters phaseCacheCounters();

} // namespace dmt

#endif // DMT_EXP_PHASE_HH
