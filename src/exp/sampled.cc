#include "exp/sampled.hh"

#include <sys/stat.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/env.hh"
#include "common/log.hh"
#include "common/strutil.hh"
#include "dmt/engine.hh"
#include "sim/checkpoint.hh"
#include "sim/translated_core.hh"
#include "sim/functional_core.hh"
#include "workloads/workloads.hh"

namespace dmt
{

namespace
{

/** Bounds shared by spec parsing and the DMT_PHASE_* env knobs. */
constexpr u64 kPhaseMaxK = 64;
constexpr u64 kPhaseMaxDims = 256;

} // namespace

std::string
SampleParams::canonicalSpec() const
{
    if (!enabled())
        return "off";
    if (phaseMode()) {
        // Every field explicit: two specs that behave identically must
        // render identically (cache keys), regardless of which
        // trailing fields the user spelled out.
        return strprintf("phase:%llu:%llu:%llu:%llu:%llu:%llu",
                         static_cast<unsigned long long>(phase.interval),
                         static_cast<unsigned long long>(warm),
                         static_cast<unsigned long long>(measure),
                         static_cast<unsigned long long>(phase.max_k),
                         static_cast<unsigned long long>(phase.dims),
                         static_cast<unsigned long long>(phase.seed));
    }
    return strprintf("%llu:%llu:%llu:%llu",
                     static_cast<unsigned long long>(skip),
                     static_cast<unsigned long long>(warm),
                     static_cast<unsigned long long>(measure),
                     static_cast<unsigned long long>(max_intervals));
}

bool
SampleParams::parse(std::string_view spec, SampleParams *out,
                    std::string *err)
{
    *out = SampleParams{};
    const std::string_view t = trim(spec);
    if (t.empty())
        return true; // disabled

    if (t.rfind("phase:", 0) == 0) {
        const std::vector<std::string> parts =
            splitFields(t.substr(6), ":");
        if (parts.size() < 3 || parts.size() > 6) {
            if (err)
                *err = "phase sample spec must be phase:interval:warm:"
                       "measure[:maxk[:dims[:seed]]]";
            return false;
        }
        u64 v[6] = {0, 0, 0, 0, 0, 0};
        for (size_t i = 0; i < parts.size(); ++i) {
            if (!parseU64(parts[i], &v[i])) {
                if (err)
                    *err = "bad sample spec field \"" + parts[i] + "\"";
                return false;
            }
        }
        out->mode = Mode::Phase;
        out->phase.interval = v[0];
        out->warm = v[1];
        out->measure = v[2];
        if (parts.size() > 3)
            out->phase.max_k = v[3];
        if (parts.size() > 4)
            out->phase.dims = v[4];
        if (parts.size() > 5)
            out->phase.seed = v[5];
        if (out->phase.interval == 0) {
            if (err)
                *err = "phase interval length must be > 0";
            return false;
        }
        if (out->measure == 0) {
            if (err)
                *err = "sample measure window must be > 0";
            return false;
        }
        if (out->phase.max_k < 1 || out->phase.max_k > kPhaseMaxK) {
            if (err)
                *err = strprintf("phase maxk must be 1..%llu",
                                 static_cast<unsigned long long>(
                                     kPhaseMaxK));
            return false;
        }
        if (out->phase.dims < 1 || out->phase.dims > kPhaseMaxDims) {
            if (err)
                *err = strprintf("phase dims must be 1..%llu",
                                 static_cast<unsigned long long>(
                                     kPhaseMaxDims));
            return false;
        }
        return true;
    }

    const std::vector<std::string> parts = splitFields(t, ":");
    if (parts.size() < 3 || parts.size() > 4) {
        if (err)
            *err = "sample spec must be skip:warm:measure[:intervals]";
        return false;
    }
    u64 v[4] = {0, 0, 0, 0};
    for (size_t i = 0; i < parts.size(); ++i) {
        if (!parseU64(parts[i], &v[i])) {
            if (err)
                *err = "bad sample spec field \"" + parts[i] + "\"";
            return false;
        }
    }
    out->skip = v[0];
    out->warm = v[1];
    out->measure = v[2];
    out->max_intervals = parts.size() == 4 ? v[3] : 0;
    if (out->measure == 0) {
        if (err)
            *err = "sample measure window must be > 0";
        return false;
    }
    return true;
}

SampleParams
SampleParams::fromEnv()
{
    SampleParams p;
    const char *raw = std::getenv("DMT_SAMPLE");
    if (!raw || !*raw)
        return p;
    std::string err;
    if (!SampleParams::parse(raw, &p, &err))
        fatal("DMT_SAMPLE=\"%s\": %s", raw, err.c_str());
    if (p.phaseMode()) {
        // Env defaults apply only to fields the spec left out; the
        // canonical spec is always fully explicit, so daemon cache
        // keys and golden identities never depend on the environment.
        const size_t nf = splitFields(raw, ":").size() - 1;
        if (nf < 4)
            p.phase.max_k =
                parseEnvU64("DMT_PHASE_K", p.phase.max_k, 1, kPhaseMaxK);
        if (nf < 5)
            p.phase.dims = parseEnvU64("DMT_PHASE_DIMS", p.phase.dims,
                                       1, kPhaseMaxDims);
        if (nf < 6)
            p.phase.seed = parseEnvU64("DMT_PHASE_SEED", p.phase.seed);
    }
    return p;
}

namespace
{

/**
 * Per-workload checkpoint chain.  One functional cursor advances
 * through the program; every sampled position it reaches is captured
 * as a Checkpoint and kept (shared_ptr, immutable) so concurrent sweep
 * cells and later invocations reuse it.  Heap-allocated so the Program
 * the cursor references has a stable address.
 */
struct WorkloadCkpts
{
    std::mutex m;
    Program prog;
    u64 prog_hash = 0;
    std::unique_ptr<FunctionalCore> cursor;
    std::map<u64, std::shared_ptr<const Checkpoint>> by_pos;
    /** Retired position of HALT once the cursor has seen it. */
    u64 halt_pos = ~u64{0};
};

std::mutex g_cache_m;
std::map<std::string, std::unique_ptr<WorkloadCkpts>> g_cache;

// Shared-cache accounting (monotonic until clearCheckpointCache()).
std::atomic<u64> g_ckpt_mem_hits{0};
std::atomic<u64> g_ckpt_disk_hits{0};
std::atomic<u64> g_ckpt_builds{0};

WorkloadCkpts &
entryFor(const std::string &workload)
{
    std::lock_guard<std::mutex> lock(g_cache_m);
    std::unique_ptr<WorkloadCkpts> &slot = g_cache[workload];
    if (!slot) {
        slot = std::make_unique<WorkloadCkpts>();
        slot->prog = buildWorkload(workload);
        slot->prog_hash = Checkpoint::programHash(slot->prog);
        slot->cursor = std::make_unique<FunctionalCore>(slot->prog);
    }
    return *slot;
}

std::string
ckptPath(const char *dir, const std::string &workload, u64 pos)
{
    return strprintf("%s/%s-%llu.ckpt", dir, workload.c_str(),
                     static_cast<unsigned long long>(pos));
}

/** The checkpoint directory, created (one level) on first use.
 *  @return nullptr when DMT_CKPT_DIR is unset. */
const char *
ckptDir()
{
    const char *dir = std::getenv("DMT_CKPT_DIR");
    if (!dir || !*dir)
        return nullptr;
    ::mkdir(dir, 0755); // best-effort; EEXIST is the common case
    return dir;
}

/**
 * Architectural checkpoint at exactly @p pos retired instructions.
 * Order of preference: in-memory cache, DMT_CKPT_DIR file, advancing
 * the functional cursor (rewinding it from the nearest earlier
 * checkpoint when a caller asks for a position behind it).
 *
 * @return nullptr when the program HALTs at or before @p pos; then
 *         @p halt_pos_out receives the halt position.  @p ff_wall
 *         accumulates host seconds spent fast-forwarding and
 *         @p ff_stats the translation-cache activity of this call.
 */
std::shared_ptr<const Checkpoint>
checkpointAt(WorkloadCkpts &e, const std::string &workload, u64 pos,
             double *ff_wall, TranslationStats *ff_stats,
             u64 *halt_pos_out,
             std::chrono::steady_clock::time_point deadline = {})
{
    std::lock_guard<std::mutex> lock(e.m);
    if (pos >= e.halt_pos) {
        *halt_pos_out = e.halt_pos;
        return nullptr;
    }
    auto it = e.by_pos.find(pos);
    if (it != e.by_pos.end()) {
        g_ckpt_mem_hits.fetch_add(1, std::memory_order_relaxed);
        return it->second;
    }

    const char *dir = ckptDir();
    if (dir) {
        auto ck = std::make_shared<Checkpoint>();
        std::string err;
        if (Checkpoint::load(ckptPath(dir, workload, pos), e.prog_hash,
                             ck.get(), &err)) {
            DMT_ASSERT(ck->instr_count == pos,
                       "checkpoint file position mismatch");
            e.by_pos[pos] = ck;
            g_ckpt_disk_hits.fetch_add(1, std::memory_order_relaxed);
            return ck;
        }
    }

    FunctionalCore &core = *e.cursor;
    if (core.instrCount() > pos) {
        // The cursor is past the request; restart it from the nearest
        // earlier checkpoint (or the program entry).
        auto best = e.by_pos.upper_bound(pos);
        if (best != e.by_pos.begin()) {
            --best;
            const Checkpoint &from = *best->second;
            core.restore(from.state, from.mem, from.instr_count);
        } else {
            core.reset();
        }
    }
    // With a deadline armed, fast-forward in bounded chunks (a few
    // tens of host milliseconds each) so a long skip cannot blow past
    // the caller's wall-clock budget between checks.
    const bool armed = deadline.time_since_epoch().count() != 0;
    constexpr u64 kDeadlineChunk = u64{1} << 22;
    const TranslationStats xs_before = core.translationStats();
    const auto t0 = std::chrono::steady_clock::now();
    while (core.instrCount() < pos && !core.halted()) {
        u64 gap = pos - core.instrCount();
        if (armed && gap > kDeadlineChunk)
            gap = kDeadlineChunk;
        core.run(gap);
        if (armed && std::chrono::steady_clock::now() >= deadline) {
            panic("deadline expired during functional fast-forward of "
                  "%s at position %llu",
                  workload.c_str(),
                  static_cast<unsigned long long>(core.instrCount()));
        }
    }
    *ff_wall += std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    *ff_stats += core.translationStats() - xs_before;
    if (core.halted()) {
        e.halt_pos = core.instrCount();
        *halt_pos_out = e.halt_pos;
        return nullptr;
    }

    auto ck = std::make_shared<Checkpoint>(Checkpoint::capture(core));
    e.by_pos[pos] = ck;
    g_ckpt_builds.fetch_add(1, std::memory_order_relaxed);
    if (dir)
        ck->save(ckptPath(dir, workload, pos)); // best-effort (warns)
    return ck;
}

} // namespace

void
clearCheckpointCache()
{
    std::lock_guard<std::mutex> lock(g_cache_m);
    g_cache.clear();
    g_ckpt_mem_hits.store(0, std::memory_order_relaxed);
    g_ckpt_disk_hits.store(0, std::memory_order_relaxed);
    g_ckpt_builds.store(0, std::memory_order_relaxed);
}

CheckpointCacheCounters
checkpointCacheCounters()
{
    CheckpointCacheCounters c;
    c.mem_hits = g_ckpt_mem_hits.load(std::memory_order_relaxed);
    c.disk_hits = g_ckpt_disk_hits.load(std::memory_order_relaxed);
    c.builds = g_ckpt_builds.load(std::memory_order_relaxed);
    return c;
}

namespace
{

/**
 * Phase-aware placement: one warm+measure window per phase
 * representative found by the (cached) BBV profile, CPI aggregated by
 * phase weight.  Window execution and checkpoint handling are shared
 * with the uniform path; only the placement and the aggregation
 * differ.
 */
RunResult
runPhaseSampled(const SimConfig &cfg, const std::string &workload,
                const SampleParams &params, u64 budget)
{
    WorkloadCkpts &e = entryFor(workload);

    const auto wall_start = std::chrono::steady_clock::now();
    double ff_wall = 0.0;
    TranslationStats ff_stats;

    RunResult r;
    r.workload = workload;
    r.sampling.enabled = true;
    r.sampling.mode = "phase";
    r.sampling.warm = params.warm;
    r.sampling.measure = params.measure;
    r.sampling.phase_interval = params.phase.interval;
    r.sampling.phase_max_k = params.phase.max_k;
    r.sampling.phase_dims = params.phase.dims;
    r.sampling.phase_seed = params.phase.seed;

    // The profile pass is cached process-wide (like the checkpoint
    // chain); its wall clock lands in the fast-forward bucket.
    const auto prof_start = std::chrono::steady_clock::now();
    const std::shared_ptr<const PhaseAnalysis> pa =
        phaseAnalysisFor(workload, params.phase, budget);
    ff_wall += std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - prof_start)
                   .count();

    r.sampling.phase_k = pa->k;
    r.sampling.phase_intervals = pa->assignment.size();
    bool completed = pa->completed;
    u64 detailed_retired = 0;

    for (const PhaseInfo &ph : pa->phases) {
        if (cfg.hasDeadline()
            && std::chrono::steady_clock::now() >= cfg.deadline) {
            panic("deadline expired between phase windows of %s "
                  "(phase %u)",
                  workload.c_str(), ph.id);
        }

        const u64 start = ph.rep * params.phase.interval;
        u64 halt_pos = 0;
        const std::shared_ptr<const Checkpoint> ck =
            checkpointAt(e, workload, start, &ff_wall, &ff_stats,
                         &halt_pos, cfg.deadline);

        PhaseCpi row;
        row.id = ph.id;
        row.rep = ph.rep;
        row.pos = start;
        row.weight = ph.weight;
        row.members = ph.members;

        // A representative can sit past HALT only if profiling and the
        // checkpoint cursor disagree — which the bit-identity contract
        // rules out — but stay graceful: the phase goes unmeasured and
        // the aggregate renormalizes over the measured ones.
        if (ck) {
            SimConfig wcfg = cfg;
            wcfg.warmup_retired = params.warm;
            wcfg.max_retired = params.warm + params.measure;

            DmtEngine engine(wcfg, e.prog, ck.get());
            engine.run();
            if (!engine.goldenOk()) {
                panic("golden mismatch on %s (phase window at %llu): %s",
                      workload.c_str(),
                      static_cast<unsigned long long>(start),
                      engine.goldenError().c_str());
            }
            completed = completed || engine.programCompleted();
            const u64 win_retired = engine.retiredTotal();
            detailed_retired += win_retired;

            if (engine.measurementActive()
                && engine.stats().retired.value() > 0) {
                const DmtStats &ws = engine.stats();
                row.measured = true;
                row.cycles = ws.cycles.value();
                row.retired = ws.retired.value();
                row.cpi = static_cast<double>(row.cycles)
                    / static_cast<double>(row.retired);

                SampleInterval iv;
                iv.pos = start;
                iv.cycles = row.cycles;
                iv.retired = row.retired;
                iv.spawned = ws.threads_spawned.value();
                iv.squashed = ws.squashed_insts.value();
                iv.recoveries = ws.recoveries.value();
                r.sampling.records.push_back(iv);
                ++r.sampling.intervals;
                r.cycles += row.cycles;
                r.retired += row.retired;
                r.stats.merge(ws);
            }
        }
        r.sampling.phases.push_back(row);
    }

    // Weighted aggregate over the measured phases, weights
    // renormalized so unmeasured phases (end-of-program windows that
    // never detached their stats) drop out of the estimate instead of
    // deflating it.
    double wsum = 0.0;
    size_t measured = 0;
    for (const PhaseCpi &row : r.sampling.phases) {
        if (row.measured) {
            wsum += row.weight;
            ++measured;
        }
    }
    if (measured > 0 && wsum > 0.0) {
        double mean = 0.0;
        for (const PhaseCpi &row : r.sampling.phases)
            if (row.measured)
                mean += (row.weight / wsum) * row.cpi;
        r.sampling.cpi_mean = mean;
        if (measured > 1) {
            double var = 0.0;
            for (const PhaseCpi &row : r.sampling.phases) {
                if (!row.measured)
                    continue;
                const double d = row.cpi - mean;
                var += (row.weight / wsum) * d * d;
            }
            // Bessel-style correction on the weighted spread so the CI
            // matches the uniform sampler's n-1 convention.
            const double n = static_cast<double>(measured);
            r.sampling.cpi_sd = std::sqrt(var * n / (n - 1.0));
            r.sampling.cpi_ci95 =
                1.96 * r.sampling.cpi_sd / std::sqrt(n);
        }
    }

    r.sampling.covered = pa->covered;
    // Stream-derived (not host-work-derived) so the canonical JSON is
    // identical whether checkpoints came from cache or fresh runs.
    r.sampling.functional_instr = pa->covered > detailed_retired
        ? pa->covered - detailed_retired
        : 0;
    r.sampling.func_wall_s = ff_wall;
    r.sampling.ff_mode = ffModeName(ffModeFromEnv());
    r.sampling.ff_blocks_translated = ff_stats.blocks_translated;
    r.sampling.ff_retranslations = ff_stats.retranslations;
    r.sampling.ff_evictions = ff_stats.evictions;
    r.sampling.ff_chain_hits = ff_stats.chain_hits;
    r.completed = completed;
    // The headline IPC is the weighted estimate — the whole point of
    // phase weighting — not the unweighted window sum.
    r.ipc = r.sampling.cpi_mean > 0.0 ? 1.0 / r.sampling.cpi_mean : 0.0;
    r.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - wall_start)
                   .count();
    r.minstr_per_s = r.wall_s > 0.0
        ? static_cast<double>(pa->covered) / r.wall_s / 1e6
        : 0.0;
    return r;
}

} // namespace

RunResult
runWorkloadSampled(const SimConfig &cfg, const std::string &workload,
                   const SampleParams &params, u64 budget)
{
    DMT_ASSERT(params.enabled(),
               "runWorkloadSampled needs a measure window");
    if (budget == 0)
        budget = parseEnvU64("DMT_BENCH_INSTR", 0); // 0 = whole program

    if (params.phaseMode())
        return runPhaseSampled(cfg, workload, params, budget);

    WorkloadCkpts &e = entryFor(workload);

    const auto wall_start = std::chrono::steady_clock::now();
    double ff_wall = 0.0;
    TranslationStats ff_stats;

    RunResult r;
    r.workload = workload;
    r.sampling.enabled = true;
    r.sampling.skip = params.skip;
    r.sampling.warm = params.warm;
    r.sampling.measure = params.measure;

    std::vector<double> cpis;
    u64 pos = 0;                    // stream position traversed
    u64 detailed_retired = 0;       // instructions run in detail
    bool completed = false;

    while (true) {
        if (params.max_intervals > 0
            && r.sampling.intervals >= params.max_intervals) {
            break;
        }
        if (budget > 0 && pos >= budget)
            break;

        // Small detailed windows may finish under the engine's own
        // deadline-check granule, so re-check between intervals too.
        if (cfg.hasDeadline()
            && std::chrono::steady_clock::now() >= cfg.deadline) {
            panic("deadline expired between sampled intervals of %s "
                  "at position %llu",
                  workload.c_str(),
                  static_cast<unsigned long long>(pos));
        }

        const u64 start = pos + params.skip;
        u64 halt_pos = 0;
        const std::shared_ptr<const Checkpoint> ck =
            checkpointAt(e, workload, start, &ff_wall, &ff_stats,
                         &halt_pos, cfg.deadline);
        if (!ck) {
            // Program ends inside this skip: coverage extends to HALT.
            pos = halt_pos;
            completed = true;
            break;
        }

        SimConfig wcfg = cfg;
        wcfg.warmup_retired = params.warm;
        wcfg.max_retired = params.warm + params.measure;

        DmtEngine engine(wcfg, e.prog, ck.get());
        engine.run();
        if (!engine.goldenOk()) {
            panic("golden mismatch on %s (sampled window at %llu): %s",
                  workload.c_str(), static_cast<unsigned long long>(start),
                  engine.goldenError().c_str());
        }

        completed = engine.programCompleted();
        const u64 win_retired = engine.retiredTotal();
        detailed_retired += win_retired;
        pos = start + win_retired;

        // A window the program ended during warmup contributes coverage
        // but no measurement (its stat block never detached).
        if (engine.measurementActive()
            && engine.stats().retired.value() > 0) {
            const DmtStats &ws = engine.stats();
            SampleInterval iv;
            iv.pos = start;
            iv.cycles = ws.cycles.value();
            iv.retired = ws.retired.value();
            iv.spawned = ws.threads_spawned.value();
            iv.squashed = ws.squashed_insts.value();
            iv.recoveries = ws.recoveries.value();
            r.sampling.records.push_back(iv);
            ++r.sampling.intervals;
            r.cycles += iv.cycles;
            r.retired += iv.retired;
            r.stats.merge(ws);
            cpis.push_back(static_cast<double>(iv.cycles)
                           / static_cast<double>(iv.retired));
        }
        if (completed)
            break;
    }

    const size_t n = cpis.size();
    if (n > 0) {
        double sum = 0.0;
        for (double c : cpis)
            sum += c;
        r.sampling.cpi_mean = sum / static_cast<double>(n);
        if (n > 1) {
            double var = 0.0;
            for (double c : cpis) {
                const double d = c - r.sampling.cpi_mean;
                var += d * d;
            }
            r.sampling.cpi_sd =
                std::sqrt(var / static_cast<double>(n - 1));
            r.sampling.cpi_ci95 = 1.96 * r.sampling.cpi_sd
                / std::sqrt(static_cast<double>(n));
        }
    }

    r.sampling.covered = pos;
    r.sampling.functional_instr = pos - detailed_retired;
    r.sampling.func_wall_s = ff_wall;
    r.sampling.ff_mode = ffModeName(ffModeFromEnv());
    r.sampling.ff_blocks_translated = ff_stats.blocks_translated;
    r.sampling.ff_retranslations = ff_stats.retranslations;
    r.sampling.ff_evictions = ff_stats.evictions;
    r.sampling.ff_chain_hits = ff_stats.chain_hits;
    r.completed = completed;
    r.ipc = r.cycles > 0 ? static_cast<double>(r.retired)
                               / static_cast<double>(r.cycles)
                         : 0.0;
    r.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - wall_start)
                   .count();
    // In sampled mode the headline throughput is stream coverage per
    // wall second — the "paper-scale at functional speed" number.
    r.minstr_per_s = r.wall_s > 0.0
        ? static_cast<double>(pos) / r.wall_s / 1e6 : 0.0;
    return r;
}

} // namespace dmt
