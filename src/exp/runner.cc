#include "exp/runner.hh"

#include <chrono>

#include "common/env.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "dmt/engine.hh"
#include "exp/sampled.hh"
#include "workloads/generator.hh"
#include "workloads/workloads.hh"

namespace dmt
{

void
SampleSummary::jsonOn(JsonWriter &w, bool include_timing) const
{
    w.beginObject();
    w.key("mode").value(std::string_view(mode));
    w.key("skip").value(skip);
    w.key("warm").value(warm);
    w.key("measure").value(measure);
    w.key("intervals").value(intervals);
    w.key("covered").value(covered);
    w.key("functional_instr").value(functional_instr);
    if (mode == "phase") {
        w.key("phase_interval").value(phase_interval);
        w.key("phase_max_k").value(phase_max_k);
        w.key("phase_dims").value(phase_dims);
        w.key("phase_seed").value(phase_seed);
        w.key("phase_k").value(phase_k);
        w.key("phase_intervals").value(phase_intervals);
        w.key("phases");
        w.beginArray();
        for (const PhaseCpi &ph : phases) {
            w.beginObject();
            w.key("id").value(static_cast<u64>(ph.id));
            w.key("rep").value(ph.rep);
            w.key("pos").value(ph.pos);
            w.key("members").value(ph.members);
            w.key("weight").value(ph.weight);
            w.key("measured").value(ph.measured);
            w.key("cycles").value(ph.cycles);
            w.key("retired").value(ph.retired);
            w.key("cpi").value(ph.cpi);
            w.endObject();
        }
        w.endArray();
    }
    if (include_timing) {
        w.key("func_wall_s").value(func_wall_s);
        w.key("ff_mode").value(std::string_view(ff_mode));
        w.key("ff_blocks_translated").value(ff_blocks_translated);
        w.key("ff_retranslations").value(ff_retranslations);
        w.key("ff_evictions").value(ff_evictions);
        w.key("ff_chain_hits").value(ff_chain_hits);
    }
    w.key("cpi_mean").value(cpi_mean);
    w.key("cpi_sd").value(cpi_sd);
    w.key("cpi_ci95").value(cpi_ci95);
    w.key("windows");
    w.beginArray();
    for (const SampleInterval &iv : records) {
        w.beginObject();
        w.key("pos").value(iv.pos);
        w.key("cycles").value(iv.cycles);
        w.key("retired").value(iv.retired);
        w.key("spawned").value(iv.spawned);
        w.key("squashed").value(iv.squashed);
        w.key("recoveries").value(iv.recoveries);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
RunResult::jsonOn(JsonWriter &w, bool include_timing) const
{
    w.beginObject();
    w.key("workload").value(std::string_view(workload));
    w.key("cycles").value(cycles);
    w.key("retired").value(retired);
    w.key("completed").value(completed);
    w.key("ipc").value(ipc);
    if (include_timing) {
        w.key("wall_s").value(wall_s);
        w.key("minstr_per_s").value(minstr_per_s);
    }
    if (sampling.enabled) {
        w.key("sampling");
        sampling.jsonOn(w, include_timing);
    }
    StatGroup group("dmt");
    stats.registerAll(group);
    w.key("stats");
    group.jsonOn(w);
    w.endObject();
}

std::string
RunResult::jsonString() const
{
    JsonWriter w;
    jsonOn(w, /*include_timing=*/false);
    return w.str();
}

u64
benchRunLength()
{
    // 0 (like unset) selects the default length.
    const u64 v = parseEnvU64("DMT_BENCH_INSTR", 0);
    return v > 0 ? v : 60000;
}

u64
effectiveBudget(bool sampled, u64 max_retired)
{
    if (max_retired > 0)
        return max_retired;
    return sampled ? parseEnvU64("DMT_BENCH_INSTR", 0)
                   : benchRunLength();
}

RunResult
runWorkload(const SimConfig &cfg, const std::string &workload,
            u64 max_retired)
{
    // Sampled mode (DMT_SAMPLE) reroutes the whole funnel: benches and
    // sweeps get interval sampling without knowing about it.
    return runWorkloadJob(cfg, workload, max_retired,
                          SampleParams::fromEnv());
}

RunResult
runWorkloadJob(const SimConfig &cfg, const std::string &raw_workload,
               u64 max_retired, const SampleParams &sample)
{
    // One workload, one name: gen: specs normalize to their canonical
    // spelling here so RunResult bytes, checkpoint-cache chains and
    // golden files never depend on which alias the caller used.
    const std::string workload = canonicalWorkloadName(raw_workload);

    if (sample.enabled())
        return runWorkloadSampled(cfg, workload, sample, max_retired);

    SimConfig run_cfg = cfg;
    run_cfg.max_retired =
        max_retired > 0 ? max_retired : benchRunLength();

    const Program prog = buildWorkload(workload);
    DmtEngine engine(run_cfg, prog);
    const auto start = std::chrono::steady_clock::now();
    engine.run();
    const double wall = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();

    // Throwing (rather than exiting) lets sweeps over many workloads
    // and configurations catch one bad run, log it, and keep going.
    if (!engine.goldenOk())
        panic("golden mismatch on %s: %s", workload.c_str(),
              engine.goldenError().c_str());

    RunResult r;
    r.workload = workload;
    r.cycles = engine.stats().cycles.value();
    r.retired = engine.stats().retired.value();
    r.completed = engine.programCompleted();
    r.ipc = engine.stats().ipc();
    r.wall_s = wall;
    r.minstr_per_s = wall > 0.0
        ? static_cast<double>(r.retired) / wall / 1e6 : 0.0;
    r.stats = engine.stats();
    return r;
}

double
speedupPct(const RunResult &base, const RunResult &test)
{
    if (test.cycles == 0)
        return 0.0;
    // Same retired-instruction count => cycle ratio is the speedup.
    // (Both runs cap at the same budget; a completed program retires
    // identically on both machines.)
    const double base_time = static_cast<double>(base.cycles)
        / static_cast<double>(base.retired ? base.retired : 1);
    const double test_time = static_cast<double>(test.cycles)
        / static_cast<double>(test.retired ? test.retired : 1);
    return (base_time / test_time - 1.0) * 100.0;
}

} // namespace dmt
