/**
 * @file
 * Parallel experiment scheduler.  The paper's evaluation is a grid of
 * machine-configuration x benchmark simulations; every cell is an
 * independent, deterministic, single-threaded runWorkload() call, so a
 * sweep parallelizes perfectly.  SweepRunner fans queued jobs out over
 * a fixed pool of worker threads (DMT_JOBS, default the host's
 * hardware concurrency) and hands the results back in submission
 * order, so callers see exactly the serial semantics — including
 * bit-identical RunResults — regardless of completion order.
 *
 * Error model: a job whose simulation throws SimError (watchdog,
 * invariant audit, golden mismatch) becomes a failed cell carrying the
 * message; the rest of the sweep keeps going.  This preserves the
 * keep-going contract the serial benches had.
 *
 * Determinism contract (see DESIGN.md section 10): workers share no
 * mutable simulator state — each job builds its own Program and
 * DmtEngine — so results depend only on (config, workload, budget),
 * never on pool width or scheduling.
 */

#ifndef DMT_EXP_SWEEP_HH
#define DMT_EXP_SWEEP_HH

#include <functional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "exp/runner.hh"
#include "uarch/config.hh"

namespace dmt
{

class JsonWriter;

/** One queued (machine, workload) simulation. */
struct SweepJob
{
    std::string label;    ///< diagnostics/progress, e.g. "go/6T"
    std::string workload; ///< suite name for runWorkload()
    SimConfig cfg;
    u64 max_retired = 0;  ///< 0 = benchRunLength()
};

/** Outcome of one job; failed cells carry the SimError message. */
struct SweepCell
{
    bool ok = false;
    RunResult result;
    std::string error;
    double wall_seconds = 0.0;
};

/** Aggregate timing/throughput accounting for one sweep. */
struct SweepStats
{
    int pool_width = 1;      ///< worker threads actually used
    u64 jobs_total = 0;
    u64 jobs_failed = 0;
    u64 retired_total = 0;   ///< instructions retired across all jobs
    double wall_seconds = 0.0; ///< whole-sweep wall clock
    double busy_seconds = 0.0; ///< sum of per-job wall clocks

    /** Simulated instructions retired per wall-clock second. */
    double
    throughput() const
    {
        return wall_seconds > 0.0
            ? static_cast<double>(retired_total) / wall_seconds
            : 0.0;
    }

    /** Effective parallelism: busy time over wall time. */
    double
    parallelism() const
    {
        return wall_seconds > 0.0 ? busy_seconds / wall_seconds : 0.0;
    }

    /** Register the aggregate numbers on a StatGroup for text dumps.
     *  The Counter/Average shadows live in @p store (must outlive the
     *  group). */
    struct StatStore
    {
        Counter jobs, failed, retired;
        Average wall, busy, mips;
    };
    void registerAll(StatGroup &group, StatStore &store) const;

    void jsonOn(JsonWriter &w) const;
};

/**
 * Pool width for sweeps: DMT_JOBS when set (>= 1), otherwise the
 * host's hardware concurrency (>= 1).
 */
int sweepJobs();

/** Fixed-pool scheduler over independent simulation jobs. */
class SweepRunner
{
  public:
    /** Called after each job completes — in *completion* order, under
     *  an internal lock (safe to print from). */
    using Progress = std::function<void(const SweepJob &job,
                                        const SweepCell &cell,
                                        size_t done, size_t total)>;

    /** @param pool worker count; <= 0 means sweepJobs(). */
    explicit SweepRunner(int pool = 0);

    /** Queue a job; returns its index (== its cell's index). */
    size_t add(SweepJob job);

    /** Convenience: queue a (cfg, workload) pair. */
    size_t add(const SimConfig &cfg, const std::string &workload,
               u64 max_retired = 0, std::string label = "");

    size_t size() const { return jobs_.size(); }

    /** The pool width run() will use (after clamping). */
    int poolWidth() const { return pool_; }

    /**
     * Execute every queued job and return the cells in add() order.
     * May be called once; file-writing trace sinks (chrome/counters)
     * force the pool serial to keep their single-file contract.
     */
    const std::vector<SweepCell> &run(const Progress &progress = {});

    const std::vector<SweepCell> &cells() const { return cells_; }
    const SweepStats &stats() const { return stats_; }

  private:
    int pool_;
    bool ran_ = false;
    std::vector<SweepJob> jobs_;
    std::vector<SweepCell> cells_;
    SweepStats stats_;
};

} // namespace dmt

#endif // DMT_EXP_SWEEP_HH
