#include "exp/sweep.hh"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "common/env.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "trace/tracer.hh"

namespace dmt
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Does this job's resolved telemetry write fixed-name files?  Two
 *  workers doing that concurrently would clobber each other's output,
 *  so such sweeps run serial. */
bool
jobWritesTraceFiles(const SweepJob &job)
{
    const TraceOptions t = traceOptionsFromEnv(job.cfg.trace);
    return t.enabled && (t.chrome || t.counters);
}

SweepCell
runJob(const SweepJob &job)
{
    SweepCell cell;
    const auto start = Clock::now();
    try {
        cell.result =
            runWorkload(job.cfg, job.workload, job.max_retired);
        cell.ok = true;
    } catch (const SimError &err) {
        cell.error = err.what();
    }
    cell.wall_seconds = secondsSince(start);
    return cell;
}

} // namespace

int
sweepJobs()
{
    const u64 env = parseEnvU64("DMT_JOBS", 0, 0, 1024);
    if (env > 0)
        return static_cast<int>(env);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

void
SweepStats::registerAll(StatGroup &group, StatStore &store) const
{
    store.jobs += jobs_total;
    store.failed += jobs_failed;
    store.retired += retired_total;
    store.wall.sample(wall_seconds);
    store.busy.sample(busy_seconds);
    store.mips.sample(throughput() / 1e6);
    group.addCounter("sweep_jobs", &store.jobs,
                     "simulation jobs executed");
    group.addCounter("sweep_jobs_failed", &store.failed,
                     "jobs skipped on SimError");
    group.addCounter("sweep_retired", &store.retired,
                     "instructions retired across all jobs");
    group.addAverage("sweep_wall_seconds", &store.wall,
                     "whole-sweep wall clock");
    group.addAverage("sweep_busy_seconds", &store.busy,
                     "summed per-job wall clock");
    group.addAverage("sweep_mips", &store.mips,
                     "retired minstrs per wall second");
}

void
SweepStats::jsonOn(JsonWriter &w) const
{
    w.beginObject();
    w.key("pool_width").value(pool_width);
    w.key("jobs_total").value(jobs_total);
    w.key("jobs_failed").value(jobs_failed);
    w.key("retired_total").value(retired_total);
    w.key("wall_seconds").value(wall_seconds);
    w.key("busy_seconds").value(busy_seconds);
    w.key("throughput_ips").value(throughput());
    w.key("parallelism").value(parallelism());
    w.endObject();
}

SweepRunner::SweepRunner(int pool)
    : pool_(pool > 0 ? pool : sweepJobs())
{
}

size_t
SweepRunner::add(SweepJob job)
{
    DMT_ASSERT(!ran_, "SweepRunner::add after run()");
    if (job.label.empty())
        job.label = job.workload;
    jobs_.push_back(std::move(job));
    return jobs_.size() - 1;
}

size_t
SweepRunner::add(const SimConfig &cfg, const std::string &workload,
                 u64 max_retired, std::string label)
{
    SweepJob job;
    job.label = std::move(label);
    job.workload = workload;
    job.cfg = cfg;
    job.max_retired = max_retired;
    return add(std::move(job));
}

const std::vector<SweepCell> &
SweepRunner::run(const Progress &progress)
{
    DMT_ASSERT(!ran_, "SweepRunner::run called twice");
    ran_ = true;

    const size_t total = jobs_.size();
    cells_.assign(total, SweepCell{});

    int width = pool_;
    if (width > static_cast<int>(total))
        width = static_cast<int>(total ? total : 1);
    for (const SweepJob &job : jobs_) {
        if (jobWritesTraceFiles(job)) {
            if (width > 1) {
                warn("sweep: file-writing trace sinks enabled; "
                     "running serial to keep one file per sweep");
            }
            width = 1;
            break;
        }
    }
    if (width < 1)
        width = 1;
    pool_ = width;
    stats_.pool_width = width;
    stats_.jobs_total = total;

    const auto sweep_start = Clock::now();
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex progress_mu;

    auto worker = [&]() {
        for (;;) {
            const size_t i = next.fetch_add(1);
            if (i >= total)
                return;
            // The cell slot is exclusively this worker's; only the
            // progress callback needs the lock.
            cells_[i] = runJob(jobs_[i]);
            const size_t n = done.fetch_add(1) + 1;
            if (progress) {
                std::lock_guard<std::mutex> lock(progress_mu);
                progress(jobs_[i], cells_[i], n, total);
            }
        }
    };

    if (width == 1) {
        worker();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(static_cast<size_t>(width));
        for (int t = 0; t < width; ++t)
            threads.emplace_back(worker);
        for (std::thread &t : threads)
            t.join();
    }

    stats_.wall_seconds = secondsSince(sweep_start);
    for (const SweepCell &cell : cells_) {
        stats_.busy_seconds += cell.wall_seconds;
        if (cell.ok)
            stats_.retired_total += cell.result.retired;
        else
            ++stats_.jobs_failed;
    }
    return cells_;
}

} // namespace dmt
