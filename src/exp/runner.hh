/**
 * @file
 * Experiment runner: executes a workload on a configured machine and
 * returns the statistics needed by the figure benches.  All benches
 * funnel through here so run length and verification policy are
 * uniform.
 */

#ifndef DMT_EXP_RUNNER_HH
#define DMT_EXP_RUNNER_HH

#include <string>

#include "dmt/stats.hh"
#include "uarch/config.hh"

namespace dmt
{

class JsonWriter;

/** Outcome of one simulation run. */
struct RunResult
{
    std::string workload;
    u64 cycles = 0;
    u64 retired = 0;
    bool completed = false; ///< program HALTed before the cap
    double ipc = 0.0;
    /** Host wall clock for the run (same accounting as SweepStats). */
    double wall_s = 0.0;
    /** Host throughput: retired Minstr per wall second. */
    double minstr_per_s = 0.0;
    DmtStats stats;

    /** Serialize (headline numbers plus the full stat block).  Host
     *  timing fields are emitted only with @p include_timing: they are
     *  nondeterministic, so the canonical form leaves them out. */
    void jsonOn(JsonWriter &w, bool include_timing = true) const;

    /** The jsonOn() document as a string — the canonical form for
     *  bit-identity comparisons between serial and pooled runs.
     *  Excludes host-timing fields (wall_s, minstr_per_s). */
    std::string jsonString() const;
};

/**
 * Number of instructions each benchmark run retires, overridable with
 * the DMT_BENCH_INSTR environment variable (the paper runs 300M; the
 * default here keeps a full figure under a minute).
 */
u64 benchRunLength();

/**
 * Simulate @p workload (a suite name from workloadSuite()) on @p cfg,
 * retiring at most @p max_retired instructions (0 = benchRunLength()).
 * Golden checking stays enabled: a bench producing wrong execution
 * aborts rather than reporting garbage.
 */
RunResult runWorkload(const SimConfig &cfg, const std::string &workload,
                      u64 max_retired = 0);

/** Percentage speedup of @p test over @p base for identical work. */
double speedupPct(const RunResult &base, const RunResult &test);

} // namespace dmt

#endif // DMT_EXP_RUNNER_HH
