/**
 * @file
 * Experiment runner: executes a workload on a configured machine and
 * returns the statistics needed by the figure benches.  All benches
 * funnel through here so run length and verification policy are
 * uniform.
 */

#ifndef DMT_EXP_RUNNER_HH
#define DMT_EXP_RUNNER_HH

#include <string>
#include <vector>

#include "dmt/stats.hh"
#include "uarch/config.hh"

namespace dmt
{

class JsonWriter;

/** One measured window of an interval-sampled run. */
struct SampleInterval
{
    /** Retired-instruction position where the detailed window began
     *  (start of warmup, i.e. the checkpoint's resume position). */
    u64 pos = 0;
    u64 cycles = 0;  ///< measured (post-warmup) cycles
    u64 retired = 0; ///< measured (post-warmup) retired instructions
    u64 spawned = 0;
    u64 squashed = 0;
    u64 recoveries = 0;
};

/** One phase of a phase-sampled run: the cluster's identity/weight
 *  from the BBV analysis plus the measured window at its
 *  representative. */
struct PhaseCpi
{
    u32 id = 0;          ///< dense phase id (rep-ascending order)
    u64 rep = 0;         ///< representative interval index
    u64 pos = 0;         ///< rep * interval_len (window start)
    u64 members = 0;     ///< intervals assigned to the phase
    double weight = 0.0; ///< instruction-count share of the stream
    bool measured = false; ///< window detached stats and retired > 0
    u64 cycles = 0;
    u64 retired = 0;
    double cpi = 0.0;
};

/** Sampling metadata attached to a RunResult in sampled mode. */
struct SampleSummary
{
    bool enabled = false;
    /** Placement policy: "uniform" or "phase" (canonical JSON). */
    std::string mode = "uniform";
    u64 skip = 0;    ///< fast-forwarded instructions per interval
    u64 warm = 0;    ///< detailed warmup instructions (stats detached)
    u64 measure = 0; ///< detailed measured instructions
    u64 intervals = 0; ///< measured intervals completed
    /** Phase-mode analysis identity + outcome (zero in uniform mode;
     *  emitted to JSON only when mode == "phase"). */
    u64 phase_interval = 0;  ///< BBV interval length
    u64 phase_max_k = 0;     ///< cluster bound requested
    u64 phase_dims = 0;      ///< projection dimensions
    u64 phase_seed = 0;
    u64 phase_k = 0;         ///< phases found
    u64 phase_intervals = 0; ///< intervals profiled
    std::vector<PhaseCpi> phases;
    /** Stream positions traversed in total (functional + detailed);
     *  equals program length when the run reached HALT. */
    u64 covered = 0;
    /** Instructions covered by functional fast-forward alone. */
    u64 functional_instr = 0;
    /** Host seconds this run spent advancing the functional cursor
     *  (excluded from the canonical JSON, like all host timing). */
    double func_wall_s = 0.0;
    /** Fast-forward engine telemetry (DMT_FF_MODE and, for the
     *  translated engine, translation-cache counters accumulated over
     *  this run's fast-forwards).  Host-side diagnostics: excluded
     *  from the canonical JSON so results stay byte-identical across
     *  engines. */
    std::string ff_mode;
    u64 ff_blocks_translated = 0;
    u64 ff_retranslations = 0;
    u64 ff_evictions = 0;
    u64 ff_chain_hits = 0;
    /** Per-interval CPI statistics; ci95 = 1.96 * sd / sqrt(n).  In
     *  phase mode the mean is phase-weight weighted and sd/ci95 use
     *  the weighted spread over measured phases. */
    double cpi_mean = 0.0;
    double cpi_sd = 0.0;
    double cpi_ci95 = 0.0;
    std::vector<SampleInterval> records;

    void jsonOn(JsonWriter &w, bool include_timing) const;
};

/** Outcome of one simulation run. */
struct RunResult
{
    std::string workload;
    u64 cycles = 0;
    u64 retired = 0;
    bool completed = false; ///< program HALTed before the cap
    double ipc = 0.0;
    /** Host wall clock for the run (same accounting as SweepStats). */
    double wall_s = 0.0;
    /** Host throughput: retired Minstr per wall second. */
    double minstr_per_s = 0.0;
    DmtStats stats;
    /** Interval-sampling summary; enabled only in sampled mode, where
     *  cycles/retired/stats cover the measured windows only. */
    SampleSummary sampling;

    /** Serialize (headline numbers plus the full stat block).  Host
     *  timing fields are emitted only with @p include_timing: they are
     *  nondeterministic, so the canonical form leaves them out. */
    void jsonOn(JsonWriter &w, bool include_timing = true) const;

    /** The jsonOn() document as a string — the canonical form for
     *  bit-identity comparisons between serial and pooled runs.
     *  Excludes host-timing fields (wall_s, minstr_per_s). */
    std::string jsonString() const;
};

/**
 * Number of instructions each benchmark run retires, overridable with
 * the DMT_BENCH_INSTR environment variable (the paper runs 300M; the
 * default here keeps a full figure under a minute).
 */
u64 benchRunLength();

/**
 * Simulate @p workload (a suite name from workloadSuite()) on @p cfg,
 * retiring at most @p max_retired instructions (0 = benchRunLength()).
 * Golden checking stays enabled: a bench producing wrong execution
 * aborts rather than reporting garbage.
 *
 * When DMT_SAMPLE is set ("skip:warm:measure[:intervals]") the run is
 * routed through runWorkloadSampled() instead: detailed simulation
 * covers periodic measurement windows and checkpointed functional
 * fast-forward covers the gaps, so every bench and sweep built on this
 * funnel gains paper-scale coverage without code changes.
 */
RunResult runWorkload(const SimConfig &cfg, const std::string &workload,
                      u64 max_retired = 0);

struct SampleParams;

/**
 * runWorkload() with the sampling decision passed explicitly instead
 * of read from DMT_SAMPLE.  This is the serve-layer entry point: a
 * daemon job's spec — not the daemon's environment — decides whether
 * a request samples, and runWorkload() itself delegates here, so
 * daemon answers are byte-identical to direct calls by construction.
 */
RunResult runWorkloadJob(const SimConfig &cfg,
                         const std::string &workload, u64 max_retired,
                         const SampleParams &sample);

/**
 * The retirement budget a (max_retired, sample) request resolves to:
 * an explicit @p max_retired wins; otherwise detailed runs use
 * benchRunLength() and sampled runs use DMT_BENCH_INSTR (0 = whole
 * program), mirroring runWorkload()/runWorkloadSampled().  The serve
 * layer resolves budgets *before* computing cache keys so identical
 * effective requests share a cache cell.
 */
u64 effectiveBudget(bool sampled, u64 max_retired);

/** Percentage speedup of @p test over @p base for identical work. */
double speedupPct(const RunResult &base, const RunResult &test);

} // namespace dmt

#endif // DMT_EXP_RUNNER_HH
