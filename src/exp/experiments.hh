/**
 * @file
 * Machine configurations for every experiment in the paper's Section 4
 * (Figures 4-13).  Each factory documents the exact sentence of the
 * paper it encodes.
 */

#ifndef DMT_EXP_EXPERIMENTS_HH
#define DMT_EXP_EXPERIMENTS_HH

#include "uarch/config.hh"

namespace dmt
{

namespace exp
{

/**
 * The baseline of all speedups: a 4-wide superscalar with a
 * 128-instruction window, gshare with very large tables, 16KB L1s and
 * 256KB L2 (Section 4 preamble).  Execution units are unlimited unless
 * @p realistic_fus.
 */
SimConfig baseline(bool realistic_fus = false);

/**
 * Figure 4: DMT with @p threads contexts and two fetch ports (two
 * rename units), unlimited execution units, 128-entry window, 500
 * instructions of trace buffer per thread.
 */
SimConfig fig4Dmt(int threads);

/** Figure 5: 4-thread DMT with 1, 2 or 4 fetch ports. */
SimConfig fig5Dmt(int fetch_ports);

/**
 * Figure 6: 2-fetch-port DMT with realistic execution resources —
 * 4 ALUs (2 shared with address calculation), 1 mul/div, 2 DCache
 * ports; latencies 1/3/20 cycles and 3-cycle loads — vs the ideal
 * (unlimited) machine.
 */
SimConfig fig6Dmt(int threads, bool realistic_fus);

/** Figure 7: 6-thread DMT with the given trace buffer size. */
SimConfig fig7Dmt(int tb_size);

/** Figures 8/9: the 6-thread, 2-port DMT machine. */
SimConfig fig89Dmt();

/** Figure 10: 4-thread DMT with or without dataflow prediction. */
SimConfig fig10Dmt(bool dataflow);

/** Figure 11 uses the Figure-10 machine with both predictors on. */
SimConfig fig11Dmt();

/** Figure 12: recovery read block size 2/4/6, or 0 for ideal. */
SimConfig fig12Dmt(int read_block);

/** Figure 13: trace buffer (recovery startup) latency sweep. */
SimConfig fig13Dmt(int tb_latency);

} // namespace exp

} // namespace dmt

#endif // DMT_EXP_EXPERIMENTS_HH
