/**
 * @file
 * Telemetry configuration embedded in SimConfig (the `trace` member).
 * A plain aggregate so the config layer does not depend on the trace
 * subsystem's machinery; kept in src/trace because it is the trace
 * subsystem's contract.  Environment overrides (DMT_TRACE et al.) are
 * applied by traceOptionsFromEnv() in trace/tracer.hh.
 */

#ifndef DMT_TRACE_OPTIONS_HH
#define DMT_TRACE_OPTIONS_HH

#include <string>

namespace dmt
{

/** Which sinks a simulation run feeds, and their parameters. */
struct TraceOptions
{
    /** Master gate.  False compiles every hook down to one predictable
     *  branch on a cold bool — the disabled path costs nothing
     *  measurable. */
    bool enabled = false;

    /** Keep the last ring_capacity events in memory (tests, REPL-style
     *  inspection). */
    bool ring = false;
    int ring_capacity = 4096;

    /** Write a Chrome trace-event JSON file (chrome://tracing or
     *  Perfetto), one track per hardware thread context. */
    bool chrome = false;
    std::string chrome_file = "dmt_trace.json";

    /** Also render per-instruction lifetime slices (fetch -> final
     *  retirement) in the Chrome trace.  Large outputs; off unless
     *  explicitly requested. */
    bool insts = false;

    /** Record a counters time series (DmtStats snapshot every
     *  sample_period cycles) as machine-readable JSON. */
    bool counters = false;
    std::string counters_file = "dmt_counters.json";

    /** Cycles between counter samples (Chrome counter tracks and the
     *  counters sink). */
    int sample_period = 128;
};

} // namespace dmt

#endif // DMT_TRACE_OPTIONS_HH
