#include "trace/event.hh"

namespace dmt
{

const char *
traceEventKindName(TraceEventKind k)
{
    switch (k) {
      case TraceEventKind::InstFetch: return "inst-fetch";
      case TraceEventKind::InstDispatch: return "inst-dispatch";
      case TraceEventKind::InstIssue: return "inst-issue";
      case TraceEventKind::InstComplete: return "inst-complete";
      case TraceEventKind::InstRetire: return "inst-retire";
      case TraceEventKind::IcacheMiss: return "icache-miss";
      case TraceEventKind::ThreadStop: return "thread-stop";
      case TraceEventKind::BranchMispredict: return "branch-mispredict";
      case TraceEventKind::LateDivergence: return "late-divergence";
      case TraceEventKind::ThreadSpawn: return "thread-spawn";
      case TraceEventKind::ThreadSquash: return "thread-squash";
      case TraceEventKind::ThreadRetire: return "thread-retire";
      case TraceEventKind::HeadSwitch: return "head-switch";
      case TraceEventKind::RecoveryStart: return "recovery-start";
      case TraceEventKind::RecoveryEnd: return "recovery-end";
      case TraceEventKind::LsqViolation: return "lsq-violation";
      case TraceEventKind::kCount: break;
    }
    return "unknown";
}

const char *
traceStageName(TraceStage s)
{
    switch (s) {
      case TraceStage::Fetch: return "fetch";
      case TraceStage::Rename: return "rename";
      case TraceStage::Execute: return "execute";
      case TraceStage::Retire: return "retire";
      case TraceStage::Thread: return "thread";
      case TraceStage::Recovery: return "recovery";
      case TraceStage::Lsq: return "lsq";
    }
    return "unknown";
}

} // namespace dmt
