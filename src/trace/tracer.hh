/**
 * @file
 * Tracer: the engine-facing front door of the telemetry subsystem.
 * The engine owns one Tracer, calls configure() once with the run's
 * TraceOptions, and then reports events through emit().  The Tracer
 * fans each event out to the configured sinks and, every
 * sample_period cycles, delivers a TraceSample counters snapshot.
 *
 * The disabled path is dead cheap: emit() is inline and returns after
 * a single predictable branch on a bool, so pipeline stages can hook
 * unconditionally without measurable cost when tracing is off.
 */

#ifndef DMT_TRACE_TRACER_HH
#define DMT_TRACE_TRACER_HH

#include <memory>
#include <vector>

#include "trace/options.hh"
#include "trace/sink.hh"

namespace dmt
{

class RingSink;

/** Dispatches TraceEvents/TraceSamples to the configured sinks. */
class Tracer
{
  public:
    Tracer() = default;
    ~Tracer();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /**
     * Build sinks from @p opts.  If tracing is enabled but no sink is
     * selected, a RingSink is attached so events are observable.
     * Replaces any previously configured sinks.
     */
    void configure(const TraceOptions &opts);

    /** Attach an externally built sink and enable tracing (tests). */
    void addSink(std::unique_ptr<TraceSink> sink);

    /** Force tracing on/off without touching the sink set. */
    void setEnabled(bool on) { enabled_ = on && !sinks_.empty(); }

    bool enabled() const { return enabled_; }

    /** Report one event.  No-op (one branch) when disabled. */
    void
    emit(Cycle cycle, ThreadId tid, TraceStage stage,
         TraceEventKind kind, Addr pc = 0, u64 a = 0, u64 b = 0)
    {
        if (!enabled_)
            return;
        TraceEvent e;
        e.cycle = cycle;
        e.tid = tid;
        e.stage = stage;
        e.kind = kind;
        e.pc = pc;
        e.a = a;
        e.b = b;
        for (auto &s : sinks_)
            s->event(e);
    }

    /** True when a counters sample is due this cycle. */
    bool
    sampleDue(Cycle now) const
    {
        return enabled_ && sample_period_ > 0
            && now % static_cast<Cycle>(sample_period_) == 0;
    }

    /** Deliver a counters snapshot to every sink. */
    void sample(const TraceSample &s);

    /** Flush all sinks.  Idempotent; also run by the destructor. */
    void finish();

    /** The ring sink, when one is configured (else nullptr). */
    RingSink *ring() const { return ring_; }

    int samplePeriod() const { return sample_period_; }

  private:
    bool enabled_ = false;
    bool finished_ = false;
    int sample_period_ = 0;
    RingSink *ring_ = nullptr; ///< borrowed from sinks_
    std::vector<std::unique_ptr<TraceSink>> sinks_;
};

/**
 * Apply environment overrides on top of @p base:
 *
 *  - DMT_TRACE: comma-separated sink list ("chrome", "ring",
 *    "counters", "insts"); "1" enables the default ring sink; "0" or
 *    "off" forces tracing off.
 *  - DMT_TRACE_FILE: Chrome trace output path.
 *  - DMT_TRACE_COUNTERS_FILE: counters sink output path.
 *  - DMT_TRACE_SAMPLE: cycles between counter samples.
 *  - DMT_TRACE_RING: ring sink capacity (events).
 */
TraceOptions traceOptionsFromEnv(TraceOptions base);

} // namespace dmt

#endif // DMT_TRACE_TRACER_HH
