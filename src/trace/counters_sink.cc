#include "trace/counters_sink.hh"

#include <cstdio>

#include "common/json.hh"
#include "common/log.hh"

namespace dmt
{

CountersSink::CountersSink(std::string path_, int period_)
    : path(std::move(path_)), period(period_)
{
    samples.reserve(256);
}

CountersSink::~CountersSink()
{
    finish();
}

void
CountersSink::event(const TraceEvent &e)
{
    const size_t k = static_cast<size_t>(e.kind);
    if (k < counts.size())
        ++counts[k];
}

void
CountersSink::sample(const TraceSample &s)
{
    samples.push_back(s);
}

void
CountersSink::jsonOn(JsonWriter &w) const
{
    w.beginObject();
    w.key("sample_period").value(period);

    w.key("event_counts").beginObject();
    for (size_t k = 0; k < counts.size(); ++k) {
        if (counts[k] == 0)
            continue;
        w.key(traceEventKindName(static_cast<TraceEventKind>(k)))
            .value(counts[k]);
    }
    w.endObject();

    w.key("samples").beginArray();
    for (const TraceSample &s : samples) {
        w.beginObject();
        w.key("cycle").value(s.cycle);
        w.key("retired").value(s.retired);
        w.key("early_retired").value(s.early_retired);
        w.key("dispatched").value(s.dispatched);
        w.key("issued").value(s.issued);
        w.key("threads_spawned").value(s.threads_spawned);
        w.key("threads_squashed").value(s.threads_squashed);
        w.key("recoveries").value(s.recoveries);
        w.key("recovery_dispatches").value(s.recovery_dispatches);
        w.key("lsq_violations").value(s.lsq_violations);
        w.key("active_threads").value(s.active_threads);
        w.key("window_used").value(s.window_used);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
CountersSink::finish()
{
    if (finished)
        return;
    finished = true;

    JsonWriter w;
    jsonOn(w);

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("counters trace: cannot open %s for writing",
             path.c_str());
        return;
    }
    const std::string doc = w.str() + "\n";
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    inform("counters trace written to %s (%zu samples)", path.c_str(),
           samples.size());
}

} // namespace dmt
