/**
 * @file
 * Chrome trace-event JSON exporter.  Produces a file loadable in
 * chrome://tracing or https://ui.perfetto.dev with one track per
 * hardware thread context:
 *
 *  - thread lifetimes as duration slices (spawn -> retire/squash),
 *  - recovery walks as nested duration slices,
 *  - squashes, joins, LSQ violations, branch mispredictions, late
 *    divergences and ICache misses as instant markers,
 *  - periodic counter tracks (active threads, window occupancy, IPC),
 *  - optionally one slice per instruction lifetime (fetch -> final
 *    retirement) when TraceOptions::insts is set.
 *
 * Timestamps are simulated cycles rendered as microseconds (1 cycle =
 * 1 us on the viewer's axis).  The document is buffered in memory and
 * written once by finish(), so several engines tracing to the same
 * path do not interleave writes.
 */

#ifndef DMT_TRACE_CHROME_SINK_HH
#define DMT_TRACE_CHROME_SINK_HH

#include <array>
#include <string>

#include "trace/sink.hh"

namespace dmt
{

/** TraceSink rendering the Chrome trace-event format. */
class ChromeSink : public TraceSink
{
  public:
    /** @param path output file; @param insts per-instruction slices. */
    ChromeSink(std::string path, bool insts);
    ~ChromeSink() override;

    void event(const TraceEvent &e) override;
    void sample(const TraceSample &s) override;
    void finish() override;

    /** The complete document text (for tests; valid any time). */
    std::string document() const;

    u64 eventsWritten() const { return events_written; }

  private:
    struct Track
    {
        bool seen = false;       ///< metadata emitted
        bool thread_open = false;
        bool recov_open = false;
    };

    Track &track(ThreadId tid);
    void append(const std::string &json_obj);
    void metaString(ThreadId tid, const char *what,
                    const std::string &name);
    void duration(char ph, ThreadId tid, Cycle ts,
                  const std::string &name, const TraceEvent *args);
    void instant(ThreadId tid, Cycle ts, const std::string &name,
                 const TraceEvent &e);
    void closeRecovery(ThreadId tid, Cycle ts);
    void closeThread(ThreadId tid, Cycle ts);

    std::string path;
    bool insts;
    std::string body; ///< comma-joined event objects
    bool first = true;
    bool finished = false;
    u64 events_written = 0;
    Cycle last_ts = 0;
    static constexpr int kMaxTracks = 64;
    std::array<Track, kMaxTracks> tracks{};
};

} // namespace dmt

#endif // DMT_TRACE_CHROME_SINK_HH
