#include "trace/ring_sink.hh"

#include "common/log.hh"

namespace dmt
{

RingSink::RingSink(size_t capacity) : cap(capacity)
{
    DMT_ASSERT(capacity > 0, "ring sink needs a positive capacity");
    buf.reserve(capacity < 4096 ? capacity : 4096);
}

void
RingSink::event(const TraceEvent &e)
{
    ++captured_;
    if (buf.size() < cap) {
        buf.push_back(e);
        return;
    }
    buf[head] = e;
    head = (head + 1) % cap;
}

const TraceEvent &
RingSink::at(size_t i) const
{
    DMT_ASSERT(i < buf.size(), "ring index out of range");
    return buf[(head + i) % buf.size()];
}

std::vector<TraceEvent>
RingSink::snapshot() const
{
    std::vector<TraceEvent> out;
    out.reserve(buf.size());
    for (size_t i = 0; i < buf.size(); ++i)
        out.push_back(at(i));
    return out;
}

void
RingSink::clear()
{
    buf.clear();
    head = 0;
    captured_ = 0;
}

} // namespace dmt
