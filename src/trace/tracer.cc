#include "trace/tracer.hh"

#include <cstdlib>
#include <cstring>
#include <string>

#include "common/env.hh"
#include "common/log.hh"
#include "trace/chrome_sink.hh"
#include "trace/counters_sink.hh"
#include "trace/ring_sink.hh"

namespace dmt
{

Tracer::~Tracer()
{
    finish();
}

void
Tracer::configure(const TraceOptions &opts)
{
    sinks_.clear();
    ring_ = nullptr;
    enabled_ = false;
    finished_ = false;
    sample_period_ = opts.sample_period;

    if (!opts.enabled)
        return;

    bool any_selected = opts.ring || opts.chrome || opts.counters;
    if (opts.ring || !any_selected) {
        auto ring = std::make_unique<RingSink>(
            opts.ring_capacity > 0
                ? static_cast<size_t>(opts.ring_capacity) : 1);
        ring_ = ring.get();
        sinks_.push_back(std::move(ring));
    }
    if (opts.chrome) {
        sinks_.push_back(std::make_unique<ChromeSink>(opts.chrome_file,
                                                      opts.insts));
    }
    if (opts.counters) {
        sinks_.push_back(std::make_unique<CountersSink>(
            opts.counters_file, opts.sample_period));
    }
    enabled_ = !sinks_.empty();
}

void
Tracer::addSink(std::unique_ptr<TraceSink> sink)
{
    DMT_ASSERT(sink != nullptr, "addSink needs a sink");
    if (!ring_)
        ring_ = dynamic_cast<RingSink *>(sink.get());
    sinks_.push_back(std::move(sink));
    enabled_ = true;
    finished_ = false;
}

void
Tracer::sample(const TraceSample &s)
{
    if (!enabled_)
        return;
    for (auto &snk : sinks_)
        snk->sample(s);
}

void
Tracer::finish()
{
    if (finished_)
        return;
    finished_ = true;
    for (auto &snk : sinks_)
        snk->finish();
}

TraceOptions
traceOptionsFromEnv(TraceOptions base)
{
    const char *spec = std::getenv("DMT_TRACE");
    if (spec && *spec) {
        std::string s(spec);
        if (s == "0" || s == "off") {
            base.enabled = false;
        } else {
            base.enabled = true;
            // "1" keeps whatever the config selected (default: ring).
            size_t pos = 0;
            while (pos <= s.size()) {
                size_t comma = s.find(',', pos);
                if (comma == std::string::npos)
                    comma = s.size();
                std::string tok = s.substr(pos, comma - pos);
                pos = comma + 1;
                if (tok.empty() || tok == "1" || tok == "on")
                    continue;
                if (tok == "ring")
                    base.ring = true;
                else if (tok == "chrome")
                    base.chrome = true;
                else if (tok == "counters")
                    base.counters = true;
                else if (tok == "insts")
                    base.insts = true;
                else
                    warn("DMT_TRACE: unknown sink '%s' ignored",
                         tok.c_str());
            }
        }
    }

    if (const char *file = std::getenv("DMT_TRACE_FILE"); file && *file)
        base.chrome_file = file;
    if (const char *file = std::getenv("DMT_TRACE_COUNTERS_FILE");
        file && *file) {
        base.counters_file = file;
    }
    base.sample_period = static_cast<int>(
        parseEnvU64("DMT_TRACE_SAMPLE",
                    static_cast<u64>(base.sample_period), 1, 1u << 30));
    const u64 cap = parseEnvU64(
        "DMT_TRACE_RING", static_cast<u64>(base.ring_capacity), 1,
        1u << 30);
    if (cap != static_cast<u64>(base.ring_capacity)) {
        base.ring_capacity = static_cast<int>(cap);
        base.ring = true;
    }
    return base;
}

} // namespace dmt
