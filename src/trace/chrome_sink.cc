#include "trace/chrome_sink.hh"

#include <algorithm>
#include <cstdio>

#include "common/json.hh"
#include "common/log.hh"
#include "common/strutil.hh"

namespace dmt
{

namespace
{

/** Common fields of every trace-event object. */
JsonWriter &
header(JsonWriter &w, const char *ph, const std::string &name,
       ThreadId tid, Cycle ts)
{
    w.beginObject();
    w.key("name").value(std::string_view(name));
    w.key("ph").value(ph);
    w.key("ts").value(static_cast<u64>(ts));
    w.key("pid").value(0);
    w.key("tid").value(static_cast<i64>(tid));
    return w;
}

/** Generic payload rendering: the PC and both payload words. */
void
eventArgs(JsonWriter &w, const TraceEvent &e)
{
    w.key("args").beginObject();
    w.key("pc").value(std::string_view(strprintf("0x%x", e.pc)));
    w.key("a").value(e.a);
    w.key("b").value(e.b);
    w.key("kind").value(traceEventKindName(e.kind));
    w.endObject();
}

} // namespace

ChromeSink::ChromeSink(std::string path_, bool insts_)
    : path(std::move(path_)), insts(insts_)
{
    // Process metadata: a single simulated "process".
    JsonWriter w;
    w.beginObject();
    w.key("name").value("process_name");
    w.key("ph").value("M");
    w.key("pid").value(0);
    w.key("args").beginObject().key("name").value("dmtsim").endObject();
    w.endObject();
    append(w.str());
}

ChromeSink::~ChromeSink()
{
    finish();
}

void
ChromeSink::append(const std::string &json_obj)
{
    if (!first)
        body += ",\n";
    first = false;
    body += json_obj;
    ++events_written;
}

ChromeSink::Track &
ChromeSink::track(ThreadId tid)
{
    Track &t = tracks[static_cast<size_t>(tid)];
    if (!t.seen) {
        t.seen = true;
        metaString(tid, "thread_name", strprintf("ctx %d", tid));
    }
    return t;
}

void
ChromeSink::metaString(ThreadId tid, const char *what,
                       const std::string &name)
{
    JsonWriter w;
    w.beginObject();
    w.key("name").value(what);
    w.key("ph").value("M");
    w.key("pid").value(0);
    w.key("tid").value(static_cast<i64>(tid));
    w.key("args").beginObject().key("name")
        .value(std::string_view(name)).endObject();
    w.endObject();
    append(w.str());
}

void
ChromeSink::duration(char ph, ThreadId tid, Cycle ts,
                     const std::string &name, const TraceEvent *args)
{
    const char phs[2] = {ph, 0};
    JsonWriter w;
    header(w, phs, name, tid, ts);
    if (args)
        eventArgs(w, *args);
    w.endObject();
    append(w.str());
}

void
ChromeSink::instant(ThreadId tid, Cycle ts, const std::string &name,
                    const TraceEvent &e)
{
    JsonWriter w;
    header(w, "i", name, tid, ts);
    w.key("s").value("t");
    eventArgs(w, e);
    w.endObject();
    append(w.str());
}

void
ChromeSink::closeRecovery(ThreadId tid, Cycle ts)
{
    Track &t = tracks[static_cast<size_t>(tid)];
    if (!t.recov_open)
        return;
    duration('E', tid, ts, "recovery", nullptr);
    t.recov_open = false;
}

void
ChromeSink::closeThread(ThreadId tid, Cycle ts)
{
    Track &t = tracks[static_cast<size_t>(tid)];
    closeRecovery(tid, ts);
    if (!t.thread_open)
        return;
    duration('E', tid, ts, "thread", nullptr);
    t.thread_open = false;
}

void
ChromeSink::event(const TraceEvent &e)
{
    if (finished || e.tid < 0
        || e.tid >= static_cast<ThreadId>(kMaxTracks)) {
        return;
    }
    last_ts = std::max(last_ts, e.cycle);
    Track &t = track(e.tid);

    switch (e.kind) {
      case TraceEventKind::ThreadSpawn:
        closeThread(e.tid, e.cycle);
        duration('B', e.tid, e.cycle, strprintf("thread 0x%x", e.pc),
                 &e);
        t.thread_open = true;
        break;

      case TraceEventKind::ThreadRetire:
        instant(e.tid, e.cycle, "thread-retire", e);
        closeThread(e.tid, e.cycle);
        break;

      case TraceEventKind::ThreadSquash:
        instant(e.tid, e.cycle, "thread-squash", e);
        closeThread(e.tid, e.cycle);
        break;

      case TraceEventKind::RecoveryStart:
        if (!t.thread_open) {
            // Event stream began mid-lifetime (e.g. sink attached
            // late): synthesize an open slice so B/E stay balanced.
            duration('B', e.tid, e.cycle, "thread", nullptr);
            t.thread_open = true;
        }
        closeRecovery(e.tid, e.cycle);
        duration('B', e.tid, e.cycle, "recovery", &e);
        t.recov_open = true;
        break;

      case TraceEventKind::RecoveryEnd:
        closeRecovery(e.tid, e.cycle);
        break;

      case TraceEventKind::ThreadStop:
      case TraceEventKind::BranchMispredict:
      case TraceEventKind::LateDivergence:
      case TraceEventKind::LsqViolation:
      case TraceEventKind::IcacheMiss:
      case TraceEventKind::HeadSwitch:
        instant(e.tid, e.cycle, traceEventKindName(e.kind), e);
        break;

      case TraceEventKind::InstRetire:
        if (insts) {
            // One slice per retired instruction: fetch to final
            // retirement (payload a carries the fetch cycle).
            JsonWriter w;
            header(w, "X", strprintf("0x%x", e.pc), e.tid, e.a);
            const u64 dur = e.cycle > e.a ? e.cycle - e.a : 1;
            w.key("dur").value(dur);
            eventArgs(w, e);
            w.endObject();
            append(w.str());
        }
        break;

      case TraceEventKind::InstFetch:
      case TraceEventKind::InstDispatch:
      case TraceEventKind::InstIssue:
      case TraceEventKind::InstComplete:
      case TraceEventKind::kCount:
        break; // too granular for slice rendering; see RingSink
    }
}

void
ChromeSink::sample(const TraceSample &s)
{
    if (finished)
        return;
    last_ts = std::max(last_ts, s.cycle);
    JsonWriter w;
    header(w, "C", "machine", 0, s.cycle);
    w.key("args").beginObject();
    w.key("active_threads").value(s.active_threads);
    w.key("window_used").value(s.window_used);
    w.endObject();
    w.endObject();
    append(w.str());
}

std::string
ChromeSink::document() const
{
    return "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n" + body
        + "\n]}\n";
}

void
ChromeSink::finish()
{
    if (finished)
        return;
    for (int tid = 0; tid < kMaxTracks; ++tid) {
        if (tracks[static_cast<size_t>(tid)].seen)
            closeThread(tid, last_ts);
    }
    finished = true;

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("chrome trace: cannot open %s for writing", path.c_str());
        return;
    }
    const std::string doc = document();
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    inform("chrome trace written to %s (%llu events)", path.c_str(),
           static_cast<unsigned long long>(events_written));
}

} // namespace dmt
