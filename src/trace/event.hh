/**
 * @file
 * The cycle-level telemetry event taxonomy.  Every observable pipeline
 * happening is reported as one TraceEvent: which cycle, which hardware
 * thread context, which pipeline stage reported it, what kind, plus a
 * PC and two kind-specific payload words.  Events are cheap POD so the
 * emit path stays allocation-free.
 */

#ifndef DMT_TRACE_EVENT_HH
#define DMT_TRACE_EVENT_HH

#include "common/types.hh"

namespace dmt
{

/** Pipeline stage (or subsystem) that reported an event. */
enum class TraceStage : u8
{
    Fetch,
    Rename,
    Execute,
    Retire,
    Thread,   ///< thread lifecycle (spawn / squash / join / retire)
    Recovery, ///< trace-buffer recovery walks
    Lsq,      ///< load/store queue disambiguation
};

/** What happened.  Payload conventions are noted per kind. */
enum class TraceEventKind : u8
{
    // Per-instruction lifecycle.  pc = instruction PC.
    InstFetch,        ///< a = 0
    InstDispatch,     ///< a = trace-buffer id
    InstIssue,        ///< a = trace-buffer id
    InstComplete,     ///< a = trace-buffer id
    InstRetire,       ///< a = fetch cycle, b = trace-buffer id

    // Frontend conditions.
    IcacheMiss,       ///< pc = missing PC, a = stall cycles
    ThreadStop,       ///< control reached the successor's start PC

    // Control mispeculation.
    BranchMispredict, ///< pc = branch, a = corrected target
    LateDivergence,   ///< pc = branch, a = corrected target

    // Thread lifecycle.
    ThreadSpawn,      ///< pc = start PC, a = parent tid, b = loop flag
    ThreadSquash,     ///< pc = start PC, a = instructions discarded
    ThreadRetire,     ///< pc = start PC, a = retired count, b = joined
    HeadSwitch,       ///< head thread's inputs validated architectural

    // Data mispeculation and recovery.
    RecoveryStart,    ///< a = walk start trace-buffer id
    RecoveryEnd,      ///< a = entries walked
    LsqViolation,     ///< pc = load PC, a = load trace-buffer id

    kCount            ///< number of kinds (array sizing)
};

constexpr int kNumTraceEventKinds =
    static_cast<int>(TraceEventKind::kCount);

/** One telemetry event. */
struct TraceEvent
{
    Cycle cycle = 0;
    ThreadId tid = kNoThread;
    TraceStage stage = TraceStage::Fetch;
    TraceEventKind kind = TraceEventKind::InstFetch;
    Addr pc = 0;
    u64 a = 0; ///< kind-specific payload (see TraceEventKind)
    u64 b = 0; ///< kind-specific payload
};

/** Stable lowercase name, e.g. "thread-spawn". */
const char *traceEventKindName(TraceEventKind k);

/** Stable lowercase name, e.g. "recovery". */
const char *traceStageName(TraceStage s);

} // namespace dmt

#endif // DMT_TRACE_EVENT_HH
