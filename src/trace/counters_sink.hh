/**
 * @file
 * Machine-readable counters sink: tallies events per kind and records
 * the periodic TraceSample series, then serializes both as JSON.  The
 * output is meant for scripts (plotting window occupancy over time,
 * diffing event mixes across configs) rather than for humans.
 */

#ifndef DMT_TRACE_COUNTERS_SINK_HH
#define DMT_TRACE_COUNTERS_SINK_HH

#include <array>
#include <string>
#include <vector>

#include "trace/sink.hh"

namespace dmt
{

class JsonWriter;

/** TraceSink producing a JSON time series of engine counters. */
class CountersSink : public TraceSink
{
  public:
    /** @param path output file; @param period cycles between samples
     *  (recorded in the document, sampling cadence is the Tracer's). */
    CountersSink(std::string path, int period);
    ~CountersSink() override;

    void event(const TraceEvent &e) override;
    void sample(const TraceSample &s) override;
    void finish() override;

    /** Serialize the document so far (for tests; valid any time). */
    void jsonOn(JsonWriter &w) const;

    u64 eventCount(TraceEventKind kind) const
    {
        return counts[static_cast<size_t>(kind)];
    }

    size_t numSamples() const { return samples.size(); }

  private:
    std::string path;
    int period;
    bool finished = false;
    std::array<u64, kNumTraceEventKinds> counts{};
    std::vector<TraceSample> samples;
};

} // namespace dmt

#endif // DMT_TRACE_COUNTERS_SINK_HH
