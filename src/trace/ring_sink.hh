/**
 * @file
 * Bounded in-memory event collector: keeps the most recent N events in
 * a ring.  The default sink when tracing is enabled without a file
 * exporter; tests and interactive tooling read it back through
 * snapshot()/at().
 */

#ifndef DMT_TRACE_RING_SINK_HH
#define DMT_TRACE_RING_SINK_HH

#include <vector>

#include "trace/sink.hh"

namespace dmt
{

/** Fixed-capacity ring buffer of TraceEvents (oldest overwritten). */
class RingSink : public TraceSink
{
  public:
    explicit RingSink(size_t capacity);

    void event(const TraceEvent &e) override;

    /** Total events ever delivered (including overwritten ones). */
    u64 captured() const { return captured_; }

    /** Events currently held. */
    size_t size() const { return buf.size(); }

    size_t capacity() const { return cap; }

    /** i-th held event, oldest first. */
    const TraceEvent &at(size_t i) const;

    /** Copy of the held events, oldest first. */
    std::vector<TraceEvent> snapshot() const;

    void clear();

  private:
    size_t cap;
    size_t head = 0; ///< index of the oldest event once full
    u64 captured_ = 0;
    std::vector<TraceEvent> buf;
};

} // namespace dmt

#endif // DMT_TRACE_RING_SINK_HH
