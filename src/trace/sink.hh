/**
 * @file
 * The pluggable sink interface of the telemetry subsystem.  A Tracer
 * fans every TraceEvent out to its sinks and, every sample_period
 * cycles, hands them a TraceSample — a small snapshot of the engine's
 * headline counters — so sinks can build time series without depending
 * on the engine's stats types.
 */

#ifndef DMT_TRACE_SINK_HH
#define DMT_TRACE_SINK_HH

#include "trace/event.hh"

namespace dmt
{

/** Periodic snapshot of headline engine counters (cumulative). */
struct TraceSample
{
    Cycle cycle = 0;
    u64 retired = 0;
    u64 early_retired = 0;
    u64 dispatched = 0;
    u64 issued = 0;
    u64 threads_spawned = 0;
    u64 threads_squashed = 0;
    u64 recoveries = 0;
    u64 recovery_dispatches = 0;
    u64 lsq_violations = 0;
    int active_threads = 0;
    int window_used = 0;
};

/** Consumer of telemetry.  Implementations must tolerate any event
 *  order a legal simulation produces and must be cheap per event. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** One pipeline event. */
    virtual void event(const TraceEvent &e) = 0;

    /** Periodic counters snapshot (optional). */
    virtual void sample(const TraceSample &s) { (void)s; }

    /** Flush/serialize.  Called once, at end of run or destruction. */
    virtual void finish() {}
};

} // namespace dmt

#endif // DMT_TRACE_SINK_HH
