#include "common/log.hh"

#include <atomic>
#include <cstdio>

namespace dmt
{

namespace
{

// Read from sweep worker threads; atomic so a harness toggling
// quietness while a pool is running stays well-defined.
std::atomic<bool> quietFlag{false};

void
vreport(const char *tag, const char *fmt, va_list ap)
{
    std::fflush(stdout);
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
}

std::string
vformat(const char *fmt, va_list ap)
{
    va_list copy;
    va_copy(copy, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (n <= 0)
        return std::string();
    std::string out(static_cast<size_t>(n), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap);
    return out;
}

} // namespace

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fflush(stdout);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::fflush(stderr);
    throw SimError(std::move(msg));
}

void
panicWithDetails(std::string details_json, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fflush(stdout);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::fflush(stderr);
    throw SimError(std::move(msg), std::move(details_json));
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

void
panicAssert(const char *cond, const char *file, int line, const char *fmt,
            ...)
{
    std::string msg = "assertion '" + std::string(cond) + "' failed at "
        + file + ":" + std::to_string(line);
    if (fmt && fmt[0] != '\0') {
        va_list ap;
        va_start(ap, fmt);
        msg += ": " + vformat(fmt, ap);
        va_end(ap);
    }
    std::fflush(stdout);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::fflush(stderr);
    throw SimError(std::move(msg));
}

void
setLogQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
logQuiet()
{
    return quietFlag;
}

} // namespace dmt
