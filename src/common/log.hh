/**
 * @file
 * Error/status reporting in the gem5 tradition: panic() for internal
 * simulator bugs (aborts), fatal() for user/configuration errors (clean
 * exit), warn()/inform() for non-fatal diagnostics.
 */

#ifndef DMT_COMMON_LOG_HH
#define DMT_COMMON_LOG_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace dmt
{

/** Severity levels accepted by the message sink. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

/**
 * Report an unrecoverable internal error (a simulator bug) and abort.
 * Never returns.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user error (bad configuration, bad input) and
 * exit with status 1. Never returns.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious but survivable condition. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Suppress warn()/inform() output (used by quiet benchmark runs). */
void setLogQuiet(bool quiet);

/** @return true when warn()/inform() are suppressed. */
bool logQuiet();

/** Implementation helper for DMT_ASSERT; never call directly. */
[[noreturn]] void panicAssert(const char *cond, const char *file, int line,
                              const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

/**
 * panic() unless @p cond holds.  Used for internal invariants that are
 * cheap enough to keep on in release builds.
 */
#define DMT_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::dmt::panicAssert(#cond, __FILE__, __LINE__, "" __VA_ARGS__);  \
        }                                                                   \
    } while (0)

} // namespace dmt

#endif // DMT_COMMON_LOG_HH
